# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sm[1]_include.cmake")
include("/root/repo/build/tests/test_mem_icnt[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_bench_harness[1]_include.cmake")
