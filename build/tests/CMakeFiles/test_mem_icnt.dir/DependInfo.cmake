
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/icnt/crossbar_test.cpp" "tests/CMakeFiles/test_mem_icnt.dir/icnt/crossbar_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem_icnt.dir/icnt/crossbar_test.cpp.o.d"
  "/root/repo/tests/mem/dram_test.cpp" "tests/CMakeFiles/test_mem_icnt.dir/mem/dram_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem_icnt.dir/mem/dram_test.cpp.o.d"
  "/root/repo/tests/mem/l2_cache_test.cpp" "tests/CMakeFiles/test_mem_icnt.dir/mem/l2_cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem_icnt.dir/mem/l2_cache_test.cpp.o.d"
  "/root/repo/tests/mem/partition_test.cpp" "tests/CMakeFiles/test_mem_icnt.dir/mem/partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_mem_icnt.dir/mem/partition_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dlpsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
