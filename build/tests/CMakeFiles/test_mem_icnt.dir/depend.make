# Empty dependencies file for test_mem_icnt.
# This may be replaced when dependencies are built.
