file(REMOVE_RECURSE
  "CMakeFiles/test_mem_icnt.dir/icnt/crossbar_test.cpp.o"
  "CMakeFiles/test_mem_icnt.dir/icnt/crossbar_test.cpp.o.d"
  "CMakeFiles/test_mem_icnt.dir/mem/dram_test.cpp.o"
  "CMakeFiles/test_mem_icnt.dir/mem/dram_test.cpp.o.d"
  "CMakeFiles/test_mem_icnt.dir/mem/l2_cache_test.cpp.o"
  "CMakeFiles/test_mem_icnt.dir/mem/l2_cache_test.cpp.o.d"
  "CMakeFiles/test_mem_icnt.dir/mem/partition_test.cpp.o"
  "CMakeFiles/test_mem_icnt.dir/mem/partition_test.cpp.o.d"
  "test_mem_icnt"
  "test_mem_icnt.pdb"
  "test_mem_icnt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_icnt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
