
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/per_sm_profiler_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/per_sm_profiler_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/per_sm_profiler_test.cpp.o.d"
  "/root/repo/tests/analysis/rd_profiler_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/rd_profiler_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/rd_profiler_test.cpp.o.d"
  "/root/repo/tests/analysis/report_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/report_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/report_test.cpp.o.d"
  "/root/repo/tests/analysis/reuse_miss_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/reuse_miss_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/reuse_miss_test.cpp.o.d"
  "/root/repo/tests/analysis/trace_replay_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/trace_replay_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/trace_replay_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dlpsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
