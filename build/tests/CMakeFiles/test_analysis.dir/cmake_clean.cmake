file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/per_sm_profiler_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/per_sm_profiler_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/rd_profiler_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/rd_profiler_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/report_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/report_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/reuse_miss_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/reuse_miss_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/trace_replay_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/trace_replay_test.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
