file(REMOVE_RECURSE
  "CMakeFiles/test_bench_harness.dir/bench/harness_test.cpp.o"
  "CMakeFiles/test_bench_harness.dir/bench/harness_test.cpp.o.d"
  "test_bench_harness"
  "test_bench_harness.pdb"
  "test_bench_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
