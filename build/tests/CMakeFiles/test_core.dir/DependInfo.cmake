
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/l1d_cache_test.cpp" "tests/CMakeFiles/test_core.dir/core/l1d_cache_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/l1d_cache_test.cpp.o.d"
  "/root/repo/tests/core/overhead_test.cpp" "tests/CMakeFiles/test_core.dir/core/overhead_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/overhead_test.cpp.o.d"
  "/root/repo/tests/core/pdpt_test.cpp" "tests/CMakeFiles/test_core.dir/core/pdpt_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/pdpt_test.cpp.o.d"
  "/root/repo/tests/core/policies_test.cpp" "tests/CMakeFiles/test_core.dir/core/policies_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/policies_test.cpp.o.d"
  "/root/repo/tests/core/vta_test.cpp" "tests/CMakeFiles/test_core.dir/core/vta_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/vta_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dlpsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
