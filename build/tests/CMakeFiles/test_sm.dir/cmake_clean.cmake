file(REMOVE_RECURSE
  "CMakeFiles/test_sm.dir/sm/coalescer_test.cpp.o"
  "CMakeFiles/test_sm.dir/sm/coalescer_test.cpp.o.d"
  "CMakeFiles/test_sm.dir/sm/ldst_unit_test.cpp.o"
  "CMakeFiles/test_sm.dir/sm/ldst_unit_test.cpp.o.d"
  "CMakeFiles/test_sm.dir/sm/scheduler_test.cpp.o"
  "CMakeFiles/test_sm.dir/sm/scheduler_test.cpp.o.d"
  "CMakeFiles/test_sm.dir/sm/warp_test.cpp.o"
  "CMakeFiles/test_sm.dir/sm/warp_test.cpp.o.d"
  "test_sm"
  "test_sm.pdb"
  "test_sm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
