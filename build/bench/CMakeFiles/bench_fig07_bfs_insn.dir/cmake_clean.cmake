file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_bfs_insn.dir/bench_fig07_bfs_insn.cpp.o"
  "CMakeFiles/bench_fig07_bfs_insn.dir/bench_fig07_bfs_insn.cpp.o.d"
  "bench_fig07_bfs_insn"
  "bench_fig07_bfs_insn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_bfs_insn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
