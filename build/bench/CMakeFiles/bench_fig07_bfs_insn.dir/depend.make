# Empty dependencies file for bench_fig07_bfs_insn.
# This may be replaced when dependencies are built.
