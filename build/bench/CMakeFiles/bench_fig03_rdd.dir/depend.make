# Empty dependencies file for bench_fig03_rdd.
# This may be replaced when dependencies are built.
