file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_memratio.dir/bench_fig06_memratio.cpp.o"
  "CMakeFiles/bench_fig06_memratio.dir/bench_fig06_memratio.cpp.o.d"
  "bench_fig06_memratio"
  "bench_fig06_memratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_memratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
