file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ipc.dir/bench_fig10_ipc.cpp.o"
  "CMakeFiles/bench_fig10_ipc.dir/bench_fig10_ipc.cpp.o.d"
  "bench_fig10_ipc"
  "bench_fig10_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
