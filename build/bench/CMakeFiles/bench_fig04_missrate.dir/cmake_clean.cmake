file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_missrate.dir/bench_fig04_missrate.cpp.o"
  "CMakeFiles/bench_fig04_missrate.dir/bench_fig04_missrate.cpp.o.d"
  "bench_fig04_missrate"
  "bench_fig04_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
