# Empty compiler generated dependencies file for bench_fig05_ipc_size.
# This may be replaced when dependencies are built.
