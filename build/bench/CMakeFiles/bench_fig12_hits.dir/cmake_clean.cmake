file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_hits.dir/bench_fig12_hits.cpp.o"
  "CMakeFiles/bench_fig12_hits.dir/bench_fig12_hits.cpp.o.d"
  "bench_fig12_hits"
  "bench_fig12_hits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_hits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
