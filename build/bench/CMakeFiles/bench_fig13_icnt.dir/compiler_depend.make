# Empty compiler generated dependencies file for bench_fig13_icnt.
# This may be replaced when dependencies are built.
