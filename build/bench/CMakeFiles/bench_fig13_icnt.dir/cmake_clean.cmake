file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_icnt.dir/bench_fig13_icnt.cpp.o"
  "CMakeFiles/bench_fig13_icnt.dir/bench_fig13_icnt.cpp.o.d"
  "bench_fig13_icnt"
  "bench_fig13_icnt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_icnt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
