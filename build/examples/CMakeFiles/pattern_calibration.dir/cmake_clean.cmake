file(REMOVE_RECURSE
  "CMakeFiles/pattern_calibration.dir/pattern_calibration.cpp.o"
  "CMakeFiles/pattern_calibration.dir/pattern_calibration.cpp.o.d"
  "pattern_calibration"
  "pattern_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
