# Empty dependencies file for pattern_calibration.
# This may be replaced when dependencies are built.
