file(REMOVE_RECURSE
  "libdlpsim.a"
)
