# Empty dependencies file for dlpsim.
# This may be replaced when dependencies are built.
