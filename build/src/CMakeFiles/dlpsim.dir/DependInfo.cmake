
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/per_sm_profiler.cpp" "src/CMakeFiles/dlpsim.dir/analysis/per_sm_profiler.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/analysis/per_sm_profiler.cpp.o.d"
  "/root/repo/src/analysis/rd_profiler.cpp" "src/CMakeFiles/dlpsim.dir/analysis/rd_profiler.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/analysis/rd_profiler.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/dlpsim.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/analysis/report.cpp.o.d"
  "/root/repo/src/analysis/reuse_miss.cpp" "src/CMakeFiles/dlpsim.dir/analysis/reuse_miss.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/analysis/reuse_miss.cpp.o.d"
  "/root/repo/src/analysis/trace_replay.cpp" "src/CMakeFiles/dlpsim.dir/analysis/trace_replay.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/analysis/trace_replay.cpp.o.d"
  "/root/repo/src/cache/mshr.cpp" "src/CMakeFiles/dlpsim.dir/cache/mshr.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/cache/mshr.cpp.o.d"
  "/root/repo/src/cache/tag_array.cpp" "src/CMakeFiles/dlpsim.dir/cache/tag_array.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/cache/tag_array.cpp.o.d"
  "/root/repo/src/core/l1d_cache.cpp" "src/CMakeFiles/dlpsim.dir/core/l1d_cache.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/core/l1d_cache.cpp.o.d"
  "/root/repo/src/core/overhead.cpp" "src/CMakeFiles/dlpsim.dir/core/overhead.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/core/overhead.cpp.o.d"
  "/root/repo/src/core/pdpt.cpp" "src/CMakeFiles/dlpsim.dir/core/pdpt.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/core/pdpt.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/CMakeFiles/dlpsim.dir/core/policies.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/core/policies.cpp.o.d"
  "/root/repo/src/core/vta.cpp" "src/CMakeFiles/dlpsim.dir/core/vta.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/core/vta.cpp.o.d"
  "/root/repo/src/gpu/metrics.cpp" "src/CMakeFiles/dlpsim.dir/gpu/metrics.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/gpu/metrics.cpp.o.d"
  "/root/repo/src/gpu/simulator.cpp" "src/CMakeFiles/dlpsim.dir/gpu/simulator.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/gpu/simulator.cpp.o.d"
  "/root/repo/src/icnt/crossbar.cpp" "src/CMakeFiles/dlpsim.dir/icnt/crossbar.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/icnt/crossbar.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/dlpsim.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/l2_cache.cpp" "src/CMakeFiles/dlpsim.dir/mem/l2_cache.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/mem/l2_cache.cpp.o.d"
  "/root/repo/src/mem/partition.cpp" "src/CMakeFiles/dlpsim.dir/mem/partition.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/mem/partition.cpp.o.d"
  "/root/repo/src/sim/clock.cpp" "src/CMakeFiles/dlpsim.dir/sim/clock.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/sim/clock.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/CMakeFiles/dlpsim.dir/sim/config.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/sim/config.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/dlpsim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sm/coalescer.cpp" "src/CMakeFiles/dlpsim.dir/sm/coalescer.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/sm/coalescer.cpp.o.d"
  "/root/repo/src/sm/ldst_unit.cpp" "src/CMakeFiles/dlpsim.dir/sm/ldst_unit.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/sm/ldst_unit.cpp.o.d"
  "/root/repo/src/sm/scheduler.cpp" "src/CMakeFiles/dlpsim.dir/sm/scheduler.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/sm/scheduler.cpp.o.d"
  "/root/repo/src/sm/sm_core.cpp" "src/CMakeFiles/dlpsim.dir/sm/sm_core.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/sm/sm_core.cpp.o.d"
  "/root/repo/src/sm/warp.cpp" "src/CMakeFiles/dlpsim.dir/sm/warp.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/sm/warp.cpp.o.d"
  "/root/repo/src/workloads/apps_ci.cpp" "src/CMakeFiles/dlpsim.dir/workloads/apps_ci.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/workloads/apps_ci.cpp.o.d"
  "/root/repo/src/workloads/apps_cs.cpp" "src/CMakeFiles/dlpsim.dir/workloads/apps_cs.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/workloads/apps_cs.cpp.o.d"
  "/root/repo/src/workloads/patterns.cpp" "src/CMakeFiles/dlpsim.dir/workloads/patterns.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/workloads/patterns.cpp.o.d"
  "/root/repo/src/workloads/program.cpp" "src/CMakeFiles/dlpsim.dir/workloads/program.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/workloads/program.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/dlpsim.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/dlpsim.dir/workloads/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
