#include "harness.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "analysis/per_sm_profiler.h"
#include "gpu/simulator.h"
#include "obs/exporters.h"
#include "obs/timeline.h"
#include "obs/trace_sink.h"
#include "workloads/registry.h"

namespace dlpsim::bench {

namespace {
// Bump when the simulator or the workload calibration changes; stale cache
// entries are keyed away automatically.
constexpr const char* kCacheVersion = "v1";

std::string CacheDir() {
  if (const char* env = std::getenv("DLPSIM_CACHE_DIR")) return env;
  return ".dlpsim_cache";
}

bool TraceEnabled() {
  const char* env = std::getenv("DLPSIM_TRACE");
  return env != nullptr && std::string(env) != "0" && std::string(env) != "";
}

// Tracing implies no result cache: a cache hit would skip the simulation
// and produce no trace.
bool CacheEnabled() {
  return std::getenv("DLPSIM_NOCACHE") == nullptr && !TraceEnabled();
}

std::string TraceOutDir() {
  if (const char* env = std::getenv("DLPSIM_TRACE_OUT")) return env;
  return "dlpsim_trace";
}

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const std::uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}
}  // namespace

double Scale() {
  if (const char* env = std::getenv("DLPSIM_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

const std::vector<std::string>& ConfigNames() {
  static const std::vector<std::string> kNames = {"base", "sb",   "gp",
                                                  "dlp",  "32kb", "64kb"};
  return kNames;
}

SimConfig ConfigFor(const std::string& name) {
  if (name == "base") return SimConfig::Baseline16KB();
  if (name == "sb") return SimConfig::WithPolicy(PolicyKind::kStallBypass);
  if (name == "gp") {
    return SimConfig::WithPolicy(PolicyKind::kGlobalProtection);
  }
  if (name == "dlp") return SimConfig::WithPolicy(PolicyKind::kDlp);
  if (name == "32kb") return SimConfig::Cache32KB();
  if (name == "64kb") return SimConfig::Cache64KB();
  throw std::out_of_range("unknown config: " + name);
}

std::string ProfileResult::ToText() const {
  std::ostringstream os;
  os << "global " << global.buckets[0] << ' ' << global.buckets[1] << ' '
     << global.buckets[2] << ' ' << global.buckets[3] << '\n';
  os << "reuse_accesses " << reuse_accesses << '\n';
  os << "reuse_misses " << reuse_misses << '\n';
  os << "compulsory " << compulsory << '\n';
  for (const auto& [pc, hist] : per_pc) {
    os << "pc " << pc << ' ' << hist.buckets[0] << ' ' << hist.buckets[1]
       << ' ' << hist.buckets[2] << ' ' << hist.buckets[3] << '\n';
  }
  return os.str();
}

ProfileResult ProfileResult::FromText(const std::string& text, bool* ok) {
  ProfileResult r;
  bool saw_global = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "global") {
      ls >> r.global.buckets[0] >> r.global.buckets[1] >>
          r.global.buckets[2] >> r.global.buckets[3];
      saw_global = true;
    } else if (key == "reuse_accesses") {
      ls >> r.reuse_accesses;
    } else if (key == "reuse_misses") {
      ls >> r.reuse_misses;
    } else if (key == "compulsory") {
      ls >> r.compulsory;
    } else if (key == "pc") {
      Pc pc = 0;
      RddHistogram h;
      ls >> pc >> h.buckets[0] >> h.buckets[1] >> h.buckets[2] >>
          h.buckets[3];
      r.per_pc[pc] = h;
    }
  }
  if (ok != nullptr) *ok = saw_global;
  return r;
}

namespace {

std::string KeyFor(const std::string& abbr, const std::string& config) {
  std::ostringstream os;
  os << kCacheVersion << '_' << abbr << '_' << config << "_s" << Scale();
  return os.str();
}

/// Writes the JSON report, Chrome trace and timeline CSV for one traced
/// run into DLPSIM_TRACE_OUT. Failures are reported on stderr and never
/// affect the run's results.
void ExportTrace(const std::string& abbr, const std::string& config,
                 const SimConfig& cfg, const Metrics& metrics,
                 const TimelineSampler& timeline, const TraceSink& sink) {
  namespace fs = std::filesystem;
  const fs::path dir = TraceOutDir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::cerr << "[trace] cannot create " << dir << ": " << ec.message()
              << '\n';
    return;
  }
  const std::string stem = abbr + "_" + config;
  const RunReportInfo info{.app = abbr, .config = config, .scale = Scale()};

  const fs::path report = dir / (stem + ".report.json");
  {
    std::ofstream os(report);
    WriteJsonReport(os, info, cfg, metrics, &timeline, &sink);
  }
  const fs::path chrome = dir / (stem + ".trace.json");
  {
    std::ofstream os(chrome);
    WriteChromeTrace(os, sink, &timeline, cfg.num_cores);
  }
  const fs::path csv = dir / (stem + ".timeline.csv");
  {
    std::ofstream os(csv);
    WriteTimelineCsv(os, timeline);
  }
  std::cerr << "[trace] " << stem << ": " << sink.size() << " events ("
            << sink.dropped() << " dropped) -> " << report.string() << ", "
            << chrome.string() << ", " << csv.string() << '\n';
}

RunResult Simulate(const std::string& abbr, const std::string& config) {
  const SimConfig cfg = ConfigFor(config);
  Workload wl = MakeWorkload(abbr, Scale());

  GpuSimulator gpu(cfg, wl.program.get(), wl.warps_per_sm);
  PerSmProfiler profiler(cfg.num_cores, cfg.l1d.geom.sets);
  profiler.AttachTo(gpu);

  const bool tracing = TraceEnabled();
  TraceSink sink(EnvU64("DLPSIM_TRACE_EVENTS", 1u << 20));
  TimelineSampler timeline(EnvU64("DLPSIM_TRACE_INTERVAL", 5000));
  if (tracing) {
    gpu.SetTraceSink(&sink);
    gpu.SetTimeline(&timeline);
  }

  RunResult result;
  result.metrics = gpu.Run();
  result.profile.global = profiler.GlobalRdd();
  result.profile.per_pc = profiler.PerPcRdd();
  result.profile.reuse_accesses = profiler.reuse_accesses();
  result.profile.reuse_misses = profiler.reuse_misses();
  result.profile.compulsory = profiler.compulsory_accesses();

  if (tracing) {
    ExportTrace(abbr, config, cfg, result.metrics, timeline, sink);
  }
  return result;
}

}  // namespace

RunResult Run(const std::string& abbr, const std::string& config) {
  namespace fs = std::filesystem;
  const fs::path path = fs::path(CacheDir()) / (KeyFor(abbr, config) + ".txt");

  if (CacheEnabled() && fs::exists(path)) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const auto sep = text.find("---\n");
    if (sep != std::string::npos) {
      bool ok_m = false;
      bool ok_p = false;
      RunResult r;
      r.metrics = Metrics::FromText(text.substr(0, sep), &ok_m);
      r.profile = ProfileResult::FromText(text.substr(sep + 4), &ok_p);
      if (ok_m && ok_p) return r;
    }
  }

  RunResult r = Simulate(abbr, config);

  if (CacheEnabled()) {
    std::error_code ec;
    fs::create_directories(CacheDir(), ec);
    std::ofstream out(path);
    out << r.metrics.ToText() << "---\n" << r.profile.ToText();
  }
  return r;
}

double Normalize(double value, double base) {
  return base == 0.0 ? 0.0 : value / base;
}

}  // namespace dlpsim::bench
