#include "harness.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "analysis/per_sm_profiler.h"
#include "exec/run_grid.h"
#include "gpu/simulator.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/timeline.h"
#include "obs/trace_sink.h"
#include "robust/fault.h"
#include "robust/watchdog.h"
#include "sim/env.h"
#include "workloads/registry.h"

namespace dlpsim::bench {

namespace {
// Bump when the simulator or the workload calibration changes; stale cache
// entries are keyed away automatically. v2: entries carry a completion
// footer so truncated files are never served.
constexpr const char* kCacheVersion = "v2";

// Written as the last line of every cache entry; a file without it was
// interrupted mid-write (pre-rename crashes can no longer produce that,
// but entries from other writers stay verifiable).
constexpr const char* kCacheFooter = "#complete";

std::string CacheDir() { return env::Str("DLPSIM_CACHE_DIR", ".dlpsim_cache"); }

bool TraceEnabled() { return env::Flag("DLPSIM_TRACE"); }

const char* FaultSpec() {
  const char* spec = env::Raw("DLPSIM_FAULTS");
  if (spec == nullptr || *spec == '\0' || std::string(spec) == "0") {
    return nullptr;
  }
  return spec;
}

bool FaultsEnabled() { return FaultSpec() != nullptr; }

// Tracing implies no result cache: a cache hit would skip the simulation
// and produce no trace. Fault injection also disables it both ways --
// faulty results must never poison the shared cache, and a clean cached
// result must never stand in for the faulty run under test.
bool CacheEnabled() {
  return !env::IsSet("DLPSIM_NOCACHE") && !TraceEnabled() && !FaultsEnabled();
}

std::string TraceOutDir() {
  return env::Str("DLPSIM_TRACE_OUT", "dlpsim_trace");
}

// Timing artifacts default under the build tree (DLPSIM_DEFAULT_TIMING_DIR
// is injected by bench/CMakeLists.txt) so ad-hoc bench runs never litter
// the source tree; DLPSIM_TIMING_DIR still overrides for CI artifacts.
std::string TimingDir() {
#ifdef DLPSIM_DEFAULT_TIMING_DIR
  return env::Str("DLPSIM_TIMING_DIR", DLPSIM_DEFAULT_TIMING_DIR);
#else
  return env::Str("DLPSIM_TIMING_DIR", ".");
#endif
}

// Grid cells that exhausted their retries in RunGrid (process-wide, like
// Timing()); benches turn this into a non-zero exit after printing every
// table they could compute.
std::atomic<std::size_t> g_failed_cells{0};

// DLPSIM_PROGRESS: 0 = off, "1"/any truthy value = heartbeat every 1M
// core cycles, >= 2 = explicit interval in core cycles.
std::uint64_t ProgressInterval() {
  if (!env::Flag("DLPSIM_PROGRESS")) return 0;
  const std::uint64_t v = env::U64("DLPSIM_PROGRESS", 1);
  return v >= 2 ? v : 1'000'000;
}

bool ProfileEnabled() { return env::Flag("DLPSIM_PROFILE"); }

bool MetricsDumpEnabled() { return env::Flag("DLPSIM_METRICS"); }
}  // namespace

double Scale() { return env::PositiveDouble("DLPSIM_SCALE", 1.0); }

const std::vector<std::string>& ConfigNames() {
  static const std::vector<std::string> kNames = {"base", "sb",   "gp",
                                                  "dlp",  "32kb", "64kb"};
  return kNames;
}

std::vector<std::string> AllAppAbbrs() {
  std::vector<std::string> abbrs;
  for (const AppInfo& app : AllApps()) abbrs.push_back(app.abbr);
  return abbrs;
}

SimConfig ConfigFor(const std::string& name) {
  SimConfig cfg;
  if (name == "base") {
    cfg = SimConfig::Baseline16KB();
  } else if (name == "sb") {
    cfg = SimConfig::WithPolicy(PolicyKind::kStallBypass);
  } else if (name == "gp") {
    cfg = SimConfig::WithPolicy(PolicyKind::kGlobalProtection);
  } else if (name == "dlp") {
    cfg = SimConfig::WithPolicy(PolicyKind::kDlp);
  } else if (name == "32kb") {
    cfg = SimConfig::Cache32KB();
  } else if (name == "64kb") {
    cfg = SimConfig::Cache64KB();
  } else {
    throw std::out_of_range("unknown config: " + name);
  }
  // Fail fast with the structured issue list if a preset is ever edited
  // into an invalid state (also the gate for locally patched presets).
  cfg.ValidateOrThrow();
  return cfg;
}

std::string ProfileResult::ToText() const {
  std::ostringstream os;
  os << "global " << global.buckets[0] << ' ' << global.buckets[1] << ' '
     << global.buckets[2] << ' ' << global.buckets[3] << '\n';
  os << "reuse_accesses " << reuse_accesses << '\n';
  os << "reuse_misses " << reuse_misses << '\n';
  os << "compulsory " << compulsory << '\n';
  for (const auto& [pc, hist] : per_pc) {
    os << "pc " << pc << ' ' << hist.buckets[0] << ' ' << hist.buckets[1]
       << ' ' << hist.buckets[2] << ' ' << hist.buckets[3] << '\n';
  }
  return os.str();
}

ProfileResult ProfileResult::FromText(const std::string& text, bool* ok) {
  ProfileResult r;
  bool saw_global = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "global") {
      ls >> r.global.buckets[0] >> r.global.buckets[1] >>
          r.global.buckets[2] >> r.global.buckets[3];
      saw_global = true;
    } else if (key == "reuse_accesses") {
      ls >> r.reuse_accesses;
    } else if (key == "reuse_misses") {
      ls >> r.reuse_misses;
    } else if (key == "compulsory") {
      ls >> r.compulsory;
    } else if (key == "pc") {
      Pc pc = 0;
      RddHistogram h;
      ls >> pc >> h.buckets[0] >> h.buckets[1] >> h.buckets[2] >>
          h.buckets[3];
      r.per_pc[pc] = h;
    }
  }
  if (ok != nullptr) *ok = saw_global;
  return r;
}

namespace {

std::string KeyFor(const std::string& abbr, const std::string& config,
                   double scale) {
  std::ostringstream os;
  os << kCacheVersion << '_' << abbr << '_' << config << "_s" << scale;
  return os.str();
}

/// Writes the JSON report, Chrome trace and timeline CSV for one traced
/// run into DLPSIM_TRACE_OUT. Failures are reported on stderr and never
/// affect the run's results.
void ExportTrace(const std::string& abbr, const std::string& config,
                 double scale, const SimConfig& cfg, const Metrics& metrics,
                 const TimelineSampler& timeline, const TraceSink& sink) {
  namespace fs = std::filesystem;
  const fs::path dir = TraceOutDir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::cerr << "[trace] cannot create " << dir << ": " << ec.message()
              << '\n';
    return;
  }
  const std::string stem = abbr + "_" + config;
  const RunReportInfo info{.app = abbr, .config = config, .scale = scale};

  const fs::path report = dir / (stem + ".report.json");
  {
    std::ofstream os(report);
    WriteJsonReport(os, info, cfg, metrics, &timeline, &sink);
  }
  const fs::path chrome = dir / (stem + ".trace.json");
  {
    std::ofstream os(chrome);
    WriteChromeTrace(os, sink, &timeline, cfg.num_cores);
  }
  const fs::path csv = dir / (stem + ".timeline.csv");
  {
    std::ofstream os(csv);
    WriteTimelineCsv(os, timeline);
  }
  std::cerr << "[trace] " << stem << ": " << sink.size() << " events ("
            << sink.dropped() << " dropped) -> " << report.string() << ", "
            << chrome.string() << ", " << csv.string() << '\n';
}

/// Writes the fault-injection artifact (and, if the watchdog tripped, its
/// diagnostic) into DLPSIM_TIMING_DIR. Best-effort: export failures are
/// reported on stderr and never change run results.
void ExportFaultArtifacts(const std::string& abbr, const std::string& config,
                          const robust::FaultInjector& injector,
                          const robust::Watchdog* watchdog) {
  namespace fs = std::filesystem;
  const fs::path dir = TimingDir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string stem = abbr + "_" + config;
  const fs::path faults = dir / (stem + "_faults.json");
  {
    std::ofstream os(faults);
    if (!os) {
      std::cerr << "[faults] cannot write " << faults << '\n';
      return;
    }
    injector.WriteJson(os);
  }
  std::cerr << "[faults] " << stem << ": applied " << injector.applied_total()
            << "/" << injector.plan().events.size() << " -> "
            << faults.string() << '\n';
  if (watchdog != nullptr && watchdog->tripped()) {
    const fs::path diag = dir / (stem + "_watchdog.json");
    std::ofstream os(diag);
    if (os) watchdog->diagnostic().WriteJson(os);
  }
}

/// Writes one profiled cell's phase breakdown into DLPSIM_TIMING_DIR in
/// every supported shape: JSON (machine), collapsed stacks (flamegraph),
/// Prometheus text and a Chrome trace of the retained spans. Best-effort.
void ExportProfile(const std::string& abbr, const std::string& config,
                   const obs::Profiler& profiler) {
  namespace fs = std::filesystem;
  const fs::path dir = TimingDir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string stem = abbr + "_" + config + "_profile";
  {
    std::ofstream os(dir / (stem + ".json"));
    if (!os) {
      std::cerr << "[profile] cannot write " << (dir / (stem + ".json"))
                << '\n';
      return;
    }
    profiler.WriteJson(os);
  }
  {
    std::ofstream os(dir / (stem + ".collapsed"));
    profiler.WriteCollapsed(os);
  }
  {
    std::ofstream os(dir / (stem + ".prom"));
    profiler.WriteText(os);
  }
  {
    std::ofstream os(dir / (stem + ".trace.json"));
    WriteProfileChromeTrace(os, profiler, abbr + "/" + config);
  }
  std::cerr << "[profile] " << abbr << '/' << config << ": "
            << profiler.events().size() << " spans ("
            << profiler.dropped_events() << " dropped) -> "
            << (dir / stem).string() << ".{json,collapsed,prom,trace.json}"
            << '\n';
}

}  // namespace

RunResult SimulateUncached(const std::string& abbr, const std::string& config,
                           double scale) {
  RunOverrides ov;
  if (const char* spec = FaultSpec()) ov.fault_spec = spec;
  ov.watchdog_cycles = env::U64("DLPSIM_WATCHDOG", 0);
  return SimulateUncached(abbr, config, scale, ov);
}

RunResult SimulateUncached(const std::string& abbr, const std::string& config,
                           double scale, const RunOverrides& overrides) {
  const SimConfig cfg = ConfigFor(config);
  Workload wl = MakeWorkload(abbr, scale);

  GpuSimulator gpu(cfg, wl.program.get(), wl.warps_per_sm);
  PerSmProfiler profiler(cfg.num_cores, cfg.l1d.geom.sets);
  profiler.AttachTo(gpu);

  const bool tracing = TraceEnabled();
  TraceSink sink(env::U64("DLPSIM_TRACE_EVENTS", 1u << 20));
  TimelineSampler timeline(env::U64("DLPSIM_TRACE_INTERVAL", 5000));
  if (tracing) {
    gpu.SetTraceSink(&sink);
    gpu.SetTimeline(&timeline);
  }

  // Observability hooks. The phase profiler is per-cell (the Profiler is
  // single-threaded by design), so profiling stays safe at any job
  // count; neither hook changes simulation results.
  std::unique_ptr<obs::Profiler> phase_profiler;
  if (ProfileEnabled()) {
    phase_profiler = std::make_unique<obs::Profiler>();
    gpu.SetProfiler(phase_profiler.get());
  }
  std::unique_ptr<obs::ProgressMeter> progress;
  if (const std::uint64_t interval = ProgressInterval(); interval > 0) {
    progress = std::make_unique<obs::ProgressMeter>(interval,
                                                    abbr + "/" + config);
    gpu.SetProgress(progress.get());
  }

  // Resilience hooks (both off by default, so un-faulted runs stay
  // byte-identical to earlier releases). DLPSIM_FAULTS selects a seeded
  // fault plan; DLPSIM_WATCHDOG=<cycles> arms the forward-progress
  // watchdog with that stall threshold.
  std::unique_ptr<robust::FaultInjector> injector;
  if (!overrides.fault_spec.empty()) {
    robust::FaultPlan plan;
    std::string err;
    if (!robust::FaultPlan::Parse(overrides.fault_spec, &plan, &err)) {
      throw std::invalid_argument("DLPSIM_FAULTS: " + err);
    }
    injector = std::make_unique<robust::FaultInjector>(plan);
    gpu.SetFaultInjector(injector.get());
  }
  std::unique_ptr<robust::Watchdog> watchdog;
  if (const std::uint64_t stall = overrides.watchdog_cycles; stall > 0) {
    watchdog = std::make_unique<robust::Watchdog>(
        robust::WatchdogConfig{/*check_interval=*/1024,
                               /*stall_cycles=*/stall});
    gpu.SetWatchdog(watchdog.get());
  }

  RunResult result;
  result.metrics = gpu.Run();

  if (injector != nullptr) {
    ExportFaultArtifacts(abbr, config, *injector, watchdog.get());
  }
  if (watchdog != nullptr && watchdog->tripped()) {
    std::cerr << watchdog->diagnostic().ToText();
    throw robust::RunErrorException(
        robust::RunError::kWatchdogStall,
        "watchdog: " + abbr + "/" + config + " made no forward progress for " +
        std::to_string(watchdog->config().stall_cycles) +
        " cycles (stalled resource: " +
        watchdog->diagnostic().StalledResource() + ")");
  }
  result.profile.global = profiler.GlobalRdd();
  result.profile.per_pc = profiler.PerPcRdd();
  result.profile.reuse_accesses = profiler.reuse_accesses();
  result.profile.reuse_misses = profiler.reuse_misses();
  result.profile.compulsory = profiler.compulsory_accesses();

  if (tracing) {
    ExportTrace(abbr, config, scale, cfg, result.metrics, timeline, sink);
  }
  if (phase_profiler != nullptr) {
    ExportProfile(abbr, config, *phase_profiler);
  }
  return result;
}

std::filesystem::path CachePathFor(const std::string& abbr,
                                   const std::string& config, double scale) {
  return std::filesystem::path(CacheDir()) /
         (KeyFor(abbr, config, scale) + ".txt");
}

bool LoadCacheFile(const std::filesystem::path& path, RunResult* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // A complete entry ends with the footer line the writer appends last.
  const std::string footer = std::string(kCacheFooter) + "\n";
  if (text.size() < footer.size() ||
      text.compare(text.size() - footer.size(), footer.size(), footer) != 0) {
    return false;
  }
  const auto sep = text.find("---\n");
  if (sep == std::string::npos) return false;

  bool ok_m = false;
  bool ok_p = false;
  RunResult r;
  r.metrics = Metrics::FromText(text.substr(0, sep), &ok_m);
  r.profile = ProfileResult::FromText(text.substr(sep + 4), &ok_p);
  if (!ok_m || !ok_p) return false;
  if (out != nullptr) *out = r;
  return true;
}

void StoreCacheFile(const std::filesystem::path& path, const RunResult& r) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);

  // Unique temp name per process and thread so concurrent writers of the
  // same cell never collide; rename() is atomic within the directory.
  std::ostringstream tmp_name;
  tmp_name << path.filename().string() << ".tmp." << ::getpid() << '.'
           << std::this_thread::get_id();
  const fs::path tmp = path.parent_path() / tmp_name.str();
  {
    std::ofstream out(tmp);
    out << r.metrics.ToText() << "---\n"
        << r.profile.ToText() << kCacheFooter << '\n';
    if (!out) {
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

exec::TimingLog& Timing() {
  static exec::TimingLog log;
  return log;
}

// Constructing the scope starts the global log's wall clock (the
// function-local static would otherwise first be touched after the
// first simulation already finished).
TimingScope::TimingScope(std::string name) : name_(std::move(name)) {
  Timing();
}

TimingScope::~TimingScope() {
  namespace fs = std::filesystem;
  const fs::path dir = TimingDir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path path = dir / (name_ + "_timing.json");
  std::ofstream os(path);
  if (!os) {
    std::cerr << "[timing] cannot write " << path << '\n';
    return;
  }
  // Mirror RunGrid's worker-count resolution so the report names the
  // job count actually used (tracing forces serial).
  const std::size_t jobs = TraceEnabled() ? 1 : exec::DefaultJobs();
  Timing().WriteJson(os, name_, jobs, Scale());

  // DLPSIM_METRICS: dump the global registry next to the timing report.
  // The registry holds only merge-order-independent integers, so this
  // dump is byte-identical at any DLPSIM_JOBS.
  if (MetricsDumpEnabled()) {
    const fs::path prom = dir / (name_ + "_metrics.prom");
    {
      std::ofstream mos(prom);
      if (mos) {
        obs::Registry::Global().WriteText(mos);
      } else {
        std::cerr << "[metrics] cannot write " << prom << '\n';
      }
    }
    const fs::path json = dir / (name_ + "_metrics.json");
    std::ofstream mos(json);
    if (mos) {
      obs::Registry::Global().WriteJson(mos);
    } else {
      std::cerr << "[metrics] cannot write " << json << '\n';
    }
  }
}

namespace {

/// Loads the cell from disk or simulates it (recording timing), then
/// stores it back. Exactly one thread per cell runs this (see Run).
RunResult LoadOrSimulate(const std::string& abbr, const std::string& config,
                         double scale) {
  const std::filesystem::path path = CachePathFor(abbr, config, scale);

  if (CacheEnabled()) {
    RunResult cached;
    if (LoadCacheFile(path, &cached)) {
      exec::TimingCell cell;
      cell.app = abbr;
      cell.config = config;
      cell.cached = true;
      Timing().Record(std::move(cell));
      return cached;
    }
  }

  const exec::Stopwatch cell_clock;
  RunResult r = SimulateUncached(abbr, config, scale);
  exec::TimingCell cell;
  cell.app = abbr;
  cell.config = config;
  cell.seconds = cell_clock.Seconds();
  Timing().Record(std::move(cell));

  if (CacheEnabled()) StoreCacheFile(path, r);
  return r;
}

/// In-process memo: single-flight per cell, but (unlike call_once) NOT
/// failure-sticky. A failed flight releases the cell so a later caller --
/// e.g. RunGrid's retry pass -- can attempt it again; only successes are
/// memoized. Callers that were waiting on the failing flight see that
/// flight's exception. std::map gives reference stability, so the flight
/// runs outside the registry lock.
struct CellState {
  std::mutex mu;
  std::condition_variable cv;
  bool running = false;
  bool done = false;
  RunResult result;
  std::exception_ptr last_error;
  std::uint64_t error_seq = 0;  // bumped on every failed flight
};

struct Memo {
  std::mutex mu;
  std::map<std::string, CellState> cells;
};

Memo& GlobalMemo() {
  static Memo memo;
  return memo;
}

}  // namespace

RunResult Run(const std::string& abbr, const std::string& config,
              double scale) {
  Memo& memo = GlobalMemo();
  CellState* cell = nullptr;
  {
    std::lock_guard<std::mutex> lock(memo.mu);
    cell = &memo.cells[KeyFor(abbr, config, scale)];
  }

  std::unique_lock<std::mutex> lock(cell->mu);
  for (;;) {
    if (cell->done) return cell->result;
    if (!cell->running) break;
    // Another thread's flight is in progress: share its outcome rather
    // than queueing a duplicate simulation.
    const std::uint64_t seq = cell->error_seq;
    cell->cv.wait(lock,
                  [&] { return cell->done || cell->error_seq != seq; });
    if (cell->done) return cell->result;
    std::rethrow_exception(cell->last_error);
  }

  cell->running = true;
  lock.unlock();
  try {
    RunResult r = LoadOrSimulate(abbr, config, scale);
    lock.lock();
    cell->result = std::move(r);
    cell->done = true;
    cell->running = false;
    cell->cv.notify_all();
    return cell->result;
  } catch (...) {
    lock.lock();
    cell->last_error = std::current_exception();
    ++cell->error_seq;
    cell->running = false;
    cell->cv.notify_all();
    throw;
  }
}

RunResult Run(const std::string& abbr, const std::string& config) {
  return Run(abbr, config, Scale());
}

std::vector<RunResult> RunGrid(const std::vector<std::string>& apps,
                               const std::vector<std::string>& configs,
                               double scale, std::size_t jobs) {
  if (jobs == 0) jobs = exec::DefaultJobs();
  // Each simulated run owns a private trace sink/timeline, so tracing is
  // safe at any job count; serial keeps the [trace] log and the export
  // order deterministic.
  if (TraceEnabled()) jobs = 1;
  const std::vector<exec::Job> grid = exec::Grid(apps, configs);

  // Resilient execution: a cell that throws (bad workload, watchdog trip,
  // fault-induced failure) is retried once and, if it still fails, is
  // recorded as a structured failure instead of aborting its siblings.
  // Its result slot stays value-initialized so tables keep their shape.
  exec::RetryPolicy retry;
  retry.timeout_seconds = env::PositiveDouble("DLPSIM_JOB_TIMEOUT", 0.0);
  exec::GridRun<RunResult> run = exec::TryRunJobs(
      grid, [scale](const exec::Job& j) { return Run(j.app, j.config, scale); },
      retry, jobs);

  for (const exec::JobFailure& f : run.failures) {
    std::cerr << "[grid] FAILED " << f.job.app << '/' << f.job.config
              << " after " << f.attempts << " attempt(s)"
              << (f.timed_out ? " (timed out)" : "") << ": " << f.error
              << '\n';
    exec::TimingCell cell;
    cell.app = f.job.app;
    cell.config = f.job.config;
    cell.failed = true;
    cell.timed_out = f.timed_out;
    cell.attempts = f.attempts;
    cell.error = f.error;
    Timing().Record(std::move(cell));

    // Tombstone the exhausted cell in the memo with the same
    // value-initialized result as run.results[f.index]: benches re-read
    // cells through Run() in their table loops, and without this the
    // non-sticky memo would re-simulate the known-bad cell and throw
    // mid-table. The failure is already on record (stderr, timing log,
    // FailedCells()).
    Memo& memo = GlobalMemo();
    CellState* state = nullptr;
    {
      std::lock_guard<std::mutex> reg(memo.mu);
      state = &memo.cells[KeyFor(f.job.app, f.job.config, scale)];
    }
    std::lock_guard<std::mutex> cl(state->mu);
    if (!state->done && !state->running) {
      state->result = RunResult{};
      state->done = true;
    }
  }
  g_failed_cells += run.failures.size();
  return std::move(run.results);
}

std::vector<RunResult> RunGrid(const std::vector<std::string>& apps,
                               const std::vector<std::string>& configs,
                               std::size_t jobs) {
  return RunGrid(apps, configs, Scale(), jobs);
}

double Normalize(double value, double base) {
  return base == 0.0 ? 0.0 : value / base;
}

std::size_t FailedCells() { return g_failed_cells.load(); }

int ExitStatus() { return FailedCells() == 0 ? 0 : 1; }

}  // namespace dlpsim::bench
