#include "harness.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "analysis/per_sm_profiler.h"
#include "exec/run_grid.h"
#include "gpu/simulator.h"
#include "obs/exporters.h"
#include "obs/timeline.h"
#include "obs/trace_sink.h"
#include "workloads/registry.h"

namespace dlpsim::bench {

namespace {
// Bump when the simulator or the workload calibration changes; stale cache
// entries are keyed away automatically. v2: entries carry a completion
// footer so truncated files are never served.
constexpr const char* kCacheVersion = "v2";

// Written as the last line of every cache entry; a file without it was
// interrupted mid-write (pre-rename crashes can no longer produce that,
// but entries from other writers stay verifiable).
constexpr const char* kCacheFooter = "#complete";

std::string CacheDir() {
  if (const char* env = std::getenv("DLPSIM_CACHE_DIR")) return env;
  return ".dlpsim_cache";
}

bool TraceEnabled() {
  const char* env = std::getenv("DLPSIM_TRACE");
  return env != nullptr && std::string(env) != "0" && std::string(env) != "";
}

// Tracing implies no result cache: a cache hit would skip the simulation
// and produce no trace.
bool CacheEnabled() {
  return std::getenv("DLPSIM_NOCACHE") == nullptr && !TraceEnabled();
}

std::string TraceOutDir() {
  if (const char* env = std::getenv("DLPSIM_TRACE_OUT")) return env;
  return "dlpsim_trace";
}

std::string TimingDir() {
  if (const char* env = std::getenv("DLPSIM_TIMING_DIR")) return env;
  return ".";
}

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const std::uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}
}  // namespace

double Scale() {
  if (const char* env = std::getenv("DLPSIM_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

const std::vector<std::string>& ConfigNames() {
  static const std::vector<std::string> kNames = {"base", "sb",   "gp",
                                                  "dlp",  "32kb", "64kb"};
  return kNames;
}

std::vector<std::string> AllAppAbbrs() {
  std::vector<std::string> abbrs;
  for (const AppInfo& app : AllApps()) abbrs.push_back(app.abbr);
  return abbrs;
}

SimConfig ConfigFor(const std::string& name) {
  if (name == "base") return SimConfig::Baseline16KB();
  if (name == "sb") return SimConfig::WithPolicy(PolicyKind::kStallBypass);
  if (name == "gp") {
    return SimConfig::WithPolicy(PolicyKind::kGlobalProtection);
  }
  if (name == "dlp") return SimConfig::WithPolicy(PolicyKind::kDlp);
  if (name == "32kb") return SimConfig::Cache32KB();
  if (name == "64kb") return SimConfig::Cache64KB();
  throw std::out_of_range("unknown config: " + name);
}

std::string ProfileResult::ToText() const {
  std::ostringstream os;
  os << "global " << global.buckets[0] << ' ' << global.buckets[1] << ' '
     << global.buckets[2] << ' ' << global.buckets[3] << '\n';
  os << "reuse_accesses " << reuse_accesses << '\n';
  os << "reuse_misses " << reuse_misses << '\n';
  os << "compulsory " << compulsory << '\n';
  for (const auto& [pc, hist] : per_pc) {
    os << "pc " << pc << ' ' << hist.buckets[0] << ' ' << hist.buckets[1]
       << ' ' << hist.buckets[2] << ' ' << hist.buckets[3] << '\n';
  }
  return os.str();
}

ProfileResult ProfileResult::FromText(const std::string& text, bool* ok) {
  ProfileResult r;
  bool saw_global = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "global") {
      ls >> r.global.buckets[0] >> r.global.buckets[1] >>
          r.global.buckets[2] >> r.global.buckets[3];
      saw_global = true;
    } else if (key == "reuse_accesses") {
      ls >> r.reuse_accesses;
    } else if (key == "reuse_misses") {
      ls >> r.reuse_misses;
    } else if (key == "compulsory") {
      ls >> r.compulsory;
    } else if (key == "pc") {
      Pc pc = 0;
      RddHistogram h;
      ls >> pc >> h.buckets[0] >> h.buckets[1] >> h.buckets[2] >>
          h.buckets[3];
      r.per_pc[pc] = h;
    }
  }
  if (ok != nullptr) *ok = saw_global;
  return r;
}

namespace {

std::string KeyFor(const std::string& abbr, const std::string& config,
                   double scale) {
  std::ostringstream os;
  os << kCacheVersion << '_' << abbr << '_' << config << "_s" << scale;
  return os.str();
}

/// Writes the JSON report, Chrome trace and timeline CSV for one traced
/// run into DLPSIM_TRACE_OUT. Failures are reported on stderr and never
/// affect the run's results.
void ExportTrace(const std::string& abbr, const std::string& config,
                 double scale, const SimConfig& cfg, const Metrics& metrics,
                 const TimelineSampler& timeline, const TraceSink& sink) {
  namespace fs = std::filesystem;
  const fs::path dir = TraceOutDir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::cerr << "[trace] cannot create " << dir << ": " << ec.message()
              << '\n';
    return;
  }
  const std::string stem = abbr + "_" + config;
  const RunReportInfo info{.app = abbr, .config = config, .scale = scale};

  const fs::path report = dir / (stem + ".report.json");
  {
    std::ofstream os(report);
    WriteJsonReport(os, info, cfg, metrics, &timeline, &sink);
  }
  const fs::path chrome = dir / (stem + ".trace.json");
  {
    std::ofstream os(chrome);
    WriteChromeTrace(os, sink, &timeline, cfg.num_cores);
  }
  const fs::path csv = dir / (stem + ".timeline.csv");
  {
    std::ofstream os(csv);
    WriteTimelineCsv(os, timeline);
  }
  std::cerr << "[trace] " << stem << ": " << sink.size() << " events ("
            << sink.dropped() << " dropped) -> " << report.string() << ", "
            << chrome.string() << ", " << csv.string() << '\n';
}

}  // namespace

RunResult SimulateUncached(const std::string& abbr, const std::string& config,
                           double scale) {
  const SimConfig cfg = ConfigFor(config);
  Workload wl = MakeWorkload(abbr, scale);

  GpuSimulator gpu(cfg, wl.program.get(), wl.warps_per_sm);
  PerSmProfiler profiler(cfg.num_cores, cfg.l1d.geom.sets);
  profiler.AttachTo(gpu);

  const bool tracing = TraceEnabled();
  TraceSink sink(EnvU64("DLPSIM_TRACE_EVENTS", 1u << 20));
  TimelineSampler timeline(EnvU64("DLPSIM_TRACE_INTERVAL", 5000));
  if (tracing) {
    gpu.SetTraceSink(&sink);
    gpu.SetTimeline(&timeline);
  }

  RunResult result;
  result.metrics = gpu.Run();
  result.profile.global = profiler.GlobalRdd();
  result.profile.per_pc = profiler.PerPcRdd();
  result.profile.reuse_accesses = profiler.reuse_accesses();
  result.profile.reuse_misses = profiler.reuse_misses();
  result.profile.compulsory = profiler.compulsory_accesses();

  if (tracing) {
    ExportTrace(abbr, config, scale, cfg, result.metrics, timeline, sink);
  }
  return result;
}

std::filesystem::path CachePathFor(const std::string& abbr,
                                   const std::string& config, double scale) {
  return std::filesystem::path(CacheDir()) /
         (KeyFor(abbr, config, scale) + ".txt");
}

bool LoadCacheFile(const std::filesystem::path& path, RunResult* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // A complete entry ends with the footer line the writer appends last.
  const std::string footer = std::string(kCacheFooter) + "\n";
  if (text.size() < footer.size() ||
      text.compare(text.size() - footer.size(), footer.size(), footer) != 0) {
    return false;
  }
  const auto sep = text.find("---\n");
  if (sep == std::string::npos) return false;

  bool ok_m = false;
  bool ok_p = false;
  RunResult r;
  r.metrics = Metrics::FromText(text.substr(0, sep), &ok_m);
  r.profile = ProfileResult::FromText(text.substr(sep + 4), &ok_p);
  if (!ok_m || !ok_p) return false;
  if (out != nullptr) *out = r;
  return true;
}

void StoreCacheFile(const std::filesystem::path& path, const RunResult& r) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);

  // Unique temp name per process and thread so concurrent writers of the
  // same cell never collide; rename() is atomic within the directory.
  std::ostringstream tmp_name;
  tmp_name << path.filename().string() << ".tmp." << ::getpid() << '.'
           << std::this_thread::get_id();
  const fs::path tmp = path.parent_path() / tmp_name.str();
  {
    std::ofstream out(tmp);
    out << r.metrics.ToText() << "---\n"
        << r.profile.ToText() << kCacheFooter << '\n';
    if (!out) {
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

exec::TimingLog& Timing() {
  static exec::TimingLog log;
  return log;
}

// Constructing the scope starts the global log's wall clock (the
// function-local static would otherwise first be touched after the
// first simulation already finished).
TimingScope::TimingScope(std::string name) : name_(std::move(name)) {
  Timing();
}

TimingScope::~TimingScope() {
  namespace fs = std::filesystem;
  const fs::path dir = TimingDir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path path = dir / (name_ + "_timing.json");
  std::ofstream os(path);
  if (!os) {
    std::cerr << "[timing] cannot write " << path << '\n';
    return;
  }
  // Mirror RunGrid's worker-count resolution so the report names the
  // job count actually used (tracing forces serial).
  const std::size_t jobs = TraceEnabled() ? 1 : exec::DefaultJobs();
  Timing().WriteJson(os, name_, jobs, Scale());
}

namespace {

/// Loads the cell from disk or simulates it (recording timing), then
/// stores it back. Exactly one thread per cell runs this (see Run).
RunResult LoadOrSimulate(const std::string& abbr, const std::string& config,
                         double scale) {
  const std::filesystem::path path = CachePathFor(abbr, config, scale);

  if (CacheEnabled()) {
    RunResult cached;
    if (LoadCacheFile(path, &cached)) {
      Timing().Record({abbr, config, 0.0, /*cached=*/true});
      return cached;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  RunResult r = SimulateUncached(abbr, config, scale);
  const auto t1 = std::chrono::steady_clock::now();
  Timing().Record({abbr, config, std::chrono::duration<double>(t1 - t0).count(),
                   /*cached=*/false});

  if (CacheEnabled()) StoreCacheFile(path, r);
  return r;
}

/// In-process memo: single-flight per cell. std::map gives reference
/// stability, so call_once can run outside the registry lock.
struct CellState {
  std::once_flag once;
  RunResult result;
  std::exception_ptr error;
};

struct Memo {
  std::mutex mu;
  std::map<std::string, CellState> cells;
};

Memo& GlobalMemo() {
  static Memo memo;
  return memo;
}

}  // namespace

RunResult Run(const std::string& abbr, const std::string& config,
              double scale) {
  Memo& memo = GlobalMemo();
  CellState* cell = nullptr;
  {
    std::lock_guard<std::mutex> lock(memo.mu);
    cell = &memo.cells[KeyFor(abbr, config, scale)];
  }
  std::call_once(cell->once, [&] {
    try {
      cell->result = LoadOrSimulate(abbr, config, scale);
    } catch (...) {
      cell->error = std::current_exception();
    }
  });
  if (cell->error) std::rethrow_exception(cell->error);
  return cell->result;
}

RunResult Run(const std::string& abbr, const std::string& config) {
  return Run(abbr, config, Scale());
}

std::vector<RunResult> RunGrid(const std::vector<std::string>& apps,
                               const std::vector<std::string>& configs,
                               double scale, std::size_t jobs) {
  if (jobs == 0) jobs = exec::DefaultJobs();
  // Each simulated run owns a private trace sink/timeline, so tracing is
  // safe at any job count; serial keeps the [trace] log and the export
  // order deterministic.
  if (TraceEnabled()) jobs = 1;
  const std::vector<exec::Job> grid = exec::Grid(apps, configs);
  return exec::RunJobs(
      grid, [scale](const exec::Job& j) { return Run(j.app, j.config, scale); },
      jobs);
}

std::vector<RunResult> RunGrid(const std::vector<std::string>& apps,
                               const std::vector<std::string>& configs,
                               std::size_t jobs) {
  return RunGrid(apps, configs, Scale(), jobs);
}

double Normalize(double value, double base) {
  return base == 0.0 ? 0.0 : value / base;
}

}  // namespace dlpsim::bench
