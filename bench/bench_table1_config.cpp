// Prints paper Table 1 (the baseline GPU configuration) as encoded in
// SimConfig, so the reproduction's parameters are auditable.
#include <iostream>

#include "analysis/report.h"
#include "harness.h"

using namespace dlpsim;

int main() {
  bench::TimingScope timing("bench_table1_config");
  const SimConfig cfg = SimConfig::Baseline16KB();
  std::cout << "=== Table 1: baseline GPU configuration (Tesla M2090 / "
               "Fermi) ===\n\n";
  TextTable t({"parameter", "value"});
  t.AddRow({"Number of Cores", std::to_string(cfg.num_cores)});
  t.AddRow({"Warp Size", std::to_string(cfg.core.warp_size)});
  t.AddRow({"Max # of warps per core", std::to_string(cfg.core.max_warps)});
  t.AddRow({"Warp schedulers per core",
            std::to_string(cfg.core.num_schedulers) + ", GTO policy"});
  t.AddRow({"L1D cache",
            std::to_string(cfg.l1d.geom.size_bytes() / 1024) + "KB, " +
                std::to_string(cfg.l1d.geom.sets) + " sets, " +
                std::to_string(cfg.l1d.geom.ways) + "-way, Hash index"});
  t.AddRow({"L1D MSHR entries", std::to_string(cfg.l1d.mshr_entries)});
  t.AddRow({"Core/ICNT/Memory Clock",
            Fmt(cfg.core_mhz, 0) + "/" + Fmt(cfg.icnt_mhz, 0) + "/" +
                Fmt(cfg.mem_mhz, 0) + " MHz"});
  t.AddRow({"# of memory partitions", std::to_string(cfg.num_partitions)});
  t.AddRow({"L2 cache",
            std::to_string(cfg.l2.geom.size_bytes() * cfg.num_partitions /
                           1024) +
                "KB total, " + std::to_string(cfg.l2.geom.sets) + " sets, " +
                std::to_string(cfg.l2.geom.ways) + "-way, Linear index"});
  t.AddRow({"DRAM banks / partition", std::to_string(cfg.dram.banks)});
  const double bw = cfg.dram.bus_bytes_per_cycle * cfg.mem_mhz * 1e6 *
                    cfg.num_partitions / 1e9;
  t.AddRow({"Memory bandwidth", Fmt(bw, 1) + " GB/s (paper: 177.4 GB/s)"});
  std::cout << t.Render();
  return bench::ExitStatus();
}
