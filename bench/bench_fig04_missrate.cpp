// Reproduces paper Fig. 4: reuse-data miss rate (compulsory misses
// excluded) of 16KB (4-way), 32KB (8-way) and 64KB (16-way) L1D caches.
#include <iostream>

#include "analysis/report.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;

int main() {
  bench::TimingScope timing("bench_fig04_missrate");
  std::cout << "=== Fig. 4: reuse-data miss rate vs cache size ===\n\n";
  // Simulate the whole grid in parallel (DLPSIM_JOBS workers); the
  // loops below then hit the in-process memo.
  bench::RunGrid(bench::AllAppAbbrs(), {"base", "32kb", "64kb"});
  TextTable t({"app", "type", "16KB", "32KB", "64KB"});
  for (const AppInfo& app : AllApps()) {
    t.AddRow({app.abbr, app.cache_insufficient ? "CI" : "CS",
              Pct(bench::Run(app.abbr, "base").profile.reuse_miss_rate()),
              Pct(bench::Run(app.abbr, "32kb").profile.reuse_miss_rate()),
              Pct(bench::Run(app.abbr, "64kb").profile.reuse_miss_rate())});
  }
  std::cout << t.Render() << '\n';
  std::cout << "Paper shape: miss rates fall as associativity grows for "
               "most applications; apps with RDs clustered at the extremes "
               "(HG, STEN, SC, BP) barely move.\n";
  return bench::ExitStatus();
}
