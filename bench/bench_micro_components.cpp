// google-benchmark micro benchmarks for the simulator's hot components:
// cache access paths under each policy, VTA/PDPT operations, pattern
// address generation, and whole-GPU simulation throughput.
#include <benchmark/benchmark.h>

#include "core/l1d_cache.h"
#include "core/pdpt.h"
#include "core/vta.h"
#include "gpu/simulator.h"
#include "sim/rng.h"
#include "workloads/registry.h"

namespace dlpsim {
namespace {

L1DConfig BaseL1D(PolicyKind policy) {
  L1DConfig cfg = SimConfig::Baseline16KB().l1d;
  cfg.policy = policy;
  cfg.miss_queue_entries = 1u << 20;  // unbounded for throughput measurement
  cfg.mshr_entries = 1u << 20;
  return cfg;
}

void DrainFills(L1DCache& cache, std::vector<MshrToken>& woken) {
  woken.clear();
  while (cache.HasOutgoing()) {
    const L1DOutgoing out = cache.PopOutgoing();
    if (!out.write) {
      cache.Fill(L1DResponse{out.block, out.no_fill, out.token}, 0, woken);
    }
  }
}

void BM_CacheAccess(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  L1DCache cache(BaseL1D(policy));
  Rng rng(42);
  std::vector<MshrToken> woken;
  Cycle now = 0;
  for (auto _ : state) {
    // Mixed stream: 75% within a 64-line hot set, 25% streaming.
    const bool hot = rng.Below(4) != 0;
    const Addr addr =
        hot ? rng.Below(64) * 128 : (1000000 + now) * 128;
    const AccessResult r = cache.Access(
        MemAccess{addr, AccessType::kLoad, static_cast<Pc>(addr % 7), 1},
        now);
    benchmark::DoNotOptimize(r);
    if ((++now & 0xff) == 0) DrainFills(cache, woken);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)
    ->Arg(static_cast<int>(PolicyKind::kBaseline))
    ->Arg(static_cast<int>(PolicyKind::kStallBypass))
    ->Arg(static_cast<int>(PolicyKind::kGlobalProtection))
    ->Arg(static_cast<int>(PolicyKind::kDlp));

void BM_VtaProbe(benchmark::State& state) {
  VictimTagArray vta(32, 4);
  Rng rng(7);
  for (int i = 0; i < 128; ++i) {
    vta.Insert(static_cast<std::uint32_t>(rng.Below(32)), rng.Below(4096),
               static_cast<std::uint32_t>(rng.Below(128)));
  }
  for (auto _ : state) {
    const auto hit = vta.ProbeAndConsume(
        static_cast<std::uint32_t>(rng.Below(32)), rng.Below(4096));
    benchmark::DoNotOptimize(hit);
    vta.Insert(static_cast<std::uint32_t>(rng.Below(32)), rng.Below(4096),
               0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VtaProbe);

void BM_PdptSample(benchmark::State& state) {
  PdpTable pdpt(ProtectionConfig{}, 4);
  Rng rng(3);
  for (auto _ : state) {
    for (int i = 0; i < 200; ++i) {
      const auto id = static_cast<std::uint32_t>(rng.Below(128));
      rng.Below(2) != 0 ? pdpt.CreditTdaHit(id) : pdpt.CreditVtaHit(id);
    }
    benchmark::DoNotOptimize(pdpt.EndSample());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_PdptSample);

void BM_PatternAddress(benchmark::State& state) {
  const Workload wl = MakeWorkload("BFS", 0.1);
  const AccessPattern* pattern = nullptr;
  for (const Instruction& insn : wl.program->body()) {
    if (insn.pattern != nullptr) pattern = insn.pattern;
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pattern->AddressFor(i % 768, i / 768, static_cast<std::uint32_t>(i % 32)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatternAddress);

void BM_WholeGpuKiloCycles(benchmark::State& state) {
  const Workload wl = MakeWorkload("SRK", 1.0);
  for (auto _ : state) {
    state.PauseTiming();
    SimConfig cfg = SimConfig::WithPolicy(PolicyKind::kDlp);
    GpuSimulator gpu(cfg, wl.program.get(), wl.warps_per_sm);
    state.ResumeTiming();
    while (!gpu.Done() && gpu.core_cycles() < 1000) gpu.Step();
    benchmark::DoNotOptimize(gpu.core_cycles());
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // core cycles
}
BENCHMARK(BM_WholeGpuKiloCycles)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dlpsim

BENCHMARK_MAIN();
