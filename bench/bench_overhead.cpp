// Reproduces paper §4.3: the DLP hardware-overhead arithmetic (176 B TDA
// fields + 624 B VTA + 464 B PDPT = 1264 B = 7.48% of the 16896-byte
// baseline cache).
#include <iostream>

#include "core/overhead.h"
#include "analysis/report.h"
#include "harness.h"

using namespace dlpsim;

int main() {
  bench::TimingScope timing("bench_overhead");
  std::cout << "=== SS4.3: DLP hardware overhead ===\n\n";
  const SimConfig cfg = SimConfig::Baseline16KB();
  const OverheadReport r = ComputeOverhead(cfg.l1d);
  std::cout << r.ToText() << '\n';

  const bool matches = r.tda_extra_bytes() == 176 && r.vta_bytes() == 624 &&
                       r.pdpt_bytes() == 464 &&
                       r.total_extra_bytes() == 1264 &&
                       r.baseline_bytes() == 16896;
  std::cout << "Paper arithmetic (176 + 624 + 464 = 1264 B over 16896 B = "
               "7.48%): "
            << (matches ? "REPRODUCED EXACTLY" : "MISMATCH") << "\n\n";

  std::cout << "Overhead across cache sizes:\n";
  TextTable t({"L1D size", "extra bytes", "overhead"});
  for (const char* name : {"base", "32kb", "64kb"}) {
    const SimConfig c = bench::ConfigFor(name);
    const OverheadReport o = ComputeOverhead(c.l1d);
    t.AddRow({std::to_string(c.l1d.geom.size_bytes() / 1024) + "KB",
              std::to_string(o.total_extra_bytes()),
              Pct(o.overhead_fraction(), 2)});
  }
  std::cout << t.Render();
  return matches ? 0 : 1;
}
