// Reproduces paper Fig. 10: IPC of every benchmark under the baseline
// 16KB L1D, Stall-Bypass, Global-Protection, DLP and a 32KB L1D,
// normalized to the baseline, with geometric means over the CS and CI
// groups.
#include <iostream>
#include <vector>

#include "analysis/report.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;
using dlpsim::bench::Run;

int main() {
  bench::TimingScope timing("bench_fig10_ipc");
  std::cout << "=== Fig. 10: normalized IPC "
               "(baseline / Stall-Bypass / Global-Protection / DLP / 32KB) "
               "===\n\n";

  const std::vector<std::string> configs = {"base", "sb", "gp", "dlp",
                                            "32kb"};
  // Simulate the whole grid in parallel (DLPSIM_JOBS workers); the
  // loops below then hit the in-process memo.
  bench::RunGrid(bench::AllAppAbbrs(), configs);
  TextTable t({"app", "type", "16KB(base)", "Stall-Bypass",
               "Global-Protection", "DLP", "32KB"});

  std::vector<double> geo_cs[5];
  std::vector<double> geo_ci[5];

  for (const AppInfo& app : AllApps()) {
    const double base_ipc = Run(app.abbr, "base").metrics.ipc();
    std::vector<std::string> row = {app.abbr,
                                    app.cache_insufficient ? "CI" : "CS"};
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const double ipc = Run(app.abbr, configs[c]).metrics.ipc();
      const double norm = bench::Normalize(ipc, base_ipc);
      row.push_back(Fmt(norm, 3));
      (app.cache_insufficient ? geo_ci : geo_cs)[c].push_back(norm);
    }
    t.AddRow(row);
  }

  std::vector<std::string> cs_row = {"G.MEAN", "CS"};
  std::vector<std::string> ci_row = {"G.MEAN", "CI"};
  for (std::size_t c = 0; c < configs.size(); ++c) {
    cs_row.push_back(Fmt(GeoMean(geo_cs[c]), 3));
    ci_row.push_back(Fmt(GeoMean(geo_ci[c]), 3));
  }
  t.AddRow(cs_row);
  t.AddRow(ci_row);

  std::cout << t.Render() << '\n';
  std::cout << "Paper targets: CI geomean SB ~1.14, GP ~1.347, DLP ~1.438, "
               "32KB ~1.50; CS geomean ~1.00 for GP/DLP (SB loses ~2.4%, "
               "with SRAD/BT down 11-12%).\n";
  return bench::ExitStatus();
}
