// Reproduces paper Figs. 12a/12b: L1D hit rate (bypassed accesses do not
// count) and the normalized number of L1D hits.
#include <iostream>
#include <vector>

#include "analysis/report.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;

int main() {
  bench::TimingScope timing("bench_fig12_hits");
  const std::vector<std::string> configs = {"base", "sb", "gp", "dlp"};
  // Simulate the whole grid in parallel (DLPSIM_JOBS workers); the
  // loops below then hit the in-process memo.
  bench::RunGrid(bench::AllAppAbbrs(), configs);

  std::cout << "=== Fig. 12a: L1D hit rate ===\n\n";
  TextTable ta({"app", "type", "16KB(base)", "Stall-Bypass",
                "Global-Protection", "DLP"});
  for (const AppInfo& app : AllApps()) {
    std::vector<std::string> row = {app.abbr,
                                    app.cache_insufficient ? "CI" : "CS"};
    for (const std::string& c : configs) {
      row.push_back(Pct(bench::Run(app.abbr, c).metrics.l1d_hit_rate()));
    }
    ta.AddRow(row);
  }
  std::cout << ta.Render() << '\n';

  std::cout << "=== Fig. 12b: normalized number of L1D hits ===\n\n";
  TextTable tb({"app", "type", "16KB(base)", "Stall-Bypass",
                "Global-Protection", "DLP"});
  std::vector<double> geo_ci[4];
  for (const AppInfo& app : AllApps()) {
    const double base = static_cast<double>(
        bench::Run(app.abbr, "base").metrics.l1d_load_hits);
    std::vector<std::string> row = {app.abbr,
                                    app.cache_insufficient ? "CI" : "CS"};
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const double v = bench::Normalize(
          static_cast<double>(
              bench::Run(app.abbr, configs[c]).metrics.l1d_load_hits),
          base);
      row.push_back(Fmt(v, 2));
      if (app.cache_insufficient) geo_ci[c].push_back(v);
    }
    tb.AddRow(row);
  }
  tb.AddRow({"G.MEAN", "CI", Fmt(GeoMean(geo_ci[0]), 2),
             Fmt(GeoMean(geo_ci[1]), 2), Fmt(GeoMean(geo_ci[2]), 2),
             Fmt(GeoMean(geo_ci[3]), 2)});
  std::cout << tb.Render() << '\n';
  std::cout << "Paper shape: DLP's hit rate is the highest on CI "
               "applications even where its absolute hit count is not "
               "(it serves fewer accesses but keeps the valuable lines).\n";
  return bench::ExitStatus();
}
