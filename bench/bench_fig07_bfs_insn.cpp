// Reproduces paper Fig. 7: per-memory-instruction reuse-distance
// distributions for BFS, demonstrating why a single protection distance
// cannot fit all instructions.
#include <iostream>

#include "analysis/report.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;

int main() {
  bench::TimingScope timing("bench_fig07_bfs_insn");
  std::cout << "=== Fig. 7: per-instruction RDD for BFS ===\n\n";
  const auto r = bench::RunGrid({"BFS"}, {"base"}).front();

  TextTable t({"insn", "PC", "rd 1~4", "rd 5~8", "rd 9~64", "rd >65",
               "re-refs"});
  int insn = 1;
  for (const auto& [pc, h] : r.profile.per_pc) {
    t.AddRow({"insn" + std::to_string(insn++), std::to_string(pc),
              Pct(h.fraction(0)), Pct(h.fraction(1)), Pct(h.fraction(2)),
              Pct(h.fraction(3)), std::to_string(h.total())});
  }
  std::cout << t.Render() << '\n';
  std::cout << "Paper shape: distributions differ wildly across the memory "
               "instructions of one kernel -- some are dominated by short "
               "distances, others by the 9~64 band or beyond; a per-"
               "instruction protection distance can fit each one.\n";
  return bench::ExitStatus();
}
