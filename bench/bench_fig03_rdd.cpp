// Reproduces paper Fig. 3: the global reuse-distance distribution of
// every benchmark on the baseline L1D set mapping, bucketed 1~4 / 5~8 /
// 9~64 / >65.
#include <iostream>

#include "analysis/report.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;

int main() {
  bench::TimingScope timing("bench_fig03_rdd");
  std::cout << "=== Fig. 3: Reuse Distance Distribution per application "
               "===\n\n";
  // Simulate the whole grid in parallel (DLPSIM_JOBS workers); the
  // loops below then hit the in-process memo.
  bench::RunGrid(bench::AllAppAbbrs(), {"base"});
  TextTable t({"app", "type", "rd 1~4", "rd 5~8", "rd 9~64", "rd >65",
               "re-refs"});
  for (const AppInfo& app : AllApps()) {
    const auto r = bench::Run(app.abbr, "base");
    const RddHistogram& h = r.profile.global;
    t.AddRow({app.abbr, app.cache_insufficient ? "CI" : "CS",
              Pct(h.fraction(0)), Pct(h.fraction(1)), Pct(h.fraction(2)),
              Pct(h.fraction(3)), std::to_string(h.total())});
  }
  std::cout << t.Render() << '\n';
  std::cout << "Paper shape: RDDs vary widely across applications; CS apps "
               "like SC/BP are short-RD dominated, HG/STEN/KM long-RD "
               "dominated, MM spreads across all four buckets.\n";
  return bench::ExitStatus();
}
