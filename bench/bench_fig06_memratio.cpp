// Reproduces paper Fig. 6: memory access ratio (N_memory_access / N_insn)
// per application, sorted ascending; the 1% threshold separates Cache
// Sufficient from Cache Insufficient applications.
#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/report.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;

int main() {
  bench::TimingScope timing("bench_fig06_memratio");
  std::cout << "=== Fig. 6: memory access ratio (sorted ascending) ===\n\n";
  // Simulate the whole grid in parallel (DLPSIM_JOBS workers); the
  // loops below then hit the in-process memo.
  bench::RunGrid(bench::AllAppAbbrs(), {"base"});

  struct Row {
    std::string abbr;
    bool ci;
    double ratio;
  };
  std::vector<Row> rows;
  for (const AppInfo& app : AllApps()) {
    const auto r = bench::Run(app.abbr, "base");
    rows.push_back(
        {app.abbr, app.cache_insufficient, r.metrics.memory_access_ratio()});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.ratio < b.ratio; });

  TextTable t({"app", "ratio", "class", "consistent"});
  bool all_consistent = true;
  for (const Row& r : rows) {
    const bool consistent = r.ci == (r.ratio >= 0.01);
    all_consistent &= consistent;
    t.AddRow({r.abbr, Pct(r.ratio, 2), r.ci ? "CI" : "CS",
              consistent ? "yes" : "NO"});
  }
  std::cout << t.Render() << '\n';
  std::cout << "1% threshold separates CS from CI: "
            << (all_consistent ? "holds for all applications"
                               : "VIOLATED (see rows above)")
            << ".\nNote: our synthetic CI kernels sit somewhat above the "
               "paper's lowest CI ratios (see EXPERIMENTS.md); the CS/CI "
               "split and ordering are preserved.\n";
  return bench::ExitStatus();
}
