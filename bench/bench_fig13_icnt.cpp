// Reproduces paper Fig. 13: normalized interconnect traffic (all L1
// clients share the network, so L1D reductions are diluted).
#include <iostream>
#include <vector>

#include "analysis/report.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;

int main() {
  bench::TimingScope timing("bench_fig13_icnt");
  std::cout << "=== Fig. 13: normalized interconnect traffic ===\n\n";
  const std::vector<std::string> configs = {"base", "sb", "gp", "dlp"};
  // Simulate the whole grid in parallel (DLPSIM_JOBS workers); the
  // loops below then hit the in-process memo.
  bench::RunGrid(bench::AllAppAbbrs(), configs);
  TextTable t({"app", "type", "16KB(base)", "Stall-Bypass",
               "Global-Protection", "DLP", "(L1D share)"});
  std::vector<double> geo_cs[4];
  std::vector<double> geo_ci[4];
  for (const AppInfo& app : AllApps()) {
    const Metrics base = bench::Run(app.abbr, "base").metrics;
    std::vector<std::string> row = {app.abbr,
                                    app.cache_insufficient ? "CI" : "CS"};
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const double v = bench::Normalize(
          static_cast<double>(
              bench::Run(app.abbr, configs[c]).metrics.icnt_bytes_total),
          static_cast<double>(base.icnt_bytes_total));
      row.push_back(Fmt(v, 3));
      (app.cache_insufficient ? geo_ci : geo_cs)[c].push_back(v);
    }
    row.push_back(Pct(base.icnt_bytes_total == 0
                          ? 0.0
                          : static_cast<double>(base.icnt_bytes_l1d) /
                                base.icnt_bytes_total,
                      0));
    t.AddRow(row);
  }
  std::vector<std::string> cs = {"G.MEAN", "CS"};
  std::vector<std::string> ci = {"G.MEAN", "CI"};
  for (int c = 0; c < 4; ++c) {
    cs.push_back(Fmt(GeoMean(geo_cs[c]), 3));
    ci.push_back(Fmt(GeoMean(geo_ci[c]), 3));
  }
  cs.push_back("");
  ci.push_back("");
  t.AddRow(cs);
  t.AddRow(ci);
  std::cout << t.Render() << '\n';
  std::cout << "Paper targets: average interconnect reduction ~6.2% with "
               "Stall-Bypass and ~11.5% with DLP on CI applications -- much "
               "smaller than the L1D traffic reduction because the network "
               "also serves L1I/L1C/L1T traffic.\n";
  return bench::ExitStatus();
}
