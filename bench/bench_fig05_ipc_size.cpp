// Reproduces paper Fig. 5: IPC of 16KB/32KB/64KB caches normalized to
// the 16KB baseline.
#include <iostream>

#include "analysis/report.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;

int main() {
  bench::TimingScope timing("bench_fig05_ipc_size");
  std::cout << "=== Fig. 5: normalized IPC vs L1D cache size ===\n\n";
  // Simulate the whole grid in parallel (DLPSIM_JOBS workers); the
  // loops below then hit the in-process memo.
  bench::RunGrid(bench::AllAppAbbrs(), {"base", "32kb", "64kb"});
  TextTable t({"app", "type", "16KB", "32KB", "64KB"});
  for (const AppInfo& app : AllApps()) {
    const double base = bench::Run(app.abbr, "base").metrics.ipc();
    t.AddRow({app.abbr, app.cache_insufficient ? "CI" : "CS", Fmt(1.0, 3),
              Fmt(bench::Normalize(
                      bench::Run(app.abbr, "32kb").metrics.ipc(), base),
                  3),
              Fmt(bench::Normalize(
                      bench::Run(app.abbr, "64kb").metrics.ipc(), base),
                  3)});
  }
  std::cout << t.Render() << '\n';
  std::cout << "Paper shape: CI applications speed up markedly with larger "
               "caches; CS applications are insensitive (their memory "
               "access ratio is below 1%).\n";
  return bench::ExitStatus();
}
