// Reproduces paper Figs. 11a/11b: normalized L1D traffic (accesses that
// enter the cache) and normalized L1D evictions under the baseline,
// Stall-Bypass, Global-Protection and DLP.
#include <iostream>
#include <vector>

#include "analysis/report.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;

namespace {

void Emit(const char* title, double (*metric)(const Metrics&)) {
  const std::vector<std::string> configs = {"base", "sb", "gp", "dlp"};
  TextTable t({"app", "type", "16KB(base)", "Stall-Bypass",
               "Global-Protection", "DLP"});
  std::vector<double> geo_cs[4];
  std::vector<double> geo_ci[4];
  for (const AppInfo& app : AllApps()) {
    const double base = metric(bench::Run(app.abbr, "base").metrics);
    std::vector<std::string> row = {app.abbr,
                                    app.cache_insufficient ? "CI" : "CS"};
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const double v = bench::Normalize(
          metric(bench::Run(app.abbr, configs[c]).metrics), base);
      row.push_back(Fmt(v, 3));
      (app.cache_insufficient ? geo_ci : geo_cs)[c].push_back(v);
    }
    t.AddRow(row);
  }
  std::vector<std::string> cs = {"G.MEAN", "CS"};
  std::vector<std::string> ci = {"G.MEAN", "CI"};
  for (int c = 0; c < 4; ++c) {
    cs.push_back(Fmt(GeoMean(geo_cs[c]), 3));
    ci.push_back(Fmt(GeoMean(geo_ci[c]), 3));
  }
  t.AddRow(cs);
  t.AddRow(ci);
  std::cout << title << "\n\n" << t.Render() << '\n';
}

}  // namespace

int main() {
  bench::TimingScope timing("bench_fig11_traffic");
  // Simulate the whole grid in parallel (DLPSIM_JOBS workers); the
  // loops below then hit the in-process memo.
  bench::RunGrid(bench::AllAppAbbrs(), {"base", "sb", "gp", "dlp"});
  Emit("=== Fig. 11a: normalized L1D traffic ===", [](const Metrics& m) {
    return static_cast<double>(m.l1d_traffic());
  });
  Emit("=== Fig. 11b: normalized L1D evictions ===", [](const Metrics& m) {
    return static_cast<double>(m.l1d_evictions);
  });
  std::cout << "Paper targets (CI geomeans): traffic SB ~0.716, GP ~0.598, "
               "DLP ~0.475; evictions SB ~0.565, GP ~0.357, DLP ~0.207. "
               "DLP bypasses most aggressively and evicts least.\n";
  return bench::ExitStatus();
}
