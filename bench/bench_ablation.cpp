// Ablation bench for the starred design decisions in DESIGN.md:
//   (a) bypassed queries consume protected life (paper §4.1.1) -- without
//       it, fully protected sets would deadlock into permanent bypassing;
//   (b) VTA associativity mirrors the TDA's (paper footnote 2);
//   (c) sample length 200 accesses (paper §4.1.4);
//   (d) PD field width (4 bits).
// Each ablation reruns a representative CI subset under DLP and reports
// the IPC delta against the configured default.
#include <chrono>
#include <iostream>
#include <vector>

#include "analysis/report.h"
#include "exec/run_grid.h"
#include "gpu/simulator.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;

namespace {

const std::vector<std::string> kApps = {"CFD", "SRK", "SR2K", "KM"};

double RunDlp(const std::string& app, const ProtectionConfig& prot) {
  SimConfig cfg = SimConfig::WithPolicy(PolicyKind::kDlp);
  cfg.l1d.prot = prot;
  const Workload wl = MakeWorkload(app, bench::Scale());
  GpuSimulator gpu(cfg, wl.program.get(), wl.warps_per_sm);
  return gpu.Run().ipc();
}

}  // namespace

int main() {
  bench::TimingScope timing("bench_ablation");
  std::cout << "=== Ablations of DLP design choices (DLP IPC, normalized "
               "to the paper-default DLP) ===\n\n";

  struct Variant {
    std::string name;
    ProtectionConfig prot;
  };
  std::vector<Variant> variants;
  variants.push_back({"default (paper)", ProtectionConfig{}});
  {
    ProtectionConfig p;
    p.vta_ways = 1;
    variants.push_back({"VTA 1-way (vs mirror TDA)", p});
  }
  {
    ProtectionConfig p;
    p.vta_ways = 16;
    variants.push_back({"VTA 16-way", p});
  }
  {
    ProtectionConfig p;
    p.sample_accesses = 50;
    variants.push_back({"sample = 50 accesses", p});
  }
  {
    ProtectionConfig p;
    p.sample_accesses = 1000;
    variants.push_back({"sample = 1000 accesses", p});
  }
  {
    ProtectionConfig p;
    p.pd_bits = 3;
    variants.push_back({"PD 3 bits (max 7)", p});
  }
  {
    ProtectionConfig p;
    p.pd_bits = 6;
    variants.push_back({"PD 6 bits (max 63)", p});
  }
  {
    ProtectionConfig p;
    p.pdpt_entries = 1;
    p.insn_id_bits = 0;
    variants.push_back({"1-entry PDPT (== Global-Protection)", p});
  }

  std::vector<std::string> headers = {"variant"};
  for (const auto& a : kApps) headers.push_back(a);
  TextTable t(headers);

  // Every (variant, app) cell is an independent simulation; run them all
  // through the executor, then print in the original order. Variants
  // bypass the harness cache (custom ProtectionConfigs have no cache
  // key), so each cell is timed and logged here.
  const std::size_t num_apps = kApps.size();
  const std::vector<double> ipc = exec::ParallelMap(
      variants.size() * num_apps, [&](std::size_t i) {
        const Variant& v = variants[i / num_apps];
        const std::string& app = kApps[i % num_apps];
        const exec::Stopwatch cell_clock;
        const double r = RunDlp(app, v.prot);
        exec::TimingCell cell;
        cell.app = app;
        cell.config = v.name;
        cell.seconds = cell_clock.Seconds();
        bench::Timing().Record(std::move(cell));
        return r;
      });

  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<std::string> row = {variants[v].name};
    for (std::size_t a = 0; a < num_apps; ++a) {
      row.push_back(v == 0 ? Fmt(1.0, 3)
                           : Fmt(ipc[v * num_apps + a] / ipc[a], 3));
    }
    t.AddRow(row);
  }
  std::cout << t.Render() << '\n';
  std::cout << "Expected: a deeper VTA sees longer distances (helps until "
               "over-protection), very short samples make PDs noisy, very "
               "long ones adapt slowly, wider PD fields extend protection "
               "reach, and a 1-entry PDPT degenerates to "
               "Global-Protection.\n";
  return bench::ExitStatus();
}
