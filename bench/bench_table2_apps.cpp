// Prints paper Table 2 (the benchmark applications) with each synthetic
// kernel's static properties for auditing the workload substitution.
#include <iostream>

#include "analysis/report.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;

int main() {
  bench::TimingScope timing("bench_table2_apps");
  std::cout << "=== Table 2: benchmark applications ===\n\n";
  TextTable t({"abbr", "name", "suite", "type", "input", "mem PCs",
               "static ratio", "warps/SM"});
  for (const AppInfo& app : AllApps()) {
    const Workload wl = MakeWorkload(app.abbr);
    t.AddRow({app.abbr, app.name, app.suite,
              app.cache_insufficient ? "CI" : "CS", app.input,
              std::to_string(wl.program->NumMemoryPcs()),
              Pct(wl.program->MemoryAccessRatio(), 2),
              std::to_string(wl.warps_per_sm)});
  }
  std::cout << t.Render() << '\n';
  std::cout << "All kernels keep their load-instruction count far below the "
               "PDPT's 128-entry capacity (paper SS4.1.3).\n";
  return bench::ExitStatus();
}
