// Shared run harness for the figure-reproduction benches.
//
// Every bench needs the same (app x configuration) simulation grid, so
// runs are memoized twice: in-process (thread-safe, single-flight -- two
// threads asking for the same cell never simulate it twice) and in an
// on-disk cache keyed by app, configuration name, scale and a harness
// version stamp. Cache files are written to a temp name and atomically
// renamed into place, so a killed or concurrent bench can never leave a
// partially written entry that parses as a bogus result.
//
// RunGrid() executes a whole (apps x configs) matrix through the
// src/exec/ parallel executor: each cell is an isolated, deterministic
// simulation scheduled on a fixed-size thread pool, and results come
// back in grid order. DLPSIM_JOBS=1 reproduces the serial path bit for
// bit; any other value produces byte-identical results (enforced by
// tests/exec/determinism_test.cpp).
//
// Each run also records reuse-distance and reuse-miss profiles so the
// motivation figures (3/4/7) come from the same simulations as the
// evaluation figures (10-13).
//
// Environment knobs:
//   DLPSIM_SCALE      - iteration scale factor (default 1.0)
//   DLPSIM_JOBS       - worker threads for RunGrid (default: hardware
//                       concurrency; 1 = serial)
//   DLPSIM_CACHE_DIR  - cache directory (default ./.dlpsim_cache)
//   DLPSIM_NOCACHE    - set to disable the on-disk cache entirely
//   DLPSIM_TIMING_DIR - where TimingScope writes <bench>_timing.json
//                       (default ".")
//   DLPSIM_TRACE      - set to 1 to trace every simulated run: a JSON
//                       run report, a Chrome trace-event file (Perfetto /
//                       chrome://tracing) and a timeline CSV are written
//                       per (app, config). Implies DLPSIM_NOCACHE so
//                       every run actually simulates, and forces
//                       RunGrid to jobs=1 (each run owns a private sink
//                       either way; serial keeps the [trace] log and the
//                       export order deterministic). Tracing never
//                       changes simulation results or the printed tables.
//   DLPSIM_TRACE_OUT  - trace output directory (default ./dlpsim_trace)
//   DLPSIM_TRACE_EVENTS   - trace ring-buffer capacity (default 1048576)
//   DLPSIM_TRACE_INTERVAL - timeline sample interval in core cycles
//                           (default 5000)
//   DLPSIM_FAULTS     - fault-injection spec (see robust/fault.h), e.g.
//                       "1" for the default plan or
//                       "seed=7,count=16,horizon=300000,stall=500,
//                        kinds=pdpt+pl+vta". Implies DLPSIM_NOCACHE in
//                       both directions: faulty results are never stored
//                       and clean cached results are never served. The
//                       applied plan is written to
//                       DLPSIM_TIMING_DIR/<app>_<config>_faults.json.
//   DLPSIM_WATCHDOG   - arm the forward-progress watchdog with this
//                       no-progress threshold in core cycles (e.g.
//                       200000); a trip writes a diagnostic JSON next to
//                       the fault artifact, prints it to stderr and makes
//                       the cell fail with a typed error naming the
//                       stalled resource. Unset/0 = off.
//   DLPSIM_CHECK      - 1 = run the opt-in invariant checker every few
//                       thousand cycles (see robust/invariants.h);
//                       0 = force off even in DLPSIM_CHECKED builds.
//   DLPSIM_JOB_TIMEOUT - per-attempt wall-clock budget in seconds for
//                       RunGrid cells (cooperative: an over-budget
//                       attempt is discarded and counted as a timed-out
//                       failure). Unset/0 = no timeout.
//   DLPSIM_METRICS    - set to 1 to dump the global obs::Registry on
//                       TimingScope destruction: <bench>_metrics.prom
//                       (Prometheus text exposition) and
//                       <bench>_metrics.json into DLPSIM_TIMING_DIR.
//                       Counters are integer-only and merge-order
//                       independent, so the dump is byte-identical at
//                       any DLPSIM_JOBS (enforced by
//                       tests/obs/metrics_determinism_test.cpp).
//   DLPSIM_PROGRESS   - heartbeat while a cell simulates: "1" emits a
//                       [progress] line to stderr every 1M core cycles
//                       (cycle, accesses/sec, warps finished, ETA); a
//                       value >= 2 sets the interval in core cycles.
//                       The last line is copied into the watchdog's
//                       StallDiagnostic when a run stalls.
//   DLPSIM_PROFILE    - set to 1 to attach an obs::Profiler phase
//                       profiler to every simulated cell and write
//                       <app>_<config>_profile.{json,collapsed,prom,
//                       trace.json} into DLPSIM_TIMING_DIR: per-phase
//                       call counts and self/total wall time, a
//                       flamegraph collapsed-stack file, and a Chrome
//                       trace of the retained spans. Wall-clock times
//                       never enter the deterministic metrics registry.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "analysis/rd_profiler.h"
#include "exec/timing.h"
#include "gpu/metrics.h"
#include "sim/config.h"
#include "sim/types.h"

namespace dlpsim::bench {

/// Named simulator configurations used across the paper's figures.
///   base  - Table 1 baseline (16KB, LRU)
///   sb    - Stall-Bypass          gp   - Global-Protection
///   dlp   - DLP                   32kb - 8-way LRU
///   64kb  - 16-way LRU
const std::vector<std::string>& ConfigNames();
SimConfig ConfigFor(const std::string& name);

/// Abbreviations of every registered application, in registry order
/// (convenience for RunGrid warm-up calls).
std::vector<std::string> AllAppAbbrs();

struct ProfileResult {
  RddHistogram global;
  std::map<Pc, RddHistogram> per_pc;
  std::uint64_t reuse_accesses = 0;
  std::uint64_t reuse_misses = 0;
  std::uint64_t compulsory = 0;

  double reuse_miss_rate() const {
    return reuse_accesses == 0
               ? 0.0
               : static_cast<double>(reuse_misses) / reuse_accesses;
  }

  std::string ToText() const;
  static ProfileResult FromText(const std::string& text, bool* ok = nullptr);
};

struct RunResult {
  Metrics metrics;
  ProfileResult profile;
};

/// Runs (or loads from cache) app `abbr` under configuration `config`.
/// Thread-safe; concurrent callers asking for the same cell share one
/// simulation (single-flight).
RunResult Run(const std::string& abbr, const std::string& config);
RunResult Run(const std::string& abbr, const std::string& config,
              double scale);

/// Runs the whole (apps x configs) grid through the parallel executor
/// and returns results in app-major grid order: cell (a, c) at index
/// a * configs.size() + c. jobs == 0 resolves DLPSIM_JOBS (default:
/// hardware concurrency); DLPSIM_TRACE forces jobs = 1.
///
/// Resilient: a throwing or timed-out cell is retried once and, if it
/// still fails, recorded as a failed cell in <bench>_timing.json (and in
/// FailedCells()) while its siblings run to completion. Failed cells'
/// result slots are value-initialized.
std::vector<RunResult> RunGrid(const std::vector<std::string>& apps,
                               const std::vector<std::string>& configs,
                               std::size_t jobs = 0);
std::vector<RunResult> RunGrid(const std::vector<std::string>& apps,
                               const std::vector<std::string>& configs,
                               double scale, std::size_t jobs);

/// Always simulates (no memo, no disk cache). The determinism tests use
/// this to compare thread-pool execution against the serial path.
RunResult SimulateUncached(const std::string& abbr, const std::string& config,
                           double scale);

/// Per-run resilience overrides for callers that must not mutate the
/// process environment between runs (the dlpsim_server worker serves
/// many requests from one process; setenv there would race and leak
/// state across fault domains). Empty/zero fields mean "off" -- they do
/// NOT fall back to the DLPSIM_FAULTS / DLPSIM_WATCHDOG env knobs.
struct RunOverrides {
  std::string fault_spec;             // robust::FaultPlan spec; "" = none
  std::uint64_t watchdog_cycles = 0;  // stall threshold; 0 = off
};

/// SimulateUncached with explicit resilience hooks. A watchdog trip
/// throws robust::RunErrorException(kWatchdogStall, ...) so process
/// boundaries can forward the typed kind instead of string-matching.
RunResult SimulateUncached(const std::string& abbr, const std::string& config,
                           double scale, const RunOverrides& overrides);

// --- on-disk cache plumbing (exposed for tests and tools) ---

/// Cache file path for one cell (under DLPSIM_CACHE_DIR).
std::filesystem::path CachePathFor(const std::string& abbr,
                                   const std::string& config, double scale);

/// Loads a cache file; false on missing, truncated or unparsable entries
/// (a valid entry carries the "#complete" footer the writer appends last).
bool LoadCacheFile(const std::filesystem::path& path, RunResult* out);

/// Writes atomically: temp file in the same directory + rename() into
/// place, so readers never observe a partial entry. Best-effort (cache
/// write failures never fail a bench).
void StoreCacheFile(const std::filesystem::path& path, const RunResult& r);

// --- wall-clock telemetry ---

/// Global per-process timing log; Run/SimulateUncached record one cell
/// per simulation (cached loads are recorded with cached=true).
exec::TimingLog& Timing();

/// RAII: writes DLPSIM_TIMING_DIR/<name>_timing.json on destruction with
/// per-cell sim seconds, total wall time and the job count used.
class TimingScope {
 public:
  explicit TimingScope(std::string name);
  ~TimingScope();

  TimingScope(const TimingScope&) = delete;
  TimingScope& operator=(const TimingScope&) = delete;

 private:
  std::string name_;
};

/// Iteration scale from DLPSIM_SCALE (default 1.0).
double Scale();

/// Normalizes `value` to the same app's metric under `base` (helper for
/// "normalized to baseline" figure rows); returns 0 when base is 0.
double Normalize(double value, double base);

/// Number of grid cells that exhausted their retries across every RunGrid
/// call in this process.
std::size_t FailedCells();

/// Process exit code for benches: 0 when every grid cell succeeded, 1
/// otherwise. Benches call this AFTER printing every table they could
/// compute, so partial results are never discarded by one bad cell.
int ExitStatus();

}  // namespace dlpsim::bench
