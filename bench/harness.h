// Shared run harness for the figure-reproduction benches.
//
// Every bench needs the same (app x configuration) simulation grid, so
// runs are memoized in an on-disk cache keyed by app, configuration name,
// scale and a harness version stamp. Each run also records reuse-distance
// and reuse-miss profiles so the motivation figures (3/4/7) come from the
// same simulations as the evaluation figures (10-13).
//
// Environment knobs:
//   DLPSIM_SCALE      - iteration scale factor (default 1.0)
//   DLPSIM_CACHE_DIR  - cache directory (default ./.dlpsim_cache)
//   DLPSIM_NOCACHE    - set to disable the cache entirely
//   DLPSIM_TRACE      - set to 1 to trace every simulated run: a JSON
//                       run report, a Chrome trace-event file (Perfetto /
//                       chrome://tracing) and a timeline CSV are written
//                       per (app, config). Implies DLPSIM_NOCACHE so
//                       every run actually simulates. Tracing never
//                       changes simulation results or the printed tables.
//   DLPSIM_TRACE_OUT  - trace output directory (default ./dlpsim_trace)
//   DLPSIM_TRACE_EVENTS   - trace ring-buffer capacity (default 1048576)
//   DLPSIM_TRACE_INTERVAL - timeline sample interval in core cycles
//                           (default 5000)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/rd_profiler.h"
#include "gpu/metrics.h"
#include "sim/config.h"
#include "sim/types.h"

namespace dlpsim::bench {

/// Named simulator configurations used across the paper's figures.
///   base  - Table 1 baseline (16KB, LRU)
///   sb    - Stall-Bypass          gp   - Global-Protection
///   dlp   - DLP                   32kb - 8-way LRU
///   64kb  - 16-way LRU
const std::vector<std::string>& ConfigNames();
SimConfig ConfigFor(const std::string& name);

struct ProfileResult {
  RddHistogram global;
  std::map<Pc, RddHistogram> per_pc;
  std::uint64_t reuse_accesses = 0;
  std::uint64_t reuse_misses = 0;
  std::uint64_t compulsory = 0;

  double reuse_miss_rate() const {
    return reuse_accesses == 0
               ? 0.0
               : static_cast<double>(reuse_misses) / reuse_accesses;
  }

  std::string ToText() const;
  static ProfileResult FromText(const std::string& text, bool* ok = nullptr);
};

struct RunResult {
  Metrics metrics;
  ProfileResult profile;
};

/// Runs (or loads from cache) app `abbr` under configuration `config`.
RunResult Run(const std::string& abbr, const std::string& config);

/// Iteration scale from DLPSIM_SCALE (default 1.0).
double Scale();

/// Normalizes `value` to the same app's metric under `base` (helper for
/// "normalized to baseline" figure rows); returns 0 when base is 0.
double Normalize(double value, double base);

}  // namespace dlpsim::bench
