// dlp_lint: a project-specific static analyzer for dlpsim.
//
// The simulator's two hardest guarantees -- byte-identical results under
// DLPSIM_JOBS and bit-exact fuzzer replay -- are behavioural: the test
// suite can only catch a violation after it ships. dlp_lint rejects the
// *source patterns* that introduce such violations, at the line that
// introduces them. It is deliberately token/line-level (no libclang): the
// rules below are all expressible over lexed lines, and a zero-dependency
// tool can run in every build and CI job.
//
// Rules (see Rules() for the machine-readable table):
//   D1  no iteration over std::unordered_map/set -- iteration order is
//       unspecified and varies across libstdc++ versions and ASLR, so any
//       stats/export/trace path built on it breaks byte-identity.
//   D2  no wall-clock or ambient randomness (rand, random_device as a
//       generator, time(), *_clock::now()) outside src/exec/timing* and
//       src/robust/watchdog* -- replay/resume must be a pure function of
//       the trace and the seed.
//   D3  no pointer values as map/set keys -- ASLR makes pointer order a
//       per-run coin flip.
//   S1  every DLPSIM_* environment knob is read through the config layer
//       (src/sim/env.h) and documented in README.md and EXPERIMENTS.md.
//   I1  no direct writes to line protection state (protected_life / pl)
//       or PDPT pd fields outside src/core/ -- the Fig. 9 update flow
//       stays centralized.
//   I2  include hygiene: no including .cpp files, no "../" escapes, and
//       no reaching into another subsystem's internal headers (headers
//       carrying a "dlp-lint: internal-header" marker).
//
// Suppression: append `// NOLINT(dlp-d1)` (any rule id, lower-case,
// comma-separated) to the offending line, or `// NOLINTNEXTLINE(dlp-d1)`
// to the line above. A bare NOLINT suppresses every rule on that line.
// Suppressions are for patterns that are *provably* safe (e.g. iteration
// whose order is washed out by a sort); the justification belongs in the
// same comment.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace dlplint {

/// One diagnostic: `rule` is the short id ("D1"), `line` is 1-based.
struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;

  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  }
  friend bool operator==(const Finding& a, const Finding& b) {
    return a.path == b.path && a.line == b.line && a.rule == b.rule;
  }
};

/// Static description of one rule (for --list-rules and the docs table).
struct RuleInfo {
  const char* id;         // "D1"
  const char* summary;    // one line, imperative
  const char* rationale;  // why violating it breaks the simulator
};

const std::vector<RuleInfo>& Rules();

/// A lexed translation unit. `code[i]` mirrors raw line i with comments
/// and string/char-literal *contents* blanked to spaces (quotes kept), so
/// token scans never fire inside literals; `strings[i]` holds the literal
/// contents that were blanked; `comments[i]` holds that line's comment
/// text (the NOLINT channel).
struct SourceFile {
  std::string path;  // normalized, forward slashes
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::vector<std::string>> strings;
  std::vector<std::string> comments;

  bool HasMarker(const std::string& marker) const {
    for (const std::string& c : comments) {
      if (c.find(marker) != std::string::npos) return true;
    }
    return false;
  }
};

/// Documentation corpus for the S1 cross-check. A knob is "documented"
/// when its exact name appears in every loaded doc. When `loaded` is
/// false (no README next to the scanned tree) the doc half of S1 is
/// skipped; the config-layer half still runs.
struct DocSet {
  bool loaded = false;
  // name shown in messages -> full file contents
  std::map<std::string, std::string> docs;
};

struct LintOptions {
  DocSet docs;
};

/// Lexes one file's text (strips comments/literals, records NOLINTs).
SourceFile Lex(const std::string& path, const std::string& text);

/// Runs every rule over the lexed files and returns suppression-filtered
/// findings sorted by (path, line, rule). Cross-file state (I2 internal
/// headers, D1 member names) is built from exactly `files`.
std::vector<Finding> Lint(const std::vector<SourceFile>& files,
                          const LintOptions& opts);

/// Convenience used by the CLI and the tests: expands directories to
/// their .h/.hpp/.cpp/.cc files (sorted, deterministic), lexes and lints.
/// Unreadable paths are reported in `*error` and produce an empty result.
std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const LintOptions& opts, std::string* error);

/// Loads README.md / EXPERIMENTS.md from `dir` if present.
DocSet LoadDocs(const std::string& dir);

/// Renders findings for humans (one line each) or as a JSON array.
std::string FormatText(const std::vector<Finding>& findings);
std::string FormatJson(const std::vector<Finding>& findings);

}  // namespace dlplint
