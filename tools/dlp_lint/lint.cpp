#include "dlp_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace dlplint {

namespace fs = std::filesystem;

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"D1", "no iteration over std::unordered_map / std::unordered_set",
       "iteration order is unspecified and varies across runs; any stats, "
       "export or trace path built on it breaks DLPSIM_JOBS byte-identity"},
      {"D2",
       "no rand()/random_device-as-generator/time()/_clock::now() outside "
       "src/exec/timing* and src/robust/watchdog*",
       "replay and resume must be pure functions of the trace and the seed; "
       "ambient time or entropy makes runs unreproducible"},
      {"D3", "no pointer values as map/set keys",
       "ASLR makes pointer ordering a per-run coin flip, so any container "
       "ordered by addresses is nondeterministic"},
      {"S1",
       "read DLPSIM_* knobs through dlpsim::env (src/sim/env.h) and document "
       "them in README.md and EXPERIMENTS.md",
       "scattered getenv calls create undocumented knobs that silently fork "
       "experiment behaviour between machines"},
      {"I1",
       "no direct writes to protection state (protected_life/pl/pd members) "
       "outside src/core/",
       "the paper's Fig. 9 update flow is the single writer of protection "
       "state; a second writer desynchronizes the PL counters and the PDPT"},
      {"I2",
       "include hygiene: no .cpp includes, no \"../\" paths, no reaching "
       "into another subsystem's internal headers",
       "subsystem-internal headers are free to change representation; "
       "cross-subsystem reach-ins turn that freedom into silent breakage"},
  };
  return kRules;
}

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::string NormalizePath(const std::string& path) {
  std::string p = fs::path(path).lexically_normal().generic_string();
  return p;
}

bool PathHasFragment(const std::string& path, const char* fragment) {
  return path.find(fragment) != std::string::npos;
}

// --- token search ---------------------------------------------------------

/// Finds `token` in `code` at or after `from`, as a full identifier (the
/// characters around the match are not identifier characters). Returns
/// npos when absent.
std::size_t FindToken(const std::string& code, const std::string& token,
                      std::size_t from = 0) {
  for (std::size_t pos = code.find(token, from); pos != std::string::npos;
       pos = code.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

/// True when `code` calls `token` as a free function: `token` is a full
/// identifier, the next non-space character is '(' and the call is not a
/// member access (a project method named e.g. `.clock()` is not libc
/// clock()). `std::` / `::` qualification still matches.
bool HasCallToken(const std::string& code, const std::string& token) {
  for (std::size_t pos = FindToken(code, token); pos != std::string::npos;
       pos = FindToken(code, token, pos + 1)) {
    if (pos > 0 && (code[pos - 1] == '.' ||
                    (code[pos - 1] == '>' && pos > 1 && code[pos - 2] == '-'))) {
      continue;
    }
    std::size_t after = pos + token.size();
    while (after < code.size() && (code[after] == ' ' || code[after] == '\t')) {
      ++after;
    }
    if (after < code.size() && code[after] == '(') return true;
  }
  return false;
}

// --- joined-file view (for constructs that span lines) --------------------

/// Whole-file code text with a map from character offset back to line.
struct JoinedCode {
  std::string text;
  std::vector<std::size_t> line_starts;  // offset of each line's first char

  int LineOf(std::size_t offset) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<int>(it - line_starts.begin());  // 1-based
  }
};

JoinedCode Join(const SourceFile& f) {
  JoinedCode j;
  for (const std::string& line : f.code) {
    j.line_starts.push_back(j.text.size());
    j.text += line;
    j.text += '\n';
  }
  return j;
}

/// From the '<' at `open`, returns the offset one past the matching '>'
/// (angle brackets balanced, parentheses/brackets respected), or npos.
std::size_t CloseAngle(const std::string& text, std::size_t open) {
  int angle = 0, paren = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[') ++paren;
    if (c == ')' || c == ']') --paren;
    if (paren != 0) continue;
    if (c == '<') ++angle;
    if (c == '>') {
      --angle;
      if (angle == 0) return i + 1;
    }
    if (c == ';') return std::string::npos;  // statement ended: not a template
  }
  return std::string::npos;
}

/// Splits template arguments at top-level commas. `inner` is the text
/// between the outer '<' and '>'.
std::vector<std::string> SplitTemplateArgs(const std::string& inner) {
  std::vector<std::string> args;
  int depth = 0;
  std::string cur;
  for (char c : inner) {
    if (c == '<' || c == '(' || c == '[') ++depth;
    if (c == '>' || c == ')' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      args.push_back(Trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!Trim(cur).empty()) args.push_back(Trim(cur));
  return args;
}

/// One `container<...>` type use found in the joined text.
struct TemplateUse {
  std::string container;         // "unordered_map", "map", ...
  std::size_t offset = 0;        // of the container token
  std::size_t after_close = 0;   // one past the matching '>'
  std::vector<std::string> args; // top-level template arguments
  std::string declared_name;     // variable declared with this type ("" if none)
};

/// Scans for uses of any container in `names` as a type head and, where
/// one declares a variable, extracts the variable name.
std::vector<TemplateUse> FindContainerUses(
    const JoinedCode& j, const std::vector<std::string>& names) {
  std::vector<TemplateUse> uses;
  for (const std::string& name : names) {
    const std::string needle = name + "<";
    for (std::size_t pos = j.text.find(needle); pos != std::string::npos;
         pos = j.text.find(needle, pos + 1)) {
      if (pos > 0 && IsIdentChar(j.text[pos - 1])) continue;  // e.g. bitmap<
      TemplateUse use;
      use.container = name;
      use.offset = pos;
      const std::size_t open = pos + name.size();
      use.after_close = CloseAngle(j.text, open);
      if (use.after_close == std::string::npos) continue;
      use.args = SplitTemplateArgs(
          j.text.substr(open + 1, use.after_close - open - 2));
      // Declarator: `unordered_map<K,V> name ...` (skip refs/pointers).
      std::size_t p = use.after_close;
      while (p < j.text.size() &&
             (std::isspace(static_cast<unsigned char>(j.text[p])) != 0 ||
              j.text[p] == '&' || j.text[p] == '*')) {
        ++p;
      }
      std::size_t name_end = p;
      while (name_end < j.text.size() && IsIdentChar(j.text[name_end])) {
        ++name_end;
      }
      if (name_end > p) {
        const std::string ident = j.text.substr(p, name_end - p);
        // Follow-on character decides declaration vs. other syntax; a
        // keyword after '>' (e.g. `const`) is close enough to skip.
        std::size_t q = name_end;
        while (q < j.text.size() &&
               std::isspace(static_cast<unsigned char>(j.text[q])) != 0) {
          ++q;
        }
        if (q < j.text.size() &&
            (j.text[q] == ';' || j.text[q] == '=' || j.text[q] == '{' ||
             j.text[q] == '(' || j.text[q] == ',' || j.text[q] == ')')) {
          use.declared_name = ident;
        }
      }
      uses.push_back(use);
    }
  }
  return uses;
}

// --- suppression ----------------------------------------------------------

/// NOLINT state for one file: line -> set of lower-case rule ids; the
/// empty string means "all rules" (bare NOLINT).
struct Suppressions {
  std::map<int, std::set<std::string>> by_line;

  bool Covers(int line, const std::string& rule_id) const {
    auto it = by_line.find(line);
    if (it == by_line.end()) return false;
    if (it->second.count("")) return true;
    std::string lower = "dlp-";
    for (char c : rule_id) {
      lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return it->second.count(lower) != 0;
  }
};

void ParseNolintList(const std::string& comment, std::size_t open_paren,
                     std::set<std::string>* out) {
  const std::size_t close = comment.find(')', open_paren);
  if (close == std::string::npos) {
    out->insert("");  // malformed list reads as bare NOLINT: fail safe open
    return;
  }
  std::stringstream ss(comment.substr(open_paren + 1, close - open_paren - 1));
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::string t = Trim(item);
    for (char& c : t) c = static_cast<char>(std::tolower((unsigned char)c));
    if (!t.empty()) out->insert(t);
  }
}

Suppressions CollectSuppressions(const SourceFile& f) {
  Suppressions s;
  for (std::size_t i = 0; i < f.comments.size(); ++i) {
    const std::string& c = f.comments[i];
    const int line = static_cast<int>(i) + 1;
    for (const char* tag : {"NOLINTNEXTLINE", "NOLINT"}) {
      const std::size_t pos = c.find(tag);
      if (pos == std::string::npos) continue;
      const bool next = std::string(tag) == "NOLINTNEXTLINE";
      // "NOLINT" also matches inside "NOLINTNEXTLINE"; skip that overlap.
      if (!next && c.find("NOLINTNEXTLINE") == pos) continue;
      const int target = next ? line + 1 : line;
      std::size_t after = pos + std::string(tag).size();
      if (after < c.size() && c[after] == '(') {
        ParseNolintList(c, after, &s.by_line[target]);
      } else {
        s.by_line[target].insert("");
      }
      break;
    }
  }
  return s;
}

// --- rules ----------------------------------------------------------------

using FindingSink = std::vector<Finding>;

void Report(FindingSink* out, const SourceFile& f, int line, const char* rule,
            std::string message) {
  out->push_back(Finding{rule, f.path, line, std::move(message)});
}

/// D1 + D3 share the container-use scan. `member_names` is the
/// project-wide set of member-style names (trailing underscore) declared
/// as unordered containers anywhere in the scanned tree, so iteration in
/// a .cpp over a member declared in the header is still caught.
void CollectUnorderedNames(const SourceFile& f, std::set<std::string>* local,
                           std::set<std::string>* members) {
  const JoinedCode j = Join(f);
  for (const TemplateUse& use : FindContainerUses(
           j, {"unordered_map", "unordered_set", "unordered_multimap",
               "unordered_multiset"})) {
    if (use.declared_name.empty()) continue;
    local->insert(use.declared_name);
    if (use.declared_name.back() == '_') members->insert(use.declared_name);
  }
}

void RuleD1(const SourceFile& f, const std::set<std::string>& local,
            const std::set<std::string>& project_members, FindingSink* out) {
  const JoinedCode j = Join(f);
  auto is_unordered = [&](const std::string& expr) {
    std::string e = Trim(expr);
    if (e.rfind("this->", 0) == 0) e = e.substr(6);
    if (e.rfind("*", 0) == 0) e = Trim(e.substr(1));
    return local.count(e) != 0 || project_members.count(e) != 0;
  };

  // Range-for over an unordered container (or an inline unordered temp).
  for (std::size_t pos = FindToken(j.text, "for"); pos != std::string::npos;
       pos = FindToken(j.text, "for", pos + 1)) {
    std::size_t open = pos + 3;
    while (open < j.text.size() &&
           std::isspace(static_cast<unsigned char>(j.text[open])) != 0) {
      ++open;
    }
    if (open >= j.text.size() || j.text[open] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string::npos, close = std::string::npos;
    for (std::size_t i = open; i < j.text.size(); ++i) {
      const char c = j.text[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      }
      if (c == ':' && depth == 1) {
        // Skip '::' scope tokens.
        if (i + 1 < j.text.size() && j.text[i + 1] == ':') continue;
        if (i > 0 && j.text[i - 1] == ':') continue;
        colon = i;
      }
      if (c == ';') break;  // classic for loop
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    const std::string range = j.text.substr(colon + 1, close - colon - 1);
    if (is_unordered(range) || range.find("unordered_") != std::string::npos) {
      Report(out, f, j.LineOf(colon), "D1",
             "range-for over unordered container '" + Trim(range) +
                 "': iteration order is unspecified and breaks DLPSIM_JOBS "
                 "byte-identity in any stats/export/trace path");
    }
  }

  // Iterator-based traversal: name.begin() / cbegin / rbegin.
  for (const char* method : {".begin", ".cbegin", ".rbegin", ".crbegin"}) {
    for (std::size_t pos = j.text.find(method); pos != std::string::npos;
         pos = j.text.find(method, pos + 1)) {
      const std::size_t after = pos + std::string(method).size();
      if (after >= j.text.size() || j.text[after] != '(') continue;
      std::size_t b = pos;
      while (b > 0 && IsIdentChar(j.text[b - 1])) --b;
      const std::string obj = j.text.substr(b, pos - b);
      if (local.count(obj) != 0 || project_members.count(obj) != 0) {
        Report(out, f, j.LineOf(pos), "D1",
               "iterator traversal of unordered container '" + obj +
                   "': iteration order is unspecified and breaks "
                   "byte-identity");
      }
    }
  }
}

void RuleD2(const SourceFile& f, FindingSink* out) {
  if (PathHasFragment(f.path, "src/exec/timing") ||
      PathHasFragment(f.path, "src/robust/watchdog")) {
    return;
  }
  struct Pattern {
    const char* token;
    bool call_only;  // must be followed by '('
    const char* what;
  };
  static const Pattern kPatterns[] = {
      {"rand", true, "rand() is ambient global entropy"},
      {"srand", true, "srand() seeds ambient global entropy"},
      {"random_device", false,
       "std::random_device draws hardware entropy; seed a SplitMix64/mt19937 "
       "from the trace or config instead"},
      {"time", true, "time() reads the wall clock"},
      {"clock", true, "clock() reads process CPU time"},
      {"gettimeofday", true, "gettimeofday() reads the wall clock"},
      {"localtime", true, "localtime() reads the wall clock"},
      {"gmtime", true, "gmtime() reads the wall clock"},
  };
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& code = f.code[i];
    const int line = static_cast<int>(i) + 1;
    for (const Pattern& p : kPatterns) {
      const bool hit =
          p.call_only ? HasCallToken(code, p.token)
                      : FindToken(code, p.token) != std::string::npos;
      if (hit) {
        Report(out, f, line, "D2",
               std::string(p.what) +
                   "; simulation must be a pure function of trace+seed "
                   "(allowed only in src/exec/timing* and the watchdog)");
      }
    }
    // Any chrono clock: steady_clock::now(), system_clock::now(), ...
    std::size_t pos = code.find("::now");
    if (pos != std::string::npos) {
      std::size_t after = pos + 5;
      if (after < code.size() && code[after] == '(') {
        Report(out, f, line, "D2",
               "clock ::now() reads wall time; use exec::Stopwatch "
               "(src/exec/timing.h) for sanctioned wall-clock telemetry");
      }
    }
  }
}

void RuleD3(const SourceFile& f, FindingSink* out) {
  const JoinedCode j = Join(f);
  for (const TemplateUse& use : FindContainerUses(
           j, {"map", "multimap", "set", "multiset", "unordered_map",
               "unordered_set", "unordered_multimap", "unordered_multiset"})) {
    if (use.args.empty()) continue;
    std::string key = use.args[0];
    if (key.rfind("const ", 0) == 0) key = Trim(key.substr(6));
    if (!key.empty() && key.back() == '*') {
      Report(out, f, j.LineOf(use.offset), "D3",
             "pointer key '" + use.args[0] + "' in " + use.container +
                 ": pointer values depend on ASLR/allocation order, so any "
                 "ordering or hashing over them is nondeterministic; key by "
                 "a stable id instead");
    }
  }
}

void RuleS1(const SourceFile& f, const DocSet& docs, FindingSink* out) {
  const bool in_env_layer = PathHasFragment(f.path, "src/sim/env.");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& code = f.code[i];
    const int line = static_cast<int>(i) + 1;
    const bool getenv_call = HasCallToken(code, "getenv") ||
                             FindToken(code, "getenv") != std::string::npos;
    if (getenv_call && !in_env_layer) {
      Report(out, f, line, "S1",
             "direct getenv(): read environment knobs through dlpsim::env "
             "(src/sim/env.h) so every knob has one parse and one doc entry");
    }
    // Documentation cross-check at env read sites (both layers).
    const bool env_call = code.find("env::") != std::string::npos;
    if (!(getenv_call || env_call) || !docs.loaded) continue;
    for (const std::string& lit : f.strings[i]) {
      if (lit.rfind("DLPSIM_", 0) != 0) continue;
      bool name_ok = lit.size() > 7;
      for (char c : lit) {
        if (!(std::isupper(static_cast<unsigned char>(c)) != 0 ||
              std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '_')) {
          name_ok = false;
        }
      }
      if (!name_ok) continue;
      for (const auto& [doc_name, text] : docs.docs) {
        if (text.find(lit) == std::string::npos) {
          Report(out, f, line, "S1",
                 "environment knob " + lit + " is not documented in " +
                     doc_name + "; every DLPSIM_* knob must be discoverable "
                     "without reading the source");
        }
      }
    }
  }
}

void RuleI1(const SourceFile& f, FindingSink* out) {
  if (PathHasFragment(f.path, "src/core/")) return;
  static const char* kMembers[] = {"protected_life", "pl", "pd"};
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& code = f.code[i];
    const int line = static_cast<int>(i) + 1;
    for (const char* member : kMembers) {
      for (const char* arrow : {".", "->"}) {
        const std::string needle = std::string(arrow) + member;
        for (std::size_t pos = code.find(needle); pos != std::string::npos;
             pos = code.find(needle, pos + 1)) {
          const std::size_t end = pos + needle.size();
          if (end < code.size() && IsIdentChar(code[end])) continue;  // .pd_bits
          if (pos > 0 && code[pos] == '.' && IsIdentChar(code[pos - 1]) == 0) {
            // leading ".pd" without an object (e.g. designated init) still
            // counts -- fallthrough.
          }
          std::size_t after = end;
          while (after < code.size() &&
                 (code[after] == ' ' || code[after] == '\t')) {
            ++after;
          }
          const std::string rest = code.substr(after);
          const bool assign =
              (!rest.empty() && rest[0] == '=' &&
               (rest.size() < 2 || rest[1] != '=')) ||
              rest.rfind("+=", 0) == 0 || rest.rfind("-=", 0) == 0 ||
              rest.rfind("*=", 0) == 0 || rest.rfind("/=", 0) == 0 ||
              rest.rfind("|=", 0) == 0 || rest.rfind("&=", 0) == 0 ||
              rest.rfind("^=", 0) == 0 || rest.rfind("++", 0) == 0 ||
              rest.rfind("--", 0) == 0;
          // Prefix increment/decrement: `++x.pd` / `--x.pd`.
          std::size_t obj = pos;
          while (obj > 0 && (IsIdentChar(code[obj - 1]) || code[obj - 1] == '.' ||
                             code[obj - 1] == '>' || code[obj - 1] == ']')) {
            --obj;
          }
          const bool prefix =
              obj >= 2 && (code.substr(obj - 2, 2) == "++" ||
                           code.substr(obj - 2, 2) == "--");
          if (assign || prefix) {
            Report(out, f, line, "I1",
                   std::string("write to protection state member '") + member +
                       "' outside src/core/: the Fig. 9 PD/PL update flow "
                       "must stay centralized (use the core policy API)");
          }
        }
      }
    }
  }
}

void RuleI2(const SourceFile& f,
            const std::map<std::string, const SourceFile*>& by_path,
            FindingSink* out) {
  auto subsystem_of = [](const std::string& path) -> std::string {
    const std::size_t src = path.rfind("src/");
    if (src != std::string::npos) {
      const std::size_t begin = src + 4;
      const std::size_t slash = path.find('/', begin);
      if (slash != std::string::npos) return path.substr(src, slash - src);
    }
    const std::size_t tools = path.rfind("tools/");
    if (tools != std::string::npos) return "tools";
    return "";
  };
  const std::string my_subsys = subsystem_of(f.path);

  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& code = f.code[i];
    const int line = static_cast<int>(i) + 1;
    const std::string trimmed = Trim(code);
    if (trimmed.empty() || trimmed[0] != '#') continue;
    if (trimmed.find("include") == std::string::npos) continue;
    if (f.strings[i].empty()) continue;  // <system> include or macro
    const std::string& inc = f.strings[i][0];

    for (const char* ext : {".cpp", ".cc", ".cxx"}) {
      if (inc.size() > std::strlen(ext) &&
          inc.compare(inc.size() - std::strlen(ext), std::strlen(ext), ext) ==
              0) {
        Report(out, f, line, "I2",
               "#include of an implementation file \"" + inc +
                   "\": translation units are not an interface");
      }
    }
    if (inc.find("../") != std::string::npos) {
      Report(out, f, line, "I2",
             "relative #include \"" + inc +
                 "\" escapes the subsystem layout; include via the src/ root "
                 "(e.g. \"exec/timing.h\")");
    }

    // Cross-subsystem reach into a marked internal header.
    const std::string from_root = NormalizePath("src/" + inc);
    const std::string sibling = NormalizePath(
        (fs::path(f.path).parent_path() / inc).generic_string());
    const SourceFile* target = nullptr;
    // Project-relative lookup tolerates scanned paths that carry an
    // absolute or repo prefix: match on path suffix.
    for (const std::string& cand : {from_root, sibling}) {
      for (const auto& [path, file] : by_path) {
        if (path == cand || (path.size() > cand.size() &&
                             path.compare(path.size() - cand.size() - 1, 1,
                                          "/") == 0 &&
                             path.compare(path.size() - cand.size(),
                                          cand.size(), cand) == 0)) {
          target = file;
          break;
        }
      }
      if (target != nullptr) break;
    }
    if (target == nullptr) continue;
    if (!target->HasMarker("dlp-lint: internal-header")) continue;
    const std::string target_subsys = subsystem_of(target->path);
    if (target_subsys != my_subsys) {
      Report(out, f, line, "I2",
             "\"" + inc + "\" is " + target_subsys +
                 "'s internal header (dlp-lint: internal-header); depend on "
                 "the subsystem's public interface instead");
    }
  }
}

}  // namespace

// --- lexer ----------------------------------------------------------------

SourceFile Lex(const std::string& path, const std::string& text) {
  SourceFile f;
  f.path = NormalizePath(path);

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string code_line, comment_line, current_literal, raw_delim;
  std::vector<std::string> line_strings;

  auto flush_line = [&]() {
    f.raw.push_back("");  // filled below by the caller loop
    f.code.push_back(code_line);
    f.comments.push_back(comment_line);
    f.strings.push_back(line_strings);
    code_line.clear();
    comment_line.clear();
    line_strings.clear();
  };

  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i <= n) {
    const char c = i < n ? text[i] : '\n';  // virtual trailing newline
    const char next = i + 1 < n ? text[i + 1] : '\0';
    const bool at_end = i == n;
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      if (state == State::kString || state == State::kChar) {
        // Unterminated literal (or line splice we don't model): close it.
        line_strings.push_back(current_literal);
        current_literal.clear();
        state = State::kCode;
      }
      if (!at_end || !code_line.empty() || !comment_line.empty() ||
          !line_strings.empty() || !f.code.empty()) {
        if (!(at_end && code_line.empty() && comment_line.empty() &&
              line_strings.empty())) {
          flush_line();
        }
      }
      ++i;
      if (at_end) break;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          i += 2;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(text[i - 1]))) {
          // Raw string R"delim( ... )delim"
          std::size_t p = i + 2;
          raw_delim.clear();
          while (p < n && text[p] != '(') raw_delim += text[p++];
          code_line += "R\"";
          state = State::kRawString;
          current_literal.clear();
          i = p + 1;
        } else if (c == '"') {
          state = State::kString;
          current_literal.clear();
          code_line += '"';
          ++i;
        } else if (c == '\'') {
          state = State::kChar;
          current_literal.clear();
          code_line += '\'';
          ++i;
        } else {
          code_line += c;
          ++i;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += ' ';  // token separator where the comment sat
          i += 2;
        } else {
          comment_line += c;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          current_literal += c;
          if (next != '\0') current_literal += next;
          i += 2;
        } else if (c == '"') {
          line_strings.push_back(current_literal);
          current_literal.clear();
          code_line += '"';
          state = State::kCode;
          ++i;
        } else {
          current_literal += c;
          ++i;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          i += 2;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kCode;
          ++i;
        } else {
          ++i;
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        const std::size_t end = text.find(close, i);
        const std::size_t stop = end == std::string::npos ? n : end;
        // Raw literal content may span lines; record it on the line where
        // the literal opened and skip the newlines inside.
        line_strings.push_back(text.substr(i, stop - i));
        code_line += '"';
        i = end == std::string::npos ? n : end + close.size();
        state = State::kCode;
        break;
      }
    }
  }

  // Re-split raw text to fill `raw` (the lexer flushed placeholder lines).
  std::vector<std::string> raw_lines;
  std::string cur;
  for (char ch : text) {
    if (ch == '\n') {
      raw_lines.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) raw_lines.push_back(cur);
  // Raw strings can swallow newlines, leaving fewer lexed lines than raw
  // lines; pad so indexes stay aligned for the lines that do exist.
  while (f.code.size() < raw_lines.size()) {
    f.code.push_back("");
    f.comments.push_back("");
    f.strings.push_back({});
    f.raw.push_back("");
  }
  for (std::size_t k = 0; k < f.raw.size() && k < raw_lines.size(); ++k) {
    f.raw[k] = raw_lines[k];
  }
  return f;
}

// --- driver ---------------------------------------------------------------

std::vector<Finding> Lint(const std::vector<SourceFile>& files,
                          const LintOptions& opts) {
  // Cross-file state: project-wide unordered member names (D1) and the
  // file table for include resolution (I2).
  std::set<std::string> project_members;
  std::map<std::string, std::set<std::string>> local_names;
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) {
    by_path[f.path] = &f;
    CollectUnorderedNames(f, &local_names[f.path], &project_members);
  }

  std::vector<Finding> findings;
  for (const SourceFile& f : files) {
    FindingSink raw;
    RuleD1(f, local_names[f.path], project_members, &raw);
    RuleD2(f, &raw);
    RuleD3(f, &raw);
    RuleS1(f, opts.docs, &raw);
    RuleI1(f, &raw);
    RuleI2(f, by_path, &raw);

    const Suppressions sup = CollectSuppressions(f);
    for (Finding& finding : raw) {
      if (!sup.Covers(finding.line, finding.rule)) {
        findings.push_back(std::move(finding));
      }
    }
  }
  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end()),
                 findings.end());
  return findings;
}

DocSet LoadDocs(const std::string& dir) {
  DocSet docs;
  for (const char* name : {"README.md", "EXPERIMENTS.md"}) {
    const fs::path p = fs::path(dir) / name;
    std::ifstream in(p);
    if (!in) continue;
    std::stringstream ss;
    ss << in.rdbuf();
    docs.docs[name] = ss.str();
  }
  docs.loaded = !docs.docs.empty();
  return docs;
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const LintOptions& opts, std::string* error) {
  std::vector<std::string> file_paths;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (!it->is_regular_file(ec)) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc") {
          file_paths.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      file_paths.push_back(p);
    } else {
      if (error != nullptr) *error = "cannot read path: " + p;
      return {};
    }
  }
  std::sort(file_paths.begin(), file_paths.end());

  std::vector<SourceFile> files;
  files.reserve(file_paths.size());
  for (const std::string& p : file_paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      if (error != nullptr) *error = "cannot open file: " + p;
      return {};
    }
    std::stringstream ss;
    ss << in.rdbuf();
    files.push_back(Lex(p, ss.str()));
  }
  return Lint(files, opts);
}

std::string FormatText(const std::vector<Finding>& findings) {
  std::stringstream out;
  for (const Finding& f : findings) {
    std::string lower = f.rule;
    for (char& c : lower) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << " (suppress: // NOLINT(dlp-" << lower << "))\n";
  }
  return out.str();
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}
}  // namespace

std::string FormatJson(const std::vector<Finding>& findings) {
  std::stringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "  {\"rule\": \"" << f.rule << "\", \"file\": \""
        << JsonEscape(f.path) << "\", \"line\": " << f.line
        << ", \"message\": \"" << JsonEscape(f.message) << "\"}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.str();
}

}  // namespace dlplint
