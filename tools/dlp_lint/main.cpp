// dlp_lint CLI. Usage:
//
//   dlp_lint [--json] [--docs DIR] [--list-rules] PATH...
//
// Walks every PATH (directories recurse over .h/.hpp/.cpp/.cc), runs the
// project rules (see lint.h) and prints one line per finding. Exit codes:
// 0 clean, 1 findings, 2 usage or I/O error.
//
// The S1 documentation cross-check loads README.md and EXPERIMENTS.md
// from --docs (default: the current directory, i.e. the repo root when
// invoked as `tools/dlp_lint src tools`). When neither file exists the
// doc half of S1 is skipped, so the tool also works on bare fixture
// trees.
#include <iostream>
#include <string>
#include <vector>

#include "dlp_lint/lint.h"

int main(int argc, char** argv) {
  bool json = false;
  std::string docs_dir = ".";
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--docs") {
      if (i + 1 >= argc) {
        std::cerr << "dlp_lint: --docs needs a directory\n";
        return 2;
      }
      docs_dir = argv[++i];
    } else if (arg == "--list-rules") {
      for (const dlplint::RuleInfo& r : dlplint::Rules()) {
        std::cout << r.id << "  " << r.summary << "\n      why: "
                  << r.rationale << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dlp_lint [--json] [--docs DIR] [--list-rules] "
                   "PATH...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dlp_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: dlp_lint [--json] [--docs DIR] [--list-rules] "
                 "PATH...\n";
    return 2;
  }

  dlplint::LintOptions opts;
  opts.docs = dlplint::LoadDocs(docs_dir);

  std::string error;
  const std::vector<dlplint::Finding> findings =
      dlplint::LintPaths(paths, opts, &error);
  if (!error.empty()) {
    std::cerr << "dlp_lint: " << error << "\n";
    return 2;
  }

  if (json) {
    std::cout << dlplint::FormatJson(findings);
  } else {
    std::cout << dlplint::FormatText(findings);
    if (findings.empty()) {
      std::cout << "dlp_lint: clean\n";
    } else {
      std::cout << "dlp_lint: " << findings.size() << " finding(s)\n";
    }
  }
  return findings.empty() ? 0 : 1;
}
