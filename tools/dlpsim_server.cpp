// dlpsim-as-a-service daemon.
//
// One binary, two roles:
//
//   dlpsim_server [flags]              -- the server: listens on an
//       AF_UNIX socket, admits experiment requests into a bounded queue
//       and schedules them across fork/exec'd worker processes (fault
//       domains: a crashing or wedged simulation can never take the
//       daemon down). SIGTERM/SIGINT (or a client kShutdown frame)
//       begins a graceful drain: everything already admitted is served,
//       then the process exits 0.
//
//   dlpsim_server --worker-fd N ...    -- a worker: spawned by the
//       server with one end of a socketpair on fd N; loops reading
//       requests and writing responses. With --stub it answers from
//       serve::StubRunner (protocol/chaos testing without simulations);
//       otherwise each request runs a real simulation via
//       bench::SimulateUncached with explicit per-request overrides
//       (fault spec, watchdog) -- never by mutating the environment.
//
// Environment knobs (flags override; all reads go through dlpsim::env):
//   DLPSIM_SERVER_SOCKET      - listen socket path (default dlpsim.sock)
//   DLPSIM_SERVER_WORKERS     - worker processes / fault domains (4)
//   DLPSIM_SERVER_QUEUE       - admission queue capacity (64)
//   DLPSIM_SERVER_RETRIES     - max attempts per request (3)
//   DLPSIM_SERVER_BACKOFF_MS  - base retry backoff, doubled per attempt (10)
//   DLPSIM_SERVER_DEADLINE_MS - default per-request deadline (30000)
//   DLPSIM_SERVER_CACHE_DIR   - content-addressed result cache directory
//                               (default .dlpsim_serve_cache)
//   DLPSIM_SERVER_NOCACHE     - set to disable the result cache
//   DLPSIM_SERVER_CHAOS       - set to make workers honor request chaos
//                               directives (crash/exit/spin injection)
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/trace_replay.h"
#include "harness.h"
#include "robust/error.h"
#include "serve/content_cache.h"
#include "serve/server.h"
#include "serve/worker.h"
#include "sim/config.h"
#include "sim/env.h"
#include "trace/hash.h"
#include "trace/source.h"

namespace {

using namespace dlpsim;

int g_sigpipe_wr = -1;

void OnSignal(int) {
  // Async-signal-safe: one byte down the self-pipe.
  const char b = 1;
  [[maybe_unused]] ssize_t n = ::write(g_sigpipe_wr, &b, 1);
}

/// argv[0] as an exec-able path for respawning ourselves as a worker.
std::string SelfExe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

/// Trace-replay requests (req.trace non-empty): pull the recorded trace
/// -- text or DLPT packed, sniffed from the file -- through the
/// cache-level TraceReplayer under req.config's L1D. The result text is
/// integer counters only (no float formatting), so it is byte-identical
/// for a given trace content regardless of the on-disk format.
serve::WorkerResult TraceReplayRunner(const serve::ExperimentRequest& req) {
  TraceParseError perr;
  auto src = trace::OpenTraceFile(req.trace, &perr);
  if (src == nullptr) {
    throw robust::RunErrorException(robust::RunError::kRunFailed,
                                    req.trace + ": " + perr.ToString());
  }
  TraceReplayer replayer(bench::ConfigFor(req.config).l1d);
  const ReplayResult r = replayer.Replay(*src);
  if (!src->ok()) {
    // A malformed tail is a typed failure, never a silent prefix replay.
    throw robust::RunErrorException(robust::RunError::kRunFailed,
                                    req.trace + ": " + src->error().ToString());
  }
  std::ostringstream os;
  os << "accesses " << r.accesses << '\n'
     << "cycles " << r.cycles << '\n'
     << "stall_cycles " << r.stall_cycles << '\n'
     << "loads " << r.cache.loads << '\n'
     << "load_hits " << r.cache.load_hits << '\n'
     << "load_misses " << r.cache.load_misses << '\n'
     << "stores " << r.cache.stores << '\n'
     << "bypasses " << r.cache.bypasses << '\n'
     << "evictions " << r.cache.evictions << '\n'
     << "writebacks " << r.cache.writebacks << '\n'
     << "---\n"
     << "trace replay config " << req.config << '\n';
  serve::WorkerResult out;
  out.result = os.str();
  return out;
}

/// Real runner: one simulation per request, resilience hooks passed
/// explicitly so worker state never leaks across requests.
serve::WorkerResult BenchRunner(const serve::ExperimentRequest& req) {
  if (!req.trace.empty()) return TraceReplayRunner(req);
  bench::RunOverrides ov;
  ov.fault_spec = req.faults;
  ov.watchdog_cycles = req.watchdog_cycles;
  // Throws propagate: WorkerLoop maps RunErrorException to its typed
  // kind and anything else to kRunFailed.
  const bench::RunResult r =
      bench::SimulateUncached(req.app, req.config, req.scale, ov);
  serve::WorkerResult out;
  out.result = r.metrics.ToText() + "---\n" + r.profile.ToText();
  return out;
}

/// Content key for real experiments: canonicalized configuration text
/// (so "dlp" keys identically however it was spelled into a SimConfig)
/// x workload trace ref x binary version. Requests with resilience
/// hooks are never cached -- faulty results must not be served to clean
/// requests, mirroring the DLPSIM_FAULTS/DLPSIM_NOCACHE coupling of the
/// bench harness. Trace-replay requests key on the trace file's *content
/// hash* over canonical packed bytes (trace/hash.h), not its path or
/// on-disk format: a text trace and its packed copy coalesce onto one
/// cache entry, and rewriting a file with different bytes for the same
/// records never invalidates its results.
std::string BenchKeyFn(const serve::ExperimentRequest& req) {
  if (!req.faults.empty() || !req.chaos.empty() || req.watchdog_cycles != 0) {
    return "";
  }
  std::string config_text;
  try {
    config_text = CanonicalText(bench::ConfigFor(req.config));
  } catch (const std::exception&) {
    return "";  // unknown config: let the worker produce the typed error
  }
  if (!req.trace.empty()) {
    TraceParseError perr;
    const std::string ref = trace::TraceFileRef(req.trace, &perr);
    // Unreadable/corrupt trace: uncached; the worker reports the typed
    // parse error and a later fixed file is not shadowed by a bad entry.
    if (ref.empty()) return "";
    return serve::ContentKey(config_text, ref);
  }
  return serve::ContentKey(config_text,
                           serve::WorkloadTraceRef(req.app, req.scale));
}

struct Flags {
  bool worker = false;
  int worker_fd = -1;
  bool stub = false;
  bool chaos = false;
  bool nocache = false;
  std::string socket_path;
  std::string cache_dir;
  std::size_t workers = 0;
  std::size_t queue = 0;
  int retries = 0;
  std::uint64_t backoff_ms = 0;
  std::uint64_t deadline_ms = 0;
};

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--socket PATH] [--workers N] [--queue N] [--retries N]\n"
         "       [--backoff-ms N] [--deadline-ms N] [--cache-dir DIR]\n"
         "       [--nocache] [--chaos] [--stub]\n"
         "worker mode (spawned by the server): --worker-fd N [--stub] "
         "[--chaos]\n";
  return 2;
}

bool ParseFlags(int argc, char** argv, Flags* f) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << what << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--worker-fd") {
      const char* v = next("--worker-fd");
      if (v == nullptr) return false;
      f->worker = true;
      f->worker_fd = std::atoi(v);
    } else if (a == "--stub") {
      f->stub = true;
    } else if (a == "--chaos") {
      f->chaos = true;
    } else if (a == "--nocache") {
      f->nocache = true;
    } else if (a == "--socket") {
      const char* v = next("--socket");
      if (v == nullptr) return false;
      f->socket_path = v;
    } else if (a == "--cache-dir") {
      const char* v = next("--cache-dir");
      if (v == nullptr) return false;
      f->cache_dir = v;
    } else if (a == "--workers") {
      const char* v = next("--workers");
      if (v == nullptr) return false;
      f->workers = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--queue") {
      const char* v = next("--queue");
      if (v == nullptr) return false;
      f->queue = static_cast<std::size_t>(std::atoi(v));
    } else if (a == "--retries") {
      const char* v = next("--retries");
      if (v == nullptr) return false;
      f->retries = std::atoi(v);
    } else if (a == "--backoff-ms") {
      const char* v = next("--backoff-ms");
      if (v == nullptr) return false;
      f->backoff_ms = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--deadline-ms") {
      const char* v = next("--deadline-ms");
      if (v == nullptr) return false;
      f->deadline_ms = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      std::cerr << "unknown flag: " << a << '\n';
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags f;
  if (!ParseFlags(argc, argv, &f)) return Usage(argv[0]);

  if (f.worker) {
    // Chaos is armed by the spawning server (flag propagated through
    // WorkerSpec::argv), or directly via DLPSIM_SERVER_CHAOS.
    const bool chaos = f.chaos || env::Flag("DLPSIM_SERVER_CHAOS");
    const serve::Runner runner =
        f.stub ? serve::Runner(serve::StubRunner) : serve::Runner(BenchRunner);
    return serve::WorkerLoop(f.worker_fd, runner, chaos);
  }

  serve::ServerOptions opts;
  opts.socket_path = !f.socket_path.empty()
                         ? f.socket_path
                         : env::Str("DLPSIM_SERVER_SOCKET", "dlpsim.sock");
  opts.workers = f.workers != 0
                     ? f.workers
                     : static_cast<std::size_t>(
                           env::U64("DLPSIM_SERVER_WORKERS", 4));
  opts.queue_capacity =
      f.queue != 0 ? f.queue
                   : static_cast<std::size_t>(
                         env::U64("DLPSIM_SERVER_QUEUE", 64));
  opts.budget.max_attempts =
      f.retries != 0 ? f.retries
                     : static_cast<int>(env::U64("DLPSIM_SERVER_RETRIES", 3));
  opts.budget.backoff_ms =
      f.backoff_ms != 0 ? f.backoff_ms
                        : env::U64("DLPSIM_SERVER_BACKOFF_MS", 10);
  opts.budget.deadline_ms =
      f.deadline_ms != 0 ? f.deadline_ms
                         : env::U64("DLPSIM_SERVER_DEADLINE_MS", 30000);
  const bool nocache = f.nocache || env::IsSet("DLPSIM_SERVER_NOCACHE");
  if (!nocache) {
    opts.cache_dir = !f.cache_dir.empty()
                         ? f.cache_dir
                         : env::Str("DLPSIM_SERVER_CACHE_DIR",
                                    ".dlpsim_serve_cache");
  }
  opts.key_fn = f.stub ? serve::KeyFn(serve::DefaultKeyFn)
                       : serve::KeyFn(BenchKeyFn);

  const bool chaos = f.chaos || env::Flag("DLPSIM_SERVER_CHAOS");
  opts.worker.argv = {SelfExe(argv[0])};
  if (f.stub) opts.worker.argv.push_back("--stub");
  if (chaos) opts.worker.argv.push_back("--chaos");

  // Drain on SIGTERM/SIGINT via self-pipe (the handler only writes a
  // byte; all teardown happens on the main thread).
  int sigpipe[2];
  if (::pipe(sigpipe) != 0) {
    std::cerr << "pipe: " << std::strerror(errno) << '\n';
    return 1;
  }
  g_sigpipe_wr = sigpipe[1];
  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  const std::size_t workers = opts.workers;
  serve::Server server(std::move(opts));
  std::string err;
  if (!server.Start(&err)) {
    std::cerr << "dlpsim_server: " << err << '\n';
    return 1;
  }
  std::cerr << "dlpsim_server: listening on " << server.socket_path()
            << " (workers=" << workers << (f.stub ? ", stub" : "")
            << (chaos ? ", chaos" : "") << ")\n";

  // Wait for a signal or a client-initiated drain (kShutdown frame).
  for (;;) {
    pollfd pfd = {sigpipe[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0 && errno != EINTR) break;
    if (rc > 0 && (pfd.revents & POLLIN) != 0) break;
    if (server.draining()) break;
  }

  std::cerr << "dlpsim_server: draining\n";
  server.Stop();
  std::cerr << "dlpsim_server: drained, exiting\n";
  ::close(sigpipe[0]);
  ::close(sigpipe[1]);
  return 0;
}
