// Client / load generator for dlpsim-as-a-service.
//
// Modes (all speak the serve/ frame protocol over AF_UNIX):
//
//   single request (default):
//     dlpsim_client --app BFS --config dlp [--scale S] [--deadline-ms N]
//                   [--faults SPEC] [--watchdog CYCLES] [--chaos DIR]
//                   [--nocache]
//     Prints the response header to stderr and the result payload to
//     stdout; exits 0 iff the request was served (error == none).
//
//   load generator:
//     dlpsim_client --replay N [--concurrency C] [--seed S]
//                   [--chaos-pct P] [--deadline-ms N]
//     Replays N deterministic requests (see serve/client.h) over C
//     connections and prints an accounting summary. Exits 0 iff every
//     request ended as served-or-typed-failure with no transport
//     errors (nothing lost).
//
//   admin:
//     dlpsim_client --metrics [deterministic|prom|json]
//     dlpsim_client --shutdown      (graceful drain)
//     dlpsim_client --ping
//
// The socket defaults to DLPSIM_SERVER_SOCKET (same knob the server
// reads), overridable with --socket.
#include <cstdlib>
#include <iostream>
#include <string>

#include "robust/error.h"
#include "serve/client.h"
#include "sim/env.h"

namespace {

using namespace dlpsim;

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--socket PATH] (--app A --config C [...] | --trace FILE "
               "--config C | --replay N [...] | --metrics [KIND] | "
               "--shutdown | --ping)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = env::Str("DLPSIM_SERVER_SOCKET", "dlpsim.sock");
  serve::ExperimentRequest req;
  serve::LoadGenOptions load;
  bool replay = false;
  bool metrics = false;
  bool shutdown = false;
  bool ping = false;
  std::string metrics_kind = "prom";
  int reject_retries = 200;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << what << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--socket") {
      socket_path = next("--socket");
    } else if (a == "--app") {
      req.app = next("--app");
    } else if (a == "--config") {
      req.config = next("--config");
    } else if (a == "--trace") {
      // Replay a recorded trace (text or packed) through the requested
      // config's L1D instead of simulating an app; the server caches by
      // the trace's content ref, so both formats share one entry.
      req.trace = next("--trace");
      req.app = "trace";
    } else if (a == "--scale") {
      req.scale = std::atof(next("--scale"));
    } else if (a == "--deadline-ms") {
      req.deadline_ms = static_cast<std::uint64_t>(
          std::atoll(next("--deadline-ms")));
      load.deadline_ms = req.deadline_ms;
    } else if (a == "--faults") {
      req.faults = next("--faults");
    } else if (a == "--watchdog") {
      req.watchdog_cycles =
          static_cast<std::uint64_t>(std::atoll(next("--watchdog")));
    } else if (a == "--chaos") {
      req.chaos = next("--chaos");
    } else if (a == "--nocache") {
      req.nocache = true;
    } else if (a == "--retries") {
      reject_retries = std::atoi(next("--retries"));
    } else if (a == "--replay") {
      replay = true;
      load.requests =
          static_cast<std::uint64_t>(std::atoll(next("--replay")));
    } else if (a == "--concurrency") {
      load.concurrency =
          static_cast<std::size_t>(std::atoi(next("--concurrency")));
    } else if (a == "--seed") {
      load.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (a == "--chaos-pct") {
      load.chaos_pct =
          static_cast<std::uint64_t>(std::atoll(next("--chaos-pct")));
    } else if (a == "--metrics") {
      metrics = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') metrics_kind = argv[++i];
    } else if (a == "--shutdown") {
      shutdown = true;
    } else if (a == "--ping") {
      ping = true;
    } else {
      std::cerr << "unknown flag: " << a << '\n';
      return Usage(argv[0]);
    }
  }

  std::string err;
  if (replay) {
    load.socket_path = socket_path;
    load.reject_retries = reject_retries;
    serve::LoadGenStats stats;
    if (!serve::RunLoadGen(load, &stats, &err)) {
      std::cerr << "dlpsim_client: " << err << '\n';
      return 1;
    }
    std::cout << "sent " << stats.sent << "\nok " << stats.ok << "\nfailed "
              << stats.failed << "\ncached " << stats.cached
              << "\ntransport_errors " << stats.transport_errors
              << "\nreject_retries " << stats.reject_retries << '\n';
    for (const auto& [kind, n] : stats.failures_by_kind) {
      std::cout << "failure[" << kind << "] " << n << '\n';
    }
    std::cout << "accounted "
              << (stats.accounted() ? "true" : "false") << '\n';
    return stats.accounted() && stats.transport_errors == 0 ? 0 : 1;
  }

  serve::Client client;
  if (!client.Connect(socket_path, &err)) {
    std::cerr << "dlpsim_client: " << err << '\n';
    return 1;
  }

  if (metrics) {
    std::string text;
    if (!client.FetchMetrics(metrics_kind, &text, &err)) {
      std::cerr << "dlpsim_client: " << err << '\n';
      return 1;
    }
    std::cout << text;
    return 0;
  }
  if (shutdown) {
    if (!client.Shutdown(&err)) {
      std::cerr << "dlpsim_client: " << err << '\n';
      return 1;
    }
    std::cerr << "dlpsim_client: server acknowledged drain\n";
    return 0;
  }
  if (ping) {
    if (!client.Ping(&err)) {
      std::cerr << "dlpsim_client: " << err << '\n';
      return 1;
    }
    std::cerr << "dlpsim_client: pong\n";
    return 0;
  }

  if (req.app.empty() || req.config.empty()) return Usage(argv[0]);
  req.id = 1;
  serve::ExperimentResponse resp;
  if (!client.CallWithRetry(req, &resp, reject_retries, &err)) {
    std::cerr << "dlpsim_client: " << err << '\n';
    return 1;
  }
  std::cerr << "error " << robust::ToString(resp.error) << "\nattempts "
            << resp.attempts << "\nworker_crashes " << resp.worker_crashes
            << "\ncached " << (resp.cached ? "true" : "false") << '\n';
  if (!resp.detail.empty()) std::cerr << "detail " << resp.detail << '\n';
  if (!resp.result.empty()) std::cout << resp.result;
  return resp.ok() ? 0 : 1;
}
