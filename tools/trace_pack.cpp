// trace_pack: convert, verify and inspect dlpsim trace files.
//
//   trace_pack --pack IN OUT     convert IN (either format) to DLPT packed
//   trace_pack --unpack IN OUT   convert IN (either format) to canonical text
//   trace_pack --verify FILE...  re-read every record of each file (packed:
//                                all CRCs, lengths, the footer count);
//                                exit 1 on the first corrupt file
//   trace_pack --stat FILE       one-line-per-field summary: format,
//                                records, sizes, blocks, compression ratio,
//                                content ref (trace/hash.h)
//   trace_pack --record APP OUT  run workload APP (Table 2 abbreviation)
//                                on the baseline GPU model with a
//                                TraceRecorder attached and stream its
//                                L1D access trace into OUT as packed
//                                DLPT (--scale sets the iteration scale,
//                                default 0.02) -- the "record once" half
//                                of the record/replay split, and how the
//                                committed tests/golden/traces/ fixtures
//                                were produced
//
// Options:
//   --scale S   iteration scale for --record (default 0.02)
//   --block N   records per packed block (default DLPSIM_TRACE_BLOCK or
//               4096, the canonical block size)
//   --meta STR  metadata text stored in the packed header; when IN is
//               already packed its metadata is carried over by default
//
// Both conversions stream (O(block) memory), so packing a multi-GB trace
// is safe. --unpack writes *canonical* text (see trace/record.h), so
// text -> pack -> unpack canonicalizes formatting but never changes the
// record sequence: unpack(pack(t)) == canonicalize(t), byte for byte --
// pinned by tests/trace/roundtrip_test.cpp.
//
// Environment knobs (reads go through dlpsim::env):
//   DLPSIM_TRACE_BLOCK - default --block value
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gpu/simulator.h"
#include "sim/config.h"
#include "sim/env.h"
#include "trace/format.h"
#include "trace/hash.h"
#include "trace/record.h"
#include "trace/recorder.h"
#include "trace/source.h"
#include "trace/writer.h"
#include "workloads/registry.h"

namespace {

using namespace dlpsim;

int Usage() {
  std::cerr <<
      "usage: trace_pack --pack IN OUT [--block N] [--meta STR]\n"
      "       trace_pack --unpack IN OUT\n"
      "       trace_pack --verify FILE...\n"
      "       trace_pack --stat FILE\n"
      "       trace_pack --record APP OUT [--scale S] [--block N]\n";
  return 2;
}

/// Opens IN, failing loudly (every mode starts this way).
std::unique_ptr<trace::TraceSource> Open(const std::string& path) {
  TraceParseError err;
  auto src = trace::OpenTraceFile(path, &err);
  if (src == nullptr) {
    std::cerr << "trace_pack: " << path << ": " << err.ToString() << '\n';
  }
  return src;
}

int Pack(const std::string& in_path, const std::string& out_path,
         std::uint32_t block_records, const std::string* meta_flag) {
  auto src = Open(in_path);
  if (src == nullptr) return 1;

  // Default metadata: carried over from a packed input, empty for text.
  std::string meta;
  if (meta_flag != nullptr) {
    meta = *meta_flag;
  } else if (auto* packed = dynamic_cast<trace::PackedTraceSource*>(src.get())) {
    meta = packed->meta();
    if (!src->ok()) {
      std::cerr << "trace_pack: " << in_path << ": " << src->error().ToString()
                << '\n';
      return 1;
    }
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "trace_pack: cannot write " << out_path << '\n';
    return 1;
  }
  trace::PackedTraceWriter writer(out, meta, block_records);
  TraceAccess a;
  while (src->Next(&a)) writer.Append(a);
  if (!src->ok()) {
    std::cerr << "trace_pack: " << in_path << ": " << src->error().ToString()
              << '\n';
    return 1;
  }
  if (!writer.Finish() || !out.flush()) {
    std::cerr << "trace_pack: " << out_path << ": write failed\n";
    return 1;
  }
  std::cerr << "trace_pack: packed " << writer.appended() << " records -> "
            << out_path << '\n';
  return 0;
}

int Unpack(const std::string& in_path, const std::string& out_path) {
  auto src = Open(in_path);
  if (src == nullptr) return 1;
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "trace_pack: cannot write " << out_path << '\n';
    return 1;
  }
  TraceAccess a;
  std::string buf;
  std::uint64_t n = 0;
  while (src->Next(&a)) {
    trace::AppendCanonicalLine(a, &buf);
    ++n;
    if (buf.size() >= 64 * 1024) {
      out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
      buf.clear();
    }
  }
  if (!src->ok()) {
    std::cerr << "trace_pack: " << in_path << ": " << src->error().ToString()
              << '\n';
    return 1;
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!out.flush()) {
    std::cerr << "trace_pack: " << out_path << ": write failed\n";
    return 1;
  }
  std::cerr << "trace_pack: unpacked " << n << " records -> " << out_path
            << '\n';
  return 0;
}

int Record(const std::string& app, const std::string& out_path, double scale,
           std::uint32_t block_records) {
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "trace_pack: cannot write " << out_path << '\n';
    return 1;
  }
  try {
    Workload wl = MakeWorkload(app, scale);
    GpuSimulator gpu(SimConfig::Baseline16KB(), wl.program.get(),
                     wl.warps_per_sm);
    std::string meta = "app " + app + "\nscale ";
    {
      std::ostringstream ms;
      ms << scale;
      meta += ms.str() + "\nconfig base\n";
    }
    trace::PackedTraceWriter writer(out, meta, block_records);
    trace::TraceRecorder rec(&writer);
    gpu.AttachObserver(&rec);
    gpu.Run();
    if (!writer.Finish() || !out.flush()) {
      std::cerr << "trace_pack: " << out_path << ": write failed\n";
      return 1;
    }
    std::cerr << "trace_pack: recorded " << rec.recorded() << " accesses of "
              << app << " @ scale " << scale << " -> " << out_path << '\n';
  } catch (const std::exception& e) {
    std::cerr << "trace_pack: record " << app << ": " << e.what() << '\n';
    return 1;
  }
  return 0;
}

int Verify(const std::vector<std::string>& paths) {
  int failures = 0;
  for (const std::string& path : paths) {
    auto src = Open(path);
    if (src == nullptr) {
      ++failures;
      continue;
    }
    TraceAccess a;
    while (src->Next(&a)) {
    }
    if (!src->ok()) {
      std::cerr << "trace_pack: " << path << ": " << src->error().ToString()
                << '\n';
      ++failures;
      continue;
    }
    std::cout << path << ": ok, " << src->delivered() << " records\n";
  }
  return failures == 0 ? 0 : 1;
}

/// Packed-stream shape without decompressing: walks the header and block
/// headers only. Returns false on a malformed layout (--stat still
/// prints what it can; --verify is the integrity check).
struct PackedShape {
  std::uint64_t blocks = 0;
  std::uint64_t comp_bytes = 0;   // compressed payload bytes
  std::uint64_t raw_bytes = 0;    // encoded (pre-compression) bytes
  std::uint64_t meta_bytes = 0;
  std::uint32_t version = 0;
};

bool ReadPackedShape(const std::string& path, PackedShape* shape) {
  std::ifstream in(path, std::ios::binary);
  char hdr[trace::kHeaderBytes];
  if (!in.read(hdr, sizeof(hdr))) return false;
  shape->version = trace::GetU32(hdr + 4);
  shape->meta_bytes = trace::GetU32(hdr + 8);
  in.seekg(static_cast<std::streamoff>(shape->meta_bytes), std::ios::cur);
  char bh[trace::kBlockHeaderBytes];
  for (;;) {
    if (!in.read(bh, sizeof(bh))) return false;
    const std::uint32_t comp_len = trace::GetU32(bh);
    if (comp_len == 0) return true;  // footer
    shape->blocks += 1;
    shape->comp_bytes += comp_len;
    shape->raw_bytes += trace::GetU32(bh + 4);
    in.seekg(static_cast<std::streamoff>(comp_len), std::ios::cur);
  }
}

int Stat(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  probe.read(magic, sizeof(magic));
  const bool packed = probe.gcount() == 4 &&
                      std::string_view(magic, 4) ==
                          std::string_view(trace::kMagic, 4);
  probe.seekg(0, std::ios::end);
  const auto file_bytes = probe.tellg();
  probe.close();

  auto src = Open(path);
  if (src == nullptr) return 1;
  TraceAccess a;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  while (src->Next(&a)) {
    (a.type == AccessType::kStore ? stores : loads) += 1;
  }
  if (!src->ok()) {
    std::cerr << "trace_pack: " << path << ": " << src->error().ToString()
              << '\n';
    return 1;
  }

  TraceParseError herr;
  const std::string ref = trace::TraceFileRef(path, &herr);

  std::cout << "file " << path << '\n'
            << "format " << (packed ? "packed" : "text") << '\n'
            << "bytes " << file_bytes << '\n'
            << "records " << src->delivered() << '\n'
            << "loads " << loads << '\n'
            << "stores " << stores << '\n';
  if (packed) {
    PackedShape shape;
    if (ReadPackedShape(path, &shape)) {
      std::cout << "version " << shape.version << '\n'
                << "meta_bytes " << shape.meta_bytes << '\n'
                << "blocks " << shape.blocks << '\n'
                << "encoded_bytes " << shape.raw_bytes << '\n'
                << "compressed_bytes " << shape.comp_bytes << '\n';
    }
  }
  // Size of the equivalent canonical text, for a format-independent
  // compression figure: canonical_bytes / file bytes.
  std::uint64_t text_bytes = 0;
  {
    auto src2 = Open(path);
    if (src2 != nullptr) {
      std::string line;
      while (src2->Next(&a)) {
        line.clear();
        trace::AppendCanonicalLine(a, &line);
        text_bytes += line.size();
      }
    }
  }
  std::cout << "canonical_text_bytes " << text_bytes << '\n';
  if (packed && file_bytes > 0 && text_bytes > 0) {
    // Fixed-point x100 so the output never depends on float formatting.
    const std::uint64_t centi =
        text_bytes * 100 / static_cast<std::uint64_t>(file_bytes);
    std::cout << "text_to_packed_ratio " << centi / 100 << '.'
              << (centi % 100 < 10 ? "0" : "") << centi % 100 << '\n';
  }
  if (!ref.empty()) std::cout << "content_ref " << ref << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode;
  std::vector<std::string> paths;
  std::uint32_t block_records = static_cast<std::uint32_t>(
      env::U64("DLPSIM_TRACE_BLOCK", trace::kCanonicalBlockRecords));
  std::string meta;
  bool have_meta = false;
  double scale = 0.02;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "trace_pack: " << what << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--pack" || a == "--unpack" || a == "--verify" || a == "--stat" ||
        a == "--record") {
      if (!mode.empty()) return Usage();
      mode = a;
    } else if (a == "--scale") {
      const char* v = next("--scale");
      if (v == nullptr) return 2;
      scale = std::strtod(v, nullptr);
      if (scale <= 0.0) {
        std::cerr << "trace_pack: --scale must be > 0\n";
        return 2;
      }
    } else if (a == "--block") {
      const char* v = next("--block");
      if (v == nullptr) return 2;
      block_records = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      if (block_records == 0) {
        std::cerr << "trace_pack: --block must be >= 1\n";
        return 2;
      }
    } else if (a == "--meta") {
      const char* v = next("--meta");
      if (v == nullptr) return 2;
      meta = v;
      have_meta = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "trace_pack: unknown flag " << a << '\n';
      return Usage();
    } else {
      paths.push_back(a);
    }
  }

  if (mode == "--pack") {
    if (paths.size() != 2) return Usage();
    return Pack(paths[0], paths[1], block_records, have_meta ? &meta : nullptr);
  }
  if (mode == "--unpack") {
    if (paths.size() != 2) return Usage();
    return Unpack(paths[0], paths[1]);
  }
  if (mode == "--verify") {
    if (paths.empty()) return Usage();
    return Verify(paths);
  }
  if (mode == "--stat") {
    if (paths.size() != 1) return Usage();
    return Stat(paths[0]);
  }
  if (mode == "--record") {
    if (paths.size() != 2) return Usage();
    return Record(paths[0], paths[1], scale, block_records);
  }
  return Usage();
}
