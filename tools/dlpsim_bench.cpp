// dlpsim_bench: pinned-workload simulator-throughput benchmark.
//
// Runs a fixed (apps x configs) grid of uncached, serial simulations and
// reports how fast the *simulator* is: simulated core cycles per wall
// second, simulated L1D accesses per wall second, an aggregate per-phase
// breakdown (from a separate profiled pass so profiling overhead never
// contaminates the timed pass), a trace-frontend ingest phase (packed vs
// text decode rates over an in-memory recording of the first grid cell)
// and peak RSS. The result is written as BENCH_<id>.json; committed
// snapshots of that file at the repo root form the project's performance
// trajectory, one point per PR.
//
// Regression gate: --baseline BENCH_<m>.json --max-regress <pct> compares
// this run's cycles/sec and accesses/sec against the baseline document
// and exits 1 when either rate drops by more than <pct> percent. The
// default tolerance is generous because committed baselines come from a
// different machine than CI runners; the gate exists to catch order-of-
// magnitude slowdowns, not scheduler jitter.
//
// Usage:
//   dlpsim_bench [--out FILE] [--baseline FILE] [--max-regress PCT]
//                [--repeat N] [--scale S] [--bench-id N]
//                [--apps A,B,...] [--configs C,D,...]
//
// Workload results are ignored on purpose (determinism is enforced by the
// test suite); only wall time is measured, best-of-N over --repeat runs.
// All timing goes through exec::Stopwatch (the sanctioned clock) and the
// tool reads no environment knobs, so a pinned command line is the whole
// measurement recipe.

#include <sys/resource.h>

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/timing.h"
#include "gpu/simulator.h"
#include "harness.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "trace/recorder.h"
#include "trace/source.h"
#include "trace/text.h"
#include "trace/writer.h"
#include "workloads/registry.h"

namespace {

using dlpsim::GpuSimulator;
using dlpsim::JsonValue;
using dlpsim::JsonWriter;
using dlpsim::MakeWorkload;
using dlpsim::Metrics;
using dlpsim::ParseJson;
using dlpsim::SimConfig;
using dlpsim::Workload;

struct Options {
  std::string out;                 // default: BENCH_<bench_id>.json
  std::string baseline;            // empty = no comparison
  double max_regress_pct = 60.0;   // allowed rate drop vs baseline
  int repeat = 3;                  // timed passes; best (fastest) wins
  double scale = 0.05;             // workload scale factor
  int bench_id = 9;                // stamp for the default output name
  std::vector<std::string> apps = {"BFS", "BP", "HS", "SRAD"};
  std::vector<std::string> configs = {"base", "dlp"};
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void Usage(std::ostream& os) {
  os << "usage: dlpsim_bench [--out FILE] [--baseline FILE]\n"
        "                    [--max-regress PCT] [--repeat N] [--scale S]\n"
        "                    [--bench-id N] [--apps A,B,..] "
        "[--configs C,D,..]\n";
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "dlpsim_bench: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage(std::cout);
      std::exit(0);
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      opt->out = v;
    } else if (arg == "--baseline") {
      const char* v = next("--baseline");
      if (v == nullptr) return false;
      opt->baseline = v;
    } else if (arg == "--max-regress") {
      const char* v = next("--max-regress");
      if (v == nullptr) return false;
      opt->max_regress_pct = std::stod(v);
    } else if (arg == "--repeat") {
      const char* v = next("--repeat");
      if (v == nullptr) return false;
      opt->repeat = std::stoi(v);
      if (opt->repeat < 1) opt->repeat = 1;
    } else if (arg == "--scale") {
      const char* v = next("--scale");
      if (v == nullptr) return false;
      opt->scale = std::stod(v);
    } else if (arg == "--bench-id") {
      const char* v = next("--bench-id");
      if (v == nullptr) return false;
      opt->bench_id = std::stoi(v);
    } else if (arg == "--apps") {
      const char* v = next("--apps");
      if (v == nullptr) return false;
      opt->apps = SplitCsv(v);
    } else if (arg == "--configs") {
      const char* v = next("--configs");
      if (v == nullptr) return false;
      opt->configs = SplitCsv(v);
    } else {
      std::cerr << "dlpsim_bench: unknown flag " << arg << '\n';
      Usage(std::cerr);
      return false;
    }
  }
  if (opt->out.empty()) {
    opt->out = "BENCH_" + std::to_string(opt->bench_id) + ".json";
  }
  if (opt->apps.empty() || opt->configs.empty()) {
    std::cerr << "dlpsim_bench: --apps and --configs must be non-empty\n";
    return false;
  }
  return true;
}

struct CellResult {
  std::string app;
  std::string config;
  std::uint64_t core_cycles = 0;
  std::uint64_t accesses = 0;
};

/// One serial pass over the pinned grid. `profiler` may be null (timed
/// passes); when set, every simulator shares it so phase stats aggregate
/// across the whole grid.
std::vector<CellResult> RunGridOnce(const Options& opt,
                                    dlpsim::obs::Profiler* profiler) {
  std::vector<CellResult> cells;
  for (const std::string& app : opt.apps) {
    for (const std::string& config : opt.configs) {
      const SimConfig cfg = dlpsim::bench::ConfigFor(config);
      Workload wl = MakeWorkload(app, opt.scale);
      GpuSimulator gpu(cfg, wl.program.get(), wl.warps_per_sm);
      if (profiler != nullptr) gpu.SetProfiler(profiler);
      const Metrics m = gpu.Run();
      CellResult cell;
      cell.app = app;
      cell.config = config;
      cell.core_cycles = m.core_cycles;
      cell.accesses = m.l1d_accesses;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

/// Packed-ingest throughput phase: records the first grid cell's access
/// stream once, serializes it to the packed and text forms in memory,
/// then times draining each form through its TraceSource (best of
/// --repeat). This measures the trace frontend the replayer and the
/// serve layer sit on, with no disk in the loop.
struct IngestResult {
  std::uint64_t records = 0;
  std::uint64_t packed_bytes = 0;
  std::uint64_t text_bytes = 0;
  double packed_best_wall = 0.0;
  double text_best_wall = 0.0;
};

IngestResult RunIngestPhase(const Options& opt) {
  IngestResult r;
  std::vector<dlpsim::TraceAccess> records;
  {
    Workload wl = MakeWorkload(opt.apps.front(), opt.scale);
    GpuSimulator gpu(dlpsim::bench::ConfigFor(opt.configs.front()),
                     wl.program.get(), wl.warps_per_sm);
    dlpsim::trace::TraceRecorder rec(&records);
    gpu.AttachObserver(&rec);
    gpu.Run();
  }
  r.records = records.size();

  std::ostringstream packed_os;
  if (!dlpsim::trace::WritePackedTrace(packed_os, records)) return r;
  const std::string packed = packed_os.str();
  const std::string text = dlpsim::trace::CanonicalText(records);
  r.packed_bytes = packed.size();
  r.text_bytes = text.size();

  auto drain = [&records](dlpsim::trace::TraceSource& src) {
    std::vector<dlpsim::TraceAccess> out;
    dlpsim::TraceParseError err;
    if (!dlpsim::trace::ReadAllRecords(src, &out, &err) ||
        out.size() != records.size()) {
      std::cerr << "dlpsim_bench: ingest round trip mismatch: "
                << err.ToString() << '\n';
      std::exit(2);
    }
  };
  for (int rep = 0; rep < opt.repeat; ++rep) {
    {
      std::istringstream is(packed);
      dlpsim::trace::PackedTraceSource src(is);
      const dlpsim::exec::Stopwatch clock;
      drain(src);
      const double s = clock.Seconds();
      if (r.packed_best_wall == 0.0 || s < r.packed_best_wall) {
        r.packed_best_wall = s;
      }
    }
    {
      std::istringstream is(text);
      dlpsim::trace::TextTraceSource src(is);
      const dlpsim::exec::Stopwatch clock;
      drain(src);
      const double s = clock.Seconds();
      if (r.text_best_wall == 0.0 || s < r.text_best_wall) {
        r.text_best_wall = s;
      }
    }
  }
  return r;
}

std::uint64_t PeakRssKb() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // KB on Linux
}

void WriteBenchJson(std::ostream& os, const Options& opt,
                    const std::vector<CellResult>& cells,
                    std::uint64_t total_cycles, std::uint64_t total_accesses,
                    double best_wall, const std::vector<double>& walls,
                    const dlpsim::obs::Profiler& profiler,
                    double profile_wall, const IngestResult& ingest) {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("schema", "dlpsim-bench-v1");
  w.KV("bench_id", std::int64_t{opt.bench_id});
  w.KV("scale", opt.scale);
  w.KV("repeat", std::int64_t{opt.repeat});

  w.Key("apps").BeginArray();
  for (const std::string& a : opt.apps) w.Value(a);
  w.EndArray();
  w.Key("configs").BeginArray();
  for (const std::string& c : opt.configs) w.Value(c);
  w.EndArray();

  w.Key("cells").BeginArray();
  for (const CellResult& c : cells) {
    w.BeginObject();
    w.KV("app", c.app);
    w.KV("config", c.config);
    w.KV("core_cycles", c.core_cycles);
    w.KV("l1d_accesses", c.accesses);
    w.EndObject();
  }
  w.EndArray();

  w.Key("totals").BeginObject();
  w.KV("core_cycles", total_cycles);
  w.KV("l1d_accesses", total_accesses);
  w.EndObject();

  w.Key("wall_seconds").BeginArray();
  for (const double s : walls) w.Value(s);
  w.EndArray();
  w.KV("wall_seconds_best", best_wall);
  w.KV("cycles_per_second",
       best_wall > 0.0 ? static_cast<double>(total_cycles) / best_wall : 0.0);
  w.KV("accesses_per_second",
       best_wall > 0.0 ? static_cast<double>(total_accesses) / best_wall
                       : 0.0);

  // Phase breakdown from the separate profiled pass (its own wall time;
  // never the one the rates above are computed from).
  w.KV("profile_wall_seconds", profile_wall);
  w.Key("phases").BeginArray();
  for (const auto& [phase, stat] : profiler.PhaseStats()) {
    w.BeginObject();
    w.KV("phase", dlpsim::obs::ToString(phase));
    w.KV("calls", stat.calls);
    w.KV("total_seconds", stat.total_seconds);
    w.KV("self_seconds", stat.self_seconds);
    w.EndObject();
  }
  w.EndArray();

  // Trace-frontend ingest rates (packed vs text, in-memory, best-of-N).
  w.Key("trace_ingest").BeginObject();
  w.KV("records", ingest.records);
  w.KV("packed_bytes", ingest.packed_bytes);
  w.KV("text_bytes", ingest.text_bytes);
  w.KV("packed_wall_seconds_best", ingest.packed_best_wall);
  w.KV("text_wall_seconds_best", ingest.text_best_wall);
  w.KV("packed_records_per_second",
       ingest.packed_best_wall > 0.0
           ? static_cast<double>(ingest.records) / ingest.packed_best_wall
           : 0.0);
  w.KV("text_records_per_second",
       ingest.text_best_wall > 0.0
           ? static_cast<double>(ingest.records) / ingest.text_best_wall
           : 0.0);
  w.EndObject();

  w.KV("peak_rss_kb", PeakRssKb());
  w.EndObject();
  os << '\n';
}

/// Compares one rate against the baseline document; returns false (and
/// explains on stderr) when the candidate regressed past the tolerance.
bool CheckRate(const JsonValue& baseline, const char* key, double candidate,
               double max_regress_pct) {
  const JsonValue* v = baseline.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) {
    std::cerr << "[bench] baseline has no numeric '" << key
              << "'; skipping that gate\n";
    return true;
  }
  const double base = v->number;
  if (base <= 0.0) return true;
  const double floor = base * (1.0 - max_regress_pct / 100.0);
  const double delta_pct = (candidate - base) / base * 100.0;
  std::cerr << "[bench] " << key << ": " << candidate << " vs baseline "
            << base << " (" << (delta_pct >= 0 ? "+" : "") << delta_pct
            << "%, floor " << floor << ")\n";
  if (candidate < floor) {
    std::cerr << "[bench] REGRESSION: " << key << " dropped more than "
              << max_regress_pct << "% vs baseline\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) return 2;

  // Warm-up + correctness pass: builds every workload once so first-touch
  // allocation costs never land in the timed passes.
  std::vector<CellResult> cells = RunGridOnce(opt, nullptr);
  std::uint64_t total_cycles = 0;
  std::uint64_t total_accesses = 0;
  for (const CellResult& c : cells) {
    total_cycles += c.core_cycles;
    total_accesses += c.accesses;
  }
  if (total_accesses == 0) {
    std::cerr << "dlpsim_bench: pinned grid simulated zero accesses; "
                 "check --apps/--configs/--scale\n";
    return 2;
  }

  std::vector<double> walls;
  double best_wall = 0.0;
  for (int r = 0; r < opt.repeat; ++r) {
    const dlpsim::exec::Stopwatch clock;
    RunGridOnce(opt, nullptr);
    const double s = clock.Seconds();
    walls.push_back(s);
    if (best_wall == 0.0 || s < best_wall) best_wall = s;
    std::cerr << "[bench] pass " << (r + 1) << "/" << opt.repeat << ": " << s
              << " s\n";
  }

  // Profiled pass, separate from the timed passes: ProfileSpan overhead
  // (two Stopwatch reads per span) stays out of the reported rates.
  dlpsim::obs::Profiler profiler;
  const dlpsim::exec::Stopwatch profile_clock;
  RunGridOnce(opt, &profiler);
  const double profile_wall = profile_clock.Seconds();

  const IngestResult ingest = RunIngestPhase(opt);
  std::cerr << "[bench] trace ingest: " << ingest.records << " records, "
            << ingest.packed_bytes << " B packed / " << ingest.text_bytes
            << " B text, packed " << ingest.packed_best_wall << " s, text "
            << ingest.text_best_wall << " s\n";

  {
    std::ofstream os(opt.out);
    if (!os) {
      std::cerr << "dlpsim_bench: cannot write " << opt.out << '\n';
      return 2;
    }
    WriteBenchJson(os, opt, cells, total_cycles, total_accesses, best_wall,
                   walls, profiler, profile_wall, ingest);
  }
  const double cps =
      best_wall > 0.0 ? static_cast<double>(total_cycles) / best_wall : 0.0;
  const double aps =
      best_wall > 0.0 ? static_cast<double>(total_accesses) / best_wall : 0.0;
  std::cerr << "[bench] " << total_cycles << " cycles, " << total_accesses
            << " accesses in " << best_wall << " s (best of " << opt.repeat
            << "): " << cps << " cycles/s, " << aps << " accesses/s -> "
            << opt.out << '\n';

  if (!opt.baseline.empty()) {
    std::ifstream in(opt.baseline);
    if (!in) {
      std::cerr << "dlpsim_bench: cannot read baseline " << opt.baseline
                << '\n';
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    bool ok = false;
    const JsonValue baseline = ParseJson(buf.str(), &ok);
    if (!ok) {
      std::cerr << "dlpsim_bench: baseline " << opt.baseline
                << " is not valid JSON\n";
      return 2;
    }
    const bool cps_ok =
        CheckRate(baseline, "cycles_per_second", cps, opt.max_regress_pct);
    const bool aps_ok =
        CheckRate(baseline, "accesses_per_second", aps, opt.max_regress_pct);
    if (!cps_ok || !aps_ok) return 1;
  }
  return 0;
}
