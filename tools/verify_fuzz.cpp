// verify_fuzz: differential-oracle fuzzing driver (CI entry point).
//
// Modes (composable; all selected checks must pass for exit code 0):
//   --traces N        differential fuzz: N seeded random traces per
//                     selected policy against the verify/ oracle
//   --parser-fuzz N   N seeded malformed inputs through both trace parsers
//   --packed-fuzz N   N seeded corrupted DLPT packed streams through
//                     PackedTraceSource (typed-error contract)
//   --neutrality N    N metamorphic Baseline-vs-neutralized-DLP runs
//   --determinism N   N seeds fuzzed serially and on --jobs workers,
//                     outcomes compared
//   --replay FILE     re-run a saved reproducer artifact (text or packed;
//                     the format is sniffed) and report
//
// Options:
//   --policy base|sb|gp|dlp|all   policies to fuzz (default all)
//   --seed S                      first seed (default 1)
//   --jobs N                      worker threads (default DLPSIM_JOBS /
//                                 hardware concurrency)
//   --out DIR                     where reproducer artifacts are written
//                                 (default .)
//   --artifact-format packed|text reproducer format (default: the
//                                 DLPSIM_TRACE_ARTIFACTS knob, else packed)
//   --no-shrink                   keep full traces in artifacts
//   --bug NAME                    plant a deliberate oracle bug
//                                 (self-test): pd-decrease-off-by-one,
//                                 pd-increase-no-clamp,
//                                 skip-decay-on-stores, vta-keep-on-hit
//
// Exit codes: 0 all checks clean, 1 divergence/violation found, 2 usage.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/run_grid.h"
#include "sim/env.h"
#include "verify/artifact.h"
#include "verify/differential.h"
#include "verify/fuzzer.h"
#include "verify/metamorphic.h"

namespace {

using namespace dlpsim;
using namespace dlpsim::verify;

struct Options {
  std::uint64_t traces = 0;
  std::uint64_t parser_fuzz = 0;
  std::uint64_t packed_fuzz = 0;
  std::uint64_t neutrality = 0;
  std::uint64_t determinism = 0;
  std::string replay;
  std::string policy = "all";
  std::uint64_t seed = 1;
  std::size_t jobs = 0;  // 0 = DefaultJobs()
  std::string out_dir = ".";
  // Reproducer format: "packed" (default) keeps large pre-shrink traces
  // small on disk; "text" writes the historical commented trace files.
  std::string artifact_format = env::Str("DLPSIM_TRACE_ARTIFACTS", "packed");
  bool shrink = true;
  OracleBug bug = OracleBug::kNone;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--traces N] [--parser-fuzz N] [--packed-fuzz N]\n"
               "          [--neutrality N] [--determinism N] [--replay FILE]\n"
               "          [--policy P] [--seed S] [--jobs N] [--out DIR]\n"
               "          [--artifact-format packed|text] [--no-shrink]\n"
               "          [--bug NAME]\n",
               argv0);
  return 2;
}

bool ParsePolicies(const std::string& name, std::vector<PolicyKind>* out) {
  if (name == "all") {
    *out = {PolicyKind::kBaseline, PolicyKind::kStallBypass,
            PolicyKind::kGlobalProtection, PolicyKind::kDlp};
  } else if (name == "base") {
    *out = {PolicyKind::kBaseline};
  } else if (name == "sb") {
    *out = {PolicyKind::kStallBypass};
  } else if (name == "gp") {
    *out = {PolicyKind::kGlobalProtection};
  } else if (name == "dlp") {
    *out = {PolicyKind::kDlp};
  } else {
    return false;
  }
  return true;
}

bool ParseBug(const std::string& name, OracleBug* out) {
  if (name == "none") *out = OracleBug::kNone;
  else if (name == "pd-decrease-off-by-one") *out = OracleBug::kPdDecreaseOffByOne;
  else if (name == "pd-increase-no-clamp") *out = OracleBug::kPdIncreaseNoClamp;
  else if (name == "skip-decay-on-stores") *out = OracleBug::kSkipDecayOnStores;
  else if (name == "vta-keep-on-hit") *out = OracleBug::kVtaKeepOnHit;
  else return false;
  return true;
}

const char* PolicyFlag(PolicyKind k) {
  switch (k) {
    case PolicyKind::kBaseline: return "base";
    case PolicyKind::kStallBypass: return "sb";
    case PolicyKind::kGlobalProtection: return "gp";
    case PolicyKind::kDlp: return "dlp";
  }
  return "base";
}

/// Differential fuzz over one policy; returns the number of divergences
/// (each one written to an artifact file).
std::uint64_t FuzzPolicy(const Options& opt, PolicyKind policy,
                         std::size_t jobs) {
  const std::size_t n = static_cast<std::size_t>(opt.traces);
  const std::vector<FuzzOutcome> outcomes = exec::ParallelMap(
      n,
      [&](std::size_t i) {
        return FuzzOneSeed(opt.seed + i, policy, opt.bug, opt.shrink);
      },
      jobs);

  std::uint64_t diverged = 0;
  for (const FuzzOutcome& o : outcomes) {
    if (!o.diverged) continue;
    ++diverged;
    const bool packed = opt.artifact_format != "text";
    const std::string path = opt.out_dir + "/verify_fuzz_" +
                             PolicyFlag(policy) + "_seed" +
                             std::to_string(o.seed) +
                             (packed ? ".dlpt" : ".trace");
    std::string error;
    const bool wrote =
        packed ? WriteArtifactPackedFile(path, o.reproducer, &error)
               : WriteArtifactFile(path, o.reproducer, &error);
    if (wrote) {
      std::fprintf(stderr,
                   "[verify_fuzz] %s seed %llu DIVERGED: %s\n"
                   "              reproducer (%zu accesses, %zu shrink "
                   "steps): %s\n",
                   ToString(policy),
                   static_cast<unsigned long long>(o.seed),
                   o.first.ToString().c_str(), o.reproducer.trace.size(),
                   o.shrink_steps, path.c_str());
    } else {
      std::fprintf(stderr,
                   "[verify_fuzz] %s seed %llu DIVERGED: %s\n"
                   "              (artifact write failed: %s)\n",
                   ToString(policy),
                   static_cast<unsigned long long>(o.seed),
                   o.first.ToString().c_str(), error.c_str());
    }
  }
  std::printf("[verify_fuzz] policy %-17s: %zu traces, %llu divergences\n",
              ToString(policy), n,
              static_cast<unsigned long long>(diverged));
  return diverged;
}

int Replay(const Options& opt) {
  Artifact artifact;
  std::string error;
  if (!ReadArtifactAuto(opt.replay, &artifact, &error)) {
    std::fprintf(stderr, "[verify_fuzz] cannot replay '%s': %s\n",
                 opt.replay.c_str(), error.c_str());
    return 2;
  }
  std::printf("[verify_fuzz] replaying %s: policy %s, %zu accesses\n",
              opt.replay.c_str(), ToString(artifact.config.policy),
              artifact.trace.size());
  if (!artifact.divergence.empty()) {
    std::printf("[verify_fuzz] recorded divergence: %s\n",
                artifact.divergence.c_str());
  }
  const std::optional<Divergence> d = RunDifferential(
      artifact.config, artifact.trace, artifact.params, opt.bug);
  if (d.has_value()) {
    std::printf("[verify_fuzz] REPRODUCED: %s\n", d->ToString().c_str());
    return 1;
  }
  std::printf("[verify_fuzz] no divergence (fixed, or bug not planted)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool any_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--traces" && (value = next())) {
      opt.traces = std::strtoull(value, nullptr, 10);
      any_mode = true;
    } else if (arg == "--parser-fuzz" && (value = next())) {
      opt.parser_fuzz = std::strtoull(value, nullptr, 10);
      any_mode = true;
    } else if (arg == "--packed-fuzz" && (value = next())) {
      opt.packed_fuzz = std::strtoull(value, nullptr, 10);
      any_mode = true;
    } else if (arg == "--neutrality" && (value = next())) {
      opt.neutrality = std::strtoull(value, nullptr, 10);
      any_mode = true;
    } else if (arg == "--determinism" && (value = next())) {
      opt.determinism = std::strtoull(value, nullptr, 10);
      any_mode = true;
    } else if (arg == "--replay" && (value = next())) {
      opt.replay = value;
      any_mode = true;
    } else if (arg == "--policy" && (value = next())) {
      opt.policy = value;
    } else if (arg == "--seed" && (value = next())) {
      opt.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--jobs" && (value = next())) {
      opt.jobs = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--out" && (value = next())) {
      opt.out_dir = value;
    } else if (arg == "--artifact-format" && (value = next())) {
      opt.artifact_format = value;
      if (opt.artifact_format != "packed" && opt.artifact_format != "text") {
        return Usage(argv[0]);
      }
    } else if (arg == "--no-shrink") {
      opt.shrink = false;
    } else if (arg == "--bug" && (value = next())) {
      if (!ParseBug(value, &opt.bug)) return Usage(argv[0]);
    } else {
      return Usage(argv[0]);
    }
  }
  if (!any_mode) {
    // Bare invocation: a useful default for local runs.
    opt.traces = 100;
    opt.parser_fuzz = 200;
    opt.packed_fuzz = 200;
    opt.neutrality = 20;
  }

  std::vector<PolicyKind> policies;
  if (!ParsePolicies(opt.policy, &policies)) return Usage(argv[0]);
  const std::size_t jobs = opt.jobs == 0 ? exec::DefaultJobs() : opt.jobs;

  if (!opt.replay.empty()) return Replay(opt);

  std::uint64_t failures = 0;

  if (opt.traces > 0) {
    for (PolicyKind policy : policies) {
      failures += FuzzPolicy(opt, policy, jobs);
    }
  }

  if (opt.parser_fuzz > 0) {
    const std::string violation =
        FuzzTraceParsers(opt.seed, static_cast<std::size_t>(opt.parser_fuzz));
    if (!violation.empty()) {
      std::fprintf(stderr, "[verify_fuzz] parser fuzz VIOLATION: %s\n",
                   violation.c_str());
      ++failures;
    } else {
      std::printf("[verify_fuzz] parser fuzz: %llu inputs, no violations\n",
                  static_cast<unsigned long long>(opt.parser_fuzz));
    }
  }

  if (opt.packed_fuzz > 0) {
    const std::string violation =
        FuzzPackedTraces(opt.seed, static_cast<std::size_t>(opt.packed_fuzz));
    if (!violation.empty()) {
      std::fprintf(stderr, "[verify_fuzz] packed fuzz VIOLATION: %s\n",
                   violation.c_str());
      ++failures;
    } else {
      std::printf("[verify_fuzz] packed fuzz: %llu corrupted streams, all "
                  "typed errors\n",
                  static_cast<unsigned long long>(opt.packed_fuzz));
    }
  }

  if (opt.neutrality > 0) {
    const std::vector<std::string> results = exec::ParallelMap(
        static_cast<std::size_t>(opt.neutrality),
        [&](std::size_t i) { return CheckProtectionNeutrality(opt.seed + i); },
        jobs);
    std::uint64_t bad = 0;
    for (const std::string& r : results) {
      if (r.empty()) continue;
      ++bad;
      std::fprintf(stderr, "[verify_fuzz] neutrality VIOLATION: %s\n",
                   r.c_str());
    }
    failures += bad;
    if (bad == 0) {
      std::printf("[verify_fuzz] neutrality: %llu runs, no violations\n",
                  static_cast<unsigned long long>(opt.neutrality));
    }
  }

  if (opt.determinism > 0) {
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < opt.determinism; ++i) {
      seeds.push_back(opt.seed + i);
    }
    for (PolicyKind policy : policies) {
      const std::string violation =
          CheckFuzzDeterminism(seeds, policy, jobs < 2 ? 4 : jobs);
      if (!violation.empty()) {
        std::fprintf(stderr, "[verify_fuzz] determinism VIOLATION (%s): %s\n",
                     ToString(policy), violation.c_str());
        ++failures;
      }
    }
    if (failures == 0) {
      std::printf("[verify_fuzz] determinism: %llu seeds x %zu policies, "
                  "schedule-independent\n",
                  static_cast<unsigned long long>(opt.determinism),
                  policies.size());
    }
  }

  return failures == 0 ? 0 : 1;
}
