// Property-based trace fuzzing with automatic shrinking.
//
// A fuzz case is (L1DConfig, DriveParams, trace), all derived
// deterministically from a 64-bit seed: the same seed always produces
// the same case on every machine and job count. Each case runs the real
// L1DCache against the verify/ oracle in lockstep (differential.h); a
// divergence is shrunk with delta debugging (ddmin over the access list)
// to a minimal reproducer and reported as a replayable Artifact.
//
// Traces mix access phases chosen per-case (sequential streams, small
// zipf-skewed working sets, re-reference loops, random stores) so the
// generated workloads hit both the protection sweet spot (hot lines worth
// protecting) and the thrashing regime (bypass/stall pressure).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/trace_replay.h"
#include "sim/config.h"
#include "verify/artifact.h"
#include "verify/differential.h"
#include "verify/oracle.h"

namespace dlpsim::verify {

/// One generated differential test case.
struct FuzzCase {
  std::uint64_t seed = 0;
  L1DConfig config;
  DriveParams params;
  std::vector<TraceAccess> trace;
};

/// Deterministically expands `seed` into a full case for `policy`. The
/// produced config always passes L1DConfig::Validate().
FuzzCase MakeFuzzCase(std::uint64_t seed, PolicyKind policy);

/// Runs one case; nullopt on agreement.
std::optional<Divergence> RunFuzzCase(const FuzzCase& c,
                                      OracleBug bug = OracleBug::kNone);

/// Delta-debugging shrink: returns the smallest subsequence of c.trace
/// (ddmin to 1-access granularity, then greedy single-access removal)
/// that still produces *some* divergence under the same config/params.
/// `steps_out` (optional) reports how many differential runs were spent.
std::vector<TraceAccess> ShrinkTrace(const FuzzCase& c, OracleBug bug,
                                     std::size_t* steps_out = nullptr);

/// Result of one seed: clean, or a shrunk reproducer ready to save.
struct FuzzOutcome {
  std::uint64_t seed = 0;
  PolicyKind policy = PolicyKind::kBaseline;
  bool diverged = false;
  Divergence first;        // divergence of the full trace (when diverged)
  Artifact reproducer;     // shrunk artifact (when diverged)
  std::size_t shrink_steps = 0;
};

/// Full pipeline for one seed: generate, run, and on failure shrink and
/// package the reproducer (with the post-shrink divergence message).
FuzzOutcome FuzzOneSeed(std::uint64_t seed, PolicyKind policy,
                        OracleBug bug = OracleBug::kNone, bool shrink = true);

/// Feeds `iterations` seeded malformed/truncated/overlong inputs to both
/// trace parsers and checks the contract: no crash, lenient mode never
/// fails, strict mode either accepts or reports a typed error whose line
/// number is in range. Returns a description of the first violation, or
/// "" when the parsers hold up. Inputs mix valid lines, random bytes,
/// over-long tokens, embedded NULs, bad ops, huge/negative numbers and
/// missing fields.
std::string FuzzTraceParsers(std::uint64_t seed, std::size_t iterations);

/// Feeds `iterations` seeded corrupted DLPT packed byte streams to
/// PackedTraceSource and checks the reader's contract: no crash, no
/// unbounded loop, and -- because every section is length-bounded and
/// CRC-protected -- any single-byte corruption or truncation surfaces as
/// a typed TraceParseError (never a silent partial read that still
/// claims ok()). Corruptions cycle through: truncation at a seeded
/// offset (header, mid-block, footer), single-byte XOR, oversized
/// declared block/metadata lengths, bad magic and wrong version. Returns
/// a description of the first violation, or "" when the reader holds up.
std::string FuzzPackedTraces(std::uint64_t seed, std::size_t iterations);

}  // namespace dlpsim::verify
