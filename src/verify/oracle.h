// Executable reference models ("oracles") for the L1D and the DLP side
// structures, written directly from the paper's step tables rather than
// from src/core's optimized implementations.
//
// The oracles trade every optimization for obviousness: recency-ordered
// scans instead of incremental counters, straight Fig. 9 arithmetic
// instead of the shared StampOwnership/CommitQuery plumbing, and plain
// containers instead of the production tag array. The differential
// driver (verify/differential.h) runs the real L1DCache and OracleL1D
// access-by-access on the same input and flags the first observable
// divergence; a policy bug in either implementation surfaces as a
// mismatch the fuzzer then shrinks to a minimal reproducer.
//
// OracleL1D deliberately re-derives, independently of src/core:
//   - LRU victim selection + RESERVED-line semantics (GPGPU-Sim rules)
//   - protected-life decay, stamping and PL-based victim choice (§4.1.1)
//   - the VTA's consume-on-hit / insert-on-eviction flow (§4.1.2)
//   - the PDPT's saturating counters and the Fig. 9 PD update (§4.2)
//   - MSHR allocate/merge limits and the miss-queue slot accounting
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "cache/line.h"
#include "cache/mshr.h"
#include "cache/stats.h"
#include "core/l1d_cache.h"
#include "sim/config.h"
#include "sim/types.h"

namespace dlpsim::verify {

/// Test-only sabotage knobs: each plants one deliberate bug inside the
/// oracle so the differential harness (and its shrinker) can be verified
/// to catch exactly the class of defect it exists for. kNone in all real
/// verification runs.
enum class OracleBug : std::uint8_t {
  kNone,
  kPdDecreaseOffByOne,   // Fig. 9 decrease path subtracts Nasc-1, not Nasc
  kPdIncreaseNoClamp,    // increase path misses the pd_max clamp
  kSkipDecayOnStores,    // §4.1.1: PL decay wrongly skipped for stores
  kVtaKeepOnHit,         // VTA entry wrongly kept (not consumed) on hit
};

/// One request the oracle expects to leave the cache, mirroring
/// L1DOutgoing field-for-field so the driver can compare streams.
struct OracleOutgoing {
  Addr block = 0;
  bool write = false;
  bool no_fill = false;
  Pc pc = 0;
  MshrToken token = 0;
};

/// Reference model of one L1D front end under any PolicyKind.
class OracleL1D {
 public:
  explicit OracleL1D(const L1DConfig& cfg, OracleBug bug = OracleBug::kNone);

  /// Mirrors L1DCache::Access. On kReservationFail no state changed.
  AccessResult Access(const MemAccess& access, Cycle now);

  /// Mirrors L1DCache::Fill; appends woken tokens in retire order.
  void Fill(Addr block, bool no_fill, MshrToken token,
            std::vector<MshrToken>& woken);

  bool HasOutgoing() const { return !outgoing_.empty(); }
  OracleOutgoing PopOutgoing();
  std::size_t outgoing_size() const { return outgoing_.size(); }

  const CacheStats& stats() const { return stats_; }
  const L1DConfig& config() const { return cfg_; }

  // --- state rendering for divergence detection -------------------------
  // Way positions are not architecturally meaningful, so per-set state is
  // rendered in recency order (least recent first) for comparison with
  // the real tag array rendered the same way.

  struct LineImage {
    Addr block = 0;
    LineState state = LineState::kInvalid;
    std::uint32_t insn_id = 0;
    std::uint32_t protected_life = 0;
  };
  /// Occupied lines of `set`, least-recently-used first.
  std::vector<LineImage> SetImage(std::uint32_t set) const;

  /// Per-entry protection distances (empty for LRU policies).
  std::vector<std::uint32_t> PdImage() const;

  struct VtaImage {
    Addr block = 0;
    std::uint32_t insn_id = 0;
  };
  /// Occupied VTA entries of `set`, least-recently-used first (empty for
  /// LRU policies).
  std::vector<VtaImage> VtaSetImage(std::uint32_t set) const;

  std::uint32_t sets() const { return cfg_.geom.sets; }

 private:
  struct Line {
    Addr block = 0;
    LineState state = LineState::kInvalid;
    std::uint64_t stamp = 0;  // recency; larger = more recent
    std::uint32_t insn_id = 0;
    std::uint32_t pl = 0;
    Pc src_pc = 0;
  };

  struct VtaEntry {
    Addr block = 0;
    std::uint32_t insn_id = 0;
    std::uint64_t stamp = 0;
    bool valid = false;
  };

  struct PdptEntry {
    std::uint32_t pd = 0;
    std::uint32_t tda_hits = 0;  // saturating at tda_hit_max_
    std::uint32_t vta_hits = 0;  // saturating at vta_hit_max_
  };

  bool protection() const {
    return cfg_.policy == PolicyKind::kGlobalProtection ||
           cfg_.policy == PolicyKind::kDlp;
  }
  bool bypass_on_resource_stall() const {
    return cfg_.policy != PolicyKind::kBaseline;
  }

  std::uint32_t SetOf(Addr block) const;
  Line* Find(std::uint32_t set, Addr block);

  // Completed-access bookkeeping shared by every path: PL decay over the
  // queried set, then the sampling window / Fig. 9 update.
  void Commit(std::uint32_t set, AccessType type, Cycle now);
  void EndSampleFig9();

  std::uint32_t InsnIdOf(Pc pc) const;
  void Stamp(Line& line, Pc pc);  // transfer ownership + rewrite PL

  void OnLoadMissVta(std::uint32_t set, Addr block);
  void EvictInto(std::uint32_t set, Line& victim, Addr block, Pc pc);

  AccessResult Load(const MemAccess& a, std::uint32_t set, Addr block,
                    Cycle now);
  AccessResult Store(const MemAccess& a, std::uint32_t set, Addr block,
                     Cycle now);

  L1DConfig cfg_;
  OracleBug bug_;
  std::uint32_t nasc_;          // VTA associativity (Fig. 9's Nasc)
  std::uint32_t pd_max_;        // (1 << pd_bits) - 1
  std::uint32_t pdpt_size_;     // 1 for Global-Protection
  std::uint32_t insn_bits_;     // 0 for Global-Protection
  std::uint32_t tda_hit_max_;
  std::uint32_t vta_hit_max_;

  std::vector<Line> lines_;     // sets * ways, row-major
  std::vector<VtaEntry> vta_;   // sets * nasc_, row-major
  std::vector<PdptEntry> pdpt_;
  std::uint64_t global_tda_hits_ = 0;
  std::uint64_t global_vta_hits_ = 0;
  std::uint64_t recency_ = 0;     // TDA recency clock
  std::uint64_t vta_recency_ = 0;

  // Sampling window (paper §4.1.4): ends after sample_accesses completed
  // cache accesses or sample_max_cycles core cycles.
  std::uint32_t window_accesses_ = 0;
  Cycle window_start_ = 0;
  bool window_started_ = false;

  std::map<Addr, std::vector<MshrToken>> mshr_;
  std::deque<OracleOutgoing> outgoing_;
  CacheStats stats_;
};

}  // namespace dlpsim::verify
