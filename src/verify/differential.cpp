#include "verify/differential.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "core/pdpt.h"
#include "core/vta.h"
#include "robust/invariants.h"

namespace dlpsim::verify {

namespace {

struct StatsField {
  const char* name;
  std::uint64_t CacheStats::* member;
};

constexpr StatsField kStatsFields[] = {
    {"accesses", &CacheStats::accesses},
    {"loads", &CacheStats::loads},
    {"stores", &CacheStats::stores},
    {"load_hits", &CacheStats::load_hits},
    {"load_misses", &CacheStats::load_misses},
    {"store_hits", &CacheStats::store_hits},
    {"mshr_merges", &CacheStats::mshr_merges},
    {"misses_issued", &CacheStats::misses_issued},
    {"bypasses", &CacheStats::bypasses},
    {"reservation_fails", &CacheStats::reservation_fails},
    {"evictions", &CacheStats::evictions},
    {"writebacks", &CacheStats::writebacks},
    {"fills", &CacheStats::fills},
    {"store_invalidates", &CacheStats::store_invalidates},
};

/// The real tag array's occupied lines of `set` in recency order,
/// matching OracleL1D::SetImage's rendering.
std::vector<OracleL1D::LineImage> RealSetImage(const L1DCache& cache,
                                               std::uint32_t set) {
  std::vector<CacheLine> occupied;
  for (const CacheLine& l : cache.tda().SetView(set)) {
    if (IsOccupied(l.state)) occupied.push_back(l);
  }
  std::sort(occupied.begin(), occupied.end(),
            [](const CacheLine& a, const CacheLine& b) {
              return a.last_use < b.last_use;
            });
  std::vector<OracleL1D::LineImage> out;
  out.reserve(occupied.size());
  for (const CacheLine& l : occupied) {
    out.push_back({l.block, l.state, l.insn_id, l.protected_life});
  }
  return out;
}

std::string DescribeLine(const OracleL1D::LineImage& l) {
  std::ostringstream os;
  os << "{block=" << l.block << " state=" << static_cast<int>(l.state)
     << " insn=" << l.insn_id << " pl=" << l.protected_life << "}";
  return os.str();
}

/// Deep state diff (tag array, PDPT, VTA, invariants); "" when equal.
std::string DiffState(const L1DCache& real, const OracleL1D& oracle,
                      bool check_invariants) {
  for (std::uint32_t s = 0; s < oracle.sets(); ++s) {
    const auto want = oracle.SetImage(s);
    const auto got = RealSetImage(real, s);
    if (got.size() != want.size()) {
      return "set " + std::to_string(s) + ": real holds " +
             std::to_string(got.size()) + " occupied lines, oracle " +
             std::to_string(want.size());
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i].block != want[i].block || got[i].state != want[i].state ||
          got[i].insn_id != want[i].insn_id ||
          got[i].protected_life != want[i].protected_life) {
        return "set " + std::to_string(s) + " recency slot " +
               std::to_string(i) + ": real " + DescribeLine(got[i]) +
               " vs oracle " + DescribeLine(want[i]);
      }
    }
  }

  const std::vector<std::uint32_t> pd_want = oracle.PdImage();
  const PdpTable* pdpt = real.policy().pdpt();
  if (pd_want.empty() != (pdpt == nullptr)) {
    return "PDPT presence mismatch between real policy and oracle";
  }
  if (pdpt != nullptr) {
    for (std::uint32_t i = 0; i < pdpt->size(); ++i) {
      if (pdpt->Pd(i) != pd_want[i]) {
        return "PDPT entry " + std::to_string(i) + ": real pd=" +
               std::to_string(pdpt->Pd(i)) + " vs oracle pd=" +
               std::to_string(pd_want[i]);
      }
    }
    const VictimTagArray* vta = real.policy().vta();
    for (std::uint32_t s = 0; s < oracle.sets(); ++s) {
      const auto want = oracle.VtaSetImage(s);
      const auto got = vta->SetEntries(s);
      if (got.size() != want.size()) {
        return "VTA set " + std::to_string(s) + ": real holds " +
               std::to_string(got.size()) + " entries, oracle " +
               std::to_string(want.size());
      }
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i].block != want[i].block ||
            got[i].insn_id != want[i].insn_id) {
          return "VTA set " + std::to_string(s) + " recency slot " +
                 std::to_string(i) + ": real {block=" +
                 std::to_string(got[i].block) + " insn=" +
                 std::to_string(got[i].insn_id) + "} vs oracle {block=" +
                 std::to_string(want[i].block) + " insn=" +
                 std::to_string(want[i].insn_id) + "}";
        }
      }
    }
  }

  if (check_invariants && robust::ChecksEnabledByEnv()) {
    const std::string violation = robust::CheckL1D(real);
    if (!violation.empty()) return "invariant checker: " + violation;
  }
  return "";
}

struct PendingFill {
  Addr block = 0;
  bool no_fill = false;
  MshrToken token = 0;
  Cycle due = 0;
};

std::string DescribeOutgoing(Addr block, bool write, bool no_fill,
                             MshrToken token) {
  std::ostringstream os;
  os << "{block=" << block << (write ? " write" : " read")
     << (no_fill ? " no_fill" : "") << " token=" << token << "}";
  return os.str();
}

// Retried reservation failures always unblock once in-flight fills land;
// this cap only bounds the damage of a livelock *bug*.
constexpr std::uint64_t kMaxRetriesPerAccess = 1u << 20;

}  // namespace

std::string DiffStats(const CacheStats& real, const CacheStats& oracle) {
  std::ostringstream os;
  for (const StatsField& f : kStatsFields) {
    if (real.*(f.member) != oracle.*(f.member)) {
      if (os.tellp() > 0) os << ", ";
      os << f.name << ": real=" << real.*(f.member)
         << " oracle=" << oracle.*(f.member);
    }
  }
  return os.str();
}

std::optional<Divergence> RunDifferential(
    const L1DConfig& cfg, const std::vector<TraceAccess>& trace,
    const DriveParams& params, OracleBug bug) {
  L1DCache real(cfg);
  OracleL1D oracle(cfg, bug);

  std::deque<PendingFill> real_fills;
  std::deque<PendingFill> oracle_fills;
  std::vector<MshrToken> real_woken;
  std::vector<MshrToken> oracle_woken;
  Cycle now = 0;
  std::size_t index = 0;
  std::optional<Divergence> diverged;

  const auto fail = [&](std::string what) {
    if (!diverged) diverged = Divergence{index, std::move(what)};
  };

  const auto advance = [&] {
    // Drain up to drain_rate outgoing requests from both models.
    for (std::uint32_t d = 0; d < params.drain_rate; ++d) {
      const bool real_has = real.HasOutgoing();
      const bool oracle_has = oracle.HasOutgoing();
      if (real_has != oracle_has) {
        fail(std::string("outgoing queue presence: real ") +
             (real_has ? "has" : "lacks") + " a request the oracle " +
             (oracle_has ? "has" : "lacks"));
        return;
      }
      if (!real_has) break;
      const L1DOutgoing r = real.PopOutgoing();
      const OracleOutgoing o = oracle.PopOutgoing();
      if (r.block != o.block || r.write != o.write ||
          r.no_fill != o.no_fill || r.token != o.token) {
        fail("outgoing request mismatch: real " +
             DescribeOutgoing(r.block, r.write, r.no_fill, r.token) +
             " vs oracle " +
             DescribeOutgoing(o.block, o.write, o.no_fill, o.token));
        return;
      }
      if (!r.write) {
        real_fills.push_back({r.block, r.no_fill, r.token,
                              now + params.fill_latency});
        oracle_fills.push_back({o.block, o.no_fill, o.token,
                                now + params.fill_latency});
      }
    }
    // Deliver due fills to both and compare wake lists.
    while (!real_fills.empty() && real_fills.front().due <= now) {
      const PendingFill rf = real_fills.front();
      const PendingFill of = oracle_fills.front();
      real_fills.pop_front();
      oracle_fills.pop_front();
      real_woken.clear();
      oracle_woken.clear();
      real.Fill(L1DResponse{rf.block, rf.no_fill, rf.token}, now, real_woken);
      oracle.Fill(of.block, of.no_fill, of.token, oracle_woken);
      if (real_woken != oracle_woken) {
        std::ostringstream os;
        os << "fill of block " << rf.block << " woke " << real_woken.size()
           << " tokens in the real cache vs " << oracle_woken.size()
           << " in the oracle";
        fail(os.str());
        return;
      }
    }
  };

  for (; index < trace.size() && !diverged; ++index) {
    const TraceAccess& a = trace[index];
    const MemAccess access{a.addr, a.type, a.pc,
                           static_cast<MshrToken>(index + 1)};
    std::uint64_t retries = 0;
    for (;;) {
      advance();
      if (diverged) break;
      const AccessResult rr = real.Access(access, now);
      const AccessResult ro = oracle.Access(access, now);
      ++now;
      if (rr != ro) {
        fail(std::string("result mismatch: real ") + ToString(rr) +
             " vs oracle " + ToString(ro));
        break;
      }
      const std::string stats_diff = DiffStats(real.stats(), oracle.stats());
      if (!stats_diff.empty()) {
        fail("stats mismatch after " + std::string(ToString(rr)) + ": " +
             stats_diff);
        break;
      }
      if (real.outgoing_size() != oracle.outgoing_size()) {
        fail("outgoing queue depth: real " +
             std::to_string(real.outgoing_size()) + " vs oracle " +
             std::to_string(oracle.outgoing_size()));
        break;
      }
      if (rr != AccessResult::kReservationFail) break;
      if (++retries > kMaxRetriesPerAccess) {
        fail("no forward progress: access retried " +
             std::to_string(retries) + " times");
        break;
      }
    }
    if (diverged) break;
    if (params.state_check_interval != 0 &&
        (index + 1) % params.state_check_interval == 0) {
      const std::string diff =
          DiffState(real, oracle, params.check_invariants);
      if (!diff.empty()) fail("state mismatch: " + diff);
    }
  }

  // Drain so end-of-trace state is settled, then deep-compare once more.
  while (!diverged &&
         (real.HasOutgoing() || oracle.HasOutgoing() || !real_fills.empty())) {
    advance();
    ++now;
  }
  if (!diverged) {
    index = trace.empty() ? 0 : trace.size() - 1;
    const std::string diff = DiffState(real, oracle, params.check_invariants);
    if (!diff.empty()) fail("end-of-trace state mismatch: " + diff);
    const std::string stats_diff = DiffStats(real.stats(), oracle.stats());
    if (!stats_diff.empty()) fail("end-of-trace stats mismatch: " + stats_diff);
  }
  return diverged;
}

std::optional<Divergence> RunTwinReal(const L1DConfig& cfg_a,
                                      const L1DConfig& cfg_b,
                                      const std::vector<TraceAccess>& trace,
                                      const DriveParams& params) {
  L1DCache a(cfg_a);
  L1DCache b(cfg_b);

  std::deque<PendingFill> a_fills;
  std::deque<PendingFill> b_fills;
  std::vector<MshrToken> a_woken;
  std::vector<MshrToken> b_woken;
  Cycle now = 0;
  std::size_t index = 0;
  std::optional<Divergence> diverged;

  const auto fail = [&](std::string what) {
    if (!diverged) diverged = Divergence{index, std::move(what)};
  };

  const auto advance = [&] {
    for (std::uint32_t d = 0; d < params.drain_rate; ++d) {
      if (a.HasOutgoing() != b.HasOutgoing()) {
        fail("outgoing queue presence differs between the two caches");
        return;
      }
      if (!a.HasOutgoing()) break;
      const L1DOutgoing ra = a.PopOutgoing();
      const L1DOutgoing rb = b.PopOutgoing();
      if (ra.block != rb.block || ra.write != rb.write ||
          ra.no_fill != rb.no_fill || ra.token != rb.token) {
        fail("outgoing request mismatch: A " +
             DescribeOutgoing(ra.block, ra.write, ra.no_fill, ra.token) +
             " vs B " +
             DescribeOutgoing(rb.block, rb.write, rb.no_fill, rb.token));
        return;
      }
      if (!ra.write) {
        a_fills.push_back({ra.block, ra.no_fill, ra.token,
                           now + params.fill_latency});
        b_fills.push_back({rb.block, rb.no_fill, rb.token,
                           now + params.fill_latency});
      }
    }
    while (!a_fills.empty() && a_fills.front().due <= now) {
      const PendingFill fa = a_fills.front();
      const PendingFill fb = b_fills.front();
      a_fills.pop_front();
      b_fills.pop_front();
      a_woken.clear();
      b_woken.clear();
      a.Fill(L1DResponse{fa.block, fa.no_fill, fa.token}, now, a_woken);
      b.Fill(L1DResponse{fb.block, fb.no_fill, fb.token}, now, b_woken);
      if (a_woken != b_woken) {
        fail("fill wake lists differ between the two caches");
        return;
      }
    }
  };

  for (; index < trace.size() && !diverged; ++index) {
    const TraceAccess& t = trace[index];
    const MemAccess access{t.addr, t.type, t.pc,
                           static_cast<MshrToken>(index + 1)};
    std::uint64_t retries = 0;
    for (;;) {
      advance();
      if (diverged) break;
      const AccessResult rr = a.Access(access, now);
      const AccessResult rb = b.Access(access, now);
      ++now;
      if (rr != rb) {
        fail(std::string("result mismatch: A ") + ToString(rr) + " vs B " +
             ToString(rb));
        break;
      }
      const std::string stats_diff = DiffStats(a.stats(), b.stats());
      if (!stats_diff.empty()) {
        fail("stats mismatch: " + stats_diff);
        break;
      }
      if (rr != AccessResult::kReservationFail) break;
      if (++retries > kMaxRetriesPerAccess) {
        fail("no forward progress: access retried " +
             std::to_string(retries) + " times");
        break;
      }
    }
  }
  while (!diverged && (a.HasOutgoing() || b.HasOutgoing() || !a_fills.empty())) {
    advance();
    ++now;
  }
  if (!diverged) {
    index = trace.empty() ? 0 : trace.size() - 1;
    const std::string stats_diff = DiffStats(a.stats(), b.stats());
    if (!stats_diff.empty()) fail("end-of-trace stats mismatch: " + stats_diff);
  }
  return diverged;
}

}  // namespace dlpsim::verify
