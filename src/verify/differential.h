// Lockstep differential driver: runs the production L1DCache and the
// verify/ oracle on the same access trace under the same memory-system
// timing (fixed fill latency, bounded outgoing drain rate), comparing
// every observable after every access:
//
//   - the AccessResult of each transaction
//   - the full CacheStats counter block
//   - the outgoing request stream (block / write / no_fill / token)
//   - the tokens woken by each fill, in retire order
//   - periodically (and at end-of-trace): per-set tag state in recency
//     order, the PDPT's protection distances and the VTA contents
//
// The drain rate and fill latency are part of the test case: a drain
// rate of 1 with a small miss queue exercises the resource-stall bypass
// paths, a long fill latency keeps lines RESERVED long enough to hit the
// MSHR merge limits.
//
// When DLPSIM_CHECK is enabled (or the build is -DDLPSIM_CHECKED), every
// state comparison also runs the robust/ invariant checker against the
// real cache, so fuzz runs execute fully checked.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/trace_replay.h"
#include "core/l1d_cache.h"
#include "sim/config.h"
#include "verify/oracle.h"

namespace dlpsim::verify {

/// First observable mismatch between the real cache and the oracle.
struct Divergence {
  std::size_t access_index = 0;  // trace index being processed (or last)
  std::string what;              // human-readable description

  std::string ToString() const {
    return "access #" + std::to_string(access_index) + ": " + what;
  }
};

/// Memory-system timing for a differential run (mirrors TraceReplayer's
/// model, with a bounded drain rate to create miss-queue pressure).
struct DriveParams {
  std::uint32_t fill_latency = 20;  // cycles from request to fill
  std::uint32_t drain_rate = 1;     // outgoing requests popped per cycle
  std::uint32_t state_check_interval = 16;  // accesses between deep diffs
  bool check_invariants = true;  // run robust/CheckL1D when env-enabled
};

/// Field-by-field CacheStats diff; empty string when equal.
std::string DiffStats(const CacheStats& real, const CacheStats& oracle);

/// Runs `trace` through a fresh real L1DCache(cfg) and OracleL1D(cfg) in
/// lockstep. Returns the first divergence, or nullopt for a clean run.
/// `bug` plants a deliberate defect in the oracle (tests only).
std::optional<Divergence> RunDifferential(
    const L1DConfig& cfg, const std::vector<TraceAccess>& trace,
    const DriveParams& params = {}, OracleBug bug = OracleBug::kNone);

/// Runs `trace` through two real caches (cfgA, cfgB) in lockstep and
/// compares results and stats. Used by the metamorphic checks (e.g.
/// Baseline == DLP with protection neutralized). Both configurations
/// must induce the same stall/retry behaviour or the comparison itself
/// reports the first differing access.
std::optional<Divergence> RunTwinReal(const L1DConfig& cfg_a,
                                      const L1DConfig& cfg_b,
                                      const std::vector<TraceAccess>& trace,
                                      const DriveParams& params = {});

}  // namespace dlpsim::verify
