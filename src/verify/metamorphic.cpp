#include "verify/metamorphic.h"

#include <limits>

#include "exec/run_grid.h"

namespace dlpsim::verify {

namespace {

std::string Mismatch(const char* relation, std::uint64_t lhs,
                     std::uint64_t rhs) {
  return std::string(relation) + " (" + std::to_string(lhs) +
         " vs " + std::to_string(rhs) + ")";
}

}  // namespace

std::string CheckStatsConservation(const CacheStats& s) {
  if (s.accesses != s.loads + s.stores) {
    return Mismatch("accesses != loads + stores", s.accesses,
                    s.loads + s.stores);
  }
  if (s.loads != s.load_hits + s.load_misses) {
    return Mismatch("loads != load_hits + load_misses", s.loads,
                    s.load_hits + s.load_misses);
  }
  if (s.load_misses != s.misses_issued + s.mshr_merges + s.bypasses) {
    return Mismatch("load_misses != issued + merged + bypassed",
                    s.load_misses,
                    s.misses_issued + s.mshr_merges + s.bypasses);
  }
  // Every issued miss reserves a line whose fill must have arrived once
  // the cache is drained; bypassed (no_fill) responses don't fill.
  if (s.fills != s.misses_issued) {
    return Mismatch("fills != misses_issued (drained cache)", s.fills,
                    s.misses_issued);
  }
  if (s.store_hits > s.stores) {
    return Mismatch("store_hits > stores", s.store_hits, s.stores);
  }
  if (s.store_invalidates > s.store_hits) {
    return Mismatch("store_invalidates > store_hits", s.store_invalidates,
                    s.store_hits);
  }
  if (s.writebacks > s.evictions) {
    return Mismatch("writebacks > evictions", s.writebacks, s.evictions);
  }
  return "";
}

L1DConfig NeutralizedDlpTwin(const L1DConfig& base) {
  L1DConfig twin = base;
  twin.policy = PolicyKind::kDlp;
  // A window that can never close: no EndSample, so no Fig. 9 update ever
  // runs and every PD stays at its initial 0. Stamping then writes PL = 0
  // and the PL-filtered victim scan degenerates to plain LRU.
  twin.prot.sample_accesses = std::numeric_limits<std::uint32_t>::max();
  twin.prot.sample_max_cycles = std::numeric_limits<std::uint64_t>::max();
  return twin;
}

std::string CheckProtectionNeutrality(std::uint64_t seed) {
  FuzzCase c = MakeFuzzCase(seed, PolicyKind::kBaseline);

  // Raise resources on BOTH sides so no access ever sees MSHR or
  // miss-queue exhaustion: that is the one path where a PD of 0 still
  // changes behaviour (DLP bypasses on resource stalls, Baseline stalls).
  L1DConfig base = c.config;
  base.mshr_entries = 64;
  base.mshr_max_merged = 4096;
  base.miss_queue_entries = 64;

  L1DConfig twin = NeutralizedDlpTwin(base);

  DriveParams params = c.params;
  params.drain_rate = 4;  // keep the outgoing queue from ever filling

  const std::optional<Divergence> d =
      RunTwinReal(base, twin, c.trace, params);
  if (!d.has_value()) return "";
  return "seed " + std::to_string(seed) +
         ": Baseline vs neutralized DLP diverged at " + d->ToString();
}

std::string CheckFuzzDeterminism(const std::vector<std::uint64_t>& seeds,
                                 PolicyKind policy, std::size_t jobs) {
  const auto run = [&](std::size_t workers) {
    return exec::ParallelMap(
        seeds.size(),
        [&](std::size_t i) { return FuzzOneSeed(seeds[i], policy); },
        workers);
  };
  const std::vector<FuzzOutcome> serial = run(1);
  const std::vector<FuzzOutcome> parallel = run(jobs);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const FuzzOutcome& a = serial[i];
    const FuzzOutcome& b = parallel[i];
    if (a.diverged != b.diverged ||
        (a.diverged &&
         (a.first.ToString() != b.first.ToString() ||
          a.reproducer.trace.size() != b.reproducer.trace.size() ||
          a.reproducer.divergence != b.reproducer.divergence))) {
      return "seed " + std::to_string(seeds[i]) +
             ": fuzz outcome depends on worker count (1 vs " +
             std::to_string(jobs) + " jobs)";
    }
  }
  return "";
}

}  // namespace dlpsim::verify
