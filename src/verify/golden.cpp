#include "verify/golden.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace dlpsim::verify {

namespace {

struct GoldenField {
  const char* name;
  std::uint64_t GoldenEntry::* member;
};

constexpr GoldenField kGoldenFields[] = {
    {"core_cycles", &GoldenEntry::core_cycles},
    {"committed_thread_insns", &GoldenEntry::committed_thread_insns},
    {"l1d_accesses", &GoldenEntry::l1d_accesses},
    {"l1d_loads", &GoldenEntry::l1d_loads},
    {"l1d_load_hits", &GoldenEntry::l1d_load_hits},
    {"l1d_load_misses", &GoldenEntry::l1d_load_misses},
    {"l1d_bypasses", &GoldenEntry::l1d_bypasses},
    {"l1d_misses_issued", &GoldenEntry::l1d_misses_issued},
};

}  // namespace

GoldenEntry MakeGoldenEntry(const std::string& app, const std::string& config,
                            const Metrics& m) {
  GoldenEntry e;
  e.app = app;
  e.config = config;
  e.core_cycles = m.core_cycles;
  e.committed_thread_insns = m.committed_thread_insns;
  e.l1d_accesses = m.l1d_accesses;
  e.l1d_loads = m.l1d_loads;
  e.l1d_load_hits = m.l1d_load_hits;
  e.l1d_load_misses = m.l1d_load_misses;
  e.l1d_bypasses = m.l1d_bypasses;
  e.l1d_misses_issued = m.l1d_misses_issued;
  return e;
}

bool SaveGoldenFile(const std::string& path, const GoldenSnapshot& snap,
                    std::string* error) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.KV("scale", snap.scale);
  w.Key("entries").BeginArray();
  for (const GoldenEntry& e : snap.entries) {
    w.BeginObject();
    w.KV("app", e.app);
    w.KV("config", e.config);
    for (const GoldenField& f : kGoldenFields) w.KV(f.name, e.*(f.member));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";

  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << os.str();
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write error on '" + path + "'";
    return false;
  }
  return true;
}

bool LoadGoldenFile(const std::string& path, GoldenSnapshot* out,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  bool ok = false;
  const JsonValue doc = ParseJson(buffer.str(), &ok);
  if (!ok || !doc.is_object()) {
    if (error != nullptr) *error = "'" + path + "' is not valid JSON";
    return false;
  }
  *out = GoldenSnapshot{};
  if (const JsonValue* scale = doc.Find("scale"); scale != nullptr) {
    out->scale = scale->number;
  }
  const JsonValue* entries = doc.Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    if (error != nullptr) *error = "'" + path + "' has no 'entries' array";
    return false;
  }
  for (const JsonValue& cell : entries->array) {
    if (!cell.is_object()) {
      if (error != nullptr) *error = "'" + path + "' has a non-object entry";
      return false;
    }
    GoldenEntry e;
    const JsonValue* app = cell.Find("app");
    const JsonValue* config = cell.Find("config");
    if (app == nullptr || config == nullptr) {
      if (error != nullptr) {
        *error = "'" + path + "' entry missing app/config";
      }
      return false;
    }
    e.app = app->string;
    e.config = config->string;
    for (const GoldenField& f : kGoldenFields) {
      const JsonValue* v = cell.Find(f.name);
      if (v == nullptr) {
        if (error != nullptr) {
          *error = "'" + path + "' entry " + e.app + "/" + e.config +
                   " missing counter '" + f.name + "'";
        }
        return false;
      }
      e.*(f.member) = v->number_u64;
    }
    out->entries.push_back(std::move(e));
  }
  return true;
}

std::string DiffGolden(const GoldenSnapshot& want, const GoldenSnapshot& got,
                       double rel_tol) {
  std::ostringstream report;
  const auto find_got = [&](const GoldenEntry& w) -> const GoldenEntry* {
    for (const GoldenEntry& g : got.entries) {
      if (g.app == w.app && g.config == w.config) return &g;
    }
    return nullptr;
  };

  for (const GoldenEntry& w : want.entries) {
    const GoldenEntry* g = find_got(w);
    if (g == nullptr) {
      report << w.app << "/" << w.config << ": missing from this run\n";
      continue;
    }
    bool header_written = false;
    for (const GoldenField& f : kGoldenFields) {
      const std::uint64_t a = w.*(f.member);
      const std::uint64_t b = g->*(f.member);
      const double diff =
          a >= b ? static_cast<double>(a - b) : static_cast<double>(b - a);
      const double bound = rel_tol * std::max(1.0, static_cast<double>(a));
      if (diff <= bound) continue;
      if (!header_written) {
        header_written = true;
        report << w.app << "/" << w.config << " (golden ipc="
               << w.ipc() << " hit_rate=" << w.l1d_hit_rate()
               << ", run ipc=" << g->ipc()
               << " hit_rate=" << g->l1d_hit_rate() << "):\n";
      }
      report << "  " << f.name << ": golden " << a << ", run " << b << "\n";
    }
  }
  for (const GoldenEntry& g : got.entries) {
    bool known = false;
    for (const GoldenEntry& w : want.entries) {
      if (w.app == g.app && w.config == g.config) {
        known = true;
        break;
      }
    }
    if (!known) {
      report << g.app << "/" << g.config
             << ": not in the golden snapshot (run DLPSIM_GOLDEN_UPDATE=1 "
                "to re-record)\n";
    }
  }
  return report.str();
}

}  // namespace dlpsim::verify
