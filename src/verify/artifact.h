// Replayable failure artifacts for the differential fuzzer.
//
// An artifact carries the full reproduction context (policy, cache
// geometry, drive timing, fuzzer seed, divergence message) as `#@ key
// value` metadata lines plus the failing trace, in either trace format:
//
//   text   - a plain trace file in the analysis/trace_replay grammar with
//            the metadata as comment lines. Because `#` starts a comment,
//            every text artifact is also directly consumable by
//            ParseTrace/ParseTraceStrict and any other trace tool.
//   packed - a DLPT binary trace (trace/format.h) whose header metadata
//            section holds the very same `#@ key value` lines. Packed is
//            the default for fuzzer output (artifacts are often large
//            before shrinking); `tools/trace_pack --unpack` turns one
//            back into text without losing the metadata.
//
// verify_fuzz --replay sniffs the format, reads the metadata back and
// re-runs the exact differential configuration that failed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/trace_replay.h"
#include "sim/config.h"
#include "verify/differential.h"

namespace dlpsim::verify {

/// Everything needed to reproduce one differential failure.
struct Artifact {
  L1DConfig config;
  DriveParams params;
  std::uint64_t seed = 0;      // fuzzer seed that generated the case
  std::string divergence;      // first-divergence message at capture time
  std::vector<TraceAccess> trace;
};

/// The `#@ key value` metadata block for `a` (shared verbatim by the
/// text body and the packed header).
std::string ArtifactMetaText(const Artifact& a);

/// Parses a metadata block into *out (trace untouched; missing keys keep
/// their defaults). Validates the recovered config so a hand-edited
/// artifact cannot crash the replayer.
bool ParseArtifactMeta(const std::string& meta, Artifact* out,
                       std::string* error);

/// Serializes `a` as a commented text trace file.
void WriteArtifact(std::ostream& out, const Artifact& a);

/// Writes to `path`; returns false (with *error filled) on I/O failure.
bool WriteArtifactFile(const std::string& path, const Artifact& a,
                       std::string* error = nullptr);

/// Serializes `a` in the packed binary format (metadata in the DLPT
/// header, trace in the blocks).
bool WriteArtifactPacked(std::ostream& out, const Artifact& a,
                         std::string* error = nullptr);
bool WriteArtifactPackedFile(const std::string& path, const Artifact& a,
                             std::string* error = nullptr);

/// Parses a text artifact (or any plain trace: missing metadata keys
/// keep their defaults). Returns false with *error on malformed input.
bool ReadArtifact(std::istream& in, Artifact* out, std::string* error);
bool ReadArtifactFile(const std::string& path, Artifact* out,
                      std::string* error);

/// Reads an artifact in whichever format `path` holds (sniffs the DLPT
/// magic; everything else is parsed as text).
bool ReadArtifactAuto(const std::string& path, Artifact* out,
                      std::string* error);

}  // namespace dlpsim::verify
