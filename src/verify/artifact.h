// Replayable failure artifacts for the differential fuzzer.
//
// An artifact is a plain trace file in the analysis/trace_replay text
// format, with the full reproduction context (policy, cache geometry,
// drive timing, fuzzer seed, divergence message) carried in `#@ key
// value` comment lines. Because `#` starts a comment, every artifact is
// also directly consumable by ParseTrace/ParseTraceStrict and any other
// trace tool; verify_fuzz --replay reads the metadata back and re-runs
// the exact differential configuration that failed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/trace_replay.h"
#include "sim/config.h"
#include "verify/differential.h"

namespace dlpsim::verify {

/// Everything needed to reproduce one differential failure.
struct Artifact {
  L1DConfig config;
  DriveParams params;
  std::uint64_t seed = 0;      // fuzzer seed that generated the case
  std::string divergence;      // first-divergence message at capture time
  std::vector<TraceAccess> trace;
};

/// Serializes `a` as a commented trace file.
void WriteArtifact(std::ostream& out, const Artifact& a);

/// Writes to `path`; returns false (with *error filled) on I/O failure.
bool WriteArtifactFile(const std::string& path, const Artifact& a,
                       std::string* error = nullptr);

/// Parses an artifact (or any plain trace: missing metadata keys keep
/// their defaults). Returns false with *error on malformed input; the
/// recovered config is validated so a hand-edited artifact cannot crash
/// the replayer.
bool ReadArtifact(std::istream& in, Artifact* out, std::string* error);
bool ReadArtifactFile(const std::string& path, Artifact* out,
                      std::string* error);

}  // namespace dlpsim::verify
