#include "verify/artifact.h"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "trace/source.h"
#include "trace/writer.h"

namespace dlpsim::verify {

namespace {

const char* PolicyToken(PolicyKind k) {
  switch (k) {
    case PolicyKind::kBaseline: return "baseline";
    case PolicyKind::kStallBypass: return "stall-bypass";
    case PolicyKind::kGlobalProtection: return "global-protection";
    case PolicyKind::kDlp: return "dlp";
  }
  return "baseline";
}

bool ParsePolicyToken(const std::string& s, PolicyKind* out) {
  if (s == "baseline") *out = PolicyKind::kBaseline;
  else if (s == "stall-bypass") *out = PolicyKind::kStallBypass;
  else if (s == "global-protection") *out = PolicyKind::kGlobalProtection;
  else if (s == "dlp") *out = PolicyKind::kDlp;
  else return false;
  return true;
}

bool ParseU64(const std::string& s, std::uint64_t* out) {
  try {
    std::size_t consumed = 0;
    *out = std::stoull(s, &consumed, 0);
    return consumed == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

std::string ArtifactMetaText(const Artifact& a) {
  const L1DConfig& c = a.config;
  std::ostringstream out;
  out << "# dlpsim differential-fuzz reproducer\n";
  out << "#@ policy " << PolicyToken(c.policy) << "\n";
  out << "#@ sets " << c.geom.sets << "\n";
  out << "#@ ways " << c.geom.ways << "\n";
  out << "#@ line_bytes " << c.geom.line_bytes << "\n";
  out << "#@ index " << (c.geom.index == IndexFunction::kHash ? "hash" : "linear")
      << "\n";
  out << "#@ write_policy "
      << (c.write_policy == WritePolicy::kWriteBackOnHit ? "write-back"
                                                         : "write-evict")
      << "\n";
  out << "#@ mshr_entries " << c.mshr_entries << "\n";
  out << "#@ mshr_max_merged " << c.mshr_max_merged << "\n";
  out << "#@ miss_queue_entries " << c.miss_queue_entries << "\n";
  out << "#@ sample_accesses " << c.prot.sample_accesses << "\n";
  out << "#@ sample_max_cycles " << c.prot.sample_max_cycles << "\n";
  out << "#@ pdpt_entries " << c.prot.pdpt_entries << "\n";
  out << "#@ insn_id_bits " << c.prot.insn_id_bits << "\n";
  out << "#@ pd_bits " << c.prot.pd_bits << "\n";
  out << "#@ vta_ways " << c.prot.vta_ways << "\n";
  out << "#@ fill_latency " << a.params.fill_latency << "\n";
  out << "#@ drain_rate " << a.params.drain_rate << "\n";
  out << "#@ state_check_interval " << a.params.state_check_interval << "\n";
  out << "#@ seed " << a.seed << "\n";
  if (!a.divergence.empty()) {
    // Keep the message on one comment line so the file stays parseable.
    std::string msg = a.divergence;
    for (char& ch : msg) {
      if (ch == '\n' || ch == '\r') ch = ' ';
    }
    out << "#@ divergence " << msg << "\n";
  }
  return out.str();
}

bool ParseArtifactMeta(const std::string& meta_text, Artifact* out,
                       std::string* error) {
  std::map<std::string, std::string> meta;
  std::istringstream in(meta_text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("#@ ", 0) != 0) continue;
    std::istringstream ls(line.substr(3));
    std::string key;
    if (ls >> key) {
      std::string value;
      std::getline(ls, value);
      const auto first = value.find_first_not_of(" \t");
      meta[key] = first == std::string::npos ? "" : value.substr(first);
    }
  }

  L1DConfig& c = out->config;
  const auto u32_field = [&](const char* key, std::uint32_t* dst) {
    const auto it = meta.find(key);
    if (it == meta.end()) return true;
    std::uint64_t v = 0;
    if (!ParseU64(it->second, &v) || v > UINT32_MAX) {
      if (error != nullptr) {
        *error = std::string("bad metadata value for '") + key + "': '" +
                 it->second + "'";
      }
      return false;
    }
    *dst = static_cast<std::uint32_t>(v);
    return true;
  };

  if (const auto it = meta.find("policy"); it != meta.end()) {
    if (!ParsePolicyToken(it->second, &c.policy)) {
      if (error != nullptr) *error = "unknown policy '" + it->second + "'";
      return false;
    }
  }
  if (const auto it = meta.find("index"); it != meta.end()) {
    if (it->second == "hash") c.geom.index = IndexFunction::kHash;
    else if (it->second == "linear") c.geom.index = IndexFunction::kLinear;
    else {
      if (error != nullptr) *error = "unknown index function '" + it->second + "'";
      return false;
    }
  }
  if (const auto it = meta.find("write_policy"); it != meta.end()) {
    if (it->second == "write-back") c.write_policy = WritePolicy::kWriteBackOnHit;
    else if (it->second == "write-evict") c.write_policy = WritePolicy::kWriteEvict;
    else {
      if (error != nullptr) *error = "unknown write policy '" + it->second + "'";
      return false;
    }
  }
  if (!u32_field("sets", &c.geom.sets) || !u32_field("ways", &c.geom.ways) ||
      !u32_field("line_bytes", &c.geom.line_bytes) ||
      !u32_field("mshr_entries", &c.mshr_entries) ||
      !u32_field("mshr_max_merged", &c.mshr_max_merged) ||
      !u32_field("miss_queue_entries", &c.miss_queue_entries) ||
      !u32_field("sample_accesses", &c.prot.sample_accesses) ||
      !u32_field("pdpt_entries", &c.prot.pdpt_entries) ||
      !u32_field("insn_id_bits", &c.prot.insn_id_bits) ||
      !u32_field("pd_bits", &c.prot.pd_bits) ||
      !u32_field("vta_ways", &c.prot.vta_ways) ||
      !u32_field("fill_latency", &out->params.fill_latency) ||
      !u32_field("drain_rate", &out->params.drain_rate) ||
      !u32_field("state_check_interval", &out->params.state_check_interval)) {
    return false;
  }
  if (const auto it = meta.find("sample_max_cycles"); it != meta.end()) {
    if (!ParseU64(it->second, &c.prot.sample_max_cycles)) {
      if (error != nullptr) {
        *error = "bad metadata value for 'sample_max_cycles': '" + it->second + "'";
      }
      return false;
    }
  }
  if (const auto it = meta.find("seed"); it != meta.end()) {
    if (!ParseU64(it->second, &out->seed)) {
      if (error != nullptr) *error = "bad metadata value for 'seed': '" + it->second + "'";
      return false;
    }
  }
  if (const auto it = meta.find("divergence"); it != meta.end()) {
    out->divergence = it->second;
  }

  const std::vector<ConfigIssue> issues = c.Validate();
  if (!issues.empty()) {
    if (error != nullptr) {
      *error = "artifact config invalid: " + issues.front().ToString();
    }
    return false;
  }
  if (out->params.drain_rate == 0) {
    if (error != nullptr) *error = "artifact config invalid: drain_rate must be >= 1";
    return false;
  }
  return true;
}

void WriteArtifact(std::ostream& out, const Artifact& a) {
  out << ArtifactMetaText(a);
  trace::WriteTextTrace(out, a.trace);
}

bool WriteArtifactFile(const std::string& path, const Artifact& a,
                       std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  WriteArtifact(out, a);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write error on '" + path + "'";
    return false;
  }
  return true;
}

bool WriteArtifactPacked(std::ostream& out, const Artifact& a,
                         std::string* error) {
  trace::PackedTraceWriter w(out, ArtifactMetaText(a));
  for (const TraceAccess& t : a.trace) w.Append(t);
  if (!w.Finish()) {
    if (error != nullptr) *error = w.error().ToString();
    return false;
  }
  return true;
}

bool WriteArtifactPackedFile(const std::string& path, const Artifact& a,
                             std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  return WriteArtifactPacked(out, a, error);
}

bool ReadArtifact(std::istream& in, Artifact* out, std::string* error) {
  *out = Artifact{};
  std::ostringstream meta;
  std::ostringstream body;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("#@ ", 0) == 0) {
      meta << line << "\n";
      continue;
    }
    body << line << "\n";
  }
  if (in.bad()) {
    if (error != nullptr) *error = "stream read error";
    return false;
  }
  if (!ParseArtifactMeta(meta.str(), out, error)) return false;

  std::istringstream body_in(body.str());
  TraceParseError parse_error;
  if (!ParseTraceStrict(body_in, &out->trace, &parse_error)) {
    if (error != nullptr) *error = "bad trace line: " + parse_error.ToString();
    return false;
  }
  return true;
}

bool ReadArtifactFile(const std::string& path, Artifact* out,
                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  return ReadArtifact(in, out, error);
}

bool ReadArtifactAuto(const std::string& path, Artifact* out,
                      std::string* error) {
  TraceParseError open_error;
  auto src = trace::OpenTraceFile(path, &open_error);
  if (src == nullptr) {
    if (error != nullptr) *error = open_error.ToString();
    return false;
  }
  auto* packed = dynamic_cast<trace::PackedTraceSource*>(src.get());
  if (packed == nullptr) {
    return ReadArtifactFile(path, out, error);
  }
  *out = Artifact{};
  // Forces the header read; a header error surfaces on the first Next().
  const std::string meta = packed->meta();
  TraceParseError parse_error;
  if (!trace::ReadAllRecords(*packed, &out->trace, &parse_error)) {
    if (error != nullptr) *error = parse_error.ToString();
    return false;
  }
  if (!ParseArtifactMeta(meta, out, error)) return false;
  return true;
}

}  // namespace dlpsim::verify
