// Golden-figure regression snapshots.
//
// A snapshot records, for every (app, config) cell of a figure grid, the
// integer counters that determine the published metrics (IPC, L1D hit
// rate, bypass counts). Counters are stored as exact JSON integers --
// never as derived floating-point values -- so snapshots round-trip
// bit-exactly and a regression diff can show both the raw counter drift
// and its effect on the derived metric.
//
// Snapshots live under tests/golden/ and are compared by
// tests/bench/golden_figures_test.cpp with an explicit relative
// tolerance; DLPSIM_GOLDEN_UPDATE=1 rewrites them from the current code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/metrics.h"

namespace dlpsim::verify {

/// One (app, config) cell's regression-relevant counters.
struct GoldenEntry {
  std::string app;
  std::string config;
  std::uint64_t core_cycles = 0;
  std::uint64_t committed_thread_insns = 0;
  std::uint64_t l1d_accesses = 0;
  std::uint64_t l1d_loads = 0;
  std::uint64_t l1d_load_hits = 0;
  std::uint64_t l1d_load_misses = 0;
  std::uint64_t l1d_bypasses = 0;
  std::uint64_t l1d_misses_issued = 0;

  double ipc() const {
    return core_cycles == 0 ? 0.0
                            : static_cast<double>(committed_thread_insns) /
                                  static_cast<double>(core_cycles);
  }
  double l1d_hit_rate() const {
    const std::uint64_t serviced =
        l1d_bypasses >= l1d_loads ? 0 : l1d_loads - l1d_bypasses;
    return serviced == 0 ? 0.0
                         : static_cast<double>(l1d_load_hits) /
                               static_cast<double>(serviced);
  }
};

struct GoldenSnapshot {
  double scale = 0.0;  // DLPSIM_SCALE the snapshot was captured at
  std::vector<GoldenEntry> entries;
};

/// Extracts the golden counters from a run's metrics.
GoldenEntry MakeGoldenEntry(const std::string& app, const std::string& config,
                            const Metrics& m);

/// JSON (de)serialization. Load returns false with *error on missing
/// files, malformed JSON or missing fields.
bool LoadGoldenFile(const std::string& path, GoldenSnapshot* out,
                    std::string* error);
bool SaveGoldenFile(const std::string& path, const GoldenSnapshot& snap,
                    std::string* error);

/// Compares `got` against the recorded `want` cell by cell. A counter
/// matches when |got - want| <= rel_tol * max(1, want). Returns a
/// readable multi-line report of every mismatched cell (including the
/// derived IPC / hit-rate shift), or "" when everything matches.
std::string DiffGolden(const GoldenSnapshot& want, const GoldenSnapshot& got,
                       double rel_tol);

}  // namespace dlpsim::verify
