#include "verify/fuzzer.h"

#include <algorithm>
#include <sstream>

#include "sim/rng.h"
#include "trace/format.h"
#include "trace/source.h"
#include "trace/writer.h"

namespace dlpsim::verify {

namespace {

/// Appends one access phase to `trace`. Phases are short so a single
/// case crosses several access-pattern regimes (and several sampling
/// windows under small sample_accesses).
void AppendPhase(Rng& rng, const L1DConfig& cfg,
                 const std::vector<Pc>& pc_pool, std::size_t phase_len,
                 std::vector<TraceAccess>* trace) {
  const std::uint32_t line = cfg.geom.line_bytes;
  // Footprint of 1x-8x the cache keeps both cache-resident and thrashing
  // phases reachable.
  const std::uint64_t footprint_blocks =
      std::uint64_t{cfg.geom.num_lines()} * (1 + rng.Below(8));
  const std::uint64_t base_block = rng.Below(1u << 16);
  const double store_ratio = rng.Below(2) == 0 ? 0.0 : rng.NextDouble() * 0.4;
  const int kind = static_cast<int>(rng.Below(4));

  std::uint64_t seq_block = rng.Below(footprint_blocks);
  const std::uint64_t seq_stride = 1 + rng.Below(2);
  const std::uint64_t loop_len =
      2 + rng.Below(std::max<std::uint64_t>(2, 2 * cfg.geom.ways));
  const std::uint64_t loop_start = rng.Below(footprint_blocks);
  ZipfSampler zipf(footprint_blocks, 0.6 + rng.NextDouble() * 0.6);

  for (std::size_t i = 0; i < phase_len; ++i) {
    std::uint64_t block = 0;
    switch (kind) {
      case 0:  // sequential stream
        block = seq_block % footprint_blocks;
        seq_block += seq_stride;
        break;
      case 1:  // zipf-skewed hot set
        block = zipf.Sample(rng.NextDouble());
        break;
      case 2:  // tight re-reference loop
        block = (loop_start + i % loop_len) % footprint_blocks;
        break;
      default:  // uniform random
        block = rng.Below(footprint_blocks);
        break;
    }
    TraceAccess a;
    a.addr = (base_block + block) * line + rng.Below(line);
    a.pc = pc_pool[rng.Below(pc_pool.size())];
    a.type = rng.NextDouble() < store_ratio ? AccessType::kStore
                                            : AccessType::kLoad;
    trace->push_back(a);
  }
}

}  // namespace

FuzzCase MakeFuzzCase(std::uint64_t seed, PolicyKind policy) {
  Rng rng(HashMix(seed, static_cast<std::uint64_t>(policy) + 1));
  FuzzCase c;
  c.seed = seed;

  L1DConfig& cfg = c.config;
  cfg.policy = policy;
  cfg.geom.sets = 1u << (2 + rng.Below(4));       // 4..32
  cfg.geom.ways = 1 + static_cast<std::uint32_t>(rng.Below(4));
  cfg.geom.line_bytes = 32u << rng.Below(3);      // 32/64/128
  cfg.geom.index =
      rng.Below(2) == 0 ? IndexFunction::kHash : IndexFunction::kLinear;
  cfg.write_policy = rng.Below(2) == 0 ? WritePolicy::kWriteBackOnHit
                                       : WritePolicy::kWriteEvict;
  cfg.mshr_entries = 1 + static_cast<std::uint32_t>(rng.Below(8));
  cfg.mshr_max_merged = 1 + static_cast<std::uint32_t>(rng.Below(4));
  cfg.miss_queue_entries = 2 + static_cast<std::uint32_t>(rng.Below(7));
  // Small sampling windows so a 2k-access case runs many Fig. 9 updates;
  // the cycle cap occasionally ends the window first (stall-heavy cases).
  cfg.prot.sample_accesses = 16 + static_cast<std::uint32_t>(rng.Below(385));
  cfg.prot.sample_max_cycles = 200 + rng.Below(4801);
  cfg.prot.pd_bits = 1 + static_cast<std::uint32_t>(rng.Below(4));
  cfg.prot.vta_ways =
      rng.Below(2) == 0 ? 0 : 1 + static_cast<std::uint32_t>(rng.Below(4));
  const std::uint32_t id_bits = 1 + static_cast<std::uint32_t>(rng.Below(7));
  cfg.prot.insn_id_bits = id_bits;
  cfg.prot.pdpt_entries = (1u << id_bits) << rng.Below(2);

  c.params.fill_latency = 1 + static_cast<std::uint32_t>(rng.Below(64));
  c.params.drain_rate = 1 + static_cast<std::uint32_t>(rng.Below(4));
  c.params.state_check_interval = 16;

  std::vector<Pc> pc_pool(1 + rng.Below(12));
  for (Pc& pc : pc_pool) pc = static_cast<Pc>(rng.Below(1u << 20));

  const std::size_t target = 256 + rng.Below(1793);  // 256..2048
  while (c.trace.size() < target) {
    const std::size_t phase_len =
        std::min<std::size_t>(16 + rng.Below(113), target - c.trace.size());
    AppendPhase(rng, cfg, pc_pool, phase_len, &c.trace);
  }
  return c;
}

std::optional<Divergence> RunFuzzCase(const FuzzCase& c, OracleBug bug) {
  return RunDifferential(c.config, c.trace, c.params, bug);
}

std::vector<TraceAccess> ShrinkTrace(const FuzzCase& c, OracleBug bug,
                                     std::size_t* steps_out) {
  std::size_t steps = 0;
  const auto fails = [&](const std::vector<TraceAccess>& t) {
    ++steps;
    FuzzCase probe = c;
    probe.trace = t;
    return RunFuzzCase(probe, bug).has_value();
  };

  std::vector<TraceAccess> current = c.trace;
  if (current.empty() || !fails(current)) {
    if (steps_out != nullptr) *steps_out = steps;
    return current;
  }

  // ddmin: try dropping ever-finer chunks (complements) while the
  // remainder still diverges.
  std::size_t n = 2;
  while (current.size() >= 2) {
    const std::size_t chunk = (current.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t i = 0; i < n && !reduced; ++i) {
      std::vector<TraceAccess> complement;
      complement.reserve(current.size());
      for (std::size_t j = 0; j < current.size(); ++j) {
        if (j / chunk != i) complement.push_back(current[j]);
      }
      if (complement.size() < current.size() && fails(complement)) {
        current = std::move(complement);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
      }
    }
    if (!reduced) {
      if (n >= current.size()) break;
      n = std::min(current.size(), n * 2);
    }
  }

  // Greedy polish: ddmin can leave single removable accesses behind.
  bool improved = true;
  while (improved && current.size() > 1) {
    improved = false;
    for (std::size_t i = 0; i < current.size(); ++i) {
      std::vector<TraceAccess> candidate = current;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(candidate)) {
        current = std::move(candidate);
        improved = true;
        break;
      }
    }
  }
  if (steps_out != nullptr) *steps_out = steps;
  return current;
}

FuzzOutcome FuzzOneSeed(std::uint64_t seed, PolicyKind policy, OracleBug bug,
                        bool shrink) {
  FuzzOutcome out;
  out.seed = seed;
  out.policy = policy;
  FuzzCase c = MakeFuzzCase(seed, policy);
  std::optional<Divergence> d = RunFuzzCase(c, bug);
  if (!d.has_value()) return out;
  out.diverged = true;
  out.first = *d;

  out.reproducer.config = c.config;
  out.reproducer.params = c.params;
  out.reproducer.seed = seed;
  if (shrink) {
    out.reproducer.trace = ShrinkTrace(c, bug, &out.shrink_steps);
    FuzzCase shrunk = c;
    shrunk.trace = out.reproducer.trace;
    const std::optional<Divergence> after = RunFuzzCase(shrunk, bug);
    out.reproducer.divergence =
        after.has_value() ? after->ToString() : out.first.ToString();
  } else {
    out.reproducer.trace = c.trace;
    out.reproducer.divergence = out.first.ToString();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Trace-parser fuzzing
// ---------------------------------------------------------------------------

namespace {

std::string RandomToken(Rng& rng) {
  switch (rng.Below(10)) {
    case 0: return "L";
    case 1: return "S";
    case 2: return "0x" + std::to_string(rng.Below(1u << 30));
    case 3: return std::to_string(rng.Below(1u << 30));
    case 4: return "-" + std::to_string(rng.Below(1u << 30));
    case 5: return "0xfffffffffffffffffffffffff";  // overflows uint64
    case 6: {
      // Overlong token (several KB) probing for length assumptions.
      std::string t(1024 + rng.Below(4096), 'a');
      return t;
    }
    case 7: {
      std::string t;
      const std::size_t len = 1 + rng.Below(12);
      for (std::size_t i = 0; i < len; ++i) {
        t.push_back(static_cast<char>(rng.Below(256)));  // incl. NUL, \xff
      }
      return t;
    }
    case 8: return "#";
    default: return "0x1f" + std::string(1, static_cast<char>('g' + rng.Below(4)));
  }
}

std::string RandomTraceText(Rng& rng, std::size_t* line_count) {
  std::ostringstream out;
  const std::size_t lines = rng.Below(24);
  *line_count = lines;
  for (std::size_t i = 0; i < lines; ++i) {
    switch (rng.Below(6)) {
      case 0:  // well-formed line
        out << (rng.Below(2) == 0 ? "L 0x" : "S 0x") << std::hex
            << rng.Below(1u << 24) << std::dec << " " << rng.Below(1u << 16);
        break;
      case 1:  // comment / blank
        out << (rng.Below(2) == 0 ? "# comment" : "   ");
        break;
      default: {  // mutated: 0-5 random tokens
        const std::size_t tokens = rng.Below(6);
        for (std::size_t t = 0; t < tokens; ++t) {
          if (t > 0) out << (rng.Below(8) == 0 ? "\t" : " ");
          out << RandomToken(rng);
        }
        break;
      }
    }
    out << (rng.Below(12) == 0 ? "\r\n" : "\n");
  }
  return out.str();
}

}  // namespace

std::string FuzzTraceParsers(std::uint64_t seed, std::size_t iterations) {
  Rng rng(HashMix(seed, 0x7a53ull));
  for (std::size_t it = 0; it < iterations; ++it) {
    std::size_t line_count = 0;
    const std::string input = RandomTraceText(rng, &line_count);
    const auto describe = [&](const std::string& what) {
      return "iteration " + std::to_string(it) + ": " + what;
    };

    std::vector<TraceAccess> lenient;
    std::string lenient_errors;
    try {
      std::istringstream in(input);
      lenient = ParseTrace(in, &lenient_errors);
    } catch (const std::exception& e) {
      return describe(std::string("lenient parser threw: ") + e.what());
    } catch (...) {
      return describe("lenient parser threw a non-std exception");
    }

    std::vector<TraceAccess> strict;
    TraceParseError error;
    bool ok = false;
    try {
      std::istringstream in(input);
      ok = ParseTraceStrict(in, &strict, &error);
    } catch (const std::exception& e) {
      return describe(std::string("strict parser threw: ") + e.what());
    } catch (...) {
      return describe("strict parser threw a non-std exception");
    }

    if (!ok) {
      if (error.message.empty()) {
        return describe("strict parser failed without an error message");
      }
      if (error.line > line_count) {
        return describe("strict parser reported line " +
                        std::to_string(error.line) + " of a " +
                        std::to_string(line_count) + "-line input");
      }
      continue;
    }
    // Strict acceptance must agree with the lenient parse exactly.
    if (!lenient_errors.empty()) {
      return describe("strict parser accepted input the lenient parser "
                      "reported errors on: " + lenient_errors);
    }
    if (lenient.size() != strict.size()) {
      return describe("parsers disagree on access count (" +
                      std::to_string(lenient.size()) + " vs " +
                      std::to_string(strict.size()) + ")");
    }
    for (std::size_t i = 0; i < strict.size(); ++i) {
      if (lenient[i].addr != strict[i].addr ||
          lenient[i].pc != strict[i].pc ||
          lenient[i].type != strict[i].type) {
        return describe("parsers disagree on access " + std::to_string(i));
      }
    }
  }
  return "";
}

namespace {

/// A small seeded trace with hostile shapes (wraparound addresses,
/// max-delta jumps, duplicate PCs) to pack and then corrupt.
std::vector<TraceAccess> RandomPackedFuzzTrace(Rng& rng) {
  const std::size_t n = rng.Below(64);  // zero-length traces included
  std::vector<TraceAccess> trace;
  trace.reserve(n);
  Addr addr = 0;
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.Below(4)) {
      case 0: addr += 128; break;
      case 1: addr = rng.Next(); break;                      // max-delta jump
      case 2: addr = ~std::uint64_t{0} - rng.Below(256); break;  // wrap zone
      default: break;                                        // duplicate addr
    }
    trace.push_back(TraceAccess{
        addr, static_cast<Pc>(rng.Below(8)),
        rng.Below(4) == 0 ? AccessType::kStore : AccessType::kLoad});
  }
  return trace;
}

}  // namespace

std::string FuzzPackedTraces(std::uint64_t seed, std::size_t iterations) {
  Rng rng(HashMix(seed, 0x9c41ull));
  for (std::size_t it = 0; it < iterations; ++it) {
    const auto describe = [&](const std::string& what) {
      return "iteration " + std::to_string(it) + ": " + what;
    };
    const std::vector<TraceAccess> original = RandomPackedFuzzTrace(rng);
    static const std::string kFuzzMeta = "fuzz packed corpus\n";
    std::ostringstream packed_os;
    if (!trace::WritePackedTrace(packed_os, original, kFuzzMeta,
                                 /*block_records=*/
                                 static_cast<std::uint32_t>(
                                     1 + rng.Below(16)))) {
      return describe("writer failed on a valid trace");
    }
    std::string bytes = packed_os.str();

    // Apply one seeded corruption. Every case must surface as a typed
    // error: single-byte XOR is caught by a CRC (or a bounds check when
    // it lands in a length field), truncation by the footer requirement.
    const std::uint64_t mode = rng.Below(6);
    bool mutated = true;
    switch (mode) {
      case 0:  // truncation strictly inside the stream
        bytes.resize(rng.Below(bytes.size()));
        break;
      case 1: {  // single-byte XOR anywhere
        const std::size_t pos = rng.Below(bytes.size());
        bytes[pos] = static_cast<char>(
            static_cast<unsigned char>(bytes[pos]) ^
            static_cast<unsigned char>(1 + rng.Below(255)));
        break;
      }
      case 2: {  // oversized declared metadata length
        const std::uint32_t huge =
            static_cast<std::uint32_t>(trace::kMaxMetaBytes + 1 + rng.Below(1u << 30));
        std::string enc;
        trace::PutU32(&enc, huge);
        bytes.replace(8, 4, enc);
        break;
      }
      case 3: {  // oversized declared block raw length (first block)
        // (On a zero-record trace this lands in the footer instead --
        // still a guaranteed typed error via the footer CRC.)
        const std::size_t block_off = trace::kHeaderBytes + kFuzzMeta.size();
        if (block_off + 8 > bytes.size()) {
          mutated = false;
          break;
        }
        std::string enc;
        trace::PutU32(&enc,
                      static_cast<std::uint32_t>(trace::kMaxBlockRawBytes + 1));
        bytes.replace(block_off + 4, 4, enc);
        break;
      }
      case 4:  // bad magic
        bytes[0] = 'X';
        break;
      default: {  // wrong version
        std::string enc;
        trace::PutU32(&enc, trace::kFormatVersion + 1 + static_cast<std::uint32_t>(rng.Below(100)));
        bytes.replace(4, 4, enc);
        break;
      }
    }
    if (!mutated) continue;

    std::istringstream in(bytes);
    trace::PackedTraceSource src(in);
    std::vector<TraceAccess> decoded;
    TraceAccess a;
    try {
      // Bounded by construction (each Next consumes input), but guard
      // against pathological loops anyway.
      std::size_t pulls = 0;
      while (src.Next(&a)) {
        decoded.push_back(a);
        if (++pulls > original.size() + (1u << 16)) {
          return describe("reader yielded far more records than written");
        }
      }
    } catch (const std::exception& e) {
      return describe(std::string("packed reader threw: ") + e.what());
    } catch (...) {
      return describe("packed reader threw a non-std exception");
    }
    if (src.ok()) {
      return describe("corruption mode " + std::to_string(mode) +
                      " was accepted silently (" +
                      std::to_string(decoded.size()) + " records)");
    }
    if (src.error().kind == TraceErrorKind::kNone ||
        src.error().kind == TraceErrorKind::kBadText) {
      return describe("error kind is not a typed packed-format kind");
    }
    if (src.error().message.empty()) {
      return describe("typed error carries no message");
    }
  }
  return "";
}

}  // namespace dlpsim::verify
