#include "verify/fuzzer.h"

#include <algorithm>
#include <sstream>

#include "sim/rng.h"

namespace dlpsim::verify {

namespace {

/// Appends one access phase to `trace`. Phases are short so a single
/// case crosses several access-pattern regimes (and several sampling
/// windows under small sample_accesses).
void AppendPhase(Rng& rng, const L1DConfig& cfg,
                 const std::vector<Pc>& pc_pool, std::size_t phase_len,
                 std::vector<TraceAccess>* trace) {
  const std::uint32_t line = cfg.geom.line_bytes;
  // Footprint of 1x-8x the cache keeps both cache-resident and thrashing
  // phases reachable.
  const std::uint64_t footprint_blocks =
      std::uint64_t{cfg.geom.num_lines()} * (1 + rng.Below(8));
  const std::uint64_t base_block = rng.Below(1u << 16);
  const double store_ratio = rng.Below(2) == 0 ? 0.0 : rng.NextDouble() * 0.4;
  const int kind = static_cast<int>(rng.Below(4));

  std::uint64_t seq_block = rng.Below(footprint_blocks);
  const std::uint64_t seq_stride = 1 + rng.Below(2);
  const std::uint64_t loop_len =
      2 + rng.Below(std::max<std::uint64_t>(2, 2 * cfg.geom.ways));
  const std::uint64_t loop_start = rng.Below(footprint_blocks);
  ZipfSampler zipf(footprint_blocks, 0.6 + rng.NextDouble() * 0.6);

  for (std::size_t i = 0; i < phase_len; ++i) {
    std::uint64_t block = 0;
    switch (kind) {
      case 0:  // sequential stream
        block = seq_block % footprint_blocks;
        seq_block += seq_stride;
        break;
      case 1:  // zipf-skewed hot set
        block = zipf.Sample(rng.NextDouble());
        break;
      case 2:  // tight re-reference loop
        block = (loop_start + i % loop_len) % footprint_blocks;
        break;
      default:  // uniform random
        block = rng.Below(footprint_blocks);
        break;
    }
    TraceAccess a;
    a.addr = (base_block + block) * line + rng.Below(line);
    a.pc = pc_pool[rng.Below(pc_pool.size())];
    a.type = rng.NextDouble() < store_ratio ? AccessType::kStore
                                            : AccessType::kLoad;
    trace->push_back(a);
  }
}

}  // namespace

FuzzCase MakeFuzzCase(std::uint64_t seed, PolicyKind policy) {
  Rng rng(HashMix(seed, static_cast<std::uint64_t>(policy) + 1));
  FuzzCase c;
  c.seed = seed;

  L1DConfig& cfg = c.config;
  cfg.policy = policy;
  cfg.geom.sets = 1u << (2 + rng.Below(4));       // 4..32
  cfg.geom.ways = 1 + static_cast<std::uint32_t>(rng.Below(4));
  cfg.geom.line_bytes = 32u << rng.Below(3);      // 32/64/128
  cfg.geom.index =
      rng.Below(2) == 0 ? IndexFunction::kHash : IndexFunction::kLinear;
  cfg.write_policy = rng.Below(2) == 0 ? WritePolicy::kWriteBackOnHit
                                       : WritePolicy::kWriteEvict;
  cfg.mshr_entries = 1 + static_cast<std::uint32_t>(rng.Below(8));
  cfg.mshr_max_merged = 1 + static_cast<std::uint32_t>(rng.Below(4));
  cfg.miss_queue_entries = 2 + static_cast<std::uint32_t>(rng.Below(7));
  // Small sampling windows so a 2k-access case runs many Fig. 9 updates;
  // the cycle cap occasionally ends the window first (stall-heavy cases).
  cfg.prot.sample_accesses = 16 + static_cast<std::uint32_t>(rng.Below(385));
  cfg.prot.sample_max_cycles = 200 + rng.Below(4801);
  cfg.prot.pd_bits = 1 + static_cast<std::uint32_t>(rng.Below(4));
  cfg.prot.vta_ways =
      rng.Below(2) == 0 ? 0 : 1 + static_cast<std::uint32_t>(rng.Below(4));
  const std::uint32_t id_bits = 1 + static_cast<std::uint32_t>(rng.Below(7));
  cfg.prot.insn_id_bits = id_bits;
  cfg.prot.pdpt_entries = (1u << id_bits) << rng.Below(2);

  c.params.fill_latency = 1 + static_cast<std::uint32_t>(rng.Below(64));
  c.params.drain_rate = 1 + static_cast<std::uint32_t>(rng.Below(4));
  c.params.state_check_interval = 16;

  std::vector<Pc> pc_pool(1 + rng.Below(12));
  for (Pc& pc : pc_pool) pc = static_cast<Pc>(rng.Below(1u << 20));

  const std::size_t target = 256 + rng.Below(1793);  // 256..2048
  while (c.trace.size() < target) {
    const std::size_t phase_len =
        std::min<std::size_t>(16 + rng.Below(113), target - c.trace.size());
    AppendPhase(rng, cfg, pc_pool, phase_len, &c.trace);
  }
  return c;
}

std::optional<Divergence> RunFuzzCase(const FuzzCase& c, OracleBug bug) {
  return RunDifferential(c.config, c.trace, c.params, bug);
}

std::vector<TraceAccess> ShrinkTrace(const FuzzCase& c, OracleBug bug,
                                     std::size_t* steps_out) {
  std::size_t steps = 0;
  const auto fails = [&](const std::vector<TraceAccess>& t) {
    ++steps;
    FuzzCase probe = c;
    probe.trace = t;
    return RunFuzzCase(probe, bug).has_value();
  };

  std::vector<TraceAccess> current = c.trace;
  if (current.empty() || !fails(current)) {
    if (steps_out != nullptr) *steps_out = steps;
    return current;
  }

  // ddmin: try dropping ever-finer chunks (complements) while the
  // remainder still diverges.
  std::size_t n = 2;
  while (current.size() >= 2) {
    const std::size_t chunk = (current.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t i = 0; i < n && !reduced; ++i) {
      std::vector<TraceAccess> complement;
      complement.reserve(current.size());
      for (std::size_t j = 0; j < current.size(); ++j) {
        if (j / chunk != i) complement.push_back(current[j]);
      }
      if (complement.size() < current.size() && fails(complement)) {
        current = std::move(complement);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
      }
    }
    if (!reduced) {
      if (n >= current.size()) break;
      n = std::min(current.size(), n * 2);
    }
  }

  // Greedy polish: ddmin can leave single removable accesses behind.
  bool improved = true;
  while (improved && current.size() > 1) {
    improved = false;
    for (std::size_t i = 0; i < current.size(); ++i) {
      std::vector<TraceAccess> candidate = current;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(candidate)) {
        current = std::move(candidate);
        improved = true;
        break;
      }
    }
  }
  if (steps_out != nullptr) *steps_out = steps;
  return current;
}

FuzzOutcome FuzzOneSeed(std::uint64_t seed, PolicyKind policy, OracleBug bug,
                        bool shrink) {
  FuzzOutcome out;
  out.seed = seed;
  out.policy = policy;
  FuzzCase c = MakeFuzzCase(seed, policy);
  std::optional<Divergence> d = RunFuzzCase(c, bug);
  if (!d.has_value()) return out;
  out.diverged = true;
  out.first = *d;

  out.reproducer.config = c.config;
  out.reproducer.params = c.params;
  out.reproducer.seed = seed;
  if (shrink) {
    out.reproducer.trace = ShrinkTrace(c, bug, &out.shrink_steps);
    FuzzCase shrunk = c;
    shrunk.trace = out.reproducer.trace;
    const std::optional<Divergence> after = RunFuzzCase(shrunk, bug);
    out.reproducer.divergence =
        after.has_value() ? after->ToString() : out.first.ToString();
  } else {
    out.reproducer.trace = c.trace;
    out.reproducer.divergence = out.first.ToString();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Trace-parser fuzzing
// ---------------------------------------------------------------------------

namespace {

std::string RandomToken(Rng& rng) {
  switch (rng.Below(10)) {
    case 0: return "L";
    case 1: return "S";
    case 2: return "0x" + std::to_string(rng.Below(1u << 30));
    case 3: return std::to_string(rng.Below(1u << 30));
    case 4: return "-" + std::to_string(rng.Below(1u << 30));
    case 5: return "0xfffffffffffffffffffffffff";  // overflows uint64
    case 6: {
      // Overlong token (several KB) probing for length assumptions.
      std::string t(1024 + rng.Below(4096), 'a');
      return t;
    }
    case 7: {
      std::string t;
      const std::size_t len = 1 + rng.Below(12);
      for (std::size_t i = 0; i < len; ++i) {
        t.push_back(static_cast<char>(rng.Below(256)));  // incl. NUL, \xff
      }
      return t;
    }
    case 8: return "#";
    default: return "0x1f" + std::string(1, static_cast<char>('g' + rng.Below(4)));
  }
}

std::string RandomTraceText(Rng& rng, std::size_t* line_count) {
  std::ostringstream out;
  const std::size_t lines = rng.Below(24);
  *line_count = lines;
  for (std::size_t i = 0; i < lines; ++i) {
    switch (rng.Below(6)) {
      case 0:  // well-formed line
        out << (rng.Below(2) == 0 ? "L 0x" : "S 0x") << std::hex
            << rng.Below(1u << 24) << std::dec << " " << rng.Below(1u << 16);
        break;
      case 1:  // comment / blank
        out << (rng.Below(2) == 0 ? "# comment" : "   ");
        break;
      default: {  // mutated: 0-5 random tokens
        const std::size_t tokens = rng.Below(6);
        for (std::size_t t = 0; t < tokens; ++t) {
          if (t > 0) out << (rng.Below(8) == 0 ? "\t" : " ");
          out << RandomToken(rng);
        }
        break;
      }
    }
    out << (rng.Below(12) == 0 ? "\r\n" : "\n");
  }
  return out.str();
}

}  // namespace

std::string FuzzTraceParsers(std::uint64_t seed, std::size_t iterations) {
  Rng rng(HashMix(seed, 0x7a53ull));
  for (std::size_t it = 0; it < iterations; ++it) {
    std::size_t line_count = 0;
    const std::string input = RandomTraceText(rng, &line_count);
    const auto describe = [&](const std::string& what) {
      return "iteration " + std::to_string(it) + ": " + what;
    };

    std::vector<TraceAccess> lenient;
    std::string lenient_errors;
    try {
      std::istringstream in(input);
      lenient = ParseTrace(in, &lenient_errors);
    } catch (const std::exception& e) {
      return describe(std::string("lenient parser threw: ") + e.what());
    } catch (...) {
      return describe("lenient parser threw a non-std exception");
    }

    std::vector<TraceAccess> strict;
    TraceParseError error;
    bool ok = false;
    try {
      std::istringstream in(input);
      ok = ParseTraceStrict(in, &strict, &error);
    } catch (const std::exception& e) {
      return describe(std::string("strict parser threw: ") + e.what());
    } catch (...) {
      return describe("strict parser threw a non-std exception");
    }

    if (!ok) {
      if (error.message.empty()) {
        return describe("strict parser failed without an error message");
      }
      if (error.line > line_count) {
        return describe("strict parser reported line " +
                        std::to_string(error.line) + " of a " +
                        std::to_string(line_count) + "-line input");
      }
      continue;
    }
    // Strict acceptance must agree with the lenient parse exactly.
    if (!lenient_errors.empty()) {
      return describe("strict parser accepted input the lenient parser "
                      "reported errors on: " + lenient_errors);
    }
    if (lenient.size() != strict.size()) {
      return describe("parsers disagree on access count (" +
                      std::to_string(lenient.size()) + " vs " +
                      std::to_string(strict.size()) + ")");
    }
    for (std::size_t i = 0; i < strict.size(); ++i) {
      if (lenient[i].addr != strict[i].addr ||
          lenient[i].pc != strict[i].pc ||
          lenient[i].type != strict[i].type) {
        return describe("parsers disagree on access " + std::to_string(i));
      }
    }
  }
  return "";
}

}  // namespace dlpsim::verify
