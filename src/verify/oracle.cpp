#include "verify/oracle.h"

#include <algorithm>
#include <cassert>

namespace dlpsim::verify {

namespace {
std::uint32_t SatMax(std::uint32_t bits) {
  return bits >= 32 ? 0xffffffffu : (1u << bits) - 1u;
}
}  // namespace

OracleL1D::OracleL1D(const L1DConfig& cfg, OracleBug bug)
    : cfg_((cfg.ValidateOrThrow(), cfg)),
      bug_(bug),
      nasc_(cfg.prot.vta_ways == 0 ? cfg.geom.ways : cfg.prot.vta_ways),
      pd_max_((1u << cfg.prot.pd_bits) - 1u),
      pdpt_size_(cfg.policy == PolicyKind::kGlobalProtection
                     ? 1u
                     : cfg.prot.pdpt_entries),
      insn_bits_(cfg.policy == PolicyKind::kGlobalProtection
                     ? 0u
                     : cfg.prot.insn_id_bits),
      tda_hit_max_(SatMax(cfg.prot.tda_hit_bits)),
      vta_hit_max_(SatMax(cfg.prot.vta_hit_bits)),
      lines_(std::size_t{cfg.geom.sets} * cfg.geom.ways),
      vta_(protection() ? std::size_t{cfg.geom.sets} * nasc_ : 0),
      pdpt_(protection() ? pdpt_size_ : 0) {}

std::uint32_t OracleL1D::SetOf(Addr block) const {
  const std::uint32_t mask = cfg_.geom.sets - 1;
  if (cfg_.geom.index == IndexFunction::kLinear) {
    return static_cast<std::uint32_t>(block) & mask;
  }
  std::uint32_t bits = 0;
  while ((1u << bits) < cfg_.geom.sets) ++bits;
  const Addr folded = block ^ (block >> bits) ^ (block >> (2 * bits));
  return static_cast<std::uint32_t>(folded) & mask;
}

OracleL1D::Line* OracleL1D::Find(std::uint32_t set, Addr block) {
  Line* base = &lines_[std::size_t{set} * cfg_.geom.ways];
  for (std::uint32_t w = 0; w < cfg_.geom.ways; ++w) {
    if (IsOccupied(base[w].state) && base[w].block == block) return &base[w];
  }
  return nullptr;
}

std::uint32_t OracleL1D::InsnIdOf(Pc pc) const {
  return HashPc(pc, insn_bits_) % pdpt_size_;
}

void OracleL1D::Commit(std::uint32_t set, AccessType type, Cycle now) {
  ++stats_.accesses;
  if (protection()) {
    // §4.1.1: EVERY query of a set (loads, stores, even bypassed
    // requests) consumes one unit of each resident line's protected life.
    const bool decay =
        !(bug_ == OracleBug::kSkipDecayOnStores && type == AccessType::kStore);
    if (decay) {
      Line* base = &lines_[std::size_t{set} * cfg_.geom.ways];
      for (std::uint32_t w = 0; w < cfg_.geom.ways; ++w) {
        if (base[w].pl > 0) --base[w].pl;
      }
    }
    // §4.1.4 sampling window.
    if (!window_started_) {
      window_start_ = now;
      window_started_ = true;
    }
    ++window_accesses_;
    const bool due = window_accesses_ >= cfg_.prot.sample_accesses ||
                     now - window_start_ >= cfg_.prot.sample_max_cycles;
    if (due) {
      EndSampleFig9();
      window_accesses_ = 0;
      window_start_ = now;
    }
  }
}

void OracleL1D::EndSampleFig9() {
  // Fig. 9 / §4.2, transcribed from the paper's step table.
  if (global_vta_hits_ > global_tda_hits_) {
    // Under-protected: grow each instruction's PD by the step comparison
    // of its own HitVTA against shifted HitTDA (upper limit 4 * Nasc).
    for (PdptEntry& e : pdpt_) {
      std::uint32_t adj = 0;
      if (e.vta_hits == 0) {
        adj = 0;
      } else if (e.tda_hits == 0 || e.vta_hits >= 4 * e.tda_hits) {
        adj = 4 * nasc_;
      } else if (e.vta_hits >= 2 * e.tda_hits) {
        adj = 2 * nasc_;
      } else if (e.vta_hits >= e.tda_hits) {
        adj = nasc_;
      } else if (2 * e.vta_hits >= e.tda_hits) {
        adj = nasc_ / 2;
      }
      // Independent reference implementation: the differential oracle
      // deliberately re-implements the Fig. 9 PD/PL update outside
      // src/core/ so divergence from the real cache is detectable.
      e.pd += adj;               // NOLINT(dlp-i1)
      if (e.pd > pd_max_ && bug_ != OracleBug::kPdIncreaseNoClamp) {
        e.pd = pd_max_;          // NOLINT(dlp-i1)
      }
    }
  } else if (2 * global_vta_hits_ < global_tda_hits_) {
    // Lines hit enough before their protection expires: shrink every PD.
    const std::uint32_t dec =
        bug_ == OracleBug::kPdDecreaseOffByOne ? nasc_ - 1 : nasc_;
    for (PdptEntry& e : pdpt_) {
      // NOLINTNEXTLINE(dlp-i1): independent reference implementation.
      e.pd = e.pd > dec ? e.pd - dec : 0;
    }
  }
  for (PdptEntry& e : pdpt_) {
    e.tda_hits = 0;
    e.vta_hits = 0;
  }
  global_tda_hits_ = 0;
  global_vta_hits_ = 0;
}

void OracleL1D::Stamp(Line& line, Pc pc) {
  const std::uint32_t id = InsnIdOf(pc);
  line.insn_id = id;
  // NOLINTNEXTLINE(dlp-i1): independent reference implementation.
  line.pl = pdpt_[id].pd;
}

void OracleL1D::OnLoadMissVta(std::uint32_t set, Addr block) {
  VtaEntry* base = &vta_[std::size_t{set} * nasc_];
  for (std::uint32_t w = 0; w < nasc_; ++w) {
    if (base[w].valid && base[w].block == block) {
      // The evicted line would have been hit by this miss: credit the
      // instruction that owned it and consume the entry (§4.1.2).
      PdptEntry& e = pdpt_[base[w].insn_id];
      if (e.vta_hits < vta_hit_max_) ++e.vta_hits;
      ++global_vta_hits_;
      if (bug_ != OracleBug::kVtaKeepOnHit) base[w] = VtaEntry{};
      return;
    }
  }
}

void OracleL1D::EvictInto(std::uint32_t set, Line& victim, Addr block,
                          Pc pc) {
  if (IsFilled(victim.state)) {
    ++stats_.evictions;
    if (protection()) {
      // Record the displaced tag in the VTA: refresh an existing entry
      // for the same block, else take an invalid slot, else the LRU one.
      VtaEntry* base = &vta_[std::size_t{set} * nasc_];
      VtaEntry* slot = nullptr;
      for (std::uint32_t w = 0; w < nasc_; ++w) {
        if (base[w].valid && base[w].block == victim.block) {
          slot = &base[w];
          break;
        }
      }
      if (slot == nullptr) {
        for (std::uint32_t w = 0; w < nasc_; ++w) {
          if (!base[w].valid) {
            slot = &base[w];
            break;
          }
        }
      }
      if (slot == nullptr) {
        slot = &base[0];
        for (std::uint32_t w = 1; w < nasc_; ++w) {
          if (base[w].stamp < slot->stamp) slot = &base[w];
        }
      }
      slot->block = victim.block;
      slot->insn_id = victim.insn_id;
      slot->valid = true;
      slot->stamp = ++vta_recency_;
    }
    if (victim.state == LineState::kModified) {
      ++stats_.writebacks;
      outgoing_.push_back(OracleOutgoing{
          .block = victim.block, .write = true, .no_fill = true,
          .pc = victim.src_pc, .token = 0});
    }
  }
  victim.block = block;
  victim.state = LineState::kReserved;
  victim.stamp = ++recency_;
  victim.src_pc = pc;
  victim.insn_id = 0;
  // NOLINTNEXTLINE(dlp-i1): independent reference implementation.
  victim.pl = 0;
}

AccessResult OracleL1D::Access(const MemAccess& access, Cycle now) {
  const Addr block = access.addr / cfg_.geom.line_bytes;
  const std::uint32_t set = SetOf(block);
  return access.type == AccessType::kLoad ? Load(access, set, block, now)
                                          : Store(access, set, block, now);
}

AccessResult OracleL1D::Load(const MemAccess& a, std::uint32_t set,
                             Addr block, Cycle now) {
  Line* line = Find(set, block);

  if (line != nullptr && IsFilled(line->state)) {
    Commit(set, AccessType::kLoad, now);
    if (protection()) {
      // Attribute the hit to the instruction that last owned the line
      // (§4.1.1), then hand ownership to the hitting instruction.
      PdptEntry& e = pdpt_[line->insn_id];
      if (e.tda_hits < tda_hit_max_) ++e.tda_hits;
      ++global_tda_hits_;
      Stamp(*line, a.pc);
    }
    line->stamp = ++recency_;
    ++stats_.loads;
    ++stats_.load_hits;
    return AccessResult::kHit;
  }

  if (line != nullptr) {  // RESERVED: fill in flight
    auto it = mshr_.find(block);
    assert(it != mshr_.end());
    if (it->second.size() < cfg_.mshr_max_merged) {
      Commit(set, AccessType::kLoad, now);
      // The data is not here yet, so no hit is credited, but the merged
      // requester still takes ownership and rewrites the PL (§4.1.1).
      if (protection()) Stamp(*line, a.pc);
      it->second.push_back(a.token);
      ++stats_.loads;
      ++stats_.load_misses;
      ++stats_.mshr_merges;
      return AccessResult::kMissMerged;
    }
    if (bypass_on_resource_stall() &&
        outgoing_.size() < cfg_.miss_queue_entries) {
      Commit(set, AccessType::kLoad, now);
      if (protection()) OnLoadMissVta(set, block);
      ++stats_.loads;
      ++stats_.load_misses;
      ++stats_.bypasses;
      outgoing_.push_back(OracleOutgoing{.block = block, .write = false,
                                         .no_fill = true, .pc = a.pc,
                                         .token = a.token});
      return AccessResult::kBypassed;
    }
    ++stats_.reservation_fails;
    return AccessResult::kReservationFail;
  }

  // True miss. Pick the victim BEFORE this access's PL decay runs: the
  // hardware reads the PL fields and decrements them in the same query.
  Line* base = &lines_[std::size_t{set} * cfg_.geom.ways];
  Line* victim = nullptr;
  bool policy_bypass = false;
  bool policy_stall = false;
  {
    // An INVALID way wins outright (first in way order, though which
    // invalid slot is taken is unobservable).
    for (std::uint32_t w = 0; w < cfg_.geom.ways && victim == nullptr; ++w) {
      if (base[w].state == LineState::kInvalid) victim = &base[w];
    }
    if (victim == nullptr) {
      // LRU among replaceable lines: filled, and (protection) PL == 0.
      for (std::uint32_t w = 0; w < cfg_.geom.ways; ++w) {
        Line& l = base[w];
        if (!IsFilled(l.state)) continue;
        if (protection() && l.pl > 0) continue;
        if (victim == nullptr || l.stamp < victim->stamp) victim = &l;
      }
    }
    if (victim == nullptr) {
      bool any_filled = false;
      for (std::uint32_t w = 0; w < cfg_.geom.ways; ++w) {
        any_filled = any_filled || IsFilled(base[w].state);
      }
      if (cfg_.policy == PolicyKind::kBaseline) {
        policy_stall = true;
      } else if (cfg_.policy == PolicyKind::kStallBypass) {
        policy_bypass = true;
      } else if (any_filled) {
        // Every filled line is still protected: bypass around the cache
        // rather than evicting a protected line (§4.1.1).
        policy_bypass = true;
      } else {
        // Every way RESERVED: stall exactly like the baseline.
        policy_stall = true;
      }
    }
  }

  if (victim != nullptr) {
    const bool dirty = victim->state == LineState::kModified;
    const std::size_t slots = dirty ? 2 : 1;
    const bool has_resources =
        mshr_.size() < cfg_.mshr_entries &&
        outgoing_.size() + slots <= cfg_.miss_queue_entries;
    if (has_resources) {
      Commit(set, AccessType::kLoad, now);
      if (protection()) OnLoadMissVta(set, block);
      EvictInto(set, *victim, block, a.pc);
      if (protection()) Stamp(*victim, a.pc);
      mshr_[block] = {a.token};
      outgoing_.push_back(OracleOutgoing{.block = block, .write = false,
                                         .no_fill = false, .pc = a.pc,
                                         .token = 0});
      ++stats_.loads;
      ++stats_.load_misses;
      ++stats_.misses_issued;
      return AccessResult::kMissIssued;
    }
    if (bypass_on_resource_stall()) {
      policy_bypass = true;
    } else {
      policy_stall = true;
    }
  }

  if (policy_bypass && outgoing_.size() < cfg_.miss_queue_entries) {
    Commit(set, AccessType::kLoad, now);
    if (protection()) OnLoadMissVta(set, block);
    ++stats_.loads;
    ++stats_.load_misses;
    ++stats_.bypasses;
    outgoing_.push_back(OracleOutgoing{.block = block, .write = false,
                                       .no_fill = true, .pc = a.pc,
                                       .token = a.token});
    return AccessResult::kBypassed;
  }

  (void)policy_stall;
  ++stats_.reservation_fails;
  return AccessResult::kReservationFail;
}

AccessResult OracleL1D::Store(const MemAccess& a, std::uint32_t set,
                              Addr block, Cycle now) {
  Line* line = Find(set, block);
  const bool hit = line != nullptr && IsFilled(line->state);

  if (hit && cfg_.write_policy == WritePolicy::kWriteBackOnHit) {
    Commit(set, AccessType::kStore, now);
    line->state = LineState::kModified;
    line->stamp = ++recency_;
    ++stats_.stores;
    ++stats_.store_hits;
    return AccessResult::kStoreSent;
  }

  if (outgoing_.size() >= cfg_.miss_queue_entries) {
    ++stats_.reservation_fails;
    return AccessResult::kReservationFail;
  }
  Commit(set, AccessType::kStore, now);
  ++stats_.stores;
  if (hit) {
    // Write-evict (Fermi global stores): drop the cached copy.
    ++stats_.store_hits;
    ++stats_.store_invalidates;
    *line = Line{};
  }
  outgoing_.push_back(OracleOutgoing{.block = block, .write = true,
                                     .no_fill = true, .pc = a.pc,
                                     .token = 0});
  return AccessResult::kStoreSent;
}

void OracleL1D::Fill(Addr block, bool no_fill, MshrToken token,
                     std::vector<MshrToken>& woken) {
  if (no_fill) {
    woken.push_back(token);
    return;
  }
  Line* line = Find(SetOf(block), block);
  assert(line != nullptr && line->state == LineState::kReserved);
  line->state = LineState::kValid;  // recency unchanged: fills do not touch
  ++stats_.fills;
  auto it = mshr_.find(block);
  assert(it != mshr_.end());
  woken.insert(woken.end(), it->second.begin(), it->second.end());
  mshr_.erase(it);
}

OracleOutgoing OracleL1D::PopOutgoing() {
  assert(!outgoing_.empty());
  OracleOutgoing front = outgoing_.front();
  outgoing_.pop_front();
  return front;
}

std::vector<OracleL1D::LineImage> OracleL1D::SetImage(
    std::uint32_t set) const {
  std::vector<Line> occupied;
  const Line* base = &lines_[std::size_t{set} * cfg_.geom.ways];
  for (std::uint32_t w = 0; w < cfg_.geom.ways; ++w) {
    if (IsOccupied(base[w].state)) occupied.push_back(base[w]);
  }
  std::sort(occupied.begin(), occupied.end(),
            [](const Line& a, const Line& b) { return a.stamp < b.stamp; });
  std::vector<LineImage> out;
  out.reserve(occupied.size());
  for (const Line& l : occupied) {
    out.push_back(LineImage{l.block, l.state, l.insn_id, l.pl});
  }
  return out;
}

std::vector<std::uint32_t> OracleL1D::PdImage() const {
  std::vector<std::uint32_t> out;
  out.reserve(pdpt_.size());
  for (const PdptEntry& e : pdpt_) out.push_back(e.pd);
  return out;
}

std::vector<OracleL1D::VtaImage> OracleL1D::VtaSetImage(
    std::uint32_t set) const {
  if (!protection()) return {};
  std::vector<VtaEntry> occupied;
  const VtaEntry* base = &vta_[std::size_t{set} * nasc_];
  for (std::uint32_t w = 0; w < nasc_; ++w) {
    if (base[w].valid) occupied.push_back(base[w]);
  }
  std::sort(occupied.begin(), occupied.end(),
            [](const VtaEntry& a, const VtaEntry& b) {
              return a.stamp < b.stamp;
            });
  std::vector<VtaImage> out;
  out.reserve(occupied.size());
  for (const VtaEntry& e : occupied) {
    out.push_back(VtaImage{e.block, e.insn_id});
  }
  return out;
}

}  // namespace dlpsim::verify
