// Metamorphic properties: relations that must hold between runs (or
// within one run's counters) without consulting any oracle. They catch
// whole classes of bugs the differential harness shares with the oracle
// (e.g. a misreading of the paper present in both implementations).
//
//   - Counter conservation: the CacheStats block of a drained cache must
//     satisfy accesses == loads + stores, loads == hits + misses,
//     load_misses == issued + merged + bypassed, fills == issued, ...
//   - Protection neutrality: DLP whose sampling window never closes
//     keeps every PD at 0 and (given resources so the bypass path is
//     never consulted) must behave access-for-access like Baseline LRU.
//   - Determinism: the same seeds produce identical fuzz outcomes
//     regardless of the worker count used to run them (the PR-2
//     DLPSIM_JOBS guarantee, extended to the verify/ pipeline).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/stats.h"
#include "sim/config.h"
#include "verify/fuzzer.h"

namespace dlpsim::verify {

/// Checks the conservation identities over a *drained* cache's counters
/// (no in-flight fills or queued requests). Returns "" when consistent.
std::string CheckStatsConservation(const CacheStats& s);

/// Builds a DLP twin of `base` whose protection can never act: the
/// sampling window is made unreachable so every PD stays 0, and MSHR /
/// miss-queue resources are raised so the resource-stall bypass is never
/// consulted. `base` gets the same resource raise.
L1DConfig NeutralizedDlpTwin(const L1DConfig& base);

/// Generates the seed's fuzz trace and runs Baseline LRU against the
/// neutralized-DLP twin in lockstep; any difference is a real divergence
/// between the LRU core and the protection machinery at PD == 0.
/// Returns "" on agreement.
std::string CheckProtectionNeutrality(std::uint64_t seed);

/// Runs `seeds` through the full fuzz pipeline once serially and once on
/// `jobs` workers and compares every outcome (divergence flag, message,
/// reproducer length). Returns "" when both schedules agree exactly.
std::string CheckFuzzDeterminism(const std::vector<std::uint64_t>& seeds,
                                 PolicyKind policy, std::size_t jobs);

}  // namespace dlpsim::verify
