#include "analysis/reuse_miss.h"

namespace dlpsim {

void ReuseMissTracker::OnAccess(std::uint32_t set, Addr block, Pc /*pc*/,
                                AccessType /*type*/, bool hit) {
  auto [it, first_touch] = seen_[set].insert(block);
  (void)it;
  if (first_touch) {
    ++compulsory_;
    return;
  }
  ++reuse_accesses_;
  if (!hit) ++reuse_misses_;
}

void ReuseMissTracker::Reset() {
  for (auto& s : seen_) s.clear();
  reuse_accesses_ = 0;
  reuse_misses_ = 0;
  compulsory_ = 0;
}

}  // namespace dlpsim
