#include "analysis/trace_replay.h"

namespace dlpsim {

void TraceReplayer::Advance(Cycle now) {
  // Turn outgoing read requests into future fills; writes are absorbed.
  while (cache_.HasOutgoing()) {
    const L1DOutgoing out = cache_.PopOutgoing();
    if (out.write) continue;
    fills_.push_back(PendingFill{
        L1DResponse{out.block, out.no_fill, out.token}, now + fill_latency_});
  }
  while (!fills_.empty() && fills_.front().due <= now) {
    woken_.clear();
    cache_.Fill(fills_.front().response, now, woken_);
    fills_.pop_front();
  }
}

ReplayResult TraceReplayer::Replay(trace::TraceSource& source) {
  ReplayResult result;
  Cycle now = 0;
  const CacheStats before = cache_.stats();

  TraceAccess access;
  while (source.Next(&access)) {
    ++result.accesses;
    for (;;) {
      Advance(now);
      const AccessResult r = cache_.Access(
          MemAccess{access.addr, access.type, access.pc, /*token=*/0}, now);
      ++now;
      if (r != AccessResult::kReservationFail) break;
      ++result.stall_cycles;
      // A stalled replay must eventually make progress: fills due in the
      // future unblock it. fill_latency of 0 still advances `now`.
    }
  }
  // Drain outstanding requests and fills so back-to-back replays start
  // clean (the last access's miss may still sit in the outgoing queue).
  while (cache_.HasOutgoing() || !fills_.empty()) {
    Advance(now);
    ++now;
  }

  result.cycles = now;
  // Report the delta over this replay so sequential replays are additive.
  const CacheStats after = cache_.stats();
  result.cache = after;
  result.cache.accesses -= before.accesses;
  result.cache.loads -= before.loads;
  result.cache.stores -= before.stores;
  result.cache.load_hits -= before.load_hits;
  result.cache.load_misses -= before.load_misses;
  result.cache.store_hits -= before.store_hits;
  result.cache.mshr_merges -= before.mshr_merges;
  result.cache.misses_issued -= before.misses_issued;
  result.cache.bypasses -= before.bypasses;
  result.cache.reservation_fails -= before.reservation_fails;
  result.cache.evictions -= before.evictions;
  result.cache.writebacks -= before.writebacks;
  result.cache.fills -= before.fills;
  result.cache.store_invalidates -= before.store_invalidates;
  return result;
}

ReplayResult TraceReplayer::Replay(const std::vector<TraceAccess>& trace) {
  trace::VectorTraceSource source(trace);
  return Replay(source);
}

}  // namespace dlpsim
