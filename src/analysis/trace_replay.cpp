#include "analysis/trace_replay.h"

#include <limits>
#include <sstream>

namespace dlpsim {

namespace {

enum class LineKind { kAccess, kBlank, kBad };

/// Parses one trace line into `out`. Shared by the lenient and strict
/// parsers so the two can never drift apart on what "valid" means.
LineKind ParseTraceLine(const std::string& line, TraceAccess* out,
                        std::string* message) {
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '#') {
    return LineKind::kBlank;
  }

  std::istringstream ls(line);
  std::string op;
  std::string addr_str;
  std::string pc_str;
  if (!(ls >> op >> addr_str >> pc_str)) {
    *message = "expected 'L|S <address> <pc>', got '" + line + "'";
    return LineKind::kBad;
  }
  if (op != "L" && op != "S") {
    *message = "unknown op '" + op + "' (expected L or S)";
    return LineKind::kBad;
  }
  std::string trailing;
  if (ls >> trailing) {
    *message = "trailing garbage '" + trailing + "'";
    return LineKind::kBad;
  }
  out->type = op == "L" ? AccessType::kLoad : AccessType::kStore;
  // Parse through stoull with a leading-sign check: both istream>> on
  // unsigned and stoull silently wrap negative inputs to huge values, so
  // "-5" must be rejected explicitly rather than replayed as 2^64-5.
  try {
    if (addr_str.empty() || addr_str[0] == '-' || addr_str[0] == '+') {
      *message = "bad address '" + addr_str + "'";
      return LineKind::kBad;
    }
    std::size_t consumed = 0;
    out->addr = std::stoull(addr_str, &consumed, 0);  // 0x... or decimal
    if (consumed != addr_str.size()) {
      *message = "bad address '" + addr_str + "'";
      return LineKind::kBad;
    }
  } catch (const std::exception&) {
    *message = "bad address '" + addr_str + "'";
    return LineKind::kBad;
  }
  try {
    if (pc_str.empty() || pc_str[0] == '-' || pc_str[0] == '+') {
      *message = "bad pc '" + pc_str + "'";
      return LineKind::kBad;
    }
    std::size_t consumed = 0;
    const std::uint64_t pc = std::stoull(pc_str, &consumed, 0);
    if (consumed != pc_str.size() ||
        pc > std::numeric_limits<Pc>::max()) {
      *message = "bad pc '" + pc_str + "'";
      return LineKind::kBad;
    }
    out->pc = static_cast<Pc>(pc);
  } catch (const std::exception&) {
    *message = "bad pc '" + pc_str + "'";
    return LineKind::kBad;
  }
  return LineKind::kAccess;
}

}  // namespace

std::vector<TraceAccess> ParseTrace(std::istream& in, std::string* error) {
  std::vector<TraceAccess> trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    TraceAccess access;
    std::string message;
    switch (ParseTraceLine(line, &access, &message)) {
      case LineKind::kAccess:
        trace.push_back(access);
        break;
      case LineKind::kBlank:
        break;
      case LineKind::kBad:
        if (error != nullptr) {
          *error += "line " + std::to_string(line_no) + ": " + message + "\n";
        }
        break;
    }
  }
  return trace;
}

bool ParseTraceStrict(std::istream& in, std::vector<TraceAccess>* out,
                      TraceParseError* error) {
  out->clear();
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    TraceAccess access;
    std::string message;
    switch (ParseTraceLine(line, &access, &message)) {
      case LineKind::kAccess:
        out->push_back(access);
        break;
      case LineKind::kBlank:
        break;
      case LineKind::kBad:
        if (error != nullptr) {
          error->line = line_no;
          error->message = std::move(message);
        }
        return false;
    }
  }
  // A read error (I/O failure, not EOF) means the trace is truncated in a
  // way the line loop cannot see.
  if (in.bad()) {
    if (error != nullptr) {
      error->line = 0;
      error->message = "stream read error after line " + std::to_string(line_no);
    }
    return false;
  }
  return true;
}

void TraceReplayer::Advance(Cycle now) {
  // Turn outgoing read requests into future fills; writes are absorbed.
  while (cache_.HasOutgoing()) {
    const L1DOutgoing out = cache_.PopOutgoing();
    if (out.write) continue;
    fills_.push_back(PendingFill{
        L1DResponse{out.block, out.no_fill, out.token}, now + fill_latency_});
  }
  while (!fills_.empty() && fills_.front().due <= now) {
    woken_.clear();
    cache_.Fill(fills_.front().response, now, woken_);
    fills_.pop_front();
  }
}

ReplayResult TraceReplayer::Replay(const std::vector<TraceAccess>& trace) {
  ReplayResult result;
  Cycle now = 0;
  const CacheStats before = cache_.stats();

  for (const TraceAccess& access : trace) {
    ++result.accesses;
    for (;;) {
      Advance(now);
      const AccessResult r = cache_.Access(
          MemAccess{access.addr, access.type, access.pc, /*token=*/0}, now);
      ++now;
      if (r != AccessResult::kReservationFail) break;
      ++result.stall_cycles;
      // A stalled replay must eventually make progress: fills due in the
      // future unblock it. fill_latency of 0 still advances `now`.
    }
  }
  // Drain outstanding requests and fills so back-to-back replays start
  // clean (the last access's miss may still sit in the outgoing queue).
  while (cache_.HasOutgoing() || !fills_.empty()) {
    Advance(now);
    ++now;
  }

  result.cycles = now;
  // Report the delta over this replay so sequential replays are additive.
  const CacheStats after = cache_.stats();
  result.cache = after;
  result.cache.accesses -= before.accesses;
  result.cache.loads -= before.loads;
  result.cache.stores -= before.stores;
  result.cache.load_hits -= before.load_hits;
  result.cache.load_misses -= before.load_misses;
  result.cache.store_hits -= before.store_hits;
  result.cache.mshr_merges -= before.mshr_merges;
  result.cache.misses_issued -= before.misses_issued;
  result.cache.bypasses -= before.bypasses;
  result.cache.reservation_fails -= before.reservation_fails;
  result.cache.evictions -= before.evictions;
  result.cache.writebacks -= before.writebacks;
  result.cache.fills -= before.fills;
  result.cache.store_invalidates -= before.store_invalidates;
  return result;
}

}  // namespace dlpsim
