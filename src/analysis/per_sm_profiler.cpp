#include "analysis/per_sm_profiler.h"

namespace dlpsim {

PerSmProfiler::PerSmProfiler(std::uint32_t num_sms, std::uint32_t sets) {
  rd_.reserve(num_sms);
  reuse_.reserve(num_sms);
  composite_.reserve(num_sms);
  for (std::uint32_t i = 0; i < num_sms; ++i) {
    rd_.push_back(std::make_unique<RdProfiler>(sets));
    reuse_.push_back(std::make_unique<ReuseMissTracker>(sets));
    auto comp = std::make_unique<CompositeObserver>();
    comp->Add(rd_.back().get());
    comp->Add(reuse_.back().get());
    composite_.push_back(std::move(comp));
  }
}

void PerSmProfiler::AttachTo(GpuSimulator& gpu) {
  for (std::size_t i = 0; i < gpu.cores().size() && i < composite_.size();
       ++i) {
    gpu.cores()[i].l1d().SetObserver(composite_[i].get());
  }
}

RddHistogram PerSmProfiler::GlobalRdd() const {
  RddHistogram merged;
  for (const auto& p : rd_) merged.Merge(p->global());
  return merged;
}

std::map<Pc, RddHistogram> PerSmProfiler::PerPcRdd() const {
  std::map<Pc, RddHistogram> merged;
  for (const auto& p : rd_) {
    for (const auto& [pc, hist] : p->per_pc()) merged[pc].Merge(hist);
  }
  return merged;
}

std::uint64_t PerSmProfiler::accesses() const {
  std::uint64_t n = 0;
  for (const auto& p : rd_) n += p->accesses();
  return n;
}

std::uint64_t PerSmProfiler::reuse_accesses() const {
  std::uint64_t n = 0;
  for (const auto& p : reuse_) n += p->reuse_accesses();
  return n;
}

std::uint64_t PerSmProfiler::reuse_misses() const {
  std::uint64_t n = 0;
  for (const auto& p : reuse_) n += p->reuse_misses();
  return n;
}

std::uint64_t PerSmProfiler::compulsory_accesses() const {
  std::uint64_t n = 0;
  for (const auto& p : reuse_) n += p->compulsory_accesses();
  return n;
}

}  // namespace dlpsim
