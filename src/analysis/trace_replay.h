// Cache-level trace replay: drive an L1DCache (any policy) directly from
// a recorded or synthetic access trace, without the full GPU timing
// model. This is the fast path for policy experiments and lets users
// replay traces captured from real hardware or other simulators.
//
// Trace text format, one access per line (comments start with '#'):
//     L <hex-or-dec address> <pc>
//     S <hex-or-dec address> <pc>
// e.g. "L 0x1f80 12". Addresses are bytes; pc is the load/store PC used
// by DLP's PDPT.
//
// Replay semantics: accesses are issued in order, one per simulated
// cycle. Misses are serviced with a fixed configurable latency
// (fill_latency cycles); a reservation failure retries until resources
// free up (stall cycles are counted), which preserves the policies'
// stall/bypass behaviour without a memory-system model.
#pragma once

#include <cstdint>
#include <deque>
#include <istream>
#include <string>
#include <vector>

#include "core/l1d_cache.h"
#include "sim/types.h"

namespace dlpsim {

struct TraceAccess {
  Addr addr = 0;
  Pc pc = 0;
  AccessType type = AccessType::kLoad;
};

/// Parses the text format above. Invalid lines are reported via the
/// optional error output and skipped (lenient mode, for exploratory use
/// on dirty traces).
std::vector<TraceAccess> ParseTrace(std::istream& in,
                                    std::string* error = nullptr);

/// Typed parse failure: which line is malformed and why.
struct TraceParseError {
  std::size_t line = 0;  // 1-based; 0 for stream-level failures
  std::string message;

  std::string ToString() const {
    return line == 0 ? message : "line " + std::to_string(line) + ": " + message;
  }
};

/// Strict variant: stops at the FIRST malformed, truncated or trailing-
/// garbage line and reports it as a typed error instead of silently
/// replaying a partial trace. Returns false (with *error filled and *out
/// holding every access before the bad line) on failure. Tools replaying
/// user-supplied trace files should use this.
bool ParseTraceStrict(std::istream& in, std::vector<TraceAccess>* out,
                      TraceParseError* error);

struct ReplayResult {
  std::uint64_t cycles = 0;
  std::uint64_t accesses = 0;
  std::uint64_t stall_cycles = 0;
  CacheStats cache;  // snapshot of the cache's counters after replay

  double hit_rate() const {
    const std::uint64_t serviced = cache.loads - cache.bypasses;
    return serviced == 0 ? 0.0
                         : static_cast<double>(cache.load_hits) / serviced;
  }
};

class TraceReplayer {
 public:
  /// Validates `cfg` (throws ConfigError) before building the cache:
  /// replay drives the L1D without GpuSimulator, so it needs its own
  /// fail-fast gate against UB-producing geometry.
  explicit TraceReplayer(const L1DConfig& cfg,
                         std::uint32_t fill_latency = 200)
      : cache_((cfg.ValidateOrThrow(), cfg)), fill_latency_(fill_latency) {}

  /// Replays the whole trace; returns aggregate results. The cache keeps
  /// its state across calls (call Reset() between independent traces).
  ReplayResult Replay(const std::vector<TraceAccess>& trace);

  void Reset() { cache_.Reset(); }

  L1DCache& cache() { return cache_; }

 private:
  struct PendingFill {
    L1DResponse response;
    Cycle due = 0;
  };

  void Advance(Cycle now);  // deliver due fills, drain outgoing requests

  L1DCache cache_;
  std::uint32_t fill_latency_;
  std::deque<PendingFill> fills_;
  std::vector<MshrToken> woken_;
};

}  // namespace dlpsim
