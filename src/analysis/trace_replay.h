// Cache-level trace replay: drive an L1DCache (any policy) directly from
// a recorded or synthetic access trace, without the full GPU timing
// model. This is the fast path for policy experiments and the timing
// backend of the record/replay front/back split: record a workload once
// (trace/recorder.h), persist it as text or DLPT packed binary, then
// re-simulate it across configurations from a streaming TraceSource.
//
// Trace formats: the text grammar ("L|S <address> <pc>" lines, see
// trace/text.h) and the packed binary format (trace/format.h). Replay is
// format agnostic -- it pulls from any trace::TraceSource.
//
// Replay semantics: accesses are issued in order, one per simulated
// cycle. Misses are serviced with a fixed configurable latency
// (fill_latency cycles); a reservation failure retries until resources
// free up (stall cycles are counted), which preserves the policies'
// stall/bypass behaviour without a memory-system model.
#pragma once

#include <cstdint>
#include <deque>
#include <istream>
#include <string>
#include <vector>

#include "core/l1d_cache.h"
#include "sim/types.h"
#include "trace/error.h"
#include "trace/record.h"
#include "trace/source.h"
#include "trace/text.h"

namespace dlpsim {

struct ReplayResult {
  std::uint64_t cycles = 0;
  std::uint64_t accesses = 0;
  std::uint64_t stall_cycles = 0;
  CacheStats cache;  // snapshot of the cache's counters after replay

  double hit_rate() const {
    const std::uint64_t serviced = cache.loads - cache.bypasses;
    return serviced == 0 ? 0.0
                         : static_cast<double>(cache.load_hits) / serviced;
  }
};

class TraceReplayer {
 public:
  /// Validates `cfg` (throws ConfigError) before building the cache:
  /// replay drives the L1D without GpuSimulator, so it needs its own
  /// fail-fast gate against UB-producing geometry.
  explicit TraceReplayer(const L1DConfig& cfg,
                         std::uint32_t fill_latency = 200)
      : cache_((cfg.ValidateOrThrow(), cfg)), fill_latency_(fill_latency) {}

  /// Replays every record `source` yields; returns aggregate results.
  /// Streaming: memory use is bounded by the source's block size, not
  /// the trace length. Source errors are the caller's to check
  /// (source.ok()) -- the replay covers whatever records were yielded.
  /// The cache keeps its state across calls (call Reset() between
  /// independent traces).
  ReplayResult Replay(trace::TraceSource& source);

  /// Replays an in-memory trace.
  ReplayResult Replay(const std::vector<TraceAccess>& trace);

  void Reset() { cache_.Reset(); }

  L1DCache& cache() { return cache_; }

 private:
  struct PendingFill {
    L1DResponse response;
    Cycle due = 0;
  };

  void Advance(Cycle now);  // deliver due fills, drain outgoing requests

  L1DCache cache_;
  std::uint32_t fill_latency_;
  std::deque<PendingFill> fills_;
  std::vector<MshrToken> woken_;
};

}  // namespace dlpsim
