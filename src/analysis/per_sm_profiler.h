// Per-SM profiling bundle.
//
// Reuse distances are defined within one cache's access stream (one SM's
// L1D); merging the 16 SMs into a single profiler would interleave their
// per-set counters and inflate every distance ~16x. This helper owns one
// RdProfiler + ReuseMissTracker per core, attaches them, and merges the
// resulting histograms/counters for reporting.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "analysis/rd_profiler.h"
#include "analysis/reuse_miss.h"
#include "gpu/simulator.h"
#include "sim/types.h"

namespace dlpsim {

class PerSmProfiler {
 public:
  PerSmProfiler(std::uint32_t num_sms, std::uint32_t sets);

  /// Attaches one observer pair to every core's L1D. The profiler must
  /// outlive the simulator's run.
  void AttachTo(GpuSimulator& gpu);

  // --- merged views ---
  RddHistogram GlobalRdd() const;
  std::map<Pc, RddHistogram> PerPcRdd() const;
  std::uint64_t accesses() const;
  std::uint64_t reuse_accesses() const;
  std::uint64_t reuse_misses() const;
  std::uint64_t compulsory_accesses() const;
  double reuse_miss_rate() const {
    const std::uint64_t ra = reuse_accesses();
    return ra == 0 ? 0.0 : static_cast<double>(reuse_misses()) / ra;
  }

  /// Direct access for tests.
  const RdProfiler& rd(std::uint32_t sm) const { return *rd_[sm]; }
  const ReuseMissTracker& reuse(std::uint32_t sm) const { return *reuse_[sm]; }

 private:
  std::vector<std::unique_ptr<RdProfiler>> rd_;
  std::vector<std::unique_ptr<ReuseMissTracker>> reuse_;
  std::vector<std::unique_ptr<CompositeObserver>> composite_;
};

}  // namespace dlpsim
