// Plain-text table rendering + small numeric helpers shared by the
// figure-reproduction benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dlpsim {

/// Geometric mean; empty input yields 0, non-positive entries are skipped
/// (they would otherwise poison the log-domain mean).
double GeoMean(const std::vector<double>& values);

/// Fixed-width text table: set headers, add rows of strings, render.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  std::string Render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "0.43" style fixed formatting without <iomanip> noise at call sites.
std::string Fmt(double v, int decimals = 3);
/// "43.0%" percentage formatting.
std::string Pct(double fraction, int decimals = 1);

}  // namespace dlpsim
