// Reuse-distance profiler (paper §3.1, Figs. 2/3/7).
//
// The paper defines the RD of an access as the number of memory accesses
// to the same cache set since the previous access to the same line
// (Fig. 2: sequence Addr0, Addr1, Addr2, Addr0 gives Addr0 an RD of 3,
// i.e. the per-set access-counter delta). RDs therefore depend only on
// the access stream and the set mapping -- not on associativity or the
// management policy -- which is why one profiling run serves every cache
// size (paper §3.1).
//
// Distances are bucketed like Fig. 3: 1-4, 5-8, 9-64, >= 65.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "cache/observer.h"
#include "sim/types.h"

namespace dlpsim {

inline constexpr std::array<const char*, 4> kRdBucketNames = {
    "rd 1~4", "rd 5~8", "rd 9~64", "rd >65"};

/// Bucket index for a reuse distance (Fig. 3's ranges).
std::uint32_t RdBucket(std::uint64_t rd);

struct RddHistogram {
  std::array<std::uint64_t, 4> buckets{};
  std::uint64_t total() const {
    return buckets[0] + buckets[1] + buckets[2] + buckets[3];
  }
  double fraction(std::uint32_t b) const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(buckets[b]) / t;
  }
  void Add(std::uint64_t rd) { ++buckets[RdBucket(rd)]; }
  void Merge(const RddHistogram& other) {
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      buckets[i] += other.buckets[i];
    }
  }
};

class RdProfiler : public AccessObserver {
 public:
  explicit RdProfiler(std::uint32_t sets) : sets_(sets), per_set_(sets) {}

  void OnAccess(std::uint32_t set, Addr block, Pc pc, AccessType type,
                bool hit) override;

  /// Global distribution over all re-references (Fig. 3).
  const RddHistogram& global() const { return global_; }

  /// Per-memory-instruction distributions (Fig. 7), keyed by PC of the
  /// re-referencing access, ordered for stable reports.
  const std::map<Pc, RddHistogram>& per_pc() const { return per_pc_; }

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t re_references() const { return global_.total(); }

  void Reset();

 private:
  struct SetTrace {
    std::uint64_t counter = 0;  // accesses to this set so far
    std::unordered_map<Addr, std::uint64_t> last_access;  // block -> counter
  };

  std::uint32_t sets_;
  std::vector<SetTrace> per_set_;
  RddHistogram global_;
  std::map<Pc, RddHistogram> per_pc_;
  std::uint64_t accesses_ = 0;
};

}  // namespace dlpsim
