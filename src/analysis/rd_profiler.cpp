#include "analysis/rd_profiler.h"

namespace dlpsim {

std::uint32_t RdBucket(std::uint64_t rd) {
  if (rd <= 4) return 0;
  if (rd <= 8) return 1;
  if (rd <= 64) return 2;
  return 3;
}

void RdProfiler::OnAccess(std::uint32_t set, Addr block, Pc pc,
                          AccessType /*type*/, bool /*hit*/) {
  ++accesses_;
  SetTrace& trace = per_set_[set];
  ++trace.counter;
  auto [it, first_touch] = trace.last_access.try_emplace(block, trace.counter);
  if (!first_touch) {
    const std::uint64_t rd = trace.counter - it->second;
    global_.Add(rd);
    per_pc_[pc].Add(rd);
    it->second = trace.counter;
  }
}

void RdProfiler::Reset() {
  for (SetTrace& t : per_set_) {
    t.counter = 0;
    t.last_access.clear();
  }
  global_ = RddHistogram{};
  per_pc_.clear();
  accesses_ = 0;
}

}  // namespace dlpsim
