// Reuse-data miss tracking (paper Fig. 4): the miss rate over accesses to
// previously seen lines, i.e. with compulsory misses excluded ("by
// definition these accesses will always miss regardless of cache size").
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cache/observer.h"
#include "sim/types.h"

namespace dlpsim {

class ReuseMissTracker : public AccessObserver {
 public:
  explicit ReuseMissTracker(std::uint32_t sets) : seen_(sets) {}

  void OnAccess(std::uint32_t set, Addr block, Pc pc, AccessType type,
                bool hit) override;

  std::uint64_t reuse_accesses() const { return reuse_accesses_; }
  std::uint64_t reuse_misses() const { return reuse_misses_; }
  std::uint64_t compulsory_accesses() const { return compulsory_; }

  double reuse_miss_rate() const {
    return reuse_accesses_ == 0
               ? 0.0
               : static_cast<double>(reuse_misses_) / reuse_accesses_;
  }

  void Reset();

 private:
  std::vector<std::unordered_set<Addr>> seen_;  // per set
  std::uint64_t reuse_accesses_ = 0;
  std::uint64_t reuse_misses_ = 0;
  std::uint64_t compulsory_ = 0;
};

/// Fans one access stream out to several observers (profiling + reuse
/// tracking in a single run).
class CompositeObserver : public AccessObserver {
 public:
  void Add(AccessObserver* observer) { observers_.push_back(observer); }

  void OnAccess(std::uint32_t set, Addr block, Pc pc, AccessType type,
                bool hit) override {
    for (AccessObserver* o : observers_) o->OnAccess(set, block, pc, type, hit);
  }

 private:
  std::vector<AccessObserver*> observers_;
};

}  // namespace dlpsim
