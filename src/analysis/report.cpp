#include "analysis/report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dlpsim {

double GeoMean(const std::vector<double>& values) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double v : values) {
    if (v <= 0.0) continue;
    log_sum += std::log(v);
    ++n;
  }
  return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = headers_.size() > 1 ? 2 * (headers_.size() - 1) : 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Fmt(double v, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

std::string Pct(double fraction, int decimals) {
  return Fmt(fraction * 100.0, decimals) + "%";
}

}  // namespace dlpsim
