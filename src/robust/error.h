// Typed run-termination causes for GpuSimulator::Run().
//
// A run normally ends with every warp drained (kNone). The resilience
// layer adds two abnormal-but-diagnosed endings: the forward-progress
// watchdog tripping (no architectural state change for its stall window)
// and the hard cycle budget (SimConfig::max_core_cycles) expiring before
// the machine drained. Both leave the simulator in a consistent,
// inspectable state instead of spinning or aborting.
#pragma once

namespace dlpsim::robust {

enum class RunError {
  kNone,           // drained normally
  kWatchdogStall,  // watchdog: no forward progress for stall_cycles
  kCycleBudget,    // max_core_cycles reached while !Done()
};

inline const char* ToString(RunError e) {
  switch (e) {
    case RunError::kNone:
      return "none";
    case RunError::kWatchdogStall:
      return "watchdog_stall";
    case RunError::kCycleBudget:
      return "cycle_budget";
  }
  return "?";
}

}  // namespace dlpsim::robust
