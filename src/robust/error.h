// Typed run-termination causes for GpuSimulator::Run() and the serve/
// request pipeline.
//
// A run normally ends with every warp drained (kNone). The resilience
// layer adds two abnormal-but-diagnosed endings: the forward-progress
// watchdog tripping (no architectural state change for its stall window)
// and the hard cycle budget (SimConfig::max_core_cycles) expiring before
// the machine drained. Both leave the simulator in a consistent,
// inspectable state instead of spinning or aborting.
//
// The experiment server (src/serve/) extends the same enum with its
// request-level fault domains so every way a request can fail is one
// typed value that round-trips through the wire protocol:
//   kRunFailed        - the simulation threw (fault injection, bad
//                       config, workload error); detail carries what()
//   kWorkerCrash      - the worker process died abnormally (segfault,
//                       abort, SIGKILL) and the retry budget ran out
//   kDeadlineExceeded - the request's wall-clock deadline expired; the
//                       worker was killed and the request abandoned
//   kQueueRejected    - admission control refused the request (bounded
//                       queue full or server draining); retry later
#pragma once

#include <array>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dlpsim::robust {

enum class RunError {
  kNone,              // drained normally / request served
  kWatchdogStall,     // watchdog: no forward progress for stall_cycles
  kCycleBudget,       // max_core_cycles reached while !Done()
  kRunFailed,         // serve: simulation threw inside the worker
  kWorkerCrash,       // serve: worker process died; retries exhausted
  kDeadlineExceeded,  // serve: per-request wall-clock deadline expired
  kQueueRejected,     // serve: admission control rejected the request
};

/// Every RunError value, for exhaustive iteration in tests and tools.
/// Keep in sync with the enum; the round-trip test in
/// tests/serve/error_roundtrip_test.cpp fails if a value is missing.
inline constexpr std::array<RunError, 7> kAllRunErrors = {
    RunError::kNone,        RunError::kWatchdogStall,
    RunError::kCycleBudget, RunError::kRunFailed,
    RunError::kWorkerCrash, RunError::kDeadlineExceeded,
    RunError::kQueueRejected,
};

inline const char* ToString(RunError e) {
  switch (e) {
    case RunError::kNone:
      return "none";
    case RunError::kWatchdogStall:
      return "watchdog_stall";
    case RunError::kCycleBudget:
      return "cycle_budget";
    case RunError::kRunFailed:
      return "run_failed";
    case RunError::kWorkerCrash:
      return "worker_crash";
    case RunError::kDeadlineExceeded:
      return "deadline_exceeded";
    case RunError::kQueueRejected:
      return "queue_rejected";
  }
  return "?";
}

/// Inverse of ToString. Returns false (and leaves *out untouched) for
/// unknown names, so wire-protocol parsers can reject corrupt frames
/// instead of defaulting to kNone.
inline bool ParseRunError(std::string_view name, RunError* out) {
  for (const RunError e : kAllRunErrors) {
    if (name == ToString(e)) {
      if (out != nullptr) *out = e;
      return true;
    }
  }
  return false;
}

/// Exception carrying a typed RunError. The bench harness throws this on
/// watchdog trips; the serve worker catches it to report the typed kind
/// over the wire instead of collapsing everything to kRunFailed.
class RunErrorException : public std::runtime_error {
 public:
  RunErrorException(RunError kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  RunError kind() const { return kind_; }

 private:
  RunError kind_;
};

}  // namespace dlpsim::robust
