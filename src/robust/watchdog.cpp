#include "robust/watchdog.h"

#include <sstream>

#include "cache/line.h"
#include "gpu/simulator.h"
#include "obs/json.h"

namespace dlpsim::robust {

bool Watchdog::Observe(std::uint64_t signature, Cycle now) {
  next_check_ = now + cfg_.check_interval;
  if (!have_sample_ || signature != last_signature_) {
    have_sample_ = true;
    last_signature_ = signature;
    last_progress_ = now;
    return false;
  }
  if (tripped_) return false;
  if (now - last_progress_ >= cfg_.stall_cycles) {
    tripped_ = true;
    return true;
  }
  return false;
}

StallDiagnostic Diagnose(const GpuSimulator& gpu, Cycle now,
                         Cycle last_progress, std::uint64_t signature) {
  StallDiagnostic d;
  d.trip_cycle = now;
  d.last_progress_cycle = last_progress;
  d.progress_signature = signature;

  for (const SmCore& core : gpu.cores()) {
    StallDiagnostic::SmState s;
    s.sm = core.id();
    const L1DCache& l1d = core.l1d();
    for (const Warp& w : core.warps()) {
      ++s.warps_total;
      if (w.Finished()) ++s.warps_finished;
      if (w.state(now) == Warp::State::kWaitMem) ++s.warps_wait_mem;
    }
    s.mshr_entries = l1d.mshr().size();
    s.mshr_capacity = l1d.mshr().capacity();
    s.outgoing = l1d.outgoing_size();
    s.protected_lines = l1d.pl_counters().protected_lines();
    s.reservation_fails = l1d.stats().reservation_fails;
    const TagArray& tda = l1d.tda();
    for (std::uint32_t set = 0; set < tda.geom().sets; ++set) {
      bool evictable = false;
      for (const CacheLine& line : tda.SetView(set)) {
        if (line.state == LineState::kReserved) continue;
        if (line.state == LineState::kInvalid ||
            line.protected_life == 0) {
          evictable = true;
          break;
        }
      }
      if (!evictable) ++s.fully_protected_sets;
    }
    d.total_mshr += s.mshr_entries;
    d.total_wait_mem += s.warps_wait_mem;
    d.total_fully_protected_sets += s.fully_protected_sets;
    d.sms.push_back(s);
  }

  const Crossbar::QueueDepths icnt = gpu.icnt().Depths();
  d.icnt_in_flight = icnt.core_inject + icnt.partition_inject +
                     icnt.in_flight + icnt.to_partition + icnt.to_core;
  for (const MemoryPartition& p : gpu.partitions()) {
    const MemoryPartition::QueueDepths m = p.Depths();
    d.mem_backlog +=
        m.retry + m.replies + m.dram_backlog + m.dram_queue + m.dram_in_service;
  }
  return d;
}

std::string StallDiagnostic::StalledResource() const {
  // Order matters: packets sitting in the fabric explain everything
  // downstream of them, so blame the outermost stuck stage first.
  if (icnt_in_flight > 0) return "interconnect";
  if (mem_backlog > 0) return "memory_partition";
  if (total_mshr > 0) return "mshr";
  if (total_fully_protected_sets > 0) return "protected_sets";
  return "unknown";
}

std::string StallDiagnostic::ToText() const {
  std::ostringstream os;
  os << "watchdog: no forward progress since core cycle "
     << last_progress_cycle << " (tripped at " << trip_cycle
     << "); stalled resource: " << StalledResource() << "\n";
  if (!last_heartbeat.empty()) {
    os << "  last heartbeat: " << last_heartbeat << "\n";
  }
  os << "  icnt packets in flight: " << icnt_in_flight
     << ", memory-partition backlog: " << mem_backlog
     << ", MSHR entries: " << total_mshr
     << ", warps waiting on memory: " << total_wait_mem
     << ", fully protected sets: " << total_fully_protected_sets << "\n";
  for (const SmState& s : sms) {
    // Only show SMs that are actually implicated.
    if (s.warps_finished == s.warps_total && s.mshr_entries == 0 &&
        s.outgoing == 0) {
      continue;
    }
    os << "  sm" << s.sm << ": warps " << s.warps_finished << "/"
       << s.warps_total << " finished, " << s.warps_wait_mem
       << " waiting on memory; mshr " << s.mshr_entries << "/"
       << s.mshr_capacity << ", miss queue " << s.outgoing
       << ", protected lines " << s.protected_lines << " ("
       << s.fully_protected_sets << " sets fully protected), "
       << s.reservation_fails << " reservation fails\n";
  }
  return os.str();
}

void StallDiagnostic::WriteJson(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("trip_cycle", trip_cycle);
  w.KV("last_progress_cycle", last_progress_cycle);
  w.KV("progress_signature", progress_signature);
  w.KV("last_heartbeat", last_heartbeat);
  w.KV("stalled_resource", StalledResource());
  w.KV("icnt_in_flight", icnt_in_flight);
  w.KV("mem_backlog", mem_backlog);
  w.KV("total_mshr", total_mshr);
  w.KV("total_wait_mem", total_wait_mem);
  w.KV("total_fully_protected_sets",
       std::uint64_t{total_fully_protected_sets});
  w.Key("sms");
  w.BeginArray();
  for (const SmState& s : sms) {
    w.BeginObject();
    w.KV("sm", s.sm);
    w.KV("warps_total", s.warps_total);
    w.KV("warps_finished", s.warps_finished);
    w.KV("warps_wait_mem", s.warps_wait_mem);
    w.KV("mshr_entries", s.mshr_entries);
    w.KV("mshr_capacity", s.mshr_capacity);
    w.KV("outgoing", s.outgoing);
    w.KV("fully_protected_sets", s.fully_protected_sets);
    w.KV("protected_lines", s.protected_lines);
    w.KV("reservation_fails", s.reservation_fails);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
}

}  // namespace dlpsim::robust
