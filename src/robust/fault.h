// Deterministic, seeded fault injection for the DLP side structures and
// the memory system.
//
// The paper's mechanism lives entirely in small SRAM tables (PDPT, VTA,
// per-line PL fields, §4.1-4.3); a reproduction must be able to show the
// policy *degrades gracefully* when those structures are corrupted rather
// than deadlocking or producing unbounded garbage. A FaultPlan is a fixed,
// seed-derived schedule of FaultEvents; the FaultInjector applies each
// event when the core clock reaches its cycle. Plans are pure functions of
// (seed, count, horizon, ...) so every faulty run is exactly repeatable.
//
// Fault model (all transient / state-corrupting, never structural):
//   kPdptPd       - overwrite one PDPT entry's protection distance
//   kPlField      - XOR a bit into one cached line's protected-life field
//   kVtaClear     - drop every VTA entry of one SM (tag SRAM clear)
//   kMshrBlackout - the L1D rejects every access for `stall` core cycles
//                   (controller fault; the LD/ST unit retries)
//   kIcntStall    - the crossbar freezes for `stall` icnt cycles
//   kMemStall     - one partition freezes for `stall` memory cycles
//
// MSHR corruption is deliberately modelled as a blackout rather than entry
// loss: dropping an entry would leak its wake tokens and hang the owning
// warp forever -- a simulator artifact, not the graceful-degradation
// behaviour under test.
//
// Enabled in the bench harness via DLPSIM_FAULTS (see FaultPlan::Parse).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.h"

namespace dlpsim {
class GpuSimulator;
}  // namespace dlpsim

namespace dlpsim::robust {

enum class FaultKind : std::uint8_t {
  kPdptPd,
  kPlField,
  kVtaClear,
  kMshrBlackout,
  kIcntStall,
  kMemStall,
};
inline constexpr std::uint32_t kNumFaultKinds = 6;

const char* ToString(FaultKind k);

/// Bitmask helpers for FaultPlan::kinds_mask.
inline constexpr std::uint32_t MaskOf(FaultKind k) {
  return 1u << static_cast<std::uint32_t>(k);
}
inline constexpr std::uint32_t kAllFaultKinds = (1u << kNumFaultKinds) - 1u;

/// One scheduled fault. `a`/`b` are kind-specific operands (entry index,
/// set/way, bit position...) drawn deterministically from the plan seed;
/// targets are resolved against the actual simulator dimensions at apply
/// time (modulo), so one plan is valid for any configuration.
struct FaultEvent {
  Cycle cycle = 0;        // core-domain cycle at/after which to apply
  FaultKind kind = FaultKind::kPdptPd;
  std::uint32_t target = 0;  // SM id (or partition id for kMemStall)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// A complete, deterministic fault schedule.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::uint64_t stall_cycles = 2000;  // duration of blackout/stall faults
  std::vector<FaultEvent> events;     // sorted by cycle

  bool empty() const { return events.empty(); }

  /// Builds a plan of `count` events uniformly spread over core cycles
  /// [horizon/16, horizon), cycling round-robin through the kinds enabled
  /// in `kinds_mask` (so even small plans cover every enabled kind) with
  /// seed-derived targets/operands. Pure function of its arguments.
  static FaultPlan Random(std::uint64_t seed, std::uint32_t count,
                          Cycle horizon, std::uint64_t stall_cycles,
                          std::uint32_t kinds_mask = kAllFaultKinds);

  /// Parses a DLPSIM_FAULTS spec:
  ///   "1"                                   -> defaults (seed=1, count=32,
  ///                                            horizon=1M, stall=2000)
  ///   "seed=7,count=16,horizon=300000,stall=500,kinds=pdpt+pl+vta"
  /// Keys may appear in any order; kinds are joined with '+' from
  /// {pdpt, pl, vta, mshr, icnt, mem}. Returns false (with *error set)
  /// on an unknown key/kind or an unparsable number.
  static bool Parse(const std::string& spec, FaultPlan* out,
                    std::string* error);
};

/// Applies a FaultPlan against a running GpuSimulator. The simulator calls
/// HasDue/ApplyDue from its core-clock edge; when no event is due the cost
/// is one comparison.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  bool HasDue(Cycle now) const {
    return next_ < plan_.events.size() && plan_.events[next_].cycle <= now;
  }

  /// Applies every event scheduled at or before `now`.
  void ApplyDue(GpuSimulator& gpu, Cycle now);

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t applied_total() const { return applied_total_; }
  std::uint64_t applied(FaultKind k) const {
    return applied_[static_cast<std::size_t>(k)];
  }

  /// JSON report of the plan and what was actually applied (the fault
  /// artifact uploaded by the CI smoke job).
  void WriteJson(std::ostream& os) const;

 private:
  void Apply(GpuSimulator& gpu, const FaultEvent& ev, Cycle now);

  FaultPlan plan_;
  std::size_t next_ = 0;
  std::uint64_t applied_total_ = 0;
  std::uint64_t applied_[kNumFaultKinds] = {};
};

}  // namespace dlpsim::robust
