#include "robust/invariants.h"

#include <algorithm>
#include <array>
#include <sstream>
#include <unordered_set>

#include "core/l1d_cache.h"
#include "gpu/simulator.h"
#include "sim/env.h"

namespace dlpsim::robust {

std::string CheckPlClamp(const L1DCache& l1d) {
  const std::uint32_t pd_max = l1d.config().prot.pd_max();
  const TagArray& tda = l1d.tda();
  for (std::uint32_t set = 0; set < tda.geom().sets; ++set) {
    auto view = tda.SetView(set);
    for (std::uint32_t way = 0; way < view.size(); ++way) {
      const CacheLine& line = view[way];
      if (IsOccupied(line.state) && line.protected_life > pd_max) {
        std::ostringstream os;
        os << "line (" << set << ", " << way << ") has protected_life "
           << line.protected_life << " > pd_max " << pd_max;
        return os.str();
      }
    }
  }
  return "";
}

std::string CheckPlCounters(const L1DCache& l1d) {
  std::array<std::uint64_t, 16> walk{};
  const TagArray& tda = l1d.tda();
  for (std::uint32_t set = 0; set < tda.geom().sets; ++set) {
    for (const CacheLine& line : tda.SetView(set)) {
      if (IsOccupied(line.state)) {
        ++walk[PlCounters::Bucket(line.protected_life)];
      }
    }
  }
  const PlCounters& pl = l1d.pl_counters();
  for (std::size_t b = 0; b < walk.size(); ++b) {
    if (walk[b] != pl.histogram[b]) {
      std::ostringstream os;
      os << "PlCounters bucket " << b << " holds " << pl.histogram[b]
         << " but a tag walk finds " << walk[b] << " occupied lines";
      return os.str();
    }
  }
  return "";
}

std::string CheckMshrConsistency(const L1DCache& l1d) {
  // Every RESERVED line must have an in-flight MSHR entry for its block,
  // and vice versa (the L1D allocates both together and retires both on
  // fill). Count both directions and compare totals for the bijection.
  const TagArray& tda = l1d.tda();
  const MshrTable& mshr = l1d.mshr();
  std::uint64_t reserved = 0;
  for (std::uint32_t set = 0; set < tda.geom().sets; ++set) {
    for (const CacheLine& line : tda.SetView(set)) {
      if (line.state != LineState::kReserved) continue;
      ++reserved;
      if (!mshr.HasEntry(line.block)) {
        std::ostringstream os;
        os << "RESERVED line for block " << line.block << " in set " << set
           << " has no MSHR entry";
        return os.str();
      }
    }
  }
  // MSHR entries without a RESERVED line are legal only for bypassed
  // loads -- but those never allocate MSHR entries in this model, so any
  // excess entry is orphaned state.
  if (mshr.size() != reserved) {
    for (Addr block : mshr.Blocks()) {
      const std::uint32_t set = tda.SetOfBlock(block);
      const std::uint32_t way = tda.Probe(set, block);
      if (way == kInvalidIndex ||
          tda.SetView(set)[way].state != LineState::kReserved) {
        std::ostringstream os;
        os << "MSHR entry for block " << block
           << " has no matching RESERVED line in set " << set;
        return os.str();
      }
    }
    std::ostringstream os;
    os << "MSHR holds " << mshr.size() << " entries but the tag array has "
       << reserved << " RESERVED lines";
    return os.str();
  }
  return "";
}

std::string CheckLruValidity(const L1DCache& l1d) {
  const TagArray& tda = l1d.tda();
  for (std::uint32_t set = 0; set < tda.geom().sets; ++set) {
    auto view = tda.SetView(set);
    std::unordered_set<Addr> blocks;
    std::unordered_set<std::uint64_t> stamps;
    for (const CacheLine& line : view) {
      if (!IsOccupied(line.state)) continue;
      if (!blocks.insert(line.block).second) {
        std::ostringstream os;
        os << "set " << set << " holds block " << line.block << " twice";
        return os.str();
      }
      // Occupied lines always took a fresh ++use_clock_ stamp; a duplicate
      // stamp would make LRU selection ambiguous (and non-deterministic
      // under reordering).
      if (!stamps.insert(line.last_use).second) {
        std::ostringstream os;
        os << "set " << set << " has two occupied lines with LRU stamp "
           << line.last_use;
        return os.str();
      }
    }
  }
  return "";
}

std::string CheckPdpt(const L1DCache& l1d) {
  const PdpTable* pdpt = l1d.policy().pdpt();
  if (pdpt == nullptr) return "";  // baseline / stall-bypass
  const std::uint32_t pd_max = pdpt->pd_max();
  const std::uint32_t tda_max =
      (1u << l1d.config().prot.tda_hit_bits) - 1u;
  const std::uint32_t vta_max =
      (1u << l1d.config().prot.vta_hit_bits) - 1u;
  for (std::uint32_t i = 0; i < pdpt->size(); ++i) {
    if (pdpt->Pd(i) > pd_max) {
      std::ostringstream os;
      os << "PDPT entry " << i << " has PD " << pdpt->Pd(i) << " > pd_max "
         << pd_max;
      return os.str();
    }
    if (pdpt->tda_hits(i) > tda_max || pdpt->vta_hits(i) > vta_max) {
      std::ostringstream os;
      os << "PDPT entry " << i << " hit counters (" << pdpt->tda_hits(i)
         << ", " << pdpt->vta_hits(i) << ") exceed their bit widths";
      return os.str();
    }
  }
  return "";
}

std::string CheckL1D(const L1DCache& l1d) {
  struct Named {
    const char* name;
    std::string (*fn)(const L1DCache&);
  };
  static constexpr Named kChecks[] = {
      {"pl_clamp", CheckPlClamp},
      {"pl_counters", CheckPlCounters},
      {"mshr_consistency", CheckMshrConsistency},
      {"lru_validity", CheckLruValidity},
      {"pdpt_bounds", CheckPdpt},
  };
  for (const Named& c : kChecks) {
    std::string violation = c.fn(l1d);
    if (!violation.empty()) {
      return std::string(c.name) + ": " + violation;
    }
  }
  return "";
}

void InvariantChecker::CheckAll(const GpuSimulator& gpu, Cycle now) {
  next_check_ = now + interval_;
  ++checks_run_;
  for (const SmCore& core : gpu.cores()) {
    std::string violation = CheckL1D(core.l1d());
    if (violation.empty()) continue;
    ++violations_;
    const std::size_t colon = violation.find(':');
    const std::string check = violation.substr(0, colon);
    const std::string details =
        colon == std::string::npos ? violation : violation.substr(colon + 2);
    last_violation_ = "sm" + std::to_string(core.id()) + " " + violation;
    if (throw_) throw InvariantError(check, core.id(), details);
  }
}

bool ChecksEnabledByEnv() {
  // Tri-state: an explicit DLPSIM_CHECK always wins (so =0 can force the
  // checker off even in DLPSIM_CHECKED builds); unset falls back to the
  // build-time default.
  if (env::IsSet("DLPSIM_CHECK")) return env::Flag("DLPSIM_CHECK");
#ifdef DLPSIM_CHECKED
  return true;
#else
  return false;
#endif
}

std::unique_ptr<InvariantChecker> MakeCheckerFromEnv() {
  if (!ChecksEnabledByEnv()) return nullptr;
  return std::make_unique<InvariantChecker>();
}

}  // namespace dlpsim::robust
