#include "robust/fault.h"

#include <algorithm>
#include <cstdlib>

#include "gpu/simulator.h"
#include "obs/json.h"
#include "sim/rng.h"

namespace dlpsim::robust {

const char* ToString(FaultKind k) {
  switch (k) {
    case FaultKind::kPdptPd:
      return "pdpt_pd";
    case FaultKind::kPlField:
      return "pl_field";
    case FaultKind::kVtaClear:
      return "vta_clear";
    case FaultKind::kMshrBlackout:
      return "mshr_blackout";
    case FaultKind::kIcntStall:
      return "icnt_stall";
    case FaultKind::kMemStall:
      return "mem_stall";
  }
  return "?";
}

FaultPlan FaultPlan::Random(std::uint64_t seed, std::uint32_t count,
                            Cycle horizon, std::uint64_t stall_cycles,
                            std::uint32_t kinds_mask) {
  FaultPlan plan;
  plan.seed = seed;
  plan.stall_cycles = stall_cycles;
  kinds_mask &= kAllFaultKinds;
  if (kinds_mask == 0 || count == 0 || horizon == 0) return plan;

  std::vector<FaultKind> enabled;
  for (std::uint32_t k = 0; k < kNumFaultKinds; ++k) {
    if (kinds_mask & (1u << k)) enabled.push_back(static_cast<FaultKind>(k));
  }

  Rng rng(seed);
  const Cycle start = horizon / 16;  // let the machine warm up first
  const Cycle span = horizon > start ? horizon - start : 1;
  plan.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    FaultEvent ev;
    ev.cycle = start + rng.Below(span);
    // Round-robin through the enabled kinds so even tiny plans exercise
    // every enabled fault class.
    ev.kind = enabled[i % enabled.size()];
    ev.target = static_cast<std::uint32_t>(rng.Below(1u << 16));
    ev.a = rng.Next();
    ev.b = rng.Next();
    plan.events.push_back(ev);
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              return x.cycle < y.cycle;
            });
  return plan;
}

namespace {

bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseKinds(const std::string& s, std::uint32_t* mask,
                std::string* error) {
  *mask = 0;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t plus = s.find('+', pos);
    const std::string name = s.substr(
        pos, plus == std::string::npos ? std::string::npos : plus - pos);
    if (name == "pdpt") {
      *mask |= MaskOf(FaultKind::kPdptPd);
    } else if (name == "pl") {
      *mask |= MaskOf(FaultKind::kPlField);
    } else if (name == "vta") {
      *mask |= MaskOf(FaultKind::kVtaClear);
    } else if (name == "mshr") {
      *mask |= MaskOf(FaultKind::kMshrBlackout);
    } else if (name == "icnt") {
      *mask |= MaskOf(FaultKind::kIcntStall);
    } else if (name == "mem") {
      *mask |= MaskOf(FaultKind::kMemStall);
    } else {
      *error = "unknown fault kind '" + name +
               "' (expected pdpt, pl, vta, mshr, icnt or mem)";
      return false;
    }
    if (plus == std::string::npos) break;
    pos = plus + 1;
  }
  return true;
}

}  // namespace

bool FaultPlan::Parse(const std::string& spec, FaultPlan* out,
                      std::string* error) {
  std::uint64_t seed = 1;
  std::uint64_t count = 32;
  std::uint64_t horizon = 1'000'000;
  std::uint64_t stall = 2000;
  std::uint32_t kinds = kAllFaultKinds;

  if (!(spec == "1" || spec == "on" || spec == "true")) {
    std::size_t pos = 0;
    while (pos <= spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      const std::string item = spec.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos) {
        if (error != nullptr) {
          *error = "expected key=value, got '" + item + "'";
        }
        return false;
      }
      const std::string key = item.substr(0, eq);
      const std::string value = item.substr(eq + 1);
      bool ok = true;
      std::string kind_error;
      if (key == "seed") {
        ok = ParseU64(value, &seed);
      } else if (key == "count") {
        ok = ParseU64(value, &count);
      } else if (key == "horizon") {
        ok = ParseU64(value, &horizon);
      } else if (key == "stall") {
        ok = ParseU64(value, &stall);
      } else if (key == "kinds") {
        ok = ParseKinds(value, &kinds, &kind_error);
      } else {
        if (error != nullptr) {
          *error = "unknown DLPSIM_FAULTS key '" + key +
                   "' (expected seed, count, horizon, stall or kinds)";
        }
        return false;
      }
      if (!ok) {
        if (error != nullptr) {
          *error = kind_error.empty()
                       ? "bad value for '" + key + "': '" + value + "'"
                       : kind_error;
        }
        return false;
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  *out = Random(seed, static_cast<std::uint32_t>(count), horizon, stall,
                kinds);
  return true;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

void FaultInjector::ApplyDue(GpuSimulator& gpu, Cycle now) {
  while (HasDue(now)) {
    Apply(gpu, plan_.events[next_], now);
    ++next_;
  }
}

void FaultInjector::Apply(GpuSimulator& gpu, const FaultEvent& ev,
                          Cycle now) {
  auto& cores = gpu.cores();
  const std::uint32_t sm = ev.target % cores.size();
  L1DCache& l1d = cores[sm].l1d();
  switch (ev.kind) {
    case FaultKind::kPdptPd: {
      PdpTable* pdpt = l1d.mutable_policy().mutable_pdpt();
      if (pdpt == nullptr) return;  // policy has no PDPT; fault lands nowhere
      const std::uint32_t idx =
          static_cast<std::uint32_t>(ev.a % pdpt->size());
      pdpt->OverridePd(idx,
                       static_cast<std::uint32_t>(ev.b) & pdpt->pd_max());
      break;
    }
    case FaultKind::kPlField: {
      const CacheGeometry& geom = l1d.config().geom;
      const std::uint32_t set = static_cast<std::uint32_t>(ev.a % geom.sets);
      const std::uint32_t way = static_cast<std::uint32_t>(ev.b % geom.ways);
      const std::uint32_t bit = 1u << (ev.b % 4);
      l1d.InjectProtectedLifeFlip(set, way, bit);
      break;
    }
    case FaultKind::kVtaClear: {
      VictimTagArray* vta = l1d.mutable_policy().mutable_vta();
      if (vta == nullptr) return;
      vta->Clear();
      break;
    }
    case FaultKind::kMshrBlackout:
      l1d.InjectReservationBlackout(now + plan_.stall_cycles);
      break;
    case FaultKind::kIcntStall:
      gpu.icnt().InjectStallFor(plan_.stall_cycles);
      break;
    case FaultKind::kMemStall: {
      auto& parts = gpu.partitions();
      parts[ev.target % parts.size()].InjectStallFor(plan_.stall_cycles);
      break;
    }
  }
  ++applied_total_;
  ++applied_[static_cast<std::size_t>(ev.kind)];
}

void FaultInjector::WriteJson(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("seed", plan_.seed);
  w.KV("stall_cycles", plan_.stall_cycles);
  w.KV("planned", std::uint64_t{plan_.events.size()});
  w.KV("applied", applied_total_);
  w.Key("applied_by_kind");
  w.BeginObject();
  for (std::uint32_t k = 0; k < kNumFaultKinds; ++k) {
    w.KV(ToString(static_cast<FaultKind>(k)), applied_[k]);
  }
  w.EndObject();
  w.Key("events");
  w.BeginArray();
  for (const FaultEvent& ev : plan_.events) {
    w.BeginObject();
    w.KV("cycle", ev.cycle);
    w.KV("kind", ToString(ev.kind));
    w.KV("target", ev.target);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
}

}  // namespace dlpsim::robust
