// Forward-progress watchdog for GpuSimulator.
//
// A mis-configured or fault-corrupted machine can livelock: warps spin on
// kReservationFail, the interconnect stops delivering, or every line of a
// set stays protected so no victim ever appears. Before this layer such a
// run silently burned the whole max_core_cycles budget and returned
// completed=0 with no explanation. The watchdog samples a cheap progress
// signature (GpuSimulator::ProgressCount) every `check_interval` core
// cycles; when the signature has not moved for `stall_cycles` while the
// machine is not Done(), it trips once, captures a StallDiagnostic naming
// the stalled resource, and Run() returns with RunError::kWatchdogStall.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "robust/error.h"
#include "sim/types.h"

namespace dlpsim {
class GpuSimulator;
}  // namespace dlpsim

namespace dlpsim::robust {

struct WatchdogConfig {
  Cycle check_interval = 1024;  // cycles between signature samples
  Cycle stall_cycles = 100000;  // no-progress window before tripping
};

/// Snapshot of everything a human needs to see why the machine stopped
/// moving, captured at trip time.
struct StallDiagnostic {
  struct SmState {
    std::uint32_t sm = 0;
    std::uint32_t warps_total = 0;
    std::uint32_t warps_finished = 0;
    std::uint32_t warps_wait_mem = 0;
    std::uint64_t mshr_entries = 0;
    std::uint64_t mshr_capacity = 0;
    std::uint64_t outgoing = 0;            // L1D miss-queue occupancy
    std::uint32_t fully_protected_sets = 0;  // no evictable victim
    std::uint64_t protected_lines = 0;       // PL > 0 (per-SM PL counters)
    std::uint64_t reservation_fails = 0;
  };

  Cycle trip_cycle = 0;
  Cycle last_progress_cycle = 0;
  std::uint64_t progress_signature = 0;
  // Most recent DLPSIM_PROGRESS heartbeat line, copied in by GpuSimulator
  // at trip time (empty when no ProgressMeter was attached or it never
  // fired): how far the run got and how fast it was moving when it died.
  std::string last_heartbeat;
  std::vector<SmState> sms;
  // Aggregate queue depths at trip time.
  std::uint64_t icnt_in_flight = 0;   // injection + in-transit + delivery
  std::uint64_t mem_backlog = 0;      // partition retry/reply/DRAM queues
  std::uint64_t total_mshr = 0;
  std::uint64_t total_wait_mem = 0;
  std::uint32_t total_fully_protected_sets = 0;

  /// Best-effort name of the resource the machine is stuck on:
  /// "interconnect", "memory_partition", "mshr", "protected_sets" or
  /// "unknown". Heuristic, for humans and test assertions.
  std::string StalledResource() const;

  std::string ToText() const;
  void WriteJson(std::ostream& os) const;
};

/// Captures a StallDiagnostic from the current machine state (also usable
/// standalone, e.g. on the cycle-budget path).
StallDiagnostic Diagnose(const GpuSimulator& gpu, Cycle now,
                         Cycle last_progress, std::uint64_t signature);

class Watchdog {
 public:
  explicit Watchdog(WatchdogConfig cfg = {}) : cfg_(cfg) {}

  bool Due(Cycle now) const { return now >= next_check_; }

  /// Feeds one progress sample. Returns true exactly once: on the sample
  /// that first exceeds the no-progress window.
  bool Observe(std::uint64_t signature, Cycle now);

  bool tripped() const { return tripped_; }
  Cycle last_progress_cycle() const { return last_progress_; }
  std::uint64_t last_signature() const { return last_signature_; }
  const WatchdogConfig& config() const { return cfg_; }

  /// The diagnostic captured by GpuSimulator at trip time.
  const StallDiagnostic& diagnostic() const { return diagnostic_; }
  void set_diagnostic(StallDiagnostic d) { diagnostic_ = std::move(d); }

 private:
  WatchdogConfig cfg_;
  Cycle next_check_ = 0;
  Cycle last_progress_ = 0;
  std::uint64_t last_signature_ = 0;
  bool have_sample_ = false;
  bool tripped_ = false;
  StallDiagnostic diagnostic_;
};

}  // namespace dlpsim::robust
