// Opt-in structural invariant checker for the L1D and its DLP side
// structures.
//
// The protection machinery maintains several redundant encodings of the
// same state (PL fields vs the incremental PlCounters histogram, RESERVED
// lines vs MSHR entries, saturating PDPT counters vs their bit widths);
// a bug in any maintenance path corrupts replacement decisions silently.
// The checker re-derives each encoding by brute force and compares.
//
// Enabled either per-process (DLPSIM_CHECK=1) or for a whole build
// (-DDLPSIM_CHECKED=ON, which the CI Debug job uses); DLPSIM_CHECK=0
// overrides the build default. GpuSimulator constructs and owns a checker
// automatically when enabled and runs it every `check_interval` core
// cycles plus once at the end of Run(). Checks never mutate simulator
// state, so enabling them cannot change results.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "sim/types.h"

namespace dlpsim {
class GpuSimulator;
class L1DCache;
}  // namespace dlpsim

namespace dlpsim::robust {

/// Thrown (by default) on the first violated invariant.
class InvariantError : public std::runtime_error {
 public:
  InvariantError(std::string check, std::uint32_t sm, std::string details)
      : std::runtime_error("invariant '" + check + "' violated on sm" +
                           std::to_string(sm) + ": " + details),
        check_(std::move(check)),
        sm_(sm),
        details_(std::move(details)) {}

  const std::string& check() const { return check_; }
  std::uint32_t sm() const { return sm_; }
  const std::string& details() const { return details_; }

 private:
  std::string check_;
  std::uint32_t sm_;
  std::string details_;
};

/// Each check returns an empty string when the invariant holds, else a
/// description of the first violation found. All are pure observers.
///
/// Every cached line's PL fits the 4-bit field (<= prot.pd_max()).
std::string CheckPlClamp(const L1DCache& l1d);
/// The incremental PlCounters histogram equals a brute-force tag walk.
std::string CheckPlCounters(const L1DCache& l1d);
/// RESERVED lines and MSHR entries are in bijection.
std::string CheckMshrConsistency(const L1DCache& l1d);
/// Per set: occupied lines have distinct blocks and distinct LRU stamps.
std::string CheckLruValidity(const L1DCache& l1d);
/// Every PDPT entry's PD and hit counters respect their bit widths.
std::string CheckPdpt(const L1DCache& l1d);

/// Runs every check against one L1D; returns "" or the first violation
/// (prefixed with the check name).
std::string CheckL1D(const L1DCache& l1d);

class InvariantChecker {
 public:
  explicit InvariantChecker(Cycle check_interval = 4096,
                            bool throw_on_violation = true)
      : interval_(check_interval), throw_(throw_on_violation) {}

  bool Due(Cycle now) const { return now >= next_check_; }

  /// Checks every SM's L1D. Throws InvariantError on the first violation
  /// (or records it, when constructed with throw_on_violation=false).
  void CheckAll(const GpuSimulator& gpu, Cycle now);

  std::uint64_t checks_run() const { return checks_run_; }
  std::uint64_t violations() const { return violations_; }
  const std::string& last_violation() const { return last_violation_; }

 private:
  Cycle interval_;
  bool throw_;
  Cycle next_check_ = 0;
  std::uint64_t checks_run_ = 0;
  std::uint64_t violations_ = 0;
  std::string last_violation_;
};

/// True when invariant checking is requested for this process: the
/// DLPSIM_CHECK environment variable when set ("0" disables, anything
/// else enables), otherwise the DLPSIM_CHECKED compile-time default.
bool ChecksEnabledByEnv();

/// Returns an owning checker when ChecksEnabledByEnv(), else nullptr.
std::unique_ptr<InvariantChecker> MakeCheckerFromEnv();

}  // namespace dlpsim::robust
