// Process-isolated worker pool: the server's fault domains.
//
// Each slot owns one child process, fork/exec'd from WorkerSpec::argv
// with one end of a socketpair dup2()d onto serve::kWorkerProtocolFd.
// A slot is driven by exactly one server thread (its dispatcher), so no
// fd is ever shared across threads.
//
// Execute() runs one request on a slot with a wall-clock deadline and a
// retry budget:
//   - worker replies ok            -> done
//   - worker replies typed failure -> retried with exponential backoff
//     (fault-injected runs are failures-as-data; the retry proves they
//     fail deterministically, and the final response carries the typed
//     kind + attempts)
//   - worker dies (EOF / EPIPE)    -> reaped via waitpid, exit status
//     recorded, slot respawned, request retried -> kWorkerCrash when the
//     budget runs out
//   - deadline expires             -> worker SIGKILLed + reaped + slot
//     respawned, request fails kDeadlineExceeded (never retried: the
//     request's wall-clock budget is already gone)
//
// Every worker death increments serve.worker_crashes / worker_restarts
// on the caller's metrics hooks (see serve/metrics.h); a crash can never
// take the server with it because the only shared state is a socketpair.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/request.h"

namespace dlpsim::serve {

struct ServeMetrics;

/// How to exec a worker. The pool appends "--worker-fd <n>" (with n ==
/// kWorkerProtocolFd) to argv. argv[0] must be an absolute or
/// CWD-relative executable path.
struct WorkerSpec {
  std::vector<std::string> argv;
};

/// Retry/backoff budget for one request.
struct RetryBudget {
  int max_attempts = 3;
  std::uint64_t backoff_ms = 10;  // sleep before attempt k: backoff << (k-2)
  std::uint64_t deadline_ms = 30000;  // whole-request wall budget; 0 = none
};

/// One worker process slot. Not thread-safe: owned by one dispatcher.
class WorkerSlot {
 public:
  WorkerSlot() = default;
  ~WorkerSlot();
  WorkerSlot(const WorkerSlot&) = delete;
  WorkerSlot& operator=(const WorkerSlot&) = delete;

  /// Forks and execs a fresh worker; returns false (with detail in *err)
  /// when the child could not be spawned.
  bool Spawn(const WorkerSpec& spec, std::string* err);

  bool alive() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  /// Runs the request to a terminal response. Never throws. `metrics`
  /// may be null (the standalone-pool tests pass null).
  ExperimentResponse Execute(const WorkerSpec& spec,
                             const ExperimentRequest& req,
                             const RetryBudget& budget,
                             ServeMetrics* metrics);

  /// SIGKILLs and reaps the current child, if any.
  void Kill();

  /// Human-readable description of the last observed child death
  /// ("signal 9", "exit 3"); empty before any death.
  const std::string& last_death() const { return last_death_; }

 private:
  /// Waits for the child to exit and records last_death_.
  void Reap();

  pid_t pid_ = -1;
  int fd_ = -1;
  std::string last_death_;
};

/// Fixed-size pool: slot i belongs to dispatcher thread i.
class WorkerPool {
 public:
  WorkerPool(WorkerSpec spec, std::size_t n);
  ~WorkerPool() = default;  // slots kill their children

  std::size_t size() const { return slots_.size(); }
  WorkerSlot& slot(std::size_t i) { return *slots_[i]; }
  const WorkerSpec& spec() const { return spec_; }

 private:
  WorkerSpec spec_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
};

}  // namespace dlpsim::serve
