// Server metrics, registered in the PR-6 obs/ metrics registry.
//
// Two scopes with different determinism contracts:
//
//   "serve"      -- pure functions of the request stream and the worker
//                   outcomes: request/response counters by kind, cache
//                   hits/stores, worker crashes/restarts, retries, the
//                   attempts histogram and the queue-depth/inflight
//                   gauges (0 at quiescence). Under a deterministic load
//                   replay (fixed seed, content-driven faults, fresh
//                   cache dir, no rejections) two runs produce
//                   byte-identical dumps at ANY worker count -- the
//                   serve stress suite pins this.
//   "serve_wall" -- wall-clock latency histograms (request end-to-end,
//                   queue wait). Real telemetry, never deterministic, so
//                   WriteDeterministicText excludes the scope.
//
// Prometheus exposition of everything (both scopes plus the rest of the
// process) remains obs::Registry::Global().WriteText().
#pragma once

#include <ostream>

#include "obs/metrics.h"

namespace dlpsim::serve {

struct ServeMetrics {
  // Admission / outcome counters.
  obs::Counter* requests_total;      // every request frame accepted
  obs::Counter* responses_ok;        // error == kNone
  obs::Counter* responses_failed;    // typed failure (not rejection)
  obs::Counter* rejected_queue_full; // kQueueRejected: bounded queue full
  obs::Counter* rejected_draining;   // kQueueRejected: server draining
  // Content-addressed cache.
  obs::Counter* cache_hits;    // disk hits + single-flight coalesced
  obs::Counter* cache_stores;
  // Fault domains.
  obs::Counter* worker_crashes;   // worker process deaths observed
  obs::Counter* worker_restarts;  // respawns (initial spawns excluded)
  obs::Counter* deadline_kills;   // workers SIGKILLed on deadline expiry
  obs::Counter* retries;          // extra attempts consumed
  obs::Counter* runs_executed;    // requests actually sent to a worker
  // Occupancy gauges (deterministically 0 at quiescence).
  obs::Gauge* queue_depth;
  obs::Gauge* inflight;
  // Attempts per terminal response (deterministic under replay).
  obs::Histogram* request_attempts;
  // Wall-clock telemetry (scope "serve_wall"; excluded from the
  // deterministic dump).
  obs::Histogram* latency_us;     // admission -> response written
  obs::Histogram* queue_wait_us;  // admission -> dispatch

  /// Registers (get-or-create) every instrument in `registry`.
  explicit ServeMetrics(obs::Registry& registry);

  /// The process-global instance, registered in Registry::Global().
  static ServeMetrics& Global();
};

/// Writes every "serve"-scoped instrument (and nothing else) as sorted
/// "name value" / histogram-bucket lines under a versioned header. This
/// is the dump the stress suite compares byte-for-byte across replays.
void WriteDeterministicText(std::ostream& os, const obs::Registry& registry);

}  // namespace dlpsim::serve
