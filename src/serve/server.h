// The dlpsim experiment server: crash-isolated, sharded, bounded.
//
// Threading model:
//
//   accept thread ---> one reader thread per connection
//                          |  (admission control: bounded queue or
//                          |   immediate kQueueRejected response)
//                          v
//                    bounded job queue
//                          |
//          dispatcher 0 .. dispatcher N-1   (one per worker slot)
//                          |
//                    WorkerSlot i           (fork/exec fault domain)
//
// Responses are written back on the originating connection under a
// per-connection write mutex (several dispatchers may complete jobs
// from one connection concurrently).
//
// Single-flight + content-addressed cache: requests whose content key
// (KeyFn) matches an inflight execution wait for its result instead of
// re-executing; completed ok-results are persisted in a ContentCache
// keyed by config-hash x trace-hash x binary-version. Both disk hits
// and coalesced duplicates count as serve.cache_hits, which makes the
// hit count a pure function of the request stream (total ok responses
// minus distinct ok keys) -- scheduling-independent, so the
// deterministic metrics dump stays byte-identical across replays.
// Failed runs are never cached; clients that inject faults should set
// nocache so a failing key cannot be re-led by a later request (which
// would make runs_executed timing-dependent).
//
// Graceful drain (Stop(), or the kShutdown admin frame): stop
// accepting, reject new admissions with kQueueRejected("draining"),
// serve everything already admitted, then tear down connections and
// workers. Every admitted request gets exactly one response.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/timing.h"
#include "serve/content_cache.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "serve/worker_pool.h"

namespace dlpsim::serve {

/// Maps a request to its content-address key; return "" to bypass the
/// cache and single-flight for that request.
using KeyFn = std::function<std::string(const ExperimentRequest&)>;

/// Default key: ContentKey over the raw config text and the workload
/// trace ref. Tools with richer knowledge (e.g. a canonicalized
/// SimConfig) inject their own.
std::string DefaultKeyFn(const ExperimentRequest& req);

struct ServerOptions {
  std::string socket_path;      // AF_UNIX listen address (required)
  WorkerSpec worker;            // how to exec worker processes
  std::size_t workers = 4;      // fault domains == dispatcher threads
  std::size_t queue_capacity = 64;  // admitted-but-undispatched bound
  RetryBudget budget;           // default per-request retry/deadline
  std::uint64_t retry_after_ms = 50;  // hint on queue-full rejections
  std::filesystem::path cache_dir;    // empty = cache disabled
  KeyFn key_fn;                 // null = DefaultKeyFn
  ServeMetrics* metrics = nullptr;    // null = ServeMetrics::Global()
  const obs::Registry* registry = nullptr;  // for kMetricsRequest;
                                            // null = Registry::Global()
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept/dispatcher threads. Returns
  /// false (with detail in *err) if the socket could not be set up.
  bool Start(std::string* err = nullptr);

  /// Begins a graceful drain and blocks until every admitted request
  /// has been answered and all threads have exited. Idempotent.
  void Stop();

  /// True once a drain has begun (Stop() or a kShutdown frame).
  bool draining() const;

  const std::string& socket_path() const { return opts_.socket_path; }

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
  };
  struct Job {
    ExperimentRequest req;
    std::shared_ptr<Conn> conn;
    exec::Stopwatch admitted;
  };
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ExperimentResponse resp;  // template; waiters re-stamp id/cached
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Conn> conn);
  void DispatchLoop(std::size_t slot);

  /// Admission control; writes the kQueueRejected response itself when
  /// the request cannot be queued.
  void Admit(const std::shared_ptr<Conn>& conn, ExperimentRequest req);
  void Respond(const std::shared_ptr<Conn>& conn,
               const ExperimentResponse& resp);
  void ServeJob(std::size_t slot, Job& job);
  ExperimentResponse RunOnWorker(std::size_t slot,
                                 const ExperimentRequest& req);
  void HandleMetricsRequest(const std::shared_ptr<Conn>& conn,
                            const std::string& what);

  ServerOptions opts_;
  ServeMetrics* metrics_;
  const obs::Registry* registry_;
  ContentCache cache_;
  std::unique_ptr<WorkerPool> pool_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // nudges poll() in AcceptLoop on Stop

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool draining_ = false;
  bool started_ = false;
  bool stopped_ = false;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;

  std::mutex flights_mu_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;

  std::thread accept_thread_;
  std::vector<std::thread> dispatchers_;
  std::mutex readers_mu_;
  std::vector<std::thread> readers_;
};

}  // namespace dlpsim::serve
