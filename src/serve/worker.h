// Worker-process side of the experiment server.
//
// A worker is a single-threaded child process (fork/exec'd by
// serve::WorkerPool) that speaks the frame protocol over an inherited
// socketpair fd: read one kRequest, run it, write one kResponse, repeat
// until EOF. Everything that can go wrong *inside* a request -- the
// simulation throwing, a watchdog trip, fault injection -- is caught and
// reported as a typed kResponse; everything that kills the process --
// segfault, abort, SIGKILL, a wedged run -- is detected by the pool on
// the other end of the socketpair (EOF or deadline) and handled there.
// That split is the fault-domain design: a worker can die at any
// instruction without taking any state the server needs with it.
//
// The actual simulation is injected as a Runner so the protocol and
// fault-domain machinery are testable without simulating anything:
// tools/dlpsim_server installs a bench-harness runner, the test suite's
// stub worker installs StubRunner.
#pragma once

#include <functional>
#include <string>

#include "robust/error.h"
#include "serve/request.h"

namespace dlpsim::serve {

/// Outcome of running one experiment inside the worker.
struct WorkerResult {
  robust::RunError error = robust::RunError::kNone;
  std::string detail;  // what() when error != kNone
  std::string result;  // metrics+profile text when error == kNone
};

/// Executes one request. Must not touch the worker's protocol fd. May
/// throw -- the loop converts exceptions to typed failures.
using Runner = std::function<WorkerResult(const ExperimentRequest&)>;

/// Fd the pool dup2()s the worker's socketpair end onto before exec.
inline constexpr int kWorkerProtocolFd = 3;

/// Applies the request's chaos directive, if any ("crash:N" aborts,
/// "exit:N" _exits(3), "spin:N" sleeps for 3600s, each while
/// request.attempt <= N). No-op when `enabled` is false or the directive
/// is empty/unknown. Exposed for the stub worker and tests.
void MaybeInjectChaos(const ExperimentRequest& req, bool enabled);

/// The worker main loop. Returns the process exit code: 0 after an
/// orderly EOF from the pool, 1 on a protocol error. `chaos_enabled`
/// gates MaybeInjectChaos (production servers leave it off so a hostile
/// client cannot crash workers at will).
int WorkerLoop(int fd, const Runner& runner, bool chaos_enabled);

/// Deterministic synthetic runner for tests and load benchmarks -- no
/// simulation, microsecond-fast:
///   app "echo"       -> ok, result "echo <id>\n"
///   app "work"       -> ok after sleeping `config` milliseconds
///   app "fail"       -> kRunFailed, detail "synthetic failure"
///   app "stall"      -> kWatchdogStall, detail "synthetic stall"
///   anything else    -> ok, result "stub <app>/<config> scale <scale>\n"
WorkerResult StubRunner(const ExperimentRequest& req);

}  // namespace dlpsim::serve
