#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "serve/protocol.h"

namespace dlpsim::serve {

namespace {

std::uint64_t MicrosOf(const exec::Stopwatch& sw) {
  const double us = sw.Seconds() * 1e6;
  return us <= 0 ? 0 : static_cast<std::uint64_t>(us);
}

}  // namespace

std::string DefaultKeyFn(const ExperimentRequest& req) {
  return ContentKey(req.config, WorkloadTraceRef(req.app, req.scale));
}

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      metrics_(opts_.metrics != nullptr ? opts_.metrics
                                        : &ServeMetrics::Global()),
      registry_(opts_.registry != nullptr ? opts_.registry
                                          : &obs::Registry::Global()),
      cache_(opts_.cache_dir) {
  if (!opts_.key_fn) opts_.key_fn = DefaultKeyFn;
  if (opts_.workers == 0) opts_.workers = 1;
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  pool_ = std::make_unique<WorkerPool>(opts_.worker, opts_.workers);
}

Server::~Server() { Stop(); }

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

bool Server::Start(std::string* err) {
  if (opts_.socket_path.empty()) {
    if (err != nullptr) *err = "socket_path is required";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "socket path too long: " + opts_.socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(opts_.socket_path.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    if (err != nullptr) {
      *err = std::string("bind/listen ") + opts_.socket_path + ": " +
             std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::pipe2(wake_pipe_, O_CLOEXEC) != 0) {
    if (err != nullptr) *err = std::string("pipe2: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  dispatchers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    dispatchers_.emplace_back([this, i] { DispatchLoop(i); });
  }
  return true;
}

void Server::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 || draining()) return;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = cfd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    std::lock_guard<std::mutex> lock(readers_mu_);
    readers_.emplace_back([this, conn] { ReaderLoop(conn); });
  }
}

void Server::ReaderLoop(std::shared_ptr<Conn> conn) {
  for (;;) {
    FrameType type{};
    std::string payload;
    const ReadStatus st = ReadFrame(conn->fd, &type, &payload);
    if (st != ReadStatus::kOk) return;  // EOF, error or malformed: close

    switch (type) {
      case FrameType::kPing: {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        WriteFrame(conn->fd, FrameType::kPong, "");
        break;
      }
      case FrameType::kRequest: {
        metrics_->requests_total->Add();
        ExperimentRequest req;
        std::string err;
        if (!ExperimentRequest::Parse(payload, &req, &err)) {
          ExperimentResponse resp;
          resp.error = robust::RunError::kRunFailed;
          resp.detail = "bad request: " + err;
          metrics_->responses_failed->Add();
          Respond(conn, resp);
          break;
        }
        Admit(conn, std::move(req));
        break;
      }
      case FrameType::kMetricsRequest:
        HandleMetricsRequest(conn, payload);
        break;
      case FrameType::kShutdown: {
        // Begin the drain but do NOT join threads from here (this IS a
        // reader thread); the owner observes draining() and calls
        // Stop(), which completes the teardown.
        {
          std::lock_guard<std::mutex> lock(mu_);
          draining_ = true;
        }
        queue_cv_.notify_all();
        std::lock_guard<std::mutex> lock(conn->write_mu);
        WriteFrame(conn->fd, FrameType::kShutdownAck, "");
        break;
      }
      default:
        // Unknown frame type: protocol violation; drop the connection.
        return;
    }
  }
}

void Server::Admit(const std::shared_ptr<Conn>& conn, ExperimentRequest req) {
  ExperimentResponse reject;
  reject.id = req.id;
  reject.error = robust::RunError::kQueueRejected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      reject.detail = "server is draining";
      metrics_->rejected_draining->Add();
    } else if (queue_.size() >= opts_.queue_capacity) {
      reject.detail = "admission queue full (" +
                      std::to_string(opts_.queue_capacity) + ")";
      reject.retry_after_ms = opts_.retry_after_ms;
      metrics_->rejected_queue_full->Add();
    } else {
      Job job;
      job.req = std::move(req);
      job.conn = conn;
      queue_.push_back(std::move(job));
      metrics_->queue_depth->Add(1);
      queue_cv_.notify_one();
      return;
    }
  }
  Respond(conn, reject);
}

void Server::DispatchLoop(std::size_t slot) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and nothing left to serve
      job = std::move(queue_.front());
      queue_.pop_front();
      metrics_->queue_depth->Sub(1);
    }
    metrics_->queue_wait_us->Observe(MicrosOf(job.admitted));
    ServeJob(slot, job);
  }
}

ExperimentResponse Server::RunOnWorker(std::size_t slot,
                                       const ExperimentRequest& req) {
  RetryBudget budget = opts_.budget;
  if (req.deadline_ms != 0) budget.deadline_ms = req.deadline_ms;
  return pool_->slot(slot).Execute(pool_->spec(), req, budget, metrics_);
}

void Server::ServeJob(std::size_t slot, Job& job) {
  metrics_->inflight->Add(1);
  const std::string key = job.req.nocache ? "" : opts_.key_fn(job.req);

  ExperimentResponse resp;
  if (key.empty()) {
    resp = RunOnWorker(slot, job.req);
  } else {
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(flights_mu_);
      auto it = flights_.find(key);
      if (it != flights_.end()) {
        flight = it->second;
      } else {
        flight = std::make_shared<Flight>();
        flights_.emplace(key, flight);
        leader = true;
      }
    }
    if (leader) {
      if (auto hit = cache_.Load(key)) {
        resp.id = job.req.id;
        resp.error = robust::RunError::kNone;
        resp.result = std::move(*hit);
        resp.cached = true;
        metrics_->cache_hits->Add();
      } else {
        resp = RunOnWorker(slot, job.req);
        if (resp.ok() && cache_.Store(key, resp.result)) {
          metrics_->cache_stores->Add();
        }
      }
      {
        std::lock_guard<std::mutex> lock(flight->mu);
        flight->resp = resp;
        flight->done = true;
      }
      flight->cv.notify_all();
      std::lock_guard<std::mutex> lock(flights_mu_);
      flights_.erase(key);
    } else {
      // Coalesced duplicate: wait for the leader's terminal response.
      std::unique_lock<std::mutex> lock(flight->mu);
      flight->cv.wait(lock, [&flight] { return flight->done; });
      resp = flight->resp;
      resp.id = job.req.id;
      if (resp.ok()) {
        resp.cached = true;
        metrics_->cache_hits->Add();
      }
    }
  }

  if (resp.ok()) {
    metrics_->responses_ok->Add();
  } else {
    metrics_->responses_failed->Add();
  }
  metrics_->latency_us->Observe(MicrosOf(job.admitted));
  // Decrement BEFORE writing the response: once a client observes its
  // reply, the gauges must already be quiescent (tests poll them).
  metrics_->inflight->Sub(1);
  Respond(job.conn, resp);
}

void Server::Respond(const std::shared_ptr<Conn>& conn,
                     const ExperimentResponse& resp) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  // A write failure means the client hung up; its request was still
  // served (or typed-failed) and counted -- nothing to do.
  WriteFrame(conn->fd, FrameType::kResponse, resp.Serialize());
}

void Server::HandleMetricsRequest(const std::shared_ptr<Conn>& conn,
                                  const std::string& what) {
  std::ostringstream os;
  if (what == "deterministic") {
    WriteDeterministicText(os, *registry_);
  } else if (what == "json") {
    registry_->WriteJson(os);
  } else {
    registry_->WriteText(os);  // "prom" and anything else
  }
  const std::string text = os.str();
  std::lock_guard<std::mutex> lock(conn->write_mu);
  WriteFrame(conn->fd, FrameType::kMetricsReply, text);
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
    draining_ = true;
  }
  queue_cv_.notify_all();
  // Nudge the accept loop out of poll().
  if (wake_pipe_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Dispatchers drain every admitted job before exiting: each admitted
  // request gets exactly one response.
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }

  // Now that all responses are written, sever the connections so the
  // reader threads unblock, and join them.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  {
    std::lock_guard<std::mutex> lock(readers_mu_);
    for (std::thread& t : readers_) {
      if (t.joinable()) t.join();
    }
    readers_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) ::close(conn->fd);
    conns_.clear();
  }

  for (std::size_t i = 0; i < pool_->size(); ++i) pool_->slot(i).Kill();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(opts_.socket_path.c_str());
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

}  // namespace dlpsim::serve
