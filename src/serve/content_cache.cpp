#include "serve/content_cache.h"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <thread>

namespace dlpsim::serve {

namespace {
// Appended as the last line of every entry; an entry without it was
// interrupted mid-write and is treated as a miss.
constexpr const char* kFooter = "#complete";
}  // namespace

std::uint64_t Fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string_view BinaryVersion() { return kBinaryVersion; }

namespace {
std::string Hex16(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}
}  // namespace

std::string ContentKey(std::string_view config_text, std::string_view trace_ref,
                       std::string_view binary_version) {
  return Hex16(Fnv1a64(config_text)) + "-" + Hex16(Fnv1a64(trace_ref)) + "-" +
         Hex16(Fnv1a64(binary_version));
}

std::string WorkloadTraceRef(std::string_view app, double scale) {
  std::ostringstream os;
  os << "app " << app << " scale " << scale;
  return os.str();
}

ContentCache::ContentCache(std::filesystem::path dir) : dir_(std::move(dir)) {}

std::filesystem::path ContentCache::PathFor(std::string_view key) const {
  return dir_ / (std::string(key) + ".res");
}

std::optional<std::string> ContentCache::Load(std::string_view key) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(PathFor(key));
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  const std::string footer = std::string(kFooter) + "\n";
  if (text.size() < footer.size() ||
      text.compare(text.size() - footer.size(), footer.size(), footer) != 0) {
    return std::nullopt;  // truncated / foreign entry
  }
  text.resize(text.size() - footer.size());
  return text;
}

bool ContentCache::Store(std::string_view key, std::string_view payload) const {
  if (!enabled()) return false;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_, ec);

  const fs::path path = PathFor(key);
  // Unique temp name per process and thread: concurrent writers of the
  // same key never collide, and rename() is atomic in-directory.
  std::ostringstream tmp_name;
  tmp_name << path.filename().string() << ".tmp." << ::getpid() << '.'
           << std::this_thread::get_id();
  const fs::path tmp = dir_ / tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) return false;
    out << payload << kFooter << '\n';
    if (!out) {
      out.close();
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace dlpsim::serve
