// Content-addressed result cache for the experiment server.
//
// Generalizes the bench harness's `.dlpsim_cache` (which keys on the
// *names* of app/config) to true content addressing: an entry's key is
//
//   key = fnv64(config canonical text) x fnv64(trace/workload ref)
//         x fnv64(binary version)
//
// rendered as three fixed-width hex components. Renaming a config preset
// keeps its cache entries; editing any simulation-relevant field -- or
// shipping a new simulator binary -- invalidates them, because the hash
// input changed. The three components stay visible in the filename so a
// human can tell *which* axis moved between two entries.
//
// Entries are written with the same crash-safe discipline as the bench
// cache: unique temp name, payload, a "#complete" footer appended last,
// atomic rename() into place. A truncated or concurrent entry is never
// served. Entry bytes are a pure function of the simulation result, so
// two servers (or one server at any worker count) produce byte-identical
// entries for the same key -- pinned by tests/serve/.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

namespace dlpsim::serve {

/// FNV-1a 64-bit hash (stable across platforms and builds).
std::uint64_t Fnv1a64(std::string_view data);

/// The version stamp baked into this binary's cache keys. Bump
/// kBinaryVersion whenever simulation behaviour changes; the old
/// entries key away automatically.
inline constexpr const char* kBinaryVersion = "dlpsim-serve-1";
std::string_view BinaryVersion();

/// Builds the composite key from the three content components.
/// `config_text` should be sim::CanonicalText(cfg) (any stable full
/// serialization works); `trace_ref` names the workload deterministically
/// (for generated workloads: "app <abbr> scale <s>"; for trace-replay
/// requests: trace::TraceFileRef -- the trace's content hash over
/// canonical packed bytes, identical for text and DLPT packed copies of
/// the same record sequence).
std::string ContentKey(std::string_view config_text, std::string_view trace_ref,
                       std::string_view binary_version = BinaryVersion());

/// Deterministic trace reference for a generated workload.
std::string WorkloadTraceRef(std::string_view app, double scale);

class ContentCache {
 public:
  /// `dir` is created lazily on first Store. An empty dir disables the
  /// cache (Load always misses, Store is a no-op).
  explicit ContentCache(std::filesystem::path dir);

  bool enabled() const { return !dir_.empty(); }
  const std::filesystem::path& dir() const { return dir_; }

  std::filesystem::path PathFor(std::string_view key) const;

  /// Returns the stored payload, or nullopt on miss / truncated entry.
  std::optional<std::string> Load(std::string_view key) const;

  /// Best-effort atomic store; returns false when the entry could not be
  /// written (cache failures must never fail the request).
  bool Store(std::string_view key, std::string_view payload) const;

 private:
  std::filesystem::path dir_;
};

}  // namespace dlpsim::serve
