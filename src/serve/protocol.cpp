#include "serve/protocol.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "exec/timing.h"

namespace dlpsim::serve {

const char* ToString(FrameType t) {
  switch (t) {
    case FrameType::kRequest:
      return "request";
    case FrameType::kResponse:
      return "response";
    case FrameType::kMetricsRequest:
      return "metrics_request";
    case FrameType::kMetricsReply:
      return "metrics_reply";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kShutdownAck:
      return "shutdown_ack";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
  }
  return "?";
}

const char* ToString(ReadStatus s) {
  switch (s) {
    case ReadStatus::kOk:
      return "ok";
    case ReadStatus::kEof:
      return "eof";
    case ReadStatus::kError:
      return "error";
    case ReadStatus::kTimeout:
      return "timeout";
    case ReadStatus::kMalformed:
      return "malformed";
  }
  return "?";
}

namespace {

void SetErr(std::string* err, const char* what) {
  if (err != nullptr) {
    *err = std::string(what) + ": " + std::strerror(errno);
  }
}

/// Sends all of `data`, retrying partial sends and EINTR. MSG_NOSIGNAL:
/// a dead peer is EPIPE, never SIGPIPE.
bool SendAll(int fd, const char* data, std::size_t len, std::string* err) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetErr(err, "send");
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void PutU32(char* p, std::uint32_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
  p[2] = static_cast<char>((v >> 16) & 0xff);
  p[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t GetU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Receives exactly `len` bytes within the remaining budget. `first_byte`
/// distinguishes "EOF at a frame boundary" (orderly) from "EOF mid-frame"
/// (peer died mid-message -- reported as an error).
ReadStatus RecvAll(int fd, char* out, std::size_t len, bool at_frame_start,
                   const exec::Stopwatch& clock, int timeout_ms,
                   std::string* err) {
  std::size_t off = 0;
  while (off < len) {
    if (timeout_ms >= 0) {
      const double elapsed_ms = clock.Seconds() * 1000.0;
      const double remain = static_cast<double>(timeout_ms) - elapsed_ms;
      if (remain <= 0) return ReadStatus::kTimeout;
      struct pollfd pfd{fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(remain) + 1);
      if (pr < 0) {
        if (errno == EINTR) continue;
        SetErr(err, "poll");
        return ReadStatus::kError;
      }
      if (pr == 0) return ReadStatus::kTimeout;
    }
    const ssize_t n = ::recv(fd, out + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetErr(err, "recv");
      return ReadStatus::kError;
    }
    if (n == 0) {
      if (at_frame_start && off == 0) return ReadStatus::kEof;
      if (err != nullptr) *err = "connection closed mid-frame";
      return ReadStatus::kError;
    }
    off += static_cast<std::size_t>(n);
  }
  return ReadStatus::kOk;
}

}  // namespace

bool WriteFrame(int fd, FrameType type, std::string_view payload,
                std::string* err) {
  if (payload.size() > kMaxFramePayload) {
    if (err != nullptr) *err = "payload exceeds kMaxFramePayload";
    return false;
  }
  char header[kFrameHeaderBytes];
  PutU32(header, kFrameMagic);
  header[4] = static_cast<char>(type);
  header[5] = 0;
  header[6] = 0;
  header[7] = 0;
  PutU32(header + 8, static_cast<std::uint32_t>(payload.size()));
  if (!SendAll(fd, header, sizeof(header), err)) return false;
  return payload.empty() || SendAll(fd, payload.data(), payload.size(), err);
}

ReadStatus ReadFrame(int fd, FrameType* type, std::string* payload,
                     std::string* err, int timeout_ms) {
  const exec::Stopwatch clock;
  unsigned char header[kFrameHeaderBytes];
  ReadStatus st = RecvAll(fd, reinterpret_cast<char*>(header), sizeof(header),
                          /*at_frame_start=*/true, clock, timeout_ms, err);
  if (st != ReadStatus::kOk) return st;

  if (GetU32(header) != kFrameMagic || header[5] != 0 || header[6] != 0 ||
      header[7] != 0) {
    if (err != nullptr) *err = "bad frame header (magic/reserved)";
    return ReadStatus::kMalformed;
  }
  const std::uint32_t len = GetU32(header + 8);
  if (len > kMaxFramePayload) {
    if (err != nullptr) {
      *err = "frame payload length " + std::to_string(len) +
             " exceeds the 64 MiB cap";
    }
    return ReadStatus::kMalformed;
  }
  if (type != nullptr) *type = static_cast<FrameType>(header[4]);

  payload->resize(len);
  if (len == 0) return ReadStatus::kOk;
  st = RecvAll(fd, payload->data(), len, /*at_frame_start=*/false, clock,
               timeout_ms, err);
  return st;
}

}  // namespace dlpsim::serve
