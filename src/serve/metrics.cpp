#include "serve/metrics.h"

#include <array>

namespace dlpsim::serve {

namespace {
// Attempt counts are tiny integers; latencies span us..10s.
constexpr std::array<std::uint64_t, 4> kAttemptBounds = {1, 2, 3, 4};
constexpr std::array<std::uint64_t, 7> kLatencyBoundsUs = {
    100, 1'000, 10'000, 100'000, 1'000'000, 3'000'000, 10'000'000};
}  // namespace

ServeMetrics::ServeMetrics(obs::Registry& r) {
  requests_total = r.GetCounter("serve", "requests_total",
                                "experiment requests accepted off a socket");
  responses_ok = r.GetCounter("serve", "responses_ok",
                              "requests served with error=none");
  responses_failed = r.GetCounter(
      "serve", "responses_failed", "requests that ended in a typed failure");
  rejected_queue_full =
      r.GetCounter("serve", "rejected_queue_full",
                   "requests rejected because the admission queue was full");
  rejected_draining = r.GetCounter(
      "serve", "rejected_draining",
      "requests rejected because the server was draining on SIGTERM");
  cache_hits = r.GetCounter("serve", "cache_hits",
                            "requests served from the content-addressed "
                            "cache (disk hits + coalesced duplicates)");
  cache_stores = r.GetCounter("serve", "cache_stores",
                              "results written to the content-addressed cache");
  worker_crashes = r.GetCounter(
      "serve", "worker_crashes",
      "worker process deaths observed (segfault/abort/SIGKILL/exit)");
  worker_restarts = r.GetCounter("serve", "worker_restarts",
                                 "worker respawns after a death");
  deadline_kills = r.GetCounter(
      "serve", "deadline_kills",
      "workers SIGKILLed because a request deadline expired");
  retries = r.GetCounter("serve", "retries",
                         "extra request attempts consumed by retry");
  runs_executed = r.GetCounter("serve", "runs_executed",
                               "requests dispatched to a worker process");
  queue_depth =
      r.GetGauge("serve", "queue_depth", "admitted requests awaiting dispatch");
  inflight = r.GetGauge("serve", "inflight",
                        "requests currently executing on a worker");
  request_attempts =
      r.GetHistogram("serve", "request_attempts", kAttemptBounds,
                     "attempts consumed per terminal response");
  latency_us = r.GetHistogram("serve_wall", "latency_us", kLatencyBoundsUs,
                              "request latency, admission to response");
  queue_wait_us = r.GetHistogram("serve_wall", "queue_wait_us",
                                 kLatencyBoundsUs,
                                 "queue wait, admission to dispatch");
}

ServeMetrics& ServeMetrics::Global() {
  static ServeMetrics m(obs::Registry::Global());
  return m;
}

void WriteDeterministicText(std::ostream& os, const obs::Registry& registry) {
  os << "# serve-metrics v1 (deterministic scope only)\n";
  for (const obs::MetricSample& s : registry.Snapshot()) {
    if (s.info.scope != "serve") continue;
    switch (s.info.kind) {
      case obs::MetricKind::kCounter:
        os << s.info.name << ' ' << s.counter << '\n';
        break;
      case obs::MetricKind::kGauge:
        os << s.info.name << ' ' << s.gauge << '\n';
        break;
      case obs::MetricKind::kHistogram: {
        for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
          os << s.info.name << "_le_";
          if (i < s.bounds.size()) {
            os << s.bounds[i];
          } else {
            os << "inf";
          }
          os << ' ' << s.bucket_counts[i] << '\n';
        }
        os << s.info.name << "_count " << s.count << '\n';
        os << s.info.name << "_sum " << s.sum << '\n';
        break;
      }
    }
  }
}

}  // namespace dlpsim::serve
