// Length-prefixed frame protocol for dlpsim-as-a-service.
//
// Every message on a serve socket (client <-> server and server <->
// worker) is one frame:
//
//   offset  size  field
//   0       4     magic "DLPS" (0x44 0x4C 0x50 0x53)
//   4       1     type (FrameType)
//   5       1     flags (reserved, must be 0)
//   6       2     reserved (must be 0)
//   8       4     payload length N, little-endian
//   12      N     payload bytes
//
// Payloads are text (see serve/request.h for the request/response
// grammar); the framing itself is 8-bit clean. Frames above
// kMaxFramePayload are rejected before any allocation so a corrupt or
// hostile length prefix can not OOM the server.
//
// All I/O goes through send/recv with MSG_NOSIGNAL so a peer that died
// mid-conversation produces EPIPE (handled as data) instead of SIGPIPE
// (process death) -- essential for a daemon whose workers are expected
// to crash. Reads and writes retry on EINTR and handle partial
// transfers; ReadFrame optionally enforces a wall-clock budget via
// poll(), which is how per-request deadlines are enforced against a
// wedged worker.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dlpsim::serve {

inline constexpr std::uint32_t kFrameMagic = 0x53504C44u;  // "DLPS" LE
inline constexpr std::size_t kFrameHeaderBytes = 12;
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

enum class FrameType : std::uint8_t {
  kRequest = 1,       // ExperimentRequest text
  kResponse = 2,      // ExperimentResponse text (+ result payload)
  kMetricsRequest = 3,  // payload: "deterministic" | "prom" | "json"
  kMetricsReply = 4,    // payload: the requested exposition
  kShutdown = 5,      // admin: begin graceful drain
  kShutdownAck = 6,   // server acknowledges the drain request
  kPing = 7,
  kPong = 8,
};

const char* ToString(FrameType t);

enum class ReadStatus {
  kOk,         // a complete, well-formed frame was read
  kEof,        // orderly close before any byte of this frame
  kError,      // socket error (errno-style detail in *err)
  kTimeout,    // the budget expired mid-frame or before one arrived
  kMalformed,  // bad magic / nonzero reserved bits / oversized payload
};

const char* ToString(ReadStatus s);

/// Writes one frame, handling partial sends and EINTR. Returns false on
/// any socket error (detail in *err when non-null).
bool WriteFrame(int fd, FrameType type, std::string_view payload,
                std::string* err = nullptr);

/// Reads one complete frame. `timeout_ms` < 0 blocks forever; otherwise
/// it is a budget over the whole frame (poll before every recv). A
/// malformed header consumes the connection -- the caller must close it;
/// resynchronizing a length-prefixed stream is not possible.
ReadStatus ReadFrame(int fd, FrameType* type, std::string* payload,
                     std::string* err = nullptr, int timeout_ms = -1);

}  // namespace dlpsim::serve
