// Client side of dlpsim-as-a-service: a blocking single-connection
// client plus a deterministic replaying load generator.
//
// A Client owns one AF_UNIX connection and issues one request at a
// time (write kRequest, read kResponse). The load generator opens one
// Client per concurrent "virtual user"; virtual user t replays the
// request stream indices t, t+C, t+2C, ... so the SET of requests is a
// pure function of (seed, total, chaos_pct) -- independent of thread
// scheduling. That is what lets the serve stress suite demand a
// byte-identical deterministic metrics dump across two replays.
//
// Fault-injected requests (every (100/chaos_pct)-th slot of the
// deterministic stream) carry a content-driven chaos directive
// ("crash:1": the worker aborts on attempt 1 and succeeds on attempt 2)
// and set nocache, so their retry/crash counters are also functions of
// the stream alone.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/request.h"

namespace dlpsim::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a server's AF_UNIX socket.
  bool Connect(const std::string& socket_path, std::string* err = nullptr);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// One blocking request/response round trip. Returns false only on
  /// transport failure (typed failures arrive as a normal response).
  bool Call(const ExperimentRequest& req, ExperimentResponse* resp,
            std::string* err = nullptr, int timeout_ms = -1);

  /// Call(), but on kQueueRejected with a retry hint sleeps
  /// retry_after_ms and resends, up to `max_retries` times. The final
  /// response may still be kQueueRejected (e.g. the server is draining).
  /// When non-null, *retries_out is incremented once per resend.
  bool CallWithRetry(const ExperimentRequest& req, ExperimentResponse* resp,
                     int max_retries, std::string* err = nullptr,
                     int timeout_ms = -1,
                     std::uint64_t* retries_out = nullptr);

  /// Fetches a metrics exposition: "deterministic", "prom" or "json".
  bool FetchMetrics(const std::string& what, std::string* out,
                    std::string* err = nullptr);

  /// Requests a graceful drain; true once the server acks.
  bool Shutdown(std::string* err = nullptr);

  /// Liveness probe (kPing/kPong round trip).
  bool Ping(std::string* err = nullptr);

 private:
  int fd_ = -1;
};

/// Deterministic load-generator parameters.
struct LoadGenOptions {
  std::string socket_path;
  std::uint64_t requests = 1000;
  std::size_t concurrency = 8;
  std::uint64_t seed = 42;
  /// Percent (0..100) of request slots that carry a "crash:1" chaos
  /// directive (worker aborts on attempt 1; request succeeds on retry).
  std::uint64_t chaos_pct = 0;
  std::uint64_t deadline_ms = 0;       // 0 = server default
  int reject_retries = 200;            // CallWithRetry budget per request
  int timeout_ms = 120000;             // transport timeout per round trip
  /// The mixed grid a request slot is drawn from (index = HashMix of
  /// seed and slot). Empty = a built-in app/config grid.
  std::vector<std::string> apps;
  std::vector<std::string> configs;
  std::vector<double> scales;
};

/// Outcome of a replay. `accounted` is the invariant the chaos/stress
/// suites assert: every request ended as exactly one of ok / typed
/// failure -- nothing lost, nothing double-counted.
struct LoadGenStats {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;           // typed failures (incl. rejects)
  std::uint64_t cached = 0;           // ok responses with cached=true
  std::uint64_t transport_errors = 0; // Call() itself failed
  std::uint64_t reject_retries = 0;   // resends after kQueueRejected
  std::map<std::string, std::uint64_t> failures_by_kind;
  bool accounted() const {
    return sent == ok + failed + transport_errors;
  }
};

/// Materializes request slot `i` of the deterministic stream (exposed
/// so tests can pin the stream itself).
ExperimentRequest MakeLoadGenRequest(const LoadGenOptions& opts,
                                     std::uint64_t i);

/// Replays opts.requests requests over opts.concurrency connections.
/// Returns false (with *err) only when a connection could not even be
/// established; per-request failures are data in *stats.
bool RunLoadGen(const LoadGenOptions& opts, LoadGenStats* stats,
                std::string* err = nullptr);

}  // namespace dlpsim::serve
