#include "serve/worker_pool.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "exec/timing.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/worker.h"

namespace dlpsim::serve {

namespace {

void Backoff(const RetryBudget& budget, int attempt) {
  if (budget.backoff_ms == 0 || attempt < 2) return;
  // backoff_ms * 2^(attempt-2), capped so a long retry chain cannot
  // sleep past any plausible deadline.
  const std::uint64_t shift = static_cast<std::uint64_t>(attempt - 2);
  const std::uint64_t ms =
      shift >= 10 ? budget.backoff_ms << 10 : budget.backoff_ms << shift;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(ms > 2000 ? 2000 : ms));
}

std::string DescribeStatus(int status) {
  if (WIFSIGNALED(status)) {
    return "signal " + std::to_string(WTERMSIG(status));
  }
  if (WIFEXITED(status)) {
    return "exit " + std::to_string(WEXITSTATUS(status));
  }
  return "status " + std::to_string(status);
}

}  // namespace

WorkerSlot::~WorkerSlot() { Kill(); }

bool WorkerSlot::Spawn(const WorkerSpec& spec, std::string* err) {
  Kill();
  if (spec.argv.empty()) {
    if (err != nullptr) *err = "empty worker argv";
    return false;
  }
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
    if (err != nullptr) {
      *err = std::string("socketpair: ") + std::strerror(errno);
    }
    return false;
  }

  // argv + "--worker-fd <n>".
  std::vector<std::string> args = spec.argv;
  args.push_back("--worker-fd");
  args.push_back(std::to_string(kWorkerProtocolFd));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (err != nullptr) *err = std::string("fork: ") + std::strerror(errno);
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    // Child. Only async-signal-safe calls until exec. Move our end of
    // the socketpair onto the protocol fd; dup2 clears CLOEXEC on the
    // duplicate, and every other serve fd was opened CLOEXEC, so the
    // worker inherits exactly one descriptor of ours.
    if (sv[1] == kWorkerProtocolFd) {
      const int flags = ::fcntl(sv[1], F_GETFD);
      if (flags < 0 ||
          ::fcntl(sv[1], F_SETFD, flags & ~FD_CLOEXEC) < 0) {
        ::_exit(126);
      }
    } else if (::dup2(sv[1], kWorkerProtocolFd) < 0) {
      ::_exit(126);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed
  }

  ::close(sv[1]);
  pid_ = pid;
  fd_ = sv[0];
  return true;
}

void WorkerSlot::Reap() {
  if (pid_ <= 0) return;
  int status = 0;
  // The child is dead or dying (EOF observed or SIGKILL sent); a
  // blocking wait cannot hang. EINTR is retried.
  while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
  }
  last_death_ = DescribeStatus(status);
  pid_ = -1;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WorkerSlot::Kill() {
  if (pid_ <= 0) return;
  ::kill(pid_, SIGKILL);
  Reap();
}

ExperimentResponse WorkerSlot::Execute(const WorkerSpec& spec,
                                       const ExperimentRequest& req,
                                       const RetryBudget& budget,
                                       ServeMetrics* metrics) {
  const exec::Stopwatch clock;
  const int max_attempts = budget.max_attempts < 1 ? 1 : budget.max_attempts;

  ExperimentResponse resp;
  resp.id = req.id;
  int crashes = 0;

  const auto remaining_ms = [&]() -> std::int64_t {
    if (budget.deadline_ms == 0) return -1;  // unbounded
    const double elapsed = clock.Seconds() * 1000.0;
    const double left = static_cast<double>(budget.deadline_ms) - elapsed;
    return left <= 0 ? 0 : static_cast<std::int64_t>(left) + 1;
  };

  const auto finish = [&](robust::RunError e, std::string detail,
                          int attempts) {
    resp.error = e;
    resp.detail = std::move(detail);
    resp.attempts = attempts;
    resp.worker_crashes = crashes;
    if (metrics != nullptr) {
      metrics->request_attempts->Observe(
          static_cast<std::uint64_t>(attempts));
      if (attempts > 1) {
        metrics->retries->Add(static_cast<std::uint64_t>(attempts - 1));
      }
    }
    return resp;
  };

  std::string last_failure = "never attempted";
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) Backoff(budget, attempt);
    if (budget.deadline_ms != 0 && remaining_ms() == 0) {
      return finish(robust::RunError::kDeadlineExceeded,
                    "deadline of " + std::to_string(budget.deadline_ms) +
                        "ms expired before attempt " +
                        std::to_string(attempt) + " (last: " + last_failure +
                        ")",
                    attempt - 1);
    }

    std::string err;
    if (!alive()) {
      if (!Spawn(spec, &err)) {
        last_failure = "spawn failed: " + err;
        continue;  // maybe transient (EAGAIN); the budget bounds us
      }
    }

    ExperimentRequest wire = req;
    wire.attempt = attempt;
    if (metrics != nullptr) metrics->runs_executed->Add();
    if (!WriteFrame(fd_, FrameType::kRequest, wire.Serialize(), &err)) {
      // The worker died between requests; treat exactly like a crash
      // observed mid-request. SIGKILL first so a child that merely
      // closed its fd cannot make the blocking reap hang.
      Kill();
      ++crashes;
      if (metrics != nullptr) {
        metrics->worker_crashes->Add();
        metrics->worker_restarts->Add();
      }
      last_failure = "write failed (" + err + "), worker " + last_death_;
      continue;
    }

    FrameType type{};
    std::string payload;
    const std::int64_t left = remaining_ms();
    const ReadStatus st =
        ReadFrame(fd_, &type, &payload, &err,
                  left < 0 ? -1 : static_cast<int>(left));
    if (st == ReadStatus::kTimeout) {
      // The request's wall budget is gone: kill the wedged worker and
      // report the deadline. No retry -- there is no time left to spend.
      Kill();
      if (metrics != nullptr) {
        metrics->deadline_kills->Add();
        metrics->worker_crashes->Add();
        metrics->worker_restarts->Add();
      }
      ++crashes;
      return finish(robust::RunError::kDeadlineExceeded,
                    "deadline of " + std::to_string(budget.deadline_ms) +
                        "ms expired on attempt " + std::to_string(attempt) +
                        "; worker killed",
                    attempt);
    }
    if (st != ReadStatus::kOk || type != FrameType::kResponse) {
      // EOF, socket error or protocol corruption: the worker is gone or
      // unusable. SIGKILL (a no-op on an already-dead child), reap, and
      // retry on a fresh one.
      Kill();
      ++crashes;
      if (metrics != nullptr) {
        metrics->worker_crashes->Add();
        metrics->worker_restarts->Add();
      }
      last_failure = "worker died (" + std::string(ToString(st)) +
                     (err.empty() ? "" : ": " + err) + "), " + last_death_;
      continue;
    }

    ExperimentResponse worker_resp;
    if (!ExperimentResponse::Parse(payload, &worker_resp, &err)) {
      Kill();
      ++crashes;
      if (metrics != nullptr) {
        metrics->worker_crashes->Add();
        metrics->worker_restarts->Add();
      }
      last_failure = "unparsable worker response: " + err;
      continue;
    }

    if (worker_resp.ok()) {
      resp.error = robust::RunError::kNone;
      resp.result = std::move(worker_resp.result);
      return finish(robust::RunError::kNone, "", attempt);
    }
    // Typed in-run failure (fault injection, watchdog, bad workload):
    // failure-as-data. Retry within budget; deterministic failures fail
    // again and surface with their real kind and the attempt count.
    last_failure = std::string(robust::ToString(worker_resp.error)) + ": " +
                   worker_resp.detail;
    if (attempt == max_attempts) {
      return finish(worker_resp.error, worker_resp.detail, attempt);
    }
  }
  return finish(robust::RunError::kWorkerCrash, last_failure, max_attempts);
}

WorkerPool::WorkerPool(WorkerSpec spec, std::size_t n) : spec_(std::move(spec)) {
  slots_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
}

}  // namespace dlpsim::serve
