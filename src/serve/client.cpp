#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "serve/protocol.h"
#include "sim/rng.h"

namespace dlpsim::serve {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::Connect(const std::string& socket_path, std::string* err) {
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "bad socket path: " + socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (err != nullptr) {
      *err = "connect " + socket_path + ": " + std::strerror(errno);
    }
    Close();
    return false;
  }
  return true;
}

bool Client::Call(const ExperimentRequest& req, ExperimentResponse* resp,
                  std::string* err, int timeout_ms) {
  if (fd_ < 0) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  if (!WriteFrame(fd_, FrameType::kRequest, req.Serialize(), err)) {
    return false;
  }
  FrameType type{};
  std::string payload;
  const ReadStatus st = ReadFrame(fd_, &type, &payload, err, timeout_ms);
  if (st != ReadStatus::kOk) {
    if (err != nullptr && err->empty()) *err = ToString(st);
    return false;
  }
  if (type != FrameType::kResponse) {
    if (err != nullptr) {
      *err = std::string("unexpected frame: ") + ToString(type);
    }
    return false;
  }
  return ExperimentResponse::Parse(payload, resp, err);
}

bool Client::CallWithRetry(const ExperimentRequest& req,
                           ExperimentResponse* resp, int max_retries,
                           std::string* err, int timeout_ms,
                           std::uint64_t* retries_out) {
  for (int attempt = 0;; ++attempt) {
    if (!Call(req, resp, err, timeout_ms)) return false;
    if (resp->error != robust::RunError::kQueueRejected ||
        resp->retry_after_ms == 0 || attempt >= max_retries) {
      return true;
    }
    if (retries_out != nullptr) ++*retries_out;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(resp->retry_after_ms));
  }
}

bool Client::FetchMetrics(const std::string& what, std::string* out,
                          std::string* err) {
  if (fd_ < 0) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  if (!WriteFrame(fd_, FrameType::kMetricsRequest, what, err)) return false;
  FrameType type{};
  const ReadStatus st = ReadFrame(fd_, &type, out, err);
  if (st != ReadStatus::kOk || type != FrameType::kMetricsReply) {
    if (err != nullptr && err->empty()) *err = ToString(st);
    return false;
  }
  return true;
}

bool Client::Shutdown(std::string* err) {
  if (fd_ < 0) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  if (!WriteFrame(fd_, FrameType::kShutdown, "", err)) return false;
  FrameType type{};
  std::string payload;
  const ReadStatus st = ReadFrame(fd_, &type, &payload, err);
  if (st != ReadStatus::kOk || type != FrameType::kShutdownAck) {
    if (err != nullptr && err->empty()) *err = ToString(st);
    return false;
  }
  return true;
}

bool Client::Ping(std::string* err) {
  if (fd_ < 0) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  if (!WriteFrame(fd_, FrameType::kPing, "", err)) return false;
  FrameType type{};
  std::string payload;
  const ReadStatus st = ReadFrame(fd_, &type, &payload, err);
  if (st != ReadStatus::kOk || type != FrameType::kPong) {
    if (err != nullptr && err->empty()) *err = ToString(st);
    return false;
  }
  return true;
}

namespace {

// Defaults mirror the bench grid: real registry abbreviations and the
// named configurations of bench::ConfigFor (a stub worker ignores them,
// a real worker simulates them).
const std::vector<std::string>& DefaultApps() {
  static const std::vector<std::string> v = {"BFS", "NW", "MM",  "KM",
                                             "SS",  "BT", "STR"};
  return v;
}

const std::vector<std::string>& DefaultConfigs() {
  static const std::vector<std::string> v = {"base", "dlp", "sb"};
  return v;
}

const std::vector<double>& DefaultScales() {
  static const std::vector<double> v = {0.25, 0.5, 1.0};
  return v;
}

}  // namespace

ExperimentRequest MakeLoadGenRequest(const LoadGenOptions& opts,
                                     std::uint64_t i) {
  const std::vector<std::string>& apps =
      opts.apps.empty() ? DefaultApps() : opts.apps;
  const std::vector<std::string>& configs =
      opts.configs.empty() ? DefaultConfigs() : opts.configs;
  const std::vector<double>& scales =
      opts.scales.empty() ? DefaultScales() : opts.scales;

  const std::uint64_t h = dlpsim::HashMix(opts.seed, i);
  ExperimentRequest req;
  req.id = i + 1;  // ids are 1-based; 0 reads as "unset"
  req.app = apps[h % apps.size()];
  req.config = configs[(h >> 8) % configs.size()];
  req.scale = scales[(h >> 16) % scales.size()];
  req.deadline_ms = opts.deadline_ms;
  if (opts.chaos_pct > 0 && (h >> 24) % 100 < opts.chaos_pct) {
    // Content-driven fault injection: the worker crashes on attempt 1
    // and serves the retry, so outcome counters stay functions of the
    // stream. nocache keeps the (nondeterministically scheduled)
    // single-flight machinery out of failing keys.
    req.chaos = "crash:1";
    req.nocache = true;
  }
  return req;
}

bool RunLoadGen(const LoadGenOptions& opts, LoadGenStats* stats,
                std::string* err) {
  const std::size_t conc =
      opts.concurrency == 0 ? 1 : opts.concurrency;

  std::vector<Client> clients(conc);
  for (std::size_t t = 0; t < conc; ++t) {
    if (!clients[t].Connect(opts.socket_path, err)) return false;
  }

  std::mutex mu;  // guards *stats
  std::vector<std::thread> threads;
  threads.reserve(conc);
  for (std::size_t t = 0; t < conc; ++t) {
    threads.emplace_back([&, t] {
      LoadGenStats local;
      for (std::uint64_t i = t; i < opts.requests; i += conc) {
        const ExperimentRequest req = MakeLoadGenRequest(opts, i);
        ExperimentResponse resp;
        std::string call_err;
        ++local.sent;
        if (!clients[t].CallWithRetry(req, &resp, opts.reject_retries,
                                      &call_err, opts.timeout_ms,
                                      &local.reject_retries)) {
          ++local.transport_errors;
          ++local.failures_by_kind["transport: " + call_err];
          continue;
        }
        if (resp.ok()) {
          ++local.ok;
          if (resp.cached) ++local.cached;
        } else {
          ++local.failed;
          ++local.failures_by_kind[std::string(
              robust::ToString(resp.error))];
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      stats->sent += local.sent;
      stats->ok += local.ok;
      stats->failed += local.failed;
      stats->cached += local.cached;
      stats->transport_errors += local.transport_errors;
      stats->reject_retries += local.reject_retries;
      for (const auto& [k, v] : local.failures_by_kind) {
        stats->failures_by_kind[k] += v;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return true;
}

}  // namespace dlpsim::serve
