#include "serve/request.h"

#include <cstdlib>
#include <sstream>

namespace dlpsim::serve {

namespace {

/// Splits "key rest-of-line"; returns false on a blank line.
bool SplitField(const std::string& line, std::string* key,
                std::string* value) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    if (line.empty()) return false;
    *key = line;
    value->clear();
    return true;
  }
  *key = line.substr(0, sp);
  *value = line.substr(sp + 1);
  return true;
}

bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

void Fail(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what;
}

}  // namespace

std::string SanitizeValue(std::string value) {
  for (char& c : value) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return value;
}

std::string ExperimentRequest::Serialize() const {
  std::ostringstream os;
  os << "id " << id << '\n';
  os << "app " << SanitizeValue(app) << '\n';
  os << "config " << SanitizeValue(config) << '\n';
  os << "scale " << scale << '\n';
  if (!trace.empty()) os << "trace " << SanitizeValue(trace) << '\n';
  if (deadline_ms > 0) os << "deadline_ms " << deadline_ms << '\n';
  if (watchdog_cycles > 0) os << "watchdog_cycles " << watchdog_cycles << '\n';
  if (!faults.empty()) os << "faults " << SanitizeValue(faults) << '\n';
  if (!chaos.empty()) os << "chaos " << SanitizeValue(chaos) << '\n';
  if (nocache) os << "nocache 1\n";
  os << "attempt " << attempt << '\n';
  return os.str();
}

bool ExperimentRequest::Parse(const std::string& text, ExperimentRequest* out,
                              std::string* err) {
  ExperimentRequest r;
  bool saw_app = false;
  bool saw_config = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    std::string key;
    std::string value;
    if (!SplitField(line, &key, &value)) continue;
    if (key == "id") {
      if (!ParseU64(value, &r.id)) return Fail(err, "bad id"), false;
    } else if (key == "app") {
      r.app = value;
      saw_app = !value.empty();
    } else if (key == "config") {
      r.config = value;
      saw_config = !value.empty();
    } else if (key == "scale") {
      if (!ParseDouble(value, &r.scale) || r.scale <= 0.0) {
        return Fail(err, "bad scale"), false;
      }
    } else if (key == "trace") {
      r.trace = value;
    } else if (key == "deadline_ms") {
      if (!ParseU64(value, &r.deadline_ms)) {
        return Fail(err, "bad deadline_ms"), false;
      }
    } else if (key == "watchdog_cycles") {
      if (!ParseU64(value, &r.watchdog_cycles)) {
        return Fail(err, "bad watchdog_cycles"), false;
      }
    } else if (key == "faults") {
      r.faults = value;
    } else if (key == "chaos") {
      r.chaos = value;
    } else if (key == "nocache") {
      r.nocache = (value != "0");
    } else if (key == "attempt") {
      std::uint64_t a = 0;
      if (!ParseU64(value, &a) || a == 0 || a > 1000) {
        return Fail(err, "bad attempt"), false;
      }
      r.attempt = static_cast<int>(a);
    }
    // Unknown keys: ignored (forward compatibility).
  }
  if (!saw_app) return Fail(err, "missing app"), false;
  if (!saw_config) return Fail(err, "missing config"), false;
  *out = std::move(r);
  return true;
}

std::string ExperimentResponse::Serialize() const {
  std::ostringstream os;
  os << "id " << id << '\n';
  os << "error " << robust::ToString(error) << '\n';
  if (!detail.empty()) os << "detail " << SanitizeValue(detail) << '\n';
  os << "attempts " << attempts << '\n';
  if (worker_crashes > 0) os << "worker_crashes " << worker_crashes << '\n';
  if (cached) os << "cached 1\n";
  if (retry_after_ms > 0) os << "retry_after_ms " << retry_after_ms << '\n';
  if (!result.empty()) os << "---\n" << result;
  return os.str();
}

bool ExperimentResponse::Parse(const std::string& text,
                               ExperimentResponse* out, std::string* err) {
  ExperimentResponse r;
  bool saw_error = false;

  // Split on the FIRST "---" line; everything after is the verbatim
  // result payload (which contains its own "---" separator).
  std::string headers = text;
  const std::string sep = "---\n";
  std::size_t cut = std::string::npos;
  if (text.rfind(sep, 0) == 0) {
    cut = 0;
  } else {
    const std::size_t pos = text.find("\n---\n");
    if (pos != std::string::npos) cut = pos + 1;
  }
  if (cut != std::string::npos) {
    headers = text.substr(0, cut);
    r.result = text.substr(cut + sep.size());
  }

  std::istringstream is(headers);
  std::string line;
  while (std::getline(is, line)) {
    std::string key;
    std::string value;
    if (!SplitField(line, &key, &value)) continue;
    if (key == "id") {
      if (!ParseU64(value, &r.id)) return Fail(err, "bad id"), false;
    } else if (key == "error") {
      if (!robust::ParseRunError(value, &r.error)) {
        return Fail(err, "unknown error kind '" + value + "'"), false;
      }
      saw_error = true;
    } else if (key == "detail") {
      r.detail = value;
    } else if (key == "attempts") {
      std::uint64_t a = 0;
      if (!ParseU64(value, &a) || a > 1000) {
        return Fail(err, "bad attempts"), false;
      }
      r.attempts = static_cast<int>(a);
    } else if (key == "worker_crashes") {
      std::uint64_t c = 0;
      if (!ParseU64(value, &c) || c > 1000000) {
        return Fail(err, "bad worker_crashes"), false;
      }
      r.worker_crashes = static_cast<int>(c);
    } else if (key == "cached") {
      r.cached = (value != "0");
    } else if (key == "retry_after_ms") {
      if (!ParseU64(value, &r.retry_after_ms)) {
        return Fail(err, "bad retry_after_ms"), false;
      }
    }
  }
  if (!saw_error) return Fail(err, "missing error field"), false;
  *out = std::move(r);
  return true;
}

}  // namespace dlpsim::serve
