#include "serve/worker.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "serve/protocol.h"

namespace dlpsim::serve {

namespace {

/// Parses "kind:N" chaos directives. Returns true when `directive` is
/// `kind` and the request's attempt is within the injection window.
bool ChaosActive(const std::string& directive, const char* kind,
                 int attempt) {
  const std::string prefix = std::string(kind) + ":";
  if (directive.rfind(prefix, 0) != 0) return false;
  const int upto = std::atoi(directive.c_str() + prefix.size());
  return attempt <= upto;
}

}  // namespace

void MaybeInjectChaos(const ExperimentRequest& req, bool enabled) {
  if (!enabled || req.chaos.empty()) return;
  if (ChaosActive(req.chaos, "crash", req.attempt)) {
    // Dies with SIGABRT -- the pool sees EOF and a signal exit status.
    std::abort();
  }
  if (ChaosActive(req.chaos, "exit", req.attempt)) {
    // Abnormal-but-clean death (no signal); still a crash to the pool.
    std::_Exit(3);
  }
  if (ChaosActive(req.chaos, "spin", req.attempt)) {
    // Wedge past any reasonable deadline; the pool SIGKILLs us.
    std::this_thread::sleep_for(std::chrono::seconds(3600));
  }
}

int WorkerLoop(int fd, const Runner& runner, bool chaos_enabled) {
  for (;;) {
    FrameType type{};
    std::string payload;
    std::string err;
    const ReadStatus st = ReadFrame(fd, &type, &payload, &err);
    if (st == ReadStatus::kEof) return 0;  // pool closed us: orderly exit
    if (st != ReadStatus::kOk) return 1;

    if (type == FrameType::kPing) {
      if (!WriteFrame(fd, FrameType::kPong, "")) return 1;
      continue;
    }
    if (type != FrameType::kRequest) return 1;

    ExperimentRequest req;
    ExperimentResponse resp;
    if (!ExperimentRequest::Parse(payload, &req, &err)) {
      resp.error = robust::RunError::kRunFailed;
      resp.detail = "worker could not parse request: " + err;
      if (!WriteFrame(fd, FrameType::kResponse, resp.Serialize())) return 1;
      continue;
    }
    resp.id = req.id;

    MaybeInjectChaos(req, chaos_enabled);

    try {
      WorkerResult r = runner(req);
      resp.error = r.error;
      resp.detail = std::move(r.detail);
      resp.result = std::move(r.result);
    } catch (const robust::RunErrorException& e) {
      resp.error = e.kind();
      resp.detail = e.what();
    } catch (const std::exception& e) {
      resp.error = robust::RunError::kRunFailed;
      resp.detail = e.what();
    } catch (...) {
      resp.error = robust::RunError::kRunFailed;
      resp.detail = "unknown exception in worker runner";
    }
    if (!WriteFrame(fd, FrameType::kResponse, resp.Serialize())) return 1;
  }
}

WorkerResult StubRunner(const ExperimentRequest& req) {
  WorkerResult out;
  if (req.app == "echo") {
    std::ostringstream os;
    os << "echo " << req.id << '\n';
    out.result = os.str();
  } else if (req.app == "work") {
    const int ms = std::atoi(req.config.c_str());
    if (ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
    std::ostringstream os;
    os << "worked " << ms << "ms\n";
    out.result = os.str();
  } else if (req.app == "fail") {
    out.error = robust::RunError::kRunFailed;
    out.detail = "synthetic failure";
  } else if (req.app == "stall") {
    out.error = robust::RunError::kWatchdogStall;
    out.detail = "synthetic stall";
  } else {
    std::ostringstream os;
    os << "stub " << req.app << '/' << req.config << " scale " << req.scale
       << '\n';
    out.result = os.str();
  }
  return out;
}

}  // namespace dlpsim::serve
