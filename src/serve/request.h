// Experiment request/response messages for dlpsim-as-a-service.
//
// Both directions use a line-oriented "key value" text grammar inside a
// protocol frame (serve/protocol.h): one field per line, the key is the
// first token, the value is the rest of the line. Unknown keys are
// ignored so old servers tolerate new clients and vice versa. Values may
// not contain newlines (serializers replace them with spaces; parsers
// never see one).
//
// A response optionally carries a result payload -- the same
// `Metrics::ToText() + "---\n" + profile` text the bench result cache
// stores -- separated from the header fields by the first "---" line.
// The payload is verbatim (it contains its own "---" separator), so the
// split is on the FIRST such line only.
#pragma once

#include <cstdint>
#include <string>

#include "robust/error.h"

namespace dlpsim::serve {

/// One experiment: simulate `app` under configuration `config` at
/// `scale`. The request travels client -> server and, augmented with
/// `attempt`, server -> worker.
struct ExperimentRequest {
  std::uint64_t id = 0;        // client-chosen; echoed in the response
  std::string app;             // workload abbreviation ("BFS")
  std::string config;          // named configuration ("dlp")
  double scale = 1.0;          // iteration scale factor
  // Trace-replay requests: path (visible to the server/worker) of a
  // recorded trace in either format (text or DLPT packed). Non-empty
  // switches the worker from the GPU-model workload named by `app` to a
  // cache-level TraceSource replay under `config`'s L1D; `app`/`scale`
  // are ignored for simulation but still required by the grammar (the
  // client sets app to "trace"). Cache keys for these requests use the
  // trace file's content hash over canonical packed bytes, so text and
  // packed copies of one trace share result-cache entries.
  std::string trace;
  std::uint64_t deadline_ms = 0;   // wall-clock budget; 0 = server default
  std::uint64_t watchdog_cycles = 0;  // robust/ watchdog stall window; 0 = off
  std::string faults;          // DLPSIM_FAULTS-style spec; empty = none
  // Chaos hook for fault-domain testing: "crash:N" makes the worker
  // abort() while attempt <= N, "exit:N" makes it _exit(3), "spin:N"
  // makes it sleep past any deadline. Honored only when the worker was
  // started with chaos enabled; production workers ignore it.
  std::string chaos;
  bool nocache = false;        // bypass the content-addressed result cache
  int attempt = 1;             // set by the worker pool when forwarding

  std::string Serialize() const;
  static bool Parse(const std::string& text, ExperimentRequest* out,
                    std::string* err = nullptr);
};

/// Terminal outcome of one request. Exactly one response per accepted
/// request; admission-control rejections are also responses (status
/// kQueueRejected) so a client can count every request as either served
/// or typed-failed -- nothing is silently dropped.
struct ExperimentResponse {
  std::uint64_t id = 0;
  robust::RunError error = robust::RunError::kNone;  // kNone = served
  std::string detail;          // human-readable cause when error != kNone
  int attempts = 0;            // attempts consumed by the worker pool
  int worker_crashes = 0;      // worker deaths observed for this request
  bool cached = false;         // served from the content-addressed cache
  std::uint64_t retry_after_ms = 0;  // kQueueRejected: back off this long
  std::string result;          // metrics+profile text when error == kNone

  bool ok() const { return error == robust::RunError::kNone; }

  std::string Serialize() const;
  static bool Parse(const std::string& text, ExperimentResponse* out,
                    std::string* err = nullptr);
};

/// Replaces CR/LF with spaces so a value can never break the line
/// grammar (exposed for tests).
std::string SanitizeValue(std::string value);

}  // namespace dlpsim::serve
