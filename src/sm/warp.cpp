#include "sm/warp.h"

#include <cassert>

namespace dlpsim {

void Warp::AdvanceIssue(Cycle now) {
  assert(Issueable(now) && program_ != nullptr);
  (void)now;
  // A BUSY warp whose latency elapsed is logically READY; normalize.
  state_ = State::kReady;

  ++issued_slots_;
  const Instruction& insn = program_->body()[body_idx_];
  if (++intra_count_ < insn.count) return;

  intra_count_ = 0;
  if (++body_idx_ < program_->body().size()) return;

  body_idx_ = 0;
  if (++iter_ >= program_->iterations()) finished_ = true;
}

}  // namespace dlpsim
