#include "sm/sm_core.h"

#include <cassert>

namespace dlpsim {

SmCore::SmCore(const SimConfig& cfg, SmId id, const Program* program,
               std::uint32_t warps, SchedulerKind sched)
    : cfg_(cfg),
      id_(id),
      program_(program),
      l1d_(std::make_unique<L1DCache>(cfg.l1d)),
      ldst_(cfg.core, l1d_.get()),
      coalescer_(cfg.core.warp_size, cfg.l1d.geom.line_bytes) {
  assert(warps > 0 && warps <= cfg.core.max_warps);
  warps_.reserve(warps);
  for (std::uint32_t w = 0; w < warps; ++w) {
    warps_.emplace_back(w, std::uint64_t{id} * warps + w, program);
  }
  for (std::uint32_t s = 0; s < cfg.core.num_schedulers; ++s) {
    schedulers_.emplace_back(sched, s, cfg.core.num_schedulers);
  }
}

void SmCore::AcceptResponses(Cycle now, Crossbar& icnt) {
  std::vector<MshrToken> woken;
  while (icnt.HasForCore(id_)) {
    const IcntPacket pkt = icnt.PopForCore(id_);
    assert(pkt.kind == IcntPacket::Kind::kReadReply);
    woken.clear();
    l1d_->Fill(L1DResponse{pkt.addr / cfg_.l1d.geom.line_bytes, pkt.no_fill,
                           pkt.token},
               now, woken);
    for (MshrToken token : woken) {
      Warp& w = warps_[static_cast<std::size_t>(token)];
      w.OnTransactionDone();
      if (w.Quiescent()) {
        load_block_cycles += now - w.block_start();
        ++load_block_events;
      }
    }
  }
}

void SmCore::IssueFrom(WarpScheduler& sched, Cycle now) {
  const std::uint32_t w = sched.Pick(warps_, now);
  if (w == kInvalidIndex) return;
  Warp& warp = warps_[w];
  const Instruction& insn = warp.Current();

  if (insn.op == OpClass::kLoad || insn.op == OpClass::kStore) {
    if (!ldst_.CanAccept()) {
      ++mem_blocked_issues;
      return;  // structural hazard; try again next cycle
    }
    WarpMemOp op;
    op.warp_index = w;
    op.pc = insn.pc;
    op.type = insn.op == OpClass::kLoad ? AccessType::kLoad
                                        : AccessType::kStore;
    op.lines = coalescer_.Transactions(*insn.pattern, warp.global_id(),
                                       warp.iteration());
    warp.AdvanceIssue(now);
    if (op.type == AccessType::kLoad) warp.BlockOnMem(now);
    ldst_.Enqueue(std::move(op));
    committed_mem_insns += cfg_.core.warp_size;
  } else if (insn.op == OpClass::kSfu) {
    warp.AdvanceIssue(now);
    warp.BusyFor(now, cfg_.core.sfu_latency);
  } else {
    warp.AdvanceIssue(now);  // ALU: fully pipelined
  }

  sched.OnIssued(w);
  ++issued_warp_insns;
  committed_thread_insns += cfg_.core.warp_size;
}

void SmCore::DrainOutgoing(Crossbar& icnt) {
  while (l1d_->HasOutgoing() && icnt.CanInjectFromCore(id_)) {
    const L1DOutgoing out = l1d_->PopOutgoing();
    IcntPacket pkt;
    pkt.addr = out.block * cfg_.l1d.geom.line_bytes;
    pkt.src = id_;
    pkt.dst = cfg_.PartitionOf(pkt.addr);
    pkt.no_fill = out.no_fill;
    pkt.token = out.token;
    pkt.pc = out.pc;
    if (out.write) {
      pkt.kind = IcntPacket::Kind::kWrite;
      pkt.bytes = out.payload_bytes + cfg_.icnt.control_overhead;
    } else {
      pkt.kind = IcntPacket::Kind::kReadRequest;
      pkt.bytes = cfg_.icnt.request_size;
    }
    icnt.InjectFromCore(id_, pkt);
  }
}

void SmCore::InjectBackgroundTraffic(Crossbar& icnt) {
  if (cfg_.other_traffic_per_insns == 0) return;
  while (other_traffic_credit_ >=
         cfg_.other_traffic_per_insns * cfg_.core.warp_size) {
    if (!icnt.CanInjectFromCore(id_)) return;  // keep the credit, retry
    IcntPacket pkt;
    pkt.kind = IcntPacket::Kind::kOther;
    pkt.addr = 0;
    pkt.src = id_;
    pkt.dst = static_cast<std::uint32_t>((id_ + other_traffic_rr_++) %
                                         cfg_.num_partitions);
    pkt.bytes = cfg_.other_traffic_bytes;
    icnt.InjectFromCore(id_, pkt);
    other_traffic_credit_ -=
        cfg_.other_traffic_per_insns * cfg_.core.warp_size;
  }
}

void SmCore::TickCore(Cycle now, Crossbar& icnt) {
  AcceptResponses(now, icnt);
  ldst_.Tick(now, warps_);

  const std::uint64_t committed_before = committed_thread_insns;
  bool any_issued = false;
  for (WarpScheduler& sched : schedulers_) {
    const std::uint64_t before = issued_warp_insns;
    IssueFrom(sched, now);
    any_issued |= issued_warp_insns != before;
  }
  if (!any_issued && !Finished()) ++issue_idle_cycles;
  other_traffic_credit_ += committed_thread_insns - committed_before;

  DrainOutgoing(icnt);
  InjectBackgroundTraffic(icnt);
}

bool SmCore::Finished() const {
  for (const Warp& w : warps_) {
    if (!w.Finished()) return false;
  }
  return true;
}

bool SmCore::Drained() const {
  if (!Finished() || !ldst_.Idle() || l1d_->HasOutgoing()) return false;
  for (const Warp& w : warps_) {
    if (!w.Quiescent()) return false;
  }
  return true;
}

bool SmCore::Inactive() const {
  if (!Drained()) return false;
  // A drained core can still owe the interconnect a background packet if
  // it crossed the credit threshold while the crossbar was congested;
  // keep ticking it until that credit is spent.
  return cfg_.other_traffic_per_insns == 0 ||
         other_traffic_credit_ <
             std::uint64_t{cfg_.other_traffic_per_insns} * cfg_.core.warp_size;
}

}  // namespace dlpsim
