#include "sm/coalescer.h"

#include <algorithm>

namespace dlpsim {

std::vector<Addr> Coalescer::Transactions(const AccessPattern& pattern,
                                          std::uint64_t warp,
                                          std::uint64_t iter) const {
  std::vector<Addr> lines;
  lines.reserve(8);
  for (std::uint32_t lane = 0; lane < warp_size_; ++lane) {
    const Addr line = pattern.AddressFor(warp, iter, lane) / line_bytes_ *
                      line_bytes_;
    if (std::find(lines.begin(), lines.end(), line) == lines.end()) {
      lines.push_back(line);
    }
  }
  return lines;
}

std::vector<Addr> Coalescer::TransactionsFromLanes(
    const std::vector<Addr>& lane_addrs) const {
  std::vector<Addr> lines;
  lines.reserve(8);
  for (Addr a : lane_addrs) {
    const Addr line = a / line_bytes_ * line_bytes_;
    if (std::find(lines.begin(), lines.end(), line) == lines.end()) {
      lines.push_back(line);
    }
  }
  return lines;
}

}  // namespace dlpsim
