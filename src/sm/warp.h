// Warp execution state: a cursor over the Program plus the hazard state
// that gates issue (pending memory data, SFU busy time).
//
// Model simplifications (documented in DESIGN.md): warps execute with full
// 32-lane masks (no divergence) and a load blocks its warp until all of
// its line transactions return -- memory-level parallelism comes from the
// up-to-48 warps per SM, which is the dominant source on real GPUs.
#pragma once

#include <cstdint>

#include "sim/types.h"
#include "workloads/program.h"

namespace dlpsim {

class Warp {
 public:
  Warp() = default;
  Warp(WarpId id, std::uint64_t global_id, const Program* program)
      : id_(id), global_id_(global_id), program_(program) {
    finished_ = program_ == nullptr || program_->body().empty() ||
                program_->iterations() == 0;
  }

  enum class State : std::uint8_t {
    kReady,
    kWaitMem,  // blocked on outstanding load transactions
    kBusy,     // SFU latency
  };

  State state(Cycle now) const {
    if (state_ == State::kBusy && now >= busy_until_) return State::kReady;
    return state_;
  }

  /// Retired the whole program (no further issues; data may still be in
  /// flight -- see quiescent()).
  bool Finished() const { return finished_; }

  bool Issueable(Cycle now) const {
    return !finished_ && state(now) == State::kReady;
  }

  /// No memory transactions pending anywhere in the machine.
  bool Quiescent() const { return outstanding_ == 0 && !mem_op_in_flight_; }

  /// The instruction the warp would issue next. Pre: !Finished().
  const Instruction& Current() const { return program_->body()[body_idx_]; }
  std::uint64_t iteration() const { return iter_; }

  /// Consumes one issue slot of the current instruction and advances the
  /// cursor; run-length instructions need `count` calls. Pre: Issueable.
  void AdvanceIssue(Cycle now);

  // --- memory hazard bookkeeping (driven by the LD/ST unit) ---
  void BlockOnMem(Cycle now) {
    state_ = State::kWaitMem;
    mem_op_in_flight_ = true;
    block_start_ = now;
  }
  void OnMemOpDispatched() {
    mem_op_in_flight_ = false;
    MaybeWake();
  }
  void AddOutstanding(std::uint32_t n) { outstanding_ += n; }
  void OnTransactionDone() {
    if (outstanding_ > 0) --outstanding_;
    MaybeWake();
  }
  std::uint32_t outstanding() const { return outstanding_; }

  void BusyFor(Cycle now, Cycle latency) {
    state_ = State::kBusy;
    busy_until_ = now + latency;
  }

  WarpId id() const { return id_; }
  std::uint64_t global_id() const { return global_id_; }
  std::uint64_t issued_slots() const { return issued_slots_; }
  Cycle block_start() const { return block_start_; }

 private:
  void MaybeWake() {
    if (state_ == State::kWaitMem && !mem_op_in_flight_ &&
        outstanding_ == 0) {
      state_ = State::kReady;
    }
  }

  WarpId id_ = 0;
  std::uint64_t global_id_ = 0;
  const Program* program_ = nullptr;

  State state_ = State::kReady;
  bool finished_ = true;
  Cycle busy_until_ = 0;
  Cycle block_start_ = 0;
  std::uint32_t outstanding_ = 0;
  bool mem_op_in_flight_ = false;

  std::uint64_t iter_ = 0;
  std::uint32_t body_idx_ = 0;
  std::uint32_t intra_count_ = 0;  // progress within a run-length block
  std::uint64_t issued_slots_ = 0;
};

}  // namespace dlpsim
