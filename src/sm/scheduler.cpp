#include "sm/scheduler.h"

namespace dlpsim {

std::uint32_t WarpScheduler::Pick(const std::vector<Warp>& warps, Cycle now) {
  const std::uint32_t n = static_cast<std::uint32_t>(warps.size());

  if (kind_ == SchedulerKind::kGto) {
    // Greedy: stick with the last warp while it can issue.
    if (last_ != kInvalidIndex && last_ < n && warps[last_].Issueable(now)) {
      return last_;
    }
    // Then-oldest: lowest warp id owned by this scheduler.
    for (std::uint32_t w = index_; w < n; w += stride_) {
      if (warps[w].Issueable(now)) return w;
    }
    return kInvalidIndex;
  }

  // LRR: start after the last issued warp, wrap around once.
  const std::uint32_t owned = (n + stride_ - 1 - index_) / stride_;
  std::uint32_t start_slot = 0;
  if (last_ != kInvalidIndex && Owns(last_)) {
    start_slot = (last_ - index_) / stride_ + 1;
  }
  for (std::uint32_t k = 0; k < owned; ++k) {
    const std::uint32_t slot = (start_slot + k) % owned;
    const std::uint32_t w = index_ + slot * stride_;
    if (w < n && warps[w].Issueable(now)) return w;
  }
  return kInvalidIndex;
}

}  // namespace dlpsim
