// The LD/ST unit: an in-order queue of warp memory operations feeding the
// L1D one line transaction per cycle (ldst_width).
//
// This is where the paper's performance pathology lives: when the L1D
// reports a reservation failure the head transaction retries next cycle
// and everything behind it -- every other warp's memory op -- is blocked
// (paper §2: "all future accesses to the L1D cache will be stalled").
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/l1d_cache.h"
#include "sim/config.h"
#include "sim/types.h"
#include "sm/warp.h"

namespace dlpsim {

struct WarpMemOp {
  std::uint32_t warp_index = 0;
  Pc pc = 0;
  AccessType type = AccessType::kLoad;
  std::vector<Addr> lines;     // coalesced transactions
  std::uint32_t next = 0;      // dispatch cursor
};

class LdStUnit {
 public:
  LdStUnit(const CoreConfig& cfg, L1DCache* l1d) : cfg_(cfg), l1d_(l1d) {}

  bool CanAccept() const { return queue_.size() < cfg_.ldst_queue_entries; }

  /// Queues a memory op. For loads the warp must already be blocked via
  /// Warp::BlockOnMem().
  void Enqueue(WarpMemOp op);

  /// Dispatches up to ldst_width transactions from the head op.
  void Tick(Cycle now, std::vector<Warp>& warps);

  bool Idle() const { return queue_.empty(); }
  std::size_t queue_depth() const { return queue_.size(); }

  // --- statistics ---
  std::uint64_t stall_cycles = 0;       // cycles blocked on reservation fail
  std::uint64_t transactions = 0;       // L1D transactions dispatched
  std::uint64_t mem_ops = 0;            // warp-level memory instructions

 private:
  CoreConfig cfg_;
  L1DCache* l1d_;
  std::deque<WarpMemOp> queue_;
};

}  // namespace dlpsim
