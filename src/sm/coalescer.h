// Memory-access coalescer: folds the 32 per-lane addresses of one warp
// memory instruction into the minimal set of line transactions, in lane
// order (GPGPU-Sim generates one transaction per distinct 128B segment).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"
#include "workloads/patterns.h"

namespace dlpsim {

class Coalescer {
 public:
  explicit Coalescer(std::uint32_t warp_size, std::uint32_t line_bytes)
      : warp_size_(warp_size), line_bytes_(line_bytes) {}

  /// Distinct line-aligned addresses touched by lanes [0, warp_size) of
  /// `pattern` at (warp, iter). Order of first touch is preserved.
  std::vector<Addr> Transactions(const AccessPattern& pattern,
                                 std::uint64_t warp, std::uint64_t iter) const;

  /// Same, from raw lane addresses (unit tests / custom generators).
  std::vector<Addr> TransactionsFromLanes(
      const std::vector<Addr>& lane_addrs) const;

 private:
  std::uint32_t warp_size_;
  std::uint32_t line_bytes_;
};

}  // namespace dlpsim
