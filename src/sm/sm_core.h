// One Streaming Multiprocessor: warps + dual GTO schedulers + LD/ST unit
// + the L1D cache, exchanging packets with the interconnect.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/l1d_cache.h"
#include "icnt/crossbar.h"
#include "sim/config.h"
#include "sim/types.h"
#include "sm/coalescer.h"
#include "sm/ldst_unit.h"
#include "sm/scheduler.h"
#include "sm/warp.h"

namespace dlpsim {

class SmCore {
 public:
  /// `warps` warps run `program`; global warp ids are
  /// id * warps + local_id so patterns can address across the whole GPU.
  SmCore(const SimConfig& cfg, SmId id, const Program* program,
         std::uint32_t warps, SchedulerKind sched = SchedulerKind::kGto);

  /// One core-clock cycle: accept responses, dispatch memory ops, issue
  /// from both schedulers, and push outgoing traffic into the crossbar.
  void TickCore(Cycle now, Crossbar& icnt);

  bool Finished() const;  // all warps retired their program
  bool Drained() const;   // Finished + all queues empty

  /// TickCore is a permanent no-op for this core: drained AND no
  /// background-traffic credit left that could still inject a packet.
  /// Sticky -- nothing can reactivate a core once this returns true --
  /// so the simulator skips inactive cores without changing results.
  bool Inactive() const;

  L1DCache& l1d() { return *l1d_; }
  const L1DCache& l1d() const { return *l1d_; }
  const LdStUnit& ldst() const { return ldst_; }
  const std::vector<Warp>& warps() const { return warps_; }
  SmId id() const { return id_; }

  // --- statistics ---
  std::uint64_t committed_thread_insns = 0;
  std::uint64_t committed_mem_insns = 0;    // thread-level memory insns
  std::uint64_t issued_warp_insns = 0;
  std::uint64_t issue_idle_cycles = 0;      // no scheduler issued
  std::uint64_t mem_blocked_issues = 0;     // mem issue blocked: queue full
  std::uint64_t load_block_cycles = 0;      // total warp-blocked-on-load time
  std::uint64_t load_block_events = 0;

 private:
  void AcceptResponses(Cycle now, Crossbar& icnt);
  void IssueFrom(WarpScheduler& sched, Cycle now);
  void DrainOutgoing(Crossbar& icnt);
  void InjectBackgroundTraffic(Crossbar& icnt);

  SimConfig cfg_;
  SmId id_;
  const Program* program_;
  std::vector<Warp> warps_;
  std::vector<WarpScheduler> schedulers_;
  std::unique_ptr<L1DCache> l1d_;
  LdStUnit ldst_;
  Coalescer coalescer_;
  std::uint64_t other_traffic_credit_ = 0;  // committed insns since last pkt
  std::uint64_t other_traffic_rr_ = 0;      // destination rotation
};

}  // namespace dlpsim
