#include "sm/ldst_unit.h"

#include <cassert>

namespace dlpsim {

void LdStUnit::Enqueue(WarpMemOp op) {
  assert(CanAccept());
  assert(!op.lines.empty());
  ++mem_ops;
  queue_.push_back(std::move(op));
}

void LdStUnit::Tick(Cycle now, std::vector<Warp>& warps) {
  for (std::uint32_t slot = 0; slot < cfg_.ldst_width; ++slot) {
    if (queue_.empty()) return;
    WarpMemOp& op = queue_.front();
    Warp& warp = warps[op.warp_index];

    const MemAccess access{op.lines[op.next], op.type, op.pc,
                           static_cast<MshrToken>(op.warp_index)};
    const AccessResult result = l1d_->Access(access, now);

    switch (result) {
      case AccessResult::kReservationFail:
        ++stall_cycles;
        return;  // head-of-line blocking: retry next cycle
      case AccessResult::kHit:
      case AccessResult::kStoreSent:
        ++transactions;
        break;
      case AccessResult::kMissIssued:
      case AccessResult::kMissMerged:
      case AccessResult::kBypassed:
        ++transactions;
        if (op.type == AccessType::kLoad) warp.AddOutstanding(1);
        break;
    }

    if (++op.next == op.lines.size()) {
      if (op.type == AccessType::kLoad) warp.OnMemOpDispatched();
      queue_.pop_front();
    }
  }
}

}  // namespace dlpsim
