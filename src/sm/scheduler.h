// Warp schedulers. The baseline configuration (Table 1) uses two GTO
// (Greedy-Then-Oldest) schedulers per SM; LRR (loose round robin) is
// provided for ablations. Each scheduler owns the warps whose id is
// congruent to its index modulo the scheduler count (GPGPU-Sim's split).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"
#include "sm/warp.h"

namespace dlpsim {

enum class SchedulerKind : std::uint8_t { kGto, kLrr };

class WarpScheduler {
 public:
  WarpScheduler(SchedulerKind kind, std::uint32_t index,
                std::uint32_t num_schedulers)
      : kind_(kind), index_(index), stride_(num_schedulers) {}

  /// Picks the warp to issue from this cycle, or kInvalidIndex. GTO: keep
  /// the last-issued warp while it stays issueable, else the oldest
  /// (lowest id) issueable warp. LRR: rotate from the warp after the last
  /// issued one.
  std::uint32_t Pick(const std::vector<Warp>& warps, Cycle now);

  /// Informs the scheduler what was issued (updates greedy/rotation state).
  void OnIssued(std::uint32_t warp_index) { last_ = warp_index; }

  SchedulerKind kind() const { return kind_; }

 private:
  bool Owns(std::uint32_t warp_index) const {
    return warp_index % stride_ == index_;
  }

  SchedulerKind kind_;
  std::uint32_t index_;
  std::uint32_t stride_;
  std::uint32_t last_ = kInvalidIndex;
};

}  // namespace dlpsim
