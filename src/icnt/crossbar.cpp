#include "icnt/crossbar.h"

#include <cassert>

#include "obs/metrics.h"

namespace dlpsim {

Crossbar::Crossbar(const IcntConfig& cfg, std::uint32_t num_cores,
                   std::uint32_t num_partitions)
    : cfg_(cfg),
      core_ports_(num_cores),
      partition_ports_(num_partitions),
      to_partition_(num_partitions),
      to_core_(num_cores),
      m_delivered_(obs::Registry::Global().GetCounter(
          "icnt", "packets_delivered",
          "packets landed in a delivery queue")) {}

bool Crossbar::CanInjectFromCore(std::uint32_t core) const {
  return core_ports_[core].queue.size() < kInjectQueueCap;
}

void Crossbar::InjectFromCore(std::uint32_t core, const IcntPacket& pkt) {
  assert(CanInjectFromCore(core));
  bytes_core_to_mem += pkt.bytes;
  if (pkt.kind == IcntPacket::Kind::kOther) {
    bytes_other += pkt.bytes;
  } else {
    bytes_l1d += pkt.bytes;
  }
  core_ports_[core].queue.push_back(pkt);
}

bool Crossbar::CanInjectFromPartition(std::uint32_t part) const {
  return partition_ports_[part].queue.size() < kInjectQueueCap;
}

void Crossbar::InjectFromPartition(std::uint32_t part, const IcntPacket& pkt) {
  assert(CanInjectFromPartition(part));
  bytes_mem_to_core += pkt.bytes;
  bytes_l1d += pkt.bytes;
  partition_ports_[part].queue.push_back(pkt);
}

bool Crossbar::HasForCore(std::uint32_t core) const {
  return !to_core_[core].empty();
}

IcntPacket Crossbar::PopForCore(std::uint32_t core) {
  assert(HasForCore(core));
  IcntPacket pkt = to_core_[core].front();
  to_core_[core].pop_front();
  return pkt;
}

bool Crossbar::HasForPartition(std::uint32_t part) const {
  return !to_partition_[part].empty();
}

IcntPacket Crossbar::PopForPartition(std::uint32_t part) {
  assert(HasForPartition(part));
  IcntPacket pkt = to_partition_[part].front();
  to_partition_[part].pop_front();
  return pkt;
}

void Crossbar::TickPort(Port& port, bool to_core, Cycle now) {
  if (port.queue.empty()) return;
  const IcntPacket& head = port.queue.front();
  port.sent_bytes += cfg_.bytes_per_cycle_per_port;
  if (port.sent_bytes < head.bytes) return;
  // Head packet fully serialized this cycle; it arrives after the hop
  // latency and then waits for delivery-queue space.
  flight_.push_back(InFlight{head, now + cfg_.latency, to_core});
  port.queue.pop_front();
  port.sent_bytes = 0;
}

void Crossbar::Deliver(Cycle now) {
  // flight_ is FIFO by serialization completion; deliver every packet whose
  // time has come and whose destination queue has room. Blocked packets
  // stay (and block later arrivals to preserve point-to-point ordering).
  std::deque<InFlight> still_flying;
  for (InFlight& f : flight_) {
    const bool due = f.deliver_at <= now;
    auto& queues = f.to_core ? to_core_ : to_partition_;
    if (due && queues[f.pkt.dst].size() < kDeliveryQueueCap) {
      queues[f.pkt.dst].push_back(f.pkt);
      ++packets_delivered;
      m_delivered_->Add();
    } else {
      still_flying.push_back(f);
    }
  }
  flight_.swap(still_flying);
}

void Crossbar::Tick(Cycle now) {
  if (fault_stall_cycles_ > 0) {
    // Injected fabric stall: the cycle passes with no movement at all.
    --fault_stall_cycles_;
    return;
  }
  for (Port& p : core_ports_) TickPort(p, /*to_core=*/false, now);
  for (Port& p : partition_ports_) TickPort(p, /*to_core=*/true, now);
  Deliver(now);
}

Crossbar::QueueDepths Crossbar::Depths() const {
  QueueDepths d;
  for (const Port& p : core_ports_) d.core_inject += p.queue.size();
  for (const Port& p : partition_ports_) d.partition_inject += p.queue.size();
  d.in_flight = flight_.size();
  for (const auto& q : to_partition_) d.to_partition += q.size();
  for (const auto& q : to_core_) d.to_core += q.size();
  return d;
}

bool Crossbar::Idle() const {
  if (!flight_.empty()) return false;
  for (const Port& p : core_ports_) {
    if (!p.queue.empty()) return false;
  }
  for (const Port& p : partition_ports_) {
    if (!p.queue.empty()) return false;
  }
  for (const auto& q : to_partition_) {
    if (!q.empty()) return false;
  }
  for (const auto& q : to_core_) {
    if (!q.empty()) return false;
  }
  return true;
}

void Crossbar::RegisterStats(StatRegistry& reg,
                             const std::string& prefix) const {
  reg.Register(prefix + ".bytes_core_to_mem", &bytes_core_to_mem);
  reg.Register(prefix + ".bytes_mem_to_core", &bytes_mem_to_core);
  reg.Register(prefix + ".bytes_l1d", &bytes_l1d);
  reg.Register(prefix + ".bytes_other", &bytes_other);
  reg.Register(prefix + ".packets_delivered", &packets_delivered);
}

}  // namespace dlpsim
