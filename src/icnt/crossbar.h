// Crossbar interconnect between SM cores and memory partitions.
//
// Model: every source (core or partition) owns an injection port with a
// fixed per-cycle byte bandwidth; a packet serializes for
// ceil(bytes / bandwidth) interconnect cycles, then travels `latency`
// cycles, then waits for space in the destination's delivery queue
// (bounded, providing backpressure). Byte counters distinguish L1D
// traffic from the background L1I/L1C/L1T traffic so Fig. 13's dilution
// effect is measurable.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cache/mshr.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace dlpsim {

namespace obs {
class Counter;
}  // namespace obs

struct IcntPacket {
  enum class Kind : std::uint8_t {
    kReadRequest,  // L1D (or bypassed) read: core -> partition
    kWrite,        // write-through / writeback data: core -> partition
    kReadReply,    // fill / bypass data: partition -> core
    kOther,        // background L1I/L1C/L1T traffic: core -> partition
  };

  Kind kind = Kind::kReadRequest;
  Addr addr = 0;  // byte address (partition mapping happens in gpu/)
  std::uint32_t src = 0;  // core id or partition id depending on direction
  std::uint32_t dst = 0;
  bool no_fill = false;   // carried through so the reply skips the L1 fill
  MshrToken token = 0;
  Pc pc = 0;
  std::uint32_t bytes = 8;  // wire size including header
};

class Crossbar {
 public:
  Crossbar(const IcntConfig& cfg, std::uint32_t num_cores,
           std::uint32_t num_partitions);

  // --- core side ---
  bool CanInjectFromCore(std::uint32_t core) const;
  void InjectFromCore(std::uint32_t core, const IcntPacket& pkt);
  bool HasForCore(std::uint32_t core) const;
  IcntPacket PopForCore(std::uint32_t core);

  // --- partition side ---
  bool CanInjectFromPartition(std::uint32_t part) const;
  void InjectFromPartition(std::uint32_t part, const IcntPacket& pkt);
  bool HasForPartition(std::uint32_t part) const;
  IcntPacket PopForPartition(std::uint32_t part);

  /// Advances one interconnect cycle.
  void Tick(Cycle now);

  /// Fault-injection hook (robust/): freezes the whole fabric for the
  /// next `cycles` interconnect ticks (no serialization, no delivery),
  /// modelling a transient congestion / link-retraining spike. Counts
  /// down inside Tick; stacking injections extends the stall.
  void InjectStallFor(std::uint64_t cycles) { fault_stall_cycles_ += cycles; }

  /// True when no packet is anywhere in the network (drain check).
  bool Idle() const;

  /// Debug introspection: instantaneous queue depths.
  struct QueueDepths {
    std::size_t core_inject = 0, partition_inject = 0, in_flight = 0,
                to_partition = 0, to_core = 0;
  };
  QueueDepths Depths() const;

  // --- statistics (bytes injected, by class) ---
  std::uint64_t bytes_core_to_mem = 0;
  std::uint64_t bytes_mem_to_core = 0;
  std::uint64_t bytes_l1d = 0;    // read requests + writes + replies for L1D
  std::uint64_t bytes_other = 0;  // background traffic
  std::uint64_t packets_delivered = 0;

  std::uint64_t total_bytes() const {
    return bytes_core_to_mem + bytes_mem_to_core;
  }

  void RegisterStats(StatRegistry& reg, const std::string& prefix) const;

 private:
  struct InFlight {
    IcntPacket pkt;
    Cycle deliver_at = 0;
    bool to_core = false;
  };

  struct Port {
    std::deque<IcntPacket> queue;   // awaiting serialization
    std::uint32_t sent_bytes = 0;   // of the head packet
  };

  void TickPort(Port& port, bool to_core, Cycle now);
  void Deliver(Cycle now);

  IcntConfig cfg_;
  std::vector<Port> core_ports_;       // injection, core -> mem
  std::vector<Port> partition_ports_;  // injection, mem -> core
  std::deque<InFlight> flight_;        // serialized, in transit (FIFO)
  std::vector<std::deque<IcntPacket>> to_partition_;  // delivery queues
  std::vector<std::deque<IcntPacket>> to_core_;
  std::uint64_t fault_stall_cycles_ = 0;  // robust/: ticks to swallow
  obs::Counter* m_delivered_ = nullptr;   // icnt.packets_delivered

  static constexpr std::size_t kInjectQueueCap = 8;
  static constexpr std::size_t kDeliveryQueueCap = 16;
};

}  // namespace dlpsim
