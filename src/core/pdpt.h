// Protection Distance Prediction Table (paper §4.1.3) and the Fig. 9
// protection-distance computation (§4.2).
//
// The PDPT has 128 entries indexed by the hashed PC ("instruction ID") of
// a load. Each entry holds saturating TDA/VTA hit counters for the current
// sample and the instruction's current protection distance. At the end of
// each sample the PD update runs:
//
//   if (global VTA hits > global TDA hits)           // under-protected
//     for each insn: PD += Nasc * step(HitVTA/HitTDA)   (clamped to pd_max)
//   else if (global VTA hits < global TDA hits / 2)  // lines hit enough
//     for each insn: PD -= Nasc                         (clamped to 0)
//   else: hold
//
// step() is the paper's shift-based "step comparison" replacing a divide:
// HitVTA is compared against 4x, 2x, 1x and 1/2x HitTDA and the adjustment
// is 4*Nasc, 2*Nasc, Nasc, Nasc/2 respectively (upper limit 4*Nasc).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace dlpsim {

class PdpTable {
 public:
  /// `nasc` is the VTA associativity (paper: equals the TDA's).
  PdpTable(const ProtectionConfig& cfg, std::uint32_t nasc);

  std::uint32_t IndexOf(Pc pc) const {
    return HashPc(pc, cfg_.insn_id_bits) % cfg_.pdpt_entries;
  }

  // --- per-access bookkeeping ---
  void CreditTdaHit(std::uint32_t insn_id);
  void CreditVtaHit(std::uint32_t insn_id);

  /// Current protection distance for an instruction ID.
  std::uint32_t Pd(std::uint32_t insn_id) const {
    return entries_[insn_id].pd;
  }
  std::uint32_t PdForPc(Pc pc) const { return Pd(IndexOf(pc)); }

  // --- sampling ---
  /// Runs the Fig. 9 update over all entries and resets the sample's hit
  /// counters. Returns which path was taken (tests/ablation reporting).
  enum class UpdatePath { kIncrease, kDecrease, kHold };
  UpdatePath EndSample();

  /// The step-comparison adjustment for one instruction (exposed for unit
  /// tests; pure function of the two counters).
  std::uint32_t StepAdjustment(std::uint32_t vta_hits,
                               std::uint32_t tda_hits) const;

  std::uint64_t global_tda_hits() const { return global_tda_hits_; }
  std::uint64_t global_vta_hits() const { return global_vta_hits_; }

  std::uint32_t tda_hits(std::uint32_t insn_id) const {
    return entries_[insn_id].tda_hits.value();
  }
  std::uint32_t vta_hits(std::uint32_t insn_id) const {
    return entries_[insn_id].vta_hits.value();
  }

  std::uint32_t size() const { return cfg_.pdpt_entries; }
  std::uint32_t nasc() const { return nasc_; }
  std::uint32_t pd_max() const { return cfg_.pd_max(); }

  /// Mean protection distance over all entries (telemetry).
  double MeanPd() const;

  /// Resets PDs and counters (between kernels).
  void Clear();

  /// Overwrites one entry's protection distance, clamped to pd_max().
  /// Fault-injection hook (robust/): models a bit flip in the PDPT's PD
  /// field. Never called on the normal simulation path.
  void OverridePd(std::uint32_t insn_id, std::uint32_t pd) {
    entries_[insn_id].pd = pd > pd_max() ? pd_max() : pd;
  }

  // Lifetime statistics for reporting.
  std::uint64_t samples_taken = 0;
  std::uint64_t increase_samples = 0;
  std::uint64_t decrease_samples = 0;

 private:
  struct Entry {
    SaturatingCounter tda_hits;
    SaturatingCounter vta_hits;
    std::uint32_t pd = 0;
    Entry(std::uint32_t tda_bits, std::uint32_t vta_bits)
        : tda_hits(tda_bits), vta_hits(vta_bits) {}
  };

  ProtectionConfig cfg_;
  std::uint32_t nasc_;
  std::vector<Entry> entries_;
  // Global (per-sample) hit totals. Wider than the per-entry counters so
  // the global comparison is exact.
  std::uint64_t global_tda_hits_ = 0;
  std::uint64_t global_vta_hits_ = 0;
};

/// Tracks when a sample ends: after `sample_accesses` cache accesses, or
/// after `sample_max_cycles` core cycles for load-starved (CS) kernels
/// (paper §4.1.4).
class SampleWindow {
 public:
  explicit SampleWindow(const ProtectionConfig& cfg) : cfg_(cfg) {}

  /// Called once per cache access. Returns true when the sample is due.
  bool OnAccess(Cycle now) {
    if (start_valid_ == false) {
      start_cycle_ = now;
      start_valid_ = true;
    }
    ++accesses_;
    return Due(now);
  }

  /// Time-based check (callable from the core clock without an access).
  bool Due(Cycle now) const {
    if (accesses_ >= cfg_.sample_accesses) return true;
    return start_valid_ && accesses_ > 0 &&
           now - start_cycle_ >= cfg_.sample_max_cycles;
  }

  void Restart(Cycle now) {
    accesses_ = 0;
    start_cycle_ = now;
    start_valid_ = true;
  }

  std::uint32_t accesses() const { return accesses_; }

 private:
  ProtectionConfig cfg_;
  std::uint32_t accesses_ = 0;
  Cycle start_cycle_ = 0;
  bool start_valid_ = false;
};

}  // namespace dlpsim
