#include "core/vta.h"

#include <algorithm>
#include <cassert>

namespace dlpsim {

VictimTagArray::VictimTagArray(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways), entries_(std::size_t{sets} * ways) {
  assert(sets > 0 && ways > 0);
}

VictimTagArray::HitInfo VictimTagArray::ProbeAndConsume(std::uint32_t set,
                                                        Addr block) {
  Entry* base = SetBase(set);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].block == block) {
      HitInfo info{true, base[w].insn_id};
      base[w] = Entry{};
      return info;
    }
  }
  return {};
}

bool VictimTagArray::Contains(std::uint32_t set, Addr block) const {
  const Entry* base = SetBase(set);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].block == block) return true;
  }
  return false;
}

void VictimTagArray::Insert(std::uint32_t set, Addr block,
                            std::uint32_t insn_id) {
  Entry* base = SetBase(set);
  Entry* victim = nullptr;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Entry& e = base[w];
    if (e.valid && e.block == block) {
      victim = &e;  // refresh an existing tag in place
      break;
    }
    if (!e.valid) {
      if (victim == nullptr || victim->valid) victim = &e;
      continue;
    }
    if (victim == nullptr ||
        (victim->valid && e.last_use < victim->last_use)) {
      victim = &e;
    }
  }
  assert(victim != nullptr);
  victim->block = block;
  victim->insn_id = insn_id;
  victim->valid = true;
  victim->last_use = ++use_clock_;
}

void VictimTagArray::Clear() {
  for (Entry& e : entries_) e = Entry{};
}

std::vector<VictimTagArray::EntryView> VictimTagArray::SetEntries(
    std::uint32_t set) const {
  std::vector<const Entry*> occupied;
  const Entry* base = SetBase(set);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid) occupied.push_back(&base[w]);
  }
  std::sort(occupied.begin(), occupied.end(),
            [](const Entry* a, const Entry* b) {
              return a->last_use < b->last_use;
            });
  std::vector<EntryView> out;
  out.reserve(occupied.size());
  for (const Entry* e : occupied) out.push_back({e->block, e->insn_id});
  return out;
}

std::uint32_t VictimTagArray::Occupancy(std::uint32_t set) const {
  std::uint32_t n = 0;
  const Entry* base = SetBase(set);
  for (std::uint32_t w = 0; w < ways_; ++w) n += base[w].valid ? 1 : 0;
  return n;
}

}  // namespace dlpsim
