#include "core/pdpt.h"

#include <algorithm>
#include <cassert>

namespace dlpsim {

PdpTable::PdpTable(const ProtectionConfig& cfg, std::uint32_t nasc)
    : cfg_(cfg), nasc_(nasc) {
  assert(nasc_ > 0);
  entries_.reserve(cfg_.pdpt_entries);
  for (std::uint32_t i = 0; i < cfg_.pdpt_entries; ++i) {
    entries_.emplace_back(cfg_.tda_hit_bits, cfg_.vta_hit_bits);
  }
}

void PdpTable::CreditTdaHit(std::uint32_t insn_id) {
  assert(insn_id < entries_.size());
  entries_[insn_id].tda_hits.Increment();
  ++global_tda_hits_;
}

void PdpTable::CreditVtaHit(std::uint32_t insn_id) {
  assert(insn_id < entries_.size());
  entries_[insn_id].vta_hits.Increment();
  ++global_vta_hits_;
}

std::uint32_t PdpTable::StepAdjustment(std::uint32_t vta_hits,
                                       std::uint32_t tda_hits) const {
  // Step comparison against shifted HitTDA (paper §4.2). A load with no
  // TDA hits but some VTA hits is maximally under-protected.
  if (vta_hits == 0) return 0;
  if (tda_hits == 0) return 4 * nasc_;
  if (vta_hits >= 4 * tda_hits) return 4 * nasc_;  // upper limit: 4 * Nasc
  if (vta_hits >= 2 * tda_hits) return 2 * nasc_;
  if (vta_hits >= tda_hits) return nasc_;
  if (2 * vta_hits >= tda_hits) return nasc_ / 2;  // >= half of HitTDA
  return 0;
}

PdpTable::UpdatePath PdpTable::EndSample() {
  UpdatePath path = UpdatePath::kHold;
  if (global_vta_hits_ > global_tda_hits_) {
    path = UpdatePath::kIncrease;
    ++increase_samples;
    for (Entry& e : entries_) {
      const std::uint32_t adj =
          StepAdjustment(e.vta_hits.value(), e.tda_hits.value());
      e.pd = std::min(e.pd + adj, cfg_.pd_max());
    }
  } else if (2 * global_vta_hits_ < global_tda_hits_) {
    path = UpdatePath::kDecrease;
    ++decrease_samples;
    for (Entry& e : entries_) {
      e.pd = (e.pd > nasc_) ? e.pd - nasc_ : 0;
    }
  }
  for (Entry& e : entries_) {
    e.tda_hits.Reset();
    e.vta_hits.Reset();
  }
  global_tda_hits_ = 0;
  global_vta_hits_ = 0;
  ++samples_taken;
  return path;
}

double PdpTable::MeanPd() const {
  std::uint64_t sum = 0;
  for (const Entry& e : entries_) sum += e.pd;
  return entries_.empty() ? 0.0
                          : static_cast<double>(sum) / entries_.size();
}

void PdpTable::Clear() {
  for (Entry& e : entries_) {
    e.tda_hits.Reset();
    e.vta_hits.Reset();
    e.pd = 0;
  }
  global_tda_hits_ = 0;
  global_vta_hits_ = 0;
}

}  // namespace dlpsim
