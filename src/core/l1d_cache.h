// The L1D cache front end: tag/data array + MSHR + miss queue + the
// selected protection policy, exposing the GPGPU-Sim-style access API
// used by the SM's LD/ST unit.
//
// Access outcomes mirror the hardware behaviours the paper leans on:
//  - kHit           : data returned this cycle (plus hit latency)
//  - kMissIssued    : line reserved, MSHR allocated, request enqueued
//  - kMissMerged    : folded into an in-flight MSHR entry
//  - kBypassed      : sent to the interconnect around the cache
//  - kReservationFail: nothing could be done; the LD/ST unit must retry
//                     next cycle, blocking the memory pipeline behind it.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cache/mshr.h"
#include "cache/observer.h"
#include "cache/pl_counters.h"
#include "cache/stats.h"
#include "cache/tag_array.h"
#include "core/policies.h"
#include "obs/trace_event.h"
#include "sim/config.h"
#include "sim/types.h"

namespace dlpsim {

class TraceSink;

namespace obs {
class Counter;
class Histogram;
class Profiler;
}  // namespace obs

enum class AccessResult : std::uint8_t {
  kHit,
  kMissIssued,
  kMissMerged,
  kBypassed,
  kStoreSent,        // store committed (write-through or dirtied in place)
  kReservationFail,
};

const char* ToString(AccessResult r);

/// One L1D transaction from the LD/ST unit (already coalesced to a line).
struct MemAccess {
  Addr addr = 0;
  AccessType type = AccessType::kLoad;
  Pc pc = 0;
  MshrToken token = 0;  // wake handle for loads
};

/// A request leaving the L1D towards the interconnect.
struct L1DOutgoing {
  Addr block = 0;        // line-aligned block index (addr / line_bytes)
  bool write = false;
  bool no_fill = false;  // bypassed load: response must not fill the TDA
  Pc pc = 0;
  MshrToken token = 0;   // valid when no_fill (bypassed load)
  std::uint32_t payload_bytes = 0;  // data carried (writes); 0 for reads
};

/// A response arriving from the interconnect.
struct L1DResponse {
  Addr block = 0;
  bool no_fill = false;
  MshrToken token = 0;  // valid when no_fill
};

class L1DCache {
 public:
  explicit L1DCache(const L1DConfig& cfg);

  /// Processes one transaction. On kReservationFail the caller must retry
  /// the same transaction next cycle; no state was modified.
  AccessResult Access(const MemAccess& access, Cycle now);

  /// Handles a returning response; appends woken tokens to `woken`.
  void Fill(const L1DResponse& response, Cycle now,
            std::vector<MshrToken>& woken);

  // --- outgoing (miss/bypass/write) queue, drained by the SM each cycle ---
  bool HasOutgoing() const { return !outgoing_.empty(); }
  const L1DOutgoing& PeekOutgoing() const { return outgoing_.front(); }
  L1DOutgoing PopOutgoing();

  /// Clears all transient state between kernels (lines, MSHRs, policy).
  void Reset();

  // --- introspection ---
  const CacheStats& stats() const { return stats_; }
  const TagArray& tda() const { return tda_; }
  const MshrTable& mshr() const { return mshr_; }
  const ProtectionPolicy& policy() const { return *policy_; }
  const L1DConfig& config() const { return cfg_; }
  std::uint32_t line_bytes() const { return cfg_.geom.line_bytes; }

  /// Incrementally maintained occupied-lines-by-protected-life histogram
  /// (kept in lockstep with the TDA by the tag array and the policy);
  /// lets PolicySnapshot avoid walking every set per timeline sample.
  const PlCounters& pl_counters() const { return pl_counters_; }

  /// Mutable policy access for the fault injector (robust/) only.
  ProtectionPolicy& mutable_policy() { return *policy_; }
  /// Mutable tag-array access for white-box tests (e.g. planting the
  /// corruptions the robust/ invariant checker must catch). Never used
  /// on the simulation path.
  TagArray& mutable_tda() { return tda_; }
  /// Mutable histogram access for white-box tests that plant PL values
  /// through mutable_tda() and must keep the counters in lockstep.
  PlCounters& mutable_pl_counters() { return pl_counters_; }
  std::size_t outgoing_size() const { return outgoing_.size(); }

  // --- fault-injection hooks (robust/FaultInjector; never called on the
  // normal simulation path) ---

  /// Corrupts the protected-life field of (set, way) by XOR-ing `bit`
  /// into it (clamped to the policy's 4-bit field). No-op on unoccupied
  /// lines: PL only exists on occupied lines, and the PlCounters
  /// histogram is kept consistent through Move().
  void InjectProtectedLifeFlip(std::uint32_t set, std::uint32_t way,
                               std::uint32_t bit);

  /// Models a transient controller fault: every access before `until`
  /// (core cycles) fails with kReservationFail, exercising the LD/ST
  /// unit's retry path without touching cache state.
  void InjectReservationBlackout(Cycle until) {
    fault_blackout_until_ = until;
  }

  /// Optional pre-policy observer (reuse-distance profiling).
  void SetObserver(AccessObserver* observer) { observer_ = observer; }

  /// Optional event tracing (obs/). `sm_id` tags every emitted event so
  /// multi-core traces attribute records to their SM; the policy shares
  /// the sink. Pass nullptr to detach. When no sink is attached every
  /// hook costs one pointer comparison.
  void SetTraceSink(TraceSink* sink, std::uint32_t sm_id = 0);
  TraceSink* trace_sink() const { return trace_; }

  /// Optional phase profiler (obs/). Spans wrap each access and its
  /// policy bookkeeping; nullptr (the default) keeps the hot path at one
  /// predictable branch per access. Purely observational wall-time
  /// telemetry -- attaching never changes simulation results.
  void SetProfiler(obs::Profiler* profiler) { profiler_ = profiler; }

 private:
  AccessResult AccessLoad(const MemAccess& access, std::uint32_t set,
                          Addr block, Cycle now);
  AccessResult AccessStore(const MemAccess& access, std::uint32_t set,
                           Addr block, Cycle now);

  /// Commits the bookkeeping every completed access shares: set query
  /// (PL decay), sampling tick, access counter.
  void CommitQuery(std::uint32_t set, Cycle now);

  bool OutgoingFull() const { return outgoing_.size() >= cfg_.miss_queue_entries; }
  void PushOutgoing(L1DOutgoing req);

  void TraceBypass(std::uint32_t set, Addr block, Pc pc, BypassReason reason);

  /// Evicts (set, way) for reuse; updates stats/VTA/writeback traffic.
  void EvictFor(std::uint32_t set, std::uint32_t way, Addr new_block, Pc pc);

  L1DConfig cfg_;
  PlCounters pl_counters_;
  TagArray tda_;
  MshrTable mshr_;
  std::unique_ptr<ProtectionPolicy> policy_;
  std::deque<L1DOutgoing> outgoing_;
  CacheStats stats_;
  AccessObserver* observer_ = nullptr;
  TraceSink* trace_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  // Registry instruments (cached stable pointers; see obs/metrics.h).
  obs::Counter* m_accesses_ = nullptr;        // cache.accesses
  obs::Counter* m_fills_ = nullptr;           // cache.fills
  obs::Histogram* m_mshr_occupancy_ = nullptr;  // cache.mshr_occupancy
  std::uint16_t sm_ = 0;
  Cycle fault_blackout_until_ = 0;  // robust/: accesses fail before this
};

}  // namespace dlpsim
