#include "core/l1d_cache.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace_sink.h"

namespace dlpsim {

const char* ToString(AccessResult r) {
  switch (r) {
    case AccessResult::kHit:
      return "hit";
    case AccessResult::kMissIssued:
      return "miss_issued";
    case AccessResult::kMissMerged:
      return "miss_merged";
    case AccessResult::kBypassed:
      return "bypassed";
    case AccessResult::kStoreSent:
      return "store_sent";
    case AccessResult::kReservationFail:
      return "reservation_fail";
  }
  return "?";
}

L1DCache::L1DCache(const L1DConfig& cfg)
    : cfg_(cfg),
      tda_(cfg.geom),
      mshr_(cfg.mshr_entries, cfg.mshr_max_merged),
      policy_(MakePolicy(cfg)) {
  tda_.SetPlCounters(&pl_counters_);
  policy_->SetPlCounters(&pl_counters_);
  obs::Registry& reg = obs::Registry::Global();
  m_accesses_ = reg.GetCounter(
      "cache", "accesses", "L1D accesses committed (hit, miss or bypass)");
  m_fills_ = reg.GetCounter("cache", "fills",
                            "L1D lines filled by returning responses");
  static constexpr std::uint64_t kMshrBounds[] = {0, 1, 2, 4, 8, 16, 32};
  m_mshr_occupancy_ = reg.GetHistogram(
      "cache", "mshr_occupancy", kMshrBounds,
      "MSHR entries in use after each miss allocation");
}

void L1DCache::CommitQuery(std::uint32_t set, Cycle now) {
  ++stats_.accesses;
  m_accesses_->Add();
  obs::ProfileSpan span(profiler_, obs::Phase::kPolicyUpdate);
  policy_->OnSetQuery(tda_.SetView(set));
  policy_->OnAccessSampled(now);
}

void L1DCache::SetTraceSink(TraceSink* sink, std::uint32_t sm_id) {
  trace_ = sink;
  sm_ = static_cast<std::uint16_t>(sm_id);
  policy_->SetTrace(sink, sm_);
}

void L1DCache::TraceBypass(std::uint32_t set, Addr block, Pc pc,
                           BypassReason reason) {
  if (trace_ == nullptr) return;
  trace_->Emit({.arg0 = static_cast<std::uint64_t>(reason),
                .block = block,
                .pc = pc,
                .set = set,
                .sm = sm_,
                .kind = TraceEventKind::kBypass});
}

void L1DCache::PushOutgoing(L1DOutgoing req) {
  assert(outgoing_.size() < cfg_.miss_queue_entries);
  outgoing_.push_back(req);
}

L1DOutgoing L1DCache::PopOutgoing() {
  assert(!outgoing_.empty());
  L1DOutgoing front = outgoing_.front();
  outgoing_.pop_front();
  return front;
}

void L1DCache::EvictFor(std::uint32_t set, std::uint32_t way, Addr new_block,
                        Pc pc) {
  const CacheLine previous = tda_.Reserve(set, way, new_block, pc);
  if (!IsFilled(previous.state)) return;
  ++stats_.evictions;
  policy_->OnEviction(set, previous);
  if (trace_ != nullptr) {
    trace_->Emit({.arg0 = previous.state == LineState::kModified ? 1u : 0u,
                  .block = previous.block,
                  .pc = previous.src_pc,
                  .set = set,
                  .sm = sm_,
                  .kind = TraceEventKind::kEviction});
  }
  if (previous.state == LineState::kModified) {
    ++stats_.writebacks;
    PushOutgoing(L1DOutgoing{.block = previous.block,
                             .write = true,
                             .no_fill = true,
                             .pc = previous.src_pc,
                             .token = 0,
                             .payload_bytes = cfg_.geom.line_bytes});
  }
}

void L1DCache::InjectProtectedLifeFlip(std::uint32_t set, std::uint32_t way,
                                       std::uint32_t bit) {
  CacheLine& line = tda_.At(set, way);
  if (!IsOccupied(line.state)) return;  // PL is meaningless when invalid
  const std::uint32_t pd_max = cfg_.prot.pd_max();
  std::uint32_t corrupted = (line.protected_life ^ bit) & pd_max;
  if (corrupted == line.protected_life) corrupted = line.protected_life ^ 1u;
  corrupted &= pd_max;
  pl_counters_.Move(line.protected_life, corrupted);
  line.protected_life = corrupted;
}

AccessResult L1DCache::Access(const MemAccess& access, Cycle now) {
  obs::ProfileSpan span(profiler_, obs::Phase::kCacheAccess);
  if (now < fault_blackout_until_) {
    // Injected controller blackout: behave exactly like a reservation
    // failure so the LD/ST unit retries next cycle.
    ++stats_.reservation_fails;
    return AccessResult::kReservationFail;
  }
  const Addr block = tda_.BlockOf(access.addr);
  const std::uint32_t set = tda_.SetOfBlock(block);
  if (trace_ != nullptr) trace_->SetNow(now);
  const AccessResult result = access.type == AccessType::kLoad
                                  ? AccessLoad(access, set, block, now)
                                  : AccessStore(access, set, block, now);
  if (trace_ != nullptr) {
    trace_->Emit({.arg0 = static_cast<std::uint64_t>(result),
                  .block = block,
                  .pc = access.pc,
                  .set = set,
                  .sm = sm_,
                  .kind = TraceEventKind::kAccess});
  }
  return result;
}

AccessResult L1DCache::AccessLoad(const MemAccess& access, std::uint32_t set,
                                  Addr block, Cycle now) {
  const std::uint32_t way = tda_.Probe(set, block);

  // --- filled-line hit ---
  if (way != kInvalidIndex && IsFilled(tda_.At(set, way).state)) {
    if (observer_ != nullptr) {
      observer_->OnAccess(set, block, access.pc, AccessType::kLoad, true);
    }
    CommitQuery(set, now);
    policy_->OnLoadHit(tda_.At(set, way), access.pc);
    tda_.Touch(set, way);
    ++stats_.loads;
    ++stats_.load_hits;
    return AccessResult::kHit;
  }

  // --- reserved-line hit: merge into the in-flight MSHR entry ---
  if (way != kInvalidIndex) {
    assert(tda_.At(set, way).state == LineState::kReserved);
    if (mshr_.CanMerge(block)) {
      if (observer_ != nullptr) {
        observer_->OnAccess(set, block, access.pc, AccessType::kLoad, false);
      }
      CommitQuery(set, now);
      policy_->OnMergedMiss(tda_.At(set, way), access.pc);
      mshr_.Merge(block, access.token);
      ++stats_.loads;
      ++stats_.load_misses;
      ++stats_.mshr_merges;
      return AccessResult::kMissMerged;
    }
    // Unmergeable (entry at its merge limit): resource stall.
    if (policy_->BypassOnResourceStall() && !OutgoingFull()) {
      if (observer_ != nullptr) {
        observer_->OnAccess(set, block, access.pc, AccessType::kLoad, false);
      }
      CommitQuery(set, now);
      policy_->OnLoadMiss(set, block, access.pc);
      ++stats_.loads;
      ++stats_.load_misses;
      ++stats_.bypasses;
      PushOutgoing(L1DOutgoing{.block = block,
                               .write = false,
                               .no_fill = true,
                               .pc = access.pc,
                               .token = access.token,
                               .payload_bytes = 0});
      TraceBypass(set, block, access.pc, BypassReason::kResourceStall);
      return AccessResult::kBypassed;
    }
    ++stats_.reservation_fails;
    return AccessResult::kReservationFail;
  }

  // --- true miss ---
  bool resource_bypass = false;
  VictimChoice choice = policy_->PickVictim(tda_, set);

  if (choice.kind == VictimChoice::Kind::kWay) {
    // A normal miss needs an MSHR entry, one outgoing slot for the read
    // request, and a second slot if the victim is dirty.
    const bool dirty_victim =
        tda_.At(set, choice.way).state == LineState::kModified;
    const std::size_t slots_needed = dirty_victim ? 2 : 1;
    const bool has_resources =
        mshr_.CanAllocate() &&
        outgoing_.size() + slots_needed <= cfg_.miss_queue_entries;
    if (has_resources) {
      if (observer_ != nullptr) {
        observer_->OnAccess(set, block, access.pc, AccessType::kLoad, false);
      }
      CommitQuery(set, now);
      policy_->OnLoadMiss(set, block, access.pc);
      EvictFor(set, choice.way, block, access.pc);
      policy_->OnReserve(tda_.At(set, choice.way), access.pc);
      mshr_.Allocate(block, access.token);
      m_mshr_occupancy_->Observe(mshr_.size());
      PushOutgoing(L1DOutgoing{.block = block,
                               .write = false,
                               .no_fill = false,
                               .pc = access.pc,
                               .token = 0,
                               .payload_bytes = 0});
      ++stats_.loads;
      ++stats_.load_misses;
      ++stats_.misses_issued;
      return AccessResult::kMissIssued;
    }
    // MSHR / miss-queue exhaustion.
    resource_bypass = policy_->BypassOnResourceStall();
    choice = resource_bypass ? VictimChoice::Bypass() : VictimChoice::Stall();
  }

  if (choice.kind == VictimChoice::Kind::kBypass && !OutgoingFull()) {
    if (observer_ != nullptr) {
      observer_->OnAccess(set, block, access.pc, AccessType::kLoad, false);
    }
    CommitQuery(set, now);
    policy_->OnLoadMiss(set, block, access.pc);
    ++stats_.loads;
    ++stats_.load_misses;
    ++stats_.bypasses;
    PushOutgoing(L1DOutgoing{.block = block,
                             .write = false,
                             .no_fill = true,
                             .pc = access.pc,
                             .token = access.token,
                             .payload_bytes = 0});
    TraceBypass(set, block, access.pc,
                resource_bypass ? BypassReason::kResourceStall
                                : BypassReason::kNoVictim);
    return AccessResult::kBypassed;
  }

  ++stats_.reservation_fails;
  return AccessResult::kReservationFail;
}

AccessResult L1DCache::AccessStore(const MemAccess& access, std::uint32_t set,
                                   Addr block, Cycle now) {
  const std::uint32_t way = tda_.Probe(set, block);
  const bool hit = way != kInvalidIndex && IsFilled(tda_.At(set, way).state);

  if (hit && cfg_.write_policy == WritePolicy::kWriteBackOnHit) {
    if (observer_ != nullptr) {
      observer_->OnAccess(set, block, access.pc, AccessType::kStore, true);
    }
    CommitQuery(set, now);
    tda_.At(set, way).state = LineState::kModified;
    tda_.Touch(set, way);
    ++stats_.stores;
    ++stats_.store_hits;
    return AccessResult::kStoreSent;
  }

  // Write-through path (store miss, or any store under write-evict);
  // needs one outgoing slot.
  if (OutgoingFull()) {
    ++stats_.reservation_fails;
    return AccessResult::kReservationFail;
  }
  if (observer_ != nullptr) {
    observer_->OnAccess(set, block, access.pc, AccessType::kStore, hit);
  }
  CommitQuery(set, now);
  ++stats_.stores;
  if (hit) {
    // Write-evict (Fermi global stores): invalidate the cached copy.
    ++stats_.store_hits;
    ++stats_.store_invalidates;
    tda_.Invalidate(set, way);
  }
  PushOutgoing(L1DOutgoing{.block = block,
                           .write = true,
                           .no_fill = true,
                           .pc = access.pc,
                           .token = 0,
                           .payload_bytes = cfg_.geom.line_bytes});
  return AccessResult::kStoreSent;
}

void L1DCache::Fill(const L1DResponse& response, Cycle now,
                    std::vector<MshrToken>& woken) {
  if (response.no_fill) {
    woken.push_back(response.token);
    return;
  }
  const std::uint32_t set = tda_.SetOfBlock(response.block);
  const bool filled = tda_.Fill(set, response.block);
  assert(filled && "fill for a block that is not reserved");
  (void)filled;
  ++stats_.fills;
  m_fills_->Add();
  if (trace_ != nullptr) {
    trace_->SetNow(now);
    trace_->Emit({.block = response.block,
                  .set = set,
                  .sm = sm_,
                  .kind = TraceEventKind::kFill});
  }
  std::vector<MshrToken> tokens = mshr_.Retire(response.block);
  woken.insert(woken.end(), tokens.begin(), tokens.end());
}

void L1DCache::Reset() {
  pl_counters_.Clear();
  tda_ = TagArray(cfg_.geom);
  tda_.SetPlCounters(&pl_counters_);
  mshr_ = MshrTable(cfg_.mshr_entries, cfg_.mshr_max_merged);
  policy_->Reset();
  outgoing_.clear();
}

}  // namespace dlpsim
