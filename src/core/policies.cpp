#include "core/policies.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace dlpsim {

// ---------------------------------------------------------------------------
// Default (no-op) hook bodies shared by the plain-LRU policies.
// ---------------------------------------------------------------------------

void ProtectionPolicy::OnSetQuery(std::span<CacheLine>) {}
void ProtectionPolicy::OnLoadHit(CacheLine&, Pc) {}
void ProtectionPolicy::OnMergedMiss(CacheLine&, Pc) {}
void ProtectionPolicy::OnLoadMiss(std::uint32_t, Addr, Pc) {}
void ProtectionPolicy::OnReserve(CacheLine&, Pc) {}
void ProtectionPolicy::OnEviction(std::uint32_t, const CacheLine&) {}
void ProtectionPolicy::OnAccessSampled(Cycle) {}
void ProtectionPolicy::Reset() {}

namespace {
/// Plain LRU victim: INVALID wins, else LRU filled line, else (all lines
/// RESERVED) no victim.
VictimChoice LruVictim(const TagArray& tda, std::uint32_t set) {
  const std::uint32_t way =
      tda.LruWayWhere(set, [](const CacheLine&) { return true; });
  return way == kInvalidIndex ? VictimChoice::Stall() : VictimChoice::Way(way);
}
}  // namespace

// ---------------------------------------------------------------------------
// Baseline / Stall-Bypass
// ---------------------------------------------------------------------------

VictimChoice BaselinePolicy::PickVictim(const TagArray& tda,
                                        std::uint32_t set) {
  return LruVictim(tda, set);
}

VictimChoice StallBypassPolicy::PickVictim(const TagArray& tda,
                                           std::uint32_t set) {
  const VictimChoice c = LruVictim(tda, set);
  // Any would-be stall turns into a bypass (paper §5.3: Stall-Bypass
  // bypasses when a stall is detected for any reason).
  return c.kind == VictimChoice::Kind::kStall ? VictimChoice::Bypass() : c;
}

// ---------------------------------------------------------------------------
// ProtectedLifePolicy (Global-Protection and DLP)
// ---------------------------------------------------------------------------

namespace {
ProtectionConfig OverrideTable(ProtectionConfig prot, std::uint32_t entries,
                               std::uint32_t insn_id_bits) {
  prot.pdpt_entries = entries;
  prot.insn_id_bits = insn_id_bits;
  return prot;
}

std::uint32_t VtaWays(const L1DConfig& cfg) {
  return cfg.prot.vta_ways == 0 ? cfg.geom.ways : cfg.prot.vta_ways;
}
}  // namespace

ProtectedLifePolicy::ProtectedLifePolicy(const L1DConfig& cfg,
                                         std::uint32_t table_entries,
                                         std::uint32_t insn_id_bits)
    : pdpt_(OverrideTable(cfg.prot, table_entries, insn_id_bits), VtaWays(cfg)),
      vta_(cfg.geom.sets, VtaWays(cfg)),
      window_(cfg.prot) {
  obs::Registry& reg = obs::Registry::Global();
  m_pl_decrements_ = reg.GetCounter(
      "cache", "pl_decrements",
      "protected-life decrements applied by set-query decay");
  m_pd_recomputes_ = reg.GetCounter(
      "cache", "pd_recomputes",
      "PDPT end-of-window protection-distance recomputations");
  m_vta_hits_ = reg.GetCounter(
      "cache", "vta_hits", "victim-tag-array hits credited on load misses");
}

void ProtectedLifePolicy::OnSetQuery(std::span<CacheLine> set) {
  // Lines with PL > 0 are always occupied (Reserve and Invalidate both
  // zero the field), so the counter move needs no occupancy check.
  std::uint32_t decrements = 0;
  for (CacheLine& line : set) {
    if (line.protected_life > 0) {
      --line.protected_life;
      ++decrements;
      if (pl_counters_ != nullptr) {
        pl_counters_->Move(line.protected_life + 1, line.protected_life);
      }
    }
  }
  // One batched registry add per query keeps the hot loop's metric cost
  // to at most one relaxed fetch_add regardless of associativity.
  if (decrements > 0) m_pl_decrements_->Add(decrements);
}

void ProtectedLifePolicy::StampOwnership(CacheLine& line, Pc pc) {
  const std::uint32_t id = pdpt_.IndexOf(pc);
  const std::uint32_t old_pl = line.protected_life;
  line.insn_id = id;
  line.protected_life = pdpt_.Pd(id);
  if (pl_counters_ != nullptr) {
    // Stamped lines are occupied (filled on a hit, RESERVED otherwise).
    pl_counters_->Move(old_pl, line.protected_life);
  }
  if (trace_ != nullptr && line.protected_life == pdpt_.pd_max()) {
    trace_->Emit({.arg0 = id,
                  .block = line.block,
                  .pc = pc,
                  .sm = trace_sm_,
                  .kind = TraceEventKind::kPlSaturated});
  }
}

void ProtectedLifePolicy::OnLoadHit(CacheLine& line, Pc pc) {
  // Attribute the hit to the instruction that last owned the line, then
  // transfer ownership to the hitting instruction (paper §4.1.1).
  pdpt_.CreditTdaHit(line.insn_id);
  StampOwnership(line, pc);
}

void ProtectedLifePolicy::OnMergedMiss(CacheLine& line, Pc pc) {
  StampOwnership(line, pc);
}

void ProtectedLifePolicy::OnLoadMiss(std::uint32_t set, Addr block, Pc pc) {
  const VictimTagArray::HitInfo info = vta_.ProbeAndConsume(set, block);
  if (!info.hit) return;
  pdpt_.CreditVtaHit(info.insn_id);
  m_vta_hits_->Add();
  if (trace_ != nullptr) {
    trace_->Emit({.arg0 = info.insn_id,
                  .block = block,
                  .pc = pc,
                  .set = set,
                  .sm = trace_sm_,
                  .kind = TraceEventKind::kVtaHit});
  }
}

void ProtectedLifePolicy::OnReserve(CacheLine& line, Pc pc) {
  StampOwnership(line, pc);
}

void ProtectedLifePolicy::OnEviction(std::uint32_t set,
                                     const CacheLine& line) {
  vta_.Insert(set, line.block, line.insn_id);
}

VictimChoice ProtectedLifePolicy::PickVictim(const TagArray& tda,
                                             std::uint32_t set) {
  const std::uint32_t way = tda.LruWayWhere(
      set, [](const CacheLine& l) { return l.protected_life == 0; });
  if (way != kInvalidIndex) return VictimChoice::Way(way);

  // No unprotected victim. If the blocker is protection (at least one
  // filled line exists), bypass; if every way is RESERVED (fills in
  // flight), the miss must stall exactly like the baseline.
  auto view = tda.SetView(set);
  const bool any_filled =
      std::any_of(view.begin(), view.end(),
                  [](const CacheLine& l) { return IsFilled(l.state); });
  return any_filled ? VictimChoice::Bypass() : VictimChoice::Stall();
}

void ProtectedLifePolicy::OnAccessSampled(Cycle now) {
  if (!window_.OnAccess(now)) return;
  m_pd_recomputes_->Add();
  if (trace_ == nullptr) {
    pdpt_.EndSample();
  } else {
    // mean PD x1000 keeps the event payload integral without losing the
    // sub-unit motion of a 128-entry mean.
    const auto mean_milli = [this] {
      return static_cast<std::uint64_t>(pdpt_.MeanPd() * 1000.0);
    };
    const std::uint64_t before = mean_milli();
    const std::uint64_t tda_hits = pdpt_.global_tda_hits();
    const std::uint64_t vta_hits = pdpt_.global_vta_hits();
    const PdpTable::UpdatePath path = pdpt_.EndSample();
    trace_->Emit({.arg0 = before,
                  .arg1 = mean_milli(),
                  .arg2 = static_cast<std::uint64_t>(path),
                  .block = tda_hits,
                  .pc = static_cast<Pc>(vta_hits),
                  .sm = trace_sm_,
                  .kind = TraceEventKind::kPdSample});
  }
  window_.Restart(now);
}

void ProtectedLifePolicy::Reset() {
  pdpt_.Clear();
  vta_.Clear();
  window_.Restart(0);
}

GlobalProtectionPolicy::GlobalProtectionPolicy(const L1DConfig& cfg)
    : ProtectedLifePolicy(cfg, /*table_entries=*/1, /*insn_id_bits=*/0) {}

DlpPolicy::DlpPolicy(const L1DConfig& cfg)
    : ProtectedLifePolicy(cfg, cfg.prot.pdpt_entries, cfg.prot.insn_id_bits) {}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<ProtectionPolicy> MakePolicy(const L1DConfig& cfg) {
  switch (cfg.policy) {
    case PolicyKind::kBaseline:
      return std::make_unique<BaselinePolicy>();
    case PolicyKind::kStallBypass:
      return std::make_unique<StallBypassPolicy>();
    case PolicyKind::kGlobalProtection:
      return std::make_unique<GlobalProtectionPolicy>(cfg);
    case PolicyKind::kDlp:
      return std::make_unique<DlpPolicy>(cfg);
  }
  assert(false && "unknown policy kind");
  return nullptr;
}

}  // namespace dlpsim
