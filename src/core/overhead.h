// Hardware-cost model for the DLP additions (paper §4.3).
//
// Reproduces the paper's arithmetic: per-TDA-entry instruction-ID (7b) and
// Protected-Life (4b) fields, VTA entries of tag (32b) + instruction ID
// (7b), and PDPT entries of 7b + 8b + 10b + 4b, reported as bytes and as a
// fraction of the baseline cache (tag+data) size.
#pragma once

#include <cstdint>
#include <string>

#include "sim/config.h"

namespace dlpsim {

struct OverheadReport {
  std::uint64_t tda_extra_bits = 0;   // insn ID + PL added to each TDA entry
  std::uint64_t vta_bits = 0;         // tag + insn ID per VTA entry
  std::uint64_t pdpt_bits = 0;        // all PDPT entries
  std::uint64_t baseline_bits = 0;    // data + tags of the unmodified cache

  std::uint64_t tda_extra_bytes() const { return (tda_extra_bits + 7) / 8; }
  std::uint64_t vta_bytes() const { return (vta_bits + 7) / 8; }
  std::uint64_t pdpt_bytes() const { return (pdpt_bits + 7) / 8; }
  std::uint64_t total_extra_bytes() const {
    return tda_extra_bytes() + vta_bytes() + pdpt_bytes();
  }
  std::uint64_t baseline_bytes() const { return (baseline_bits + 7) / 8; }
  double overhead_fraction() const {
    return baseline_bits == 0
               ? 0.0
               : static_cast<double>(total_extra_bits()) /
                     static_cast<double>(baseline_bits);
  }
  std::uint64_t total_extra_bits() const {
    return tda_extra_bits + vta_bits + pdpt_bits;
  }

  std::string ToText() const;
};

/// Computes the DLP storage overhead for a given L1D configuration.
/// `tag_bits` is the per-line tag width used for the paper's arithmetic
/// (the paper charges 32 bits per VTA tag).
OverheadReport ComputeOverhead(const L1DConfig& cfg,
                               std::uint32_t tag_bits = 32);

}  // namespace dlpsim
