// L1D management policies (paper §5.3 and §4).
//
//   Baseline          - LRU; stall (retry) on any reservation failure.
//   Stall-Bypass      - LRU; bypass instead of stalling, whatever the
//                       stall reason (MSHR full, no reservable line,
//                       full miss queue).
//   Global-Protection - protected-life replacement driven by ONE global
//                       protection distance (PDP emulation): a 1-entry
//                       prediction table fed by global VTA/TDA hits.
//   DLP               - per-instruction protection distances via the
//                       128-entry PDPT (the paper's contribution).
//
// The policies observe the access stream through narrow hooks called by
// L1DCache; they own the VTA and PDPT where applicable.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "cache/line.h"
#include "cache/pl_counters.h"
#include "cache/tag_array.h"
#include "core/pdpt.h"
#include "core/vta.h"
#include "sim/config.h"
#include "sim/types.h"

namespace dlpsim {

class TraceSink;

namespace obs {
class Counter;
}  // namespace obs

/// Outcome of asking a policy where a missing line may be placed.
struct VictimChoice {
  enum class Kind : std::uint8_t {
    kWay,     // replace this way
    kBypass,  // send the request around the cache
    kStall,   // no resource; retry next cycle
  };
  Kind kind = Kind::kStall;
  std::uint32_t way = kInvalidIndex;

  static VictimChoice Way(std::uint32_t w) {
    return {Kind::kWay, w};
  }
  static VictimChoice Bypass() { return {Kind::kBypass, kInvalidIndex}; }
  static VictimChoice Stall() { return {Kind::kStall, kInvalidIndex}; }
};

class ProtectionPolicy {
 public:
  virtual ~ProtectionPolicy() = default;

  virtual PolicyKind kind() const = 0;

  /// A completed access (hit, miss or bypass) queried `set`. DLP/GP
  /// decrement every line's protected life here (paper §4.1.1: bypassed
  /// requests also consume PL, releasing over-protected sets).
  virtual void OnSetQuery(std::span<CacheLine> set);

  /// A load hit on a filled line: attribute the hit, refresh PL, and move
  /// instruction ownership to the hitting instruction (paper §4.1.1).
  virtual void OnLoadHit(CacheLine& line, Pc pc);

  /// A load found the line RESERVED and merged into the MSHR. No hit is
  /// credited (the data is not in the cache yet) but the access still
  /// rewrites the PL field with the requester's PD.
  virtual void OnMergedMiss(CacheLine& line, Pc pc);

  /// A committed load miss (the access will be issued or bypassed, not
  /// stalled): probe the VTA and credit its stored instruction.
  virtual void OnLoadMiss(std::uint32_t set, Addr block, Pc pc);

  /// A line was reserved for the missing instruction: stamp insn ID + PL.
  virtual void OnReserve(CacheLine& line, Pc pc);

  /// A filled line was displaced: record its tag in the VTA.
  virtual void OnEviction(std::uint32_t set, const CacheLine& line);

  /// Where may a miss to `set` allocate?
  virtual VictimChoice PickVictim(const TagArray& tda, std::uint32_t set) = 0;

  /// Should an MSHR-full / miss-queue-full condition bypass instead of
  /// stalling? Only Stall-Bypass says yes.
  virtual bool BypassOnResourceStall() const { return false; }

  /// Sampling hook, called once per completed access.
  virtual void OnAccessSampled(Cycle now);

  /// Reset policy state between kernels.
  virtual void Reset();

  /// Attaches (or detaches, with nullptr) the event-trace sink. Shared
  /// with the owning L1DCache, which keeps the sink's cycle stamp
  /// current; `sm` tags emitted events. Protection policies emit VTA-hit,
  /// PD-recompute and PL-saturation records through it.
  void SetTrace(TraceSink* trace, std::uint16_t sm) {
    trace_ = trace;
    trace_sm_ = sm;
  }

  /// Attaches (or detaches, with nullptr) the owning cache's incremental
  /// protected-line counters; the policy reports every PL mutation
  /// (set-query decay, ownership re-stamping) so snapshots never need a
  /// full tag walk.
  void SetPlCounters(PlCounters* counters) { pl_counters_ = counters; }

  // Introspection for tests, benches and reports (null/0 when N/A).
  virtual const PdpTable* pdpt() const { return nullptr; }
  virtual const VictimTagArray* vta() const { return nullptr; }
  virtual std::uint32_t PdForPc(Pc) const { return 0; }

  // Mutable table access for the fault injector (robust/) only; the
  // normal simulation path never mutates policy tables from outside.
  virtual PdpTable* mutable_pdpt() { return nullptr; }
  virtual VictimTagArray* mutable_vta() { return nullptr; }

 protected:
  TraceSink* trace_ = nullptr;
  std::uint16_t trace_sm_ = 0;
  PlCounters* pl_counters_ = nullptr;
};

/// Factory keyed by L1DConfig::policy.
std::unique_ptr<ProtectionPolicy> MakePolicy(const L1DConfig& cfg);

// --- concrete policies (exposed for direct unit testing) ---

class BaselinePolicy : public ProtectionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kBaseline; }
  VictimChoice PickVictim(const TagArray& tda, std::uint32_t set) override;
};

class StallBypassPolicy : public ProtectionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kStallBypass; }
  VictimChoice PickVictim(const TagArray& tda, std::uint32_t set) override;
  bool BypassOnResourceStall() const override { return true; }
};

/// Shared machinery for Global-Protection and DLP: VTA + prediction table
/// + protected-life replacement + bypass-on-full-protection.
class ProtectedLifePolicy : public ProtectionPolicy {
 public:
  ProtectedLifePolicy(const L1DConfig& cfg, std::uint32_t table_entries,
                      std::uint32_t insn_id_bits);

  void OnSetQuery(std::span<CacheLine> set) override;
  void OnLoadHit(CacheLine& line, Pc pc) override;
  void OnMergedMiss(CacheLine& line, Pc pc) override;
  void OnLoadMiss(std::uint32_t set, Addr block, Pc pc) override;
  void OnReserve(CacheLine& line, Pc pc) override;
  void OnEviction(std::uint32_t set, const CacheLine& line) override;
  VictimChoice PickVictim(const TagArray& tda, std::uint32_t set) override;
  void OnAccessSampled(Cycle now) override;
  void Reset() override;

  /// The protection schemes own a bypass datapath; like Stall-Bypass they
  /// use it instead of stalling when the MSHR or miss queue is exhausted.
  /// (This is required for the paper's Fig. 10 ordering DLP >= Stall-
  /// Bypass on every CI application: protection alone cannot recover the
  /// resource-stall cycles that SB eliminates.)
  bool BypassOnResourceStall() const override { return true; }

  const PdpTable* pdpt() const override { return &pdpt_; }
  const VictimTagArray* vta() const override { return &vta_; }
  std::uint32_t PdForPc(Pc pc) const override { return pdpt_.PdForPc(pc); }
  PdpTable* mutable_pdpt() override { return &pdpt_; }
  VictimTagArray* mutable_vta() override { return &vta_; }

 protected:
  PdpTable pdpt_;
  VictimTagArray vta_;
  SampleWindow window_;

 private:
  /// Common OnLoadHit/OnMergedMiss/OnReserve tail: move instruction
  /// ownership to `pc` and rewrite PL (tracing PL-field saturation).
  void StampOwnership(CacheLine& line, Pc pc);

  // Registry instruments (obs::Registry::Global(); stable pointers cached
  // at construction). Pure telemetry: counted off completed policy work,
  // never read back into decisions.
  obs::Counter* m_pl_decrements_ = nullptr;  // cache.pl_decrements
  obs::Counter* m_pd_recomputes_ = nullptr;  // cache.pd_recomputes
  obs::Counter* m_vta_hits_ = nullptr;       // cache.vta_hits
};

class GlobalProtectionPolicy : public ProtectedLifePolicy {
 public:
  explicit GlobalProtectionPolicy(const L1DConfig& cfg);
  PolicyKind kind() const override { return PolicyKind::kGlobalProtection; }
};

class DlpPolicy : public ProtectedLifePolicy {
 public:
  explicit DlpPolicy(const L1DConfig& cfg);
  PolicyKind kind() const override { return PolicyKind::kDlp; }
};

}  // namespace dlpsim
