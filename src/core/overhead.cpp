#include "core/overhead.h"

#include <sstream>

namespace dlpsim {

OverheadReport ComputeOverhead(const L1DConfig& cfg, std::uint32_t tag_bits) {
  const ProtectionConfig& p = cfg.prot;
  const std::uint64_t tda_entries = cfg.geom.num_lines();
  const std::uint64_t vta_ways = p.vta_ways == 0 ? cfg.geom.ways : p.vta_ways;
  const std::uint64_t vta_entries = std::uint64_t{cfg.geom.sets} * vta_ways;

  OverheadReport r;
  // Per-TDA-entry additions: instruction ID + protected life.
  r.tda_extra_bits = tda_entries * (p.insn_id_bits + p.pd_bits);
  // VTA: 32-bit tag + instruction ID per entry (paper §4.3).
  r.vta_bits = vta_entries * (tag_bits + p.insn_id_bits);
  // PDPT: insn ID + TDA hits + VTA hits + PD per entry.
  r.pdpt_bits = std::uint64_t{p.pdpt_entries} *
                (p.insn_id_bits + p.tda_hit_bits + p.vta_hit_bits + p.pd_bits);
  // Baseline cache: data plus tags ("16896 bytes for the TDA" in the paper
  // = 16KB data + 128 x 32-bit tags).
  r.baseline_bits =
      cfg.geom.size_bytes() * 8ull + tda_entries * std::uint64_t{tag_bits};
  return r;
}

std::string OverheadReport::ToText() const {
  std::ostringstream os;
  os << "TDA extra fields: " << tda_extra_bytes() << " B\n"
     << "VTA:              " << vta_bytes() << " B\n"
     << "PDPT:             " << pdpt_bytes() << " B\n"
     << "Total extra:      " << total_extra_bytes() << " B\n"
     << "Baseline cache:   " << baseline_bytes() << " B\n"
     << "Overhead:         " << overhead_fraction() * 100.0 << " %\n";
  return os.str();
}

}  // namespace dlpsim
