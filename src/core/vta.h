// Victim Tag Array (paper §4.1.2).
//
// Holds the tags (plus instruction IDs) of lines recently evicted from the
// TDA. A hit in the VTA means "a larger/longer-lived cache would have hit
// here" -- exactly the signal used to grow protection distances. Entries
// carry no data; sets mirror the TDA's sets and the associativity equals
// the TDA's (paper footnote 2). LRU replacement; entries are consumed on
// hit (the line is about to be refetched and will re-enter the TDA).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace dlpsim {

class VictimTagArray {
 public:
  VictimTagArray(std::uint32_t sets, std::uint32_t ways);

  struct HitInfo {
    bool hit = false;
    std::uint32_t insn_id = 0;  // instruction credited with the VTA hit
  };

  /// Probes for `block` in `set`; on hit the entry is removed and the
  /// stored instruction ID returned for PDPT crediting.
  HitInfo ProbeAndConsume(std::uint32_t set, Addr block);

  /// Probe without consuming (analysis/tests).
  bool Contains(std::uint32_t set, Addr block) const;

  /// Inserts an evicted tag; replaces the set's LRU entry when full.
  void Insert(std::uint32_t set, Addr block, std::uint32_t insn_id);

  /// Drops every entry (used between kernels).
  void Clear();

  std::uint32_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }

  /// Occupied entries in `set` (tests).
  std::uint32_t Occupancy(std::uint32_t set) const;

  /// Occupied entries of `set` in LRU-to-MRU order. Used by the verify/
  /// differential driver to diff VTA contents against the oracle without
  /// exposing way positions (which are not architecturally meaningful).
  struct EntryView {
    Addr block = 0;
    std::uint32_t insn_id = 0;
  };
  std::vector<EntryView> SetEntries(std::uint32_t set) const;

 private:
  struct Entry {
    Addr block = 0;
    std::uint32_t insn_id = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  Entry* SetBase(std::uint32_t set) { return &entries_[std::size_t{set} * ways_]; }
  const Entry* SetBase(std::uint32_t set) const {
    return &entries_[std::size_t{set} * ways_];
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::vector<Entry> entries_;
  std::uint64_t use_clock_ = 0;
};

}  // namespace dlpsim
