#include "sim/stats.h"

#include <sstream>

namespace dlpsim {

bool StatRegistry::Register(const std::string& name,
                            const std::uint64_t* counter) {
  return counters_.emplace(name, counter).second;
}

std::uint64_t StatRegistry::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : *it->second;
}

bool StatRegistry::Has(const std::string& name) const {
  return counters_.count(name) != 0;
}

std::vector<std::string> StatRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, ptr] : counters_) out.push_back(name);
  return out;
}

std::string StatRegistry::Dump() const {
  std::ostringstream os;
  for (const auto& [name, ptr] : counters_) os << name << ' ' << *ptr << '\n';
  return os.str();
}

}  // namespace dlpsim
