// Lightweight named-counter registry used by every hardware model.
//
// Components own plain uint64 counters for the hot path and register them
// here by name so that the harness, tests and report writers can read any
// statistic generically without bespoke accessors.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dlpsim {

class StatRegistry {
 public:
  /// Registers an externally owned counter under `name`. The pointee must
  /// outlive the registry. Duplicate names are rejected (returns false).
  bool Register(const std::string& name, const std::uint64_t* counter);

  /// Looks a counter up; returns 0 for unknown names (missing statistics
  /// read as zero, which keeps report code total-function).
  std::uint64_t Get(const std::string& name) const;

  bool Has(const std::string& name) const;

  /// Names in lexicographic order (stable output for golden tests).
  std::vector<std::string> Names() const;

  /// Renders "name value" lines, one per counter.
  std::string Dump() const;

 private:
  std::map<std::string, const std::uint64_t*> counters_;
};

/// Tiny saturating counter helper (hardware hit counters are saturating;
/// paper §4.3 gives their widths).
class SaturatingCounter {
 public:
  explicit SaturatingCounter(std::uint32_t bits = 8)
      : max_((bits >= 32) ? 0xffffffffu : ((1u << bits) - 1u)) {}

  void Increment() {
    if (value_ < max_) ++value_;
  }
  void Reset() { value_ = 0; }
  std::uint32_t value() const { return value_; }
  std::uint32_t max() const { return max_; }

 private:
  std::uint32_t max_;
  std::uint32_t value_ = 0;
};

}  // namespace dlpsim
