// Multi-rate clock-domain scheduler.
//
// GPGPU-Sim advances its core, interconnect and memory clocks with a
// "next event" loop over the domains' periods; we reproduce that scheme.
// Each domain has a frequency; Tick() returns which domain(s) fire next
// in deterministic registration order, advancing simulated wall time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace dlpsim {

class ClockDomainSet {
 public:
  /// Registers a domain; returns its index. freq_mhz must be > 0.
  std::uint32_t AddDomain(std::string name, double freq_mhz);

  /// Advances simulated time to the next domain edge(s). All domains whose
  /// edge falls on that instant (within half the smallest period) fire
  /// together, in registration order. Returns indices of fired domains.
  const std::vector<std::uint32_t>& Tick();

  /// Number of ticks domain `idx` has received so far.
  Cycle cycles(std::uint32_t idx) const { return domains_[idx].cycles; }

  /// Current simulated time in nanoseconds.
  double now_ns() const { return now_ns_; }

  const std::string& name(std::uint32_t idx) const { return domains_[idx].name; }
  std::size_t num_domains() const { return domains_.size(); }

 private:
  struct Domain {
    std::string name;
    double period_ns = 1.0;
    double next_ns = 0.0;
    Cycle cycles = 0;
  };

  std::vector<Domain> domains_;
  std::vector<std::uint32_t> fired_;
  double now_ns_ = 0.0;
};

}  // namespace dlpsim
