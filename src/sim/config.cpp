#include "sim/config.h"

#include <sstream>

namespace dlpsim {
namespace {

bool IsPowerOfTwo(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::string RenderIssues(const std::vector<ConfigIssue>& issues) {
  std::ostringstream os;
  os << "invalid SimConfig (" << issues.size()
     << (issues.size() == 1 ? " issue):" : " issues):");
  for (const ConfigIssue& i : issues) os << "\n  " << i.ToString();
  return os.str();
}

void Require(bool ok, const std::string& field, const std::string& message,
             std::vector<ConfigIssue>& issues) {
  if (!ok) issues.push_back(ConfigIssue{field, message});
}

}  // namespace

ConfigError::ConfigError(std::vector<ConfigIssue> issues)
    : std::invalid_argument(RenderIssues(issues)), issues_(std::move(issues)) {}

const char* ToString(PolicyKind k) {
  switch (k) {
    case PolicyKind::kBaseline:
      return "Baseline";
    case PolicyKind::kStallBypass:
      return "Stall-Bypass";
    case PolicyKind::kGlobalProtection:
      return "Global-Protection";
    case PolicyKind::kDlp:
      return "DLP";
  }
  return "?";
}

SimConfig SimConfig::Baseline16KB() { return SimConfig{}; }

SimConfig SimConfig::Cache32KB() {
  SimConfig c;
  c.l1d.geom.ways = 8;
  return c;
}

SimConfig SimConfig::Cache64KB() {
  SimConfig c;
  c.l1d.geom.ways = 16;
  return c;
}

SimConfig SimConfig::WithPolicy(PolicyKind k) {
  SimConfig c;
  c.l1d.policy = k;
  return c;
}

void CacheGeometry::AppendIssues(const std::string& prefix,
                                 std::vector<ConfigIssue>& issues) const {
  Require(sets > 0 && IsPowerOfTwo(sets), prefix + ".sets",
          "must be a nonzero power of two (got " + std::to_string(sets) + ")",
          issues);
  Require(ways > 0, prefix + ".ways", "must be nonzero", issues);
  Require(line_bytes >= 8 && IsPowerOfTwo(line_bytes), prefix + ".line_bytes",
          "must be a power of two >= 8 (got " + std::to_string(line_bytes) +
              ")",
          issues);
}

std::vector<ConfigIssue> L1DConfig::Validate() const {
  std::vector<ConfigIssue> issues;
  geom.AppendIssues("l1d.geom", issues);
  Require(mshr_entries > 0, "l1d.mshr_entries", "must be nonzero", issues);
  Require(mshr_max_merged > 0, "l1d.mshr_max_merged", "must be nonzero",
          issues);
  // A write-back miss with a dirty victim needs two miss-queue slots in the
  // same cycle (writeback + refill request); one slot can never drain it and
  // the warp livelocks on kReservationFail forever.
  const std::uint32_t min_mq =
      write_policy == WritePolicy::kWriteBackOnHit ? 2u : 1u;
  Require(miss_queue_entries >= min_mq, "l1d.miss_queue_entries",
          "must be >= " + std::to_string(min_mq) +
              " for this write policy (got " +
              std::to_string(miss_queue_entries) + ")",
          issues);
  Require(hit_latency > 0, "l1d.hit_latency", "must be nonzero", issues);
  // Protection tables: PD/PL live in pd_bits-wide fields that the policy
  // clamps to pd_max(); 0 bits means "no protection at all" and > 4 bits
  // overflows the 16-bucket PlCounters histogram assumed by SnapshotPolicy.
  Require(prot.pd_bits >= 1 && prot.pd_bits <= 4, "l1d.prot.pd_bits",
          "must be in [1, 4] (got " + std::to_string(prot.pd_bits) + ")",
          issues);
  Require(prot.pdpt_entries > 0, "l1d.prot.pdpt_entries", "must be nonzero",
          issues);
  Require(prot.insn_id_bits >= 1 && prot.insn_id_bits <= 16,
          "l1d.prot.insn_id_bits",
          "must be in [1, 16] (got " + std::to_string(prot.insn_id_bits) + ")",
          issues);
  if (prot.insn_id_bits >= 1 && prot.insn_id_bits <= 16) {
    Require((1u << prot.insn_id_bits) <= prot.pdpt_entries,
            "l1d.prot.insn_id_bits",
            "2^insn_id_bits (" + std::to_string(1u << prot.insn_id_bits) +
                ") must not exceed pdpt_entries (" +
                std::to_string(prot.pdpt_entries) + ")",
            issues);
  }
  Require(prot.sample_accesses > 0, "l1d.prot.sample_accesses",
          "must be nonzero", issues);
  Require(prot.sample_max_cycles > 0, "l1d.prot.sample_max_cycles",
          "must be nonzero", issues);
  Require(prot.tda_hit_bits >= 1 && prot.tda_hit_bits <= 32,
          "l1d.prot.tda_hit_bits", "must be in [1, 32]", issues);
  Require(prot.vta_hit_bits >= 1 && prot.vta_hit_bits <= 32,
          "l1d.prot.vta_hit_bits", "must be in [1, 32]", issues);
  return issues;
}

void L1DConfig::ValidateOrThrow() const {
  std::vector<ConfigIssue> issues = Validate();
  if (!issues.empty()) throw ConfigError(std::move(issues));
}

std::vector<ConfigIssue> SimConfig::Validate() const {
  std::vector<ConfigIssue> issues = l1d.Validate();
  l2.geom.AppendIssues("l2.geom", issues);
  Require(l2.mshr_entries > 0, "l2.mshr_entries", "must be nonzero", issues);
  Require(l2.mshr_max_merged > 0, "l2.mshr_max_merged", "must be nonzero",
          issues);
  Require(l2.miss_queue_entries > 0, "l2.miss_queue_entries",
          "must be nonzero", issues);
  Require(num_cores > 0, "num_cores", "must be nonzero", issues);
  Require(num_partitions > 0, "num_partitions", "must be nonzero", issues);
  Require(core_mhz > 0.0, "core_mhz", "must be positive", issues);
  Require(icnt_mhz > 0.0, "icnt_mhz", "must be positive", issues);
  Require(mem_mhz > 0.0, "mem_mhz", "must be positive", issues);
  Require(core.warp_size > 0, "core.warp_size", "must be nonzero", issues);
  Require(core.max_warps > 0, "core.max_warps", "must be nonzero", issues);
  Require(core.num_schedulers > 0, "core.num_schedulers", "must be nonzero",
          issues);
  Require(core.ldst_width > 0, "core.ldst_width", "must be nonzero", issues);
  Require(core.ldst_queue_entries > 0, "core.ldst_queue_entries",
          "must be nonzero", issues);
  Require(partition_chunk_bytes > 0, "partition_chunk_bytes",
          "must be nonzero", issues);
  Require(max_core_cycles > 0, "max_core_cycles", "must be nonzero", issues);
  Require(icnt.bytes_per_cycle_per_port > 0, "icnt.bytes_per_cycle_per_port",
          "must be nonzero", issues);
  Require(icnt.request_size > 0, "icnt.request_size", "must be nonzero",
          issues);
  Require(dram.banks > 0, "dram.banks", "must be nonzero", issues);
  Require(dram.row_bytes > 0 && IsPowerOfTwo(dram.row_bytes), "dram.row_bytes",
          "must be a nonzero power of two", issues);
  Require(dram.bus_bytes_per_cycle > 0, "dram.bus_bytes_per_cycle",
          "must be nonzero", issues);
  return issues;
}

void SimConfig::ValidateOrThrow() const {
  std::vector<ConfigIssue> issues = Validate();
  if (!issues.empty()) throw ConfigError(std::move(issues));
}

std::string CanonicalText(const SimConfig& c) {
  std::ostringstream os;
  const auto geom = [&os](const char* prefix, const CacheGeometry& g) {
    os << prefix << ".sets " << g.sets << '\n';
    os << prefix << ".ways " << g.ways << '\n';
    os << prefix << ".line_bytes " << g.line_bytes << '\n';
    os << prefix << ".index " << static_cast<int>(g.index) << '\n';
  };
  os << "config_format v1\n";
  os << "num_cores " << c.num_cores << '\n';
  os << "num_partitions " << c.num_partitions << '\n';
  os << "core.warp_size " << c.core.warp_size << '\n';
  os << "core.max_warps " << c.core.max_warps << '\n';
  os << "core.num_schedulers " << c.core.num_schedulers << '\n';
  os << "core.ldst_width " << c.core.ldst_width << '\n';
  os << "core.ldst_queue_entries " << c.core.ldst_queue_entries << '\n';
  os << "core.alu_latency " << c.core.alu_latency << '\n';
  os << "core.sfu_latency " << c.core.sfu_latency << '\n';
  geom("l1d.geom", c.l1d.geom);
  os << "l1d.write_policy " << static_cast<int>(c.l1d.write_policy) << '\n';
  os << "l1d.mshr_entries " << c.l1d.mshr_entries << '\n';
  os << "l1d.mshr_max_merged " << c.l1d.mshr_max_merged << '\n';
  os << "l1d.miss_queue_entries " << c.l1d.miss_queue_entries << '\n';
  os << "l1d.hit_latency " << c.l1d.hit_latency << '\n';
  os << "l1d.policy " << static_cast<int>(c.l1d.policy) << '\n';
  os << "l1d.prot.sample_accesses " << c.l1d.prot.sample_accesses << '\n';
  os << "l1d.prot.sample_max_cycles " << c.l1d.prot.sample_max_cycles << '\n';
  os << "l1d.prot.pdpt_entries " << c.l1d.prot.pdpt_entries << '\n';
  os << "l1d.prot.insn_id_bits " << c.l1d.prot.insn_id_bits << '\n';
  os << "l1d.prot.pd_bits " << c.l1d.prot.pd_bits << '\n';
  os << "l1d.prot.vta_ways " << c.l1d.prot.vta_ways << '\n';
  os << "l1d.prot.tda_hit_bits " << c.l1d.prot.tda_hit_bits << '\n';
  os << "l1d.prot.vta_hit_bits " << c.l1d.prot.vta_hit_bits << '\n';
  geom("l2.geom", c.l2.geom);
  os << "l2.mshr_entries " << c.l2.mshr_entries << '\n';
  os << "l2.mshr_max_merged " << c.l2.mshr_max_merged << '\n';
  os << "l2.miss_queue_entries " << c.l2.miss_queue_entries << '\n';
  os << "l2.latency " << c.l2.latency << '\n';
  os << "dram.banks " << c.dram.banks << '\n';
  os << "dram.row_bytes " << c.dram.row_bytes << '\n';
  os << "dram.t_row_hit " << c.dram.t_row_hit << '\n';
  os << "dram.t_row_miss " << c.dram.t_row_miss << '\n';
  os << "dram.t_rc " << c.dram.t_rc << '\n';
  os << "dram.bus_bytes_per_cycle " << c.dram.bus_bytes_per_cycle << '\n';
  os << "icnt.latency " << c.icnt.latency << '\n';
  os << "icnt.bytes_per_cycle_per_port " << c.icnt.bytes_per_cycle_per_port
     << '\n';
  os << "icnt.request_size " << c.icnt.request_size << '\n';
  os << "icnt.control_overhead " << c.icnt.control_overhead << '\n';
  os << "core_mhz " << c.core_mhz << '\n';
  os << "icnt_mhz " << c.icnt_mhz << '\n';
  os << "mem_mhz " << c.mem_mhz << '\n';
  os << "partition_chunk_bytes " << c.partition_chunk_bytes << '\n';
  os << "other_traffic_bytes " << c.other_traffic_bytes << '\n';
  os << "other_traffic_per_insns " << c.other_traffic_per_insns << '\n';
  os << "max_core_cycles " << c.max_core_cycles << '\n';
  return os.str();
}

}  // namespace dlpsim
