#include "sim/config.h"

namespace dlpsim {

const char* ToString(PolicyKind k) {
  switch (k) {
    case PolicyKind::kBaseline:
      return "Baseline";
    case PolicyKind::kStallBypass:
      return "Stall-Bypass";
    case PolicyKind::kGlobalProtection:
      return "Global-Protection";
    case PolicyKind::kDlp:
      return "DLP";
  }
  return "?";
}

SimConfig SimConfig::Baseline16KB() { return SimConfig{}; }

SimConfig SimConfig::Cache32KB() {
  SimConfig c;
  c.l1d.geom.ways = 8;
  return c;
}

SimConfig SimConfig::Cache64KB() {
  SimConfig c;
  c.l1d.geom.ways = 16;
  return c;
}

SimConfig SimConfig::WithPolicy(PolicyKind k) {
  SimConfig c;
  c.l1d.policy = k;
  return c;
}

}  // namespace dlpsim
