// Fundamental scalar types shared by every dlpsim module.
#pragma once

#include <cstdint>

namespace dlpsim {

/// Simulation cycle count within one clock domain.
using Cycle = std::uint64_t;

/// Byte address in the simulated global memory space.
using Addr = std::uint64_t;

/// Program counter of a (warp-level) instruction. PCs identify memory
/// instructions for the PDPT; they are hashed down to 7 bits when stored
/// in hardware tables (see core/pdpt.h).
using Pc = std::uint32_t;

/// Identifier types. Kept as plain integers for speed; the wiring code in
/// gpu/ is the only place that converts between them.
using SmId = std::uint32_t;
using WarpId = std::uint32_t;    // warp index within one SM
using PartitionId = std::uint32_t;

/// A sentinel for "no value" indices.
inline constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

/// Memory access kind as seen by the L1D cache.
enum class AccessType : std::uint8_t {
  kLoad,
  kStore,
};

/// Hash a PC down to `bits` bits. This mirrors the hardware's hashed
/// instruction-ID field: the PDPT has 128 entries, so 7 bits.
constexpr std::uint32_t HashPc(Pc pc, unsigned bits) {
  if (bits == 0) return 0;  // degenerate tables (Global-Protection)
  // Simple multiplicative hash (Knuth); deterministic across runs.
  std::uint32_t h = pc * 2654435761u;
  return h >> (32u - bits);
}

}  // namespace dlpsim
