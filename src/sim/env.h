// The configuration layer for DLPSIM_* environment knobs.
//
// Every environment read in the simulator, the bench harness and the
// tools goes through these helpers -- this file's .cpp is the project's
// only std::getenv call site. That centralization is enforced by
// dlp_lint rule S1, which also cross-checks that every knob name passed
// to these functions at a call site is documented in README.md and
// EXPERIMENTS.md: a knob that cannot be discovered without reading the
// source silently forks experiment behaviour between machines.
//
// The helpers deliberately keep the historical parse semantics of the
// call sites they replaced (positive-only numbers fall back, presence
// vs. truthiness are distinct), so routing a knob through this layer is
// always behaviour-preserving.
#pragma once

#include <cstdint>
#include <string>

namespace dlpsim::env {

/// Raw value of `name`, or nullptr when unset. Prefer the typed helpers;
/// Raw() exists for tri-state knobs (set-empty vs. unset vs. value) like
/// DLPSIM_CHECK and for spec strings parsed elsewhere (DLPSIM_FAULTS).
const char* Raw(const char* name);

/// True when the variable is set at all, even to "" or "0". Presence
/// semantics (e.g. DLPSIM_NOCACHE disables the cache however it is set).
bool IsSet(const char* name);

/// True when set to anything except "" and "0" (truthiness semantics,
/// e.g. DLPSIM_TRACE).
bool Flag(const char* name);

/// String value, or `fallback` when unset.
std::string Str(const char* name, const char* fallback);

/// Positive integer value; unset, unparsable or zero returns `fallback`.
std::uint64_t U64(const char* name, std::uint64_t fallback);

/// Positive double value; unset, unparsable or <= 0 returns `fallback`.
double PositiveDouble(const char* name, double fallback);

}  // namespace dlpsim::env
