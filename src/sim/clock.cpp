#include "sim/clock.h"

#include <cassert>
#include <limits>

namespace dlpsim {

std::uint32_t ClockDomainSet::AddDomain(std::string name, double freq_mhz) {
  assert(freq_mhz > 0.0);
  Domain d;
  d.name = std::move(name);
  d.period_ns = 1000.0 / freq_mhz;
  d.next_ns = d.period_ns;
  domains_.push_back(std::move(d));
  return static_cast<std::uint32_t>(domains_.size() - 1);
}

const std::vector<std::uint32_t>& ClockDomainSet::Tick() {
  fired_.clear();
  assert(!domains_.empty());

  double min_next = std::numeric_limits<double>::infinity();
  double min_period = std::numeric_limits<double>::infinity();
  for (const Domain& d : domains_) {
    if (d.next_ns < min_next) min_next = d.next_ns;
    if (d.period_ns < min_period) min_period = d.period_ns;
  }
  // Domains whose edge is within half the fastest period of the earliest
  // edge fire together; this keeps 1:1 domains (core/icnt) in lockstep
  // despite floating-point drift.
  const double slack = min_period * 1e-9;
  now_ns_ = min_next;
  for (std::uint32_t i = 0; i < domains_.size(); ++i) {
    Domain& d = domains_[i];
    if (d.next_ns <= min_next + slack) {
      d.cycles++;
      // Recompute from an integer cycle count to avoid cumulative error.
      d.next_ns = static_cast<double>(d.cycles + 1) * d.period_ns;
      fired_.push_back(i);
    }
  }
  return fired_;
}

}  // namespace dlpsim
