#include "sim/env.h"

#include <cstdlib>

namespace dlpsim::env {

const char* Raw(const char* name) { return std::getenv(name); }

bool IsSet(const char* name) { return Raw(name) != nullptr; }

bool Flag(const char* name) {
  const char* v = Raw(name);
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

std::string Str(const char* name, const char* fallback) {
  const char* v = Raw(name);
  return v != nullptr ? v : fallback;
}

std::uint64_t U64(const char* name, std::uint64_t fallback) {
  if (const char* v = Raw(name)) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v && parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return fallback;
}

double PositiveDouble(const char* name, double fallback) {
  if (const char* v = Raw(name)) {
    char* end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end != v && parsed > 0.0) return parsed;
  }
  return fallback;
}

}  // namespace dlpsim::env
