// Simulation configuration structs. Defaults encode Table 1 of the paper
// (Tesla M2090 / Fermi as configured in GPGPU-Sim).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace dlpsim {

/// One structured validation finding: which field is wrong and why.
struct ConfigIssue {
  std::string field;    // dotted path, e.g. "l1d.geom.sets"
  std::string message;  // human-readable constraint, e.g. "must be a power of two (got 33)"

  std::string ToString() const { return field + ": " + message; }
};

/// Thrown by ValidateOrThrow(): carries every issue found, not just the
/// first, so a misconfigured sweep can be fixed in one pass.
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(std::vector<ConfigIssue> issues);
  const std::vector<ConfigIssue>& issues() const { return issues_; }

 private:
  std::vector<ConfigIssue> issues_;
};

/// Which L1D management scheme to run (paper §5.3).
enum class PolicyKind : std::uint8_t {
  kBaseline,          // plain LRU, stall on reservation failure
  kStallBypass,       // bypass whenever the access would stall
  kGlobalProtection,  // single global protection distance (PDP emulation)
  kDlp,               // per-instruction protection distances (the paper)
};

const char* ToString(PolicyKind k);

/// How cache set indices are derived from addresses.
enum class IndexFunction : std::uint8_t {
  kLinear,  // bits directly above the line offset
  kHash,    // xor-folded bits (paper Table 1: L1D uses "Hash index")
};

/// Geometry + behaviour of one cache (L1D or an L2 slice).
struct CacheGeometry {
  std::uint32_t sets = 32;
  std::uint32_t ways = 4;
  std::uint32_t line_bytes = 128;
  IndexFunction index = IndexFunction::kHash;

  std::uint32_t num_lines() const { return sets * ways; }
  std::uint64_t size_bytes() const {
    return static_cast<std::uint64_t>(sets) * ways * line_bytes;
  }

  /// Structural constraints (power-of-two sets/line size, nonzero ways);
  /// `prefix` labels the owning cache in the issue's field path.
  void AppendIssues(const std::string& prefix,
                    std::vector<ConfigIssue>& issues) const;
};

/// DLP / Global-Protection tunables (paper §4).
struct ProtectionConfig {
  // Sampling (paper §4.1.4): a sample ends after this many cache accesses.
  std::uint32_t sample_accesses = 200;
  // CS applications with few loads would otherwise sample forever; the
  // paper caps sampling by instructions executed. We use core cycles as
  // the equivalent observable at the cache boundary.
  std::uint64_t sample_max_cycles = 50000;
  // PDPT size: 128 entries, 7-bit hashed instruction IDs (paper §4.1.3).
  std::uint32_t pdpt_entries = 128;
  std::uint32_t insn_id_bits = 7;
  // PD / PL field width: 4 bits (paper §4.3) -> values clamped to [0, 15].
  std::uint32_t pd_bits = 4;
  // VTA: same number of sets as the TDA; associativity equals the TDA's
  // (paper footnote 2). 0 means "mirror the TDA associativity".
  std::uint32_t vta_ways = 0;
  // Saturating hit counters: TDA hits 8 bits, VTA hits 10 bits (§4.3).
  std::uint32_t tda_hit_bits = 8;
  std::uint32_t vta_hit_bits = 10;

  std::uint32_t pd_max() const { return (1u << pd_bits) - 1u; }
};

/// Store handling in the L1D.
enum class WritePolicy : std::uint8_t {
  kWriteEvict,      // store hit invalidates the line; all stores go to L2
  kWriteBackOnHit,  // store hit dirties the line; misses write through
};

/// L1D front-end configuration.
struct L1DConfig {
  CacheGeometry geom;  // 16KB: 32 sets x 4 ways x 128B
  WritePolicy write_policy = WritePolicy::kWriteBackOnHit;
  std::uint32_t mshr_entries = 32;  // GPGPU-Sim Fermi L1D default
  std::uint32_t mshr_max_merged = 8;
  std::uint32_t miss_queue_entries = 8;
  std::uint32_t hit_latency = 1;  // core cycles
  ProtectionConfig prot;
  PolicyKind policy = PolicyKind::kBaseline;

  /// L1D-level constraints (geometry, MSHR/miss-queue sizing vs the write
  /// policy, protection-table consistency). Used by SimConfig::Validate()
  /// and directly by cache-only drivers (TraceReplayer).
  std::vector<ConfigIssue> Validate() const;
  void ValidateOrThrow() const;
};

/// One L2 slice (per memory partition). Table 1: 768KB total over 12
/// partitions = 64KB per slice = 64 sets x 8 ways x 128B, linear index.
struct L2Config {
  CacheGeometry geom{64, 8, 128, IndexFunction::kLinear};
  std::uint32_t mshr_entries = 64;
  std::uint32_t mshr_max_merged = 8;
  std::uint32_t miss_queue_entries = 8;
  std::uint32_t latency = 150;  // memory-domain cycles from input to hit reply
};

/// Simplified GDDR5 bank timing (memory-domain cycles).
struct DramConfig {
  std::uint32_t banks = 6;          // Table 1: 6 banks / partition
  std::uint32_t row_bytes = 2048;   // row-buffer reach
  std::uint32_t t_row_hit = 60;     // column-access latency (CAS + I/O)
  std::uint32_t t_row_miss = 160;   // precharge + activate + CAS latency
  std::uint32_t t_rc = 37;          // bank occupancy of a row miss (tRC)
  // Effective data-bus bandwidth per partition in bytes per memory-domain
  // cycle. 177.4 GB/s / 12 partitions / 924 MHz ~= 16 B/cycle (the 32-bit
  // GDDR5 bus runs at a multiplied data rate).
  std::uint32_t bus_bytes_per_cycle = 16;
};

/// Crossbar interconnect configuration.
struct IcntConfig {
  std::uint32_t latency = 60;                 // icnt-domain cycles per hop
  std::uint32_t bytes_per_cycle_per_port = 32;  // per SM / per partition
  std::uint32_t request_size = 8;             // read-request packet bytes
  std::uint32_t control_overhead = 8;         // header bytes on data packets
};

/// SM core configuration (Table 1).
struct CoreConfig {
  std::uint32_t warp_size = 32;
  std::uint32_t max_warps = 48;
  std::uint32_t num_schedulers = 2;  // GTO
  std::uint32_t ldst_width = 1;      // L1D transactions accepted per cycle
  std::uint32_t ldst_queue_entries = 8;  // pending warp memory ops
  std::uint32_t alu_latency = 10;    // result latency of a default ALU op
  std::uint32_t sfu_latency = 20;
};

/// Whole-GPU configuration (Table 1 defaults).
struct SimConfig {
  std::uint32_t num_cores = 16;
  std::uint32_t num_partitions = 12;
  CoreConfig core;
  L1DConfig l1d;
  L2Config l2;
  DramConfig dram;
  IcntConfig icnt;

  // Clock domains in MHz (Table 1: core/icnt 650, memory 924).
  double core_mhz = 650.0;
  double icnt_mhz = 650.0;
  double mem_mhz = 924.0;

  // Address interleaving granularity across partitions.
  std::uint32_t partition_chunk_bytes = 256;

  // Background (L1I/L1C/L1T) interconnect traffic: bytes injected per
  // SM per `other_traffic_per_insns` committed warp instructions. This
  // models the paper's observation (§6.4) that the icnt also serves the
  // other L1 caches, diluting L1D traffic reductions.
  std::uint32_t other_traffic_bytes = 136;
  std::uint32_t other_traffic_per_insns = 50;

  // Safety cap so no experiment can hang: simulation aborts after this
  // many core cycles even if warps have not drained.
  Cycle max_core_cycles = 3'000'000;

  /// Which memory partition services a byte address. The chunk index is
  /// hashed before the modulo, as Fermi hashes its partition selection:
  /// plain interleaving makes any access stride that is a multiple of
  /// num_partitions * chunk camp on a single partition (and warp-strided
  /// GPU layouts hit exactly that).
  PartitionId PartitionOf(Addr addr) const {
    const Addr chunk = addr / partition_chunk_bytes;
    return static_cast<PartitionId>(SplitMix64(chunk) % num_partitions);
  }

  /// Convenience: named presets used throughout tests and benches.
  static SimConfig Baseline16KB();   // Table 1 exactly
  static SimConfig Cache32KB();      // 8-way, same sets (paper §5.3)
  static SimConfig Cache64KB();      // 16-way, same sets (Fig. 4/5)
  static SimConfig WithPolicy(PolicyKind k);  // baseline geometry + policy

  /// Whole-config structural validation. Returns every violated
  /// constraint (empty = valid); a bad config would otherwise produce UB
  /// (non-power-of-two set indexing), a guaranteed livelock (a write-back
  /// L1D whose miss queue cannot ever fit a dirty miss) or nonsense
  /// metrics (zero clocks). GpuSimulator's constructor calls
  /// ValidateOrThrow() so experiments fail fast with a structured error.
  std::vector<ConfigIssue> Validate() const;
  void ValidateOrThrow() const;
};

/// Canonical, field-complete text form of a SimConfig: one "dotted.path
/// value" line per field, in a fixed order. Two configs serialize to the
/// same text iff every simulation-relevant field matches, so hashing this
/// text gives a content address for "the exact machine that was
/// simulated" (the serve/ result cache keys on it). Extend this function
/// whenever SimConfig grows a field; tests/serve/content_cache_test.cpp
/// pins that edits to representative fields in every sub-struct change
/// the text.
std::string CanonicalText(const SimConfig& cfg);

}  // namespace dlpsim
