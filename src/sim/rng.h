// Deterministic, fast pseudo-random number generation for workloads.
//
// We avoid <random> engines in the hot path: workload address generators
// call the RNG once per lane per memory instruction, and xoshiro-style
// mixing is both faster and bit-reproducible across standard libraries.
#pragma once

#include <cstdint>

namespace dlpsim {

/// SplitMix64: used to seed and to hash (key, counter) pairs statelessly.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Stateless hash of two 64-bit values to one. Used by address patterns so
/// that the address of (warp, iteration, lane) is a pure function -- this
/// keeps every simulated configuration exactly repeatable.
constexpr std::uint64_t HashMix(std::uint64_t a, std::uint64_t b) {
  return SplitMix64(a * 0x9e3779b97f4a7c15ull + SplitMix64(b));
}

/// xorshift64* generator for stateful uses (graph generation, shuffles).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1234abcdull) : state_(SplitMix64(seed)) {
    if (state_ == 0) state_ = 0x9e3779b97f4a7c15ull;
  }

  std::uint64_t Next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t Below(std::uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

/// Bounded Zipf-like sampler over [0, n). Approximates a Zipf(s)
/// distribution with the inverse-CDF of the continuous bounded Pareto,
/// which is accurate enough for cache-skew modelling and O(1) per sample.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {}

  std::uint64_t Sample(double u) const {
    // u in [0,1). For s == 0 this degenerates to uniform.
    if (s_ <= 0.0) return static_cast<std::uint64_t>(u * static_cast<double>(n_));
    const double one_minus_s = 1.0 - s_;
    double x;
    if (one_minus_s > 1e-9 || one_minus_s < -1e-9) {
      // Inverse CDF of bounded Pareto on [1, n+1).
      const double nn = static_cast<double>(n_) + 1.0;
      const double h = (PowFast(nn, one_minus_s) - 1.0) * u + 1.0;
      x = PowFast(h, 1.0 / one_minus_s);
    } else {
      // s == 1: logarithmic CDF.
      const double nn = static_cast<double>(n_) + 1.0;
      x = ExpFast(u * LogFast(nn));
    }
    std::uint64_t idx = static_cast<std::uint64_t>(x) - 1;
    return idx >= n_ ? n_ - 1 : idx;
  }

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  // Thin wrappers so the header does not pull <cmath> into every TU that
  // includes rng.h transitively; defined inline to stay header-only.
  static double PowFast(double b, double e);
  static double ExpFast(double v);
  static double LogFast(double v);

  std::uint64_t n_;
  double s_;
};

}  // namespace dlpsim

#include <cmath>
namespace dlpsim {
inline double ZipfSampler::PowFast(double b, double e) { return std::pow(b, e); }
inline double ZipfSampler::ExpFast(double v) { return std::exp(v); }
inline double ZipfSampler::LogFast(double v) { return std::log(v); }
}  // namespace dlpsim
