#include "cache/tag_array.h"

#include <bit>
#include <cassert>

namespace dlpsim {

namespace {
std::uint32_t Log2Exact(std::uint32_t v) {
  assert(v != 0 && (v & (v - 1)) == 0 && "must be a power of two");
  return static_cast<std::uint32_t>(std::countr_zero(v));
}
}  // namespace

TagArray::TagArray(const CacheGeometry& geom)
    : geom_(geom),
      set_mask_(geom.sets - 1),
      set_bits_(Log2Exact(geom.sets)),
      lines_(static_cast<std::size_t>(geom.sets) * geom.ways) {}

std::uint32_t TagArray::SetOfBlock(Addr block) const {
  if (geom_.index == IndexFunction::kLinear) {
    return static_cast<std::uint32_t>(block) & set_mask_;
  }
  // Hash index (Table 1): xor-fold three slices of the block address so
  // that power-of-two strides spread over all sets.
  const Addr folded = block ^ (block >> set_bits_) ^ (block >> (2 * set_bits_));
  return static_cast<std::uint32_t>(folded) & set_mask_;
}

std::uint32_t TagArray::Probe(std::uint32_t set, Addr block) const {
  auto view = SetView(set);
  for (std::uint32_t w = 0; w < view.size(); ++w) {
    if (IsOccupied(view[w].state) && view[w].block == block) return w;
  }
  return kInvalidIndex;
}

void TagArray::Touch(std::uint32_t set, std::uint32_t way) {
  At(set, way).last_use = ++use_clock_;
}

CacheLine TagArray::Reserve(std::uint32_t set, std::uint32_t way, Addr block,
                            Pc pc) {
  CacheLine& line = At(set, way);
  CacheLine previous = line;
  if (pl_ != nullptr) {
    if (IsOccupied(previous.state)) pl_->Remove(previous.protected_life);
    pl_->Add(0);  // the RESERVED line starts unprotected
  }
  line.block = block;
  line.state = LineState::kReserved;
  line.last_use = ++use_clock_;
  line.alloc_time = use_clock_;
  line.src_pc = pc;
  line.insn_id = 0;
  // Lifecycle reset on (re)allocation, not the Fig. 9 update flow: a
  // RESERVED line always starts unprotected; only core/ policies ever
  // assign a nonzero PL.
  line.protected_life = 0;  // NOLINT(dlp-i1)
  return previous;
}

bool TagArray::Fill(std::uint32_t set, Addr block) {
  const std::uint32_t way = Probe(set, block);
  if (way == kInvalidIndex) return false;
  CacheLine& line = At(set, way);
  if (line.state != LineState::kReserved) return false;
  line.state = LineState::kValid;
  return true;
}

CacheLine TagArray::Invalidate(std::uint32_t set, std::uint32_t way) {
  CacheLine& line = At(set, way);
  CacheLine previous = line;
  if (pl_ != nullptr && IsOccupied(previous.state)) {
    pl_->Remove(previous.protected_life);
  }
  line = CacheLine{};
  return previous;
}

std::span<CacheLine> TagArray::SetView(std::uint32_t set) {
  return {&lines_[static_cast<std::size_t>(set) * geom_.ways], geom_.ways};
}

std::span<const CacheLine> TagArray::SetView(std::uint32_t set) const {
  return {&lines_[static_cast<std::size_t>(set) * geom_.ways], geom_.ways};
}

CacheLine& TagArray::At(std::uint32_t set, std::uint32_t way) {
  assert(set < geom_.sets && way < geom_.ways);
  return lines_[static_cast<std::size_t>(set) * geom_.ways + way];
}

const CacheLine& TagArray::At(std::uint32_t set, std::uint32_t way) const {
  assert(set < geom_.sets && way < geom_.ways);
  return lines_[static_cast<std::size_t>(set) * geom_.ways + way];
}

}  // namespace dlpsim
