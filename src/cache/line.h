// Cache line metadata shared by the TDA (L1D), the VTA and the L2 slices.
#pragma once

#include <cstdint>

#include "sim/types.h"

namespace dlpsim {

/// Line life cycle. RESERVED marks allocate-on-miss lines whose fill is
/// still in flight (GPGPU-Sim semantics); reserved lines can never be
/// chosen as victims, which is one of the stall sources DLP relieves.
enum class LineState : std::uint8_t {
  kInvalid,
  kReserved,
  kValid,
  kModified,
};

inline bool IsOccupied(LineState s) { return s != LineState::kInvalid; }
inline bool IsFilled(LineState s) {
  return s == LineState::kValid || s == LineState::kModified;
}

struct CacheLine {
  Addr block = 0;            // line-aligned address / line_bytes
  LineState state = LineState::kInvalid;
  std::uint64_t last_use = 0;  // LRU timestamp (monotone access counter)
  std::uint64_t alloc_time = 0;

  // --- DLP extension fields (paper §4.1.1) ---
  // Hashed PC (7 bits) of the instruction that brought the line in or hit
  // it last; hits are attributed to this instruction.
  std::uint32_t insn_id = 0;
  // Protected Life: decremented on every query of the owning set; a line
  // with pl > 0 cannot be replaced. 4-bit field, clamped by the policy.
  std::uint32_t protected_life = 0;
  // Full PC kept for analysis/debug output only (not modelled hardware).
  Pc src_pc = 0;
};

}  // namespace dlpsim
