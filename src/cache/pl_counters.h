// Incrementally maintained protected-line counters.
//
// PolicySnapshot needs, per timeline sample, the number of occupied L1D
// lines at each protected-life value. Walking every SM's full tag array
// (16 SMs x 32 sets x 4 ways) per sample made SnapshotPolicy() the
// dominant cost of telemetry-enabled runs; instead the tag array and the
// protection policy report every PL/occupancy transition here, making a
// snapshot an O(16)-bucket read.
//
// Invariants (checked by tests/gpu/simulator_test.cpp against a brute
// force walk):
//   histogram[b] == #occupied lines with min(protected_life, 15) == b
// PL is a 4-bit field so bucket 15 also absorbs any wider test values.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace dlpsim {

struct PlCounters {
  std::array<std::uint64_t, 16> histogram{};

  static std::size_t Bucket(std::uint32_t pl) {
    return pl < 15 ? pl : std::size_t{15};
  }

  /// A line became occupied with protected life `pl`.
  void Add(std::uint32_t pl) { ++histogram[Bucket(pl)]; }

  /// An occupied line with protected life `pl` was invalidated/evicted.
  void Remove(std::uint32_t pl) {
    assert(histogram[Bucket(pl)] > 0);
    --histogram[Bucket(pl)];
  }

  /// An occupied line's protected life changed from `from` to `to`.
  void Move(std::uint32_t from, std::uint32_t to) {
    if (Bucket(from) == Bucket(to)) return;
    Remove(from);
    Add(to);
  }

  void Clear() { histogram.fill(0); }

  /// Occupied lines currently protected (PL > 0).
  std::uint64_t protected_lines() const {
    std::uint64_t n = 0;
    for (std::size_t b = 1; b < histogram.size(); ++b) n += histogram[b];
    return n;
  }

  /// All occupied lines.
  std::uint64_t occupied_lines() const {
    std::uint64_t n = 0;
    for (std::uint64_t v : histogram) n += v;
    return n;
  }
};

}  // namespace dlpsim
