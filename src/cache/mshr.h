// Miss Status Holding Register table with request merging.
//
// One entry tracks one in-flight line; later misses to the same line merge
// into the entry (up to mshr_max_merged targets) instead of generating new
// interconnect traffic. A full table or an unmergeable entry is one of the
// reservation-failure stall reasons in the L1D pipeline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.h"

namespace dlpsim {

/// Opaque handle the requester attaches to a miss; returned on fill so the
/// SM can wake the right warp/lane group.
using MshrToken = std::uint64_t;

class MshrTable {
 public:
  MshrTable(std::uint32_t entries, std::uint32_t max_merged)
      : capacity_(entries), max_merged_(max_merged) {}

  bool Full() const { return table_.size() >= capacity_; }
  bool HasEntry(Addr block) const { return table_.count(block) != 0; }

  /// True iff `block` has an entry with room for another merged target.
  bool CanMerge(Addr block) const {
    auto it = table_.find(block);
    return it != table_.end() && it->second.size() < max_merged_;
  }

  /// True iff a brand-new entry can be allocated.
  bool CanAllocate() const { return !Full(); }

  /// Allocates a new entry for `block`. Pre: !HasEntry(block), !Full().
  void Allocate(Addr block, MshrToken token);

  /// Merges into the existing entry. Pre: CanMerge(block).
  void Merge(Addr block, MshrToken token);

  /// Retires the entry on fill, returning all merged tokens.
  std::vector<MshrToken> Retire(Addr block);

  std::size_t size() const { return table_.size(); }
  std::uint32_t capacity() const { return capacity_; }

  /// Number of targets currently merged for `block` (0 if absent).
  std::size_t TargetCount(Addr block) const {
    auto it = table_.find(block);
    return it == table_.end() ? 0 : it->second.size();
  }

  /// All blocks with in-flight entries, in ascending address order. Used
  /// by the invariant checker (robust/) to cross-check the MSHR against
  /// the tag array's RESERVED lines; sorted so any consumer that prints
  /// or compares the list stays deterministic.
  std::vector<Addr> Blocks() const {
    std::vector<Addr> out;
    out.reserve(table_.size());
    // Hash-order iteration is washed out by the sort below.
    for (const auto& [block, _] : table_) out.push_back(block);  // NOLINT(dlp-d1)
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::uint32_t capacity_;
  std::uint32_t max_merged_;
  std::unordered_map<Addr, std::vector<MshrToken>> table_;
};

}  // namespace dlpsim
