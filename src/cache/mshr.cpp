#include "cache/mshr.h"

#include <cassert>

namespace dlpsim {

void MshrTable::Allocate(Addr block, MshrToken token) {
  assert(!Full());
  auto [it, inserted] = table_.emplace(block, std::vector<MshrToken>{});
  assert(inserted && "Allocate on an existing entry; use Merge");
  it->second.push_back(token);
}

void MshrTable::Merge(Addr block, MshrToken token) {
  auto it = table_.find(block);
  assert(it != table_.end() && it->second.size() < max_merged_);
  it->second.push_back(token);
}

std::vector<MshrToken> MshrTable::Retire(Addr block) {
  auto it = table_.find(block);
  if (it == table_.end()) return {};
  std::vector<MshrToken> tokens = std::move(it->second);
  table_.erase(it);
  return tokens;
}

}  // namespace dlpsim
