// Observation hook for analysis passes (reuse-distance profiling,
// reuse-miss tracking). Observers see the raw access stream *before* any
// policy decision, so their measurements are policy independent.
#pragma once

#include "sim/types.h"

namespace dlpsim {

class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// Called once per L1D access with the pre-policy lookup outcome.
  /// `hit` is true when the block was present (VALID/MODIFIED) in the TDA.
  virtual void OnAccess(std::uint32_t set, Addr block, Pc pc,
                        AccessType type, bool hit) = 0;
};

}  // namespace dlpsim
