// Counter block for one cache instance.
#pragma once

#include <cstdint>
#include <string>

#include "sim/stats.h"

namespace dlpsim {

struct CacheStats {
  std::uint64_t accesses = 0;       // all queries that reached the cache
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t load_hits = 0;
  std::uint64_t load_misses = 0;    // includes merged and bypassed loads
  std::uint64_t store_hits = 0;
  std::uint64_t mshr_merges = 0;
  std::uint64_t misses_issued = 0;  // new MSHR entry -> one icnt request
  std::uint64_t bypasses = 0;       // requests sent around the cache
  std::uint64_t reservation_fails = 0;  // stall-retry cycles
  std::uint64_t evictions = 0;      // filled lines displaced by Reserve
  std::uint64_t writebacks = 0;     // MODIFIED evictions -> icnt data
  std::uint64_t fills = 0;
  std::uint64_t store_invalidates = 0;  // write-evict policy only

  /// Traffic *into* the cache that was actually serviced (paper Fig. 11a
  /// counts accesses that enter the L1D, i.e. everything except bypassed
  /// and stalled retries).
  std::uint64_t serviced() const { return accesses - bypasses; }

  double load_hit_rate() const {
    const std::uint64_t total = load_hits + load_misses;
    return total == 0 ? 0.0 : static_cast<double>(load_hits) / total;
  }

  void RegisterAll(StatRegistry& reg, const std::string& prefix) const {
    reg.Register(prefix + ".accesses", &accesses);
    reg.Register(prefix + ".loads", &loads);
    reg.Register(prefix + ".stores", &stores);
    reg.Register(prefix + ".load_hits", &load_hits);
    reg.Register(prefix + ".load_misses", &load_misses);
    reg.Register(prefix + ".store_hits", &store_hits);
    reg.Register(prefix + ".mshr_merges", &mshr_merges);
    reg.Register(prefix + ".misses_issued", &misses_issued);
    reg.Register(prefix + ".bypasses", &bypasses);
    reg.Register(prefix + ".reservation_fails", &reservation_fails);
    reg.Register(prefix + ".evictions", &evictions);
    reg.Register(prefix + ".writebacks", &writebacks);
    reg.Register(prefix + ".fills", &fills);
    reg.Register(prefix + ".store_invalidates", &store_invalidates);
  }
};

}  // namespace dlpsim
