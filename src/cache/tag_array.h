// Set-associative tag/data array with pluggable set indexing and LRU
// bookkeeping. Victim *selection* lives in the protection policies
// (core/policies.h); the tag array only offers mechanics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/line.h"
#include "cache/pl_counters.h"
#include "sim/config.h"
#include "sim/types.h"

namespace dlpsim {

class TagArray {
 public:
  explicit TagArray(const CacheGeometry& geom);

  // --- address mapping ---
  Addr BlockOf(Addr addr) const { return addr / geom_.line_bytes; }
  std::uint32_t SetOf(Addr addr) const { return SetOfBlock(BlockOf(addr)); }
  std::uint32_t SetOfBlock(Addr block) const;

  // --- lookup ---
  /// Way index of the line holding `block` (any occupied state), or
  /// kInvalidIndex. Does not touch LRU state.
  std::uint32_t Probe(std::uint32_t set, Addr block) const;

  /// Marks (set, way) as most recently used.
  void Touch(std::uint32_t set, std::uint32_t way);

  // --- mutation ---
  /// Allocates `block` into (set, way) in RESERVED state, returning the
  /// previous contents (for eviction bookkeeping by the caller).
  CacheLine Reserve(std::uint32_t set, std::uint32_t way, Addr block, Pc pc);

  /// Completes the fill of a RESERVED line. Returns false if the line no
  /// longer holds `block` (cannot happen in-sim; guards misuse in tests).
  bool Fill(std::uint32_t set, Addr block);

  /// Invalidates a line (write-evict stores). Returns previous contents.
  CacheLine Invalidate(std::uint32_t set, std::uint32_t way);

  // --- views ---
  std::span<CacheLine> SetView(std::uint32_t set);
  std::span<const CacheLine> SetView(std::uint32_t set) const;
  CacheLine& At(std::uint32_t set, std::uint32_t way);
  const CacheLine& At(std::uint32_t set, std::uint32_t way) const;

  /// LRU way among those satisfying `pred` (and not RESERVED); INVALID
  /// lines win immediately. Returns kInvalidIndex if none qualifies.
  template <typename Pred>
  std::uint32_t LruWayWhere(std::uint32_t set, Pred pred) const {
    std::uint32_t best = kInvalidIndex;
    std::uint64_t best_use = ~0ull;
    auto view = SetView(set);
    for (std::uint32_t w = 0; w < view.size(); ++w) {
      const CacheLine& line = view[w];
      if (line.state == LineState::kReserved) continue;
      if (line.state == LineState::kInvalid) return w;
      if (!pred(line)) continue;
      if (line.last_use < best_use) {
        best_use = line.last_use;
        best = w;
      }
    }
    return best;
  }

  const CacheGeometry& geom() const { return geom_; }

  /// Attaches (or detaches, with nullptr) the incremental protected-line
  /// counters: Reserve/Invalidate report occupancy transitions there.
  /// The L1D shares the same counters with its protection policy, which
  /// reports PL mutations (decay and re-stamping).
  void SetPlCounters(PlCounters* counters) { pl_ = counters; }

 private:
  CacheGeometry geom_;
  std::uint32_t set_mask_;
  std::uint32_t set_bits_;
  std::vector<CacheLine> lines_;  // sets * ways, row-major by set
  std::uint64_t use_clock_ = 0;   // monotone LRU timestamp source
  PlCounters* pl_ = nullptr;      // optional (unused by the L2 slices)
};

}  // namespace dlpsim
