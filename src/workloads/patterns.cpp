#include "workloads/patterns.h"

#include <sstream>

namespace dlpsim {

// ---------------------------------------------------------------------------
// StreamingPattern
// ---------------------------------------------------------------------------

StreamingPattern::StreamingPattern(Addr base, std::uint32_t lanes_per_line,
                                   std::uint32_t warp_size,
                                   std::uint64_t iters_hint)
    : AccessPattern(base, lanes_per_line, warp_size),
      lines_per_warp_((iters_hint + 1) * groups()) {}

Addr StreamingPattern::LineIndex(std::uint64_t warp, std::uint64_t iter,
                                 std::uint32_t group) const {
  return warp * lines_per_warp_ + iter * groups() + group;
}

std::string StreamingPattern::Describe() const {
  std::ostringstream os;
  os << "streaming(groups=" << groups() << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// PrivateCyclicPattern
// ---------------------------------------------------------------------------

PrivateCyclicPattern::PrivateCyclicPattern(Addr base,
                                           std::uint32_t lanes_per_line,
                                           std::uint32_t warp_size,
                                           std::uint64_t ws_lines)
    : AccessPattern(base, lanes_per_line, warp_size),
      ws_lines_(ws_lines == 0 ? 1 : ws_lines) {}

Addr PrivateCyclicPattern::LineIndex(std::uint64_t warp, std::uint64_t iter,
                                     std::uint32_t group) const {
  const std::uint64_t seq = iter * groups() + group;
  return warp * ws_lines_ + (seq % ws_lines_);
}

std::string PrivateCyclicPattern::Describe() const {
  std::ostringstream os;
  os << "private_cyclic(ws=" << ws_lines_ << " lines)";
  return os.str();
}

// ---------------------------------------------------------------------------
// SharedTilePattern
// ---------------------------------------------------------------------------

SharedTilePattern::SharedTilePattern(Addr base, std::uint32_t lanes_per_line,
                                     std::uint32_t warp_size,
                                     std::uint64_t tile_lines,
                                     std::uint32_t share_degree)
    : AccessPattern(base, lanes_per_line, warp_size),
      tile_lines_(tile_lines == 0 ? 1 : tile_lines),
      share_degree_(share_degree) {}

Addr SharedTilePattern::LineIndex(std::uint64_t warp, std::uint64_t iter,
                                  std::uint32_t group) const {
  const std::uint64_t tile = share_degree_ == 0 ? 0 : warp / share_degree_;
  const std::uint64_t seq = iter * groups() + group;
  return tile * tile_lines_ + (seq % tile_lines_);
}

std::string SharedTilePattern::Describe() const {
  std::ostringstream os;
  os << "shared_tile(tile=" << tile_lines_ << " lines, share="
     << (share_degree_ == 0 ? std::string("all")
                            : std::to_string(share_degree_))
     << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// IndirectPattern
// ---------------------------------------------------------------------------

IndirectPattern::IndirectPattern(Addr base, std::uint32_t lanes_per_line,
                                 std::uint32_t warp_size,
                                 std::uint64_t universe_lines, double zipf_s,
                                 std::uint64_t seed)
    : AccessPattern(base, lanes_per_line, warp_size),
      universe_lines_(universe_lines == 0 ? 1 : universe_lines),
      seed_(seed),
      zipf_(universe_lines_, zipf_s) {}

Addr IndirectPattern::LineIndex(std::uint64_t warp, std::uint64_t iter,
                                std::uint32_t group) const {
  const std::uint64_t h =
      HashMix(seed_, (warp << 34) ^ (iter << 8) ^ group);
  if (zipf_.s() <= 0.0) return h % universe_lines_;
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return zipf_.Sample(u);
}

std::string IndirectPattern::Describe() const {
  std::ostringstream os;
  os << "indirect(universe=" << universe_lines_ << " lines, zipf=" << zipf_.s()
     << ")";
  return os.str();
}

}  // namespace dlpsim
