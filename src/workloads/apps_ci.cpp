// Cache Insufficient benchmark kernels (paper Table 2, lower half).
//
// These are the workloads DLP is built for. Each kernel combines:
//  - churn PCs (streaming or large-universe indirect loads) that always
//    miss, giving ~1.5 set insertions per churn PC per warp iteration at
//    48 warps/SM -- enough to evict everything in a 4-way set (thrash);
//  - protectable PCs: tiny private working sets (S = 1..2 lines) whose
//    per-set reuse distance in *queries* is ~1.5 * S * total_mem_PCs,
//    kept <= 15 so a 4-bit protection distance can cover it.
//
// Design space (per set, 48 warps): baseline LRU retains insertion
// distances <= 4 ways; TDA+VTA detect <= 8; a 32KB 8-way retains <= 8;
// protection retains query distances <= 15 (and indefinitely once hits
// refresh the protected life). Apps where the paper shows DLP beating the
// 32KB cache (CFD, SR2K) place their reuse just beyond the 8-insertion
// reach; apps where gains come purely from bypassing (KM) place it far
// beyond any reach. See DESIGN.md and examples/pattern_calibration.cpp.
#include <stdexcept>
#include <string_view>

#include "workloads/registry.h"

namespace dlpsim {

namespace {

AppInfo InfoFor(std::string_view abbr) {
  for (const AppInfo& a : AllApps()) {
    if (a.abbr == abbr) return a;
  }
  throw std::out_of_range("unknown application: " + std::string(abbr));
}

std::uint32_t ScaledIters(std::uint32_t base, double scale) {
  const auto scaled = static_cast<std::uint32_t>(base * scale);
  return scaled == 0 ? 1 : scaled;
}

Workload Finish(std::string_view abbr, ProgramBuilder& b,
                std::uint32_t warps) {
  Workload w;
  w.info = InfoFor(abbr);
  w.program = b.Build();
  w.warps_per_sm = warps;
  return w;
}

}  // namespace

bool IsCiApp(std::string_view abbr) {
  for (const AppInfo& a : AllApps()) {
    if (a.abbr == abbr) return a.cache_insufficient;
  }
  return false;
}

Workload BuildCiApp(std::string_view abbr, double scale) {
  // --- CFD: unstructured mesh. Four uniform indirect neighbour loads
  // churn ~9 insertions/set between reuses of the private cell state --
  // beyond the 8-way (32KB) reach but within the PD window, the paper's
  // "DLP beats 32KB" case. Ratio ~1.5%. ---
  if (abbr == "CFD") {
    ProgramBuilder b(ScaledIters(200, scale));
    b.LoadIndirect(18432, 0.05, 0xc101)
        .Alu(37)
        .LoadIndirect(18432, 0.05, 0xc102)
        .Alu(37)
        .LoadIndirect(18432, 0.05, 0xc103)
        .Alu(37)
        .LoadPrivate(8)
        .Alu(37)
        .LoadPrivate(8)
        .StoreStream()
        .Alu(38);
    return Finish(abbr, b, 6);
  }
  // --- PVR: MapReduce page-rank; streaming records, two mildly skewed
  // rank-table loads, private accumulators. Ratio ~2%. ---
  if (abbr == "PVR") {
    ProgramBuilder b(ScaledIters(160, scale));
    b.LoadStream()
        .Alu(38)
        .LoadIndirect(8192, 0.3, 0xd201)
        .Alu(38)
        .LoadIndirect(8192, 0.3, 0xd202)
        .Alu(38)
        .LoadPrivate(5)
        .Alu(38)
        .LoadPrivate(5)
        .StoreStream();
    return Finish(abbr, b, 8);
  }
  // --- SS: similarity score; private feature vectors (protectable) plus
  // a streamed document scan. Ratio ~3%. ---
  if (abbr == "SS") {
    ProgramBuilder b(ScaledIters(160, scale));
    b.LoadPrivate(4)
        .Alu(37)
        .LoadPrivate(4)
        .Alu(37)
        .LoadPrivate(4)
        .Alu(37)
        .LoadShared(24, 8)
        .LoadStream(8)
        .Alu(38)
        .LoadIndirect(3072, 0.25, 0xd301)
        .StoreStream();
    return Finish(abbr, b, 8);
  }
  // --- BFS: ten distinct memory PCs with wildly different RDDs (Fig. 7):
  // short shared frontier tiles, protectable private visit state, long
  // uniform neighbour lists, scattered edge output. 32 warps keeps the
  // private reuse inside the PD window despite the many PCs. Ratio ~4%. ---
  if (abbr == "BFS") {
    ProgramBuilder b(ScaledIters(120, scale));
    b.LoadStream()                         // insn1: frontier scan
        .Alu(48)
        .LoadShared(4, 8)                  // insn2: short RD
        .LoadShared(4, 8)                  // insn3: short RD
        .Alu(48)
        .LoadPrivate(2)                    // insn4: protectable mid RD
        .Alu(48)
        .LoadIndirect(4096, 0.15, 0xe401)  // insn7: long RD
        .LoadIndirect(4096, 0.15, 0xe402)  // insn8: long RD
        .Alu(48)
        .LoadPrivate(2)                    // insn9: protectable mid RD
        .LoadShared(6, 16)                 // short shared state
        .LoadStream(8)                     // scattered edge output read
        .StoreStream()                     // visited flags
        .Alu(48);
    return Finish(abbr, b, 6);
  }
  // --- MM: Mars matrix multiply; mixes all four RD buckets like Fig. 3
  // (short tile / mid private / long private / uniform huge). Ratio ~6%. ---
  if (abbr == "MM") {
    ProgramBuilder b(ScaledIters(56, scale));
    b.LoadShared(3, 4)
        .Alu(31)
        .LoadPrivate(1)
        .Alu(31)
        .LoadPrivate(1)
        .Alu(32)
        .LoadIndirect(8192, 0.0, 0xf501, 16)
        .LoadStream(16)
        .StoreStream();
    return Finish(abbr, b, 48);
  }
  // --- SRK: rank-k update; shared tiles churn the sets while the small
  // private accumulators sit squarely in the protection window. ~8%. ---
  if (abbr == "SRK") {
    ProgramBuilder b(ScaledIters(64, scale));
    b.LoadShared(8, 6).Alu(17).LoadShared(8, 6).Alu(17).LoadPrivate(1)
        .Alu(17)
        .LoadPrivate(1)
        .Alu(18)
        .LoadPrivate(1)
        .LoadStream(8);
    return Finish(abbr, b, 32);
  }
  // --- SR2K: rank-2k update; like CFD the private reuse lands beyond
  // the 8-way reach but inside the PD window (beats 32KB). Ratio ~9%. ---
  if (abbr == "SR2K") {
    ProgramBuilder b(ScaledIters(40, scale));
    b.LoadShared(8, 6)
        .Alu(20)
        .LoadShared(8, 6)
        .Alu(20)
        .LoadPrivate(1)
        .Alu(20)
        .LoadPrivate(1)
        .LoadIndirect(6144, 0.3, 0xf601)
        .LoadStream(8)
        .StoreStream()
        .Alu(21);
    return Finish(abbr, b, 48);
  }
  // --- KM: k-means; the centroid sweep (48-line private cycle, RD ~290)
  // is far beyond any protection reach, so gains come from bypassing;
  // one small accumulator stays protectable. Ratio ~12%. ---
  if (abbr == "KM") {
    ProgramBuilder b(ScaledIters(44, scale));
    b.LoadPrivate(48).Alu(9).LoadPrivate(48).Alu(9).LoadStream()
        .Alu(10)
        .LoadPrivate(1)
        .StoreStream()
        .Alu(9);
    return Finish(abbr, b, 48);
  }
  // --- STR: string match; streaming text (partly scattered) with a hot
  // key table and a private cursor. Ratio ~15%. ---
  if (abbr == "STR") {
    ProgramBuilder b(ScaledIters(44, scale));
    b.LoadStream().Alu(7).LoadStream(8).Alu(7).LoadIndirect(384, 0.65, 0x1701)
        .Alu(7)
        .LoadPrivate(1)
        .StoreStream()
        .Alu(7);
    return Finish(abbr, b, 48);
  }
  throw std::out_of_range("not a CI application: " + std::string(abbr));
}

}  // namespace dlpsim
