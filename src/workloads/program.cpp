#include "workloads/program.h"

#include <cassert>

namespace dlpsim {

void Program::AddAlu(std::uint32_t count) {
  if (count == 0) return;
  body_.push_back(Instruction{OpClass::kAlu, next_pc_, count, nullptr});
  next_pc_ += count;
}

void Program::AddSfu(std::uint32_t count) {
  if (count == 0) return;
  body_.push_back(Instruction{OpClass::kSfu, next_pc_, count, nullptr});
  next_pc_ += count;
}

Pc Program::AddMem(OpClass op, std::unique_ptr<AccessPattern> pattern) {
  assert(pattern != nullptr);
  const Pc pc = next_pc_++;
  body_.push_back(Instruction{op, pc, 1, pattern.get()});
  patterns_.push_back(std::move(pattern));
  return pc;
}

Pc Program::AddLoad(std::unique_ptr<AccessPattern> pattern) {
  return AddMem(OpClass::kLoad, std::move(pattern));
}

Pc Program::AddStore(std::unique_ptr<AccessPattern> pattern) {
  return AddMem(OpClass::kStore, std::move(pattern));
}

std::uint64_t Program::IssuesPerIteration() const {
  std::uint64_t n = 0;
  for (const Instruction& i : body_) n += i.count;
  return n;
}

std::uint64_t Program::MemOpsPerIteration() const {
  std::uint64_t n = 0;
  for (const Instruction& i : body_) {
    if (i.op == OpClass::kLoad || i.op == OpClass::kStore) n += i.count;
  }
  return n;
}

std::uint64_t Program::ThreadInstructionsPerWarp(
    std::uint32_t warp_size) const {
  return IssuesPerIteration() * iterations_ * warp_size;
}

double Program::MemoryAccessRatio() const {
  const std::uint64_t issues = IssuesPerIteration();
  return issues == 0 ? 0.0
                     : static_cast<double>(MemOpsPerIteration()) /
                           static_cast<double>(issues);
}

std::uint32_t Program::NumMemoryPcs() const {
  std::uint32_t n = 0;
  for (const Instruction& i : body_) {
    if (i.op == OpClass::kLoad || i.op == OpClass::kStore) ++n;
  }
  return n;
}

}  // namespace dlpsim
