// The 18 benchmark applications of Table 2, as synthetic kernels whose
// per-PC reuse-distance profiles and memory-access ratios are calibrated
// to the paper's Figs. 3, 6 and 7 (see DESIGN.md for the substitution
// rationale).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "workloads/program.h"

namespace dlpsim {

struct AppInfo {
  std::string abbr;   // "HG"
  std::string name;   // "Histogram"
  std::string suite;  // "CUDA Samples"
  std::string input;  // Table 2 input column
  bool cache_insufficient = false;  // CI vs CS (paper's 1% ratio threshold)
};

struct Workload {
  AppInfo info;
  std::unique_ptr<Program> program;
  std::uint32_t warps_per_sm = 48;
};

/// Table 2, in paper order (9 CS then 9 CI).
const std::vector<AppInfo>& AllApps();

/// Abbreviations only, optionally filtered.
std::vector<std::string> AllAppAbbrs();
std::vector<std::string> CsAppAbbrs();
std::vector<std::string> CiAppAbbrs();

/// Builds a workload. `scale` multiplies the iteration count (tests use
/// small scales for speed); throws std::out_of_range for unknown abbrs.
Workload MakeWorkload(std::string_view abbr, double scale = 1.0);

/// Helper used by the app builders (exposed for custom workloads and
/// tests): running context that hands each pattern a disjoint 4 GiB
/// address region so patterns never alias.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::uint32_t iterations,
                          std::uint32_t warp_size = 32);

  ProgramBuilder& Alu(std::uint32_t count);
  ProgramBuilder& Sfu(std::uint32_t count);

  // Memory instructions; `lanes_per_line` controls coalescing (32 = one
  // transaction per warp instruction).
  ProgramBuilder& LoadStream(std::uint32_t lanes_per_line = 32);
  ProgramBuilder& LoadPrivate(std::uint64_t ws_lines,
                              std::uint32_t lanes_per_line = 32);
  ProgramBuilder& LoadShared(std::uint64_t tile_lines,
                             std::uint32_t share_degree,
                             std::uint32_t lanes_per_line = 32);
  ProgramBuilder& LoadIndirect(std::uint64_t universe_lines, double zipf_s,
                               std::uint64_t seed,
                               std::uint32_t lanes_per_line = 32);
  ProgramBuilder& StoreStream(std::uint32_t lanes_per_line = 32);
  ProgramBuilder& StorePrivate(std::uint64_t ws_lines,
                               std::uint32_t lanes_per_line = 32);
  ProgramBuilder& StoreIndirect(std::uint64_t universe_lines, double zipf_s,
                                std::uint64_t seed,
                                std::uint32_t lanes_per_line = 32);

  std::unique_ptr<Program> Build();

 private:
  Addr NextBase() { return static_cast<Addr>(region_++) << 32; }

  std::unique_ptr<Program> program_;
  std::uint32_t warp_size_;
  std::uint32_t iterations_;
  std::uint32_t region_ = 1;
};

}  // namespace dlpsim
