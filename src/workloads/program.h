// The kernel abstraction executed by SM warps.
//
// A Program is a short instruction body executed `iterations` times per
// warp. ALU work is run-length compressed (`count` back-to-back issues)
// so that compute-heavy (Cache Sufficient) kernels simulate quickly while
// preserving exact instruction counts for IPC and memory-access-ratio
// accounting. Memory instructions reference an AccessPattern and a PC;
// the PC is what DLP's PDPT keys on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.h"
#include "workloads/patterns.h"

namespace dlpsim {

enum class OpClass : std::uint8_t {
  kAlu,   // fully pipelined; one issue slot per `count`
  kSfu,   // issue + warp busy for the SFU latency
  kLoad,
  kStore,
};

struct Instruction {
  OpClass op = OpClass::kAlu;
  Pc pc = 0;
  std::uint32_t count = 1;  // ALU/SFU run length; 1 for memory ops
  const AccessPattern* pattern = nullptr;  // memory ops only
};

class Program {
 public:
  Program() = default;

  // Move-only (owns its patterns).
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  /// Appends `count` ALU issues at the next PC.
  void AddAlu(std::uint32_t count);
  void AddSfu(std::uint32_t count);

  /// Appends a load/store through `pattern` (ownership taken).
  Pc AddLoad(std::unique_ptr<AccessPattern> pattern);
  Pc AddStore(std::unique_ptr<AccessPattern> pattern);

  void set_iterations(std::uint32_t iters) { iterations_ = iters; }
  std::uint32_t iterations() const { return iterations_; }

  const std::vector<Instruction>& body() const { return body_; }

  /// Warp-level issue slots per iteration (sum of counts).
  std::uint64_t IssuesPerIteration() const;
  /// Memory instructions per iteration.
  std::uint64_t MemOpsPerIteration() const;
  /// Thread-level instructions one warp commits over its whole life.
  std::uint64_t ThreadInstructionsPerWarp(std::uint32_t warp_size) const;
  /// Static memory-access ratio N_mem / N_insn (paper §3.2).
  double MemoryAccessRatio() const;

  /// Number of distinct memory PCs (must stay <= 128 for the PDPT).
  std::uint32_t NumMemoryPcs() const;

 private:
  Pc AddMem(OpClass op, std::unique_ptr<AccessPattern> pattern);

  std::vector<Instruction> body_;
  std::vector<std::unique_ptr<AccessPattern>> patterns_;
  std::uint32_t iterations_ = 1;
  Pc next_pc_ = 0;
};

}  // namespace dlpsim
