// Cache Sufficient benchmark kernels (paper Table 2, upper half).
//
// Each builder encodes the app's calibration targets:
//  - memory access ratio < 1% (Fig. 6 ordering),
//  - the dominant reuse-distance buckets of Fig. 3,
//  - enough streaming/miss pressure where the paper reports side effects
//    (SRAD/BT: Stall-Bypass over-bypasses and loses reuse hits).
// Working-set sizes are in 128-byte lines; rough per-set RD for a private
// working set of S lines is ~(warps_per_sm/32 sets) * S, and shared tiles
// of L lines shared by groups of d warps yield a short-RD spike (the d-1
// co-walkers) plus a ~0.75*L tail. See DESIGN.md.
#include <stdexcept>
#include <string_view>

#include "workloads/registry.h"

namespace dlpsim {

namespace {

AppInfo InfoFor(std::string_view abbr) {
  for (const AppInfo& a : AllApps()) {
    if (a.abbr == abbr) return a;
  }
  throw std::out_of_range("unknown application: " + std::string(abbr));
}

std::uint32_t ScaledIters(std::uint32_t base, double scale) {
  const auto scaled = static_cast<std::uint32_t>(base * scale);
  return scaled == 0 ? 1 : scaled;
}

Workload Finish(std::string_view abbr, ProgramBuilder& b,
                std::uint32_t warps) {
  Workload w;
  w.info = InfoFor(abbr);
  w.program = b.Build();
  w.warps_per_sm = warps;
  return w;
}

}  // namespace

bool IsCsApp(std::string_view abbr) {
  for (const AppInfo& a : AllApps()) {
    if (a.abbr == abbr) return !a.cache_insufficient;
  }
  return false;
}

Workload BuildCsApp(std::string_view abbr, double scale) {
  // --- HG: streaming input scan + scattered histogram bins; RDs almost
  // all > 65, negligible memory ratio. ---
  if (abbr == "HG") {
    ProgramBuilder b(ScaledIters(80, scale));
    ProgramBuilder& body = b.LoadStream()
        .LoadIndirect(12288, 0.1, 0x9001)
        .StoreIndirect(12288, 0.1, 0x9002)
        .Alu(330);
    (void)body;
    return Finish(abbr, b, 24);
  }
  // --- HS: 2-D stencil; mixes short tile reuse with a long row tail. ---
  if (abbr == "HS") {
    ProgramBuilder b(ScaledIters(36, scale));
    b.LoadShared(6, 4).Alu(200).LoadPrivate(8).Alu(200).LoadStream()
        .StoreStream()
        .Alu(200);
    return Finish(abbr, b, 24);
  }
  // --- STEN: 3-D stencil; z-plane reuse gives mostly long RDs. ---
  if (abbr == "STEN") {
    ProgramBuilder b(ScaledIters(68, scale));
    b.LoadPrivate(32).Alu(180).LoadPrivate(32).Alu(180).LoadStream()
        .StoreStream()
        .Alu(200);
    return Finish(abbr, b, 24);
  }
  // --- SC: separable convolution; tiny row tiles, RDs 1~4 dominate. ---
  if (abbr == "SC") {
    ProgramBuilder b(ScaledIters(14, scale));
    b.LoadShared(3, 4).Alu(180).LoadShared(3, 4).Alu(180).LoadShared(3, 4)
        .StoreStream()
        .Alu(200);
    return Finish(abbr, b, 24);
  }
  // --- BP: back propagation; short shared weight rows. ---
  if (abbr == "BP") {
    ProgramBuilder b(ScaledIters(12, scale));
    b.LoadShared(2, 8).Alu(160).LoadShared(2, 8).Alu(160).LoadPrivate(2)
        .StoreStream()
        .Alu(160);
    return Finish(abbr, b, 24);
  }
  // --- SRAD: small stencil tiles with a high hit rate; the scattered
  // streaming load periodically clogs sets, which is what makes
  // Stall-Bypass over-bypass and shed reuse hits (paper §6.1.1). ---
  if (abbr == "SRAD") {
    ProgramBuilder b(ScaledIters(12, scale));
    b.LoadShared(4, 4).Alu(150).LoadShared(4, 4).Alu(150).LoadShared(4, 4)
        .LoadStream(4)
        .StoreStream()
        .Alu(320);
    return Finish(abbr, b, 32);
  }
  // --- NW: wavefront over a score matrix; modest private reuse. ---
  if (abbr == "NW") {
    ProgramBuilder b(ScaledIters(12, scale));
    b.LoadPrivate(4).Alu(170).LoadPrivate(4).Alu(170).LoadStream()
        .StoreStream()
        .Alu(160);
    return Finish(abbr, b, 16);
  }
  // --- GEMM: tiled matrix multiply-add; tiles live comfortably in the
  // L1D, RDs short, ratio just below the CS/CI threshold. ---
  if (abbr == "GEMM") {
    ProgramBuilder b(ScaledIters(16, scale));
    b.LoadShared(8, 6).Alu(110).LoadShared(16, 0).Alu(110);
    return Finish(abbr, b, 24);
  }
  // --- BT: B+tree lookups; hot inner nodes (Zipf) give a high hit rate
  // the way SRAD does, so Stall-Bypass hurts here too. ---
  if (abbr == "BT") {
    ProgramBuilder b(ScaledIters(12, scale));
    b.LoadIndirect(96, 0.9, 0xb101).Alu(110).LoadIndirect(8192, 0.2, 0xb102)
        .Alu(110)
        .LoadStream(4)
        .Alu(110);
    return Finish(abbr, b, 32);
  }
  throw std::out_of_range("not a CS application: " + std::string(abbr));
}

}  // namespace dlpsim
