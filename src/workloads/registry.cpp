#include "workloads/registry.h"

#include <stdexcept>

namespace dlpsim {

// Defined in apps_cs.cpp / apps_ci.cpp.
Workload BuildCsApp(std::string_view abbr, double scale);
Workload BuildCiApp(std::string_view abbr, double scale);
bool IsCsApp(std::string_view abbr);
bool IsCiApp(std::string_view abbr);

const std::vector<AppInfo>& AllApps() {
  static const std::vector<AppInfo> kApps = {
      {"HG", "Histogram", "CUDA Samples", "67108864", false},
      {"HS", "Hotspot", "Rodinia", "512x512", false},
      {"STEN", "3-D Stencil Operation", "Parboil", "512x512x64", false},
      {"SC", "Separable Convolution", "Rodinia", "2048x512", false},
      {"BP", "Back Propagation", "Rodinia", "65536", false},
      {"SRAD", "Speckle Reducing Anisotropic Diffusion", "Rodinia",
       "512x512", false},
      {"NW", "Needleman-Wunsch", "Rodinia", "1024x1024", false},
      {"GEMM", "Matrix Multiply-add", "Polybench", "512x512x512", false},
      {"BT", "B+tree", "Rodinia", "6000x3000", false},
      {"CFD", "Computational Fluid Dynamics", "Rodinia", "97046", true},
      {"PVR", "Page View Rank", "Mars", "250000", true},
      {"SS", "Similarity Score", "Mars", "512x128", true},
      {"BFS", "Breadth-First Search", "Rodinia", "65536", true},
      {"MM", "Matrix Multiplication", "Mars", "256x256", true},
      {"SRK", "Symmetric Rank-k", "Polybench", "256x256", true},
      {"SR2K", "Symmetric Rank-2k", "Polybench", "256x256", true},
      {"KM", "K-means", "Rodinia", "204800", true},
      {"STR", "String Match", "Mars", "354984", true},
  };
  return kApps;
}

std::vector<std::string> AllAppAbbrs() {
  std::vector<std::string> out;
  for (const AppInfo& a : AllApps()) out.push_back(a.abbr);
  return out;
}

std::vector<std::string> CsAppAbbrs() {
  std::vector<std::string> out;
  for (const AppInfo& a : AllApps()) {
    if (!a.cache_insufficient) out.push_back(a.abbr);
  }
  return out;
}

std::vector<std::string> CiAppAbbrs() {
  std::vector<std::string> out;
  for (const AppInfo& a : AllApps()) {
    if (a.cache_insufficient) out.push_back(a.abbr);
  }
  return out;
}

Workload MakeWorkload(std::string_view abbr, double scale) {
  if (scale <= 0.0) throw std::out_of_range("scale must be positive");
  if (IsCsApp(abbr)) return BuildCsApp(abbr, scale);
  if (IsCiApp(abbr)) return BuildCiApp(abbr, scale);
  throw std::out_of_range("unknown application: " + std::string(abbr));
}

// ---------------------------------------------------------------------------
// ProgramBuilder
// ---------------------------------------------------------------------------

ProgramBuilder::ProgramBuilder(std::uint32_t iterations,
                               std::uint32_t warp_size)
    : program_(std::make_unique<Program>()),
      warp_size_(warp_size),
      iterations_(iterations == 0 ? 1 : iterations) {
  program_->set_iterations(iterations_);
}

ProgramBuilder& ProgramBuilder::Alu(std::uint32_t count) {
  program_->AddAlu(count);
  return *this;
}

ProgramBuilder& ProgramBuilder::Sfu(std::uint32_t count) {
  program_->AddSfu(count);
  return *this;
}

ProgramBuilder& ProgramBuilder::LoadStream(std::uint32_t lanes_per_line) {
  program_->AddLoad(std::make_unique<StreamingPattern>(
      NextBase(), lanes_per_line, warp_size_, iterations_));
  return *this;
}

ProgramBuilder& ProgramBuilder::LoadPrivate(std::uint64_t ws_lines,
                                            std::uint32_t lanes_per_line) {
  program_->AddLoad(std::make_unique<PrivateCyclicPattern>(
      NextBase(), lanes_per_line, warp_size_, ws_lines));
  return *this;
}

ProgramBuilder& ProgramBuilder::LoadShared(std::uint64_t tile_lines,
                                           std::uint32_t share_degree,
                                           std::uint32_t lanes_per_line) {
  program_->AddLoad(std::make_unique<SharedTilePattern>(
      NextBase(), lanes_per_line, warp_size_, tile_lines, share_degree));
  return *this;
}

ProgramBuilder& ProgramBuilder::LoadIndirect(std::uint64_t universe_lines,
                                             double zipf_s, std::uint64_t seed,
                                             std::uint32_t lanes_per_line) {
  program_->AddLoad(std::make_unique<IndirectPattern>(
      NextBase(), lanes_per_line, warp_size_, universe_lines, zipf_s, seed));
  return *this;
}

ProgramBuilder& ProgramBuilder::StoreStream(std::uint32_t lanes_per_line) {
  program_->AddStore(std::make_unique<StreamingPattern>(
      NextBase(), lanes_per_line, warp_size_, iterations_));
  return *this;
}

ProgramBuilder& ProgramBuilder::StorePrivate(std::uint64_t ws_lines,
                                             std::uint32_t lanes_per_line) {
  program_->AddStore(std::make_unique<PrivateCyclicPattern>(
      NextBase(), lanes_per_line, warp_size_, ws_lines));
  return *this;
}

ProgramBuilder& ProgramBuilder::StoreIndirect(std::uint64_t universe_lines,
                                              double zipf_s,
                                              std::uint64_t seed,
                                              std::uint32_t lanes_per_line) {
  program_->AddStore(std::make_unique<IndirectPattern>(
      NextBase(), lanes_per_line, warp_size_, universe_lines, zipf_s, seed));
  return *this;
}

std::unique_ptr<Program> ProgramBuilder::Build() {
  return std::move(program_);
}

}  // namespace dlpsim
