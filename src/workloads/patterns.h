// Access-pattern primitives for synthetic GPU kernels.
//
// The paper's results are driven by each memory instruction's per-set
// reuse-distance distribution (Figs. 3/7) and the kernel's memory access
// ratio (Fig. 6). These primitives let a benchmark descriptor dial in
// exactly those properties per PC:
//
//   Streaming    - every access touches a fresh line (compulsory misses
//                  only; HG's input scan, STR's text scan).
//   PrivateCyclic- each warp walks a private working set of `ws_lines`
//                  cyclically; the working-set size controls the reuse
//                  distance band (small -> RD 1-8, large -> RD > 64).
//   SharedTile   - groups of `share_degree` consecutive warps walk one
//                  tile together (inter-warp spatial reuse -> short RDs;
//                  GEMM/BP row sharing). share_degree == 0 means all
//                  warps share (broadcast tables: KM centroids, BT root).
//   Indirect     - hashed (optionally Zipf-skewed) accesses over a line
//                  universe (BFS frontiers, CFD neighbour lists).
//
// An address is produced per (global warp id, iteration, lane). Lanes are
// grouped `lanes_per_line` to a cache line, so one warp instruction
// touches 32 / lanes_per_line distinct lines (the coalescing degree).
// All patterns are pure functions of their inputs: simulations are
// bit-reproducible and patterns can be shared across warps and SMs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/rng.h"
#include "sim/types.h"

namespace dlpsim {

inline constexpr std::uint32_t kLineBytes = 128;
inline constexpr std::uint32_t kWordBytes = 4;

class AccessPattern {
 public:
  AccessPattern(Addr base, std::uint32_t lanes_per_line, std::uint32_t warp_size)
      : base_(base), lanes_per_line_(lanes_per_line), warp_size_(warp_size) {}
  virtual ~AccessPattern() = default;

  /// Byte address accessed by `lane` of global warp `warp` at `iter`.
  Addr AddressFor(std::uint64_t warp, std::uint64_t iter,
                  std::uint32_t lane) const {
    const std::uint32_t group = lane / lanes_per_line_;
    const Addr line = LineIndex(warp, iter, group);
    return base_ + line * kLineBytes +
           (lane % lanes_per_line_) * std::uint64_t{kWordBytes};
  }

  /// Distinct lines touched by one warp instruction.
  std::uint32_t groups() const { return warp_size_ / lanes_per_line_; }
  std::uint32_t lanes_per_line() const { return lanes_per_line_; }
  Addr base() const { return base_; }

  virtual std::string Describe() const = 0;

 protected:
  /// Line index (relative to base_) for the group-th line of the access.
  virtual Addr LineIndex(std::uint64_t warp, std::uint64_t iter,
                         std::uint32_t group) const = 0;

 private:
  Addr base_;
  std::uint32_t lanes_per_line_;
  std::uint32_t warp_size_;
};

class StreamingPattern : public AccessPattern {
 public:
  /// `iters_hint`: upper bound of iterations, used to give every warp a
  /// disjoint address range.
  StreamingPattern(Addr base, std::uint32_t lanes_per_line,
                   std::uint32_t warp_size, std::uint64_t iters_hint);
  std::string Describe() const override;

 protected:
  Addr LineIndex(std::uint64_t warp, std::uint64_t iter,
                 std::uint32_t group) const override;

 private:
  std::uint64_t lines_per_warp_;
};

class PrivateCyclicPattern : public AccessPattern {
 public:
  PrivateCyclicPattern(Addr base, std::uint32_t lanes_per_line,
                       std::uint32_t warp_size, std::uint64_t ws_lines);
  std::string Describe() const override;
  std::uint64_t ws_lines() const { return ws_lines_; }

 protected:
  Addr LineIndex(std::uint64_t warp, std::uint64_t iter,
                 std::uint32_t group) const override;

 private:
  std::uint64_t ws_lines_;
};

class SharedTilePattern : public AccessPattern {
 public:
  /// share_degree == 0: all warps share one tile.
  SharedTilePattern(Addr base, std::uint32_t lanes_per_line,
                    std::uint32_t warp_size, std::uint64_t tile_lines,
                    std::uint32_t share_degree);
  std::string Describe() const override;

 protected:
  Addr LineIndex(std::uint64_t warp, std::uint64_t iter,
                 std::uint32_t group) const override;

 private:
  std::uint64_t tile_lines_;
  std::uint32_t share_degree_;
};

class IndirectPattern : public AccessPattern {
 public:
  IndirectPattern(Addr base, std::uint32_t lanes_per_line,
                  std::uint32_t warp_size, std::uint64_t universe_lines,
                  double zipf_s, std::uint64_t seed);
  std::string Describe() const override;

 protected:
  Addr LineIndex(std::uint64_t warp, std::uint64_t iter,
                 std::uint32_t group) const override;

 private:
  std::uint64_t universe_lines_;
  std::uint64_t seed_;
  ZipfSampler zipf_;
};

}  // namespace dlpsim
