// Phase profiler: RAII wall-time spans over the simulator hot loop.
//
// A Profiler owns one exec::Stopwatch (the D2-sanctioned clock) and a
// span stack; ProfileSpan pushes a phase on construction and pops it on
// destruction, attributing the elapsed wall time to the phase and to the
// full semicolon-joined phase path ("dlpsim;run;core_tick;cache_access").
// Per-phase aggregates split *total* time (span enter to exit) from
// *self* time (total minus time spent in child spans), so a flamegraph
// built from the paths sums exactly to the root span's duration.
//
// Profiling is strictly observational wall-time telemetry: it never
// feeds simulated state, and a null Profiler* makes every span a no-op
// (two predictable branches), which is how the default unprofiled hot
// path stays unperturbed. Wall times are floats and schedule-dependent
// by nature -- they are deliberately kept OUT of the obs::Registry,
// whose dumps must stay byte-identical across DLPSIM_JOBS.
//
// A Profiler is single-threaded: one instance per simulator (the grid
// runner makes one per cell). Exports:
//   WriteJson      - per-phase calls/total/self plus per-path self time.
//   WriteCollapsed - collapsed-stack lines ("a;b;c <self_us>") for
//                    flamegraph.pl / speedscope.
//   WriteText      - Prometheus-style exposition for the future server.
//   Chrome trace   - obs::WriteProfileChromeTrace (exporters.h) renders
//                    the bounded span-event buffer on chrome://tracing.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "exec/timing.h"

namespace dlpsim::obs {

/// Hot-loop phases, one per instrumented region. Keep ToString in sync.
enum class Phase : std::uint8_t {
  kRun,           // whole GpuSimulator::Run
  kCoreTick,      // SM cores ticking on the core clock edge
  kIcntTick,      // crossbar tick
  kMemTick,       // memory partitions tick
  kCacheAccess,   // one L1D access (lookup + policy dispatch)
  kPolicyUpdate,  // protection-policy bookkeeping inside an access
  kDrainCheck,    // GpuSimulator::Done scan
  kSnapshot,      // timeline / policy snapshot capture
};

inline constexpr std::size_t kPhaseCount = 8;

const char* ToString(Phase phase);

/// One completed span, kept (bounded) for the Chrome-trace export.
struct SpanEvent {
  Phase phase = Phase::kRun;
  std::uint32_t depth = 0;     // stack depth at entry (root = 0)
  double start_seconds = 0.0;  // relative to profiler construction
  double dur_seconds = 0.0;
};

/// Merged per-phase wall-time aggregate.
struct PhaseStat {
  std::uint64_t calls = 0;
  double total_seconds = 0.0;  // enter-to-exit, includes children
  double self_seconds = 0.0;   // total minus child spans
};

class Profiler {
 public:
  /// `max_events` bounds the retained SpanEvent buffer; spans beyond it
  /// still aggregate (phases/paths) but are counted in dropped_events().
  explicit Profiler(std::size_t max_events = std::size_t{1} << 16);

  void Begin(Phase phase);
  void End();

  /// Phases with at least one completed span, in enum order.
  std::vector<std::pair<Phase, PhaseStat>> PhaseStats() const;

  /// Self-time per collapsed stack path ("dlpsim;run;core_tick" -> s).
  const std::map<std::string, double>& PathSelfSeconds() const {
    return path_self_;
  }

  const std::vector<SpanEvent>& events() const { return events_; }
  std::uint64_t dropped_events() const { return dropped_events_; }

  /// Wall seconds since construction (the span timebase).
  double ElapsedSeconds() const { return clock_.Seconds(); }

  void WriteJson(std::ostream& os) const;
  void WriteCollapsed(std::ostream& os) const;
  void WriteText(std::ostream& os) const;  // Prometheus exposition

 private:
  struct Frame {
    Phase phase;
    double start;
    double child_seconds;
    std::string path;
  };

  exec::Stopwatch clock_;
  std::vector<Frame> stack_;
  std::array<PhaseStat, kPhaseCount> phases_{};
  std::map<std::string, double> path_self_;
  std::vector<SpanEvent> events_;
  std::size_t max_events_;
  std::uint64_t dropped_events_ = 0;
};

/// RAII span. Null profiler => no-op (the unprofiled default).
class ProfileSpan {
 public:
  ProfileSpan(Profiler* profiler, Phase phase) : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->Begin(phase);
  }
  ~ProfileSpan() {
    if (profiler_ != nullptr) profiler_->End();
  }
  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

 private:
  Profiler* profiler_;
};

}  // namespace dlpsim::obs
