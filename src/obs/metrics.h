// Typed metrics registry: counters, gauges and fixed-bucket histograms
// with per-subsystem scopes ("cache", "icnt", "mem", "exec", ...).
//
// Instruments are registered once (GetCounter/GetGauge/GetHistogram are
// get-or-create and return stable pointers) and updated lock-free on the
// hot path: every instrument holds a fixed array of cache-line-padded
// per-thread shards, each thread hashes to one shard via a thread-local
// id, and updates are relaxed atomic adds. Because every merge operation
// is commutative (sums of unsigned/two's-complement integers, per-bucket
// sums for histograms), a Snapshot() -- which merges shards in shard-
// index order and sorts instruments by (scope, name) -- is byte-identical
// for any thread schedule that performs the same updates. That is the
// property the exec determinism suite pins: a grid run at DLPSIM_JOBS=1
// and DLPSIM_JOBS=8 must produce identical WriteText() dumps.
//
// Values are integers only (no float accumulation): floating-point adds
// do not commute bit-exactly, so a double-valued counter would break the
// byte-identity guarantee the registry exists to provide.
//
// Export formats (all deterministic, sorted by scope then name):
//   WriteText - Prometheus-style text exposition (# HELP/# TYPE lines,
//               histogram _bucket{le=...}/_sum/_count series) for the
//               future dlpsim_server /metrics endpoint.
//   WriteJson - one self-describing JSON document.
//   WriteCsv  - flat scope,name,kind,value rows (histograms one row per
//               bucket), with RFC-4180 quoting for hostile names.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <mutex>

namespace dlpsim::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* ToString(MetricKind kind);

/// Number of per-thread shards per instrument. Threads beyond this many
/// wrap onto existing shards; updates stay correct (relaxed atomic adds)
/// and merged totals stay schedule-independent.
inline constexpr std::size_t kMetricShards = 64;

namespace detail {
/// One cache-line-padded accumulator slot (avoids false sharing between
/// worker threads updating the same instrument).
struct alignas(64) Slot {
  std::atomic<std::int64_t> v{0};
};

/// This thread's shard index in [0, kMetricShards).
std::size_t ThisShard();
}  // namespace detail

/// Monotone event counter. Add() is lock-free and wait-free.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    slots_[detail::ThisShard()].v.fetch_add(static_cast<std::int64_t>(n),
                                            std::memory_order_relaxed);
  }

  /// Merged total over all shards (shard-index order; sums commute).
  std::uint64_t Value() const;

  void Reset();

 private:
  std::array<detail::Slot, kMetricShards> slots_;
};

/// Up/down instrument for occupancy-style values (queue depth, jobs in
/// flight). The merged Value() is the net sum of all Add/Sub calls, so it
/// is deterministic exactly at quiescent points (e.g. after a pool
/// drained: every Add has been matched by its Sub on some shard).
class Gauge {
 public:
  void Add(std::int64_t d = 1) {
    slots_[detail::ThisShard()].v.fetch_add(d, std::memory_order_relaxed);
  }
  void Sub(std::int64_t d = 1) { Add(-d); }

  std::int64_t Value() const;

  void Reset();

 private:
  std::array<detail::Slot, kMetricShards> slots_;
};

/// Fixed-bucket histogram over unsigned integer observations. Bucket i
/// counts observations v with v <= bounds[i] (and v > bounds[i-1]);
/// observations above the last bound land in the overflow (+Inf) bucket.
/// Bounds are fixed at registration, strictly increasing.
class Histogram {
 public:
  explicit Histogram(std::span<const std::uint64_t> bounds);

  void Observe(std::uint64_t v);

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }

  /// Merged per-bucket counts; size bounds().size() + 1, last = overflow.
  std::vector<std::uint64_t> BucketCounts() const;
  std::uint64_t Count() const;  // total observations
  std::uint64_t Sum() const;    // sum of observed values

  void Reset();

 private:
  std::vector<std::uint64_t> bounds_;
  // Shard-major layout: shard s, bucket b at [s * (buckets + 1) + b];
  // the extra slot per shard is the observed-value sum.
  std::vector<detail::Slot> slots_;
  std::size_t stride_ = 0;
};

/// Identity + metadata of one registered instrument.
struct MetricInfo {
  std::string scope;
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
};

/// One merged instrument value at Snapshot() time.
struct MetricSample {
  MetricInfo info;
  std::uint64_t counter = 0;                // kCounter
  std::int64_t gauge = 0;                   // kGauge
  std::vector<std::uint64_t> bounds;        // kHistogram
  std::vector<std::uint64_t> bucket_counts; // size bounds+1, last = +Inf
  std::uint64_t count = 0;                  // kHistogram observations
  std::uint64_t sum = 0;                    // kHistogram value sum
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create; the returned pointer is stable for the registry's
  /// lifetime and safe to cache in constructors. Throws std::logic_error
  /// when (scope, name) is already registered with a different kind (or,
  /// for histograms, different bounds).
  Counter* GetCounter(std::string_view scope, std::string_view name,
                      std::string_view help = "");
  Gauge* GetGauge(std::string_view scope, std::string_view name,
                  std::string_view help = "");
  Histogram* GetHistogram(std::string_view scope, std::string_view name,
                          std::span<const std::uint64_t> bounds,
                          std::string_view help = "");

  /// Merged values of every instrument, sorted by (scope, name).
  std::vector<MetricSample> Snapshot() const;

  /// Zeroes every instrument's accumulators; registrations (and handed-
  /// out pointers) stay valid. Callers must quiesce updaters first.
  void Reset();

  std::size_t size() const;

  void WriteText(std::ostream& os) const;  // Prometheus exposition
  void WriteJson(std::ostream& os) const;
  void WriteCsv(std::ostream& os) const;

  /// The process-wide registry the simulator subsystems register into.
  static Registry& Global();

 private:
  struct Entry {
    MetricInfo info;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrNull(const std::string& key);

  mutable std::mutex mu_;
  // Keyed "scope\x1f<name>": std::map iteration is already the stable
  // (scope, name) order every exporter needs.
  std::map<std::string, Entry> entries_;
};

/// Sanitized Prometheus metric name: "dlpsim_<scope>_<name>" with every
/// character outside [a-zA-Z0-9_] replaced by '_' (and a leading '_' when
/// the result would start with a digit).
std::string PrometheusName(std::string_view scope, std::string_view name);

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string PrometheusLabelEscape(std::string_view s);

/// RFC-4180 CSV field: quoted (with doubled quotes) when the value
/// contains a comma, quote, CR or LF; verbatim otherwise.
std::string CsvField(std::string_view s);

}  // namespace dlpsim::obs
