#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "obs/json.h"

namespace dlpsim::obs {

const char* ToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

namespace detail {

std::size_t ThisShard() {
  // Monotone registration counter, wrapped onto the fixed shard set.
  // Shard collisions (> kMetricShards live threads) only cost contention:
  // the relaxed atomic adds stay correct and the merged sums unchanged.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const detail::Slot& s : slots_) {
    total += static_cast<std::uint64_t>(s.v.load(std::memory_order_relaxed));
  }
  return total;
}

void Counter::Reset() {
  for (detail::Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
}

std::int64_t Gauge::Value() const {
  std::int64_t total = 0;
  for (const detail::Slot& s : slots_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Reset() {
  for (detail::Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::span<const std::uint64_t> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::logic_error("histogram bounds must be strictly increasing");
    }
  }
  // Per shard: bounds+1 buckets (last = overflow) plus one sum slot.
  stride_ = bounds_.size() + 2;
  slots_ = std::vector<detail::Slot>(kMetricShards * stride_);
}

void Histogram::Observe(std::uint64_t v) {
  // First bound >= v wins (Prometheus "le" semantics); above the last
  // bound lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  const std::size_t base = detail::ThisShard() * stride_;
  slots_[base + bucket].v.fetch_add(1, std::memory_order_relaxed);
  slots_[base + stride_ - 1].v.fetch_add(static_cast<std::int64_t>(v),
                                         std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (std::size_t s = 0; s < kMetricShards; ++s) {
    for (std::size_t b = 0; b < counts.size(); ++b) {
      counts[b] += static_cast<std::uint64_t>(
          slots_[s * stride_ + b].v.load(std::memory_order_relaxed));
    }
  }
  return counts;
}

std::uint64_t Histogram::Count() const {
  std::uint64_t n = 0;
  for (const std::uint64_t c : BucketCounts()) n += c;
  return n;
}

std::uint64_t Histogram::Sum() const {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < kMetricShards; ++s) {
    sum += static_cast<std::uint64_t>(
        slots_[s * stride_ + stride_ - 1].v.load(std::memory_order_relaxed));
  }
  return sum;
}

void Histogram::Reset() {
  for (detail::Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {
std::string KeyOf(std::string_view scope, std::string_view name) {
  std::string key(scope);
  key += '\x1f';  // cannot collide with any printable scope/name pair
  key += name;
  return key;
}
}  // namespace

Registry::Entry* Registry::FindOrNull(const std::string& key) {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

Counter* Registry::GetCounter(std::string_view scope, std::string_view name,
                              std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = KeyOf(scope, name);
  if (Entry* e = FindOrNull(key); e != nullptr) {
    if (e->info.kind != MetricKind::kCounter) {
      throw std::logic_error("metric " + std::string(scope) + "." +
                             std::string(name) +
                             " already registered with a different kind");
    }
    return e->counter.get();
  }
  Entry& e = entries_[key];
  e.info = {std::string(scope), std::string(name), std::string(help),
            MetricKind::kCounter};
  e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* Registry::GetGauge(std::string_view scope, std::string_view name,
                          std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = KeyOf(scope, name);
  if (Entry* e = FindOrNull(key); e != nullptr) {
    if (e->info.kind != MetricKind::kGauge) {
      throw std::logic_error("metric " + std::string(scope) + "." +
                             std::string(name) +
                             " already registered with a different kind");
    }
    return e->gauge.get();
  }
  Entry& e = entries_[key];
  e.info = {std::string(scope), std::string(name), std::string(help),
            MetricKind::kGauge};
  e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view scope,
                                  std::string_view name,
                                  std::span<const std::uint64_t> bounds,
                                  std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = KeyOf(scope, name);
  if (Entry* e = FindOrNull(key); e != nullptr) {
    if (e->info.kind != MetricKind::kHistogram ||
        !std::equal(bounds.begin(), bounds.end(),
                    e->histogram->bounds().begin(),
                    e->histogram->bounds().end())) {
      throw std::logic_error("metric " + std::string(scope) + "." +
                             std::string(name) +
                             " already registered with a different "
                             "kind/bounds");
    }
    return e->histogram.get();
  }
  Entry& e = entries_[key];
  e.info = {std::string(scope), std::string(name), std::string(help),
            MetricKind::kHistogram};
  e.histogram = std::make_unique<Histogram>(bounds);
  return e.histogram.get();
}

std::vector<MetricSample> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSample s;
    s.info = e.info;
    switch (e.info.kind) {
      case MetricKind::kCounter:
        s.counter = e.counter->Value();
        break;
      case MetricKind::kGauge:
        s.gauge = e.gauge->Value();
        break;
      case MetricKind::kHistogram:
        s.bounds = e.histogram->bounds();
        s.bucket_counts = e.histogram->BucketCounts();
        s.count = e.histogram->Count();
        s.sum = e.histogram->Sum();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, e] : entries_) {
    switch (e.info.kind) {
      case MetricKind::kCounter:
        e.counter->Reset();
        break;
      case MetricKind::kGauge:
        e.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

// ---------------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------------

std::string PrometheusName(std::string_view scope, std::string_view name) {
  std::string out = "dlpsim_";
  const auto append = [&out](std::string_view part) {
    for (const char c : part) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out += ok ? c : '_';
    }
  };
  append(scope);
  out += '_';
  append(name);
  return out;
}

std::string PrometheusLabelEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string CsvField(std::string_view s) {
  const bool hostile = s.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!hostile) return std::string(s);
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void Registry::WriteText(std::ostream& os) const {
  for (const MetricSample& s : Snapshot()) {
    const std::string pname = PrometheusName(s.info.scope, s.info.name);
    if (!s.info.help.empty()) {
      // HELP text: escape backslash and newline per the exposition format.
      std::string help;
      for (const char c : s.info.help) {
        if (c == '\\') {
          help += "\\\\";
        } else if (c == '\n') {
          help += "\\n";
        } else {
          help += c;
        }
      }
      os << "# HELP " << pname << ' ' << help << '\n';
    }
    os << "# TYPE " << pname << ' ' << ToString(s.info.kind) << '\n';
    // Sanitizing can collapse distinct raw names; the raw identity rides
    // along as labels so nothing is lost.
    const std::string labels = "{scope=\"" +
                               PrometheusLabelEscape(s.info.scope) +
                               "\",name=\"" +
                               PrometheusLabelEscape(s.info.name) + "\"}";
    switch (s.info.kind) {
      case MetricKind::kCounter:
        os << pname << labels << ' ' << s.counter << '\n';
        break;
      case MetricKind::kGauge:
        os << pname << labels << ' ' << s.gauge << '\n';
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < s.bucket_counts.size(); ++b) {
          cumulative += s.bucket_counts[b];
          os << pname << "_bucket{scope=\""
             << PrometheusLabelEscape(s.info.scope) << "\",name=\""
             << PrometheusLabelEscape(s.info.name) << "\",le=\"";
          if (b < s.bounds.size()) {
            os << s.bounds[b];
          } else {
            os << "+Inf";
          }
          os << "\"} " << cumulative << '\n';
        }
        os << pname << "_sum" << labels << ' ' << s.sum << '\n';
        os << pname << "_count" << labels << ' ' << s.count << '\n';
        break;
      }
    }
  }
}

void Registry::WriteJson(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("schema", "dlpsim-metrics-v1");
  w.Key("metrics").BeginArray();
  for (const MetricSample& s : Snapshot()) {
    w.BeginObject();
    w.KV("scope", s.info.scope);
    w.KV("name", s.info.name);
    w.KV("kind", ToString(s.info.kind));
    if (!s.info.help.empty()) w.KV("help", s.info.help);
    switch (s.info.kind) {
      case MetricKind::kCounter:
        w.KV("value", s.counter);
        break;
      case MetricKind::kGauge:
        w.KV("value", std::int64_t{s.gauge});
        break;
      case MetricKind::kHistogram:
        w.Key("bounds").BeginArray();
        for (const std::uint64_t b : s.bounds) w.Value(b);
        w.EndArray();
        w.Key("buckets").BeginArray();
        for (const std::uint64_t c : s.bucket_counts) w.Value(c);
        w.EndArray();
        w.KV("count", s.count);
        w.KV("sum", s.sum);
        break;
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
}

void Registry::WriteCsv(std::ostream& os) const {
  os << "scope,name,kind,bucket,value\n";
  for (const MetricSample& s : Snapshot()) {
    const std::string prefix = CsvField(s.info.scope) + ',' +
                               CsvField(s.info.name) + ',' +
                               ToString(s.info.kind);
    switch (s.info.kind) {
      case MetricKind::kCounter:
        os << prefix << ",," << s.counter << '\n';
        break;
      case MetricKind::kGauge:
        os << prefix << ",," << s.gauge << '\n';
        break;
      case MetricKind::kHistogram:
        for (std::size_t b = 0; b < s.bucket_counts.size(); ++b) {
          os << prefix << ",le=";
          if (b < s.bounds.size()) {
            os << s.bounds[b];
          } else {
            os << "inf";
          }
          os << ',' << s.bucket_counts[b] << '\n';
        }
        os << prefix << ",sum," << s.sum << '\n';
        os << prefix << ",count," << s.count << '\n';
        break;
    }
  }
}

}  // namespace dlpsim::obs
