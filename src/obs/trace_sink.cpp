#include "obs/trace_sink.h"

#include <algorithm>
#include <cassert>

namespace dlpsim {

const char* ToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAccess:
      return "access";
    case TraceEventKind::kBypass:
      return "bypass";
    case TraceEventKind::kEviction:
      return "eviction";
    case TraceEventKind::kFill:
      return "fill";
    case TraceEventKind::kVtaHit:
      return "vta_hit";
    case TraceEventKind::kPdSample:
      return "pd_sample";
    case TraceEventKind::kPlSaturated:
      return "pl_saturated";
  }
  return "?";
}

TraceSink::TraceSink(std::size_t capacity) : buffer_(std::max<std::size_t>(capacity, 1)) {}

void TraceSink::Emit(TraceEvent event) {
  event.cycle = now_;
  buffer_[head_] = event;
  head_ = (head_ + 1) % buffer_.size();
  size_ = std::min(size_ + 1, buffer_.size());
  ++total_emitted_;
}

std::vector<TraceEvent> TraceSink::InOrder() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // When full, head_ points at the oldest event; otherwise the buffer
  // starts at index 0.
  const std::size_t start = size_ == buffer_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceSink::OfKind(TraceEventKind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : InOrder()) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::size_t TraceSink::CountKind(TraceEventKind kind) const {
  std::size_t n = 0;
  const std::size_t start = size_ == buffer_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    if (buffer_[(start + i) % buffer_.size()].kind == kind) ++n;
  }
  return n;
}

void TraceSink::Clear() {
  head_ = 0;
  size_ = 0;
  total_emitted_ = 0;
}

}  // namespace dlpsim
