// Machine-readable exporters for run telemetry:
//
//   WriteJsonReport  - one self-describing JSON document per run: app /
//                      configuration identity, key simulator parameters,
//                      the full Metrics counter block, derived rates and
//                      the sampled timeline.
//   WriteChromeTrace - Chrome trace-event format (JSON), loadable in
//                      Perfetto / chrome://tracing: one instant event per
//                      retained trace record (thread = SM) plus counter
//                      tracks from the timeline (mean PD, protected
//                      lines, per-interval hits and bypasses).
//   WriteTimelineCsv - the timeline as CSV, one row per sample: cycle,
//                      every Metrics delta column, and the policy state.
//   WriteProfileChromeTrace - an obs::Profiler's span buffer as Chrome
//                      trace-event "X" (complete) events, so a profiled
//                      run's phase timeline opens in Perfetto next to
//                      the simulation traces.
//
// String handling: every string that reaches a JSON document here flows
// through JsonWriter, which escapes quotes, backslashes and control
// characters -- hostile app/config names (commas, quotes, newlines)
// round-trip safely. The CSV exporters emit only numeric columns; any
// future string CSV column must go through obs::CsvField (metrics.h).
#pragma once

#include <ostream>
#include <string>

#include "gpu/metrics.h"
#include "obs/timeline.h"
#include "obs/trace_sink.h"
#include "sim/config.h"

namespace dlpsim {

namespace obs {
class Profiler;
}  // namespace obs

/// Identity of the run being reported.
struct RunReportInfo {
  std::string app;     // workload abbreviation ("BFS"), may be empty
  std::string config;  // configuration name ("dlp"), may be empty
  double scale = 1.0;  // workload scale factor
};

void WriteJsonReport(std::ostream& os, const RunReportInfo& info,
                     const SimConfig& cfg, const Metrics& metrics,
                     const TimelineSampler* timeline = nullptr,
                     const TraceSink* trace = nullptr);

void WriteChromeTrace(std::ostream& os, const TraceSink& trace,
                      const TimelineSampler* timeline = nullptr,
                      std::uint32_t num_sms = 0);

void WriteTimelineCsv(std::ostream& os, const TimelineSampler& timeline);

/// Renders a phase profiler's retained span events (obs/profiler.h) as
/// Chrome trace-event complete ("X") events on the wall-clock microsecond
/// axis, one track per span depth. `label` names the process track (the
/// app/config stem, may be empty).
void WriteProfileChromeTrace(std::ostream& os, const obs::Profiler& profiler,
                             const std::string& label = "");

}  // namespace dlpsim
