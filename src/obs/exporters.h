// Machine-readable exporters for run telemetry:
//
//   WriteJsonReport  - one self-describing JSON document per run: app /
//                      configuration identity, key simulator parameters,
//                      the full Metrics counter block, derived rates and
//                      the sampled timeline.
//   WriteChromeTrace - Chrome trace-event format (JSON), loadable in
//                      Perfetto / chrome://tracing: one instant event per
//                      retained trace record (thread = SM) plus counter
//                      tracks from the timeline (mean PD, protected
//                      lines, per-interval hits and bypasses).
//   WriteTimelineCsv - the timeline as CSV, one row per sample: cycle,
//                      every Metrics delta column, and the policy state.
#pragma once

#include <ostream>
#include <string>

#include "gpu/metrics.h"
#include "obs/timeline.h"
#include "obs/trace_sink.h"
#include "sim/config.h"

namespace dlpsim {

/// Identity of the run being reported.
struct RunReportInfo {
  std::string app;     // workload abbreviation ("BFS"), may be empty
  std::string config;  // configuration name ("dlp"), may be empty
  double scale = 1.0;  // workload scale factor
};

void WriteJsonReport(std::ostream& os, const RunReportInfo& info,
                     const SimConfig& cfg, const Metrics& metrics,
                     const TimelineSampler* timeline = nullptr,
                     const TraceSink* trace = nullptr);

void WriteChromeTrace(std::ostream& os, const TraceSink& trace,
                      const TimelineSampler* timeline = nullptr,
                      std::uint32_t num_sms = 0);

void WriteTimelineCsv(std::ostream& os, const TimelineSampler& timeline);

}  // namespace dlpsim
