#include "obs/profiler.h"

#include <algorithm>
#include <cassert>

#include "obs/json.h"
#include "obs/metrics.h"

namespace dlpsim::obs {

const char* ToString(Phase phase) {
  switch (phase) {
    case Phase::kRun:
      return "run";
    case Phase::kCoreTick:
      return "core_tick";
    case Phase::kIcntTick:
      return "icnt_tick";
    case Phase::kMemTick:
      return "mem_tick";
    case Phase::kCacheAccess:
      return "cache_access";
    case Phase::kPolicyUpdate:
      return "policy_update";
    case Phase::kDrainCheck:
      return "drain_check";
    case Phase::kSnapshot:
      return "snapshot";
  }
  return "?";
}

Profiler::Profiler(std::size_t max_events) : max_events_(max_events) {
  stack_.reserve(16);
  events_.reserve(std::min<std::size_t>(max_events_, 1024));
}

void Profiler::Begin(Phase phase) {
  Frame f;
  f.phase = phase;
  f.child_seconds = 0.0;
  if (stack_.empty()) {
    f.path = "dlpsim;";
  } else {
    f.path = stack_.back().path;
    f.path += ';';
  }
  f.path += ToString(phase);
  // Read the clock last so path construction is not billed to the span.
  f.start = clock_.Seconds();
  stack_.push_back(std::move(f));
}

void Profiler::End() {
  assert(!stack_.empty() && "ProfileSpan End without Begin");
  if (stack_.empty()) return;
  const double now = clock_.Seconds();
  Frame f = std::move(stack_.back());
  stack_.pop_back();
  const double total = std::max(0.0, now - f.start);
  const double self = std::max(0.0, total - f.child_seconds);
  PhaseStat& stat = phases_[static_cast<std::size_t>(f.phase)];
  ++stat.calls;
  stat.total_seconds += total;
  stat.self_seconds += self;
  path_self_[f.path] += self;
  if (!stack_.empty()) stack_.back().child_seconds += total;
  if (events_.size() < max_events_) {
    events_.push_back({f.phase, static_cast<std::uint32_t>(stack_.size()),
                       f.start, total});
  } else {
    ++dropped_events_;
  }
}

std::vector<std::pair<Phase, PhaseStat>> Profiler::PhaseStats() const {
  std::vector<std::pair<Phase, PhaseStat>> out;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (phases_[i].calls == 0) continue;
    out.emplace_back(static_cast<Phase>(i), phases_[i]);
  }
  return out;
}

void Profiler::WriteJson(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("schema", "dlpsim-profile-v1");
  w.KV("elapsed_seconds", ElapsedSeconds());
  w.KV("dropped_events", dropped_events_);
  w.Key("phases").BeginArray();
  for (const auto& [phase, stat] : PhaseStats()) {
    w.BeginObject();
    w.KV("phase", ToString(phase));
    w.KV("calls", stat.calls);
    w.KV("total_seconds", stat.total_seconds);
    w.KV("self_seconds", stat.self_seconds);
    w.EndObject();
  }
  w.EndArray();
  w.Key("paths").BeginArray();
  for (const auto& [path, self] : path_self_) {
    w.BeginObject();
    w.KV("path", path);
    w.KV("self_seconds", self);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
}

void Profiler::WriteCollapsed(std::ostream& os) const {
  // flamegraph.pl convention: "frame;frame;frame <count>". Counts are
  // self-time in integer microseconds.
  for (const auto& [path, self] : path_self_) {
    os << path << ' ' << static_cast<std::uint64_t>(self * 1e6) << '\n';
  }
}

void Profiler::WriteText(std::ostream& os) const {
  os << "# TYPE dlpsim_profile_phase_calls counter\n";
  for (const auto& [phase, stat] : PhaseStats()) {
    os << "dlpsim_profile_phase_calls{phase=\""
       << PrometheusLabelEscape(ToString(phase)) << "\"} " << stat.calls
       << '\n';
  }
  os << "# TYPE dlpsim_profile_phase_seconds_total counter\n";
  for (const auto& [phase, stat] : PhaseStats()) {
    os << "dlpsim_profile_phase_seconds_total{phase=\""
       << PrometheusLabelEscape(ToString(phase)) << "\"} "
       << stat.total_seconds << '\n';
  }
  os << "# TYPE dlpsim_profile_phase_self_seconds_total counter\n";
  for (const auto& [phase, stat] : PhaseStats()) {
    os << "dlpsim_profile_phase_self_seconds_total{phase=\""
       << PrometheusLabelEscape(ToString(phase)) << "\"} "
       << stat.self_seconds << '\n';
  }
}

}  // namespace dlpsim::obs
