#include "obs/exporters.h"

#include <algorithm>

#include "core/l1d_cache.h"
#include "core/pdpt.h"
#include "obs/json.h"
#include "obs/profiler.h"

namespace dlpsim {

namespace {

const char* UpdatePathName(std::uint64_t path) {
  switch (static_cast<PdpTable::UpdatePath>(path)) {
    case PdpTable::UpdatePath::kIncrease:
      return "increase";
    case PdpTable::UpdatePath::kDecrease:
      return "decrease";
    case PdpTable::UpdatePath::kHold:
      return "hold";
  }
  return "?";
}

const char* BypassReasonName(std::uint64_t reason) {
  switch (static_cast<BypassReason>(reason)) {
    case BypassReason::kNoVictim:
      return "no_victim";
    case BypassReason::kResourceStall:
      return "resource_stall";
  }
  return "?";
}

void WriteMetricsObject(JsonWriter& w, const Metrics& m) {
  w.BeginObject();
  for (const MetricsField& f : MetricsFields()) {
    w.KV(f.name, m.*(f.member));
  }
  w.EndObject();
}

void WritePolicySnapshot(JsonWriter& w, const PolicySnapshot& p) {
  w.BeginObject();
  w.KV("mean_pd", p.mean_pd);
  w.KV("protected_lines", p.protected_lines);
  w.KV("samples_taken", p.samples_taken);
  w.Key("pl_histogram").BeginArray();
  for (const std::uint64_t n : p.pl_histogram) w.Value(n);
  w.EndArray();
  w.EndObject();
}

}  // namespace

void WriteJsonReport(std::ostream& os, const RunReportInfo& info,
                     const SimConfig& cfg, const Metrics& metrics,
                     const TimelineSampler* timeline, const TraceSink* trace) {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("schema", "dlpsim-report-v1");
  w.KV("app", info.app);
  w.KV("config", info.config);
  w.KV("scale", info.scale);

  w.Key("sim_config").BeginObject();
  w.KV("policy", ToString(cfg.l1d.policy));
  w.KV("num_cores", cfg.num_cores);
  w.KV("num_partitions", cfg.num_partitions);
  w.Key("l1d").BeginObject();
  w.KV("sets", cfg.l1d.geom.sets);
  w.KV("ways", cfg.l1d.geom.ways);
  w.KV("line_bytes", cfg.l1d.geom.line_bytes);
  w.KV("mshr_entries", cfg.l1d.mshr_entries);
  w.KV("miss_queue_entries", cfg.l1d.miss_queue_entries);
  w.EndObject();
  w.Key("protection").BeginObject();
  w.KV("sample_accesses", cfg.l1d.prot.sample_accesses);
  w.KV("pdpt_entries", cfg.l1d.prot.pdpt_entries);
  w.KV("pd_bits", cfg.l1d.prot.pd_bits);
  w.KV("pd_max", cfg.l1d.prot.pd_max());
  w.EndObject();
  w.EndObject();

  w.Key("metrics");
  WriteMetricsObject(w, metrics);

  w.Key("derived").BeginObject();
  w.KV("ipc", metrics.ipc());
  w.KV("memory_access_ratio", metrics.memory_access_ratio());
  w.KV("avg_load_latency", metrics.avg_load_latency());
  w.KV("l1d_hit_rate", metrics.l1d_hit_rate());
  w.KV("l1d_traffic", metrics.l1d_traffic());
  w.EndObject();

  if (trace != nullptr) {
    w.Key("trace").BeginObject();
    w.KV("capacity", std::uint64_t{trace->capacity()});
    w.KV("retained", std::uint64_t{trace->size()});
    w.KV("total_emitted", trace->total_emitted());
    w.KV("dropped", trace->dropped());
    w.EndObject();
  }

  if (timeline != nullptr) {
    w.Key("timeline").BeginObject();
    w.KV("interval", timeline->interval());
    w.Key("samples").BeginArray();
    for (const TimelineSample& s : timeline->samples()) {
      w.BeginObject();
      w.KV("cycle", s.cycle);
      w.Key("policy");
      WritePolicySnapshot(w, s.policy);
      w.Key("delta");
      WriteMetricsObject(w, s.delta);
      w.Key("cumulative");
      WriteMetricsObject(w, s.cumulative);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  w.EndObject();
  os << '\n';
}

void WriteChromeTrace(std::ostream& os, const TraceSink& trace,
                      const TimelineSampler* timeline, std::uint32_t num_sms) {
  const std::vector<TraceEvent> events = trace.InOrder();
  if (num_sms == 0) {
    for (const TraceEvent& e : events) {
      num_sms = std::max(num_sms, std::uint32_t{e.sm} + 1);
    }
  }

  JsonWriter w(os);
  w.BeginObject();
  w.KV("displayTimeUnit", "ms");
  w.Key("otherData").BeginObject();
  w.KV("generator", "dlpsim");
  w.KV("dropped_events", trace.dropped());
  w.EndObject();
  w.Key("traceEvents").BeginArray();

  // Metadata: name the process and one thread per SM.
  w.BeginObject();
  w.KV("name", "process_name");
  w.KV("ph", "M");
  w.KV("pid", 0);
  w.KV("tid", 0);
  w.Key("args").BeginObject().KV("name", "dlpsim L1D").EndObject();
  w.EndObject();
  for (std::uint32_t sm = 0; sm < num_sms; ++sm) {
    w.BeginObject();
    w.KV("name", "thread_name");
    w.KV("ph", "M");
    w.KV("pid", 0);
    w.KV("tid", sm);
    w.Key("args").BeginObject().KV("name", "SM" + std::to_string(sm));
    w.EndObject();
    w.EndObject();
  }

  // Trace records as instant events; the core cycle maps to the `ts`
  // microsecond axis one-to-one.
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.KV("name", ToString(e.kind));
    w.KV("cat", "l1d");
    w.KV("ph", "i");
    // PD recomputes are rare, global landmarks; everything else is
    // thread(SM)-scoped.
    w.KV("s", e.kind == TraceEventKind::kPdSample ? "p" : "t");
    w.KV("ts", e.cycle);
    w.KV("pid", 0);
    w.KV("tid", e.sm);
    w.Key("args").BeginObject();
    switch (e.kind) {
      case TraceEventKind::kAccess:
        w.KV("result", ToString(static_cast<AccessResult>(e.arg0)));
        w.KV("set", e.set);
        w.KV("block", e.block);
        w.KV("pc", e.pc);
        break;
      case TraceEventKind::kBypass:
        w.KV("reason", BypassReasonName(e.arg0));
        w.KV("set", e.set);
        w.KV("block", e.block);
        w.KV("pc", e.pc);
        break;
      case TraceEventKind::kEviction:
        w.KV("set", e.set);
        w.KV("victim_block", e.block);
        w.KV("victim_pc", e.pc);
        w.KV("dirty", e.arg0 != 0);
        break;
      case TraceEventKind::kFill:
        w.KV("set", e.set);
        w.KV("block", e.block);
        break;
      case TraceEventKind::kVtaHit:
        w.KV("set", e.set);
        w.KV("block", e.block);
        w.KV("pc", e.pc);
        w.KV("insn_id", e.arg0);
        break;
      case TraceEventKind::kPdSample:
        w.KV("mean_pd_before", static_cast<double>(e.arg0) / 1000.0);
        w.KV("mean_pd_after", static_cast<double>(e.arg1) / 1000.0);
        w.KV("path", UpdatePathName(e.arg2));
        break;
      case TraceEventKind::kPlSaturated:
        w.KV("block", e.block);
        w.KV("pc", e.pc);
        w.KV("insn_id", e.arg0);
        break;
    }
    w.EndObject();
    w.EndObject();
  }

  // Timeline counter tracks (Perfetto renders these as line charts).
  if (timeline != nullptr) {
    auto counter = [&w](const char* name, Cycle cycle, double value) {
      w.BeginObject();
      w.KV("name", name);
      w.KV("ph", "C");
      w.KV("ts", cycle);
      w.KV("pid", 0);
      w.KV("tid", 0);
      w.Key("args").BeginObject().KV("value", value).EndObject();
      w.EndObject();
    };
    for (const TimelineSample& s : timeline->samples()) {
      counter("mean_pd", s.cycle, s.policy.mean_pd);
      counter("protected_lines", s.cycle,
              static_cast<double>(s.policy.protected_lines));
      counter("l1d_hits/interval", s.cycle,
              static_cast<double>(s.delta.l1d_load_hits));
      counter("l1d_bypasses/interval", s.cycle,
              static_cast<double>(s.delta.l1d_bypasses));
    }
  }

  w.EndArray();
  w.EndObject();
  os << '\n';
}

void WriteTimelineCsv(std::ostream& os, const TimelineSampler& timeline) {
  os << "cycle";
  // Per-interval deltas, prefixed so they cannot be mistaken for totals.
  for (const MetricsField& f : MetricsFields()) os << ",d_" << f.name;
  os << ",mean_pd,protected_lines,samples_taken";
  for (std::size_t i = 0; i < PolicySnapshot{}.pl_histogram.size(); ++i) {
    os << ",pl_" << i;
  }
  os << '\n';
  for (const TimelineSample& s : timeline.samples()) {
    os << s.cycle;
    for (const MetricsField& f : MetricsFields()) {
      os << ',' << s.delta.*(f.member);
    }
    os << ',' << s.policy.mean_pd << ',' << s.policy.protected_lines << ','
       << s.policy.samples_taken;
    for (const std::uint64_t n : s.policy.pl_histogram) os << ',' << n;
    os << '\n';
  }
}

void WriteProfileChromeTrace(std::ostream& os, const obs::Profiler& profiler,
                             const std::string& label) {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("displayTimeUnit", "ms");
  w.Key("otherData").BeginObject();
  w.KV("generator", "dlpsim");
  w.KV("dropped_events", profiler.dropped_events());
  w.EndObject();
  w.Key("traceEvents").BeginArray();

  w.BeginObject();
  w.KV("name", "process_name");
  w.KV("ph", "M");
  w.KV("pid", 0);
  w.KV("tid", 0);
  w.Key("args")
      .BeginObject()
      .KV("name", label.empty() ? std::string("dlpsim phases")
                                : "dlpsim phases " + label)
      .EndObject();
  w.EndObject();

  // One "thread" per span depth keeps nested spans on separate tracks
  // (Perfetto stacks same-tid complete events, but depth tracks read
  // better for a fixed 3-deep phase hierarchy).
  for (const obs::SpanEvent& e : profiler.events()) {
    w.BeginObject();
    w.KV("name", obs::ToString(e.phase));
    w.KV("cat", "phase");
    w.KV("ph", "X");
    w.KV("ts", e.start_seconds * 1e6);
    w.KV("dur", e.dur_seconds * 1e6);
    w.KV("pid", 0);
    w.KV("tid", e.depth);
    w.EndObject();
  }

  w.EndArray();
  w.EndObject();
  os << '\n';
}

}  // namespace dlpsim
