// Minimal dependency-free JSON support for the obs/ exporters.
//
// JsonWriter is a streaming writer with an explicit nesting stack: it
// inserts commas, quotes and escapes for you and asserts on misuse
// (value without a pending key inside an object, unbalanced End calls).
// JsonValue/ParseJson is a small recursive-descent reader used by tests
// and the trace inspector to round-trip reports; numbers are stored as
// both double and (when exact) uint64 so 64-bit counters survive.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dlpsim {

/// Escapes `s` for inclusion in a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the key of the next value; valid only inside an object.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(std::uint64_t v);
  JsonWriter& Value(std::int64_t v);
  JsonWriter& Value(std::uint32_t v) { return Value(std::uint64_t{v}); }
  JsonWriter& Value(std::int32_t v) { return Value(std::int64_t{v}); }
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);
  JsonWriter& Null();

  /// Key + value in one call.
  template <typename T>
  JsonWriter& KV(std::string_view key, T v) {
    Key(key);
    return Value(v);
  }

  /// Depth of open containers (0 when the document is complete).
  std::size_t depth() const { return stack_.size(); }

 private:
  void BeforeValue();

  struct Scope {
    bool is_object = false;
    bool first = true;
    bool key_pending = false;
  };

  std::ostream& os_;
  std::vector<Scope> stack_;
};

/// Parsed JSON document node.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t number_u64 = 0;  // exact when the token was a plain integer
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Object member access; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Convenience: Find(key)->number_u64 with a 0 default.
  std::uint64_t U64(const std::string& key) const;
};

/// Parses a complete JSON document. On failure returns a kNull value and
/// sets *ok to false (trailing garbage is a failure).
JsonValue ParseJson(std::string_view text, bool* ok = nullptr);

}  // namespace dlpsim
