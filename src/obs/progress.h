// DLPSIM_PROGRESS heartbeat: periodic one-line progress from a running
// simulation (cycle, accesses/sec, warps finished, ETA), timed with the
// D2-sanctioned exec::Stopwatch.
//
// The meter is sampled on the simulator's core clock edge (Due/Emit, the
// same pattern as TimelineSampler) and is purely observational: it never
// feeds simulated state, so attaching one cannot change results. The
// last emitted line is retained thread-safely so the robust/ watchdog
// can quote it in a StallDiagnostic -- a stalled run's report then shows
// how far it got and how fast it was moving when it died.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>

#include "exec/timing.h"

namespace dlpsim::obs {

/// One progress observation, assembled by the simulator.
struct ProgressSample {
  std::uint64_t cycle = 0;
  std::uint64_t accesses = 0;  // cumulative L1D accesses
  std::uint64_t warps_total = 0;
  std::uint64_t warps_finished = 0;
};

class ProgressMeter {
 public:
  /// Emits every `interval_cycles` core cycles, prefixed with `label`
  /// (e.g. "BFS/dlp"). `os` defaults to std::cerr so heartbeats never
  /// corrupt stdout report streams.
  explicit ProgressMeter(std::uint64_t interval_cycles,
                         std::string label = "", std::ostream* os = nullptr);

  bool Due(std::uint64_t cycle) const { return cycle >= next_; }

  /// Formats and writes one heartbeat line, e.g.
  ///   [progress] BFS/dlp cycle=2000000 acc/s=1523412 warps=412/512
  ///   eta=3.1s
  /// acc/s is wall-clock throughput since construction; ETA scales the
  /// elapsed wall time by the unfinished warp fraction.
  void Emit(const ProgressSample& sample);

  /// The most recent heartbeat line (empty before the first Emit).
  /// Thread-safe: the watchdog may read it from a stall report path.
  std::string last_line() const;

  std::uint64_t interval() const { return interval_; }

 private:
  exec::Stopwatch clock_;
  std::uint64_t interval_;
  std::uint64_t next_;
  std::string label_;
  std::ostream* os_;  // never null after construction
  mutable std::mutex mu_;
  std::string last_line_;
};

}  // namespace dlpsim::obs
