#include "obs/timeline.h"

#include <algorithm>

namespace dlpsim {

TimelineSampler::TimelineSampler(Cycle interval)
    : interval_(std::max<Cycle>(interval, 1)), next_(interval_) {}

void TimelineSampler::Record(Cycle now, const Metrics& cumulative,
                             const PolicySnapshot& snapshot) {
  TimelineSample s;
  s.cycle = now;
  s.cumulative = cumulative;
  s.policy = snapshot;
  for (const MetricsField& f : MetricsFields()) {
    s.delta.*(f.member) = cumulative.*(f.member) - last_.*(f.member);
  }
  last_ = cumulative;
  samples_.push_back(std::move(s));
  // Fixed grid (not now + interval) so a late sample does not shift
  // every following one.
  while (next_ <= now) next_ += interval_;
}

void TimelineSampler::Clear() {
  samples_.clear();
  last_ = Metrics{};
  next_ = interval_;
}

}  // namespace dlpsim
