// Typed trace records emitted by the L1D front end, the protection
// policies and the simulator. One fixed-size POD per event keeps the
// ring buffer allocation-free; the meaning of the generic payload args
// is documented per kind below.
#pragma once

#include <cstdint>

#include "sim/types.h"

namespace dlpsim {

enum class TraceEventKind : std::uint8_t {
  // One completed (or failed) L1D access.
  //   set/block/pc of the access, arg0 = AccessResult.
  kAccess,
  // A load was sent around the cache.
  //   set/block/pc, arg0 = BypassReason.
  kBypass,
  // A filled line was displaced by a reservation.
  //   set, block/pc of the *victim*, arg0 = 1 iff the victim was dirty.
  kEviction,
  // A miss response filled its reserved line. set/block.
  kFill,
  // A missing block was found in the Victim Tag Array (the
  // under-protection signal). set/block/pc, arg0 = credited insn id.
  kVtaHit,
  // A PDPT sample window ended and the Fig. 9 PD update ran.
  //   arg0/arg1 = mean PD x1000 before/after, arg2 = PdpTable::UpdatePath,
  //   block = the sample's global TDA hits, pc = its global VTA hits.
  kPdSample,
  // A line's protected life was (re)set to the maximum PD value, i.e.
  // the 4-bit PL field saturated. block/pc, arg0 = insn id.
  kPlSaturated,
};

const char* ToString(TraceEventKind kind);

/// Why a load bypassed the L1D (TraceEventKind::kBypass, arg0).
enum class BypassReason : std::uint8_t {
  kNoVictim = 0,       // set fully protected (or all ways reserved, SB)
  kResourceStall = 1,  // MSHR / miss queue / merge limit exhausted
};

struct TraceEvent {
  Cycle cycle = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint64_t arg2 = 0;
  Addr block = 0;
  Pc pc = 0;
  std::uint32_t set = 0;
  std::uint16_t sm = 0;
  TraceEventKind kind = TraceEventKind::kAccess;
};

}  // namespace dlpsim
