// Time-series telemetry: periodic snapshots of the run's Metrics plus
// the protection machinery's internal state.
//
// The simulator drives the sampler from its core-clock loop: every
// `interval` core cycles it hands over the *cumulative* Metrics and a
// PolicySnapshot; the sampler stores both the cumulative values and the
// per-interval delta, so series of hit/bypass/traffic rates fall out
// directly and the deltas sum exactly to the final Metrics.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gpu/metrics.h"
#include "sim/types.h"

namespace dlpsim {

/// Aggregated protection-policy state across every SM's L1D at one
/// sampling instant. All-zero under Baseline / Stall-Bypass (no PDPT).
struct PolicySnapshot {
  double mean_pd = 0.0;            // mean PD over PDPT entries, averaged over SMs
  std::uint64_t protected_lines = 0;  // cache lines with PL > 0, all SMs
  std::uint64_t samples_taken = 0;    // PDPT sample windows ended, summed
  // Count of occupied lines by current protected-life value; PL is a
  // 4-bit field so 16 buckets cover every representable value.
  std::array<std::uint64_t, 16> pl_histogram{};
};

struct TimelineSample {
  Cycle cycle = 0;
  Metrics delta;       // change since the previous sample
  Metrics cumulative;  // running totals at `cycle`
  PolicySnapshot policy;
};

class TimelineSampler {
 public:
  explicit TimelineSampler(Cycle interval);

  /// True when `now` has reached the next sampling instant.
  bool Due(Cycle now) const { return now >= next_; }

  /// Appends a sample; `cumulative` is the run's Metrics-so-far. Called
  /// by the simulator when Due(), plus once at end of run.
  void Record(Cycle now, const Metrics& cumulative,
              const PolicySnapshot& snapshot);

  const std::vector<TimelineSample>& samples() const { return samples_; }
  Cycle interval() const { return interval_; }

  void Clear();

 private:
  Cycle interval_;
  Cycle next_;
  Metrics last_;
  std::vector<TimelineSample> samples_;
};

}  // namespace dlpsim
