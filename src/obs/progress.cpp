#include "obs/progress.h"

#include <algorithm>
#include <cstdio>
#include <iostream>

namespace dlpsim::obs {

ProgressMeter::ProgressMeter(std::uint64_t interval_cycles,
                             std::string label, std::ostream* os)
    : interval_(std::max<std::uint64_t>(1, interval_cycles)),
      next_(std::max<std::uint64_t>(1, interval_cycles)),
      label_(std::move(label)),
      os_(os != nullptr ? os : &std::cerr) {}

void ProgressMeter::Emit(const ProgressSample& sample) {
  const double elapsed = clock_.Seconds();
  const double rate =
      elapsed > 0.0 ? static_cast<double>(sample.accesses) / elapsed : 0.0;
  std::string line = "[progress]";
  if (!label_.empty()) {
    line += ' ';
    line += label_;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                " cycle=%llu acc/s=%.0f warps=%llu/%llu",
                static_cast<unsigned long long>(sample.cycle), rate,
                static_cast<unsigned long long>(sample.warps_finished),
                static_cast<unsigned long long>(sample.warps_total));
  line += buf;
  if (sample.warps_total > 0 && sample.warps_finished > 0 &&
      sample.warps_finished < sample.warps_total) {
    const double f = static_cast<double>(sample.warps_finished) /
                     static_cast<double>(sample.warps_total);
    std::snprintf(buf, sizeof(buf), " eta=%.1fs", elapsed * (1.0 - f) / f);
    line += buf;
  }
  (*os_) << line << '\n';
  os_->flush();
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_line_ = std::move(line);
  }
  // Next due point strictly after this sample's cycle, on the grid.
  while (next_ <= sample.cycle) next_ += interval_;
}

std::string ProgressMeter::last_line() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_line_;
}

}  // namespace dlpsim::obs
