#include "obs/json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dlpsim {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;  // top-level value
  Scope& top = stack_.back();
  if (top.is_object) {
    assert(top.key_pending && "object member emitted without Key()");
    top.key_pending = false;
    return;  // comma was written by Key()
  }
  if (!top.first) os_ << ',';
  top.first = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  os_ << '{';
  stack_.push_back({.is_object = true, .first = true, .key_pending = false});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back().is_object);
  assert(!stack_.back().key_pending && "dangling Key() at EndObject");
  stack_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  os_ << '[';
  stack_.push_back({.is_object = false, .first = true, .key_pending = false});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty() && !stack_.back().is_object);
  stack_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && stack_.back().is_object);
  Scope& top = stack_.back();
  assert(!top.key_pending && "two Key() calls in a row");
  if (!top.first) os_ << ',';
  top.first = false;
  top.key_pending = true;
  os_ << '"' << JsonEscape(key) << "\":";
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  BeforeValue();
  os_ << '"' << JsonEscape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t v) {
  BeforeValue();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t v) {
  BeforeValue();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  os_ << "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::uint64_t JsonValue::U64(const std::string& key) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? 0 : v->number_u64;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue& out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();  // trailing garbage is a failure
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return ParseString(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return Literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return Literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            c = '"';
            break;
          case '\\':
            c = '\\';
            break;
          case '/':
            c = '/';
            break;
          case 'n':
            c = '\n';
            break;
          case 'r':
            c = '\r';
            break;
          case 't':
            c = '\t';
            break;
          case 'b':
            c = '\b';
            break;
          case 'f':
            c = '\f';
            break;
          case 'u': {
            // Decode \uXXXX; non-ASCII code points come back as '?'
            // (the exporters only emit ASCII).
            if (pos_ + 4 > text_.size()) return false;
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            c = cp < 0x80 ? static_cast<char>(cp) : '?';
            break;
          }
          default:
            return false;
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    const std::string_view tok = text_.substr(start, pos_ - start);
    out.type = JsonValue::Type::kNumber;
    const auto dres = std::from_chars(tok.data(), tok.data() + tok.size(),
                                      out.number);
    if (dres.ec != std::errc() || dres.ptr != tok.data() + tok.size()) {
      return false;
    }
    if (integral) {
      const auto ires = std::from_chars(tok.data(), tok.data() + tok.size(),
                                        out.number_u64);
      if (ires.ec != std::errc()) out.number_u64 = 0;
    } else {
      out.number_u64 = static_cast<std::uint64_t>(out.number);
    }
    return true;
  }

  bool ParseObject(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || !ParseString(key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue ParseJson(std::string_view text, bool* ok) {
  JsonValue out;
  const bool success = Parser(text).Parse(out);
  if (ok != nullptr) *ok = success;
  if (!success) out = JsonValue{};
  return out;
}

}  // namespace dlpsim
