// Fixed-capacity ring buffer of trace events.
//
// Emitters hold a nullable TraceSink*; when tracing is off the hot path
// pays exactly one pointer comparison per hook. When the buffer is full
// the oldest event is overwritten (the tail of a run is usually the
// interesting part) and the drop is counted, so consumers can tell a
// complete trace from a windowed one.
//
// The sink also carries the "current cycle" so that policy code -- whose
// hooks do not receive timestamps -- can emit correctly stamped events:
// the L1D front end calls SetNow() once per access/fill before any
// emission.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace_event.h"
#include "sim/types.h"

namespace dlpsim {

class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity);

  /// Stamp applied to every subsequent Emit().
  void SetNow(Cycle now) { now_ = now; }
  Cycle now() const { return now_; }

  /// Records `event` (its `cycle` field is overwritten with now()).
  void Emit(TraceEvent event);

  std::size_t capacity() const { return buffer_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t total_emitted() const { return total_emitted_; }
  std::uint64_t dropped() const { return total_emitted_ - size_; }

  /// The retained events, oldest first.
  std::vector<TraceEvent> InOrder() const;

  /// Retained events of one kind, oldest first.
  std::vector<TraceEvent> OfKind(TraceEventKind kind) const;

  /// Count of *retained* events of `kind`.
  std::size_t CountKind(TraceEventKind kind) const;

  void Clear();

 private:
  std::vector<TraceEvent> buffer_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
  std::uint64_t total_emitted_ = 0;
  Cycle now_ = 0;
};

}  // namespace dlpsim
