#include "gpu/simulator.h"

#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/trace_sink.h"
#include "robust/fault.h"
#include "robust/invariants.h"
#include "robust/watchdog.h"

namespace dlpsim {

namespace {
// Member-init-list validation gate: cfg_ is the first member, so a bad
// configuration throws ConfigError before any tag array can assert on it.
const SimConfig& Validated(const SimConfig& cfg) {
  cfg.ValidateOrThrow();
  return cfg;
}
}  // namespace

GpuSimulator::GpuSimulator(const SimConfig& cfg, const Program* program,
                           std::uint32_t warps_per_sm, SchedulerKind sched)
    : cfg_(Validated(cfg)),
      icnt_(cfg.icnt, cfg.num_cores, cfg.num_partitions) {
  cores_.reserve(cfg.num_cores);
  for (SmId id = 0; id < cfg.num_cores; ++id) {
    cores_.emplace_back(cfg, id, program, warps_per_sm, sched);
  }
  partitions_.reserve(cfg.num_partitions);
  for (PartitionId id = 0; id < cfg.num_partitions; ++id) {
    partitions_.emplace_back(cfg, id);
  }
  core_domain_ = clocks_.AddDomain("core", cfg.core_mhz);
  icnt_domain_ = clocks_.AddDomain("icnt", cfg.icnt_mhz);
  mem_domain_ = clocks_.AddDomain("mem", cfg.mem_mhz);
  // Cores whose program is empty are inactive from cycle 0.
  core_inactive_.assign(cores_.size(), 0);
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].Inactive()) {
      core_inactive_[i] = 1;
      ++num_inactive_;
    }
  }
  // Invariant checking is opt-in (DLPSIM_CHECK env / DLPSIM_CHECKED
  // build); when enabled every simulator self-checks without callers
  // having to know the robust/ layer exists.
  owned_checker_ = robust::MakeCheckerFromEnv();
  if (owned_checker_ != nullptr) checker_ = owned_checker_.get();
}

GpuSimulator::~GpuSimulator() = default;

void GpuSimulator::AttachObserver(AccessObserver* observer) {
  for (SmCore& core : cores_) core.l1d().SetObserver(observer);
}

void GpuSimulator::SetTraceSink(TraceSink* sink) {
  for (SmCore& core : cores_) core.l1d().SetTraceSink(sink, core.id());
}

void GpuSimulator::SetTimeline(TimelineSampler* sampler) {
  timeline_ = sampler;
}

void GpuSimulator::SetProfiler(obs::Profiler* profiler) {
  profiler_ = profiler;
  for (SmCore& core : cores_) core.l1d().SetProfiler(profiler);
}

PolicySnapshot GpuSimulator::SnapshotPolicy() const {
  PolicySnapshot snap;
  std::uint32_t cores_with_pdpt = 0;
  for (const SmCore& core : cores_) {
    const L1DCache& l1d = core.l1d();
    if (const PdpTable* pdpt = l1d.policy().pdpt(); pdpt != nullptr) {
      snap.mean_pd += pdpt->MeanPd();
      snap.samples_taken += pdpt->samples_taken;
      ++cores_with_pdpt;
    }
    // Incrementally maintained per-L1D counters replace the former
    // 32-set x 4-way tag walk per core per timeline sample.
    const PlCounters& pl = l1d.pl_counters();
    for (std::size_t b = 0; b < snap.pl_histogram.size(); ++b) {
      snap.pl_histogram[b] += pl.histogram[b];
    }
    snap.protected_lines += pl.protected_lines();
  }
  if (cores_with_pdpt > 0) snap.mean_pd /= cores_with_pdpt;
  return snap;
}

void GpuSimulator::Step() {
  for (std::uint32_t domain : clocks_.Tick()) {
    if (domain == mem_domain_) {
      obs::ProfileSpan span(profiler_, obs::Phase::kMemTick);
      const Cycle now = clocks_.cycles(mem_domain_);
      for (MemoryPartition& p : partitions_) p.Tick(now, icnt_);
    } else if (domain == icnt_domain_) {
      obs::ProfileSpan span(profiler_, obs::Phase::kIcntTick);
      icnt_.Tick(clocks_.cycles(icnt_domain_));
    } else if (domain == core_domain_) {
      obs::ProfileSpan span(profiler_, obs::Phase::kCoreTick);
      const Cycle now = clocks_.cycles(core_domain_);
      // Injected faults land on the core clock edge, before the cores
      // tick, so "at cycle X" means "visible to cycle X's accesses".
      if (faults_ != nullptr && faults_->HasDue(now)) {
        faults_->ApplyDue(*this, now);
      }
      // Skip cores whose TickCore is provably a no-op (drained, no
      // pending background credit, and -- since they have no outstanding
      // loads -- no replies can be routed to them). When every core is
      // inactive the whole domain fast-forwards: the tick only advances
      // the cycle count while icnt/mem drain.
      if (num_inactive_ != cores_.size()) {
        for (std::size_t i = 0; i < cores_.size(); ++i) {
          if (core_inactive_[i] != 0) continue;
          cores_[i].TickCore(now, icnt_);
          if (cores_[i].Inactive()) {
            core_inactive_[i] = 1;
            ++num_inactive_;
          }
        }
      }
      if (timeline_ != nullptr && timeline_->Due(now)) {
        obs::ProfileSpan snap(profiler_, obs::Phase::kSnapshot);
        timeline_->Record(now, Collect(), SnapshotPolicy());
      }
      if (progress_ != nullptr && progress_->Due(now)) {
        obs::ProgressSample sample;
        sample.cycle = now;
        for (const SmCore& core : cores_) {
          sample.accesses += core.l1d().stats().accesses;
          for (const Warp& w : core.warps()) {
            ++sample.warps_total;
            if (w.Finished()) ++sample.warps_finished;
          }
        }
        progress_->Emit(sample);
      }
      if (checker_ != nullptr && checker_->Due(now)) {
        checker_->CheckAll(*this, now);
      }
      if (watchdog_ != nullptr && !watchdog_->tripped() &&
          watchdog_->Due(now) && !Done()) {
        if (watchdog_->Observe(ProgressCount(), now)) {
          robust::StallDiagnostic diag =
              robust::Diagnose(*this, now, watchdog_->last_progress_cycle(),
                               watchdog_->last_signature());
          if (progress_ != nullptr) {
            diag.last_heartbeat = progress_->last_line();
          }
          watchdog_->set_diagnostic(std::move(diag));
          run_error_ = robust::RunError::kWatchdogStall;
        }
      }
    }
  }
}

std::uint64_t GpuSimulator::ProgressCount() const {
  std::uint64_t n = 0;
  for (const SmCore& core : cores_) {
    n += core.committed_thread_insns + core.issued_warp_insns;
    const CacheStats& s = core.l1d().stats();
    // Completed cache work only: retried reservation failures increment
    // stats_.reservation_fails forever during a livelock and must NOT
    // mask the stall.
    n += s.accesses + s.fills + s.bypasses;
  }
  n += icnt_.packets_delivered;
  for (const MemoryPartition& p : partitions_) {
    n += p.requests_served + p.dram().reads + p.dram().writes;
  }
  return n;
}

bool GpuSimulator::Done() const {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    // Inactive implies drained; the flag spares the per-warp walk.
    if (core_inactive_[i] == 0 && !cores_[i].Drained()) return false;
  }
  if (!icnt_.Idle()) return false;
  for (const MemoryPartition& p : partitions_) {
    if (!p.Idle()) return false;
  }
  return true;
}

Metrics GpuSimulator::Run() {
  obs::ProfileSpan run_span(profiler_, obs::Phase::kRun);
  for (;;) {
    bool done;
    {
      obs::ProfileSpan drain_span(profiler_, obs::Phase::kDrainCheck);
      done = Done();
    }
    if (done || clocks_.cycles(core_domain_) >= cfg_.max_core_cycles ||
        run_error_ != robust::RunError::kNone) {
      break;
    }
    Step();
  }
  Metrics m = Collect();
  m.completed = Done() ? 1 : 0;
  if (m.completed != 0) {
    run_error_ = robust::RunError::kNone;
  } else if (run_error_ == robust::RunError::kNone) {
    // The hard budget expired with warps still in flight: a typed error
    // instead of a silent completed=0.
    run_error_ = robust::RunError::kCycleBudget;
  }
  // Close-of-run self check (cheap relative to a full run; catches drift
  // that never aligned with the periodic interval).
  if (checker_ != nullptr) {
    checker_->CheckAll(*this, clocks_.cycles(core_domain_));
  }
  // Close the timeline with a final sample so the per-interval deltas
  // sum exactly to the returned Metrics.
  if (timeline_ != nullptr) {
    timeline_->Record(clocks_.cycles(core_domain_), m, SnapshotPolicy());
  }
  return m;
}

Metrics GpuSimulator::Collect() const {
  Metrics m;
  m.core_cycles = clocks_.cycles(core_domain_);
  for (const SmCore& core : cores_) {
    m.committed_thread_insns += core.committed_thread_insns;
    m.committed_mem_insns += core.committed_mem_insns;
    m.issued_warp_insns += core.issued_warp_insns;
    m.ldst_stall_cycles += core.ldst().stall_cycles;
    m.load_block_cycles += core.load_block_cycles;
    m.load_block_events += core.load_block_events;
    const CacheStats& s = core.l1d().stats();
    m.l1d_accesses += s.accesses;
    m.l1d_loads += s.loads;
    m.l1d_stores += s.stores;
    m.l1d_load_hits += s.load_hits;
    m.l1d_load_misses += s.load_misses;
    m.l1d_mshr_merges += s.mshr_merges;
    m.l1d_misses_issued += s.misses_issued;
    m.l1d_bypasses += s.bypasses;
    m.l1d_reservation_fails += s.reservation_fails;
    m.l1d_evictions += s.evictions;
    m.l1d_writebacks += s.writebacks;
    m.l1d_fills += s.fills;
  }
  m.icnt_bytes_total = icnt_.total_bytes();
  m.icnt_bytes_l1d = icnt_.bytes_l1d;
  m.icnt_bytes_other = icnt_.bytes_other;
  for (const MemoryPartition& p : partitions_) {
    const CacheStats& s = p.l2().stats();
    m.l2_accesses += s.accesses;
    m.l2_load_hits += s.load_hits;
    m.l2_load_misses += s.load_misses;
    m.dram_reads += p.dram().reads;
    m.dram_writes += p.dram().writes;
    m.dram_row_hits += p.dram().row_hits;
    m.dram_row_misses += p.dram().row_misses;
  }
  return m;
}

}  // namespace dlpsim
