// Whole-GPU wiring: 16 SM cores + crossbar + 12 memory partitions, driven
// by the three clock domains of Table 1 (core/icnt 650 MHz, mem 924 MHz).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/observer.h"
#include "gpu/metrics.h"
#include "icnt/crossbar.h"
#include "mem/partition.h"
#include "obs/timeline.h"
#include "robust/error.h"
#include "sim/clock.h"
#include "sim/config.h"
#include "sm/sm_core.h"
#include "workloads/program.h"

namespace dlpsim {

class TraceSink;

namespace obs {
class Profiler;
class ProgressMeter;
}  // namespace obs

namespace robust {
class FaultInjector;
class InvariantChecker;
class Watchdog;
}  // namespace robust

class GpuSimulator {
 public:
  /// Launches `warps_per_sm` warps of `program` on every core. The program
  /// must outlive the simulator. Throws ConfigError when `cfg` fails
  /// SimConfig::Validate() -- before any subsystem is built, so a bad
  /// configuration can never reach UB inside the tag arrays.
  GpuSimulator(const SimConfig& cfg, const Program* program,
               std::uint32_t warps_per_sm,
               SchedulerKind sched = SchedulerKind::kGto);
  ~GpuSimulator();  // out of line: unique_ptr to fwd-declared checker

  /// Attaches one observer to every SM's L1D. NOTE: reuse-distance
  /// profiling must use one observer per SM (see analysis/per_sm_profiler.h)
  /// or per-set counters interleave across cores; a shared observer is
  /// only appropriate for aggregate counting.
  void AttachObserver(AccessObserver* observer);

  /// Attaches one event-trace sink to every SM's L1D (and its policy),
  /// tagging each core's events with its SM id. Tracing is purely
  /// observational: attaching a sink never changes simulation results.
  /// Pass nullptr to detach. The sink must outlive the simulator runs.
  void SetTraceSink(TraceSink* sink);

  /// Attaches a timeline sampler: every `sampler->interval()` core
  /// cycles (and once at the end of Run) the cumulative Metrics and a
  /// PolicySnapshot are recorded. Pass nullptr to detach.
  void SetTimeline(TimelineSampler* sampler);

  /// Attaches a phase profiler (obs/) to the hot loop and to every SM's
  /// L1D: Run/Step wrap the clock-domain bodies, the drain check and
  /// timeline snapshots in wall-time spans. Purely observational; pass
  /// nullptr to detach (the default costs one branch per domain event).
  void SetProfiler(obs::Profiler* profiler);

  /// Attaches a progress heartbeat meter, sampled on the core clock edge
  /// like the timeline. Pass nullptr to detach. On a watchdog trip the
  /// meter's last emitted line is copied into the StallDiagnostic.
  void SetProgress(obs::ProgressMeter* progress) { progress_ = progress; }

  /// Aggregated protection state across every SM's L1D right now.
  PolicySnapshot SnapshotPolicy() const;

  /// Runs until every core drains (or the max_core_cycles cap) and
  /// returns aggregated metrics.
  Metrics Run();

  /// Single-step variants for tests.
  void Step();          // one clock-domain event
  bool Done() const;    // all cores drained, network and memory idle

  Metrics Collect() const;

  // --- resilience hooks (robust/) ---

  /// Attaches a fault injector; its due events are applied on the core
  /// clock edge. Pass nullptr to detach. Must outlive the runs.
  void SetFaultInjector(robust::FaultInjector* injector) {
    faults_ = injector;
  }

  /// Attaches a forward-progress watchdog, sampled on its check interval.
  /// A trip captures a StallDiagnostic into the watchdog and ends Run()
  /// with RunError::kWatchdogStall. Pass nullptr to detach.
  void SetWatchdog(robust::Watchdog* watchdog) { watchdog_ = watchdog; }

  /// Attaches an invariant checker (overrides the env-constructed one).
  void SetInvariantChecker(robust::InvariantChecker* checker) {
    checker_ = checker;
  }

  /// Why the last Run() stopped (kNone while running / after a clean
  /// drain; kCycleBudget when max_core_cycles expired; kWatchdogStall
  /// when an attached watchdog tripped).
  robust::RunError run_error() const { return run_error_; }

  /// Monotone count of completed architectural work: committed and issued
  /// instructions, cache fills/bypasses/stores, delivered packets, served
  /// memory requests. Constant across cycles exactly when the machine
  /// made no forward progress (retried reservation failures and burned
  /// issue slots do NOT count). The watchdog's progress signature.
  std::uint64_t ProgressCount() const;

  std::vector<SmCore>& cores() { return cores_; }
  const std::vector<SmCore>& cores() const { return cores_; }
  Crossbar& icnt() { return icnt_; }
  const Crossbar& icnt() const { return icnt_; }
  std::vector<MemoryPartition>& partitions() { return partitions_; }
  const std::vector<MemoryPartition>& partitions() const {
    return partitions_;
  }
  Cycle core_cycles() const { return clocks_.cycles(core_domain_); }

 private:
  SimConfig cfg_;
  std::vector<SmCore> cores_;
  Crossbar icnt_;
  std::vector<MemoryPartition> partitions_;
  // Sticky per-core "TickCore is a no-op forever" flags (SmCore::
  // Inactive). Once every core is inactive the stepper fast-forwards the
  // core domain -- only icnt/mem still need draining -- and Done() skips
  // the per-warp drain walks. Results are bit-identical either way.
  std::vector<std::uint8_t> core_inactive_;
  std::uint32_t num_inactive_ = 0;
  ClockDomainSet clocks_;
  std::uint32_t core_domain_ = 0;
  std::uint32_t icnt_domain_ = 0;
  std::uint32_t mem_domain_ = 0;
  TimelineSampler* timeline_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  obs::ProgressMeter* progress_ = nullptr;
  // Resilience layer (all optional; every hook costs one null check when
  // detached, preserving bit-identical results).
  robust::FaultInjector* faults_ = nullptr;
  robust::Watchdog* watchdog_ = nullptr;
  robust::InvariantChecker* checker_ = nullptr;
  std::unique_ptr<robust::InvariantChecker> owned_checker_;  // env-enabled
  robust::RunError run_error_ = robust::RunError::kNone;
};

}  // namespace dlpsim
