// Whole-GPU wiring: 16 SM cores + crossbar + 12 memory partitions, driven
// by the three clock domains of Table 1 (core/icnt 650 MHz, mem 924 MHz).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/observer.h"
#include "gpu/metrics.h"
#include "icnt/crossbar.h"
#include "mem/partition.h"
#include "obs/timeline.h"
#include "sim/clock.h"
#include "sim/config.h"
#include "sm/sm_core.h"
#include "workloads/program.h"

namespace dlpsim {

class TraceSink;

class GpuSimulator {
 public:
  /// Launches `warps_per_sm` warps of `program` on every core. The program
  /// must outlive the simulator.
  GpuSimulator(const SimConfig& cfg, const Program* program,
               std::uint32_t warps_per_sm,
               SchedulerKind sched = SchedulerKind::kGto);

  /// Attaches one observer to every SM's L1D. NOTE: reuse-distance
  /// profiling must use one observer per SM (see analysis/per_sm_profiler.h)
  /// or per-set counters interleave across cores; a shared observer is
  /// only appropriate for aggregate counting.
  void AttachObserver(AccessObserver* observer);

  /// Attaches one event-trace sink to every SM's L1D (and its policy),
  /// tagging each core's events with its SM id. Tracing is purely
  /// observational: attaching a sink never changes simulation results.
  /// Pass nullptr to detach. The sink must outlive the simulator runs.
  void SetTraceSink(TraceSink* sink);

  /// Attaches a timeline sampler: every `sampler->interval()` core
  /// cycles (and once at the end of Run) the cumulative Metrics and a
  /// PolicySnapshot are recorded. Pass nullptr to detach.
  void SetTimeline(TimelineSampler* sampler);

  /// Aggregated protection state across every SM's L1D right now.
  PolicySnapshot SnapshotPolicy() const;

  /// Runs until every core drains (or the max_core_cycles cap) and
  /// returns aggregated metrics.
  Metrics Run();

  /// Single-step variants for tests.
  void Step();          // one clock-domain event
  bool Done() const;    // all cores drained, network and memory idle

  Metrics Collect() const;

  std::vector<SmCore>& cores() { return cores_; }
  Crossbar& icnt() { return icnt_; }
  std::vector<MemoryPartition>& partitions() { return partitions_; }
  Cycle core_cycles() const { return clocks_.cycles(core_domain_); }

 private:
  SimConfig cfg_;
  std::vector<SmCore> cores_;
  Crossbar icnt_;
  std::vector<MemoryPartition> partitions_;
  // Sticky per-core "TickCore is a no-op forever" flags (SmCore::
  // Inactive). Once every core is inactive the stepper fast-forwards the
  // core domain -- only icnt/mem still need draining -- and Done() skips
  // the per-warp drain walks. Results are bit-identical either way.
  std::vector<std::uint8_t> core_inactive_;
  std::uint32_t num_inactive_ = 0;
  ClockDomainSet clocks_;
  std::uint32_t core_domain_ = 0;
  std::uint32_t icnt_domain_ = 0;
  std::uint32_t mem_domain_ = 0;
  TimelineSampler* timeline_ = nullptr;
};

}  // namespace dlpsim
