// Whole-GPU wiring: 16 SM cores + crossbar + 12 memory partitions, driven
// by the three clock domains of Table 1 (core/icnt 650 MHz, mem 924 MHz).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/observer.h"
#include "gpu/metrics.h"
#include "icnt/crossbar.h"
#include "mem/partition.h"
#include "sim/clock.h"
#include "sim/config.h"
#include "sm/sm_core.h"
#include "workloads/program.h"

namespace dlpsim {

class GpuSimulator {
 public:
  /// Launches `warps_per_sm` warps of `program` on every core. The program
  /// must outlive the simulator.
  GpuSimulator(const SimConfig& cfg, const Program* program,
               std::uint32_t warps_per_sm,
               SchedulerKind sched = SchedulerKind::kGto);

  /// Attaches one observer to every SM's L1D. NOTE: reuse-distance
  /// profiling must use one observer per SM (see analysis/per_sm_profiler.h)
  /// or per-set counters interleave across cores; a shared observer is
  /// only appropriate for aggregate counting.
  void AttachObserver(AccessObserver* observer);

  /// Runs until every core drains (or the max_core_cycles cap) and
  /// returns aggregated metrics.
  Metrics Run();

  /// Single-step variants for tests.
  void Step();          // one clock-domain event
  bool Done() const;    // all cores drained, network and memory idle

  Metrics Collect() const;

  std::vector<SmCore>& cores() { return cores_; }
  Crossbar& icnt() { return icnt_; }
  std::vector<MemoryPartition>& partitions() { return partitions_; }
  Cycle core_cycles() const { return clocks_.cycles(core_domain_); }

 private:
  SimConfig cfg_;
  std::vector<SmCore> cores_;
  Crossbar icnt_;
  std::vector<MemoryPartition> partitions_;
  ClockDomainSet clocks_;
  std::uint32_t core_domain_ = 0;
  std::uint32_t icnt_domain_ = 0;
  std::uint32_t mem_domain_ = 0;
};

}  // namespace dlpsim
