// Aggregated run metrics: everything the paper's tables/figures need,
// with a flat text serialization used by the bench result cache.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace dlpsim {

struct Metrics {
  // --- core ---
  std::uint64_t core_cycles = 0;
  std::uint64_t committed_thread_insns = 0;
  std::uint64_t committed_mem_insns = 0;
  std::uint64_t issued_warp_insns = 0;
  std::uint64_t ldst_stall_cycles = 0;
  std::uint64_t load_block_cycles = 0;  // warp cycles blocked on loads
  std::uint64_t load_block_events = 0;
  std::uint64_t completed = 0;  // 1 iff all warps drained before the cap

  // --- L1D (summed over all SMs) ---
  std::uint64_t l1d_accesses = 0;
  std::uint64_t l1d_loads = 0;
  std::uint64_t l1d_stores = 0;
  std::uint64_t l1d_load_hits = 0;
  std::uint64_t l1d_load_misses = 0;
  std::uint64_t l1d_mshr_merges = 0;
  std::uint64_t l1d_misses_issued = 0;
  std::uint64_t l1d_bypasses = 0;
  std::uint64_t l1d_reservation_fails = 0;
  std::uint64_t l1d_evictions = 0;
  std::uint64_t l1d_writebacks = 0;
  std::uint64_t l1d_fills = 0;

  // --- interconnect ---
  std::uint64_t icnt_bytes_total = 0;
  std::uint64_t icnt_bytes_l1d = 0;
  std::uint64_t icnt_bytes_other = 0;

  // --- L2 / DRAM (summed over partitions) ---
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_load_hits = 0;
  std::uint64_t l2_load_misses = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_row_hits = 0;
  std::uint64_t dram_row_misses = 0;

  // --- derived ---
  double ipc() const {
    return core_cycles == 0
               ? 0.0
               : static_cast<double>(committed_thread_insns) / core_cycles;
  }
  /// Paper §3.2: N_memory_access / N_insn at thread level.
  double memory_access_ratio() const {
    return committed_thread_insns == 0
               ? 0.0
               : static_cast<double>(committed_mem_insns) /
                     committed_thread_insns;
  }
  /// Mean cycles a warp spends blocked per memory-bound load.
  double avg_load_latency() const {
    return load_block_events == 0
               ? 0.0
               : static_cast<double>(load_block_cycles) / load_block_events;
  }

  /// Accesses that actually entered the L1D (Fig. 11a's "traffic").
  /// Clamped: bypasses cannot exceed accesses in a simulated run, but
  /// hand-built or partially-parsed Metrics must not wrap.
  std::uint64_t l1d_traffic() const {
    return l1d_bypasses >= l1d_accesses ? 0 : l1d_accesses - l1d_bypasses;
  }
  /// Paper Fig. 12a: bypassed accesses do not count towards the hit rate.
  /// Clamped like l1d_traffic(): `l1d_loads - l1d_bypasses` would wrap
  /// when bypasses exceed loads.
  double l1d_hit_rate() const {
    const std::uint64_t serviced =
        l1d_bypasses >= l1d_loads ? 0 : l1d_loads - l1d_bypasses;
    return serviced == 0
               ? 0.0
               : static_cast<double>(l1d_load_hits) / serviced;
  }

  /// Flat "key value" lines (stable order), parseable by FromText.
  std::string ToText() const;
  static Metrics FromText(const std::string& text, bool* ok = nullptr);
};

/// Name + member-pointer pair for one Metrics counter; the table drives
/// serialization, JSON/CSV export and timeline delta computation so the
/// field lists cannot drift apart.
struct MetricsField {
  const char* name;
  std::uint64_t Metrics::* member;
};

/// Every counter field of Metrics, in the stable ToText() order.
std::span<const MetricsField> MetricsFields();

}  // namespace dlpsim
