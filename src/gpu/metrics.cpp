#include "gpu/metrics.h"

#include <sstream>
#include <unordered_map>

namespace dlpsim {

namespace {
// Single field table so serialization and parsing cannot drift apart;
// exposed through MetricsFields() for the obs/ exporters.
constexpr MetricsField kFields[] = {
    {"core_cycles", &Metrics::core_cycles},
    {"committed_thread_insns", &Metrics::committed_thread_insns},
    {"committed_mem_insns", &Metrics::committed_mem_insns},
    {"issued_warp_insns", &Metrics::issued_warp_insns},
    {"ldst_stall_cycles", &Metrics::ldst_stall_cycles},
    {"load_block_cycles", &Metrics::load_block_cycles},
    {"load_block_events", &Metrics::load_block_events},
    {"completed", &Metrics::completed},
    {"l1d_accesses", &Metrics::l1d_accesses},
    {"l1d_loads", &Metrics::l1d_loads},
    {"l1d_stores", &Metrics::l1d_stores},
    {"l1d_load_hits", &Metrics::l1d_load_hits},
    {"l1d_load_misses", &Metrics::l1d_load_misses},
    {"l1d_mshr_merges", &Metrics::l1d_mshr_merges},
    {"l1d_misses_issued", &Metrics::l1d_misses_issued},
    {"l1d_bypasses", &Metrics::l1d_bypasses},
    {"l1d_reservation_fails", &Metrics::l1d_reservation_fails},
    {"l1d_evictions", &Metrics::l1d_evictions},
    {"l1d_writebacks", &Metrics::l1d_writebacks},
    {"l1d_fills", &Metrics::l1d_fills},
    {"icnt_bytes_total", &Metrics::icnt_bytes_total},
    {"icnt_bytes_l1d", &Metrics::icnt_bytes_l1d},
    {"icnt_bytes_other", &Metrics::icnt_bytes_other},
    {"l2_accesses", &Metrics::l2_accesses},
    {"l2_load_hits", &Metrics::l2_load_hits},
    {"l2_load_misses", &Metrics::l2_load_misses},
    {"dram_reads", &Metrics::dram_reads},
    {"dram_writes", &Metrics::dram_writes},
    {"dram_row_hits", &Metrics::dram_row_hits},
    {"dram_row_misses", &Metrics::dram_row_misses},
};
}  // namespace

std::span<const MetricsField> MetricsFields() { return kFields; }

std::string Metrics::ToText() const {
  std::ostringstream os;
  for (const MetricsField& f : kFields) {
    os << f.name << ' ' << this->*(f.member) << '\n';
  }
  return os.str();
}

Metrics Metrics::FromText(const std::string& text, bool* ok) {
  std::unordered_map<std::string, std::uint64_t> parsed;
  std::istringstream is(text);
  std::string name;
  std::uint64_t value;
  while (is >> name >> value) parsed[name] = value;

  Metrics m;
  bool all_found = true;
  for (const MetricsField& f : kFields) {
    auto it = parsed.find(f.name);
    if (it == parsed.end()) {
      all_found = false;
      continue;
    }
    m.*(f.member) = it->second;
  }
  if (ok != nullptr) *ok = all_found && !parsed.empty();
  return m;
}

}  // namespace dlpsim
