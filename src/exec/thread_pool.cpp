#include "exec/thread_pool.h"

#include <utility>

#include "obs/metrics.h"

namespace dlpsim::exec {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  obs::Registry& reg = obs::Registry::Global();
  m_queue_depth_ = reg.GetGauge("exec", "queue_depth",
                                "tasks enqueued and not yet started");
  m_jobs_inflight_ =
      reg.GetGauge("exec", "jobs_inflight", "tasks currently executing");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  m_queue_depth_->Add();
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      // stop_ set and nothing left to drain.
      return;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    m_queue_depth_->Sub();
    m_jobs_inflight_->Add();
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    m_jobs_inflight_->Sub();
    lock.lock();
    if (error && !first_error_) first_error_ = error;
    --active_;
    if (queue_.empty() && active_ == 0) all_idle_.notify_all();
  }
}

}  // namespace dlpsim::exec
