// Fixed-size worker pool for the experiment executor (src/exec/).
//
// The pool is deliberately minimal: a FIFO task queue, condition-variable
// wakeup, and join-on-destruction (the destructor drains every queued
// task before returning). A task that throws is contained: the first
// exception is captured and rethrown from the next Wait() on the calling
// thread, and sibling tasks keep running -- a throwing job can never
// std::terminate the process or abort the rest of the batch. Callers
// needing *per-task* exception identity still capture std::exception_ptr
// inside the task (exec::ParallelMap does); the pool-level capture is the
// backstop for tasks submitted without such wrapping.
//
// dlp-lint: internal-header -- the pool is an implementation detail of
// the executor; other subsystems use exec::ParallelMap / exec::RunJobs
// (run_grid.h) instead of scheduling on the pool directly (enforced by
// dlp_lint rule I2).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dlpsim::obs {
class Gauge;
}  // namespace dlpsim::obs

namespace dlpsim::exec {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is clamped to 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks run in FIFO order across the workers.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any task threw since the last Wait()
  /// (the stored exception is cleared). Destruction never rethrows.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  // first task exception since last Wait
  std::vector<std::thread> workers_;
  // Registry occupancy gauges (net Add/Sub; both read 0 once the pool is
  // drained, so quiescent-point metric dumps stay schedule-independent).
  obs::Gauge* m_queue_depth_ = nullptr;    // exec.queue_depth
  obs::Gauge* m_jobs_inflight_ = nullptr;  // exec.jobs_inflight
};

}  // namespace dlpsim::exec
