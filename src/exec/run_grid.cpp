#include "exec/run_grid.h"

#include <cstdlib>
#include <thread>

namespace dlpsim::exec {

std::vector<Job> Grid(const std::vector<std::string>& apps,
                      const std::vector<std::string>& configs) {
  std::vector<Job> grid;
  grid.reserve(apps.size() * configs.size());
  for (const std::string& app : apps) {
    for (const std::string& config : configs) {
      grid.push_back(Job{app, config});
    }
  }
  return grid;
}

std::size_t DefaultJobs() {
  if (const char* env = std::getenv("DLPSIM_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace dlpsim::exec
