#include "exec/run_grid.h"

#include <thread>

#include "sim/env.h"

namespace dlpsim::exec {

std::vector<Job> Grid(const std::vector<std::string>& apps,
                      const std::vector<std::string>& configs) {
  std::vector<Job> grid;
  grid.reserve(apps.size() * configs.size());
  for (const std::string& app : apps) {
    for (const std::string& config : configs) {
      grid.push_back(Job{app, config});
    }
  }
  return grid;
}

std::size_t DefaultJobs() {
  if (const std::uint64_t jobs = env::U64("DLPSIM_JOBS", 0); jobs > 0) {
    return static_cast<std::size_t>(jobs);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace dlpsim::exec
