#include "exec/run_grid.h"

#include <thread>

#include "obs/metrics.h"
#include "sim/env.h"

namespace dlpsim::exec {

namespace detail {

void CountJobsDispatched(std::size_t n) {
  static obs::Counter* counter = [] {
    obs::Registry& reg = obs::Registry::Global();
    // Pre-register the thread pool's occupancy gauges (same identity and
    // help text as ThreadPool's constructor): the jobs<=1 inline path
    // never constructs a pool, and the set of registered instruments --
    // not just their values -- must be identical across DLPSIM_JOBS for
    // the metrics dump to stay byte-identical.
    reg.GetGauge("exec", "queue_depth", "tasks enqueued and not yet started");
    reg.GetGauge("exec", "jobs_inflight", "tasks currently executing");
    return reg.GetCounter("exec", "jobs_dispatched",
                          "work items handed to ParallelMap");
  }();
  counter->Add(n);
}

}  // namespace detail

std::vector<Job> Grid(const std::vector<std::string>& apps,
                      const std::vector<std::string>& configs) {
  std::vector<Job> grid;
  grid.reserve(apps.size() * configs.size());
  for (const std::string& app : apps) {
    for (const std::string& config : configs) {
      grid.push_back(Job{app, config});
    }
  }
  return grid;
}

std::size_t DefaultJobs() {
  if (const std::uint64_t jobs = env::U64("DLPSIM_JOBS", 0); jobs > 0) {
    return static_cast<std::size_t>(jobs);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace dlpsim::exec
