#include "exec/timing.h"

#include "obs/json.h"

namespace dlpsim::exec {

void TimingLog::Record(TimingCell cell) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.push_back(std::move(cell));
}

double TimingLog::ElapsedSeconds() const { return lifetime_.Seconds(); }

std::vector<TimingCell> TimingLog::cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_;
}

std::size_t TimingLog::FailedCells() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const TimingCell& c : cells_) {
    if (c.failed) ++n;
  }
  return n;
}

void TimingLog::WriteJson(std::ostream& os, const std::string& bench,
                          std::size_t jobs, double scale) const {
  const std::vector<TimingCell> cells = this->cells();
  double sim_total = 0.0;
  std::size_t simulated = 0;
  std::size_t cached = 0;
  std::size_t failed = 0;
  for (const TimingCell& c : cells) {
    if (c.failed) {
      ++failed;
    } else if (c.cached) {
      ++cached;
    } else {
      ++simulated;
      sim_total += c.seconds;
    }
  }

  JsonWriter w(os);
  w.BeginObject();
  w.KV("bench", bench);
  w.KV("jobs", static_cast<std::uint64_t>(jobs));
  w.KV("scale", scale);
  w.KV("wall_seconds", ElapsedSeconds());
  w.KV("sim_seconds_total", sim_total);
  w.KV("cells_simulated", static_cast<std::uint64_t>(simulated));
  w.KV("cells_cached", static_cast<std::uint64_t>(cached));
  w.KV("cells_failed", static_cast<std::uint64_t>(failed));
  w.Key("cells");
  w.BeginArray();
  for (const TimingCell& c : cells) {
    w.BeginObject();
    w.KV("app", c.app);
    w.KV("config", c.config);
    w.KV("seconds", c.seconds);
    w.KV("cached", c.cached);
    if (c.failed) {
      w.KV("failed", true);
      w.KV("timed_out", c.timed_out);
      w.KV("attempts", static_cast<std::int64_t>(c.attempts));
      w.KV("error", c.error);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
}

}  // namespace dlpsim::exec
