// Machine-readable wall-clock telemetry for the experiment executor.
//
// Each completed grid cell records its simulation wall time (or that it
// was served from the result cache); WriteJson exports the log as
// `<bench>_timing.json` so the performance trajectory of the full
// reproduction sweep is tracked across commits. Recording is
// thread-safe -- cells complete concurrently under exec::ParallelMap.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace dlpsim::exec {

/// Monotonic wall-clock stopwatch. This file is the project's only
/// sanctioned clock source (dlp_lint rule D2 rejects *_clock::now()
/// elsewhere): wall time is telemetry, never simulation input, so every
/// measurement flows through here where it is visibly kept away from
/// simulated state.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct TimingCell {
  std::string app;
  std::string config;
  double seconds = 0.0;  // simulation wall time (0 when served from cache)
  bool cached = false;
  // Grid-resilience outcome (exec::TryRunJobs): cells that exhausted
  // their retries are recorded here so a sweep's failures are data in
  // <bench>_timing.json, not a lost process.
  bool failed = false;
  bool timed_out = false;
  int attempts = 1;
  std::string error;  // empty unless failed
};

class TimingLog {
 public:
  TimingLog() = default;

  void Record(TimingCell cell);

  /// Wall seconds since construction (process lifetime for the global log).
  double ElapsedSeconds() const;

  std::vector<TimingCell> cells() const;

  /// Writes the JSON document:
  ///   { "bench", "jobs", "scale", "wall_seconds", "sim_seconds_total",
  ///     "cells_simulated", "cells_cached", "cells_failed", "cells": [...] }
  /// Failed cells additionally carry "failed", "timed_out", "attempts"
  /// and "error".
  void WriteJson(std::ostream& os, const std::string& bench,
                 std::size_t jobs, double scale) const;

  /// Number of recorded cells with failed == true.
  std::size_t FailedCells() const;

 private:
  mutable std::mutex mu_;
  Stopwatch lifetime_;
  std::vector<TimingCell> cells_;
};

}  // namespace dlpsim::exec
