// RunGrid/Job API: deterministic parallel execution of an (app x config)
// experiment matrix.
//
// Every simulation cell is fully independent and deterministic, so the
// executor schedules each cell as an isolated job on a fixed-size
// ThreadPool and returns results in *grid order* (the input order),
// regardless of completion order. With jobs == 1 everything runs inline
// on the calling thread -- no worker threads are created -- reproducing
// the historical serial path bit for bit.
//
// Worker count resolution (DefaultJobs): the DLPSIM_JOBS environment
// knob when set to a positive integer, else std::thread's
// hardware_concurrency (minimum 1).
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <string>
#include <type_traits>
#include <vector>

#include "exec/thread_pool.h"

namespace dlpsim::exec {

/// One cell of an experiment grid.
struct Job {
  std::string app;
  std::string config;
};

/// The (app x config) matrix in app-major (row-major) order: the cell
/// (a, c) lands at index a * configs.size() + c.
std::vector<Job> Grid(const std::vector<std::string>& apps,
                      const std::vector<std::string>& configs);

/// Worker count: DLPSIM_JOBS if set to a positive integer, otherwise
/// hardware_concurrency (never 0).
std::size_t DefaultJobs();

/// Runs fn(i) for i in [0, n) on up to `jobs` workers and returns the
/// results in index order. jobs <= 1 executes inline (serial path). If
/// any invocation throws, the first failing index's exception is
/// rethrown after all jobs finish.
template <typename Fn>
auto ParallelMap(std::size_t n, Fn&& fn, std::size_t jobs = DefaultJobs())
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> results(n);
  if (n == 0) return results;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }
  std::vector<std::exception_ptr> errors(n);
  {
    ThreadPool pool(std::min(jobs, n));
    for (std::size_t i = 0; i < n; ++i) {
      pool.Submit([&results, &errors, &fn, i] {
        try {
          results[i] = fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.Wait();
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  return results;
}

/// Maps `fn` over the grid cells; results in grid order.
template <typename Fn>
auto RunJobs(const std::vector<Job>& grid, Fn&& fn,
             std::size_t jobs = DefaultJobs())
    -> std::vector<std::invoke_result_t<Fn&, const Job&>> {
  return ParallelMap(
      grid.size(), [&grid, &fn](std::size_t i) { return fn(grid[i]); }, jobs);
}

}  // namespace dlpsim::exec
