// RunGrid/Job API: deterministic parallel execution of an (app x config)
// experiment matrix.
//
// Every simulation cell is fully independent and deterministic, so the
// executor schedules each cell as an isolated job on a fixed-size
// ThreadPool and returns results in *grid order* (the input order),
// regardless of completion order. With jobs == 1 everything runs inline
// on the calling thread -- no worker threads are created -- reproducing
// the historical serial path bit for bit.
//
// Worker count resolution (DefaultJobs): the DLPSIM_JOBS environment
// knob when set to a positive integer, else std::thread's
// hardware_concurrency (minimum 1).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "exec/timing.h"

namespace dlpsim::exec {

/// One cell of an experiment grid.
struct Job {
  std::string app;
  std::string config;
};

/// The (app x config) matrix in app-major (row-major) order: the cell
/// (a, c) lands at index a * configs.size() + c.
std::vector<Job> Grid(const std::vector<std::string>& apps,
                      const std::vector<std::string>& configs);

/// Worker count: DLPSIM_JOBS if set to a positive integer, otherwise
/// hardware_concurrency (never 0).
std::size_t DefaultJobs();

namespace detail {
/// Adds `n` to the exec.jobs_dispatched registry counter. Lives in
/// run_grid.cpp so this template header needs no obs/ include. Counted
/// in ParallelMap itself -- NOT in the ThreadPool -- so the total is the
/// same whether the work ran inline (jobs <= 1 never touches a pool) or
/// on workers, preserving the registry's byte-identity across
/// DLPSIM_JOBS.
void CountJobsDispatched(std::size_t n);
}  // namespace detail

/// Runs fn(i) for i in [0, n) on up to `jobs` workers and returns the
/// results in index order. jobs <= 1 executes inline (serial path). If
/// any invocation throws, the first failing index's exception is
/// rethrown after all jobs finish.
template <typename Fn>
auto ParallelMap(std::size_t n, Fn&& fn, std::size_t jobs = DefaultJobs())
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> results(n);
  if (n == 0) return results;
  detail::CountJobsDispatched(n);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }
  std::vector<std::exception_ptr> errors(n);
  {
    ThreadPool pool(std::min(jobs, n));
    for (std::size_t i = 0; i < n; ++i) {
      pool.Submit([&results, &errors, &fn, i] {
        try {
          results[i] = fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.Wait();
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  return results;
}

/// Maps `fn` over the grid cells; results in grid order.
template <typename Fn>
auto RunJobs(const std::vector<Job>& grid, Fn&& fn,
             std::size_t jobs = DefaultJobs())
    -> std::vector<std::invoke_result_t<Fn&, const Job&>> {
  return ParallelMap(
      grid.size(), [&grid, &fn](std::size_t i) { return fn(grid[i]); }, jobs);
}

// --- resilient execution (TryRunJobs) ---
//
// RunJobs/ParallelMap abort the whole grid on the first failing cell --
// correct for tests, fatal for a multi-hour sweep where one bad cell
// should not discard hundreds of finished ones. TryRunJobs runs every
// cell to completion, retries failing cells with backoff, and reports
// the survivors as structured JobFailures instead of throwing.

/// Retry/timeout policy for TryRunJobs.
struct RetryPolicy {
  int max_attempts = 2;          // 1 = no retry
  double backoff_seconds = 0.05; // sleep before attempt k: backoff * 2^(k-2)
  // Per-attempt wall-clock budget. 0 disables. The timeout is
  // *cooperative*: the attempt is never killed mid-flight (jobs share
  // in-process state and must not be abandoned on a detached thread);
  // instead an over-budget attempt's result is discarded and counted as
  // a timed-out failure.
  double timeout_seconds = 0.0;
};

/// One cell that still failed after every attempt.
struct JobFailure {
  std::size_t index = 0;  // grid index (app-major)
  Job job;
  std::string error;      // what() of the last attempt (or timeout note)
  int attempts = 0;
  bool timed_out = false;
};

/// Outcome of a resilient grid run. `results[i]` is value-initialized
/// for every failed cell i (look it up in `failures` by index).
template <typename R>
struct GridRun {
  std::vector<R> results;
  std::vector<JobFailure> failures;  // in grid order
  bool ok() const { return failures.empty(); }
};

/// Runs every grid cell through `fn` with per-cell retry; never throws a
/// cell's exception. The grid always runs to completion and failures come
/// back as data (recorded into <bench>_timing.json by the harness).
template <typename Fn>
auto TryRunJobs(const std::vector<Job>& grid, Fn&& fn,
                RetryPolicy retry = {}, std::size_t jobs = DefaultJobs())
    -> GridRun<std::invoke_result_t<Fn&, const Job&>> {
  using R = std::invoke_result_t<Fn&, const Job&>;
  GridRun<R> run;
  run.results.resize(grid.size());
  std::vector<std::unique_ptr<JobFailure>> failed(grid.size());
  const int max_attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;

  ParallelMap(
      grid.size(),
      [&](std::size_t i) -> int {
        std::string last_error;
        bool timed_out = false;
        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
          if (attempt > 1 && retry.backoff_seconds > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                retry.backoff_seconds * static_cast<double>(1 << (attempt - 2))));
          }
          const Stopwatch attempt_clock;
          try {
            R result = fn(grid[i]);
            const double secs = attempt_clock.Seconds();
            if (retry.timeout_seconds > 0.0 && secs > retry.timeout_seconds) {
              timed_out = true;
              last_error = "attempt took " + std::to_string(secs) +
                           "s, over the " +
                           std::to_string(retry.timeout_seconds) +
                           "s per-job timeout";
              continue;  // result discarded; maybe retried
            }
            run.results[i] = std::move(result);
            return 0;
          } catch (const std::exception& e) {
            timed_out = false;
            last_error = e.what();
          } catch (...) {
            timed_out = false;
            last_error = "unknown exception";
          }
        }
        auto failure = std::make_unique<JobFailure>();
        failure->index = i;
        failure->job = grid[i];
        failure->error = std::move(last_error);
        failure->attempts = max_attempts;
        failure->timed_out = timed_out;
        failed[i] = std::move(failure);
        return 0;
      },
      jobs);

  for (std::unique_ptr<JobFailure>& f : failed) {
    if (f != nullptr) run.failures.push_back(std::move(*f));
  }
  return run;
}

}  // namespace dlpsim::exec
