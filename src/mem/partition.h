// A memory partition: L2 slice + DRAM channel + the queues between them.
// Runs in the memory clock domain; packet exchange with the interconnect
// happens through the Crossbar's partition-side ports.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "icnt/crossbar.h"
#include "mem/dram.h"
#include "mem/l2_cache.h"
#include "sim/config.h"
#include "sim/types.h"

namespace dlpsim {

class MemoryPartition {
 public:
  MemoryPartition(const SimConfig& cfg, PartitionId id);

  /// Processes up to one incoming packet and advances L2/DRAM bookkeeping
  /// by one memory-domain cycle. Replies are pushed into the crossbar when
  /// its partition port has room.
  void Tick(Cycle now_mem, Crossbar& icnt);

  bool Idle() const;

  /// Fault-injection hook (robust/): the partition ignores the next
  /// `cycles` memory-domain ticks (no L2 service, no DRAM progress, no
  /// replies), modelling a transient controller stall.
  void InjectStallFor(std::uint64_t cycles) { fault_stall_cycles_ += cycles; }

  const L2Cache& l2() const { return l2_; }
  const DramChannel& dram() const { return dram_; }
  PartitionId id() const { return id_; }

  std::uint64_t requests_served = 0;

  /// Debug/teaching introspection: instantaneous queue depths.
  struct QueueDepths {
    std::size_t retry = 0, replies = 0, dram_backlog = 0, dram_queue = 0,
                dram_in_service = 0, l2_pending = 0;
  };
  QueueDepths Depths() const;

 private:
  struct PendingReply {
    IcntPacket pkt;
    Cycle ready_at = 0;
  };

  void ScheduleReply(const IcntPacket& request, Cycle ready_at);
  void PushReplies(Cycle now, Crossbar& icnt);
  void HandleDramCompletions(Cycle now);

  SimConfig cfg_;
  PartitionId id_;
  L2Cache l2_;
  DramChannel dram_;
  std::deque<PendingReply> replies_;     // FIFO of replies awaiting icnt
  std::deque<IcntPacket> retry_;         // requests stalled by the L2
  std::deque<DramChannel::Request> dram_backlog_;  // L2 misses / writes
  std::uint64_t fault_stall_cycles_ = 0;           // robust/: ticks to swallow
  obs::Counter* m_served_ = nullptr;               // mem.requests_served
};

}  // namespace dlpsim
