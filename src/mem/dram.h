// Simplified GDDR5 DRAM channel model: per-bank row buffers with
// open-page policy, bank busy times for row hits vs misses, and a shared
// data bus whose occupancy bounds the partition's bandwidth.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace dlpsim {

namespace obs {
class Counter;
}  // namespace obs

class DramChannel {
 public:
  DramChannel(const DramConfig& cfg, std::uint32_t line_bytes);

  struct Request {
    Addr block = 0;     // line index within the global space
    bool write = false;
    std::uint64_t tag = 0;  // opaque id returned on completion (reads)
  };

  struct Completion {
    Addr block = 0;
    bool write = false;
    std::uint64_t tag = 0;
  };

  bool CanAccept() const { return queue_.size() < kQueueCap; }
  void Enqueue(const Request& req);

  /// Advances one memory-domain cycle; returns completions that finished
  /// at or before `now`.
  std::vector<Completion> Tick(Cycle now);

  bool Idle() const { return queue_.empty() && in_service_.empty(); }
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t in_service_depth() const { return in_service_.size(); }

  // --- derived mapping (exposed for tests) ---
  std::uint32_t BankOf(Addr block) const;
  std::uint64_t RowOf(Addr block) const;

  // --- statistics ---
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;

  void RegisterStats(StatRegistry& reg, const std::string& prefix) const;

 private:
  struct Bank {
    Cycle busy_until = 0;
    std::uint64_t open_row = ~0ull;
  };

  struct InService {
    Completion completion;
    Cycle done_at = 0;
  };

  DramConfig cfg_;
  std::uint32_t line_bytes_;
  std::uint32_t lines_per_row_;
  std::deque<Request> queue_;
  std::vector<Bank> banks_;
  std::vector<InService> in_service_;
  Cycle bus_busy_until_ = 0;
  obs::Counter* m_reads_ = nullptr;   // mem.dram_reads
  obs::Counter* m_writes_ = nullptr;  // mem.dram_writes

  static constexpr std::size_t kQueueCap = 32;
};

}  // namespace dlpsim
