#include "mem/dram.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace dlpsim {

DramChannel::DramChannel(const DramConfig& cfg, std::uint32_t line_bytes)
    : cfg_(cfg),
      line_bytes_(line_bytes),
      lines_per_row_(std::max(1u, cfg.row_bytes / line_bytes)),
      banks_(cfg.banks),
      m_reads_(obs::Registry::Global().GetCounter(
          "mem", "dram_reads", "DRAM read commands issued")),
      m_writes_(obs::Registry::Global().GetCounter(
          "mem", "dram_writes", "DRAM write commands issued")) {}

std::uint32_t DramChannel::BankOf(Addr block) const {
  // Row-granular interleave: consecutive lines share a row (streaming
  // gets row hits), consecutive rows rotate across banks.
  return static_cast<std::uint32_t>((block / lines_per_row_) % cfg_.banks);
}

std::uint64_t DramChannel::RowOf(Addr block) const {
  return (block / lines_per_row_) / cfg_.banks;
}

void DramChannel::Enqueue(const Request& req) {
  assert(CanAccept());
  queue_.push_back(req);
}

std::vector<DramChannel::Completion> DramChannel::Tick(Cycle now) {
  // Issue at most one command per cycle to the first queued request whose
  // bank is free (first-ready scheduling; the bounded queue prevents
  // unbounded starvation of blocked-bank requests).
  //
  // Latency and occupancy are separate: a row hit keeps the bank busy for
  // only the burst (column accesses pipeline), a row miss additionally
  // occupies it for the precharge+activate window; the requester sees the
  // full t_row_hit / t_row_miss latency plus shared-data-bus queueing.
  const Cycle burst = std::max<Cycle>(
      1, (line_bytes_ + cfg_.bus_bytes_per_cycle - 1) /
             cfg_.bus_bytes_per_cycle);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    Bank& bank = banks_[BankOf(it->block)];
    if (bank.busy_until > now) continue;
    const std::uint64_t row = RowOf(it->block);
    const bool row_hit = bank.open_row == row;
    row_hit ? ++row_hits : ++row_misses;
    const Cycle latency = row_hit ? cfg_.t_row_hit : cfg_.t_row_miss;
    const Cycle occupancy = row_hit ? burst : cfg_.t_rc + burst;
    bank.open_row = row;
    bank.busy_until = now + occupancy;
    bus_busy_until_ = std::max(bus_busy_until_, now + latency) + burst;
    it->write ? ++writes : ++reads;
    (it->write ? m_writes_ : m_reads_)->Add();
    in_service_.push_back(
        InService{Completion{it->block, it->write, it->tag}, bus_busy_until_});
    queue_.erase(it);
    break;
  }

  std::vector<Completion> done;
  auto it = in_service_.begin();
  while (it != in_service_.end()) {
    if (it->done_at <= now) {
      done.push_back(it->completion);
      it = in_service_.erase(it);
    } else {
      ++it;
    }
  }
  return done;
}

void DramChannel::RegisterStats(StatRegistry& reg,
                                const std::string& prefix) const {
  reg.Register(prefix + ".reads", &reads);
  reg.Register(prefix + ".writes", &writes);
  reg.Register(prefix + ".row_hits", &row_hits);
  reg.Register(prefix + ".row_misses", &row_misses);
}

}  // namespace dlpsim
