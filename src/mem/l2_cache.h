// One L2 slice (per memory partition): set-associative, LRU, write-back,
// allocate-on-fill, with MSHR-style merging of concurrent read misses.
//
// Unlike the L1D (allocate-on-miss, the paper's contention point), the L2
// allocates lines when the DRAM fill returns. This means a slice never
// holds RESERVED lines, so its sets cannot be exhausted by in-flight
// fetches -- only the MSHR bounds memory-level parallelism. The L2 slices
// reuse the generic TagArray substrate; they are not managed by DLP (the
// paper modifies only the L1D).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/stats.h"
#include "cache/tag_array.h"
#include "icnt/crossbar.h"
#include "sim/config.h"
#include "sim/types.h"

namespace dlpsim {

class L2Cache {
 public:
  explicit L2Cache(const L2Config& cfg);

  enum class Result : std::uint8_t {
    kHit,         // reply can be scheduled after cfg.latency
    kMissIssued,  // caller must fetch from DRAM
    kMissMerged,  // already being fetched; reply joins the entry
    kStall,       // MSHR full / merge limit; retry next cycle
  };

  /// A read for `block` on behalf of `waiter` (the original core packet).
  Result AccessRead(Addr block, const IcntPacket& waiter);

  /// A write of `block` (write-through from L1 or L1 writeback).
  /// Returns kHit when absorbed by the slice (line dirtied), kMissIssued
  /// when it must be forwarded to DRAM (no-allocate).
  Result AccessWrite(Addr block);

  /// DRAM returned `block`: allocate the line (possibly displacing a
  /// dirty victim -> TakeWritebacks) and collect all merged waiters.
  std::vector<IcntPacket> Fill(Addr block);

  /// Dirty lines displaced since the last call (the partition turns them
  /// into DRAM writes).
  std::vector<Addr> TakeWritebacks();

  const CacheStats& stats() const { return stats_; }
  std::size_t pending_fetches() const { return pending_.size(); }
  const TagArray& tags() const { return tags_; }
  const L2Config& config() const { return cfg_; }

 private:
  L2Config cfg_;
  TagArray tags_;
  std::unordered_map<Addr, std::vector<IcntPacket>> pending_;  // MSHR
  std::vector<Addr> writebacks_;
  CacheStats stats_;
};

}  // namespace dlpsim
