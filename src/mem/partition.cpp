#include "mem/partition.h"

#include <cassert>

#include "obs/metrics.h"

namespace dlpsim {

MemoryPartition::MemoryPartition(const SimConfig& cfg, PartitionId id)
    : cfg_(cfg),
      id_(id),
      l2_(cfg.l2),
      dram_(cfg.dram, cfg.l2.geom.line_bytes),
      m_served_(obs::Registry::Global().GetCounter(
          "mem", "requests_served",
          "read replies injected back into the interconnect")) {}

void MemoryPartition::ScheduleReply(const IcntPacket& request,
                                    Cycle ready_at) {
  IcntPacket reply;
  reply.kind = IcntPacket::Kind::kReadReply;
  reply.addr = request.addr;
  reply.src = id_;
  reply.dst = request.src;
  reply.no_fill = request.no_fill;
  reply.token = request.token;
  reply.pc = request.pc;
  reply.bytes = cfg_.l2.geom.line_bytes + cfg_.icnt.control_overhead;
  replies_.push_back(PendingReply{reply, ready_at});
}

void MemoryPartition::HandleDramCompletions(Cycle now) {
  for (const DramChannel::Completion& done : dram_.Tick(now)) {
    if (done.write) continue;  // fire-and-forget
    for (const IcntPacket& waiter : l2_.Fill(done.block)) {
      ScheduleReply(waiter, now);
    }
    // Allocate-on-fill can displace a dirty line at fill time.
    for (Addr wb : l2_.TakeWritebacks()) {
      dram_backlog_.push_back(DramChannel::Request{wb, /*write=*/true, 0});
    }
  }
}

void MemoryPartition::PushReplies(Cycle now, Crossbar& icnt) {
  auto it = replies_.begin();
  while (it != replies_.end()) {
    if (it->ready_at <= now && icnt.CanInjectFromPartition(id_)) {
      icnt.InjectFromPartition(id_, it->pkt);
      ++requests_served;
      m_served_->Add();
      it = replies_.erase(it);
    } else {
      ++it;
    }
  }
}

void MemoryPartition::Tick(Cycle now, Crossbar& icnt) {
  if (fault_stall_cycles_ > 0) {
    // Injected controller stall: the memory cycle passes unused.
    --fault_stall_cycles_;
    return;
  }
  HandleDramCompletions(now);

  // One L2 access per memory cycle (single-ported slice). Stalled requests
  // retry ahead of new arrivals to preserve ordering.
  IcntPacket pkt;
  bool have = false;
  if (!retry_.empty()) {
    pkt = retry_.front();
    retry_.pop_front();
    have = true;
  } else if (icnt.HasForPartition(id_)) {
    pkt = icnt.PopForPartition(id_);
    have = true;
  }

  if (have) {
    const Addr block = pkt.addr / cfg_.l2.geom.line_bytes;
    switch (pkt.kind) {
      case IcntPacket::Kind::kReadRequest: {
        switch (l2_.AccessRead(block, pkt)) {
          case L2Cache::Result::kHit:
            ScheduleReply(pkt, now + cfg_.l2.latency);
            break;
          case L2Cache::Result::kMissIssued:
            dram_backlog_.push_back(
                DramChannel::Request{block, /*write=*/false, /*tag=*/0});
            break;
          case L2Cache::Result::kMissMerged:
            break;
          case L2Cache::Result::kStall:
            retry_.push_back(pkt);
            break;
        }
        break;
      }
      case IcntPacket::Kind::kWrite: {
        if (l2_.AccessWrite(block) == L2Cache::Result::kMissIssued) {
          dram_backlog_.push_back(
              DramChannel::Request{block, /*write=*/true, /*tag=*/0});
        }
        break;
      }
      case IcntPacket::Kind::kOther:
        // Background L1I/L1C/L1T traffic: consumes interconnect bandwidth
        // (already accounted) and is absorbed here.
        break;
      case IcntPacket::Kind::kReadReply:
        assert(false && "replies never flow towards partitions");
        break;
    }
    // L2 evictions of dirty lines turn into DRAM writes.
    for (Addr wb : l2_.TakeWritebacks()) {
      dram_backlog_.push_back(DramChannel::Request{wb, /*write=*/true, 0});
    }
  }

  while (!dram_backlog_.empty() && dram_.CanAccept()) {
    dram_.Enqueue(dram_backlog_.front());
    dram_backlog_.pop_front();
  }

  PushReplies(now, icnt);
}

MemoryPartition::QueueDepths MemoryPartition::Depths() const {
  QueueDepths d;
  d.retry = retry_.size();
  d.replies = replies_.size();
  d.dram_backlog = dram_backlog_.size();
  d.dram_queue = dram_.queue_depth();
  d.dram_in_service = dram_.in_service_depth();
  d.l2_pending = l2_.pending_fetches();
  return d;
}

bool MemoryPartition::Idle() const {
  return replies_.empty() && retry_.empty() && dram_backlog_.empty() &&
         dram_.Idle();
}

}  // namespace dlpsim
