#include "mem/l2_cache.h"

#include <cassert>

namespace dlpsim {

L2Cache::L2Cache(const L2Config& cfg) : cfg_(cfg), tags_(cfg.geom) {}

L2Cache::Result L2Cache::AccessRead(Addr block, const IcntPacket& waiter) {
  const std::uint32_t set = tags_.SetOfBlock(block);
  const std::uint32_t way = tags_.Probe(set, block);

  if (way != kInvalidIndex && IsFilled(tags_.At(set, way).state)) {
    ++stats_.accesses;
    ++stats_.loads;
    ++stats_.load_hits;
    tags_.Touch(set, way);
    return Result::kHit;
  }

  // In flight already? Merge (bounded by the per-entry merge limit).
  auto it = pending_.find(block);
  if (it != pending_.end()) {
    if (it->second.size() >= cfg_.mshr_max_merged) {
      ++stats_.reservation_fails;
      return Result::kStall;
    }
    ++stats_.accesses;
    ++stats_.loads;
    ++stats_.load_misses;
    ++stats_.mshr_merges;
    it->second.push_back(waiter);
    return Result::kMissMerged;
  }

  if (pending_.size() >= cfg_.mshr_entries) {
    ++stats_.reservation_fails;
    return Result::kStall;
  }

  ++stats_.accesses;
  ++stats_.loads;
  ++stats_.load_misses;
  ++stats_.misses_issued;
  pending_.emplace(block, std::vector<IcntPacket>{waiter});
  return Result::kMissIssued;
}

L2Cache::Result L2Cache::AccessWrite(Addr block) {
  ++stats_.accesses;
  ++stats_.stores;
  const std::uint32_t set = tags_.SetOfBlock(block);
  const std::uint32_t way = tags_.Probe(set, block);
  if (way != kInvalidIndex && IsFilled(tags_.At(set, way).state)) {
    ++stats_.store_hits;
    tags_.At(set, way).state = LineState::kModified;
    tags_.Touch(set, way);
    return Result::kHit;
  }
  // Write no-allocate: forward to DRAM.
  return Result::kMissIssued;
}

std::vector<IcntPacket> L2Cache::Fill(Addr block) {
  auto it = pending_.find(block);
  assert(it != pending_.end() && "L2 fill without a pending fetch");
  std::vector<IcntPacket> waiters = std::move(it->second);
  pending_.erase(it);
  ++stats_.fills;

  // Allocate on fill: displace the LRU line (never RESERVED under this
  // policy, so a victim always exists).
  const std::uint32_t set = tags_.SetOfBlock(block);
  if (tags_.Probe(set, block) == kInvalidIndex) {
    const std::uint32_t way =
        tags_.LruWayWhere(set, [](const CacheLine&) { return true; });
    assert(way != kInvalidIndex);
    const CacheLine previous = tags_.Reserve(set, way, block, 0);
    tags_.Fill(set, block);
    if (IsFilled(previous.state)) {
      ++stats_.evictions;
      if (previous.state == LineState::kModified) {
        ++stats_.writebacks;
        writebacks_.push_back(previous.block);
      }
    }
  }
  return waiters;
}

std::vector<Addr> L2Cache::TakeWritebacks() {
  std::vector<Addr> out;
  out.swap(writebacks_);
  return out;
}

}  // namespace dlpsim
