#include "trace/hash.h"

#include <ostream>
#include <streambuf>

#include "trace/writer.h"

namespace dlpsim::trace {

namespace {

// Canonical FNV-1a 64 parameters (same family as serve::Fnv1a64).
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// A write-only streambuf that folds every byte into an FNV-1a hash --
/// the canonical packed bytes are hashed as the writer produces them,
/// never stored.
class FnvStreambuf : public std::streambuf {
 public:
  std::uint64_t hash() const { return hash_; }

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) {
      Fold(static_cast<unsigned char>(ch));
    }
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) {
      Fold(static_cast<unsigned char>(s[i]));
    }
    return n;
  }

 private:
  void Fold(unsigned char b) {
    hash_ ^= b;
    hash_ *= kFnvPrime;
  }
  std::uint64_t hash_ = kFnvOffset;
};

std::string Hex16(std::uint64_t v) {
  char buf[17];
  for (int i = 15; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  }
  buf[16] = '\0';
  return buf;
}

}  // namespace

std::uint64_t FnvHash64(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

bool TraceContentHash(TraceSource& src, std::uint64_t* hash,
                      TraceParseError* error) {
  FnvStreambuf sink;
  std::ostream os(&sink);
  PackedTraceWriter w(os, /*meta=*/"", kCanonicalBlockRecords);
  TraceAccess a;
  while (src.Next(&a)) w.Append(a);
  if (!src.ok()) {
    if (error != nullptr) *error = src.error();
    return false;
  }
  if (!w.Finish()) {
    if (error != nullptr) *error = w.error();
    return false;
  }
  *hash = sink.hash();
  return true;
}

bool TraceFileHash(const std::string& path, std::uint64_t* hash,
                   TraceParseError* error) {
  auto src = OpenTraceFile(path, error);
  if (src == nullptr) return false;
  return TraceContentHash(*src, hash, error);
}

std::string TraceFileRef(const std::string& path, TraceParseError* error) {
  std::uint64_t hash = 0;
  if (!TraceFileHash(path, &hash, error)) return "";
  return "trace-" + Hex16(hash);
}

}  // namespace dlpsim::trace
