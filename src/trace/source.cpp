#include "trace/source.h"

#include <cstring>
#include <fstream>

#include "trace/format.h"
#include "trace/lz.h"
#include "trace/text.h"

namespace dlpsim::trace {

bool VectorTraceSource::Next(TraceAccess* out) {
  if (pos_ >= records_->size()) return false;
  *out = (*records_)[pos_++];
  ++delivered_;
  return true;
}

bool TextTraceSource::Next(TraceAccess* out) {
  if (done_) return false;
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_no_;
    std::string message;
    switch (ParseTraceLine(line, out, &message)) {
      case LineKind::kAccess:
        ++delivered_;
        return true;
      case LineKind::kBlank:
        continue;
      case LineKind::kBad:
        error_.line = line_no_;
        error_.message = std::move(message);
        error_.kind = TraceErrorKind::kBadText;
        done_ = true;
        return false;
    }
  }
  done_ = true;
  if (in_->bad()) {
    error_.line = 0;
    error_.message =
        "stream read error after line " + std::to_string(line_no_);
    error_.kind = TraceErrorKind::kIo;
  }
  return false;
}

bool PackedTraceSource::Fail(TraceErrorKind kind, const std::string& message) {
  error_.kind = kind;
  error_.message = message;
  error_.offset = offset_;
  done_ = true;
  return false;
}

namespace {

/// Reads exactly `n` bytes into *out; false on short read.
bool ReadExact(std::istream& in, std::size_t n, std::string* out) {
  out->resize(n);
  if (n == 0) return true;
  in.read(out->data(), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(in.gcount()) == n;
}

}  // namespace

bool PackedTraceSource::ReadHeader() {
  std::string fixed;
  if (!ReadExact(*in_, kHeaderBytes, &fixed)) {
    return Fail(TraceErrorKind::kBadHeader,
                "truncated header: fewer than " +
                    std::to_string(kHeaderBytes) + " bytes");
  }
  if (std::memcmp(fixed.data(), kMagic, sizeof(kMagic)) != 0) {
    return Fail(TraceErrorKind::kBadMagic, "bad magic (expected \"DLPT\")");
  }
  const std::uint32_t version = GetU32(fixed.data() + 4);
  if (version != kFormatVersion) {
    return Fail(TraceErrorKind::kBadVersion,
                "unsupported format version " + std::to_string(version) +
                    " (this reader speaks " +
                    std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t meta_len = GetU32(fixed.data() + 8);
  const std::uint32_t meta_crc = GetU32(fixed.data() + 12);
  if (meta_len > kMaxMetaBytes) {
    return Fail(TraceErrorKind::kBadHeader,
                "metadata length " + std::to_string(meta_len) +
                    " exceeds the " + std::to_string(kMaxMetaBytes) +
                    "-byte limit");
  }
  if (!ReadExact(*in_, meta_len, &meta_)) {
    return Fail(TraceErrorKind::kBadHeader, "truncated metadata section");
  }
  if (Crc32(meta_) != meta_crc) {
    return Fail(TraceErrorKind::kCrcMismatch, "metadata CRC mismatch");
  }
  offset_ = kHeaderBytes + meta_len;
  header_read_ = true;
  return true;
}

bool PackedTraceSource::ReadBlock() {
  std::string len_bytes;
  if (!ReadExact(*in_, 4, &len_bytes)) {
    return Fail(TraceErrorKind::kTruncated,
                "stream ended without a footer (truncated final block?)");
  }
  const std::uint32_t comp_len = GetU32(len_bytes.data());
  if (comp_len == 0) {
    // Footer: total record count + CRC.
    std::string tail;
    if (!ReadExact(*in_, kFooterBytes - 4, &tail)) {
      return Fail(TraceErrorKind::kTruncated, "truncated footer");
    }
    const std::uint64_t total = GetU64(tail.data());
    const std::uint32_t crc = GetU32(tail.data() + 8);
    if (Crc32(std::string_view(tail.data(), 8)) != crc) {
      return Fail(TraceErrorKind::kCrcMismatch, "footer CRC mismatch");
    }
    if (total != delivered_ + (block_.size() - block_pos_)) {
      return Fail(TraceErrorKind::kBadHeader,
                  "footer record count " + std::to_string(total) +
                      " does not match decoded records");
    }
    done_ = true;
    return false;
  }
  std::string rest;
  if (!ReadExact(*in_, kBlockHeaderBytes - 4, &rest)) {
    return Fail(TraceErrorKind::kTruncated, "truncated block header");
  }
  const std::uint32_t raw_len = GetU32(rest.data());
  const std::uint32_t count = GetU32(rest.data() + 4);
  const std::uint32_t crc = GetU32(rest.data() + 8);
  if (raw_len > kMaxBlockRawBytes) {
    return Fail(TraceErrorKind::kOversizedBlock,
                "declared raw block length " + std::to_string(raw_len) +
                    " exceeds the " + std::to_string(kMaxBlockRawBytes) +
                    "-byte limit");
  }
  if (comp_len > LzMaxCompressedSize(raw_len)) {
    return Fail(TraceErrorKind::kOversizedBlock,
                "declared compressed length " + std::to_string(comp_len) +
                    " exceeds the bound for " + std::to_string(raw_len) +
                    " raw bytes");
  }
  if (count == 0 || count > raw_len) {
    // Every record takes >= 3 payload bytes, so count > raw_len is
    // always corrupt; count == 0 blocks are never written.
    return Fail(TraceErrorKind::kBadBlock,
                "implausible block record count " + std::to_string(count));
  }
  std::string packed;
  if (!ReadExact(*in_, comp_len, &packed)) {
    return Fail(TraceErrorKind::kTruncated, "truncated block payload");
  }
  if (Crc32(packed) != crc) {
    return Fail(TraceErrorKind::kCrcMismatch, "block CRC mismatch");
  }
  std::string payload;
  if (!LzDecompress(packed, raw_len, &payload)) {
    return Fail(TraceErrorKind::kBadBlock,
                "block payload does not decompress to its declared size");
  }
  block_.clear();
  block_pos_ = 0;
  TraceParseError block_err;
  if (!DecodeBlockPayload(payload, count, &block_, &block_err)) {
    return Fail(block_err.kind, block_err.message);
  }
  offset_ += kBlockHeaderBytes + comp_len;
  return true;
}

bool PackedTraceSource::Next(TraceAccess* out) {
  if (done_) return false;
  if (!header_read_ && !ReadHeader()) return false;
  while (block_pos_ >= block_.size()) {
    if (!ReadBlock()) return false;
  }
  *out = block_[block_pos_++];
  ++delivered_;
  return true;
}

const std::string& PackedTraceSource::meta() {
  if (!header_read_ && !done_) ReadHeader();
  return meta_;
}

std::unique_ptr<TraceSource> OpenTraceFile(const std::string& path,
                                           TraceParseError* error) {
  auto in = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*in) {
    if (error != nullptr) {
      error->kind = TraceErrorKind::kIo;
      error->message = "cannot open " + path;
    }
    return nullptr;
  }
  char magic[4] = {0, 0, 0, 0};
  in->read(magic, 4);
  const bool packed = in->gcount() == 4 &&
                      std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  in->clear();
  in->seekg(0);
  if (packed) {
    return std::make_unique<PackedTraceSource>(std::move(in));
  }
  return std::make_unique<TextTraceSource>(std::move(in));
}

bool ReadAllRecords(TraceSource& src, std::vector<TraceAccess>* out,
                    TraceParseError* error) {
  TraceAccess a;
  while (src.Next(&a)) out->push_back(a);
  if (!src.ok()) {
    if (error != nullptr) *error = src.error();
    return false;
  }
  return true;
}

}  // namespace dlpsim::trace
