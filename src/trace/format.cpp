#include "trace/format.h"

#include <array>
#include <limits>

#include "trace/lz.h"

namespace dlpsim::trace {

namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  return table;
}

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, std::string_view data) {
  const auto& table = CrcTable();
  crc = ~crc;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

void PutVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view src, std::size_t* pos, std::uint64_t* v) {
  std::uint64_t result = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (*pos >= src.size()) return false;
    const unsigned char b = static_cast<unsigned char>(src[*pos]);
    ++*pos;
    // The 10th byte (shift 63) may only contribute one bit.
    if (shift == 63 && (b & 0xfe) != 0) return false;
    result |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;  // unterminated varint
}

std::uint64_t ZigzagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t ZigzagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

std::string EncodeBlockPayload(const std::vector<TraceAccess>& records,
                               std::size_t first, std::size_t count) {
  std::string payload;
  payload.reserve(count * 4);
  Addr prev_addr = 0;
  Pc prev_pc = 0;
  for (std::size_t i = first; i < first + count; ++i) {
    const TraceAccess& a = records[i];
    payload.push_back(a.type == AccessType::kStore ? 1 : 0);
    // Wrapping delta: unsigned subtraction then reinterpretation as a
    // two's-complement int64 makes 2^64 wraparound round-trip exactly.
    PutVarint(&payload,
              ZigzagEncode(static_cast<std::int64_t>(a.addr - prev_addr)));
    PutVarint(&payload, ZigzagEncode(static_cast<std::int64_t>(a.pc) -
                                     static_cast<std::int64_t>(prev_pc)));
    prev_addr = a.addr;
    prev_pc = a.pc;
  }
  return payload;
}

bool DecodeBlockPayload(std::string_view payload, std::size_t count,
                        std::vector<TraceAccess>* out,
                        TraceParseError* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      error->kind = TraceErrorKind::kBadBlock;
      error->message = "bad block payload: " + why;
    }
    return false;
  };
  std::size_t pos = 0;
  Addr prev_addr = 0;
  Pc prev_pc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (pos >= payload.size()) return fail("truncated record stream");
    const unsigned char flags = static_cast<unsigned char>(payload[pos]);
    ++pos;
    if ((flags & ~1u) != 0) return fail("reserved flag bits set");
    std::uint64_t d_addr = 0;
    std::uint64_t d_pc = 0;
    if (!GetVarint(payload, &pos, &d_addr)) return fail("bad address varint");
    if (!GetVarint(payload, &pos, &d_pc)) return fail("bad pc varint");
    TraceAccess a;
    a.addr = prev_addr + static_cast<std::uint64_t>(ZigzagDecode(d_addr));
    const std::int64_t pc =
        static_cast<std::int64_t>(prev_pc) + ZigzagDecode(d_pc);
    if (pc < 0 || pc > static_cast<std::int64_t>(
                           std::numeric_limits<Pc>::max())) {
      return fail("pc delta out of range");
    }
    a.pc = static_cast<Pc>(pc);
    a.type = (flags & 1u) != 0 ? AccessType::kStore : AccessType::kLoad;
    out->push_back(a);
    prev_addr = a.addr;
    prev_pc = a.pc;
  }
  if (pos != payload.size()) return fail("trailing payload bytes");
  return true;
}

void PutU32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64(std::string* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t GetU32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

std::uint64_t GetU64(const char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

std::string EncodeHeader(std::string_view meta) {
  std::string out;
  out.reserve(kHeaderBytes + meta.size());
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kFormatVersion);
  PutU32(&out, static_cast<std::uint32_t>(meta.size()));
  PutU32(&out, Crc32(meta));
  out.append(meta);
  return out;
}

std::string EncodeBlock(const std::vector<TraceAccess>& records,
                        std::size_t first, std::size_t count) {
  const std::string payload = EncodeBlockPayload(records, first, count);
  const std::string packed = LzCompress(payload);
  std::string out;
  out.reserve(kBlockHeaderBytes + packed.size());
  PutU32(&out, static_cast<std::uint32_t>(packed.size()));
  PutU32(&out, static_cast<std::uint32_t>(payload.size()));
  PutU32(&out, static_cast<std::uint32_t>(count));
  PutU32(&out, Crc32(packed));
  out.append(packed);
  return out;
}

std::string EncodeFooter(std::uint64_t total_records) {
  std::string count;
  PutU64(&count, total_records);
  std::string out;
  out.reserve(kFooterBytes);
  PutU32(&out, 0);  // zero comp_len terminates the block list
  out.append(count);
  PutU32(&out, Crc32(count));
  return out;
}

}  // namespace dlpsim::trace
