#include "trace/lz.h"

#include <cstdint>
#include <cstring>

namespace dlpsim::trace {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr unsigned kHashBits = 13;

/// Hashes the 4 bytes at `p` into the match table.
inline std::uint32_t Hash4(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32u - kHashBits);
}

/// Appends a nibble-extended length: `n` is the amount beyond what the
/// nibble already encoded (nibble was 15).
void PutExtLength(std::string* out, std::size_t n) {
  while (n >= 255) {
    out->push_back(static_cast<char>(255));
    n -= 255;
  }
  out->push_back(static_cast<char>(n));
}

/// Reads a nibble-extended length; false on truncation.
bool GetExtLength(std::string_view src, std::size_t* pos, std::size_t* n) {
  for (;;) {
    if (*pos >= src.size()) return false;
    const unsigned char b = static_cast<unsigned char>(src[*pos]);
    ++*pos;
    *n += b;
    if (b < 255) return true;
  }
}

void EmitSequence(std::string* out, const unsigned char* lit_start,
                  std::size_t lit_len, std::size_t offset,
                  std::size_t match_len) {
  const std::size_t lit_nib = lit_len < 15 ? lit_len : 15;
  std::size_t match_nib = 0;
  if (match_len >= kMinMatch) {
    const std::size_t m = match_len - kMinMatch;
    match_nib = m < 15 ? m : 15;
  }
  out->push_back(static_cast<char>((lit_nib << 4) | match_nib));
  if (lit_nib == 15) PutExtLength(out, lit_len - 15);
  out->append(reinterpret_cast<const char*>(lit_start), lit_len);
  if (match_len >= kMinMatch) {
    out->push_back(static_cast<char>(offset & 0xff));
    out->push_back(static_cast<char>((offset >> 8) & 0xff));
    if (match_nib == 15) PutExtLength(out, match_len - kMinMatch - 15);
  }
}

}  // namespace

std::size_t LzMaxCompressedSize(std::size_t raw_size) {
  // One token + extension bytes for an all-literal stream.
  return raw_size + raw_size / 255 + 16;
}

std::string LzCompress(std::string_view src) {
  std::string out;
  out.reserve(src.size() / 2 + 16);
  const auto* base = reinterpret_cast<const unsigned char*>(src.data());
  const std::size_t n = src.size();

  // Positions of previously seen 4-byte hashes (greedy, one slot each).
  std::uint32_t table[1u << kHashBits];
  std::memset(table, 0xff, sizeof(table));
  constexpr std::uint32_t kEmpty = 0xffffffffu;

  std::size_t lit_start = 0;  // first literal not yet emitted
  std::size_t pos = 0;
  while (n >= kMinMatch && pos + kMinMatch <= n) {
    const std::uint32_t h = Hash4(base + pos);
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(pos);
    if (cand != kEmpty && pos - cand <= kMaxOffset &&
        std::memcmp(base + cand, base + pos, kMinMatch) == 0) {
      // Extend the match forward.
      std::size_t len = kMinMatch;
      while (pos + len < n && base[cand + len] == base[pos + len]) ++len;
      EmitSequence(&out, base + lit_start, pos - lit_start, pos - cand, len);
      pos += len;
      lit_start = pos;
      continue;
    }
    ++pos;
  }
  // Trailing literals (possibly the whole input).
  if (lit_start < n || n == 0) {
    EmitSequence(&out, base + lit_start, n - lit_start, 0, 0);
  }
  return out;
}

bool LzDecompress(std::string_view src, std::size_t raw_size,
                  std::string* out) {
  out->clear();
  out->reserve(raw_size);
  std::size_t pos = 0;
  while (pos < src.size()) {
    const unsigned char token = static_cast<unsigned char>(src[pos]);
    ++pos;
    // Literals.
    std::size_t lit_len = token >> 4;
    if (lit_len == 15 && !GetExtLength(src, &pos, &lit_len)) return false;
    if (pos + lit_len > src.size()) return false;
    if (out->size() + lit_len > raw_size) return false;
    out->append(src.data() + pos, lit_len);
    pos += lit_len;
    if (pos == src.size()) break;  // final literal-only sequence
    // Match.
    if (pos + 2 > src.size()) return false;
    const std::size_t offset =
        static_cast<unsigned char>(src[pos]) |
        (static_cast<std::size_t>(static_cast<unsigned char>(src[pos + 1]))
         << 8);
    pos += 2;
    if (offset == 0 || offset > out->size()) return false;
    std::size_t match_len = (token & 0xf) + kMinMatch;
    if ((token & 0xf) == 15) {
      std::size_t ext = 0;
      if (!GetExtLength(src, &pos, &ext)) return false;
      match_len += ext;
    }
    if (out->size() + match_len > raw_size) return false;
    // Byte-wise copy: overlapping matches (offset < match_len) replicate.
    std::size_t from = out->size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) {
      out->push_back((*out)[from + i]);
    }
  }
  return out->size() == raw_size;
}

}  // namespace dlpsim::trace
