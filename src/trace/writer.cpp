#include "trace/writer.h"

#include <ostream>

namespace dlpsim::trace {

PackedTraceWriter::PackedTraceWriter(std::ostream& os, std::string_view meta,
                                     std::uint32_t block_records)
    : os_(&os), block_records_(block_records == 0 ? 1 : block_records) {
  if (meta.size() > kMaxMetaBytes) {
    error_.kind = TraceErrorKind::kBadHeader;
    error_.message = "metadata exceeds the " +
                     std::to_string(kMaxMetaBytes) + "-byte limit";
    return;
  }
  pending_.reserve(block_records_);
  Emit(EncodeHeader(meta));
}

void PackedTraceWriter::Emit(const std::string& bytes) {
  if (!ok()) return;
  os_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!*os_) {
    error_.kind = TraceErrorKind::kIo;
    error_.message = "write error";
  }
}

void PackedTraceWriter::FlushBlock() {
  if (pending_.empty()) return;
  Emit(EncodeBlock(pending_, 0, pending_.size()));
  pending_.clear();
}

void PackedTraceWriter::Append(const TraceAccess& a) {
  if (!ok() || finished_) return;
  pending_.push_back(a);
  ++total_;
  if (pending_.size() >= block_records_) FlushBlock();
}

bool PackedTraceWriter::Finish() {
  if (finished_) return ok();
  finished_ = true;
  FlushBlock();
  Emit(EncodeFooter(total_));
  if (ok()) {
    os_->flush();
    if (!*os_) {
      error_.kind = TraceErrorKind::kIo;
      error_.message = "flush error";
    }
  }
  return ok();
}

bool WritePackedTrace(std::ostream& os, const std::vector<TraceAccess>& records,
                      std::string_view meta, std::uint32_t block_records) {
  PackedTraceWriter w(os, meta, block_records);
  for (const TraceAccess& a : records) w.Append(a);
  return w.Finish();
}

}  // namespace dlpsim::trace
