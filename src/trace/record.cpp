#include "trace/record.h"

#include <ostream>

namespace dlpsim::trace {

namespace {

/// Lowercase hex without leading zeros ("0" for zero).
void AppendHex(std::uint64_t v, std::string* out) {
  char buf[16];
  int i = 0;
  do {
    buf[i++] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  } while (v != 0);
  while (i > 0) out->push_back(buf[--i]);
}

void AppendDec(std::uint64_t v, std::string* out) {
  char buf[20];
  int i = 0;
  do {
    buf[i++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (i > 0) out->push_back(buf[--i]);
}

}  // namespace

void AppendCanonicalLine(const TraceAccess& a, std::string* out) {
  out->push_back(a.type == AccessType::kStore ? 'S' : 'L');
  out->append(" 0x");
  AppendHex(a.addr, out);
  out->push_back(' ');
  AppendDec(a.pc, out);
  out->push_back('\n');
}

std::string CanonicalTextLine(const TraceAccess& a) {
  std::string line;
  AppendCanonicalLine(a, &line);
  return line;
}

void WriteTextTrace(std::ostream& os, const std::vector<TraceAccess>& records) {
  std::string buf;
  buf.reserve(records.size() * 20);
  for (const TraceAccess& a : records) {
    AppendCanonicalLine(a, &buf);
    if (buf.size() >= (1u << 16)) {
      os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
      buf.clear();
    }
  }
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

std::string CanonicalText(const std::vector<TraceAccess>& records) {
  std::string out;
  out.reserve(records.size() * 20);
  for (const TraceAccess& a : records) AppendCanonicalLine(a, &out);
  return out;
}

}  // namespace dlpsim::trace
