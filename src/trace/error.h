// Typed trace-parse failures, shared by the text and packed readers.
//
// `TraceParseError` used to live in analysis/trace_replay.h with only a
// line number and a message; the packed format added a `kind` so tests
// and tools can assert on *which* corruption was detected (bad magic vs.
// flipped CRC vs. truncated block) instead of string-matching messages.
// Existing aggregate users keep compiling: the new field defaults.
#pragma once

#include <cstddef>
#include <string>

namespace dlpsim {

/// What class of corruption or malformation a reader detected. Text-path
/// failures use kBadText; stream-level I/O failures use kIo.
enum class TraceErrorKind {
  kNone = 0,        // no error (default-constructed)
  kBadText,         // malformed text line (op/address/pc)
  kIo,              // stream read/write error
  kBadMagic,        // packed: first bytes are not "DLPT"
  kBadVersion,      // packed: unsupported format version
  kBadHeader,       // packed: truncated or inconsistent header
  kCrcMismatch,     // packed: block or metadata CRC check failed
  kTruncated,       // packed: stream ended inside a block or footer
  kOversizedBlock,  // packed: declared block length exceeds the limit
  kBadBlock,        // packed: block payload does not decode cleanly
};

const char* ToString(TraceErrorKind kind);

/// Typed parse failure: which line (text) or byte offset (packed) is
/// malformed, and why.
struct TraceParseError {
  std::size_t line = 0;  // 1-based text line; 0 for stream-level failures
  std::string message;
  TraceErrorKind kind = TraceErrorKind::kNone;
  std::size_t offset = 0;  // byte offset for packed-format failures

  bool ok() const { return kind == TraceErrorKind::kNone; }

  std::string ToString() const {
    return line == 0 ? message : "line " + std::to_string(line) + ": " + message;
  }
};

}  // namespace dlpsim
