// Recording frontend: captures the L1D access stream of a live
// simulation as a trace.
//
// TraceRecorder is an AccessObserver, so it plugs into L1DCache /
// GpuSimulator::AttachObserver and sees the raw pre-policy access stream
// (block address, PC, type) -- the same stream TraceReplayer feeds back
// into a cache. This is the "record once, re-simulate thousands of
// configs" half of the front/back split: run the expensive functional
// workload one time with a recorder attached, persist the trace (text or
// packed), then sweep policies/configs over it with the replayer.
//
// The recorder can stream into a PackedTraceWriter (bounded memory, for
// long runs) and/or collect into a vector (for tests and small runs).
// Recording is purely observational: attaching one never changes
// simulation results.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/observer.h"
#include "sim/types.h"
#include "trace/record.h"
#include "trace/writer.h"

namespace dlpsim::trace {

class TraceRecorder : public AccessObserver {
 public:
  /// Streams every access into `writer` (not owned; may be nullptr).
  explicit TraceRecorder(PackedTraceWriter* writer) : writer_(writer) {}
  /// Collects into *out (not owned; may be nullptr).
  explicit TraceRecorder(std::vector<TraceAccess>* out) : out_(out) {}
  TraceRecorder(PackedTraceWriter* writer, std::vector<TraceAccess>* out)
      : writer_(writer), out_(out) {}

  void OnAccess(std::uint32_t /*set*/, Addr block, Pc pc, AccessType type,
                bool /*hit*/) override {
    const TraceAccess a{block, pc, type};
    if (writer_ != nullptr) writer_->Append(a);
    if (out_ != nullptr) out_->push_back(a);
    ++recorded_;
  }

  std::uint64_t recorded() const { return recorded_; }

 private:
  PackedTraceWriter* writer_ = nullptr;
  std::vector<TraceAccess>* out_ = nullptr;
  std::uint64_t recorded_ = 0;
};

}  // namespace dlpsim::trace
