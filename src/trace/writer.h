// Streaming writer for the DLPT packed binary trace format.
//
// Records are buffered into fixed-size blocks (block_records each),
// delta/varint-encoded, LZ-compressed and CRC-stamped as they fill, so
// writing a trace of any length holds O(block) memory. The output byte
// stream is a pure function of (records, meta, block_records): two
// writers fed the same trace produce byte-identical files on any
// machine, which is what makes content hashing over packed bytes
// (trace/hash.h) format- and machine-independent.
//
// Usage:
//   PackedTraceWriter w(os, "app BFS\nscale 0.02\n");
//   for (...) w.Append(access);
//   if (!w.Finish()) report(w.error());
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/error.h"
#include "trace/format.h"
#include "trace/record.h"

namespace dlpsim::trace {

class PackedTraceWriter {
 public:
  /// Writes the header immediately. `meta` is free-form "key value"
  /// line text (truncated writes surface via ok()/error()).
  explicit PackedTraceWriter(std::ostream& os, std::string_view meta = "",
                             std::uint32_t block_records =
                                 kCanonicalBlockRecords);

  /// Writers must be Finish()ed explicitly; destroying an unfinished
  /// writer abandons the (invalid, footerless) stream on purpose so a
  /// crashed producer can never masquerade as a complete trace.
  ~PackedTraceWriter() = default;

  void Append(const TraceAccess& a);

  /// Flushes the final partial block and writes the footer. Returns
  /// ok(). Append/Finish after Finish are invalid.
  bool Finish();

  bool ok() const { return error_.kind == TraceErrorKind::kNone; }
  const TraceParseError& error() const { return error_; }
  std::uint64_t appended() const { return total_; }

 private:
  void FlushBlock();
  void Emit(const std::string& bytes);

  std::ostream* os_;
  std::uint32_t block_records_;
  std::vector<TraceAccess> pending_;
  std::uint64_t total_ = 0;
  bool finished_ = false;
  TraceParseError error_;
};

/// Packs a whole in-memory trace in one call.
bool WritePackedTrace(std::ostream& os, const std::vector<TraceAccess>& records,
                      std::string_view meta = "",
                      std::uint32_t block_records = kCanonicalBlockRecords);

}  // namespace dlpsim::trace
