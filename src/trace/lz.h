// Self-contained byte-oriented LZ77 compressor for packed trace blocks.
//
// The framing mirrors LZ4's token scheme (the same idea McSimA+'s
// TraceGen gets from snappy: fast byte-wise compression of already
// delta-encoded streams, no entropy coder, no external dependency):
//
//   sequence := token | lit-ext* | literals | offset16 | match-ext*
//   token    := (literal_len min(15)) << 4 | (match_len - 4, min(15))
//
// Nibble value 15 means "extended": further length bytes follow, each
// adding 0..255, terminated by a byte < 255. The 2-byte little-endian
// offset points back 1..65535 bytes; matches are at least 4 bytes. The
// final sequence carries literals only: when the compressed stream ends
// right after a sequence's literals, there is no match part.
//
// Decompression is strictly bounds-checked: any out-of-range offset,
// overlong length or truncated field fails cleanly (no OOB access), so
// hostile compressed payloads surface as typed block errors upstream.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace dlpsim::trace {

/// Compresses `src`. The output never exceeds LzMaxCompressedSize(src
/// size). Deterministic: same input, same bytes out.
std::string LzCompress(std::string_view src);

/// Worst-case compressed size for `raw_size` input bytes (all literals).
std::size_t LzMaxCompressedSize(std::size_t raw_size);

/// Decompresses `src` into exactly `raw_size` bytes appended to *out
/// (cleared first). Returns false on malformed input: truncated fields,
/// offset past the output start, or a size mismatch.
bool LzDecompress(std::string_view src, std::size_t raw_size,
                  std::string* out);

}  // namespace dlpsim::trace
