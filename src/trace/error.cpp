#include "trace/error.h"

namespace dlpsim {

const char* ToString(TraceErrorKind kind) {
  switch (kind) {
    case TraceErrorKind::kNone: return "none";
    case TraceErrorKind::kBadText: return "bad-text";
    case TraceErrorKind::kIo: return "io";
    case TraceErrorKind::kBadMagic: return "bad-magic";
    case TraceErrorKind::kBadVersion: return "bad-version";
    case TraceErrorKind::kBadHeader: return "bad-header";
    case TraceErrorKind::kCrcMismatch: return "crc-mismatch";
    case TraceErrorKind::kTruncated: return "truncated";
    case TraceErrorKind::kOversizedBlock: return "oversized-block";
    case TraceErrorKind::kBadBlock: return "bad-block";
  }
  return "unknown";
}

}  // namespace dlpsim
