#include "trace/text.h"

#include <limits>
#include <sstream>

namespace dlpsim {

namespace trace {

LineKind ParseTraceLine(const std::string& line, TraceAccess* out,
                        std::string* message) {
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '#') {
    return LineKind::kBlank;
  }

  std::istringstream ls(line);
  std::string op;
  std::string addr_str;
  std::string pc_str;
  if (!(ls >> op >> addr_str >> pc_str)) {
    *message = "expected 'L|S <address> <pc>', got '" + line + "'";
    return LineKind::kBad;
  }
  if (op != "L" && op != "S") {
    *message = "unknown op '" + op + "' (expected L or S)";
    return LineKind::kBad;
  }
  std::string trailing;
  if (ls >> trailing) {
    *message = "trailing garbage '" + trailing + "'";
    return LineKind::kBad;
  }
  out->type = op == "L" ? AccessType::kLoad : AccessType::kStore;
  // Parse through stoull with a leading-sign check: both istream>> on
  // unsigned and stoull silently wrap negative inputs to huge values, so
  // "-5" must be rejected explicitly rather than replayed as 2^64-5.
  try {
    if (addr_str.empty() || addr_str[0] == '-' || addr_str[0] == '+') {
      *message = "bad address '" + addr_str + "'";
      return LineKind::kBad;
    }
    std::size_t consumed = 0;
    out->addr = std::stoull(addr_str, &consumed, 0);  // 0x... or decimal
    if (consumed != addr_str.size()) {
      *message = "bad address '" + addr_str + "'";
      return LineKind::kBad;
    }
  } catch (const std::exception&) {
    *message = "bad address '" + addr_str + "'";
    return LineKind::kBad;
  }
  try {
    if (pc_str.empty() || pc_str[0] == '-' || pc_str[0] == '+') {
      *message = "bad pc '" + pc_str + "'";
      return LineKind::kBad;
    }
    std::size_t consumed = 0;
    const std::uint64_t pc = std::stoull(pc_str, &consumed, 0);
    if (consumed != pc_str.size() ||
        pc > std::numeric_limits<Pc>::max()) {
      *message = "bad pc '" + pc_str + "'";
      return LineKind::kBad;
    }
    out->pc = static_cast<Pc>(pc);
  } catch (const std::exception&) {
    *message = "bad pc '" + pc_str + "'";
    return LineKind::kBad;
  }
  return LineKind::kAccess;
}

}  // namespace trace

std::vector<TraceAccess> ParseTrace(std::istream& in, std::string* error) {
  std::vector<TraceAccess> trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    TraceAccess access;
    std::string message;
    switch (trace::ParseTraceLine(line, &access, &message)) {
      case trace::LineKind::kAccess:
        trace.push_back(access);
        break;
      case trace::LineKind::kBlank:
        break;
      case trace::LineKind::kBad:
        if (error != nullptr) {
          *error += "line " + std::to_string(line_no) + ": " + message + "\n";
        }
        break;
    }
  }
  return trace;
}

bool ParseTraceStrict(std::istream& in, std::vector<TraceAccess>* out,
                      TraceParseError* error) {
  out->clear();
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    TraceAccess access;
    std::string message;
    switch (trace::ParseTraceLine(line, &access, &message)) {
      case trace::LineKind::kAccess:
        out->push_back(access);
        break;
      case trace::LineKind::kBlank:
        break;
      case trace::LineKind::kBad:
        if (error != nullptr) {
          error->line = line_no;
          error->message = std::move(message);
          error->kind = TraceErrorKind::kBadText;
        }
        return false;
    }
  }
  // A read error (I/O failure, not EOF) means the trace is truncated in a
  // way the line loop cannot see.
  if (in.bad()) {
    if (error != nullptr) {
      error->line = 0;
      error->message = "stream read error after line " + std::to_string(line_no);
      error->kind = TraceErrorKind::kIo;
    }
    return false;
  }
  return true;
}

}  // namespace dlpsim
