// Streaming trace frontends: a pull-based iterator over TraceAccess
// records with bounded memory, independent of where the records live.
//
// This is the McSimA+-style front/back split for dlpsim: producers
// (workload generators, the GpuSimulator recorder, real-GPU traces)
// write a trace once; every timing consumer (TraceReplayer, the verify
// fuzzer's replay path, the serve layer) pulls from a TraceSource and is
// agnostic to whether the bytes are the text grammar or the DLPT packed
// binary format. `OpenTraceFile` sniffs the 4-byte magic and picks the
// right implementation, so tools accept either format everywhere.
//
// Usage:
//   TraceAccess a;
//   while (src.Next(&a)) consume(a);
//   if (!src.ok()) report(src.error());
//
// Next() never blocks on more than one text line / one packed block of
// input; both implementations hold O(block) memory regardless of trace
// length.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "trace/error.h"
#include "trace/record.h"

namespace dlpsim::trace {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Pulls the next record. Returns false at end-of-stream or on error;
  /// check ok() to tell the two apart. After false, every further call
  /// returns false.
  virtual bool Next(TraceAccess* out) = 0;

  bool ok() const { return error_.kind == TraceErrorKind::kNone; }
  const TraceParseError& error() const { return error_; }

  /// Records delivered so far.
  std::uint64_t delivered() const { return delivered_; }

 protected:
  TraceParseError error_;
  std::uint64_t delivered_ = 0;
};

/// In-memory source (non-owning view over a vector).
class VectorTraceSource : public TraceSource {
 public:
  /// Non-owning: `records` must outlive the source (rvalues rejected).
  explicit VectorTraceSource(const std::vector<TraceAccess>& records)
      : records_(&records) {}
  explicit VectorTraceSource(std::vector<TraceAccess>&&) = delete;
  bool Next(TraceAccess* out) override;

 private:
  const std::vector<TraceAccess>* records_;
  std::size_t pos_ = 0;
};

/// Streams the text grammar (trace/text.h) with strict semantics: the
/// first malformed line stops the stream with a typed error, exactly
/// like ParseTraceStrict.
class TextTraceSource : public TraceSource {
 public:
  /// Non-owning: `in` must outlive the source.
  explicit TextTraceSource(std::istream& in) : in_(&in) {}
  /// Owning variant (used by OpenTraceFile).
  explicit TextTraceSource(std::unique_ptr<std::istream> in)
      : owned_(std::move(in)), in_(owned_.get()) {}

  bool Next(TraceAccess* out) override;

 private:
  std::unique_ptr<std::istream> owned_;
  std::istream* in_;
  std::size_t line_no_ = 0;
  bool done_ = false;
};

/// Streams the DLPT packed binary format (trace/format.h), one
/// CRC-checked block at a time. The header (including metadata) is read
/// lazily on the first Next()/meta() call; any corruption surfaces as a
/// typed error, never a crash or a silent partial read: a stream that
/// ends without a valid footer is kTruncated even if every block before
/// it was intact.
class PackedTraceSource : public TraceSource {
 public:
  explicit PackedTraceSource(std::istream& in) : in_(&in) {}
  explicit PackedTraceSource(std::unique_ptr<std::istream> in)
      : owned_(std::move(in)), in_(owned_.get()) {}

  bool Next(TraceAccess* out) override;

  /// Metadata text from the header ("" until the header is read / when
  /// the trace carries none). Forces the header read.
  const std::string& meta();

 private:
  bool ReadHeader();
  bool ReadBlock();  // false at footer or error
  bool Fail(TraceErrorKind kind, const std::string& message);

  std::unique_ptr<std::istream> owned_;
  std::istream* in_;
  std::string meta_;
  bool header_read_ = false;
  bool done_ = false;
  std::vector<TraceAccess> block_;   // decoded records of the current block
  std::size_t block_pos_ = 0;
  std::uint64_t offset_ = 0;         // bytes consumed (for error reports)
};

/// Opens `path` and returns a source for whichever format the file is in
/// (sniffs the DLPT magic; everything else is treated as text). Returns
/// nullptr with *error filled when the file cannot be opened.
std::unique_ptr<TraceSource> OpenTraceFile(const std::string& path,
                                           TraceParseError* error);

/// Drains `src` into *out. Returns false with *error on a source error.
bool ReadAllRecords(TraceSource& src, std::vector<TraceAccess>* out,
                    TraceParseError* error);

}  // namespace dlpsim::trace
