// The text trace grammar: parsing one line, whole streams, and the
// lenient/strict entry points that historically lived in
// analysis/trace_replay.h (still re-exported from there).
//
// Format, one access per line (comments start with '#'):
//     L <hex-or-dec address> <pc>
//     S <hex-or-dec address> <pc>
// e.g. "L 0x1f80 12". Addresses are bytes; pc is the load/store PC used
// by DLP's PDPT.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "trace/error.h"
#include "trace/record.h"

namespace dlpsim {

namespace trace {

enum class LineKind { kAccess, kBlank, kBad };

/// Parses one trace line into `out`. Shared by every text consumer
/// (lenient parser, strict parser, TextTraceSource) so they can never
/// drift apart on what "valid" means.
LineKind ParseTraceLine(const std::string& line, TraceAccess* out,
                        std::string* message);

}  // namespace trace

/// Parses the text format above. Invalid lines are reported via the
/// optional error output and skipped (lenient mode, for exploratory use
/// on dirty traces).
std::vector<TraceAccess> ParseTrace(std::istream& in,
                                    std::string* error = nullptr);

/// Strict variant: stops at the FIRST malformed, truncated or trailing-
/// garbage line and reports it as a typed error instead of silently
/// replaying a partial trace. Returns false (with *error filled and *out
/// holding every access before the bad line) on failure. Tools replaying
/// user-supplied trace files should use this.
bool ParseTraceStrict(std::istream& in, std::vector<TraceAccess>* out,
                      TraceParseError* error);

}  // namespace dlpsim
