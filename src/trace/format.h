// The DLPT packed binary trace format.
//
// Byte layout (all integers little-endian):
//
//   offset size field
//   0      4    magic "DLPT"
//   4      4    u32 format version (currently 1)
//   8      4    u32 meta_len M  (<= kMaxMetaBytes)
//   12     4    u32 crc32(meta)
//   16     M    metadata text ("key value" lines, may be empty)
//   -- data blocks, repeated --
//   +0     4    u32 comp_len C  (0 terminates the block list)
//   +4     4    u32 raw_len R   (encoded payload bytes, <= kMaxBlockRawBytes)
//   +8     4    u32 record count N in this block (>= 1)
//   +12    4    u32 crc32(compressed payload)
//   +16    C    payload (trace/lz.h compressed record stream)
//   -- footer --
//   +0     4    u32 0 (terminator)
//   +4     8    u64 total record count
//   +12    4    u32 crc32 of the preceding 8 count bytes
//
// Record stream inside a block (before compression), per record:
//
//   flags   1 byte: bit0 = 1 for store, 0 for load; bits 1..7 reserved 0
//   d_addr  varint zigzag(addr - prev_addr)   (wrapping 64-bit delta)
//   d_pc    varint zigzag(pc - prev_pc)
//
// prev_addr/prev_pc start at 0 in every block, so blocks decode
// independently (a future seekable index can jump straight to one).
// Deltas use two's-complement wrapping: address wraparound across 2^64
// round-trips exactly. Every multi-byte structure is CRC-protected, and
// every declared length is bounds-checked before allocation, so a
// truncated or corrupted file surfaces as a typed TraceParseError --
// never a crash or a silent partial read.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/error.h"
#include "trace/record.h"

namespace dlpsim::trace {

inline constexpr char kMagic[4] = {'D', 'L', 'P', 'T'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;   // fixed part, before meta
inline constexpr std::size_t kBlockHeaderBytes = 16;
inline constexpr std::size_t kFooterBytes = 16;   // terminator+count+crc
inline constexpr std::size_t kMaxMetaBytes = 1u << 20;        // 1 MiB
inline constexpr std::size_t kMaxBlockRawBytes = 4u << 20;    // 4 MiB
/// Records per block used by writers unless overridden; also the block
/// size of the *canonical* packed form that content hashes are computed
/// over (trace/hash.h) -- changing it invalidates every content ref.
inline constexpr std::uint32_t kCanonicalBlockRecords = 4096;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the standard zlib CRC.
std::uint32_t Crc32(std::string_view data);
std::uint32_t Crc32Update(std::uint32_t crc, std::string_view data);

// --- primitive codecs (exposed for tests) ---

/// LEB128 unsigned varint.
void PutVarint(std::string* out, std::uint64_t v);
bool GetVarint(std::string_view src, std::size_t* pos, std::uint64_t* v);

/// Zigzag signed<->unsigned mapping over 64 bits.
std::uint64_t ZigzagEncode(std::int64_t v);
std::int64_t ZigzagDecode(std::uint64_t v);

// --- block codec ---

/// Delta/varint-encodes `records` (uncompressed block payload).
std::string EncodeBlockPayload(const std::vector<TraceAccess>& records,
                               std::size_t first, std::size_t count);

/// Decodes exactly `count` records from an uncompressed payload,
/// appending to *out. Fails (kBadBlock in *error) on reserved flag bits,
/// varint overruns, or payload bytes left over / missing.
bool DecodeBlockPayload(std::string_view payload, std::size_t count,
                        std::vector<TraceAccess>* out,
                        TraceParseError* error);

// --- little-endian integer helpers (exposed for the reader/writer) ---

void PutU32(std::string* out, std::uint32_t v);
void PutU64(std::string* out, std::uint64_t v);
std::uint32_t GetU32(const char* p);
std::uint64_t GetU64(const char* p);

/// Renders the fixed header + metadata section.
std::string EncodeHeader(std::string_view meta);

/// Renders one complete block (header + compressed payload) for
/// records [first, first+count).
std::string EncodeBlock(const std::vector<TraceAccess>& records,
                        std::size_t first, std::size_t count);

/// Renders the footer for a stream of `total_records`.
std::string EncodeFooter(std::uint64_t total_records);

}  // namespace dlpsim::trace
