// Format-independent trace content hashing.
//
// A trace's content hash is FNV-1a 64 over its *canonical packed bytes*:
// the DLPT stream produced with empty metadata and the canonical block
// size (kCanonicalBlockRecords). Text and packed files holding the same
// record sequence therefore hash identically -- the serve layer keys its
// content-addressed result cache on this ref, so packing a trace never
// invalidates cached experiment results, and two clients submitting the
// same workload in different formats coalesce onto one cache entry.
//
// Hashing is streaming (the canonical bytes are folded into the hash as
// they are produced, never materialized), so it is O(block) memory for
// traces of any length.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "trace/error.h"
#include "trace/source.h"

namespace dlpsim::trace {

/// Drains `src` and returns the content hash of its record sequence in
/// *hash. Returns false with *error on a source error.
bool TraceContentHash(TraceSource& src, std::uint64_t* hash,
                      TraceParseError* error);

/// Content hash of a trace file in either format. Returns false with
/// *error when the file cannot be opened or parsed.
bool TraceFileHash(const std::string& path, std::uint64_t* hash,
                   TraceParseError* error);

/// Serve-layer trace reference for a trace file: "trace-<16 hex digits>".
/// Empty string (with *error filled) on failure.
std::string TraceFileRef(const std::string& path, TraceParseError* error);

/// FNV-1a 64 over raw bytes (exposed for tests; matches serve::Fnv1a64).
std::uint64_t FnvHash64(std::string_view data, std::uint64_t seed);

}  // namespace dlpsim::trace
