// The unit record of a memory-access trace, plus its canonical text
// rendering.
//
// `TraceAccess` used to live in analysis/trace_replay.h; it moved here so
// the trace subsystem (packed format, streaming sources, content hashing)
// does not depend on the replayer. analysis/ re-exports it, so existing
// `dlpsim::TraceAccess` users are unaffected.
//
// Canonical text form: one access per line,
//
//     L 0x<hex address> <decimal pc>\n
//     S 0x<hex address> <decimal pc>\n
//
// lowercase hex without leading zeros, single spaces, trailing newline on
// every line, no comments. Every (records -> text) path in the project
// goes through CanonicalTextLine/WriteTextTrace, so "pack then unpack"
// is byte-identical to canonicalizing the original text, and the content
// hash of a trace (trace/hash.h) is format independent.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.h"

namespace dlpsim {

struct TraceAccess {
  Addr addr = 0;
  Pc pc = 0;
  AccessType type = AccessType::kLoad;
};

inline bool operator==(const TraceAccess& a, const TraceAccess& b) {
  return a.addr == b.addr && a.pc == b.pc && a.type == b.type;
}
inline bool operator!=(const TraceAccess& a, const TraceAccess& b) {
  return !(a == b);
}

namespace trace {

/// Appends the canonical text line for `a` (including '\n') to `out`.
void AppendCanonicalLine(const TraceAccess& a, std::string* out);

/// Canonical text line for one record (convenience for tests/tools).
std::string CanonicalTextLine(const TraceAccess& a);

/// Writes the whole trace in canonical text form.
void WriteTextTrace(std::ostream& os, const std::vector<TraceAccess>& records);

/// Canonical text of the whole trace as a string.
std::string CanonicalText(const std::vector<TraceAccess>& records);

}  // namespace trace
}  // namespace dlpsim
