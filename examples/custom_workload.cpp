// Custom workload example: build a kernel with the public ProgramBuilder
// API, sweep one of its parameters, and watch how the DLP controller
// responds. The scenario: a database-style probe kernel whose hash-table
// hot set grows until it falls out of every protection reach.
//
//   ./custom_workload [warps_per_sm]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "analysis/report.h"
#include "core/pdpt.h"
#include "gpu/simulator.h"
#include "sim/config.h"
#include "workloads/registry.h"

using namespace dlpsim;

namespace {

/// A probe kernel: stream of keys (always misses), a per-warp cursor
/// (tiny protectable working set), and a hash-table region of `ws_lines`
/// lines per warp whose protectability is what we sweep.
std::unique_ptr<Program> ProbeKernel(std::uint64_t ws_lines) {
  ProgramBuilder b(/*iterations=*/120);
  b.LoadStream()            // key stream: compulsory misses
      .Alu(12)
      .LoadIndirect(8192, 0.0, 0xabc)  // bucket chase: churn
      .Alu(12)
      .LoadIndirect(8192, 0.0, 0xabd)  // overflow chain: churn
      .Alu(12)
      .LoadPrivate(ws_lines)  // hash-table window under test
      .StoreStream()          // result emit
      .Alu(12);
  return b.Build();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t warps = argc > 1 ? std::atoi(argv[1]) : 24;
  std::cout << "Custom workload: hash-probe kernel, " << warps
            << " warps/SM. Sweeping the per-warp hash window.\n"
            << "Rule of thumb: per-set reuse distance ~= S * total "
               "transactions * warps / 32 sets;\nprotection reaches query "
               "distances <= 15, the 4-way LRU about 4 insertions.\n\n";

  TextTable t({"window S", "base IPC", "DLP IPC", "speedup", "base hit%",
               "DLP hit%", "DLP bypass", "PD(window) SM0"});
  for (std::uint64_t ws : {1, 2, 3, 4, 8, 16}) {
    auto program = ProbeKernel(ws);

    GpuSimulator base(SimConfig::Baseline16KB(), program.get(), warps);
    const Metrics mb = base.Run();

    GpuSimulator dlp(SimConfig::WithPolicy(PolicyKind::kDlp), program.get(),
                     warps);
    const Metrics md = dlp.Run();

    // Report the PD DLP converged to for the swept load (PC of the third
    // memory instruction).
    Pc window_pc = 0;
    int seen = 0;
    for (const Instruction& insn : program->body()) {
      if (insn.op == OpClass::kLoad && ++seen == 4) window_pc = insn.pc;
    }
    const std::uint32_t pd =
        dlp.cores()[0].l1d().policy().PdForPc(window_pc);

    t.AddRow({std::to_string(ws), Fmt(mb.ipc(), 1), Fmt(md.ipc(), 1),
              Fmt(mb.ipc() == 0 ? 0 : md.ipc() / mb.ipc(), 3),
              Pct(mb.l1d_hit_rate()), Pct(md.l1d_hit_rate()),
              std::to_string(md.l1d_bypasses), std::to_string(pd)});
  }
  std::cout << t.Render() << '\n';
  std::cout << "Expected: small windows are protected (high PD, hit-rate "
               "gain); once the window's reuse distance leaves the PD "
               "reach the controller stops protecting it and gains fade "
               "to bypass-relief only.\n";
  return 0;
}
