// Quickstart: simulate one paper benchmark under the baseline L1D and
// under DLP, and print the headline metrics.
//
//   ./quickstart [APP] [SCALE]
//
// APP is a Table 2 abbreviation (default SRK); SCALE shrinks/grows the
// iteration count (default 1.0).
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/report.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "SRK";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  const Workload wl = MakeWorkload(app, scale);
  std::cout << "App: " << wl.info.abbr << " (" << wl.info.name << ", "
            << wl.info.suite << ", "
            << (wl.info.cache_insufficient ? "Cache Insufficient"
                                           : "Cache Sufficient")
            << ")\n";
  std::cout << "Static memory access ratio: "
            << Pct(wl.program->MemoryAccessRatio(), 2) << ", "
            << wl.program->NumMemoryPcs() << " memory PCs, "
            << wl.warps_per_sm << " warps/SM\n\n";

  // Both cells through the shared harness: cached on disk and run via
  // the parallel executor (DLPSIM_JOBS).
  const auto results = bench::RunGrid({app}, {"base", "dlp"}, scale, 0);
  const Metrics& base = results[0].metrics;
  const Metrics& dlp = results[1].metrics;

  TextTable t({"metric", "baseline 16KB", "DLP 16KB", "DLP/base"});
  auto row = [&](const std::string& name, double b, double d, int dec = 3) {
    t.AddRow({name, Fmt(b, dec), Fmt(d, dec),
              Fmt(b == 0.0 ? 0.0 : d / b, 3)});
  };
  row("IPC (thread insns/cycle)", base.ipc(), dlp.ipc());
  row("core cycles", static_cast<double>(base.core_cycles),
      static_cast<double>(dlp.core_cycles), 0);
  row("L1D load hit rate", base.l1d_hit_rate(), dlp.l1d_hit_rate());
  row("L1D load hits", static_cast<double>(base.l1d_load_hits),
      static_cast<double>(dlp.l1d_load_hits), 0);
  row("L1D traffic (serviced accesses)",
      static_cast<double>(base.l1d_traffic()),
      static_cast<double>(dlp.l1d_traffic()), 0);
  row("L1D bypasses", static_cast<double>(base.l1d_bypasses),
      static_cast<double>(dlp.l1d_bypasses), 0);
  row("L1D evictions", static_cast<double>(base.l1d_evictions),
      static_cast<double>(dlp.l1d_evictions), 0);
  row("L1D reservation-fail cycles",
      static_cast<double>(base.l1d_reservation_fails),
      static_cast<double>(dlp.l1d_reservation_fails), 0);
  row("interconnect bytes", static_cast<double>(base.icnt_bytes_total),
      static_cast<double>(dlp.icnt_bytes_total), 0);
  std::cout << t.Render() << '\n';

  std::cout << "Speedup with DLP: "
            << Fmt(base.ipc() == 0 ? 0 : dlp.ipc() / base.ipc(), 3) << "x\n";
  return bench::ExitStatus();
}
