// Policy comparison: run one benchmark under every L1D management scheme
// (plus the larger cache configurations) and print a side-by-side metric
// breakdown -- the single-app version of the paper's Figs. 10-13.
//
//   ./policy_comparison [APP] [SCALE]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "harness.h"
#include "workloads/registry.h"

using namespace dlpsim;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "KM";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  // Harness configuration names paired with their display labels; rows
  // come back from RunGrid in this order.
  const std::vector<std::string> configs = bench::ConfigNames();
  const std::vector<std::string> labels = {"16KB(base)", "Stall-Bypass",
                                           "Global-Prot", "DLP",
                                           "32KB",        "64KB"};

  const Workload wl = MakeWorkload(app, scale);
  std::cout << "== " << wl.info.abbr << " (" << wl.info.name << ", "
            << (wl.info.cache_insufficient ? "CI" : "CS") << ", "
            << wl.warps_per_sm << " warps/SM, ratio "
            << Pct(wl.program->MemoryAccessRatio(), 1) << ") ==\n\n";

  TextTable t({"config", "IPC", "cycles", "hitrate", "hits", "traffic",
               "bypass", "evict", "stallcyc", "ldlat", "icnt MB", "dram rd",
               "done"});
  const auto results = bench::RunGrid({app}, configs, scale, 0);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const Metrics& m = results[c].metrics;
    t.AddRow({labels[c], Fmt(m.ipc(), 1), std::to_string(m.core_cycles),
              Pct(m.l1d_hit_rate()), std::to_string(m.l1d_load_hits),
              std::to_string(m.l1d_traffic()),
              std::to_string(m.l1d_bypasses),
              std::to_string(m.l1d_evictions),
              std::to_string(m.ldst_stall_cycles),
              Fmt(m.avg_load_latency(), 0),
              Fmt(static_cast<double>(m.icnt_bytes_total) / 1e6, 1),
              std::to_string(m.dram_reads),
              m.completed != 0 ? "y" : "TIMEOUT"});
  }
  std::cout << t.Render();
  return bench::ExitStatus();
}
