// Trace inspector: run one workload under DLP with full tracing and
// print what the protection controller actually did over time.
//
//   ./trace_inspector [APP] [SCALE] [OUT_DIR]
//
// Prints, per PDPT sample window (SM0): the window's TDA/VTA hit totals,
// the Fig. 9 update path taken, the mean protection distance before and
// after the recompute, and the bypasses the SM issued inside the window.
// Follows with the whole-GPU telemetry timeline (hits / bypasses /
// protected lines per interval). With OUT_DIR set, also writes the JSON
// report, Chrome trace (open in Perfetto or chrome://tracing) and
// timeline CSV for the run.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "core/pdpt.h"
#include "gpu/simulator.h"
#include "obs/exporters.h"
#include "obs/timeline.h"
#include "obs/trace_sink.h"
#include "sim/config.h"
#include "workloads/registry.h"

using namespace dlpsim;

namespace {

const char* PathName(std::uint64_t path) {
  switch (static_cast<PdpTable::UpdatePath>(path)) {
    case PdpTable::UpdatePath::kIncrease:
      return "increase";
    case PdpTable::UpdatePath::kDecrease:
      return "decrease";
    case PdpTable::UpdatePath::kHold:
      return "hold";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "BFS";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;
  const std::string out_dir = argc > 3 ? argv[3] : "";

  const Workload wl = MakeWorkload(app, scale);
  const SimConfig cfg = SimConfig::WithPolicy(PolicyKind::kDlp);

  GpuSimulator gpu(cfg, wl.program.get(), wl.warps_per_sm);
  TraceSink sink(1u << 20);
  TimelineSampler timeline(2000);
  gpu.SetTraceSink(&sink);
  gpu.SetTimeline(&timeline);

  const Metrics m = gpu.Run();

  std::cout << "== " << wl.info.abbr << " (" << wl.info.name
            << ") under DLP ==\n";
  std::cout << m.core_cycles << " core cycles, IPC " << Fmt(m.ipc())
            << ", hit rate " << Pct(m.l1d_hit_rate()) << ", "
            << m.l1d_bypasses << " bypasses\n";
  std::cout << sink.total_emitted() << " trace events ("
            << sink.dropped() << " dropped by the ring buffer)\n\n";

  // --- per-sample-window controller activity, SM0 ---
  std::cout << "PDPT sample windows (SM0):\n";
  TextTable windows({"window", "end cycle", "TDA hits", "VTA hits", "path",
                     "mean PD", "bypasses", "PL sat"});
  const std::vector<TraceEvent> events = sink.InOrder();
  Cycle window_start = 0;
  std::uint32_t index = 0;
  std::uint64_t bypasses_in_window = 0;
  std::uint64_t saturations_in_window = 0;
  for (const TraceEvent& e : events) {
    if (e.sm != 0) continue;
    if (e.kind == TraceEventKind::kBypass) ++bypasses_in_window;
    if (e.kind == TraceEventKind::kPlSaturated) ++saturations_in_window;
    if (e.kind != TraceEventKind::kPdSample) continue;
    windows.AddRow({std::to_string(index++), std::to_string(e.cycle),
                    std::to_string(e.block), std::to_string(e.pc),
                    PathName(e.arg2),
                    Fmt(static_cast<double>(e.arg0) / 1000.0, 2) + " -> " +
                        Fmt(static_cast<double>(e.arg1) / 1000.0, 2),
                    std::to_string(bypasses_in_window),
                    std::to_string(saturations_in_window)});
    window_start = e.cycle;
    bypasses_in_window = 0;
    saturations_in_window = 0;
  }
  (void)window_start;
  std::cout << windows.Render() << '\n';

  // --- whole-GPU telemetry timeline ---
  std::cout << "Telemetry timeline (interval " << timeline.interval()
            << " core cycles, whole GPU):\n";
  TextTable series({"cycle", "accesses", "hits", "bypasses", "evictions",
                    "mean PD", "prot lines"});
  for (const TimelineSample& s : timeline.samples()) {
    series.AddRow({std::to_string(s.cycle),
                   std::to_string(s.delta.l1d_accesses),
                   std::to_string(s.delta.l1d_load_hits),
                   std::to_string(s.delta.l1d_bypasses),
                   std::to_string(s.delta.l1d_evictions),
                   Fmt(s.policy.mean_pd, 2),
                   std::to_string(s.policy.protected_lines)});
  }
  std::cout << series.Render() << '\n';

  // --- optional machine-readable export ---
  if (!out_dir.empty()) {
    namespace fs = std::filesystem;
    fs::create_directories(out_dir);
    const RunReportInfo info{.app = app, .config = "dlp", .scale = scale};
    const fs::path report = fs::path(out_dir) / (app + "_dlp.report.json");
    const fs::path chrome = fs::path(out_dir) / (app + "_dlp.trace.json");
    const fs::path csv = fs::path(out_dir) / (app + "_dlp.timeline.csv");
    {
      std::ofstream os(report);
      WriteJsonReport(os, info, cfg, m, &timeline, &sink);
    }
    {
      std::ofstream os(chrome);
      WriteChromeTrace(os, sink, &timeline, cfg.num_cores);
    }
    {
      std::ofstream os(csv);
      WriteTimelineCsv(os, timeline);
    }
    std::cout << "wrote " << report.string() << ", " << chrome.string()
              << ", " << csv.string() << '\n';
  }
  return 0;
}
