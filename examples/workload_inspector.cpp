// Workload inspector: deep-dive into one benchmark's reuse behaviour and
// the DLP controller's reaction to it.
//
//   ./workload_inspector [APP] [SCALE]
//
// Prints the measured global and per-PC reuse-distance distributions
// (paper Figs. 3/7 semantics), the reuse-data miss rate (Fig. 4), and the
// protection distances DLP converged to for every memory PC.
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/per_sm_profiler.h"
#include "analysis/report.h"
#include "core/pdpt.h"
#include "gpu/simulator.h"
#include "sim/config.h"
#include "workloads/registry.h"

using namespace dlpsim;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "BFS";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  const Workload wl = MakeWorkload(app, scale);
  std::cout << "== " << wl.info.abbr << " (" << wl.info.name << ") ==\n";
  std::cout << "memory ratio " << Pct(wl.program->MemoryAccessRatio(), 2)
            << ", " << wl.program->NumMemoryPcs() << " memory PCs\n\n";

  // --- profiling run on the baseline configuration ---
  const SimConfig base_cfg = SimConfig::Baseline16KB();
  GpuSimulator base(base_cfg, wl.program.get(), wl.warps_per_sm);
  PerSmProfiler prof(base_cfg.num_cores, base_cfg.l1d.geom.sets);
  prof.AttachTo(base);
  const Metrics mb = base.Run();

  const RddHistogram global = prof.GlobalRdd();
  std::cout << "Global RDD (" << global.total() << " re-references of "
            << prof.accesses() << " accesses):\n";
  for (std::uint32_t b = 0; b < 4; ++b) {
    std::cout << "  " << kRdBucketNames[b] << ": "
              << Pct(global.fraction(b)) << '\n';
  }
  std::cout << "reuse-data miss rate: " << Pct(prof.reuse_miss_rate())
            << "  (compulsory excluded: " << prof.compulsory_accesses()
            << ")\n\n";

  TextTable rdd({"PC", "rd 1~4", "rd 5~8", "rd 9~64", "rd >65", "re-refs"});
  for (const auto& [pc, hist] : prof.PerPcRdd()) {
    rdd.AddRow({std::to_string(pc), Pct(hist.fraction(0)),
                Pct(hist.fraction(1)), Pct(hist.fraction(2)),
                Pct(hist.fraction(3)), std::to_string(hist.total())});
  }
  std::cout << rdd.Render() << '\n';

  // --- DLP run: report converged protection distances ---
  const SimConfig dlp_cfg = SimConfig::WithPolicy(PolicyKind::kDlp);
  GpuSimulator dlp(dlp_cfg, wl.program.get(), wl.warps_per_sm);
  const Metrics md = dlp.Run();

  const PdpTable* pdpt = dlp.cores()[0].l1d().policy().pdpt();
  TextTable pds({"PC", "insn id", "final PD (SM0)"});
  for (const Instruction& insn : wl.program->body()) {
    if (insn.pattern == nullptr) continue;
    const std::uint32_t id = pdpt->IndexOf(insn.pc);
    pds.AddRow({std::to_string(insn.pc), std::to_string(id),
                std::to_string(pdpt->Pd(id))});
  }
  std::cout << pds.Render() << '\n';
  std::cout << "SM0 samples: " << pdpt->samples_taken
            << " (increase " << pdpt->increase_samples << ", decrease "
            << pdpt->decrease_samples << ")\n\n";

  TextTable cmp({"metric", "baseline", "DLP", "ratio"});
  auto row = [&](const std::string& n, double a, double b) {
    cmp.AddRow({n, Fmt(a), Fmt(b), Fmt(a == 0 ? 0 : b / a)});
  };
  row("IPC", mb.ipc(), md.ipc());
  row("L1D hit rate", mb.l1d_hit_rate(), md.l1d_hit_rate());
  row("L1D hits", static_cast<double>(mb.l1d_load_hits),
      static_cast<double>(md.l1d_load_hits));
  row("L1D traffic", static_cast<double>(mb.l1d_traffic()),
      static_cast<double>(md.l1d_traffic()));
  row("bypasses", static_cast<double>(mb.l1d_bypasses),
      static_cast<double>(md.l1d_bypasses));
  row("evictions", static_cast<double>(mb.l1d_evictions),
      static_cast<double>(md.l1d_evictions));
  std::cout << cmp.Render();
  return 0;
}
