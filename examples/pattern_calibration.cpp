// Pattern calibration: measures how workload-pattern parameters map to
// per-set reuse-distance buckets on the baseline cache geometry. This is
// the tool used to calibrate the 18 synthetic benchmarks against the
// paper's Fig. 3 profiles (see DESIGN.md).
//
//   ./pattern_calibration [warps_per_sm] [mem_pcs]
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>

#include "analysis/per_sm_profiler.h"
#include "analysis/report.h"
#include "gpu/simulator.h"
#include "sim/config.h"
#include "workloads/registry.h"

using namespace dlpsim;

namespace {

/// Builds a probe program: `mem_pcs` loads of the pattern under test per
/// iteration plus a little ALU padding, runs it, and returns the RDD of
/// the first probe PC.
RddHistogram Measure(std::uint32_t warps, std::uint32_t mem_pcs,
                     const std::function<ProgramBuilder&(ProgramBuilder&)>&
                         add_probe) {
  ProgramBuilder b(60);
  for (std::uint32_t i = 0; i < mem_pcs; ++i) {
    add_probe(b);
    b.Alu(8);
  }
  auto program = b.Build();

  SimConfig cfg = SimConfig::Baseline16KB();
  GpuSimulator gpu(cfg, program.get(), warps);
  PerSmProfiler prof(cfg.num_cores, cfg.l1d.geom.sets);
  prof.AttachTo(gpu);
  gpu.Run();

  // Aggregate over all probe PCs (they are statistically identical).
  RddHistogram sum;
  for (const auto& [pc, hist] : prof.PerPcRdd()) sum.Merge(hist);
  return sum;
}

void Report(TextTable& t, const std::string& label, const RddHistogram& h) {
  t.AddRow({label, Pct(h.fraction(0)), Pct(h.fraction(1)),
            Pct(h.fraction(2)), Pct(h.fraction(3)),
            std::to_string(h.total())});
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t warps = argc > 1 ? std::atoi(argv[1]) : 48;
  const std::uint32_t mem_pcs = argc > 2 ? std::atoi(argv[2]) : 4;

  std::cout << "warps/SM=" << warps << ", probe PCs per iteration="
            << mem_pcs << "\n\n";

  TextTable priv({"private ws", "rd 1~4", "rd 5~8", "rd 9~64", "rd >65",
                  "re-refs"});
  for (std::uint64_t ws : {1, 2, 3, 4, 6, 8, 12, 16, 24, 48}) {
    Report(priv, "S=" + std::to_string(ws),
           Measure(warps, mem_pcs, [&](ProgramBuilder& b) -> ProgramBuilder& {
             return b.LoadPrivate(ws);
           }));
  }
  std::cout << priv.Render() << '\n';

  TextTable shared({"shared tile", "rd 1~4", "rd 5~8", "rd 9~64", "rd >65",
                    "re-refs"});
  for (std::uint32_t share : {2, 4, 8, 16}) {
    for (std::uint64_t tile : {4, 16, 64}) {
      Report(shared,
             "L=" + std::to_string(tile) + ",d=" + std::to_string(share),
             Measure(warps, mem_pcs,
                     [&](ProgramBuilder& b) -> ProgramBuilder& {
                       return b.LoadShared(tile, share);
                     }));
    }
  }
  Report(shared, "L=48,d=all",
         Measure(warps, mem_pcs, [&](ProgramBuilder& b) -> ProgramBuilder& {
           return b.LoadShared(48, 0);
         }));
  std::cout << shared.Render() << '\n';

  TextTable ind({"indirect", "rd 1~4", "rd 5~8", "rd 9~64", "rd >65",
                 "re-refs"});
  for (std::uint64_t u : {64, 512, 4096}) {
    for (double s : {0.0, 0.6, 0.9}) {
      Report(ind, "U=" + std::to_string(u) + ",s=" + Fmt(s, 1),
             Measure(warps, mem_pcs,
                     [&](ProgramBuilder& b) -> ProgramBuilder& {
                       return b.LoadIndirect(u, s, 0x1234 + u);
                     }));
    }
  }
  std::cout << ind.Render();
  return 0;
}
