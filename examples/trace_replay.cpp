// Trace replay example: compare the four L1D management schemes on an
// access trace, either read from a file or generated in-process.
//
//   ./trace_replay [trace-file]
//
// Accepts either trace format (sniffed from the file): text, one access
// per line, "L <addr> <pc>" or "S <addr> <pc>" ('#' comments allowed;
// addresses hex or decimal), or the DLPT packed binary format written by
// tools/trace_pack. Without a file, a built-in demonstration trace is
// used: a thrashing scan interleaved with a hot reuse set -- the access
// pattern DLP was designed for.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "analysis/trace_replay.h"
#include "sim/config.h"
#include "sim/rng.h"

using namespace dlpsim;

namespace {

std::vector<TraceAccess> DemoTrace() {
  std::vector<TraceAccess> trace;
  Rng rng(2026);
  // 40k accesses: per "iteration", one hot line from a small set (PC 1),
  // one line from a medium working set (PC 2, the protectable band), and
  // two streaming lines (PCs 3 and 4).
  Addr stream_next = 1u << 24;
  for (int i = 0; i < 10000; ++i) {
    trace.push_back({(rng.Below(64)) * 128, 1, AccessType::kLoad});
    trace.push_back({(1u << 20) + (i % 256) * 128, 2, AccessType::kLoad});
    trace.push_back({stream_next, 3, AccessType::kLoad});
    stream_next += 128;
    trace.push_back({stream_next, 4, AccessType::kStore});
    stream_next += 128;
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<TraceAccess> trace;
  if (argc > 1) {
    // Format-agnostic strict read: a malformed or truncated trace (in
    // either format) is a typed error, not a silent replay of a prefix.
    TraceParseError err;
    auto src = trace::OpenTraceFile(argv[1], &err);
    if (src == nullptr || !trace::ReadAllRecords(*src, &trace, &err)) {
      std::cerr << argv[1] << ": " << err.ToString() << '\n';
      return 1;
    }
  } else {
    trace = DemoTrace();
    std::cout << "(no trace file given; using the built-in demo trace)\n";
  }
  std::cout << trace.size() << " accesses\n\n";

  TextTable t({"policy", "hit rate", "hits", "bypasses", "evictions",
               "stall cycles", "cycles"});
  for (PolicyKind policy :
       {PolicyKind::kBaseline, PolicyKind::kStallBypass,
        PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
    L1DConfig cfg = SimConfig::Baseline16KB().l1d;
    cfg.policy = policy;
    TraceReplayer replayer(cfg, /*fill_latency=*/200);
    const ReplayResult r = replayer.Replay(trace);
    t.AddRow({ToString(policy), Pct(r.hit_rate()),
              std::to_string(r.cache.load_hits),
              std::to_string(r.cache.bypasses),
              std::to_string(r.cache.evictions),
              std::to_string(r.stall_cycles), std::to_string(r.cycles)});
  }
  std::cout << t.Render();
  return 0;
}
