// Artifact round-trip: a reproducer written by the fuzzer must read back
// bit-identically (config, params, seed, trace), stay consumable by the
// plain trace parsers, and reject hand-edited files that would crash or
// mislead the replayer.
#include "verify/artifact.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

namespace dlpsim::verify {
namespace {

Artifact SampleArtifact() {
  Artifact a;
  a.config.policy = PolicyKind::kDlp;
  a.config.geom.sets = 8;
  a.config.geom.ways = 2;
  a.config.geom.line_bytes = 64;
  a.config.geom.index = IndexFunction::kLinear;
  a.config.write_policy = WritePolicy::kWriteEvict;
  a.config.mshr_entries = 3;
  a.config.mshr_max_merged = 2;
  a.config.miss_queue_entries = 5;
  a.config.prot.sample_accesses = 32;
  a.config.prot.sample_max_cycles = 1234;
  a.config.prot.pdpt_entries = 16;
  a.config.prot.insn_id_bits = 4;
  a.config.prot.pd_bits = 3;
  a.config.prot.vta_ways = 2;
  a.params.fill_latency = 17;
  a.params.drain_rate = 2;
  a.params.state_check_interval = 8;
  a.seed = 99;
  a.divergence = "access #4: stats mismatch: load_hits: real=1 oracle=2";
  a.trace = {
      {0x1000, 3, AccessType::kLoad},
      {0x2040, 4, AccessType::kStore},
      {0x1000, 3, AccessType::kLoad},
  };
  return a;
}

TEST(Artifact, RoundTripPreservesEverything) {
  const Artifact a = SampleArtifact();
  std::stringstream stream;
  WriteArtifact(stream, a);

  Artifact b;
  std::string error;
  ASSERT_TRUE(ReadArtifact(stream, &b, &error)) << error;

  EXPECT_EQ(b.config.policy, a.config.policy);
  EXPECT_EQ(b.config.geom.sets, a.config.geom.sets);
  EXPECT_EQ(b.config.geom.ways, a.config.geom.ways);
  EXPECT_EQ(b.config.geom.line_bytes, a.config.geom.line_bytes);
  EXPECT_EQ(b.config.geom.index, a.config.geom.index);
  EXPECT_EQ(b.config.write_policy, a.config.write_policy);
  EXPECT_EQ(b.config.mshr_entries, a.config.mshr_entries);
  EXPECT_EQ(b.config.mshr_max_merged, a.config.mshr_max_merged);
  EXPECT_EQ(b.config.miss_queue_entries, a.config.miss_queue_entries);
  EXPECT_EQ(b.config.prot.sample_accesses, a.config.prot.sample_accesses);
  EXPECT_EQ(b.config.prot.sample_max_cycles, a.config.prot.sample_max_cycles);
  EXPECT_EQ(b.config.prot.pdpt_entries, a.config.prot.pdpt_entries);
  EXPECT_EQ(b.config.prot.insn_id_bits, a.config.prot.insn_id_bits);
  EXPECT_EQ(b.config.prot.pd_bits, a.config.prot.pd_bits);
  EXPECT_EQ(b.config.prot.vta_ways, a.config.prot.vta_ways);
  EXPECT_EQ(b.params.fill_latency, a.params.fill_latency);
  EXPECT_EQ(b.params.drain_rate, a.params.drain_rate);
  EXPECT_EQ(b.params.state_check_interval, a.params.state_check_interval);
  EXPECT_EQ(b.seed, a.seed);
  EXPECT_EQ(b.divergence, a.divergence);
  ASSERT_EQ(b.trace.size(), a.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(b.trace[i].addr, a.trace[i].addr) << i;
    EXPECT_EQ(b.trace[i].pc, a.trace[i].pc) << i;
    EXPECT_EQ(b.trace[i].type, a.trace[i].type) << i;
  }
}

TEST(Artifact, ArtifactIsAlsoAPlainTrace) {
  // The whole point of the #@ format: any trace tool can consume a
  // reproducer directly.
  std::stringstream stream;
  WriteArtifact(stream, SampleArtifact());
  std::vector<TraceAccess> trace;
  TraceParseError error;
  EXPECT_TRUE(ParseTraceStrict(stream, &trace, &error)) << error.ToString();
  EXPECT_EQ(trace.size(), 3u);
}

TEST(Artifact, PlainTraceReadsWithDefaults) {
  std::istringstream in("L 0x80 1\nS 0x100 2\n");
  Artifact a;
  std::string error;
  ASSERT_TRUE(ReadArtifact(in, &a, &error)) << error;
  EXPECT_EQ(a.config.policy, PolicyKind::kBaseline);
  EXPECT_EQ(a.trace.size(), 2u);
}

TEST(Artifact, RejectsUnknownPolicy) {
  std::istringstream in("#@ policy turbo\nL 0x80 1\n");
  Artifact a;
  std::string error;
  EXPECT_FALSE(ReadArtifact(in, &a, &error));
  EXPECT_NE(error.find("policy"), std::string::npos) << error;
}

TEST(Artifact, RejectsInvalidConfig) {
  // 33 sets is not a power of two; a hand-edited artifact must fail the
  // same validation gate as every other config source.
  std::istringstream in("#@ sets 33\nL 0x80 1\n");
  Artifact a;
  std::string error;
  EXPECT_FALSE(ReadArtifact(in, &a, &error));
  EXPECT_NE(error.find("invalid"), std::string::npos) << error;
}

TEST(Artifact, RejectsMalformedTraceLine) {
  std::istringstream in("#@ policy dlp\nL 0x80\n");
  Artifact a;
  std::string error;
  EXPECT_FALSE(ReadArtifact(in, &a, &error));
  EXPECT_NE(error.find("trace"), std::string::npos) << error;
}

TEST(Artifact, RejectsBadMetadataNumber) {
  std::istringstream in("#@ sets banana\nL 0x80 1\n");
  Artifact a;
  std::string error;
  EXPECT_FALSE(ReadArtifact(in, &a, &error));
  EXPECT_NE(error.find("sets"), std::string::npos) << error;
}

TEST(Artifact, FileRoundTrip) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "dlpsim_artifact_test.trace";
  std::string error;
  ASSERT_TRUE(WriteArtifactFile(path.string(), SampleArtifact(), &error))
      << error;
  Artifact b;
  ASSERT_TRUE(ReadArtifactFile(path.string(), &b, &error)) << error;
  EXPECT_EQ(b.seed, 99u);
  std::filesystem::remove(path);
}

TEST(Artifact, MissingFileReportsError) {
  Artifact a;
  std::string error;
  EXPECT_FALSE(ReadArtifactFile("/nonexistent/artifact.trace", &a, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace dlpsim::verify
