// The differential harness end to end: clean agreement on fuzzed traces
// for every policy, field-level stats diffing, and -- the critical
// self-test -- a deliberately planted oracle bug must be caught and
// shrunk to a small reproducer. A harness that cannot catch a planted
// off-by-one would pass every real run vacuously.
#include "verify/differential.h"

#include <gtest/gtest.h>

#include "verify/fuzzer.h"

namespace dlpsim::verify {
namespace {

TEST(Differential, AgreesOnFuzzedTracesForEveryPolicy) {
  for (const PolicyKind policy :
       {PolicyKind::kBaseline, PolicyKind::kStallBypass,
        PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const FuzzCase c = MakeFuzzCase(seed, policy);
      const std::optional<Divergence> d = RunFuzzCase(c);
      EXPECT_FALSE(d.has_value())
          << ToString(policy) << " seed " << seed << ": " << d->ToString();
    }
  }
}

TEST(Differential, DiffStatsNamesEveryDifferingField) {
  CacheStats a;
  CacheStats b;
  a.load_hits = 3;
  b.load_hits = 5;
  b.bypasses = 1;
  const std::string diff = DiffStats(a, b);
  EXPECT_NE(diff.find("load_hits"), std::string::npos) << diff;
  EXPECT_NE(diff.find("bypasses"), std::string::npos) << diff;
  EXPECT_EQ(diff.find("accesses"), std::string::npos) << diff;
  EXPECT_TRUE(DiffStats(a, a).empty());
}

TEST(Differential, TwinRealIdenticalConfigsNeverDiverge) {
  const FuzzCase c = MakeFuzzCase(11, PolicyKind::kDlp);
  const std::optional<Divergence> d =
      RunTwinReal(c.config, c.config, c.trace, c.params);
  EXPECT_FALSE(d.has_value()) << d->ToString();
}

/// Fuzz cases biased towards frequent Fig. 9 updates: small sampling
/// windows mean every ~16 accesses run the PD update, so a planted PD
/// bug diverges quickly and shrinks to a handful of windows.
FuzzCase SmallWindowCase(std::uint64_t seed) {
  FuzzCase c = MakeFuzzCase(seed, PolicyKind::kDlp);
  c.config.prot.sample_accesses = 16;
  return c;
}

TEST(Differential, PlantedPdOffByOneIsCaughtAndShrunkSmall) {
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 20 && !caught; ++seed) {
    const FuzzCase c = SmallWindowCase(seed);
    const std::optional<Divergence> d =
        RunFuzzCase(c, OracleBug::kPdDecreaseOffByOne);
    if (!d.has_value()) continue;
    caught = true;
    std::size_t steps = 0;
    const std::vector<TraceAccess> shrunk =
        ShrinkTrace(c, OracleBug::kPdDecreaseOffByOne, &steps);
    // Acceptance bar: the reproducer must be tiny (a couple of sampling
    // windows), not the original multi-hundred-access trace.
    EXPECT_LE(shrunk.size(), 50u)
        << "seed " << seed << " shrunk to " << shrunk.size()
        << " accesses in " << steps << " runs";
    // The shrunk trace must still diverge under the same config.
    FuzzCase small = c;
    small.trace = shrunk;
    EXPECT_TRUE(RunFuzzCase(small, OracleBug::kPdDecreaseOffByOne).has_value());
  }
  EXPECT_TRUE(caught)
      << "no seed in 1..20 triggered the planted PD decrease bug";
}

TEST(Differential, PlantedClampAndDecayAndVtaBugsAreCaught) {
  for (const OracleBug bug :
       {OracleBug::kPdIncreaseNoClamp, OracleBug::kSkipDecayOnStores,
        OracleBug::kVtaKeepOnHit}) {
    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 30 && !caught; ++seed) {
      caught = RunFuzzCase(SmallWindowCase(seed), bug).has_value();
    }
    EXPECT_TRUE(caught) << "planted bug " << static_cast<int>(bug)
                        << " survived 30 fuzzed traces";
  }
}

}  // namespace
}  // namespace dlpsim::verify
