// Sanity pins for the reference model itself: tiny hand-walked
// scenarios whose outcomes are obvious from the paper / GPGPU-Sim rules.
// The heavy validation of the oracle happens differentially (it must
// agree with the production cache on every fuzzed trace); these tests
// exist so an oracle regression fails with a readable scenario instead
// of a fuzz divergence.
#include "verify/oracle.h"

#include <gtest/gtest.h>

#include "sim/config.h"

namespace dlpsim::verify {
namespace {

L1DConfig SmallConfig(PolicyKind policy) {
  L1DConfig cfg;
  cfg.policy = policy;
  cfg.geom.sets = 4;
  cfg.geom.ways = 2;
  cfg.geom.line_bytes = 64;
  cfg.geom.index = IndexFunction::kLinear;
  cfg.mshr_entries = 4;
  cfg.mshr_max_merged = 2;
  cfg.miss_queue_entries = 4;
  return cfg;
}

MemAccess Load(Addr addr, Pc pc = 1, MshrToken token = 7) {
  return MemAccess{addr, AccessType::kLoad, pc, token};
}

/// Runs the fill for the oracle's next outgoing read.
void ServiceNextMiss(OracleL1D& oracle) {
  ASSERT_TRUE(oracle.HasOutgoing());
  const OracleOutgoing out = oracle.PopOutgoing();
  ASSERT_FALSE(out.write);
  std::vector<MshrToken> woken;
  oracle.Fill(out.block, out.no_fill, out.token, woken);
}

TEST(OracleL1D, MissFillHitSequence) {
  OracleL1D oracle(SmallConfig(PolicyKind::kBaseline));
  EXPECT_EQ(oracle.Access(Load(0x100), 0), AccessResult::kMissIssued);
  ServiceNextMiss(oracle);
  EXPECT_EQ(oracle.Access(Load(0x100), 1), AccessResult::kHit);
  EXPECT_EQ(oracle.stats().load_hits, 1u);
  EXPECT_EQ(oracle.stats().load_misses, 1u);
  EXPECT_EQ(oracle.stats().misses_issued, 1u);
  EXPECT_EQ(oracle.stats().fills, 1u);
}

TEST(OracleL1D, MergedMissDoesNotReissue) {
  OracleL1D oracle(SmallConfig(PolicyKind::kBaseline));
  EXPECT_EQ(oracle.Access(Load(0x100, 1, 1), 0), AccessResult::kMissIssued);
  EXPECT_EQ(oracle.Access(Load(0x100, 2, 2), 1), AccessResult::kMissMerged);
  EXPECT_EQ(oracle.outgoing_size(), 1u);  // one read for both accesses
  std::vector<MshrToken> woken;
  const OracleOutgoing out = oracle.PopOutgoing();
  oracle.Fill(out.block, out.no_fill, out.token, woken);
  // Both tokens wake, allocation first.
  ASSERT_EQ(woken.size(), 2u);
  EXPECT_EQ(woken[0], 1u);
  EXPECT_EQ(woken[1], 2u);
}

TEST(OracleL1D, LruVictimIsLeastRecentlyUsed) {
  OracleL1D oracle(SmallConfig(PolicyKind::kBaseline));
  // Set 0 holds blocks at addr 0x000 and 0x100 (sets=4, line=64:
  // block 0 -> set 0, block 4 -> set 0). Fill both ways.
  EXPECT_EQ(oracle.Access(Load(0x000), 0), AccessResult::kMissIssued);
  ServiceNextMiss(oracle);
  EXPECT_EQ(oracle.Access(Load(0x100), 1), AccessResult::kMissIssued);
  ServiceNextMiss(oracle);
  // Touch 0x000 so 0x100 becomes LRU, then miss a third block in set 0.
  EXPECT_EQ(oracle.Access(Load(0x000), 2), AccessResult::kHit);
  EXPECT_EQ(oracle.Access(Load(0x200), 3), AccessResult::kMissIssued);
  ServiceNextMiss(oracle);
  // 0x100 must be gone; 0x000 must still hit.
  EXPECT_EQ(oracle.Access(Load(0x000), 4), AccessResult::kHit);
  EXPECT_EQ(oracle.Access(Load(0x100), 5), AccessResult::kMissIssued);
}

TEST(OracleL1D, StallBypassBypassesWhenMshrsExhausted) {
  L1DConfig cfg = SmallConfig(PolicyKind::kStallBypass);
  cfg.mshr_entries = 1;
  OracleL1D oracle(cfg);
  EXPECT_EQ(oracle.Access(Load(0x000, 1, 1), 0), AccessResult::kMissIssued);
  // Different set, no free MSHR: Stall-Bypass must bypass, not stall.
  EXPECT_EQ(oracle.Access(Load(0x040, 1, 2), 1), AccessResult::kBypassed);
  EXPECT_EQ(oracle.stats().bypasses, 1u);
  // Baseline under the same pressure stalls instead.
  cfg.policy = PolicyKind::kBaseline;
  OracleL1D baseline(cfg);
  EXPECT_EQ(baseline.Access(Load(0x000, 1, 1), 0), AccessResult::kMissIssued);
  EXPECT_EQ(baseline.Access(Load(0x040, 1, 2), 1),
            AccessResult::kReservationFail);
  EXPECT_EQ(baseline.stats().reservation_fails, 1u);
}

TEST(OracleL1D, WriteEvictStoreHitInvalidates) {
  L1DConfig cfg = SmallConfig(PolicyKind::kBaseline);
  cfg.write_policy = WritePolicy::kWriteEvict;
  OracleL1D oracle(cfg);
  EXPECT_EQ(oracle.Access(Load(0x000), 0), AccessResult::kMissIssued);
  ServiceNextMiss(oracle);
  EXPECT_EQ(oracle.Access(MemAccess{0x000, AccessType::kStore, 1, 0}, 1),
            AccessResult::kStoreSent);
  EXPECT_EQ(oracle.stats().store_invalidates, 1u);
  // The line is gone: the next load misses.
  while (oracle.HasOutgoing()) oracle.PopOutgoing();
  EXPECT_EQ(oracle.Access(Load(0x000), 2), AccessResult::kMissIssued);
}

TEST(OracleL1D, ProtectionStampsPdOnReserve) {
  // Global protection with a forced PD: a reserved line carries PL = PD.
  L1DConfig cfg = SmallConfig(PolicyKind::kGlobalProtection);
  OracleL1D oracle(cfg);
  EXPECT_EQ(oracle.Access(Load(0x000), 0), AccessResult::kMissIssued);
  const auto set_image = oracle.SetImage(0);
  ASSERT_EQ(set_image.size(), 1u);
  // Fresh table: PD 0 everywhere, so PL must stamp to 0.
  EXPECT_EQ(set_image[0].protected_life, 0u);
  EXPECT_EQ(oracle.PdImage().size(), 1u);  // single global entry
}

}  // namespace
}  // namespace dlpsim::verify
