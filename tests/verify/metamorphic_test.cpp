// Oracle-free properties: counter conservation on drained caches,
// Baseline == neutralized-DLP equivalence, and schedule-independence of
// the fuzz pipeline. These hold even if the oracle and the real cache
// share a misunderstanding of the paper, which is exactly why they are
// checked separately from the differential harness.
#include "verify/metamorphic.h"

#include <gtest/gtest.h>

#include "analysis/trace_replay.h"
#include "verify/fuzzer.h"

namespace dlpsim::verify {
namespace {

TEST(Metamorphic, ConservationHoldsOnDrainedReplays) {
  for (const PolicyKind policy :
       {PolicyKind::kBaseline, PolicyKind::kStallBypass,
        PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const FuzzCase c = MakeFuzzCase(seed, policy);
      TraceReplayer replayer(c.config, c.params.fill_latency);
      replayer.Replay(c.trace);
      const std::string violation =
          CheckStatsConservation(replayer.cache().stats());
      EXPECT_TRUE(violation.empty())
          << ToString(policy) << " seed " << seed << ": " << violation;
    }
  }
}

TEST(Metamorphic, ConservationCatchesCorruptedCounters) {
  const FuzzCase c = MakeFuzzCase(1, PolicyKind::kBaseline);
  TraceReplayer replayer(c.config, c.params.fill_latency);
  replayer.Replay(c.trace);
  CacheStats s = replayer.cache().stats();
  ASSERT_TRUE(CheckStatsConservation(s).empty());

  CacheStats broken = s;
  ++broken.load_hits;  // phantom hit: loads != hits + misses
  EXPECT_FALSE(CheckStatsConservation(broken).empty());

  broken = s;
  ++broken.fills;  // fill without an issued miss
  EXPECT_FALSE(CheckStatsConservation(broken).empty());

  broken = s;
  broken.stores = broken.store_hits == 0 ? 0 : broken.store_hits - 1;
  EXPECT_FALSE(CheckStatsConservation(broken).empty());
}

TEST(Metamorphic, NeutralizedDlpMatchesBaseline) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::string violation = CheckProtectionNeutrality(seed);
    EXPECT_TRUE(violation.empty()) << violation;
  }
}

TEST(Metamorphic, ActiveDlpActuallyDiffersFromBaseline) {
  // Sanity for the neutrality check itself: if DLP with live sampling
  // windows never deviated from Baseline on ANY fuzzed trace, the
  // neutrality property would be vacuous (and DLP would be dead code).
  bool differed = false;
  for (std::uint64_t seed = 1; seed <= 20 && !differed; ++seed) {
    FuzzCase c = MakeFuzzCase(seed, PolicyKind::kDlp);
    L1DConfig baseline = c.config;
    baseline.policy = PolicyKind::kBaseline;
    differed = RunTwinReal(baseline, c.config, c.trace, c.params).has_value();
  }
  EXPECT_TRUE(differed)
      << "DLP behaved identically to Baseline on 20 fuzzed traces";
}

TEST(Metamorphic, FuzzPipelineIsScheduleIndependent) {
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6};
  const std::string violation =
      CheckFuzzDeterminism(seeds, PolicyKind::kDlp, 4);
  EXPECT_TRUE(violation.empty()) << violation;
}

}  // namespace
}  // namespace dlpsim::verify
