// The fuzz-case generator and shrinker as components: seeds must expand
// deterministically into valid configurations, and the parser fuzzer
// must hold its no-crash/typed-error contract over the hardened parsers.
#include "verify/fuzzer.h"

#include <gtest/gtest.h>

namespace dlpsim::verify {
namespace {

bool SameTrace(const std::vector<TraceAccess>& a,
               const std::vector<TraceAccess>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].addr != b[i].addr || a[i].pc != b[i].pc ||
        a[i].type != b[i].type) {
      return false;
    }
  }
  return true;
}

TEST(Fuzzer, SameSeedSamePolicyIsReproducible) {
  const FuzzCase a = MakeFuzzCase(42, PolicyKind::kDlp);
  const FuzzCase b = MakeFuzzCase(42, PolicyKind::kDlp);
  EXPECT_EQ(a.config.geom.sets, b.config.geom.sets);
  EXPECT_EQ(a.config.mshr_entries, b.config.mshr_entries);
  EXPECT_EQ(a.params.fill_latency, b.params.fill_latency);
  EXPECT_TRUE(SameTrace(a.trace, b.trace));
}

TEST(Fuzzer, DifferentSeedsProduceDifferentTraces) {
  const FuzzCase a = MakeFuzzCase(1, PolicyKind::kBaseline);
  const FuzzCase b = MakeFuzzCase(2, PolicyKind::kBaseline);
  EXPECT_FALSE(SameTrace(a.trace, b.trace));
}

TEST(Fuzzer, GeneratedConfigsAlwaysValidate) {
  for (const PolicyKind policy :
       {PolicyKind::kBaseline, PolicyKind::kStallBypass,
        PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
      const FuzzCase c = MakeFuzzCase(seed, policy);
      const auto issues = c.config.Validate();
      EXPECT_TRUE(issues.empty())
          << ToString(policy) << " seed " << seed << ": "
          << issues.front().ToString();
      EXPECT_GE(c.trace.size(), 256u);
      EXPECT_LE(c.trace.size(), 2048u);
      EXPECT_GE(c.params.drain_rate, 1u);
    }
  }
}

TEST(Fuzzer, ShrinkKeepsTraceIntactWhenNothingDiverges) {
  const FuzzCase c = MakeFuzzCase(3, PolicyKind::kBaseline);
  ASSERT_FALSE(RunFuzzCase(c).has_value());
  std::size_t steps = 0;
  const std::vector<TraceAccess> shrunk =
      ShrinkTrace(c, OracleBug::kNone, &steps);
  EXPECT_TRUE(SameTrace(shrunk, c.trace));
  EXPECT_EQ(steps, 1u);  // one probe to learn the full trace is clean
}

TEST(Fuzzer, FuzzOneSeedCleanOutcomeCarriesNoReproducer) {
  const FuzzOutcome o = FuzzOneSeed(3, PolicyKind::kBaseline);
  EXPECT_FALSE(o.diverged);
  EXPECT_TRUE(o.reproducer.trace.empty());
}

TEST(Fuzzer, TraceParsersSurviveMalformedInputs) {
  const std::string violation = FuzzTraceParsers(2026, 400);
  EXPECT_TRUE(violation.empty()) << violation;
}

TEST(Fuzzer, TraceParserFuzzIsSeedStable) {
  // Different seeds explore different inputs but the contract must hold
  // for all of them; a failure message names the violating iteration.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::string violation = FuzzTraceParsers(seed, 100);
    EXPECT_TRUE(violation.empty()) << "seed " << seed << ": " << violation;
  }
}

}  // namespace
}  // namespace dlpsim::verify
