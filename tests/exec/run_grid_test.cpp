// TryRunJobs tests: failing cells retry, then surface as structured
// failures while every sibling runs to completion.
#include "exec/run_grid.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace dlpsim::exec {
namespace {

std::vector<Job> TestGrid() {
  return Grid({"A", "B", "C"}, {"x", "y"});
}

TEST(TryRunJobs, AllCellsSucceed) {
  const auto run = TryRunJobs(
      TestGrid(), [](const Job& j) { return j.app + j.config; }, {}, 2);
  EXPECT_TRUE(run.ok());
  ASSERT_EQ(run.results.size(), 6u);
  EXPECT_EQ(run.results[0], "Ax");
  EXPECT_EQ(run.results[5], "Cy");
}

TEST(TryRunJobs, PersistentFailureIsRecordedAndSiblingsFinish) {
  std::atomic<int> attempts_on_bad{0};
  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.backoff_seconds = 0.001;
  const auto run = TryRunJobs(
      TestGrid(),
      [&](const Job& j) -> int {
        if (j.app == "B" && j.config == "y") {
          ++attempts_on_bad;
          throw std::runtime_error("cell exploded");
        }
        return 7;
      },
      retry, 3);

  EXPECT_FALSE(run.ok());
  ASSERT_EQ(run.failures.size(), 1u);
  const JobFailure& f = run.failures[0];
  EXPECT_EQ(f.job.app, "B");
  EXPECT_EQ(f.job.config, "y");
  EXPECT_EQ(f.index, 3u);  // app-major: B is row 1, y is column 1
  EXPECT_EQ(f.attempts, 2);
  EXPECT_FALSE(f.timed_out);
  EXPECT_EQ(f.error, "cell exploded");
  EXPECT_EQ(attempts_on_bad.load(), 2);

  // Siblings all ran; the failed slot is value-initialized.
  ASSERT_EQ(run.results.size(), 6u);
  EXPECT_EQ(run.results[3], 0);
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    if (i == 3) continue;
    EXPECT_EQ(run.results[i], 7) << i;
  }
}

TEST(TryRunJobs, TransientFailureSucceedsOnRetry) {
  std::atomic<int> calls{0};
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_seconds = 0.001;
  const auto run = TryRunJobs(
      std::vector<Job>{{"A", "x"}},
      [&](const Job&) -> int {
        if (calls.fetch_add(1) == 0) throw std::runtime_error("flaky");
        return 42;
      },
      retry, 1);
  EXPECT_TRUE(run.ok());
  ASSERT_EQ(run.results.size(), 1u);
  EXPECT_EQ(run.results[0], 42);
  EXPECT_EQ(calls.load(), 2);
}

TEST(TryRunJobs, CooperativeTimeoutCountsAsTimedOutFailure) {
  RetryPolicy retry;
  retry.max_attempts = 1;
  retry.timeout_seconds = 0.001;
  const auto run = TryRunJobs(
      std::vector<Job>{{"SLOW", "x"}},
      [](const Job&) -> int {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return 1;
      },
      retry, 1);
  EXPECT_FALSE(run.ok());
  ASSERT_EQ(run.failures.size(), 1u);
  EXPECT_TRUE(run.failures[0].timed_out);
  EXPECT_NE(run.failures[0].error.find("timeout"), std::string::npos);
  EXPECT_EQ(run.results[0], 0);  // over-budget result discarded
}

TEST(TryRunJobs, NonExceptionThrowIsCaptured) {
  RetryPolicy retry;
  retry.max_attempts = 1;
  retry.backoff_seconds = 0.0;
  const auto run = TryRunJobs(
      std::vector<Job>{{"A", "x"}},
      [](const Job&) -> int { throw 17; },  // not a std::exception
      retry, 1);
  ASSERT_EQ(run.failures.size(), 1u);
  EXPECT_EQ(run.failures[0].error, "unknown exception");
}

}  // namespace
}  // namespace dlpsim::exec
