#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/run_grid.h"

namespace dlpsim::exec {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { ++count; });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
    // No Wait(): the destructor must still run everything.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelMap, ResultsInIndexOrder) {
  const auto r = ParallelMap(
      64, [](std::size_t i) { return i * i; }, 8);
  ASSERT_EQ(r.size(), 64u);
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_EQ(r[i], i * i);
}

TEST(ParallelMap, SerialPathRunsInline) {
  const auto caller = std::this_thread::get_id();
  const auto r = ParallelMap(
      8, [caller](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        return i;
      },
      1);
  ASSERT_EQ(r.size(), 8u);
}

TEST(ParallelMap, EmptyInputReturnsEmpty) {
  const auto r = ParallelMap(
      0, [](std::size_t i) { return i; }, 8);
  EXPECT_TRUE(r.empty());
}

TEST(ParallelMap, PropagatesFirstExceptionByIndex) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::atomic<int> ran{0};
    try {
      ParallelMap(
          32, [&ran](std::size_t i) -> int {
            ++ran;
            if (i == 7) throw std::runtime_error("boom 7");
            if (i == 20) throw std::runtime_error("boom 20");
            return 0;
          },
          jobs);
      FAIL() << "expected throw with jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 7") << "jobs=" << jobs;
    }
    if (jobs > 1) {
      // Parallel mode finishes every job before rethrowing.
      EXPECT_EQ(ran.load(), 32) << "jobs=" << jobs;
    }
  }
}

TEST(Grid, AppMajorOrder) {
  const auto grid = Grid({"A", "B"}, {"x", "y", "z"});
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0].app, "A");
  EXPECT_EQ(grid[0].config, "x");
  EXPECT_EQ(grid[2].app, "A");
  EXPECT_EQ(grid[2].config, "z");
  EXPECT_EQ(grid[3].app, "B");
  EXPECT_EQ(grid[3].config, "x");
  EXPECT_EQ(grid[5].config, "z");
}

TEST(RunJobs, MapsOverGridInOrder) {
  const auto grid = Grid({"A", "B"}, {"x", "y"});
  const auto r = RunJobs(
      grid, [](const Job& j) { return j.app + ":" + j.config; }, 4);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0], "A:x");
  EXPECT_EQ(r[3], "B:y");
}

TEST(DefaultJobs, HonorsEnvAndNeverZero) {
  char* saved = std::getenv("DLPSIM_JOBS");
  const std::string restore = saved != nullptr ? saved : "";

  ::setenv("DLPSIM_JOBS", "3", 1);
  EXPECT_EQ(DefaultJobs(), 3u);
  ::setenv("DLPSIM_JOBS", "0", 1);  // invalid -> hardware concurrency
  EXPECT_GE(DefaultJobs(), 1u);
  ::unsetenv("DLPSIM_JOBS");
  EXPECT_GE(DefaultJobs(), 1u);

  if (saved != nullptr) ::setenv("DLPSIM_JOBS", restore.c_str(), 1);
}


TEST(ThreadPool, ThrowingTaskDoesNotAbortSiblings) {
  std::atomic<int> completed{0};
  ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&completed, i] {
      if (i == 5) throw std::runtime_error("task 5 failed");
      ++completed;
    });
  }
  // Wait() rethrows the first captured exception after all tasks ran.
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPool, PoolIsReusableAfterAnException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);

  // The error is consumed: the next batch runs clean.
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&ran] { ++ran; });
  }
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace dlpsim::exec
