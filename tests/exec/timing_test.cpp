#include "exec/timing.h"

#include <gtest/gtest.h>

#include <sstream>

#include "exec/run_grid.h"

namespace dlpsim::exec {
namespace {

TEST(TimingLog, RecordsCellsThreadSafely) {
  TimingLog log;
  ParallelMap(
      50,
      [&log](std::size_t i) {
        log.Record({"APP", "base", 0.5, i % 2 == 0});
        return 0;
      },
      8);
  EXPECT_EQ(log.cells().size(), 50u);
  EXPECT_GE(log.ElapsedSeconds(), 0.0);
}

TEST(TimingLog, JsonCarriesTotalsAndCells) {
  TimingLog log;
  log.Record({"SRK", "base", 1.5, false});
  log.Record({"SRK", "dlp", 2.5, false});
  log.Record({"KM", "base", 0.0, true});

  std::ostringstream os;
  log.WriteJson(os, "bench_x", 4, 0.5);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"bench\":\"bench_x\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":4"), std::string::npos);
  EXPECT_NE(json.find("\"scale\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"sim_seconds_total\":4"), std::string::npos);
  EXPECT_NE(json.find("\"cells_simulated\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cells_cached\":1"), std::string::npos);
  EXPECT_NE(json.find("\"app\":\"KM\""), std::string::npos);
  EXPECT_NE(json.find("\"cached\":true"), std::string::npos);
}

}  // namespace
}  // namespace dlpsim::exec
