#include "exec/timing.h"

#include <gtest/gtest.h>

#include <sstream>

#include "exec/run_grid.h"

namespace dlpsim::exec {
namespace {

TEST(TimingLog, RecordsCellsThreadSafely) {
  TimingLog log;
  ParallelMap(
      50,
      [&log](std::size_t i) {
        TimingCell cell;
        cell.app = "APP";
        cell.config = "base";
        cell.seconds = 0.5;
        cell.cached = i % 2 == 0;
        log.Record(std::move(cell));
        return 0;
      },
      8);
  EXPECT_EQ(log.cells().size(), 50u);
  EXPECT_GE(log.ElapsedSeconds(), 0.0);
}

TEST(TimingLog, JsonCarriesTotalsAndCells) {
  TimingLog log;
  TimingCell a;
  a.app = "SRK";
  a.config = "base";
  a.seconds = 1.5;
  log.Record(std::move(a));
  TimingCell b;
  b.app = "SRK";
  b.config = "dlp";
  b.seconds = 2.5;
  log.Record(std::move(b));
  TimingCell c;
  c.app = "KM";
  c.config = "base";
  c.cached = true;
  log.Record(std::move(c));

  std::ostringstream os;
  log.WriteJson(os, "bench_x", 4, 0.5);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"bench\":\"bench_x\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":4"), std::string::npos);
  EXPECT_NE(json.find("\"scale\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"sim_seconds_total\":4"), std::string::npos);
  EXPECT_NE(json.find("\"cells_simulated\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cells_cached\":1"), std::string::npos);
  EXPECT_NE(json.find("\"app\":\"KM\""), std::string::npos);
  EXPECT_NE(json.find("\"cached\":true"), std::string::npos);
}

}  // namespace
}  // namespace dlpsim::exec
