// dlp_lint fixture: clean counterpart to s1_bad.cpp. Mentioning a
// documented knob name away from any getenv call is fine, and code that
// never touches the environment is fine.
#include <string>

std::string Banner() {
  // DLPSIM_DOCUMENTED is covered by fixtures/docs/README.md and
  // fixtures/docs/EXPERIMENTS.md; referring to it in messages is fine.
  return "set DLPSIM_DOCUMENTED=1 to enable the documented knob";
}
