// dlp_lint fixture: D3 violations (pointer values as container keys).
// Planted violations: lines 10, 12 (asserted by dlp_lint_test.cpp).
#include <map>
#include <set>

struct Warp {};

void PointerKeyed() {
  // Ordered by address: iteration order depends on allocation/ASLR.
  std::map<Warp*, int> per_warp;  // line 10: D3 pointer key

  std::set<const Warp*> active;  // line 12: D3 pointer key
  (void)per_warp;
  (void)active;
}
