// dlp_lint fixture: every planted violation below carries a suppression,
// so the whole file must lint clean (asserted by dlp_lint_test.cpp).
#include <cstdint>
#include <cstdlib>
#include <map>
#include <unordered_map>

struct Line {
  std::uint8_t pl = 0;
};

long Suppressed(Line& line) {
  std::unordered_map<int, int> stats;
  stats[1] = 2;
  long total = 0;
  // Rule-specific same-line suppression:
  for (const auto& [k, v] : stats) {  // NOLINT(dlp-d1) order-insensitive sum
    total += v;
  }

  // NOLINTNEXTLINE(dlp-d2) fixture exercises the next-line form
  total += static_cast<long>(rand());

  // Bare NOLINT suppresses every rule on the line:
  std::map<Line*, int> by_ptr;  // NOLINT
  (void)by_ptr;

  // Multi-rule suppression lists parse too:
  line.pl = 1;  // NOLINT(dlp-i1, dlp-d3)
  return total;
}
