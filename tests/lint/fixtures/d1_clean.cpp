// dlp_lint fixture: clean counterpart to d1_bad.cpp. Ordered-container
// iteration and membership-only use of unordered containers are fine.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

long Exporter() {
  std::map<std::uint64_t, int> stats;  // ordered: deterministic iteration
  stats[1] = 2;
  long total = 0;
  for (const auto& [addr, count] : stats) {
    total += count;
  }

  // Unordered lookup tables are fine as long as nothing iterates them.
  std::unordered_map<std::uint64_t, int> memo;
  memo[3] = 4;
  auto it = memo.find(3);
  if (it != memo.end()) total += it->second;
  total += static_cast<long>(memo.size());

  std::vector<int> linear{1, 2, 3};
  for (int v : linear) total += v;
  return total;
}
