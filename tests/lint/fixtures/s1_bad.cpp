// dlp_lint fixture: S1 violations (env access outside the config layer,
// undocumented knob names).
// Planted violations: lines 9, 13 (asserted by dlp_lint_test.cpp).
#include <cstdlib>
#include <string>

std::string ReadKnobs() {
  // Direct getenv outside src/sim/env.*: bypasses the config layer.
  const char* raw = std::getenv("DLPSIM_DOCUMENTED");  // line 9: S1

  // Knob name that appears in no doc file: undiscoverable by users.
  // line 13: S1 (undocumented DLPSIM_* name at a getenv call site)
  const char* ghost = getenv("DLPSIM_UNDOCUMENTED_KNOB");
  return std::string(raw ? raw : "") + (ghost ? ghost : "");
}
