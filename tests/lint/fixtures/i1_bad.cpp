// dlp_lint fixture: I1 violations (protection-state writes outside
// src/core/). This file is NOT under a src/core/ path, so every write to
// the protection fields is flagged.
// Planted violations: lines 17, 18, 21, 24 (asserted by dlp_lint_test.cpp).
#include <cstdint>

struct Line {
  std::uint8_t protected_life = 0;
  std::uint8_t pl = 0;
};

struct PdptEntry {
  std::uint32_t pd = 0;
};

void Mutate(Line& line, PdptEntry& e) {
  line.protected_life = 3;  // line 17: I1 direct assignment
  line.pl += 1;             // line 18: I1 compound assignment

  PdptEntry* p = &e;
  p->pd = 7;  // line 21: I1 via pointer member access

  // Increment is still a write.
  e.pd++;  // line 24: I1
}
