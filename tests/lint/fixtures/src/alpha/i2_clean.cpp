// dlp_lint fixture: clean counterpart to i2_bad.cpp.
// Expected findings: none.

// Depending on another subsystem's *public* header is fine:
#include "beta/public.h"
// A subsystem may include its own internal headers:
#include "alpha/alpha_internal.h"
// System includes are never I2 findings:
#include <vector>

int UsesPublicApi() {
  std::vector<int> v{alpha_fixture::AlphaDetail()};
  return beta_fixture::PublicApi() + v.front();
}
