// dlp-lint: internal-header -- private to the alpha fixture subsystem.
// Including it from inside alpha is fine; reaching in from elsewhere is
// an I2 violation.
#pragma once

namespace alpha_fixture {
inline int AlphaDetail() { return 7; }
}  // namespace alpha_fixture
