// dlp_lint fixture: I2 violations (include hygiene).
// Planted violations: lines 5, 7, 9 (asserted by dlp_lint_test.cpp).

// Cross-subsystem reach into beta's marked internal header:
#include "beta/impl_internal.h"  // line 5: I2
// Including a translation unit:
#include "beta/impl.cpp"  // line 7: I2
// Relative include escaping the subsystem layout:
#include "../beta/impl_internal.h"  // line 9: I2

int UsesBetaInternals() { return beta_fixture::InternalDetail(); }
