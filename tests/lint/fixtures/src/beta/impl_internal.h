// dlp-lint: internal-header -- implementation detail of the beta fixture
// subsystem; other subsystems must include "beta/public.h" instead.
#pragma once

namespace beta_fixture {
inline int InternalDetail() { return 42; }
}  // namespace beta_fixture
