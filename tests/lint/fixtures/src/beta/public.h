// Public interface of the beta fixture subsystem (no internal-header
// marker, so any subsystem may include it).
#pragma once

namespace beta_fixture {
int PublicApi();
}  // namespace beta_fixture
