// dlp_lint fixture: the same protection-state writes as i1_bad.cpp, but
// this file lives under a src/core/ path, where the DLP state machine is
// allowed to mutate Line::pl / Line::protected_life / PdptEntry::pd.
// Expected findings: none.
#include <cstdint>

struct Line {
  std::uint8_t protected_life = 0;
  std::uint8_t pl = 0;
};

struct PdptEntry {
  std::uint32_t pd = 0;
};

void Mutate(Line& line, PdptEntry& e) {
  line.protected_life = 3;
  line.pl += 1;
  e.pd++;
}
