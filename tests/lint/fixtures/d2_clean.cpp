// dlp_lint fixture: clean counterpart to d2_bad.cpp. Seeded generators
// and chrono *durations* (no clock reads) are deterministic and fine.
#include <chrono>
#include <random>

unsigned Deterministic(unsigned seed) {
  std::mt19937 gen(seed);  // seeded from config/trace: replayable
  unsigned x = gen();

  // Duration arithmetic involves no clock read.
  const std::chrono::milliseconds backoff(50);
  x += static_cast<unsigned>(backoff.count());

  // Identifiers that merely contain the banned tokens do not trip the
  // word-boundary matcher.
  const unsigned alloc_time = 3;
  unsigned operand = alloc_time;
  x += operand;
  return x;
}
