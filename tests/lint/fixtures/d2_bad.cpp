// dlp_lint fixture: D2 violations (wall clocks / ambient entropy).
// Planted violations: lines 10, 12, 15, 17 (asserted by dlp_lint_test.cpp).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned Nondeterministic() {
  unsigned x = 0;
  x += static_cast<unsigned>(rand());  // line 10: D2 ambient entropy

  std::random_device rd;  // line 12: D2 hardware entropy
  x += rd();

  x += static_cast<unsigned>(time(nullptr));  // line 15: D2 wall clock

  const auto t = std::chrono::steady_clock::now();  // line 17: D2 clock
  x += static_cast<unsigned>(t.time_since_epoch().count());
  return x;
}
