// dlp_lint fixture: clean counterpart to d3_bad.cpp. Keying by a stable
// id (and pointer *values*, not keys) is deterministic and fine.
#include <cstdint>
#include <map>
#include <set>

struct Warp {
  std::uint32_t id = 0;
};

void IdKeyed(Warp* w) {
  std::map<std::uint32_t, Warp*> per_warp;  // pointer value, stable key
  per_warp[w->id] = w;

  std::set<std::uint64_t> active_ids;
  active_ids.insert(w->id);
}
