// dlp_lint fixture: D1 violations (unordered-container iteration).
// Planted violations: lines 12, 18, 24 (asserted by dlp_lint_test.cpp).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

void Exporter() {
  std::unordered_map<std::uint64_t, int> stats;
  stats[1] = 2;
  long total = 0;
  for (const auto& [addr, count] : stats) {  // line 12: D1 range-for
    total += count;
  }

  std::unordered_set<std::uint64_t> seen;
  seen.insert(7);
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // line 18: D1
    total += *it;
  }

  std::vector<int> out;
  // Inline unordered temporary in the range position:
  for (int v : std::unordered_set<int>{1, 2, 3}) {  // line 24: D1
    out.push_back(v + static_cast<int>(total));
  }
}
