// dlp_lint fixture: S1 doc cross-check in isolation. Reads go through the
// config layer (no direct-getenv finding), but one knob is documented only
// in the fixture README, not in EXPERIMENTS.md.
// Planted violation: line 13 (asserted by dlp_lint_test.cpp).

namespace env {
const char* Raw(const char* name);
}

void ReadViaConfigLayer() {
  // Documented in both fixture docs: clean.
  (void)env::Raw("DLPSIM_DOCUMENTED");
  (void)env::Raw("DLPSIM_README_ONLY");  // line 13: S1 (doc gap)
}
