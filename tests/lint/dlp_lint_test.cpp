// Tests for the dlp_lint static analyzer itself, driven by the planted
// fixture tree at tests/lint/fixtures/ (one *_bad file per rule with
// violations at known lines, plus clean counterparts). The assertions pin
// exact (rule id, line) sets so a lexer or rule regression shows up as a
// precise diff, not just a changed count.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dlp_lint/lint.h"

namespace {

using dlplint::DocSet;
using dlplint::Finding;
using dlplint::LintOptions;

#ifndef DLPSIM_LINT_FIXTURE_DIR
#error "build must define DLPSIM_LINT_FIXTURE_DIR"
#endif

std::string Fixture(const std::string& rel) {
  return std::string(DLPSIM_LINT_FIXTURE_DIR) + "/" + rel;
}

LintOptions FixtureOptions() {
  LintOptions opts;
  opts.docs = dlplint::LoadDocs(Fixture("docs"));
  return opts;
}

// Lints the given fixture-relative paths (with the fixture docs loaded)
// and returns (line, rule) pairs for findings whose path ends in `keep`
// (empty keep = all findings).
std::vector<std::pair<int, std::string>> LintFixture(
    const std::vector<std::string>& rels, const std::string& keep = "",
    bool with_docs = true) {
  std::vector<std::string> paths;
  paths.reserve(rels.size());
  for (const std::string& r : rels) paths.push_back(Fixture(r));
  std::string error;
  const LintOptions opts = with_docs ? FixtureOptions() : LintOptions{};
  const std::vector<Finding> findings = dlplint::LintPaths(paths, opts, &error);
  EXPECT_EQ(error, "");
  std::vector<std::pair<int, std::string>> got;
  for (const Finding& f : findings) {
    if (!keep.empty() &&
        f.path.find(keep) == std::string::npos) {
      continue;
    }
    got.emplace_back(f.line, f.rule);
  }
  return got;
}

using Expected = std::vector<std::pair<int, std::string>>;

TEST(DlpLintD1, FlagsUnorderedIterationAtPlantedLines) {
  EXPECT_EQ(LintFixture({"d1_bad.cpp"}),
            (Expected{{12, "D1"}, {18, "D1"}, {24, "D1"}}));
}

TEST(DlpLintD1, OrderedIterationAndLookupsAreClean) {
  EXPECT_TRUE(LintFixture({"d1_clean.cpp"}).empty());
}

TEST(DlpLintD2, FlagsClocksAndEntropyAtPlantedLines) {
  EXPECT_EQ(LintFixture({"d2_bad.cpp"}),
            (Expected{{10, "D2"}, {12, "D2"}, {15, "D2"}, {17, "D2"}}));
}

TEST(DlpLintD2, SeededGeneratorsAndDurationsAreClean) {
  EXPECT_TRUE(LintFixture({"d2_clean.cpp"}).empty());
}

TEST(DlpLintD3, FlagsPointerKeysAtPlantedLines) {
  EXPECT_EQ(LintFixture({"d3_bad.cpp"}),
            (Expected{{10, "D3"}, {12, "D3"}}));
}

TEST(DlpLintD3, StableIdKeysAreClean) {
  EXPECT_TRUE(LintFixture({"d3_clean.cpp"}).empty());
}

TEST(DlpLintS1, FlagsDirectGetenvAtPlantedLines) {
  EXPECT_EQ(LintFixture({"s1_bad.cpp"}),
            (Expected{{9, "S1"}, {13, "S1"}}));
}

TEST(DlpLintS1, FlagsKnobMissingFromOneDoc) {
  // DLPSIM_README_ONLY appears in the fixture README but not in the
  // fixture EXPERIMENTS.md; the read goes through env:: so the only
  // finding is the documentation gap.
  std::string error;
  const std::vector<Finding> findings = dlplint::LintPaths(
      {Fixture("s1_doc_bad.cpp")}, FixtureOptions(), &error);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "S1");
  EXPECT_EQ(findings[0].line, 13);
  EXPECT_NE(findings[0].message.find("DLPSIM_README_ONLY"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("EXPERIMENTS.md"), std::string::npos);
}

TEST(DlpLintS1, DocHalfIsSkippedWhenDocsAreNotLoaded) {
  // Without a doc corpus the cross-check cannot run; the config-layer
  // half still applies but s1_doc_bad.cpp reads via env::.
  EXPECT_TRUE(
      LintFixture({"s1_doc_bad.cpp"}, "", /*with_docs=*/false).empty());
}

TEST(DlpLintS1, DocumentedMentionsOutsideReadSitesAreClean) {
  EXPECT_TRUE(LintFixture({"s1_clean.cpp"}).empty());
}

TEST(DlpLintI1, FlagsProtectionWritesAtPlantedLines) {
  EXPECT_EQ(LintFixture({"i1_bad.cpp"}),
            (Expected{{17, "I1"}, {18, "I1"}, {21, "I1"}, {24, "I1"}}));
}

TEST(DlpLintI1, SameWritesUnderSrcCoreAreAllowed) {
  EXPECT_TRUE(LintFixture({"src/core/i1_allowed.cpp"}).empty());
}

TEST(DlpLintI2, FlagsIncludeHygieneAtPlantedLines) {
  // I2's internal-header half needs cross-file state, so lint the whole
  // fixture src tree and keep only i2_bad.cpp findings.
  EXPECT_EQ(LintFixture({"src"}, "i2_bad.cpp"),
            (Expected{{5, "I2"}, {7, "I2"}, {9, "I2"}}));
}

TEST(DlpLintI2, PublicAndSameSubsystemIncludesAreClean) {
  EXPECT_TRUE(LintFixture({"src"}, "i2_clean.cpp").empty());
}

TEST(DlpLintSuppression, NolintAndNolintnextlineSilenceFindings) {
  // suppressed.cpp plants a D1, a D2 (via NOLINTNEXTLINE), a D3 (bare
  // NOLINT) and an I1 (multi-rule list); all must be silenced.
  EXPECT_TRUE(LintFixture({"suppressed.cpp"}).empty());
}

TEST(DlpLintWholeTree, FixtureSweepMatchesPlantedSet) {
  const auto got = LintFixture({"."});
  // 19 findings: 3 D1 + 4 D2 + 2 D3 + 3 S1 + 4 I1 + 3 I2.
  EXPECT_EQ(got.size(), 19u);
  std::set<std::string> rules;
  for (const auto& [line, rule] : got) rules.insert(rule);
  EXPECT_EQ(rules,
            (std::set<std::string>{"D1", "D2", "D3", "S1", "I1", "I2"}));
}

TEST(DlpLintLexer, PatternsInsideStringLiteralsDoNotFire) {
  const dlplint::SourceFile f = dlplint::Lex(
      "lex_fixture.cpp",
      "const char* s = \"time(0) rand() unordered_map\";\n"
      "// rand() in a comment is also fine\n");
  const std::vector<Finding> findings = dlplint::Lint({f}, LintOptions{});
  EXPECT_TRUE(findings.empty());
}

TEST(DlpLintApi, RuleTableCoversAllSixRules) {
  std::vector<std::string> ids;
  for (const dlplint::RuleInfo& r : dlplint::Rules()) {
    ids.push_back(r.id);
    EXPECT_NE(std::string(r.summary), "");
    EXPECT_NE(std::string(r.rationale), "");
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::string>{"D1", "D2", "D3", "I1", "I2",
                                           "S1"}));
}

TEST(DlpLintApi, JsonOutputCarriesRulePathLineMessage) {
  std::string error;
  const std::vector<Finding> findings = dlplint::LintPaths(
      {Fixture("d3_bad.cpp")}, LintOptions{}, &error);
  ASSERT_EQ(findings.size(), 2u);
  const std::string json = dlplint::FormatJson(findings);
  EXPECT_NE(json.find("\"rule\": \"D3\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 12"), std::string::npos);
  EXPECT_NE(json.find("d3_bad.cpp"), std::string::npos);
}

}  // namespace
