#include "sm/coalescer.h"

#include <gtest/gtest.h>

#include "workloads/patterns.h"

namespace dlpsim {
namespace {

TEST(Coalescer, FullyCoalescedWarpIsOneTransaction) {
  Coalescer c(32, 128);
  StreamingPattern p(0, /*lanes_per_line=*/32, 32, /*iters_hint=*/10);
  const auto lines = c.Transactions(p, 0, 0);
  EXPECT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0] % 128, 0u);
}

TEST(Coalescer, LanesPerLineControlsTransactionCount) {
  Coalescer c(32, 128);
  for (std::uint32_t lanes : {32u, 16u, 8u, 4u, 2u, 1u}) {
    StreamingPattern p(0, lanes, 32, 10);
    EXPECT_EQ(c.Transactions(p, 3, 7).size(), 32u / lanes)
        << "lanes_per_line=" << lanes;
  }
}

TEST(Coalescer, TransactionsAreLineAlignedAndUnique) {
  Coalescer c(32, 128);
  IndirectPattern p(0, 4, 32, 1000, 0.0, 42);
  const auto lines = c.Transactions(p, 5, 9);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i] % 128, 0u);
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      EXPECT_NE(lines[i], lines[j]);
    }
  }
}

TEST(Coalescer, DuplicateLaneAddressesFold) {
  Coalescer c(32, 128);
  // All lanes to the same word.
  std::vector<Addr> lanes(32, 0x1000);
  EXPECT_EQ(c.TransactionsFromLanes(lanes).size(), 1u);
  // Two distinct lines interleaved across lanes.
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    lanes[i] = (i % 2 == 0) ? 0x1000 : 0x2000;
  }
  EXPECT_EQ(c.TransactionsFromLanes(lanes).size(), 2u);
}

TEST(Coalescer, FirstTouchOrderPreserved) {
  Coalescer c(32, 128);
  std::vector<Addr> lanes = {0x2000, 0x1000, 0x2040, 0x3000};
  const auto lines = c.TransactionsFromLanes(lanes);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], 0x2000u);
  EXPECT_EQ(lines[1], 0x1000u);
  EXPECT_EQ(lines[2], 0x3000u);
}

TEST(Coalescer, BroadcastSharedTileIsOneTransaction) {
  Coalescer c(32, 128);
  SharedTilePattern p(0, 32, 32, /*tile_lines=*/16, /*share_degree=*/0);
  // Two warps at the same iteration touch the same line.
  const auto a = c.Transactions(p, 0, 3);
  const auto b = c.Transactions(p, 17, 3);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0], b[0]);
}

}  // namespace
}  // namespace dlpsim
