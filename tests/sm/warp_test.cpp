#include "sm/warp.h"

#include <gtest/gtest.h>

#include "workloads/registry.h"

namespace dlpsim {
namespace {

std::unique_ptr<Program> TinyProgram(std::uint32_t iters) {
  ProgramBuilder b(iters);
  b.Alu(2).LoadStream().Alu(1);
  return b.Build();
}

TEST(Warp, EmptyProgramIsFinishedImmediately) {
  Program empty;
  Warp w(0, 0, &empty);
  EXPECT_TRUE(w.Finished());
  EXPECT_FALSE(w.Issueable(0));
}

TEST(Warp, WalksRunLengthBlocksAndIterations) {
  auto prog = TinyProgram(2);
  Warp w(0, 0, prog.get());
  // Iteration structure: alu x2, load, alu x1 -> 4 issues per iteration.
  for (int iter = 0; iter < 2; ++iter) {
    EXPECT_EQ(w.iteration(), static_cast<std::uint64_t>(iter));
    EXPECT_EQ(w.Current().op, OpClass::kAlu);
    w.AdvanceIssue(0);
    EXPECT_EQ(w.Current().op, OpClass::kAlu);  // still in the x2 block
    w.AdvanceIssue(0);
    EXPECT_EQ(w.Current().op, OpClass::kLoad);
    w.AdvanceIssue(0);
    if (!w.Finished()) {
      EXPECT_EQ(w.Current().op, OpClass::kAlu);
      w.AdvanceIssue(0);
    }
  }
  EXPECT_TRUE(w.Finished());
  EXPECT_EQ(w.issued_slots(), 8u);
}

TEST(Warp, MemBlockingAndWake) {
  auto prog = TinyProgram(1);
  Warp w(0, 0, prog.get());
  w.BlockOnMem(10);
  EXPECT_FALSE(w.Issueable(10));
  EXPECT_FALSE(w.Quiescent());
  w.AddOutstanding(2);
  w.OnMemOpDispatched();
  EXPECT_FALSE(w.Issueable(10));  // transactions still pending
  w.OnTransactionDone();
  EXPECT_FALSE(w.Issueable(10));
  w.OnTransactionDone();
  EXPECT_TRUE(w.Issueable(11));
  EXPECT_TRUE(w.Quiescent());
}

TEST(Warp, NoWakeBeforeDispatchComplete) {
  // All transactions that were dispatched may complete while the op is
  // still being fed to the LD/ST unit; the warp must stay blocked.
  auto prog = TinyProgram(1);
  Warp w(0, 0, prog.get());
  w.BlockOnMem(0);
  w.AddOutstanding(1);
  w.OnTransactionDone();
  EXPECT_FALSE(w.Issueable(1));  // mem op still in flight
  w.OnMemOpDispatched();
  EXPECT_TRUE(w.Issueable(1));
}

TEST(Warp, BusyUntilElapses) {
  auto prog = TinyProgram(1);
  Warp w(0, 0, prog.get());
  w.BusyFor(100, 20);
  EXPECT_FALSE(w.Issueable(100));
  EXPECT_FALSE(w.Issueable(119));
  EXPECT_TRUE(w.Issueable(120));
}

TEST(Warp, FinishedSurvivesLateWakeups) {
  ProgramBuilder b(1);
  b.LoadStream();
  auto prog = b.Build();
  Warp w(0, 0, prog.get());
  ASSERT_EQ(w.Current().op, OpClass::kLoad);
  w.AdvanceIssue(0);
  EXPECT_TRUE(w.Finished());
  w.BlockOnMem(0);  // load data still outstanding
  w.AddOutstanding(1);
  w.OnMemOpDispatched();
  w.OnTransactionDone();
  EXPECT_TRUE(w.Finished());   // the late fill must not resurrect it
  EXPECT_FALSE(w.Issueable(5));
  EXPECT_TRUE(w.Quiescent());
}

TEST(Warp, GlobalIdPreserved) {
  auto prog = TinyProgram(1);
  Warp w(3, 1234, prog.get());
  EXPECT_EQ(w.id(), 3u);
  EXPECT_EQ(w.global_id(), 1234u);
}

}  // namespace
}  // namespace dlpsim
