#include "sm/ldst_unit.h"

#include <gtest/gtest.h>

#include "workloads/registry.h"

namespace dlpsim {
namespace {

class LdStUnitTest : public ::testing::Test {
 protected:
  LdStUnitTest() {
    cfg_.l1d.geom.sets = 2;
    cfg_.l1d.geom.ways = 2;
    cfg_.l1d.geom.index = IndexFunction::kLinear;
    cfg_.l1d.mshr_entries = 4;
    cfg_.l1d.miss_queue_entries = 8;
    cache_ = std::make_unique<L1DCache>(cfg_.l1d);
    unit_ = std::make_unique<LdStUnit>(cfg_.core, cache_.get());

    ProgramBuilder b(10);
    b.LoadStream().Alu(1);
    prog_ = b.Build();
    for (std::uint32_t i = 0; i < 4; ++i) warps_.emplace_back(i, i, prog_.get());
  }

  WarpMemOp LoadOp(std::uint32_t warp, std::vector<Addr> lines) {
    WarpMemOp op;
    op.warp_index = warp;
    op.pc = 0;
    op.type = AccessType::kLoad;
    op.lines = std::move(lines);
    return op;
  }

  void FillAll() {
    std::vector<MshrToken> woken;
    while (cache_->HasOutgoing()) {
      const L1DOutgoing out = cache_->PopOutgoing();
      if (!out.write) {
        cache_->Fill(L1DResponse{out.block, out.no_fill, out.token}, 0,
                     woken);
      }
    }
    for (MshrToken t : woken) warps_[t].OnTransactionDone();
  }

  SimConfig cfg_;
  std::unique_ptr<L1DCache> cache_;
  std::unique_ptr<LdStUnit> unit_;
  std::unique_ptr<Program> prog_;
  std::vector<Warp> warps_;
};

TEST_F(LdStUnitTest, DispatchesOneTransactionPerCycle) {
  warps_[0].BlockOnMem(0);
  unit_->Enqueue(LoadOp(0, {0, 128}));
  unit_->Tick(0, warps_);
  EXPECT_EQ(unit_->transactions, 1u);
  EXPECT_FALSE(unit_->Idle());  // second line still pending
  unit_->Tick(1, warps_);
  EXPECT_EQ(unit_->transactions, 2u);
  EXPECT_TRUE(unit_->Idle());
  EXPECT_EQ(warps_[0].outstanding(), 2u);
}

TEST_F(LdStUnitTest, WarpWakesAfterAllTransactionsReturn) {
  warps_[0].BlockOnMem(0);
  unit_->Enqueue(LoadOp(0, {0, 128}));
  unit_->Tick(0, warps_);
  unit_->Tick(1, warps_);
  EXPECT_FALSE(warps_[0].Issueable(2));
  FillAll();
  EXPECT_TRUE(warps_[0].Issueable(2));
}

TEST_F(LdStUnitTest, HeadOfLineBlockingOnReservationFail) {
  // Fill set 0 with reserved lines: blocks 0 and 2 (2 sets, linear).
  warps_[0].BlockOnMem(0);
  unit_->Enqueue(LoadOp(0, {0 * 128, 2 * 128, 4 * 128}));
  unit_->Tick(0, warps_);
  unit_->Tick(1, warps_);
  // Third transaction targets the fully reserved set 0 -> stall.
  unit_->Tick(2, warps_);
  EXPECT_EQ(unit_->stall_cycles, 1u);
  // An op from another warp behind the head cannot proceed either.
  warps_[1].BlockOnMem(3);
  unit_->Enqueue(LoadOp(1, {1 * 128}));
  unit_->Tick(3, warps_);
  EXPECT_EQ(unit_->stall_cycles, 2u);
  EXPECT_EQ(unit_->queue_depth(), 2u);

  // Resolving the fills unblocks the pipeline.
  FillAll();
  unit_->Tick(4, warps_);  // head's third transaction now reserves
  unit_->Tick(5, warps_);  // second op dispatches
  EXPECT_TRUE(unit_->Idle());
}

TEST_F(LdStUnitTest, StoresAreFireAndForget) {
  WarpMemOp op;
  op.warp_index = 0;
  op.type = AccessType::kStore;
  op.lines = {0};
  unit_->Enqueue(std::move(op));
  unit_->Tick(0, warps_);
  EXPECT_TRUE(unit_->Idle());
  EXPECT_TRUE(warps_[0].Issueable(1));  // never blocked
  EXPECT_EQ(warps_[0].outstanding(), 0u);
}

TEST_F(LdStUnitTest, AllHitLoadWakesWithoutOutstanding) {
  warps_[0].BlockOnMem(0);
  unit_->Enqueue(LoadOp(0, {0}));
  unit_->Tick(0, warps_);
  FillAll();
  EXPECT_TRUE(warps_[0].Issueable(1));
  // Second access to the same line hits; the warp wakes on dispatch.
  warps_[1].BlockOnMem(1);
  unit_->Enqueue(LoadOp(1, {0}));
  unit_->Tick(1, warps_);
  EXPECT_EQ(warps_[1].outstanding(), 0u);
  EXPECT_TRUE(warps_[1].Issueable(2));
}

TEST_F(LdStUnitTest, CapacityBound) {
  for (std::uint32_t i = 0; i < cfg_.core.ldst_queue_entries; ++i) {
    ASSERT_TRUE(unit_->CanAccept());
    unit_->Enqueue(LoadOp(0, {static_cast<Addr>(i) * 128}));
  }
  EXPECT_FALSE(unit_->CanAccept());
}

}  // namespace
}  // namespace dlpsim
