#include "sm/scheduler.h"

#include <gtest/gtest.h>

#include "workloads/registry.h"

namespace dlpsim {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() {
    ProgramBuilder b(100);
    b.Alu(10);
    prog_ = b.Build();
    for (std::uint32_t i = 0; i < 6; ++i) {
      warps_.emplace_back(i, i, prog_.get());
    }
  }

  std::unique_ptr<Program> prog_;
  std::vector<Warp> warps_;
};

TEST_F(SchedulerTest, GtoPicksOldestInitially) {
  WarpScheduler sched(SchedulerKind::kGto, 0, 1);
  EXPECT_EQ(sched.Pick(warps_, 0), 0u);
}

TEST_F(SchedulerTest, GtoStaysGreedyOnLastIssued) {
  WarpScheduler sched(SchedulerKind::kGto, 0, 1);
  sched.OnIssued(3);
  EXPECT_EQ(sched.Pick(warps_, 0), 3u);  // greedy on warp 3
  // When warp 3 blocks, fall back to the oldest ready warp.
  warps_[3].BlockOnMem(0);
  EXPECT_EQ(sched.Pick(warps_, 0), 0u);
}

TEST_F(SchedulerTest, GtoHonorsOwnershipPartition) {
  // Two schedulers: even warps belong to 0, odd to 1.
  WarpScheduler s0(SchedulerKind::kGto, 0, 2);
  WarpScheduler s1(SchedulerKind::kGto, 1, 2);
  EXPECT_EQ(s0.Pick(warps_, 0), 0u);
  EXPECT_EQ(s1.Pick(warps_, 0), 1u);
  warps_[0].BlockOnMem(0);
  warps_[1].BlockOnMem(0);
  EXPECT_EQ(s0.Pick(warps_, 0), 2u);
  EXPECT_EQ(s1.Pick(warps_, 0), 3u);
}

TEST_F(SchedulerTest, GtoReturnsInvalidWhenNothingReady) {
  WarpScheduler sched(SchedulerKind::kGto, 0, 1);
  for (Warp& w : warps_) w.BlockOnMem(0);
  EXPECT_EQ(sched.Pick(warps_, 0), kInvalidIndex);
}

TEST_F(SchedulerTest, LrrRotatesThroughWarps) {
  WarpScheduler sched(SchedulerKind::kLrr, 0, 1);
  std::vector<std::uint32_t> picks;
  for (int i = 0; i < 6; ++i) {
    const std::uint32_t w = sched.Pick(warps_, 0);
    picks.push_back(w);
    sched.OnIssued(w);
  }
  EXPECT_EQ(picks, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
  // Wraps around.
  EXPECT_EQ(sched.Pick(warps_, 0), 0u);
}

TEST_F(SchedulerTest, LrrSkipsBlockedWarps) {
  WarpScheduler sched(SchedulerKind::kLrr, 0, 1);
  warps_[1].BlockOnMem(0);
  sched.OnIssued(0);
  EXPECT_EQ(sched.Pick(warps_, 0), 2u);
}

TEST_F(SchedulerTest, LrrHonorsPartition) {
  WarpScheduler s1(SchedulerKind::kLrr, 1, 2);
  EXPECT_EQ(s1.Pick(warps_, 0), 1u);
  s1.OnIssued(1);
  EXPECT_EQ(s1.Pick(warps_, 0), 3u);
  s1.OnIssued(3);
  EXPECT_EQ(s1.Pick(warps_, 0), 5u);
  s1.OnIssued(5);
  EXPECT_EQ(s1.Pick(warps_, 0), 1u);
}

TEST_F(SchedulerTest, GtoGreedyEndsWhenWarpFinishes) {
  WarpScheduler sched(SchedulerKind::kGto, 0, 1);
  ProgramBuilder b(1);
  b.Alu(1);
  auto tiny = b.Build();
  std::vector<Warp> warps;
  warps.emplace_back(0, 0, tiny.get());
  warps.emplace_back(1, 1, tiny.get());
  EXPECT_EQ(sched.Pick(warps, 0), 0u);
  warps[0].AdvanceIssue(0);
  sched.OnIssued(0);
  ASSERT_TRUE(warps[0].Finished());
  EXPECT_EQ(sched.Pick(warps, 1), 1u);
}

}  // namespace
}  // namespace dlpsim
