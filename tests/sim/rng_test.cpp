#include "sim/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace dlpsim {
namespace {

TEST(SplitMix64, DeterministicAndDispersive) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(SplitMix64(i));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions on consecutive inputs
}

TEST(HashMix, OrderSensitive) {
  EXPECT_NE(HashMix(1, 2), HashMix(2, 1));
  EXPECT_EQ(HashMix(42, 7), HashMix(42, 7));
}

TEST(Rng, ReproducibleFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfSampler, UniformWhenSIsZero) {
  ZipfSampler z(100, 0.0);
  std::vector<int> counts(100, 0);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) ++counts[z.Sample(rng.NextDouble())];
  for (int c : counts) EXPECT_GT(c, 500);  // ~1000 expected each
}

TEST(ZipfSampler, SkewConcentratesOnLowIndices) {
  ZipfSampler z(1000, 0.9);
  Rng rng(7);
  std::uint64_t low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (z.Sample(rng.NextDouble()) < 10) ++low;
  }
  // With strong skew the first 1% of items should draw far more than 1%.
  EXPECT_GT(low, static_cast<std::uint64_t>(0.15 * n));
}

TEST(ZipfSampler, SamplesAlwaysInRange) {
  for (double s : {0.0, 0.5, 1.0, 1.3}) {
    ZipfSampler z(37, s);
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) EXPECT_LT(z.Sample(rng.NextDouble()), 37u);
    // Boundary values of u.
    EXPECT_LT(z.Sample(0.0), 37u);
    EXPECT_LT(z.Sample(0.999999999), 37u);
  }
}

}  // namespace
}  // namespace dlpsim
