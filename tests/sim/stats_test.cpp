#include "sim/stats.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

TEST(StatRegistry, RegisterAndRead) {
  std::uint64_t counter = 0;
  StatRegistry reg;
  EXPECT_TRUE(reg.Register("x.count", &counter));
  counter = 42;
  EXPECT_EQ(reg.Get("x.count"), 42u);
  EXPECT_TRUE(reg.Has("x.count"));
}

TEST(StatRegistry, DuplicateNamesRejected) {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  StatRegistry reg;
  EXPECT_TRUE(reg.Register("n", &a));
  EXPECT_FALSE(reg.Register("n", &b));
  a = 7;
  EXPECT_EQ(reg.Get("n"), 7u);
}

TEST(StatRegistry, UnknownNameReadsZero) {
  StatRegistry reg;
  EXPECT_EQ(reg.Get("missing"), 0u);
  EXPECT_FALSE(reg.Has("missing"));
}

TEST(StatRegistry, NamesSorted) {
  std::uint64_t c = 0;
  StatRegistry reg;
  reg.Register("b", &c);
  reg.Register("a", &c);
  reg.Register("c", &c);
  const auto names = reg.Names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
}

TEST(StatRegistry, DumpFormat) {
  std::uint64_t c = 5;
  StatRegistry reg;
  reg.Register("one", &c);
  EXPECT_EQ(reg.Dump(), "one 5\n");
}

TEST(SaturatingCounter, SaturatesAtWidth) {
  SaturatingCounter c(2);  // max 3
  EXPECT_EQ(c.max(), 3u);
  for (int i = 0; i < 10; ++i) c.Increment();
  EXPECT_EQ(c.value(), 3u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(SaturatingCounter, PaperWidths) {
  SaturatingCounter tda(8);
  SaturatingCounter vta(10);
  EXPECT_EQ(tda.max(), 255u);
  EXPECT_EQ(vta.max(), 1023u);
}

TEST(SaturatingCounter, WideCounterDoesNotOverflowShift) {
  SaturatingCounter c(32);
  EXPECT_EQ(c.max(), 0xffffffffu);
}

}  // namespace
}  // namespace dlpsim
