#include "sim/config.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

TEST(SimConfig, BaselineMatchesTable1) {
  const SimConfig cfg = SimConfig::Baseline16KB();
  EXPECT_EQ(cfg.num_cores, 16u);
  EXPECT_EQ(cfg.core.warp_size, 32u);
  EXPECT_EQ(cfg.core.max_warps, 48u);
  EXPECT_EQ(cfg.core.num_schedulers, 2u);
  EXPECT_EQ(cfg.l1d.geom.sets, 32u);
  EXPECT_EQ(cfg.l1d.geom.ways, 4u);
  EXPECT_EQ(cfg.l1d.geom.size_bytes(), 16u * 1024u);
  EXPECT_EQ(cfg.l1d.geom.index, IndexFunction::kHash);
  EXPECT_EQ(cfg.num_partitions, 12u);
  EXPECT_EQ(cfg.l2.geom.sets, 64u);
  EXPECT_EQ(cfg.l2.geom.ways, 8u);
  EXPECT_EQ(cfg.l2.geom.index, IndexFunction::kLinear);
  // 768KB total L2 over 12 partitions.
  EXPECT_EQ(cfg.l2.geom.size_bytes() * cfg.num_partitions, 768u * 1024u);
  EXPECT_EQ(cfg.dram.banks, 6u);
  EXPECT_DOUBLE_EQ(cfg.core_mhz, 650.0);
  EXPECT_DOUBLE_EQ(cfg.icnt_mhz, 650.0);
  EXPECT_DOUBLE_EQ(cfg.mem_mhz, 924.0);
}

TEST(SimConfig, Cache32KBDoublesWaysOnly) {
  const SimConfig cfg = SimConfig::Cache32KB();
  EXPECT_EQ(cfg.l1d.geom.sets, 32u);
  EXPECT_EQ(cfg.l1d.geom.ways, 8u);
  EXPECT_EQ(cfg.l1d.geom.size_bytes(), 32u * 1024u);
}

TEST(SimConfig, Cache64KBQuadruplesWaysOnly) {
  const SimConfig cfg = SimConfig::Cache64KB();
  EXPECT_EQ(cfg.l1d.geom.sets, 32u);
  EXPECT_EQ(cfg.l1d.geom.ways, 16u);
  EXPECT_EQ(cfg.l1d.geom.size_bytes(), 64u * 1024u);
}

TEST(SimConfig, WithPolicySetsOnlyPolicy) {
  const SimConfig cfg = SimConfig::WithPolicy(PolicyKind::kDlp);
  EXPECT_EQ(cfg.l1d.policy, PolicyKind::kDlp);
  EXPECT_EQ(cfg.l1d.geom.size_bytes(), 16u * 1024u);
}

TEST(SimConfig, ProtectionDefaultsMatchPaper) {
  const ProtectionConfig prot;
  EXPECT_EQ(prot.sample_accesses, 200u);   // §4.1.4
  EXPECT_EQ(prot.pdpt_entries, 128u);      // §4.1.3
  EXPECT_EQ(prot.insn_id_bits, 7u);        // §4.3
  EXPECT_EQ(prot.pd_bits, 4u);             // §4.3
  EXPECT_EQ(prot.pd_max(), 15u);
  EXPECT_EQ(prot.tda_hit_bits, 8u);        // §4.3
  EXPECT_EQ(prot.vta_hit_bits, 10u);       // §4.3
}

TEST(SimConfig, PartitionInterleavingCoversAllPartitions) {
  const SimConfig cfg;
  std::vector<int> seen(cfg.num_partitions, 0);
  for (Addr a = 0; a < 64 * 1024; a += cfg.partition_chunk_bytes) {
    ++seen[cfg.PartitionOf(a)];
  }
  for (std::uint32_t p = 0; p < cfg.num_partitions; ++p) {
    EXPECT_GT(seen[p], 0) << "partition " << p << " never addressed";
  }
}

TEST(SimConfig, PartitionStableWithinChunk) {
  const SimConfig cfg;
  const Addr base = 7 * cfg.partition_chunk_bytes;
  const PartitionId p = cfg.PartitionOf(base);
  for (Addr off = 0; off < cfg.partition_chunk_bytes; ++off) {
    EXPECT_EQ(cfg.PartitionOf(base + off), p);
  }
}

TEST(PolicyKindNames, AllDistinct) {
  EXPECT_STREQ(ToString(PolicyKind::kBaseline), "Baseline");
  EXPECT_STREQ(ToString(PolicyKind::kStallBypass), "Stall-Bypass");
  EXPECT_STREQ(ToString(PolicyKind::kGlobalProtection), "Global-Protection");
  EXPECT_STREQ(ToString(PolicyKind::kDlp), "DLP");
}

}  // namespace
}  // namespace dlpsim
