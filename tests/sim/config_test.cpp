#include "sim/config.h"

#include <gtest/gtest.h>

#include "gpu/simulator.h"
#include "workloads/registry.h"

namespace dlpsim {
namespace {

TEST(SimConfig, BaselineMatchesTable1) {
  const SimConfig cfg = SimConfig::Baseline16KB();
  EXPECT_EQ(cfg.num_cores, 16u);
  EXPECT_EQ(cfg.core.warp_size, 32u);
  EXPECT_EQ(cfg.core.max_warps, 48u);
  EXPECT_EQ(cfg.core.num_schedulers, 2u);
  EXPECT_EQ(cfg.l1d.geom.sets, 32u);
  EXPECT_EQ(cfg.l1d.geom.ways, 4u);
  EXPECT_EQ(cfg.l1d.geom.size_bytes(), 16u * 1024u);
  EXPECT_EQ(cfg.l1d.geom.index, IndexFunction::kHash);
  EXPECT_EQ(cfg.num_partitions, 12u);
  EXPECT_EQ(cfg.l2.geom.sets, 64u);
  EXPECT_EQ(cfg.l2.geom.ways, 8u);
  EXPECT_EQ(cfg.l2.geom.index, IndexFunction::kLinear);
  // 768KB total L2 over 12 partitions.
  EXPECT_EQ(cfg.l2.geom.size_bytes() * cfg.num_partitions, 768u * 1024u);
  EXPECT_EQ(cfg.dram.banks, 6u);
  EXPECT_DOUBLE_EQ(cfg.core_mhz, 650.0);
  EXPECT_DOUBLE_EQ(cfg.icnt_mhz, 650.0);
  EXPECT_DOUBLE_EQ(cfg.mem_mhz, 924.0);
}

TEST(SimConfig, Cache32KBDoublesWaysOnly) {
  const SimConfig cfg = SimConfig::Cache32KB();
  EXPECT_EQ(cfg.l1d.geom.sets, 32u);
  EXPECT_EQ(cfg.l1d.geom.ways, 8u);
  EXPECT_EQ(cfg.l1d.geom.size_bytes(), 32u * 1024u);
}

TEST(SimConfig, Cache64KBQuadruplesWaysOnly) {
  const SimConfig cfg = SimConfig::Cache64KB();
  EXPECT_EQ(cfg.l1d.geom.sets, 32u);
  EXPECT_EQ(cfg.l1d.geom.ways, 16u);
  EXPECT_EQ(cfg.l1d.geom.size_bytes(), 64u * 1024u);
}

TEST(SimConfig, WithPolicySetsOnlyPolicy) {
  const SimConfig cfg = SimConfig::WithPolicy(PolicyKind::kDlp);
  EXPECT_EQ(cfg.l1d.policy, PolicyKind::kDlp);
  EXPECT_EQ(cfg.l1d.geom.size_bytes(), 16u * 1024u);
}

TEST(SimConfig, ProtectionDefaultsMatchPaper) {
  const ProtectionConfig prot;
  EXPECT_EQ(prot.sample_accesses, 200u);   // §4.1.4
  EXPECT_EQ(prot.pdpt_entries, 128u);      // §4.1.3
  EXPECT_EQ(prot.insn_id_bits, 7u);        // §4.3
  EXPECT_EQ(prot.pd_bits, 4u);             // §4.3
  EXPECT_EQ(prot.pd_max(), 15u);
  EXPECT_EQ(prot.tda_hit_bits, 8u);        // §4.3
  EXPECT_EQ(prot.vta_hit_bits, 10u);       // §4.3
}

TEST(SimConfig, PartitionInterleavingCoversAllPartitions) {
  const SimConfig cfg;
  std::vector<int> seen(cfg.num_partitions, 0);
  for (Addr a = 0; a < 64 * 1024; a += cfg.partition_chunk_bytes) {
    ++seen[cfg.PartitionOf(a)];
  }
  for (std::uint32_t p = 0; p < cfg.num_partitions; ++p) {
    EXPECT_GT(seen[p], 0) << "partition " << p << " never addressed";
  }
}

TEST(SimConfig, PartitionStableWithinChunk) {
  const SimConfig cfg;
  const Addr base = 7 * cfg.partition_chunk_bytes;
  const PartitionId p = cfg.PartitionOf(base);
  for (Addr off = 0; off < cfg.partition_chunk_bytes; ++off) {
    EXPECT_EQ(cfg.PartitionOf(base + off), p);
  }
}

TEST(PolicyKindNames, AllDistinct) {
  EXPECT_STREQ(ToString(PolicyKind::kBaseline), "Baseline");
  EXPECT_STREQ(ToString(PolicyKind::kStallBypass), "Stall-Bypass");
  EXPECT_STREQ(ToString(PolicyKind::kGlobalProtection), "Global-Protection");
  EXPECT_STREQ(ToString(PolicyKind::kDlp), "DLP");
}


TEST(ConfigValidation, PresetsAreValid) {
  EXPECT_TRUE(SimConfig::Baseline16KB().Validate().empty());
  EXPECT_TRUE(SimConfig::Cache32KB().Validate().empty());
  EXPECT_TRUE(SimConfig::Cache64KB().Validate().empty());
  for (PolicyKind p : {PolicyKind::kBaseline, PolicyKind::kStallBypass,
                       PolicyKind::kGlobalProtection, PolicyKind::kDlp}) {
    EXPECT_TRUE(SimConfig::WithPolicy(p).Validate().empty());
  }
}

TEST(ConfigValidation, ReportsStructuredIssuesWithFieldNames) {
  SimConfig cfg;
  cfg.l1d.geom.sets = 0;          // not a nonzero power of two
  cfg.l1d.mshr_entries = 0;
  cfg.num_cores = 0;
  const std::vector<ConfigIssue> issues = cfg.Validate();
  ASSERT_GE(issues.size(), 3u);
  bool saw_sets = false;
  bool saw_mshr = false;
  bool saw_cores = false;
  for (const ConfigIssue& issue : issues) {
    if (issue.field.find("sets") != std::string::npos) saw_sets = true;
    if (issue.field.find("mshr_entries") != std::string::npos) saw_mshr = true;
    if (issue.field == "num_cores") saw_cores = true;
    EXPECT_FALSE(issue.message.empty()) << issue.field;
  }
  EXPECT_TRUE(saw_sets);
  EXPECT_TRUE(saw_mshr);
  EXPECT_TRUE(saw_cores);
}

TEST(ConfigValidation, ValidateOrThrowCarriesIssueList) {
  SimConfig cfg;
  cfg.l1d.geom.ways = 0;
  try {
    cfg.ValidateOrThrow();
    FAIL() << "invalid config accepted";
  } catch (const ConfigError& e) {
    EXPECT_FALSE(e.issues().empty());
    EXPECT_NE(std::string(e.what()).find("ways"), std::string::npos);
  }
}

TEST(ConfigValidation, WriteBackNeedsTwoMissQueueSlots) {
  SimConfig cfg;
  cfg.l1d.write_policy = WritePolicy::kWriteBackOnHit;
  cfg.l1d.miss_queue_entries = 1;  // dirty-victim livelock guard
  EXPECT_FALSE(cfg.Validate().empty());
  cfg.l1d.miss_queue_entries = 2;
  EXPECT_TRUE(cfg.Validate().empty());
}

TEST(ConfigValidation, GpuSimulatorRejectsBadConfigBeforeConstruction) {
  SimConfig cfg;
  cfg.l1d.geom.line_bytes = 100;  // not a power of two
  ProgramBuilder b(1);
  b.Alu(1);
  auto prog = b.Build();
  EXPECT_THROW(GpuSimulator(cfg, prog.get(), 1), ConfigError);
}

}  // namespace
}  // namespace dlpsim
