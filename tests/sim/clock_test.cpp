#include "sim/clock.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

TEST(ClockDomainSet, SingleDomainTicksEveryCall) {
  ClockDomainSet clocks;
  const auto core = clocks.AddDomain("core", 650.0);
  for (int i = 1; i <= 10; ++i) {
    const auto& fired = clocks.Tick();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], core);
    EXPECT_EQ(clocks.cycles(core), static_cast<Cycle>(i));
  }
}

TEST(ClockDomainSet, EqualFrequenciesStayInLockstep) {
  ClockDomainSet clocks;
  const auto core = clocks.AddDomain("core", 650.0);
  const auto icnt = clocks.AddDomain("icnt", 650.0);
  for (int i = 0; i < 1000; ++i) {
    const auto& fired = clocks.Tick();
    ASSERT_EQ(fired.size(), 2u) << "iteration " << i;
  }
  EXPECT_EQ(clocks.cycles(core), 1000u);
  EXPECT_EQ(clocks.cycles(icnt), 1000u);
}

TEST(ClockDomainSet, FasterDomainTicksProportionally) {
  ClockDomainSet clocks;
  const auto core = clocks.AddDomain("core", 650.0);
  const auto mem = clocks.AddDomain("mem", 924.0);
  // Advance until the core domain has seen 6500 cycles.
  while (clocks.cycles(core) < 6500) clocks.Tick();
  // mem should have ~ 6500 * 924 / 650 = 9240 cycles (within one tick).
  EXPECT_NEAR(static_cast<double>(clocks.cycles(mem)), 9240.0, 2.0);
}

TEST(ClockDomainSet, TimeAdvancesMonotonically) {
  ClockDomainSet clocks;
  clocks.AddDomain("a", 650.0);
  clocks.AddDomain("b", 924.0);
  double last = 0.0;
  for (int i = 0; i < 500; ++i) {
    clocks.Tick();
    EXPECT_GT(clocks.now_ns(), last);
    last = clocks.now_ns();
  }
}

TEST(ClockDomainSet, NoDriftOverLongRuns) {
  ClockDomainSet clocks;
  const auto core = clocks.AddDomain("core", 650.0);
  for (int i = 0; i < 100000; ++i) clocks.Tick();
  // cycle * period must match simulated time exactly (no accumulation).
  const double period = 1000.0 / 650.0;
  EXPECT_NEAR(clocks.now_ns(),
              static_cast<double>(clocks.cycles(core)) * period, 1e-6);
}

}  // namespace
}  // namespace dlpsim
