#include "cache/tag_array.h"

#include <gtest/gtest.h>

#include <set>

namespace dlpsim {
namespace {

CacheGeometry SmallGeom() {
  CacheGeometry g;
  g.sets = 4;
  g.ways = 2;
  g.line_bytes = 128;
  g.index = IndexFunction::kLinear;
  return g;
}

TEST(TagArray, BlockAndSetMappingLinear) {
  TagArray tda(SmallGeom());
  EXPECT_EQ(tda.BlockOf(0), 0u);
  EXPECT_EQ(tda.BlockOf(127), 0u);
  EXPECT_EQ(tda.BlockOf(128), 1u);
  EXPECT_EQ(tda.SetOf(0), 0u);
  EXPECT_EQ(tda.SetOf(128), 1u);
  EXPECT_EQ(tda.SetOf(4 * 128), 0u);  // wraps at 4 sets
}

TEST(TagArray, HashIndexCoversAllSetsForPowerOfTwoStrides) {
  CacheGeometry g;
  g.sets = 32;
  g.ways = 4;
  g.index = IndexFunction::kHash;
  TagArray tda(g);
  // A stride of exactly `sets` lines would alias to one set under linear
  // indexing; the hash must spread it.
  std::set<std::uint32_t> seen;
  for (Addr block = 0; block < 64; ++block) {
    seen.insert(tda.SetOfBlock(block * 32));
  }
  EXPECT_GT(seen.size(), 8u);
}

TEST(TagArray, HashIndexIsDeterministic) {
  CacheGeometry g;
  g.sets = 32;
  g.ways = 4;
  g.index = IndexFunction::kHash;
  TagArray a(g);
  TagArray b(g);
  for (Addr block = 0; block < 1000; ++block) {
    EXPECT_EQ(a.SetOfBlock(block), b.SetOfBlock(block));
    EXPECT_LT(a.SetOfBlock(block), 32u);
  }
}

TEST(TagArray, ProbeFindsReservedAndFilled) {
  TagArray tda(SmallGeom());
  EXPECT_EQ(tda.Probe(0, 42), kInvalidIndex);
  tda.Reserve(0, 1, 42, /*pc=*/7);
  EXPECT_EQ(tda.Probe(0, 42), 1u);
  EXPECT_EQ(tda.At(0, 1).state, LineState::kReserved);
  EXPECT_TRUE(tda.Fill(0, 42));
  EXPECT_EQ(tda.Probe(0, 42), 1u);
  EXPECT_EQ(tda.At(0, 1).state, LineState::kValid);
}

TEST(TagArray, FillRequiresReservation) {
  TagArray tda(SmallGeom());
  EXPECT_FALSE(tda.Fill(0, 99));  // nothing reserved
  tda.Reserve(0, 0, 99, 0);
  EXPECT_TRUE(tda.Fill(0, 99));
  EXPECT_FALSE(tda.Fill(0, 99));  // already valid
}

TEST(TagArray, ReserveReturnsPreviousContents) {
  TagArray tda(SmallGeom());
  tda.Reserve(1, 0, 10, 3);
  tda.Fill(1, 10);
  const CacheLine prev = tda.Reserve(1, 0, 20, 4);
  EXPECT_EQ(prev.block, 10u);
  EXPECT_EQ(prev.state, LineState::kValid);
  EXPECT_EQ(tda.At(1, 0).block, 20u);
  EXPECT_EQ(tda.At(1, 0).state, LineState::kReserved);
  EXPECT_EQ(tda.At(1, 0).src_pc, 4u);
}

TEST(TagArray, ReserveClearsDlpFields) {
  TagArray tda(SmallGeom());
  tda.Reserve(0, 0, 1, 0);
  tda.At(0, 0).protected_life = 9;
  tda.At(0, 0).insn_id = 5;
  tda.Reserve(0, 0, 2, 0);
  EXPECT_EQ(tda.At(0, 0).protected_life, 0u);
  EXPECT_EQ(tda.At(0, 0).insn_id, 0u);
}

TEST(TagArray, LruPrefersInvalidThenOldest) {
  TagArray tda(SmallGeom());
  const auto any = [](const CacheLine&) { return true; };
  // Empty set: first invalid way wins.
  EXPECT_EQ(tda.LruWayWhere(0, any), 0u);
  tda.Reserve(0, 0, 1, 0);
  tda.Fill(0, 1);
  EXPECT_EQ(tda.LruWayWhere(0, any), 1u);  // way 1 still invalid
  tda.Reserve(0, 1, 2, 0);
  tda.Fill(0, 2);
  // Both valid; way 0 was used first -> LRU.
  EXPECT_EQ(tda.LruWayWhere(0, any), 0u);
  tda.Touch(0, 0);
  EXPECT_EQ(tda.LruWayWhere(0, any), 1u);
}

TEST(TagArray, LruSkipsReservedLines) {
  TagArray tda(SmallGeom());
  tda.Reserve(0, 0, 1, 0);  // still RESERVED
  tda.Reserve(0, 1, 2, 0);
  tda.Fill(0, 2);
  const auto any = [](const CacheLine&) { return true; };
  EXPECT_EQ(tda.LruWayWhere(0, any), 1u);  // way 0 is reserved
}

TEST(TagArray, LruRespectsPredicate) {
  TagArray tda(SmallGeom());
  tda.Reserve(0, 0, 1, 0);
  tda.Fill(0, 1);
  tda.Reserve(0, 1, 2, 0);
  tda.Fill(0, 2);
  tda.At(0, 0).protected_life = 3;
  const auto unprotected = [](const CacheLine& l) {
    return l.protected_life == 0;
  };
  EXPECT_EQ(tda.LruWayWhere(0, unprotected), 1u);
  tda.At(0, 1).protected_life = 1;
  EXPECT_EQ(tda.LruWayWhere(0, unprotected), kInvalidIndex);
}

TEST(TagArray, InvalidateReturnsPrevious) {
  TagArray tda(SmallGeom());
  tda.Reserve(2, 0, 5, 0);
  tda.Fill(2, 5);
  const CacheLine prev = tda.Invalidate(2, 0);
  EXPECT_EQ(prev.block, 5u);
  EXPECT_EQ(tda.At(2, 0).state, LineState::kInvalid);
  EXPECT_EQ(tda.Probe(2, 5), kInvalidIndex);
}

TEST(TagArrayGeometry, SizeArithmetic) {
  CacheGeometry g;  // defaults: 32 sets, 4 ways, 128B
  EXPECT_EQ(g.num_lines(), 128u);
  EXPECT_EQ(g.size_bytes(), 16384u);
}

class TagArrayIndexParam
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(TagArrayIndexParam, AllBlocksMapInRange) {
  const auto [sets, index] = GetParam();
  CacheGeometry g;
  g.sets = sets;
  g.ways = 2;
  g.index = static_cast<IndexFunction>(index);
  TagArray tda(g);
  for (Addr block = 0; block < 10000; block += 7) {
    EXPECT_LT(tda.SetOfBlock(block), sets);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TagArrayIndexParam,
    ::testing::Combine(::testing::Values(1u, 2u, 8u, 32u, 64u),
                       ::testing::Values(0, 1)));

}  // namespace
}  // namespace dlpsim
