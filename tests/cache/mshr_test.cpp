#include "cache/mshr.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

TEST(Mshr, AllocateAndRetire) {
  MshrTable mshr(4, 2);
  EXPECT_TRUE(mshr.CanAllocate());
  EXPECT_FALSE(mshr.HasEntry(10));
  mshr.Allocate(10, 111);
  EXPECT_TRUE(mshr.HasEntry(10));
  EXPECT_EQ(mshr.size(), 1u);
  const auto tokens = mshr.Retire(10);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], 111u);
  EXPECT_FALSE(mshr.HasEntry(10));
  EXPECT_EQ(mshr.size(), 0u);
}

TEST(Mshr, MergePreservesOrder) {
  MshrTable mshr(4, 4);
  mshr.Allocate(10, 1);
  EXPECT_TRUE(mshr.CanMerge(10));
  mshr.Merge(10, 2);
  mshr.Merge(10, 3);
  const auto tokens = mshr.Retire(10);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], 1u);
  EXPECT_EQ(tokens[1], 2u);
  EXPECT_EQ(tokens[2], 3u);
}

TEST(Mshr, MergeLimitEnforced) {
  MshrTable mshr(4, 2);
  mshr.Allocate(10, 1);
  mshr.Merge(10, 2);
  EXPECT_FALSE(mshr.CanMerge(10));  // at the 2-target limit
  EXPECT_EQ(mshr.TargetCount(10), 2u);
}

TEST(Mshr, CannotMergeAbsentBlock) {
  MshrTable mshr(4, 2);
  EXPECT_FALSE(mshr.CanMerge(77));
}

TEST(Mshr, CapacityLimit) {
  MshrTable mshr(2, 2);
  mshr.Allocate(1, 0);
  mshr.Allocate(2, 0);
  EXPECT_TRUE(mshr.Full());
  EXPECT_FALSE(mshr.CanAllocate());
  // Merging into existing entries is still possible when full.
  EXPECT_TRUE(mshr.CanMerge(1));
  mshr.Retire(1);
  EXPECT_TRUE(mshr.CanAllocate());
}

TEST(Mshr, RetireUnknownBlockIsEmpty) {
  MshrTable mshr(2, 2);
  EXPECT_TRUE(mshr.Retire(123).empty());
}

TEST(Mshr, IndependentEntries) {
  MshrTable mshr(4, 2);
  mshr.Allocate(1, 10);
  mshr.Allocate(2, 20);
  mshr.Merge(1, 11);
  EXPECT_EQ(mshr.TargetCount(1), 2u);
  EXPECT_EQ(mshr.TargetCount(2), 1u);
  EXPECT_EQ(mshr.Retire(2).size(), 1u);
  EXPECT_EQ(mshr.TargetCount(1), 2u);
}

}  // namespace
}  // namespace dlpsim
