#include "cache/pl_counters.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

TEST(PlCounters, BucketClampsToFifteen) {
  EXPECT_EQ(PlCounters::Bucket(0), 0u);
  EXPECT_EQ(PlCounters::Bucket(14), 14u);
  EXPECT_EQ(PlCounters::Bucket(15), 15u);
  EXPECT_EQ(PlCounters::Bucket(63), 15u);
}

TEST(PlCounters, AddRemoveTracksOccupancy) {
  PlCounters c;
  EXPECT_EQ(c.occupied_lines(), 0u);
  c.Add(0);
  c.Add(3);
  c.Add(3);
  EXPECT_EQ(c.occupied_lines(), 3u);
  EXPECT_EQ(c.protected_lines(), 2u);
  EXPECT_EQ(c.histogram[3], 2u);
  c.Remove(3);
  EXPECT_EQ(c.protected_lines(), 1u);
  c.Remove(0);
  c.Remove(3);
  EXPECT_EQ(c.occupied_lines(), 0u);
}

TEST(PlCounters, MoveShiftsBuckets) {
  PlCounters c;
  c.Add(5);
  c.Move(5, 4);
  EXPECT_EQ(c.histogram[5], 0u);
  EXPECT_EQ(c.histogram[4], 1u);
  // Same-bucket moves (including clamped >=15 values) are no-ops.
  c.Move(4, 4);
  EXPECT_EQ(c.histogram[4], 1u);
  c.Move(4, 0);
  EXPECT_EQ(c.protected_lines(), 0u);
  EXPECT_EQ(c.occupied_lines(), 1u);
}

TEST(PlCounters, ClearResets) {
  PlCounters c;
  c.Add(2);
  c.Add(9);
  c.Clear();
  EXPECT_EQ(c.occupied_lines(), 0u);
  EXPECT_EQ(c.protected_lines(), 0u);
}

}  // namespace
}  // namespace dlpsim
