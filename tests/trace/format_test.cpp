// Primitive-codec tests for the DLPT packed trace format: varint/zigzag
// round trips at the edges, the CRC-32 test vector, LZ compressor round
// trips (including hostile inputs to the decompressor), and the block
// payload codec's reserved-bit / trailing-byte strictness.
#include "trace/format.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "trace/lz.h"

namespace dlpsim::trace {
namespace {

TEST(Varint, RoundTripsEdgeValues) {
  const std::uint64_t values[] = {
      0,   1,   127, 128, 129, 16383, 16384, 1u << 20, (1ull << 32) - 1,
      1ull << 32, 1ull << 56, std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) {
    std::string buf;
    PutVarint(&buf, v);
    ASSERT_LE(buf.size(), 10u);
    std::size_t pos = 0;
    std::uint64_t got = 0;
    ASSERT_TRUE(GetVarint(buf, &pos, &got)) << v;
    EXPECT_EQ(got, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, OneByteEncodingsAreMinimal) {
  for (std::uint64_t v = 0; v < 128; ++v) {
    std::string buf;
    PutVarint(&buf, v);
    EXPECT_EQ(buf.size(), 1u);
  }
}

TEST(Varint, RejectsTruncatedInput) {
  std::string buf;
  PutVarint(&buf, std::numeric_limits<std::uint64_t>::max());
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::size_t pos = 0;
    std::uint64_t got = 0;
    EXPECT_FALSE(GetVarint(std::string_view(buf).substr(0, cut), &pos, &got))
        << "truncated at " << cut;
  }
}

TEST(Varint, RejectsOverlongTenByteEncoding) {
  // Ten continuation-heavy bytes whose 10th byte carries bits beyond
  // 2^64 must be rejected, not silently wrapped.
  std::string buf(9, '\xff');
  buf.push_back('\x7f');  // would need 70 bits
  std::size_t pos = 0;
  std::uint64_t got = 0;
  EXPECT_FALSE(GetVarint(buf, &pos, &got));
}

TEST(Zigzag, RoundTripsFullRange) {
  const std::int64_t values[] = {0,
                                 -1,
                                 1,
                                 -2,
                                 2,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : values) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v) << v;
  }
  // Small magnitudes map to small codes (the property delta encoding
  // relies on for density).
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
  EXPECT_EQ(ZigzagEncode(-2), 3u);
}

TEST(Crc32, MatchesTheStandardTestVector) {
  // The universal CRC-32/ISO-HDLC check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    std::uint32_t crc = Crc32Update(0, std::string_view(data).substr(0, cut));
    crc = Crc32Update(crc, std::string_view(data).substr(cut));
    EXPECT_EQ(crc, Crc32(data)) << "split at " << cut;
  }
}

TEST(LittleEndian, U32AndU64RoundTrip) {
  std::string buf;
  PutU32(&buf, 0x01020304u);
  PutU64(&buf, 0x0102030405060708ull);
  ASSERT_EQ(buf.size(), 12u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04u);  // little-endian
  EXPECT_EQ(GetU32(buf.data()), 0x01020304u);
  EXPECT_EQ(GetU64(buf.data() + 4), 0x0102030405060708ull);
}

std::string Pattern(std::size_t n, int kind) {
  std::string s;
  s.reserve(n);
  std::uint64_t x = 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(kind);
  for (std::size_t i = 0; i < n; ++i) {
    switch (kind) {
      case 0:  // constant run
        s.push_back('a');
        break;
      case 1:  // short period
        s.push_back(static_cast<char>('a' + i % 4));
        break;
      default:  // pseudo-random (incompressible)
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.push_back(static_cast<char>(x));
        break;
    }
  }
  return s;
}

TEST(Lz, RoundTripsRepresentativeInputs) {
  const std::size_t sizes[] = {0, 1, 3, 4, 5, 64, 255, 256, 1000, 70000};
  for (const std::size_t n : sizes) {
    for (int kind = 0; kind < 3; ++kind) {
      const std::string raw = Pattern(n, kind);
      const std::string comp = LzCompress(raw);
      ASSERT_LE(comp.size(), LzMaxCompressedSize(raw.size()));
      std::string back;
      ASSERT_TRUE(LzDecompress(comp, raw.size(), &back))
          << "n=" << n << " kind=" << kind;
      EXPECT_EQ(back, raw) << "n=" << n << " kind=" << kind;
    }
  }
}

TEST(Lz, CompressesRuns) {
  const std::string raw = Pattern(64 * 1024, 0);
  EXPECT_LT(LzCompress(raw).size(), raw.size() / 8);
}

TEST(Lz, DecompressRejectsTruncatedStreams) {
  const std::string raw = Pattern(4096, 1);
  const std::string comp = LzCompress(raw);
  for (std::size_t cut = 0; cut < comp.size(); cut += 7) {
    std::string back;
    EXPECT_FALSE(
        LzDecompress(std::string_view(comp).substr(0, cut), raw.size(), &back))
        << "cut=" << cut;
  }
}

TEST(Lz, DecompressRejectsWrongDeclaredSize) {
  const std::string raw = Pattern(1000, 1);
  const std::string comp = LzCompress(raw);
  std::string back;
  EXPECT_FALSE(LzDecompress(comp, raw.size() - 1, &back));
  EXPECT_FALSE(LzDecompress(comp, raw.size() + 1, &back));
}

TEST(Lz, DecompressRejectsOutOfRangeMatchOffset) {
  // Token 0x04: 0 literals, match_len 4+4=8... encode minimal stream:
  // one sequence, no literals, offset 9 into an empty window.
  std::string evil;
  evil.push_back('\x04');
  evil.push_back('\x09');  // offset lo
  evil.push_back('\x00');  // offset hi
  std::string back;
  EXPECT_FALSE(LzDecompress(evil, 8, &back));
}

TEST(BlockPayload, RoundTripsIncludingWraparound) {
  std::vector<TraceAccess> records = {
      {0, 0, AccessType::kLoad},
      {0xffffffffffffffffull, 1, AccessType::kStore},
      {1, 1, AccessType::kLoad},  // wraps backwards across 2^64
      {0x8000000000000000ull, 2, AccessType::kLoad},
      {0x7fffffffffffffffull, 2, AccessType::kStore},
  };
  const std::string payload = EncodeBlockPayload(records, 0, records.size());
  std::vector<TraceAccess> back;
  TraceParseError err;
  ASSERT_TRUE(DecodeBlockPayload(payload, records.size(), &back, &err))
      << err.ToString();
  EXPECT_EQ(back, records);
}

TEST(BlockPayload, RejectsReservedFlagBits) {
  std::vector<TraceAccess> one = {{64, 1, AccessType::kLoad}};
  std::string payload = EncodeBlockPayload(one, 0, 1);
  payload[0] = static_cast<char>(payload[0] | 0x40);  // reserved bit
  std::vector<TraceAccess> back;
  TraceParseError err;
  EXPECT_FALSE(DecodeBlockPayload(payload, 1, &back, &err));
  EXPECT_EQ(err.kind, TraceErrorKind::kBadBlock);
}

TEST(BlockPayload, RejectsTrailingBytes) {
  std::vector<TraceAccess> one = {{64, 1, AccessType::kLoad}};
  std::string payload = EncodeBlockPayload(one, 0, 1);
  payload.push_back('\0');
  std::vector<TraceAccess> back;
  TraceParseError err;
  EXPECT_FALSE(DecodeBlockPayload(payload, 1, &back, &err));
  EXPECT_EQ(err.kind, TraceErrorKind::kBadBlock);
}

TEST(BlockPayload, RejectsMissingBytes) {
  std::vector<TraceAccess> two = {{64, 1, AccessType::kLoad},
                                  {128, 2, AccessType::kStore}};
  const std::string payload = EncodeBlockPayload(two, 0, 2);
  std::vector<TraceAccess> back;
  TraceParseError err;
  EXPECT_FALSE(DecodeBlockPayload(payload.substr(0, payload.size() - 1), 2,
                                  &back, &err));
  EXPECT_EQ(err.kind, TraceErrorKind::kBadBlock);
}

}  // namespace
}  // namespace dlpsim::trace
