// Content-hash tests: the trace ref is format independent (text and
// packed files of one record sequence share a ref), which is what lets
// the serve layer's content-addressed result cache coalesce the two
// forms onto one entry.
#include "trace/hash.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/content_cache.h"
#include "sim/rng.h"
#include "trace/record.h"
#include "trace/source.h"
#include "trace/writer.h"

namespace dlpsim::trace {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("dlpsim_trace_hash_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

std::vector<TraceAccess> SomeTrace(std::uint64_t seed, std::size_t n = 300) {
  Rng rng(seed);
  std::vector<TraceAccess> out;
  Addr a = 0;
  for (std::size_t i = 0; i < n; ++i) {
    a += 1 + rng.Below(1u << 16);
    out.push_back({a, static_cast<Pc>(rng.Below(8)),
                   rng.Below(3) == 0 ? AccessType::kStore : AccessType::kLoad});
  }
  return out;
}

TEST(Hash, FormatIndependentFileRef) {
  TempDir tmp;
  const std::vector<TraceAccess> records = SomeTrace(1);

  {
    std::ofstream os(tmp.Path("a.trace"), std::ios::binary);
    WriteTextTrace(os, records);
  }
  {
    // Non-canonical block size and metadata: the ref must not care.
    std::ofstream os(tmp.Path("a.dlpt"), std::ios::binary);
    ASSERT_TRUE(WritePackedTrace(os, records, "app X\n", 7));
  }

  TraceParseError err;
  const std::string text_ref = TraceFileRef(tmp.Path("a.trace"), &err);
  ASSERT_FALSE(text_ref.empty()) << err.ToString();
  const std::string packed_ref = TraceFileRef(tmp.Path("a.dlpt"), &err);
  ASSERT_FALSE(packed_ref.empty()) << err.ToString();
  EXPECT_EQ(text_ref, packed_ref);
  EXPECT_EQ(text_ref.rfind("trace-", 0), 0u);
  EXPECT_EQ(text_ref.size(), 6u + 16u);  // "trace-" + 16 hex digits
}

TEST(Hash, DifferentTracesDifferentRefs) {
  const std::vector<TraceAccess> ta = SomeTrace(1);
  const std::vector<TraceAccess> tb = SomeTrace(2);
  VectorTraceSource a(ta);
  VectorTraceSource b(tb);
  std::uint64_t ha = 0;
  std::uint64_t hb = 0;
  TraceParseError err;
  ASSERT_TRUE(TraceContentHash(a, &ha, &err));
  ASSERT_TRUE(TraceContentHash(b, &hb, &err));
  EXPECT_NE(ha, hb);
}

TEST(Hash, SensitiveToEveryRecordField) {
  const std::vector<TraceAccess> base = SomeTrace(3, 50);
  auto hash_of = [](std::vector<TraceAccess> t) {
    VectorTraceSource src(t);
    std::uint64_t h = 0;
    TraceParseError err;
    EXPECT_TRUE(TraceContentHash(src, &h, &err));
    return h;
  };
  const std::uint64_t h0 = hash_of(base);

  std::vector<TraceAccess> mod = base;
  mod[10].addr ^= 1;
  EXPECT_NE(hash_of(mod), h0);
  mod = base;
  mod[10].pc += 1;
  EXPECT_NE(hash_of(mod), h0);
  mod = base;
  mod[10].type = mod[10].type == AccessType::kLoad ? AccessType::kStore
                                                   : AccessType::kLoad;
  EXPECT_NE(hash_of(mod), h0);
  mod = base;
  mod.pop_back();
  EXPECT_NE(hash_of(mod), h0);
}

TEST(Hash, EmptyTraceHashesAndIsStable) {
  std::vector<TraceAccess> empty;
  VectorTraceSource a(empty);
  VectorTraceSource b(empty);
  std::uint64_t ha = 0;
  std::uint64_t hb = 1;
  TraceParseError err;
  ASSERT_TRUE(TraceContentHash(a, &ha, &err));
  ASSERT_TRUE(TraceContentHash(b, &hb, &err));
  EXPECT_EQ(ha, hb);
}

TEST(Hash, FnvMatchesServeFnv1a64) {
  // Same hash family as the serve layer's key hasher, same constants.
  const std::string samples[] = {"", "a", "trace", "dlpsim content key"};
  for (const std::string& s : samples) {
    EXPECT_EQ(FnvHash64(s, 0xcbf29ce484222325ull), serve::Fnv1a64(s)) << s;
  }
}

TEST(Hash, UnreadableFileIsTypedError) {
  TraceParseError err;
  std::uint64_t h = 0;
  EXPECT_FALSE(TraceFileHash("/nonexistent/nope.dlpt", &h, &err));
  EXPECT_EQ(err.kind, TraceErrorKind::kIo);
  EXPECT_EQ(TraceFileRef("/nonexistent/nope.dlpt", &err), "");
}

TEST(Hash, ServeContentKeysCoalesceAcrossFormats) {
  TempDir tmp;
  const std::vector<TraceAccess> records = SomeTrace(4);
  {
    std::ofstream os(tmp.Path("w.trace"), std::ios::binary);
    WriteTextTrace(os, records);
  }
  {
    std::ofstream os(tmp.Path("w.dlpt"), std::ios::binary);
    ASSERT_TRUE(WritePackedTrace(os, records));
  }
  TraceParseError err;
  const std::string config_text = "policy dlp\nsets 32\n";
  const std::string key_text = serve::ContentKey(
      config_text, TraceFileRef(tmp.Path("w.trace"), &err));
  const std::string key_packed = serve::ContentKey(
      config_text, TraceFileRef(tmp.Path("w.dlpt"), &err));
  EXPECT_EQ(key_text, key_packed);
  // A different trace still keys differently.
  {
    std::ofstream os(tmp.Path("x.trace"), std::ios::binary);
    WriteTextTrace(os, SomeTrace(5));
  }
  EXPECT_NE(serve::ContentKey(config_text,
                              TraceFileRef(tmp.Path("x.trace"), &err)),
            key_text);
}

}  // namespace
}  // namespace dlpsim::trace
