// Round-trip property suite for the packed trace format (ISSUE satellite:
// hostile seeded streams).
//
// Properties pinned here:
//   * pack -> unpack reproduces the record sequence exactly, and its
//     canonical text form is byte-identical to canonicalizing the input
//     (unpack(pack(t)) == canonicalize(t)), for hostile streams: address
//     wraparound across 2^64, maximum-delta jumps, zero-length traces,
//     duplicate PCs and duplicate addresses.
//   * TraceSource yields the identical sequence from the text form and
//     the packed form of the same trace.
//   * The writer's byte stream is a pure function of (records, meta,
//     block size) -- two writers over the same trace emit identical
//     bytes, which the content-hash layer (trace/hash.h) relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "trace/format.h"
#include "trace/record.h"
#include "trace/source.h"
#include "trace/writer.h"

namespace dlpsim::trace {
namespace {

/// Seeded hostile stream: mixes small strides, max-delta jumps between 0
/// and 2^64-1, a wrap zone near the address-space top, duplicate
/// addresses and heavily duplicated PCs.
std::vector<TraceAccess> HostileTrace(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<TraceAccess> out;
  out.reserve(n);
  Addr addr = 0;
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.Below(6)) {
      case 0:
        addr += 128;  // small stride
        break;
      case 1:
        addr = rng.Next();  // arbitrary jump
        break;
      case 2:
        addr = ~0ull - rng.Below(256);  // wrap zone
        break;
      case 3:
        addr = 0ull + rng.Below(256);  // low zone (max-delta from wrap zone)
        break;
      default:
        break;  // duplicate the previous address
    }
    const Pc pc = static_cast<Pc>(rng.Below(4));  // duplicate PCs by design
    const AccessType type =
        rng.Below(4) == 0 ? AccessType::kStore : AccessType::kLoad;
    out.push_back({addr, pc, type});
  }
  return out;
}

std::string PackToString(const std::vector<TraceAccess>& records,
                         std::uint32_t block_records,
                         std::string_view meta = "") {
  std::ostringstream os;
  EXPECT_TRUE(WritePackedTrace(os, records, meta, block_records));
  return os.str();
}

std::vector<TraceAccess> UnpackString(const std::string& bytes) {
  std::istringstream is(bytes);
  PackedTraceSource src(is);
  std::vector<TraceAccess> out;
  TraceParseError err;
  EXPECT_TRUE(ReadAllRecords(src, &out, &err)) << err.ToString();
  return out;
}

TEST(RoundTrip, HostileStreamsAcrossBlockSizes) {
  const std::uint32_t block_sizes[] = {1, 3, 7, 64, kCanonicalBlockRecords};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::vector<TraceAccess> records = HostileTrace(seed, 500);
    for (const std::uint32_t bs : block_sizes) {
      const std::vector<TraceAccess> back =
          UnpackString(PackToString(records, bs));
      ASSERT_EQ(back, records) << "seed=" << seed << " block=" << bs;
    }
  }
}

TEST(RoundTrip, UnpackedCanonicalTextIsByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const std::vector<TraceAccess> records = HostileTrace(seed, 300);
    const std::vector<TraceAccess> back =
        UnpackString(PackToString(records, 17));
    EXPECT_EQ(CanonicalText(back), CanonicalText(records)) << "seed=" << seed;
  }
}

TEST(RoundTrip, ZeroLengthTrace) {
  const std::vector<TraceAccess> empty;
  const std::string bytes = PackToString(empty, kCanonicalBlockRecords);
  // Header + footer only: no blocks.
  EXPECT_EQ(bytes.size(), kHeaderBytes + kFooterBytes);
  EXPECT_TRUE(UnpackString(bytes).empty());
}

TEST(RoundTrip, SingleRecordAndExactBlockBoundary) {
  const std::vector<TraceAccess> one = {{~0ull, 0, AccessType::kStore}};
  EXPECT_EQ(UnpackString(PackToString(one, 4)), one);

  // Exactly 2 full blocks, then 2 full + 1 straggler.
  std::vector<TraceAccess> eight = HostileTrace(99, 8);
  EXPECT_EQ(UnpackString(PackToString(eight, 4)), eight);
  eight.push_back({123, 9, AccessType::kLoad});
  EXPECT_EQ(UnpackString(PackToString(eight, 4)), eight);
}

TEST(RoundTrip, MaxDeltaJumpsBetweenExtremes) {
  // Alternating 0 <-> 2^64-1: every delta is the extreme zigzag value.
  std::vector<TraceAccess> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back({i % 2 == 0 ? 0ull : ~0ull,
                       static_cast<Pc>(i % 2 == 0 ? 0 : ~0u >> 1),
                       AccessType::kLoad});
  }
  EXPECT_EQ(UnpackString(PackToString(records, 8)), records);
}

TEST(RoundTrip, MetadataSurvives) {
  const std::vector<TraceAccess> records = HostileTrace(5, 32);
  const std::string meta = "app BFS\nscale 0.02\n";
  const std::string bytes = PackToString(records, 16, meta);
  std::istringstream is(bytes);
  PackedTraceSource src(is);
  EXPECT_EQ(src.meta(), meta);
  std::vector<TraceAccess> back;
  TraceParseError err;
  ASSERT_TRUE(ReadAllRecords(src, &back, &err)) << err.ToString();
  EXPECT_EQ(back, records);
}

TEST(RoundTrip, SourceEquivalenceTextVsPacked) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    const std::vector<TraceAccess> records = HostileTrace(seed, 400);

    std::istringstream text_is(CanonicalText(records));
    TextTraceSource text_src(text_is);

    std::istringstream packed_is(PackToString(records, 32));
    PackedTraceSource packed_src(packed_is);

    // Pull in lockstep: identical sequence, identical length.
    TraceAccess a;
    TraceAccess b;
    for (std::size_t i = 0;; ++i) {
      const bool ta = text_src.Next(&a);
      const bool pb = packed_src.Next(&b);
      ASSERT_EQ(ta, pb) << "length diverged at " << i;
      if (!ta) break;
      ASSERT_EQ(a, b) << "record " << i << " diverged (seed " << seed << ")";
    }
    EXPECT_TRUE(text_src.ok()) << text_src.error().ToString();
    EXPECT_TRUE(packed_src.ok()) << packed_src.error().ToString();
    EXPECT_EQ(text_src.delivered(), records.size());
    EXPECT_EQ(packed_src.delivered(), records.size());
  }
}

TEST(RoundTrip, WriterBytesAreDeterministic) {
  const std::vector<TraceAccess> records = HostileTrace(21, 1000);
  const std::string a = PackToString(records, kCanonicalBlockRecords, "m 1\n");
  const std::string b = PackToString(records, kCanonicalBlockRecords, "m 1\n");
  EXPECT_EQ(a, b);
  // Different block size -> different bytes, same records.
  const std::string c = PackToString(records, 10, "m 1\n");
  EXPECT_NE(a, c);
  EXPECT_EQ(UnpackString(c), records);
}

TEST(RoundTrip, StreamingWriterMatchesOneShot) {
  const std::vector<TraceAccess> records = HostileTrace(33, 257);
  std::ostringstream streamed;
  PackedTraceWriter w(streamed, "", 16);
  for (const TraceAccess& a : records) w.Append(a);
  ASSERT_TRUE(w.Finish()) << w.error().ToString();
  EXPECT_EQ(w.appended(), records.size());
  EXPECT_EQ(streamed.str(), PackToString(records, 16));
}

}  // namespace
}  // namespace dlpsim::trace
