// Differential determinism (ISSUE satellite): one golden app recorded at
// scale 0.02, replayed from its TEXT form and its PACKED form, across a
// config sweep, at jobs=1 and jobs=8 -- every combination must produce
// byte-identical golden-style JSON and byte-identical obs registry
// dumps. This pins the whole chain at once: recorder -> writer -> file
// -> source -> replayer is lossless, and the replay path stays
// schedule-independent like the rest of the simulator.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/run_grid.h"
#include "gpu/simulator.h"
#include "obs/metrics.h"
#include "sim/config.h"
#include "trace/recorder.h"
#include "trace/source.h"
#include "trace/writer.h"
#include "analysis/trace_replay.h"
#include "verify/golden.h"
#include "workloads/registry.h"

namespace dlpsim::trace {
namespace {

constexpr double kScale = 0.02;
constexpr const char* kApp = "BFS";  // golden app: in Table 2 / AllApps()

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> next{0};
    dir_ = std::filesystem::temp_directory_path() /
           ("dlpsim_trace_diff_" + std::to_string(::getpid()) + "_" + tag +
            "_" + std::to_string(next.fetch_add(1)));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

/// The replay config sweep: the four management schemes of the paper.
std::vector<std::pair<std::string, PolicyKind>> Sweep() {
  return {{"base", PolicyKind::kBaseline},
          {"sb", PolicyKind::kStallBypass},
          {"gp", PolicyKind::kGlobalProtection},
          {"dlp", PolicyKind::kDlp}};
}

/// Replays `path` (either format) across the sweep with `jobs` workers
/// and renders the results as (a) a golden-snapshot JSON string and (b)
/// an obs registry JSON dump built from fresh, local instruments.
struct DifferentialRun {
  std::string golden_json;
  std::string registry_json;
};

DifferentialRun ReplayAll(const std::string& path, std::size_t jobs) {
  const auto sweep = Sweep();
  const std::vector<ReplayResult> results = exec::ParallelMap(
      sweep.size(),
      [&](std::size_t i) {
        TraceParseError err;
        auto src = OpenTraceFile(path, &err);
        EXPECT_NE(src, nullptr) << err.ToString();
        L1DConfig cfg = SimConfig::Baseline16KB().l1d;
        cfg.policy = sweep[i].second;
        TraceReplayer replayer(cfg);
        ReplayResult r = replayer.Replay(*src);
        EXPECT_TRUE(src->ok()) << src->error().ToString();
        return r;
      },
      jobs);

  // Golden-style snapshot: the replay counters that determine the
  // published metrics, as exact integers.
  verify::GoldenSnapshot snap;
  snap.scale = kScale;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    verify::GoldenEntry e;
    e.app = kApp;
    e.config = sweep[i].first;
    e.core_cycles = results[i].cycles;
    e.committed_thread_insns = results[i].accesses;
    e.l1d_accesses = results[i].cache.accesses;
    e.l1d_loads = results[i].cache.loads;
    e.l1d_load_hits = results[i].cache.load_hits;
    e.l1d_load_misses = results[i].cache.load_misses;
    e.l1d_bypasses = results[i].cache.bypasses;
    e.l1d_misses_issued = results[i].cache.misses_issued;
    snap.entries.push_back(e);
  }

  DifferentialRun out;
  TempDir tmp("snap");
  const std::string snap_path = tmp.Path("snap.json");
  std::string err;
  EXPECT_TRUE(verify::SaveGoldenFile(snap_path, snap, &err)) << err;
  std::ifstream is(snap_path, std::ios::binary);
  std::ostringstream content;
  content << is.rdbuf();
  out.golden_json = content.str();

  // Registry dump: a fresh local registry fed only by this run, so the
  // dump is a pure function of the replay results (merge-order
  // independence of the global registry is pinned elsewhere).
  obs::Registry reg;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const std::string scope = "replay." + sweep[i].first;
    reg.GetCounter(scope, "cycles")->Add(results[i].cycles);
    reg.GetCounter(scope, "accesses")->Add(results[i].accesses);
    reg.GetCounter(scope, "stall_cycles")->Add(results[i].stall_cycles);
    reg.GetCounter(scope, "load_hits")->Add(results[i].cache.load_hits);
    reg.GetCounter(scope, "load_misses")->Add(results[i].cache.load_misses);
    reg.GetCounter(scope, "bypasses")->Add(results[i].cache.bypasses);
    reg.GetCounter(scope, "evictions")->Add(results[i].cache.evictions);
  }
  std::ostringstream reg_os;
  reg.WriteJson(reg_os);
  out.registry_json = reg_os.str();
  return out;
}

TEST(DifferentialDeterminism, TextAndPackedAgreeAtAnyJobCount) {
  // 1. Record the golden app once, streaming into BOTH forms.
  TempDir tmp("rec");
  const std::string text_path = tmp.Path("bfs.trace");
  const std::string packed_path = tmp.Path("bfs.dlpt");

  std::vector<TraceAccess> recorded;
  {
    Workload wl = MakeWorkload(kApp, kScale);
    GpuSimulator gpu(SimConfig::Baseline16KB(), wl.program.get(),
                     wl.warps_per_sm);
    std::ofstream packed_os(packed_path, std::ios::binary);
    PackedTraceWriter writer(packed_os, "app BFS\nscale 0.02\n");
    TraceRecorder rec(&writer, &recorded);
    gpu.AttachObserver(&rec);
    gpu.Run();
    ASSERT_TRUE(writer.Finish()) << writer.error().ToString();
    ASSERT_GT(rec.recorded(), 1000u) << "trace suspiciously small";

    std::ofstream text_os(text_path, std::ios::binary);
    WriteTextTrace(text_os, recorded);
    ASSERT_TRUE(text_os.good());
  }

  // Sanity: the two files hold the identical record sequence.
  {
    TraceParseError err;
    auto src = OpenTraceFile(packed_path, &err);
    ASSERT_NE(src, nullptr) << err.ToString();
    std::vector<TraceAccess> back;
    ASSERT_TRUE(ReadAllRecords(*src, &back, &err)) << err.ToString();
    ASSERT_EQ(back, recorded);
  }

  // 2. Replay from each format at jobs=1 and jobs=8.
  const DifferentialRun text_j1 = ReplayAll(text_path, 1);
  const DifferentialRun text_j8 = ReplayAll(text_path, 8);
  const DifferentialRun packed_j1 = ReplayAll(packed_path, 1);
  const DifferentialRun packed_j8 = ReplayAll(packed_path, 8);

  // 3. Byte identity across formats and job counts.
  ASSERT_FALSE(text_j1.golden_json.empty());
  EXPECT_EQ(text_j1.golden_json, text_j8.golden_json);
  EXPECT_EQ(text_j1.golden_json, packed_j1.golden_json);
  EXPECT_EQ(text_j1.golden_json, packed_j8.golden_json);

  ASSERT_FALSE(text_j1.registry_json.empty());
  EXPECT_EQ(text_j1.registry_json, text_j8.registry_json);
  EXPECT_EQ(text_j1.registry_json, packed_j1.registry_json);
  EXPECT_EQ(text_j1.registry_json, packed_j8.registry_json);
}

}  // namespace
}  // namespace dlpsim::trace
