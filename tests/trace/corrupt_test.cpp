// Corrupted-input suite for the packed trace reader (ISSUE satellite:
// every corruption class surfaces as a *typed* TraceParseError -- never a
// crash, an unbounded loop or a silent partial read that claims ok()).
//
// Directed cases cover each class once with its exact error kind pinned;
// the seeded FuzzPackedTraces corpus (same generator the verify-fuzz CI
// job runs with 500 cases) then sweeps truncations, bit flips and
// length-field forgeries across random hostile traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "trace/format.h"
#include "trace/record.h"
#include "trace/source.h"
#include "trace/writer.h"
#include "verify/fuzzer.h"

namespace dlpsim::trace {
namespace {

std::vector<TraceAccess> SmallTrace() {
  std::vector<TraceAccess> out;
  Rng rng(7);
  Addr a = 0;
  for (int i = 0; i < 40; ++i) {
    a += 128 * (1 + rng.Below(8));
    out.push_back({a, static_cast<Pc>(rng.Below(3)),
                   rng.Below(4) == 0 ? AccessType::kStore : AccessType::kLoad});
  }
  return out;
}

std::string PackedBytes(const std::string& meta = "k v\n",
                        std::uint32_t block_records = 16) {
  std::ostringstream os;
  EXPECT_TRUE(WritePackedTrace(os, SmallTrace(), meta, block_records));
  return os.str();
}

/// Reads `bytes` to exhaustion; returns the terminal error (kind kNone
/// when the stream parsed cleanly). Asserts the pull loop is bounded
/// (ASSERT_ needs a void context, hence the inner lambda).
TraceParseError MustReadAll(const std::string& bytes) {
  TraceParseError err;
  [&]() {
    std::istringstream is(bytes);
    PackedTraceSource src(is);
    TraceAccess a;
    std::size_t pulls = 0;
    while (src.Next(&a)) {
      ASSERT_LT(++pulls, 1u << 20) << "unbounded pull loop";
    }
    err = src.error();
  }();
  return err;
}

TEST(Corrupt, CleanStreamParses) {
  EXPECT_EQ(MustReadAll(PackedBytes()).kind, TraceErrorKind::kNone);
}

TEST(Corrupt, TruncatedHeader) {
  const std::string bytes = PackedBytes();
  for (std::size_t n = 0; n < kHeaderBytes; ++n) {
    const TraceParseError err = MustReadAll(bytes.substr(0, n));
    EXPECT_EQ(err.kind, TraceErrorKind::kBadHeader) << "len " << n;
    EXPECT_FALSE(err.message.empty());
  }
}

TEST(Corrupt, BadMagic) {
  std::string bytes = PackedBytes();
  bytes[0] = 'X';
  EXPECT_EQ(MustReadAll(bytes).kind, TraceErrorKind::kBadMagic);
}

TEST(Corrupt, WrongVersion) {
  std::string bytes = PackedBytes();
  bytes[4] = static_cast<char>(kFormatVersion + 1);
  const TraceParseError err = MustReadAll(bytes);
  EXPECT_EQ(err.kind, TraceErrorKind::kBadVersion);
  EXPECT_NE(err.message.find(std::to_string(kFormatVersion + 1)),
            std::string::npos);
}

TEST(Corrupt, FlippedMetaCrc) {
  std::string bytes = PackedBytes();
  bytes[12] = static_cast<char>(bytes[12] ^ 0x01);  // meta CRC field
  EXPECT_EQ(MustReadAll(bytes).kind, TraceErrorKind::kCrcMismatch);
}

TEST(Corrupt, FlippedMetaByte) {
  std::string bytes = PackedBytes();
  bytes[kHeaderBytes] = static_cast<char>(bytes[kHeaderBytes] ^ 0x20);
  EXPECT_EQ(MustReadAll(bytes).kind, TraceErrorKind::kCrcMismatch);
}

TEST(Corrupt, FlippedBlockPayloadByte) {
  const std::string meta = "k v\n";
  std::string bytes = PackedBytes(meta);
  const std::size_t payload_start =
      kHeaderBytes + meta.size() + kBlockHeaderBytes;
  ASSERT_LT(payload_start, bytes.size());
  bytes[payload_start] = static_cast<char>(bytes[payload_start] ^ 0x80);
  EXPECT_EQ(MustReadAll(bytes).kind, TraceErrorKind::kCrcMismatch);
}

TEST(Corrupt, TruncatedFinalBlockAndFooter) {
  const std::string bytes = PackedBytes();
  // Every strict prefix that survives the header must end kTruncated or
  // another typed kind -- never ok: a DLPT stream is only complete with
  // its footer.
  for (std::size_t n = kHeaderBytes; n < bytes.size(); ++n) {
    const TraceParseError err = MustReadAll(bytes.substr(0, n));
    EXPECT_NE(err.kind, TraceErrorKind::kNone) << "prefix " << n;
    EXPECT_NE(err.kind, TraceErrorKind::kBadText) << "prefix " << n;
  }
}

TEST(Corrupt, OversizedDeclaredRawLength) {
  const std::string meta = "k v\n";
  std::string bytes = PackedBytes(meta);
  const std::size_t block_off = kHeaderBytes + meta.size();
  // raw_len field (second u32 of the block header) -> over the 4 MiB cap.
  std::string big;
  PutU32(&big, static_cast<std::uint32_t>(kMaxBlockRawBytes + 1));
  bytes.replace(block_off + 4, 4, big);
  EXPECT_EQ(MustReadAll(bytes).kind, TraceErrorKind::kOversizedBlock);
}

TEST(Corrupt, OversizedDeclaredCompressedLength) {
  const std::string meta = "k v\n";
  std::string bytes = PackedBytes(meta);
  const std::size_t block_off = kHeaderBytes + meta.size();
  // comp_len far beyond the LZ bound for the declared raw_len.
  std::string big;
  PutU32(&big, 3u << 20);
  bytes.replace(block_off, 4, big);
  EXPECT_EQ(MustReadAll(bytes).kind, TraceErrorKind::kOversizedBlock);
}

TEST(Corrupt, OversizedDeclaredMetaLength) {
  std::string bytes = PackedBytes();
  std::string big;
  PutU32(&big, static_cast<std::uint32_t>(kMaxMetaBytes + 1));
  bytes.replace(8, 4, big);
  EXPECT_EQ(MustReadAll(bytes).kind, TraceErrorKind::kBadHeader);
}

TEST(Corrupt, ZeroRecordCountBlock) {
  const std::string meta = "k v\n";
  std::string bytes = PackedBytes(meta);
  const std::size_t block_off = kHeaderBytes + meta.size();
  std::string zero;
  PutU32(&zero, 0);
  bytes.replace(block_off + 8, 4, zero);  // count field
  EXPECT_EQ(MustReadAll(bytes).kind, TraceErrorKind::kBadBlock);
}

TEST(Corrupt, FooterCountMismatch) {
  std::string bytes = PackedBytes();
  // Forge the footer: bump the count and restamp its CRC so only the
  // count check can catch it.
  const std::size_t footer = bytes.size() - kFooterBytes;
  const std::uint64_t total = GetU64(bytes.data() + footer + 4);
  std::string forged;
  PutU64(&forged, total + 1);
  std::string crc;
  PutU32(&crc, Crc32(forged));
  bytes.replace(footer + 4, 8, forged);
  bytes.replace(footer + 12, 4, crc);
  EXPECT_EQ(MustReadAll(bytes).kind, TraceErrorKind::kBadHeader);
}

TEST(Corrupt, FlippedFooterCrc) {
  std::string bytes = PackedBytes();
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x10);
  EXPECT_EQ(MustReadAll(bytes).kind, TraceErrorKind::kCrcMismatch);
}

TEST(Corrupt, ErrorOffsetsAndMessagesAreFilled) {
  std::string bytes = PackedBytes();
  bytes.resize(bytes.size() - 1);
  const TraceParseError err = MustReadAll(bytes);
  EXPECT_NE(err.kind, TraceErrorKind::kNone);
  EXPECT_FALSE(err.message.empty());
  EXPECT_FALSE(std::string(ToString(err.kind)).empty());
  EXPECT_NE(err.ToString(), "");
}

TEST(Corrupt, SeededCorpusAllTypedErrors) {
  // 500-case corpus -- the same budget the verify-fuzz CI job runs.
  const std::string violation = verify::FuzzPackedTraces(2026, 500);
  EXPECT_EQ(violation, "");
}

TEST(Corrupt, SeededCorpusIsSeedStable) {
  EXPECT_EQ(verify::FuzzPackedTraces(7, 50), "");
  EXPECT_EQ(verify::FuzzPackedTraces(8, 50), "");
}

}  // namespace
}  // namespace dlpsim::trace
