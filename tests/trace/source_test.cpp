// TraceSource contract tests: strict text semantics match
// ParseTraceStrict, OpenTraceFile sniffs the format, Replay over a
// source equals Replay over the in-memory vector, and the recording
// frontend (TraceRecorder) captures the same stream it observes.
#include "trace/source.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/trace_replay.h"
#include "core/l1d_cache.h"
#include "sim/config.h"
#include "trace/recorder.h"
#include "trace/text.h"
#include "trace/writer.h"

namespace dlpsim::trace {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("dlpsim_trace_src_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

TEST(TextSource, MatchesParseTraceStrictOnCleanInput) {
  const std::string text =
      "# comment\n"
      "L 0x1000 1\n"
      "\n"
      "S 4096 2\n"
      "L 0xffffffffffffffff 3\n";
  std::vector<TraceAccess> parsed;
  TraceParseError perr;
  std::istringstream parse_is(text);
  ASSERT_TRUE(ParseTraceStrict(parse_is, &parsed, &perr)) << perr.ToString();

  std::istringstream is(text);
  TextTraceSource src(is);
  std::vector<TraceAccess> streamed;
  TraceParseError serr;
  ASSERT_TRUE(ReadAllRecords(src, &streamed, &serr)) << serr.ToString();
  EXPECT_EQ(streamed, parsed);
  EXPECT_EQ(src.delivered(), parsed.size());
}

TEST(TextSource, MatchesParseTraceStrictOnBadInput) {
  const std::string text = "L 0x1000 1\nL zzz 2\nL 0x2000 3\n";
  std::vector<TraceAccess> parsed;
  TraceParseError perr;
  std::istringstream parse_is(text);
  ASSERT_FALSE(ParseTraceStrict(parse_is, &parsed, &perr));

  std::istringstream is(text);
  TextTraceSource src(is);
  std::vector<TraceAccess> streamed;
  TraceParseError serr;
  ASSERT_FALSE(ReadAllRecords(src, &streamed, &serr));
  // Same diagnosis: same line number, same typed kind; the stream stops
  // at the bad line (records before it were already yielded).
  EXPECT_EQ(serr.line, perr.line);
  EXPECT_EQ(serr.kind, TraceErrorKind::kBadText);
  EXPECT_EQ(streamed.size(), 1u);
}

TEST(TextSource, NextAfterErrorStaysFalse) {
  std::istringstream is("junk\nL 0x1000 1\n");
  TextTraceSource src(is);
  TraceAccess a;
  EXPECT_FALSE(src.Next(&a));
  EXPECT_FALSE(src.Next(&a));  // sticky
  EXPECT_FALSE(src.ok());
}

TEST(VectorSource, YieldsAllRecordsInOrder) {
  const std::vector<TraceAccess> records = {
      {0, 1, AccessType::kLoad}, {128, 2, AccessType::kStore}};
  VectorTraceSource src(records);
  std::vector<TraceAccess> out;
  TraceParseError err;
  ASSERT_TRUE(ReadAllRecords(src, &out, &err));
  EXPECT_EQ(out, records);
}

TEST(OpenTraceFile, SniffsPackedVsText) {
  TempDir tmp;
  const std::vector<TraceAccess> records = {
      {0x1000, 1, AccessType::kLoad},
      {0x1080, 2, AccessType::kStore},
      {0x1000, 1, AccessType::kLoad},
  };

  {
    std::ofstream os(tmp.Path("t.trace"), std::ios::binary);
    WriteTextTrace(os, records);
  }
  {
    std::ofstream os(tmp.Path("t.dlpt"), std::ios::binary);
    ASSERT_TRUE(WritePackedTrace(os, records));
  }

  for (const char* name : {"t.trace", "t.dlpt"}) {
    TraceParseError err;
    auto src = OpenTraceFile(tmp.Path(name), &err);
    ASSERT_NE(src, nullptr) << name << ": " << err.ToString();
    std::vector<TraceAccess> out;
    ASSERT_TRUE(ReadAllRecords(*src, &out, &err)) << err.ToString();
    EXPECT_EQ(out, records) << name;
  }

  // The sniffer keys on the magic, not the file name.
  TraceParseError err;
  auto src = OpenTraceFile(tmp.Path("t.dlpt"), &err);
  EXPECT_NE(dynamic_cast<PackedTraceSource*>(src.get()), nullptr);
  src = OpenTraceFile(tmp.Path("t.trace"), &err);
  EXPECT_NE(dynamic_cast<TextTraceSource*>(src.get()), nullptr);
}

TEST(OpenTraceFile, MissingFileIsTypedIoError) {
  TraceParseError err;
  auto src = OpenTraceFile("/nonexistent/definitely-not-here.trace", &err);
  EXPECT_EQ(src, nullptr);
  EXPECT_EQ(err.kind, TraceErrorKind::kIo);
  EXPECT_FALSE(err.message.empty());
}

TEST(OpenTraceFile, FileShorterThanMagicIsText) {
  TempDir tmp;
  WriteFile(tmp.Path("tiny"), "DL");
  TraceParseError err;
  auto src = OpenTraceFile(tmp.Path("tiny"), &err);
  ASSERT_NE(src, nullptr);
  // "DL" is not a valid text line -> strict error, not a crash.
  std::vector<TraceAccess> out;
  EXPECT_FALSE(ReadAllRecords(*src, &out, &err));
  EXPECT_EQ(err.kind, TraceErrorKind::kBadText);
}

std::vector<TraceAccess> ReplayWorkload() {
  std::vector<TraceAccess> t;
  Addr stream = 1u << 20;
  for (int i = 0; i < 2000; ++i) {
    t.push_back({static_cast<Addr>((i % 32) * 128), 1, AccessType::kLoad});
    t.push_back({stream, 2, AccessType::kLoad});
    stream += 128;
    if (i % 5 == 0) t.push_back({stream, 3, AccessType::kStore});
  }
  return t;
}

TEST(ReplayOverSource, EqualsReplayOverVector) {
  const std::vector<TraceAccess> records = ReplayWorkload();
  for (PolicyKind policy : {PolicyKind::kBaseline, PolicyKind::kDlp}) {
    L1DConfig cfg = SimConfig::Baseline16KB().l1d;
    cfg.policy = policy;

    TraceReplayer by_vector(cfg);
    const ReplayResult want = by_vector.Replay(records);

    std::ostringstream packed;
    ASSERT_TRUE(WritePackedTrace(packed, records, "", 64));
    std::istringstream packed_is(packed.str());
    PackedTraceSource packed_src(packed_is);
    TraceReplayer by_packed(cfg);
    const ReplayResult got_packed = by_packed.Replay(packed_src);
    ASSERT_TRUE(packed_src.ok());

    std::istringstream text_is(CanonicalText(records));
    TextTraceSource text_src(text_is);
    TraceReplayer by_text(cfg);
    const ReplayResult got_text = by_text.Replay(text_src);
    ASSERT_TRUE(text_src.ok());

    for (const ReplayResult* got : {&got_packed, &got_text}) {
      EXPECT_EQ(got->cycles, want.cycles);
      EXPECT_EQ(got->accesses, want.accesses);
      EXPECT_EQ(got->stall_cycles, want.stall_cycles);
      EXPECT_EQ(got->cache.load_hits, want.cache.load_hits);
      EXPECT_EQ(got->cache.load_misses, want.cache.load_misses);
      EXPECT_EQ(got->cache.bypasses, want.cache.bypasses);
      EXPECT_EQ(got->cache.evictions, want.cache.evictions);
      EXPECT_EQ(got->cache.writebacks, want.cache.writebacks);
    }
  }
}

TEST(Recorder, CapturesTheObservedStreamIntoVectorAndWriter) {
  L1DConfig cfg = SimConfig::Baseline16KB().l1d;
  L1DCache cache(cfg);

  std::vector<TraceAccess> collected;
  std::ostringstream packed;
  PackedTraceWriter writer(packed, "src test\n", 8);
  TraceRecorder rec(&writer, &collected);
  cache.SetObserver(&rec);

  const std::vector<TraceAccess> driven = ReplayWorkload();
  MshrToken token = 1;
  std::vector<MshrToken> woken;
  for (std::size_t i = 0; i < driven.size(); ++i) {
    const MemAccess acc{driven[i].addr, driven[i].type, driven[i].pc,
                        driven[i].type == AccessType::kLoad ? token++ : 0};
    cache.Access(acc, static_cast<Cycle>(i));
    // Service fills promptly so reservations never run out.
    while (cache.HasOutgoing()) {
      const L1DOutgoing out = cache.PopOutgoing();
      if (!out.write) {
        woken.clear();
        cache.Fill(L1DResponse{out.block, out.no_fill, out.token},
                   static_cast<Cycle>(i), woken);
      }
    }
  }
  ASSERT_TRUE(writer.Finish()) << writer.error().ToString();

  // The recorder saw every completed access (this workload never hits
  // kReservationFail thanks to the prompt fills).
  EXPECT_EQ(rec.recorded(), driven.size());
  EXPECT_EQ(collected.size(), driven.size());
  EXPECT_EQ(writer.appended(), driven.size());

  // Identity of the recorded stream: block numbers of the driven one.
  for (std::size_t i = 0; i < driven.size(); ++i) {
    EXPECT_EQ(collected[i].addr, driven[i].addr / cfg.geom.line_bytes);
    EXPECT_EQ(collected[i].pc, driven[i].pc);
    EXPECT_EQ(collected[i].type, driven[i].type);
  }

  // And the streamed packed copy decodes to exactly the collected trace.
  std::istringstream is(packed.str());
  PackedTraceSource src(is);
  std::vector<TraceAccess> back;
  TraceParseError err;
  ASSERT_TRUE(ReadAllRecords(src, &back, &err)) << err.ToString();
  EXPECT_EQ(back, collected);
}

}  // namespace
}  // namespace dlpsim::trace
