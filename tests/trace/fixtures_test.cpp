// Committed-fixture integrity (ISSUE satellite): the packed golden
// traces under tests/golden/traces/ must stay readable by the current
// reader -- every CRC intact, the version current, the record sequence
// identical to the committed text twin, the content refs equal across
// formats, and the packed form at least 3x smaller than the text form
// (the acceptance bar for the format actually earning its complexity).
//
// Fixtures were produced with:
//   trace_pack --record <APP> <name>.dlpt --scale 0.02
//   trace_pack --unpack <name>.dlpt <name>.trace
// Re-record them only when the format version or the workloads
// deliberately change, and commit the diff.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/format.h"
#include "trace/hash.h"
#include "trace/source.h"

#ifndef DLPSIM_TRACE_FIXTURE_DIR
#error "DLPSIM_TRACE_FIXTURE_DIR must point at tests/golden/traces"
#endif

namespace dlpsim::trace {
namespace {

std::vector<std::string> FixtureStems() {
  std::vector<std::string> stems;
  for (const auto& entry :
       std::filesystem::directory_iterator(DLPSIM_TRACE_FIXTURE_DIR)) {
    if (entry.path().extension() == ".dlpt") {
      stems.push_back(entry.path().stem().string());
    }
  }
  std::sort(stems.begin(), stems.end());
  return stems;
}

std::string FixturePath(const std::string& stem, const std::string& ext) {
  return std::string(DLPSIM_TRACE_FIXTURE_DIR) + "/" + stem + ext;
}

TEST(Fixtures, AtLeastTwoCommittedPairs) {
  EXPECT_GE(FixtureStems().size(), 2u);
}

TEST(Fixtures, PackedFixturesVerifyCleanly) {
  for (const std::string& stem : FixtureStems()) {
    TraceParseError err;
    auto src = OpenTraceFile(FixturePath(stem, ".dlpt"), &err);
    ASSERT_NE(src, nullptr) << stem << ": " << err.ToString();
    ASSERT_NE(dynamic_cast<PackedTraceSource*>(src.get()), nullptr) << stem;
    // Draining the source re-checks every CRC, every length bound and
    // the footer count.
    std::vector<TraceAccess> records;
    ASSERT_TRUE(ReadAllRecords(*src, &records, &err))
        << stem << ": " << err.ToString();
    EXPECT_GT(records.size(), 1000u) << stem;
  }
}

TEST(Fixtures, VersionFieldIsCurrent) {
  for (const std::string& stem : FixtureStems()) {
    std::ifstream is(FixturePath(stem, ".dlpt"), std::ios::binary);
    char hdr[8];
    ASSERT_TRUE(is.read(hdr, sizeof(hdr))) << stem;
    ASSERT_EQ(std::string(hdr, 4), std::string(kMagic, 4)) << stem;
    EXPECT_EQ(GetU32(hdr + 4), kFormatVersion) << stem;
  }
}

TEST(Fixtures, TextTwinHoldsTheSameRecords) {
  for (const std::string& stem : FixtureStems()) {
    TraceParseError err;
    std::vector<TraceAccess> packed_records;
    {
      auto src = OpenTraceFile(FixturePath(stem, ".dlpt"), &err);
      ASSERT_NE(src, nullptr) << err.ToString();
      ASSERT_TRUE(ReadAllRecords(*src, &packed_records, &err))
          << err.ToString();
    }
    std::vector<TraceAccess> text_records;
    {
      auto src = OpenTraceFile(FixturePath(stem, ".trace"), &err);
      ASSERT_NE(src, nullptr) << stem << " is missing its .trace twin: "
                              << err.ToString();
      ASSERT_TRUE(ReadAllRecords(*src, &text_records, &err))
          << err.ToString();
    }
    EXPECT_EQ(packed_records, text_records) << stem;

    // Same content ref, so the serve cache coalesces the two forms.
    EXPECT_EQ(TraceFileRef(FixturePath(stem, ".dlpt"), &err),
              TraceFileRef(FixturePath(stem, ".trace"), &err))
        << stem;
  }
}

TEST(Fixtures, PackedAtLeastThreeTimesSmallerThanText) {
  for (const std::string& stem : FixtureStems()) {
    const auto packed_bytes =
        std::filesystem::file_size(FixturePath(stem, ".dlpt"));
    const auto text_bytes =
        std::filesystem::file_size(FixturePath(stem, ".trace"));
    EXPECT_GE(text_bytes, 3 * packed_bytes)
        << stem << ": text " << text_bytes << " B vs packed " << packed_bytes
        << " B (ratio " << static_cast<double>(text_bytes) / packed_bytes
        << "x)";
  }
}

}  // namespace
}  // namespace dlpsim::trace
