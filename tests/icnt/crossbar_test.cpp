#include "icnt/crossbar.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

IcntConfig FastIcnt() {
  IcntConfig cfg;
  cfg.latency = 4;
  cfg.bytes_per_cycle_per_port = 32;
  return cfg;
}

IcntPacket ReadReq(std::uint32_t src, std::uint32_t dst, Addr addr = 0) {
  IcntPacket p;
  p.kind = IcntPacket::Kind::kReadRequest;
  p.src = src;
  p.dst = dst;
  p.addr = addr;
  p.bytes = 8;
  return p;
}

void TickN(Crossbar& xbar, Cycle& now, int n) {
  for (int i = 0; i < n; ++i) xbar.Tick(++now);
}

TEST(Crossbar, DeliversAfterSerializationAndLatency) {
  Crossbar xbar(FastIcnt(), 2, 2);
  Cycle now = 0;
  xbar.InjectFromCore(0, ReadReq(0, 1));
  EXPECT_FALSE(xbar.HasForPartition(1));
  // 1 cycle serialization (8B at 32B/cyc) + 4 cycles latency.
  TickN(xbar, now, 5);
  EXPECT_TRUE(xbar.HasForPartition(1));
  const IcntPacket got = xbar.PopForPartition(1);
  EXPECT_EQ(got.src, 0u);
}

TEST(Crossbar, LargePacketsSerializeLonger) {
  Crossbar xbar(FastIcnt(), 1, 1);
  Cycle now = 0;
  IcntPacket big = ReadReq(0, 0);
  big.kind = IcntPacket::Kind::kWrite;
  big.bytes = 136;  // 5 cycles at 32B/cycle
  xbar.InjectFromCore(0, big);
  TickN(xbar, now, 5);  // not yet: 5 serialize means flight at t=5
  EXPECT_FALSE(xbar.HasForPartition(0));
  TickN(xbar, now, 4);
  EXPECT_TRUE(xbar.HasForPartition(0));
}

TEST(Crossbar, PointToPointOrderPreserved) {
  Crossbar xbar(FastIcnt(), 1, 1);
  Cycle now = 0;
  for (int i = 0; i < 3; ++i) {
    xbar.InjectFromCore(0, ReadReq(0, 0, static_cast<Addr>(i)));
  }
  TickN(xbar, now, 20);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(xbar.HasForPartition(0));
    EXPECT_EQ(xbar.PopForPartition(0).addr, static_cast<Addr>(i));
  }
}

TEST(Crossbar, ReplyPathIsSeparate) {
  Crossbar xbar(FastIcnt(), 2, 2);
  Cycle now = 0;
  IcntPacket reply;
  reply.kind = IcntPacket::Kind::kReadReply;
  reply.src = 1;
  reply.dst = 0;
  reply.bytes = 136;
  xbar.InjectFromPartition(1, reply);
  TickN(xbar, now, 20);
  EXPECT_TRUE(xbar.HasForCore(0));
  EXPECT_FALSE(xbar.HasForPartition(0));
  EXPECT_EQ(xbar.PopForCore(0).kind, IcntPacket::Kind::kReadReply);
}

TEST(Crossbar, InjectionBackpressure) {
  Crossbar xbar(FastIcnt(), 1, 1);
  int injected = 0;
  while (xbar.CanInjectFromCore(0)) {
    xbar.InjectFromCore(0, ReadReq(0, 0));
    ++injected;
  }
  EXPECT_EQ(injected, 8);  // inject queue cap
  Cycle now = 0;
  TickN(xbar, now, 2);
  EXPECT_TRUE(xbar.CanInjectFromCore(0));
}

TEST(Crossbar, DeliveryBackpressureHoldsPacketsInFlight) {
  Crossbar xbar(FastIcnt(), 4, 1);
  Cycle now = 0;
  // Flood one partition from several cores without draining it.
  for (int round = 0; round < 10; ++round) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      if (xbar.CanInjectFromCore(c)) xbar.InjectFromCore(c, ReadReq(c, 0));
    }
    xbar.Tick(++now);
  }
  TickN(xbar, now, 30);
  // Delivery queue capacity is 16; nothing is lost, the rest waits.
  int drained = 0;
  while (!xbar.Idle()) {
    while (xbar.HasForPartition(0)) {
      xbar.PopForPartition(0);
      ++drained;
    }
    xbar.Tick(++now);
  }
  EXPECT_EQ(static_cast<std::uint64_t>(drained), xbar.packets_delivered);
  EXPECT_GE(drained, 30);
}

TEST(Crossbar, ByteAccountingByClass) {
  Crossbar xbar(FastIcnt(), 2, 2);
  xbar.InjectFromCore(0, ReadReq(0, 1));  // 8 bytes, l1d
  IcntPacket other;
  other.kind = IcntPacket::Kind::kOther;
  other.src = 0;
  other.dst = 0;
  other.bytes = 100;
  xbar.InjectFromCore(0, other);
  IcntPacket reply;
  reply.kind = IcntPacket::Kind::kReadReply;
  reply.src = 1;
  reply.dst = 0;
  reply.bytes = 136;
  xbar.InjectFromPartition(1, reply);

  EXPECT_EQ(xbar.bytes_core_to_mem, 108u);
  EXPECT_EQ(xbar.bytes_mem_to_core, 136u);
  EXPECT_EQ(xbar.bytes_l1d, 144u);
  EXPECT_EQ(xbar.bytes_other, 100u);
  EXPECT_EQ(xbar.total_bytes(), 244u);
}

TEST(Crossbar, IdleTracksAllStages) {
  Crossbar xbar(FastIcnt(), 1, 1);
  EXPECT_TRUE(xbar.Idle());
  xbar.InjectFromCore(0, ReadReq(0, 0));
  EXPECT_FALSE(xbar.Idle());
  Cycle now = 0;
  TickN(xbar, now, 10);
  EXPECT_FALSE(xbar.Idle());  // sits in the delivery queue
  xbar.PopForPartition(0);
  EXPECT_TRUE(xbar.Idle());
}

}  // namespace
}  // namespace dlpsim
