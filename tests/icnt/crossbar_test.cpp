#include "icnt/crossbar.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

IcntConfig FastIcnt() {
  IcntConfig cfg;
  cfg.latency = 4;
  cfg.bytes_per_cycle_per_port = 32;
  return cfg;
}

IcntPacket ReadReq(std::uint32_t src, std::uint32_t dst, Addr addr = 0) {
  IcntPacket p;
  p.kind = IcntPacket::Kind::kReadRequest;
  p.src = src;
  p.dst = dst;
  p.addr = addr;
  p.bytes = 8;
  return p;
}

void TickN(Crossbar& xbar, Cycle& now, int n) {
  for (int i = 0; i < n; ++i) xbar.Tick(++now);
}

TEST(Crossbar, DeliversAfterSerializationAndLatency) {
  Crossbar xbar(FastIcnt(), 2, 2);
  Cycle now = 0;
  xbar.InjectFromCore(0, ReadReq(0, 1));
  EXPECT_FALSE(xbar.HasForPartition(1));
  // 1 cycle serialization (8B at 32B/cyc) + 4 cycles latency.
  TickN(xbar, now, 5);
  EXPECT_TRUE(xbar.HasForPartition(1));
  const IcntPacket got = xbar.PopForPartition(1);
  EXPECT_EQ(got.src, 0u);
}

TEST(Crossbar, LargePacketsSerializeLonger) {
  Crossbar xbar(FastIcnt(), 1, 1);
  Cycle now = 0;
  IcntPacket big = ReadReq(0, 0);
  big.kind = IcntPacket::Kind::kWrite;
  big.bytes = 136;  // 5 cycles at 32B/cycle
  xbar.InjectFromCore(0, big);
  TickN(xbar, now, 5);  // not yet: 5 serialize means flight at t=5
  EXPECT_FALSE(xbar.HasForPartition(0));
  TickN(xbar, now, 4);
  EXPECT_TRUE(xbar.HasForPartition(0));
}

TEST(Crossbar, PointToPointOrderPreserved) {
  Crossbar xbar(FastIcnt(), 1, 1);
  Cycle now = 0;
  for (int i = 0; i < 3; ++i) {
    xbar.InjectFromCore(0, ReadReq(0, 0, static_cast<Addr>(i)));
  }
  TickN(xbar, now, 20);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(xbar.HasForPartition(0));
    EXPECT_EQ(xbar.PopForPartition(0).addr, static_cast<Addr>(i));
  }
}

TEST(Crossbar, ReplyPathIsSeparate) {
  Crossbar xbar(FastIcnt(), 2, 2);
  Cycle now = 0;
  IcntPacket reply;
  reply.kind = IcntPacket::Kind::kReadReply;
  reply.src = 1;
  reply.dst = 0;
  reply.bytes = 136;
  xbar.InjectFromPartition(1, reply);
  TickN(xbar, now, 20);
  EXPECT_TRUE(xbar.HasForCore(0));
  EXPECT_FALSE(xbar.HasForPartition(0));
  EXPECT_EQ(xbar.PopForCore(0).kind, IcntPacket::Kind::kReadReply);
}

TEST(Crossbar, InjectionBackpressure) {
  Crossbar xbar(FastIcnt(), 1, 1);
  int injected = 0;
  while (xbar.CanInjectFromCore(0)) {
    xbar.InjectFromCore(0, ReadReq(0, 0));
    ++injected;
  }
  EXPECT_EQ(injected, 8);  // inject queue cap
  Cycle now = 0;
  TickN(xbar, now, 2);
  EXPECT_TRUE(xbar.CanInjectFromCore(0));
}

TEST(Crossbar, DeliveryBackpressureHoldsPacketsInFlight) {
  Crossbar xbar(FastIcnt(), 4, 1);
  Cycle now = 0;
  // Flood one partition from several cores without draining it.
  for (int round = 0; round < 10; ++round) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      if (xbar.CanInjectFromCore(c)) xbar.InjectFromCore(c, ReadReq(c, 0));
    }
    xbar.Tick(++now);
  }
  TickN(xbar, now, 30);
  // Delivery queue capacity is 16; nothing is lost, the rest waits.
  int drained = 0;
  while (!xbar.Idle()) {
    while (xbar.HasForPartition(0)) {
      xbar.PopForPartition(0);
      ++drained;
    }
    xbar.Tick(++now);
  }
  EXPECT_EQ(static_cast<std::uint64_t>(drained), xbar.packets_delivered);
  EXPECT_GE(drained, 30);
}

TEST(Crossbar, ByteAccountingByClass) {
  Crossbar xbar(FastIcnt(), 2, 2);
  xbar.InjectFromCore(0, ReadReq(0, 1));  // 8 bytes, l1d
  IcntPacket other;
  other.kind = IcntPacket::Kind::kOther;
  other.src = 0;
  other.dst = 0;
  other.bytes = 100;
  xbar.InjectFromCore(0, other);
  IcntPacket reply;
  reply.kind = IcntPacket::Kind::kReadReply;
  reply.src = 1;
  reply.dst = 0;
  reply.bytes = 136;
  xbar.InjectFromPartition(1, reply);

  EXPECT_EQ(xbar.bytes_core_to_mem, 108u);
  EXPECT_EQ(xbar.bytes_mem_to_core, 136u);
  EXPECT_EQ(xbar.bytes_l1d, 144u);
  EXPECT_EQ(xbar.bytes_other, 100u);
  EXPECT_EQ(xbar.total_bytes(), 244u);
}

TEST(Crossbar, BackToBackPacketsSerializeOnePerCycle) {
  // Latency accounting for a busy port: each 8B packet occupies the
  // 32B/cyc serializer for one cycle, so the n-th packet lands exactly
  // one cycle after the (n-1)-th: ticks 5, 6, 7 for three packets.
  Crossbar xbar(FastIcnt(), 1, 1);
  Cycle now = 0;
  for (int i = 0; i < 3; ++i) {
    xbar.InjectFromCore(0, ReadReq(0, 0, static_cast<Addr>(i)));
  }
  std::vector<Cycle> arrival;
  while (arrival.size() < 3 && now < 100) {
    xbar.Tick(++now);
    while (xbar.HasForPartition(0)) {
      arrival.push_back(now);
      xbar.PopForPartition(0);
    }
  }
  ASSERT_EQ(arrival.size(), 3u);
  EXPECT_EQ(arrival[0], 5u);  // 1 serialize + 4 latency
  EXPECT_EQ(arrival[1], 6u);
  EXPECT_EQ(arrival[2], 7u);
}

TEST(Crossbar, InjectedStallDelaysDeliveryByExactlyThatLong) {
  Crossbar xbar(FastIcnt(), 1, 1);
  Cycle now = 0;
  xbar.InjectFromCore(0, ReadReq(0, 0));
  xbar.InjectStallFor(3);
  TickN(xbar, now, 7);  // 3 swallowed + 1 serialize + latency not yet up
  EXPECT_FALSE(xbar.HasForPartition(0));
  TickN(xbar, now, 1);  // tick 8 = 3 + the usual 5
  EXPECT_TRUE(xbar.HasForPartition(0));
}

TEST(Crossbar, DepthsTrackPacketThroughStages) {
  Crossbar xbar(FastIcnt(), 1, 1);
  IcntPacket big = ReadReq(0, 0);
  big.bytes = 136;  // 5 cycles to serialize at 32B/cycle
  xbar.InjectFromCore(0, big);
  Crossbar::QueueDepths d = xbar.Depths();
  EXPECT_EQ(d.core_inject, 1u);
  EXPECT_EQ(d.in_flight, 0u);

  Cycle now = 0;
  TickN(xbar, now, 4);  // partially serialized: still owned by the port
  d = xbar.Depths();
  EXPECT_EQ(d.core_inject, 1u);
  EXPECT_EQ(d.in_flight, 0u);

  TickN(xbar, now, 1);  // serialization completes at tick 5
  d = xbar.Depths();
  EXPECT_EQ(d.core_inject, 0u);
  EXPECT_EQ(d.in_flight, 1u);

  TickN(xbar, now, 4);  // arrives at 5 + latency(4) = tick 9
  d = xbar.Depths();
  EXPECT_EQ(d.in_flight, 0u);
  EXPECT_EQ(d.to_partition, 1u);
}

TEST(Crossbar, PartitionSideInjectionBackpressure) {
  Crossbar xbar(FastIcnt(), 1, 1);
  int injected = 0;
  IcntPacket reply;
  reply.kind = IcntPacket::Kind::kReadReply;
  reply.bytes = 136;
  while (xbar.CanInjectFromPartition(0)) {
    xbar.InjectFromPartition(0, reply);
    ++injected;
  }
  EXPECT_EQ(injected, 8);
  Cycle now = 0;
  TickN(xbar, now, 5);  // one 136B reply fully serialized frees a slot
  EXPECT_TRUE(xbar.CanInjectFromPartition(0));
}

TEST(Crossbar, OrderSurvivesDeliveryQueueBackpressure) {
  // Saturate the partition-0 delivery queue (cap 16) so later packets
  // block in flight, then drain slowly: the original injection order
  // must come out the other end untouched.
  Crossbar xbar(FastIcnt(), 1, 1);
  Cycle now = 0;
  int injected = 0;
  while (injected < 20) {
    if (xbar.CanInjectFromCore(0)) {
      xbar.InjectFromCore(0, ReadReq(0, 0, static_cast<Addr>(injected++)));
    }
    xbar.Tick(++now);
  }
  std::vector<Addr> order;
  while (!xbar.Idle() && now < 500) {
    if (xbar.HasForPartition(0)) order.push_back(xbar.PopForPartition(0).addr);
    xbar.Tick(++now);
  }
  while (xbar.HasForPartition(0)) order.push_back(xbar.PopForPartition(0).addr);
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<Addr>(i)) << "position " << i;
  }
}

TEST(Crossbar, SmallPacketCannotOvertakeLargeOnSamePort) {
  Crossbar xbar(FastIcnt(), 1, 1);
  Cycle now = 0;
  IcntPacket big = ReadReq(0, 0, 0xb16);
  big.bytes = 160;  // 5 serialization cycles
  xbar.InjectFromCore(0, big);
  xbar.InjectFromCore(0, ReadReq(0, 0, 0x5a11));  // 1 cycle, queued behind
  TickN(xbar, now, 30);
  ASSERT_TRUE(xbar.HasForPartition(0));
  EXPECT_EQ(xbar.PopForPartition(0).addr, 0xb16u);
  ASSERT_TRUE(xbar.HasForPartition(0));
  EXPECT_EQ(xbar.PopForPartition(0).addr, 0x5a11u);
}

TEST(Crossbar, IdleTracksAllStages) {
  Crossbar xbar(FastIcnt(), 1, 1);
  EXPECT_TRUE(xbar.Idle());
  xbar.InjectFromCore(0, ReadReq(0, 0));
  EXPECT_FALSE(xbar.Idle());
  Cycle now = 0;
  TickN(xbar, now, 10);
  EXPECT_FALSE(xbar.Idle());  // sits in the delivery queue
  xbar.PopForPartition(0);
  EXPECT_TRUE(xbar.Idle());
}

}  // namespace
}  // namespace dlpsim
