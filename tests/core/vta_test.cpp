#include "core/vta.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

TEST(Vta, InsertAndHitConsumes) {
  VictimTagArray vta(4, 2);
  vta.Insert(0, 100, 7);
  EXPECT_TRUE(vta.Contains(0, 100));
  const auto hit = vta.ProbeAndConsume(0, 100);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.insn_id, 7u);
  // Consumed: a second probe misses.
  EXPECT_FALSE(vta.ProbeAndConsume(0, 100).hit);
  EXPECT_FALSE(vta.Contains(0, 100));
}

TEST(Vta, MissReturnsNoHit) {
  VictimTagArray vta(4, 2);
  EXPECT_FALSE(vta.ProbeAndConsume(0, 5).hit);
}

TEST(Vta, SetsAreIndependent) {
  VictimTagArray vta(4, 2);
  vta.Insert(1, 100, 1);
  EXPECT_FALSE(vta.Contains(0, 100));
  EXPECT_TRUE(vta.Contains(1, 100));
}

TEST(Vta, LruReplacementWithinSet) {
  VictimTagArray vta(2, 2);
  vta.Insert(0, 1, 0);
  vta.Insert(0, 2, 0);
  EXPECT_EQ(vta.Occupancy(0), 2u);
  // Third insert displaces the oldest (block 1).
  vta.Insert(0, 3, 0);
  EXPECT_FALSE(vta.Contains(0, 1));
  EXPECT_TRUE(vta.Contains(0, 2));
  EXPECT_TRUE(vta.Contains(0, 3));
}

TEST(Vta, ReinsertRefreshesInsteadOfDuplicating) {
  VictimTagArray vta(2, 2);
  vta.Insert(0, 1, 5);
  vta.Insert(0, 2, 0);
  vta.Insert(0, 1, 9);  // refresh block 1 with a new insn id
  EXPECT_EQ(vta.Occupancy(0), 2u);
  // Block 2 is now LRU; a new insert displaces it, not block 1.
  vta.Insert(0, 3, 0);
  EXPECT_TRUE(vta.Contains(0, 1));
  EXPECT_FALSE(vta.Contains(0, 2));
  EXPECT_EQ(vta.ProbeAndConsume(0, 1).insn_id, 9u);
}

TEST(Vta, ConsumedEntryFreesSlot) {
  VictimTagArray vta(2, 2);
  vta.Insert(0, 1, 0);
  vta.Insert(0, 2, 0);
  vta.ProbeAndConsume(0, 1);
  EXPECT_EQ(vta.Occupancy(0), 1u);
  vta.Insert(0, 3, 0);  // uses the freed slot
  EXPECT_TRUE(vta.Contains(0, 2));
  EXPECT_TRUE(vta.Contains(0, 3));
}

TEST(Vta, ClearEmptiesEverything) {
  VictimTagArray vta(4, 4);
  for (std::uint32_t s = 0; s < 4; ++s) vta.Insert(s, s + 10, 0);
  vta.Clear();
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(vta.Occupancy(s), 0u);
    EXPECT_FALSE(vta.Contains(s, s + 10));
  }
}

TEST(Vta, PaperGeometryMirrorsTda) {
  // Paper footnote 2: VTA associativity equals the cache's; §4.1.2: same
  // number of indexed sets. Baseline: 32 sets x 4 ways.
  VictimTagArray vta(32, 4);
  EXPECT_EQ(vta.sets(), 32u);
  EXPECT_EQ(vta.ways(), 4u);
  for (std::uint32_t w = 0; w < 4; ++w) vta.Insert(0, w, 0);
  EXPECT_EQ(vta.Occupancy(0), 4u);
  vta.Insert(0, 99, 0);
  EXPECT_EQ(vta.Occupancy(0), 4u);  // bounded by associativity
}

}  // namespace
}  // namespace dlpsim
