#include "core/l1d_cache.h"

#include <gtest/gtest.h>

namespace dlpsim {
namespace {

L1DConfig SmallConfig(PolicyKind kind = PolicyKind::kBaseline) {
  L1DConfig cfg;
  cfg.geom.sets = 2;
  cfg.geom.ways = 2;
  cfg.geom.index = IndexFunction::kLinear;
  cfg.mshr_entries = 4;
  cfg.mshr_max_merged = 2;
  cfg.miss_queue_entries = 4;
  cfg.policy = kind;
  return cfg;
}

MemAccess Load(Addr addr, Pc pc = 0, MshrToken token = 1) {
  return MemAccess{addr, AccessType::kLoad, pc, token};
}

MemAccess Store(Addr addr, Pc pc = 0) {
  return MemAccess{addr, AccessType::kStore, pc, 0};
}

/// Drives the fill for every outstanding outgoing request.
void DrainAndFill(L1DCache& cache, std::vector<MshrToken>& woken) {
  while (cache.HasOutgoing()) {
    const L1DOutgoing out = cache.PopOutgoing();
    if (!out.write) {
      cache.Fill(L1DResponse{out.block, out.no_fill, out.token}, 0, woken);
    }
  }
}

TEST(L1DCache, ColdMissThenHit) {
  L1DCache cache(SmallConfig());
  EXPECT_EQ(cache.Access(Load(0), 0), AccessResult::kMissIssued);
  EXPECT_TRUE(cache.HasOutgoing());
  EXPECT_EQ(cache.PeekOutgoing().block, 0u);
  EXPECT_FALSE(cache.PeekOutgoing().no_fill);

  std::vector<MshrToken> woken;
  DrainAndFill(cache, woken);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 1u);

  EXPECT_EQ(cache.Access(Load(0), 1), AccessResult::kHit);
  EXPECT_EQ(cache.stats().load_hits, 1u);
  EXPECT_EQ(cache.stats().load_misses, 1u);
  EXPECT_EQ(cache.stats().fills, 1u);
}

TEST(L1DCache, SameLineDifferentOffsetHits) {
  L1DCache cache(SmallConfig());
  std::vector<MshrToken> woken;
  cache.Access(Load(0), 0);
  DrainAndFill(cache, woken);
  EXPECT_EQ(cache.Access(Load(127), 1), AccessResult::kHit);
}

TEST(L1DCache, MissToReservedLineMerges) {
  L1DCache cache(SmallConfig());
  EXPECT_EQ(cache.Access(Load(0, 0, 1), 0), AccessResult::kMissIssued);
  EXPECT_EQ(cache.Access(Load(0, 0, 2), 1), AccessResult::kMissMerged);
  EXPECT_EQ(cache.stats().mshr_merges, 1u);
  // Merge limit (2) reached; third requester stalls under the baseline.
  EXPECT_EQ(cache.Access(Load(0, 0, 3), 2), AccessResult::kReservationFail);
  EXPECT_EQ(cache.stats().reservation_fails, 1u);

  std::vector<MshrToken> woken;
  DrainAndFill(cache, woken);
  ASSERT_EQ(woken.size(), 2u);
  EXPECT_EQ(woken[0], 1u);
  EXPECT_EQ(woken[1], 2u);
}

TEST(L1DCache, OnlyOneRequestPerMergedMiss) {
  L1DCache cache(SmallConfig());
  cache.Access(Load(0, 0, 1), 0);
  cache.Access(Load(0, 0, 2), 1);
  // One outgoing read for both requesters.
  int reads = 0;
  while (cache.HasOutgoing()) {
    if (!cache.PopOutgoing().write) ++reads;
  }
  EXPECT_EQ(reads, 1);
}

TEST(L1DCache, StallWhenSetFullyReserved) {
  L1DCache cache(SmallConfig());
  // Set 0 holds blocks 0, 2 (linear mapping, 2 sets): both reserved.
  EXPECT_EQ(cache.Access(Load(0 * 128), 0), AccessResult::kMissIssued);
  EXPECT_EQ(cache.Access(Load(2 * 128), 0), AccessResult::kMissIssued);
  EXPECT_EQ(cache.Access(Load(4 * 128), 0), AccessResult::kReservationFail);
  // The other set is unaffected.
  EXPECT_EQ(cache.Access(Load(1 * 128), 0), AccessResult::kMissIssued);
}

TEST(L1DCache, StallLeavesNoSideEffects) {
  L1DCache cache(SmallConfig());
  cache.Access(Load(0 * 128), 0);
  cache.Access(Load(2 * 128), 0);
  const std::uint64_t accesses = cache.stats().accesses;
  const std::uint64_t loads = cache.stats().loads;
  EXPECT_EQ(cache.Access(Load(4 * 128), 0), AccessResult::kReservationFail);
  EXPECT_EQ(cache.stats().accesses, accesses);  // not counted as an access
  EXPECT_EQ(cache.stats().loads, loads);
  EXPECT_EQ(cache.mshr().size(), 2u);
}

TEST(L1DCache, StallBypassTurnsStallIntoBypass) {
  L1DCache cache(SmallConfig(PolicyKind::kStallBypass));
  cache.Access(Load(0 * 128), 0);
  cache.Access(Load(2 * 128), 0);
  EXPECT_EQ(cache.Access(Load(4 * 128, 0, 9), 0), AccessResult::kBypassed);
  EXPECT_EQ(cache.stats().bypasses, 1u);

  // The bypassed request carries its own token and no_fill flag.
  bool found = false;
  std::vector<MshrToken> woken;
  while (cache.HasOutgoing()) {
    const L1DOutgoing out = cache.PopOutgoing();
    if (out.no_fill && !out.write) {
      EXPECT_EQ(out.token, 9u);
      cache.Fill(L1DResponse{out.block, true, out.token}, 0, woken);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 9u);
  // A bypass must not fill the TDA.
  EXPECT_EQ(cache.stats().fills, 0u);
}

TEST(L1DCache, EvictionOnConflict) {
  L1DCache cache(SmallConfig());
  std::vector<MshrToken> woken;
  // Fill both ways of set 0 (blocks 0 and 2).
  cache.Access(Load(0 * 128), 0);
  cache.Access(Load(2 * 128), 0);
  DrainAndFill(cache, woken);
  // Third block in the same set evicts the LRU (block 0).
  EXPECT_EQ(cache.Access(Load(4 * 128), 1), AccessResult::kMissIssued);
  EXPECT_EQ(cache.stats().evictions, 1u);
  DrainAndFill(cache, woken);
  // Block 0 is gone; block 2 survived.
  EXPECT_EQ(cache.Access(Load(2 * 128), 2), AccessResult::kHit);
}

TEST(L1DCache, WriteBackOnHitDirtiesLine) {
  auto cfg = SmallConfig();
  cfg.write_policy = WritePolicy::kWriteBackOnHit;
  L1DCache cache(cfg);
  std::vector<MshrToken> woken;
  cache.Access(Load(0), 0);
  DrainAndFill(cache, woken);

  EXPECT_EQ(cache.Access(Store(0), 1), AccessResult::kStoreSent);
  EXPECT_EQ(cache.stats().store_hits, 1u);
  EXPECT_FALSE(cache.HasOutgoing());  // absorbed, no write-through

  // Evicting the dirty line generates a writeback.
  cache.Access(Load(2 * 128), 2);
  DrainAndFill(cache, woken);
  cache.Access(Load(4 * 128), 3);
  EXPECT_EQ(cache.stats().writebacks, 1u);
  bool saw_writeback = false;
  while (cache.HasOutgoing()) {
    const auto out = cache.PopOutgoing();
    if (out.write && out.block == 0) saw_writeback = true;
  }
  EXPECT_TRUE(saw_writeback);
}

TEST(L1DCache, WriteEvictInvalidatesOnStoreHit) {
  auto cfg = SmallConfig();
  cfg.write_policy = WritePolicy::kWriteEvict;
  L1DCache cache(cfg);
  std::vector<MshrToken> woken;
  cache.Access(Load(0), 0);
  DrainAndFill(cache, woken);

  EXPECT_EQ(cache.Access(Store(0), 1), AccessResult::kStoreSent);
  EXPECT_EQ(cache.stats().store_invalidates, 1u);
  EXPECT_TRUE(cache.HasOutgoing());  // write-through
  cache.PopOutgoing();
  // Line is gone.
  EXPECT_EQ(cache.Access(Load(0), 2), AccessResult::kMissIssued);
}

TEST(L1DCache, StoreMissWritesThroughWithoutAllocating) {
  L1DCache cache(SmallConfig());
  EXPECT_EQ(cache.Access(Store(0), 0), AccessResult::kStoreSent);
  EXPECT_EQ(cache.stats().stores, 1u);
  ASSERT_TRUE(cache.HasOutgoing());
  const auto out = cache.PopOutgoing();
  EXPECT_TRUE(out.write);
  EXPECT_EQ(cache.Access(Load(0), 1), AccessResult::kMissIssued);  // no alloc
}

TEST(L1DCache, MissQueueFullStalls) {
  auto cfg = SmallConfig();
  cfg.miss_queue_entries = 1;
  L1DCache cache(cfg);
  EXPECT_EQ(cache.Access(Load(0 * 128), 0), AccessResult::kMissIssued);
  // Queue holds the un-drained request; next miss cannot enqueue.
  EXPECT_EQ(cache.Access(Load(1 * 128), 0), AccessResult::kReservationFail);
  cache.PopOutgoing();
  EXPECT_EQ(cache.Access(Load(1 * 128), 1), AccessResult::kMissIssued);
}

TEST(L1DCache, MshrFullStalls) {
  auto cfg = SmallConfig();
  cfg.mshr_entries = 1;
  cfg.geom.sets = 2;
  L1DCache cache(cfg);
  EXPECT_EQ(cache.Access(Load(0 * 128), 0), AccessResult::kMissIssued);
  // Different set, MSHR exhausted.
  EXPECT_EQ(cache.Access(Load(1 * 128), 0), AccessResult::kReservationFail);
}

TEST(L1DCache, DlpBypassesWhenSetFullyProtected) {
  L1DCache cache(SmallConfig(PolicyKind::kDlp));
  std::vector<MshrToken> woken;
  cache.Access(Load(0 * 128, 0x10), 0);
  cache.Access(Load(2 * 128, 0x20), 0);
  DrainAndFill(cache, woken);

  // Manufacture full protection via the policy's own bookkeeping: force
  // PLs through the tag array directly (unit-level shortcut), keeping
  // the incremental PL histogram in lockstep so Debug asserts and the
  // robust/ invariant checker stay happy.
  TagArray& tda = cache.mutable_tda();
  for (std::uint32_t way : {0u, 1u}) {
    CacheLine& line = tda.At(0, way);
    cache.mutable_pl_counters().Move(line.protected_life, 5);
    line.protected_life = 5;
  }

  EXPECT_EQ(cache.Access(Load(4 * 128, 0x30, 7), 1), AccessResult::kBypassed);
  EXPECT_EQ(cache.stats().bypasses, 1u);
  // The bypassed query consumed one PL from each line.
  EXPECT_EQ(tda.At(0, 0).protected_life, 4u);
  EXPECT_EQ(tda.At(0, 1).protected_life, 4u);
}

TEST(L1DCache, ResetClearsEverything) {
  L1DCache cache(SmallConfig());
  cache.Access(Load(0), 0);
  cache.Reset();
  EXPECT_FALSE(cache.HasOutgoing());
  EXPECT_EQ(cache.mshr().size(), 0u);
  EXPECT_EQ(cache.Access(Load(0), 1), AccessResult::kMissIssued);
}

TEST(L1DCache, AccessResultNames) {
  EXPECT_STREQ(ToString(AccessResult::kHit), "hit");
  EXPECT_STREQ(ToString(AccessResult::kReservationFail), "reservation_fail");
}

}  // namespace
}  // namespace dlpsim
